GITREV := $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

.PHONY: test bench bench-full baseline table

test:
	go build ./... && go test ./...

# Stamp a quick benchmark run for the current revision and gate it
# against the committed baseline (what CI runs).
bench:
	go run ./cmd/earmac-bench -quick -out BENCH_$(GITREV).json -baseline BENCH_baseline.json

# Full (4x) horizons, no gate.
bench-full:
	go run ./cmd/earmac-bench -full -out BENCH_$(GITREV).json

# Refresh the committed baseline (run on the reference machine, then
# commit BENCH_baseline.json).
baseline:
	go run ./cmd/earmac-bench -quick -out BENCH_baseline.json

table:
	go run ./cmd/earmac-table
