GITREV := $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

.PHONY: test lint lint-smoke race fuzz cover bench bench-full baseline table serve smoke-serve cluster-smoke

test:
	go build ./... && go test ./...

# Static analysis: go vet plus the project linter (cmd/earmac-lint),
# which enforces the determinism, zero-alloc, and fingerprint
# invariants statically (DESIGN.md §15).
lint:
	go vet ./...
	go run ./cmd/earmac-lint ./...

# Prove the linter gates: it must fail on a fixture seeded with
# violations and pass on the real tree (what the CI lint job runs).
lint-smoke:
	sh scripts/lint-smoke.sh

# Full suite under the race detector (what the CI race job runs).
race:
	go test -race ./...

# Fuzz smoke: same budget as the CI fuzz job.
fuzz:
	go test -run '^$$' -fuzz '^FuzzBucket$$' -fuzztime 10s ./internal/adversary
	go test -run '^$$' -fuzz '^FuzzTraceRoundTrip$$' -fuzztime 10s ./internal/scenario

# Statement coverage with a per-package summary. Writes cover.out (the
# profile the CI cover job uploads as an artifact); the summary script
# groups the profile by package, statement-weighted.
cover:
	go test -short -coverprofile=cover.out -coverpkg=./... ./...
	sh scripts/cover-summary.sh cover.out

# Stamp a quick benchmark run for the current revision and gate it
# against the committed baseline (what CI runs).
bench:
	go run ./cmd/earmac-bench -quick -out BENCH_$(GITREV).json -baseline BENCH_baseline.json

# Full (4x) horizons, no gate.
bench-full:
	go run ./cmd/earmac-bench -full -out BENCH_$(GITREV).json

# Refresh the committed baseline (run on the reference machine, then
# commit BENCH_baseline.json).
baseline:
	go run ./cmd/earmac-bench -quick -out BENCH_baseline.json

table:
	go run ./cmd/earmac-table

# Run the experiment service (content-addressed result cache, progress
# streaming; see README "Serving experiments").
serve:
	go run ./cmd/earmac-serve

# End-to-end service smoke: start earmac-serve, submit a Table 1 config
# twice, assert the second response is a byte-identical cache hit, drain
# on SIGTERM (what the CI serve-smoke job runs).
smoke-serve:
	sh scripts/serve-smoke.sh

# End-to-end cluster smoke: coordinator + two workers, one killed -9
# mid-grid, SuiteReport byte-identical to a single-process run, then a
# coordinator restart served entirely from the disk cache (what the CI
# cluster-smoke job runs).
cluster-smoke:
	sh scripts/cluster-smoke.sh
