package earmac

// Benchmarks regenerating the paper's evaluation. The paper's only
// exhibit is Table 1 — worst-case bounds for six algorithms and three
// impossibility results — so there is one benchmark per row (executing
// the corresponding experiment spec and reporting the measured figure
// next to the claimed bound), followed by ablation benchmarks for the
// design choices DESIGN.md calls out and micro-benchmarks of the
// simulator substrate itself.
//
// Reported custom metrics:
//
//	queue_max     peak total queued packets (stability rows)
//	latency_max   worst packet delay in rounds (latency rows)
//	slope         queue growth in packets/round (impossibility rows)
//	bound         the paper's bound for the configuration
//	Mrounds/s     simulator throughput
//	energy        mean switched-on stations per round

import (
	"fmt"
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/algorithms/adjwin"
	"earmac/internal/algorithms/kclique"
	"earmac/internal/algorithms/kcycle"
	"earmac/internal/algorithms/ksubsets"
	"earmac/internal/core"
	"earmac/internal/expt"
	"earmac/internal/metrics"
	"earmac/internal/ratio"
)

func specByID(b *testing.B, id string) expt.Spec {
	b.Helper()
	for _, s := range expt.Table1(expt.Quick) {
		if s.ID == id {
			return s
		}
	}
	b.Fatalf("no spec %s", id)
	return expt.Spec{}
}

func benchSpec(b *testing.B, id string) {
	spec := specByID(b, id)
	var last expt.Outcome
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := expt.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !o.OK {
			b.Fatalf("%s failed to reproduce: measured %v vs bound %v (stable=%v)",
				id, o.Measured, o.Bound, o.Stable)
		}
		last = o
	}
	b.StopTimer()
	b.ReportMetric(float64(last.Rounds), "rounds")
	b.ReportMetric(last.MeanEnergy, "energy")
	if last.Bound > 0 {
		b.ReportMetric(last.Bound, "bound")
	}
	switch last.Kind {
	case expt.KindUnstable:
		b.ReportMetric(last.Slope, "slope")
	case expt.KindLatency:
		b.ReportMetric(float64(last.MaxLatency), "latency_max")
	default:
		b.ReportMetric(float64(last.MaxQueue), "queue_max")
	}
}

// Table 1, row by row.

func BenchmarkTable1_01_Orchestra(b *testing.B)                  { benchSpec(b, "T1.1") }
func BenchmarkTable1_02a_Cap2ImpossibilityCountHop(b *testing.B) { benchSpec(b, "T1.2a") }
func BenchmarkTable1_02b_Cap2ImpossibilityAdjustWindow(b *testing.B) {
	benchSpec(b, "T1.2b")
}
func BenchmarkTable1_02c_Cap2ImpossibilityLemma1(b *testing.B) { benchSpec(b, "T1.2c") }
func BenchmarkTable1_03_CountHop(b *testing.B)                 { benchSpec(b, "T1.3") }
func BenchmarkTable1_04_AdjustWindow(b *testing.B)             { benchSpec(b, "T1.4") }
func BenchmarkTable1_05_KCycle(b *testing.B)                   { benchSpec(b, "T1.5") }
func BenchmarkTable1_06_ObliviousImpossibility(b *testing.B)   { benchSpec(b, "T1.6") }
func BenchmarkTable1_07_KClique(b *testing.B)                  { benchSpec(b, "T1.7") }
func BenchmarkTable1_08_KSubsets(b *testing.B)                 { benchSpec(b, "T1.8") }
func BenchmarkTable1_09_DirectObliviousImpossibility(b *testing.B) {
	benchSpec(b, "T1.9")
}

// runOnce is the ablation helper: one strict simulation, tracker out.
func runOnce(b *testing.B, sys *core.System, adv core.Adversary, rounds int64) *metrics.Tracker {
	b.Helper()
	tr := metrics.NewTracker()
	tr.SampleEvery = rounds / 512
	sim := core.NewSim(sys, adv, core.Options{Strict: true, Tracker: tr})
	if err := sim.Run(rounds); err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkAblation_EnergyLatencyTradeoff measures the latency-versus-
// energy-cap curve (the paper's open problem, §7) on k-Cycle at half the
// critical rate for each cap.
func BenchmarkAblation_EnergyLatencyTradeoff(b *testing.B) {
	const n = 13
	for k := 2; k <= 6; k++ {
		k := k
		b.Run(byK("kcycle", k), func(b *testing.B) {
			var lastLat int64
			var lastEnergy float64
			for i := 0; i < b.N; i++ {
				sys, err := kcycle.New(n, k)
				if err != nil {
					b.Fatal(err)
				}
				typ := adversary.Type{Rho: ratio.New(int64(k-1), int64(2*(n-1))), Beta: ratio.FromInt(2)}
				tr := runOnce(b, sys, adversary.New(typ, adversary.Uniform(n, int64(k))), 100000)
				if !tr.LooksStable() {
					b.Fatalf("k=%d unstable below critical rate", k)
				}
				lastLat = tr.MaxLatency
				lastEnergy = tr.MeanEnergy()
			}
			b.ReportMetric(float64(lastLat), "latency_max")
			b.ReportMetric(lastEnergy, "energy")
		})
	}
	const nc = 12
	for _, k := range []int{2, 4, 6, 8} {
		k := k
		b.Run(byK("kclique", k), func(b *testing.B) {
			var lastLat int64
			var lastEnergy float64
			for i := 0; i < b.N; i++ {
				sys, err := kclique.New(nc, k)
				if err != nil {
					b.Fatal(err)
				}
				typ := adversary.Type{
					Rho:  ratio.New(int64(k*k), int64(2*2*nc*(2*nc-k))),
					Beta: ratio.FromInt(2),
				}
				tr := runOnce(b, sys, adversary.New(typ, adversary.Uniform(nc, int64(k))), 150000)
				if !tr.LooksStable() {
					b.Fatalf("k=%d unstable below critical rate", k)
				}
				lastLat = tr.MaxLatency
				lastEnergy = tr.MeanEnergy()
			}
			b.ReportMetric(float64(lastLat), "latency_max")
			b.ReportMetric(lastEnergy, "energy")
		})
	}
}

func byK(alg string, k int) string { return fmt.Sprintf("%s/k=%d", alg, k) }

// BenchmarkAblation_KSubsetsMBTFvsRRW compares the thread substrate of
// k-Subsets: MBTF (maximum throughput, possible starvation) against RRW
// (the paper's bounded-latency modification) at a rate below critical.
func BenchmarkAblation_KSubsetsMBTFvsRRW(b *testing.B) {
	const n, k = 6, 3
	builders := map[string]func(int, int) (*core.System, error){
		"mbtf": ksubsets.New,
		"rrw":  ksubsets.NewRRW,
	}
	for name, build := range builders {
		build := build
		b.Run(name, func(b *testing.B) {
			var lastLat, lastQ int64
			for i := 0; i < b.N; i++ {
				sys, err := build(n, k)
				if err != nil {
					b.Fatal(err)
				}
				adv := adversary.New(adversary.T(1, 6, 2), adversary.Uniform(n, 3))
				tr := runOnce(b, sys, adv, 150000)
				if !tr.LooksStable() {
					b.Fatal("unstable below critical rate")
				}
				lastLat = tr.MaxLatency
				lastQ = tr.MaxQueue
			}
			b.ReportMetric(float64(lastLat), "latency_max")
			b.ReportMetric(float64(lastQ), "queue_max")
		})
	}
}

// BenchmarkAblation_WindowDoubling compares Adjust-Window started at the
// paper's initial window against a cold start from a tiny window that
// must double its way up.
func BenchmarkAblation_WindowDoubling(b *testing.B) {
	const n = 3
	configs := map[string]func() (*core.System, error){
		"warm": func() (*core.System, error) { return adjwin.New(n) },
		"cold": func() (*core.System, error) { return adjwin.NewWithWindow(n, 4096) },
	}
	for name, build := range configs {
		build := build
		b.Run(name, func(b *testing.B) {
			var lastLat int64
			var lastWin int64
			for i := 0; i < b.N; i++ {
				sys, err := build()
				if err != nil {
					b.Fatal(err)
				}
				adv := adversary.New(adversary.T(1, 2, 2), adversary.Uniform(n, 9))
				tr := runOnce(b, sys, adv, 400000)
				if !tr.LooksStable() {
					b.Fatal("unstable at ρ=1/2")
				}
				lastLat = tr.MaxLatency
				lastWin = adjwin.CurrentWindow(sys.Stations[0])
			}
			b.ReportMetric(float64(lastLat), "latency_max")
			b.ReportMetric(float64(lastWin), "final_window")
		})
	}
}

// BenchmarkSubstrate benchmarks the prior-work broadcast substrates at
// the rates their papers claim: MBTF at ρ=1 [17], RRW and OF-RRW at
// ρ=3/4 < 1 [18, 3].
func BenchmarkSubstrate(b *testing.B) {
	const n = 8
	cases := []struct {
		name string
		alg  string
		rhoN int64
		rhoD int64
	}{
		{"mbtf@rho=1", "mbtf", 1, 1},
		{"rrw@rho=3/4", "rrw", 3, 4},
		{"ofrrw@rho=3/4", "ofrrw", 3, 4},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var lastQ int64
			for i := 0; i < b.N; i++ {
				sys, err := expt.Build(c.alg, n, 0)
				if err != nil {
					b.Fatal(err)
				}
				typ := adversary.Type{Rho: ratio.New(c.rhoN, c.rhoD), Beta: ratio.FromInt(2)}
				tr := runOnce(b, sys, adversary.New(typ, adversary.Uniform(n, 11)), 60000)
				if !tr.LooksStable() {
					b.Fatalf("%s unstable at its claimed rate", c.name)
				}
				lastQ = tr.MaxQueue
			}
			b.ReportMetric(float64(lastQ), "queue_max")
		})
	}
}

// BenchmarkAblation_DeterminismVsALOHA pits the deterministic direct
// oblivious algorithms against the randomized slotted-ALOHA baseline on
// the identical targeted flow at ρ = 1/10 (n=8, k=4): the deterministic
// schedules absorb it collision-free; ALOHA's queue grows. This is the
// measured argument for the paper's determinism.
func BenchmarkAblation_DeterminismVsALOHA(b *testing.B) {
	const n, k = 8, 4
	algs := []string{"k-subsets", "k-clique", "aloha"}
	for _, alg := range algs {
		alg := alg
		b.Run(alg, func(b *testing.B) {
			var last *metrics.Tracker
			for i := 0; i < b.N; i++ {
				sys, err := expt.Build(alg, n, k)
				if err != nil {
					b.Fatal(err)
				}
				adv := adversary.New(adversary.T(1, 10, 2), adversary.SingleTarget(0, 7))
				last = runOnce(b, sys, adv, 120000)
				stable := last.LooksStable()
				if alg == "aloha" && stable {
					b.Fatal("ALOHA unexpectedly stable")
				}
				if alg != "aloha" && !stable {
					b.Fatalf("%s unexpectedly unstable", alg)
				}
			}
			b.ReportMetric(float64(last.CollisionRounds), "collisions")
			b.ReportMetric(last.QueueSlope(), "slope")
			b.ReportMetric(float64(last.MaxQueue), "queue_max")
		})
	}
}

// BenchmarkCrossover sweeps the injection rate across each proven
// threshold and reports the queue growth slope per rate — locating the
// stability crossovers Table 1 predicts (and, for k-Cycle under
// concentration, the sharper 1/ℓ crossover EXPERIMENTS.md documents).
func BenchmarkCrossover(b *testing.B) {
	type point struct {
		name     string
		num, den int64
	}
	sweep := func(b *testing.B, points []point, build func() (*core.System, error),
		pattern func(sys *core.System, num, den int64) core.Adversary, rounds int64) {
		for _, pt := range points {
			pt := pt
			b.Run(pt.name, func(b *testing.B) {
				var last *metrics.Tracker
				for i := 0; i < b.N; i++ {
					sys, err := build()
					if err != nil {
						b.Fatal(err)
					}
					last = runOnce(b, sys, pattern(sys, pt.num, pt.den), rounds)
				}
				b.ReportMetric(last.QueueSlope(), "slope")
				b.ReportMetric(float64(last.MaxQueue), "queue_max")
				stable := 0.0
				if last.LooksStable() {
					stable = 1
				}
				b.ReportMetric(stable, "stable")
			})
		}
	}

	// Throughput-1 frontier: Count-Hop (cap 2) degrades as ρ → 1 and
	// collapses at 1; Orchestra (cap 3) holds at 1.
	b.Run("cap2-vs-rate", func(b *testing.B) {
		sweep(b, []point{
			{"rho=3/4", 3, 4}, {"rho=9/10", 9, 10}, {"rho=1", 1, 1},
		}, func() (*core.System, error) { return expt.Build("count-hop", 5, 0) },
			func(sys *core.System, num, den int64) core.Adversary {
				return adversary.New(adversary.T(num, den, 1), adversary.Uniform(5, 3))
			}, 120000)
	})

	// k-Subsets around its critical rate 1/5 (n=6, k=3) under the
	// Theorem 9 pair flood: stable at and below, unstable above.
	b.Run("ksubsets-pair-flood", func(b *testing.B) {
		sweep(b, []point{
			{"rho=1/6", 1, 6}, {"rho=1/5", 1, 5}, {"rho=9/40", 9, 40}, {"rho=1/4", 1, 4},
		}, func() (*core.System, error) { return expt.Build("k-subsets", 6, 3) },
			func(sys *core.System, num, den int64) core.Adversary {
				return adversary.LeastPair(sys.Schedule, adversary.T(num, den, 1))
			}, 150000)
	})

	// k-Cycle under single-station concentration: the measured crossover
	// sits at the activity fraction 1/ℓ = 1/4, below the claimed 1/3.
	b.Run("kcycle-concentration", func(b *testing.B) {
		sweep(b, []point{
			{"rho=1/5", 1, 5}, {"rho=23/100", 23, 100}, {"rho=1/4", 1, 4}, {"rho=3/10", 3, 10},
		}, func() (*core.System, error) { return expt.Build("k-cycle", 7, 3) },
			func(sys *core.System, num, den int64) core.Adversary {
				return adversary.New(adversary.T(num, den, 2), adversary.SingleTarget(3, 6))
			}, 300000)
	})
}

// BenchmarkSimulatorThroughput measures raw simulator speed: rounds per
// second driving Orchestra at full load on 16 stations.
func BenchmarkSimulatorThroughput(b *testing.B) {
	const n, rounds = 16, 50000
	for i := 0; i < b.N; i++ {
		sys, err := expt.Build("orchestra", n, 0)
		if err != nil {
			b.Fatal(err)
		}
		adv := adversary.New(adversary.T(1, 1, 2), adversary.Uniform(n, 5))
		tr := metrics.NewTracker()
		sim := core.NewSim(sys, adv, core.Options{Tracker: tr})
		if err := sim.Run(rounds); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rounds)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrounds/s")
}
