package earmac

// Golden-file tests for the CLI binaries' JSON output — the first tests
// the CLIs have. Each test shells the real binary out through `go run`
// (no network: the module has no dependencies) and compares stdout
// byte-for-byte against a committed fixture. Everything the binaries
// print is deterministic: seeded RNG, exact integer counters, and
// float64 figures derived by a fixed sequence of IEEE operations (the
// fixtures assume amd64-style non-fused arithmetic, like CI).
// Regenerate with `go test -run TestCLI -update .`.

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const cliFixtureDir = "testdata/cli"

// runCLI executes `go <args...>` in the repo root and returns stdout.
func runCLI(t *testing.T, args ...string) []byte {
	t.Helper()
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("go %v: %v\nstderr:\n%s", args, err, errb.String())
	}
	return out.Bytes()
}

// runCLIExpectError executes `go <args...>` expecting a non-zero exit
// and returns stderr.
func runCLIExpectError(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go %v: succeeded, want failure\nstdout:\n%s", args, out.String())
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("go %v: %v (not an exit error)", args, err)
	}
	return errb.String()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join(cliFixtureDir, name)
	if *update {
		if err := os.MkdirAll(cliFixtureDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from golden fixture (%d bytes vs %d); regenerate with -update if the change is deliberate\ngot:\n%.2000s",
			name, len(got), len(want), got)
	}
}

func TestCLISimGoldenJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	out := runCLI(t, "run", "./cmd/earmac-sim",
		"-alg", "count-hop", "-n", "5", "-rho", "1/3", "-beta", "2",
		"-pattern", "bernoulli", "-seed", "11", "-rounds", "20000", "-json")
	checkGolden(t, "sim-count-hop-bernoulli.json", out)
}

func TestCLISimPhasedGoldenJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	out := runCLI(t, "run", "./cmd/earmac-sim",
		"-alg", "orchestra", "-n", "6", "-rho", "1/2", "-beta", "3",
		"-phases", "quiet:2000,bursty:2000,poisson-batch:0",
		"-seed", "5", "-rounds", "20000", "-json")
	checkGolden(t, "sim-orchestra-phased.json", out)
}

func TestCLITableGoldenJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	out := runCLI(t, "run", "./cmd/earmac-table", "-json")
	checkGolden(t, "table.json", out)
}

// TestCLISimReplayConflictingFlags: -replay combined with a flag the
// trace supplies fails fast with the typed conflict error, instead of
// one flag silently winning. The check runs before the trace file is
// even opened, so no fixture trace is needed.
func TestCLISimReplayConflictingFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	cases := []struct {
		name  string
		extra []string
		want  []string // substrings of stderr
	}{
		{"pattern", []string{"-pattern", "bernoulli"}, []string{"-pattern"}},
		{"phases", []string{"-phases", "quiet:100,bursty:0"}, []string{"-phases"}},
		{"record", []string{"-record", "out.trace.jsonl"}, []string{"-record"}},
		{"alg", []string{"-alg", "aloha"}, []string{"-alg"}},
		{"size-and-rate", []string{"-n", "16", "-rho", "1/4"}, []string{"-n", "-rho"}},
		{"rounds", []string{"-rounds", "999"}, []string{"-rounds"}},
		{"topology", []string{"-topology", "line", "-channels", "3"}, []string{"-channels", "-topology"}},
		{"all-three", []string{"-pattern", "uniform", "-phases", "quiet:0", "-record", "x.jsonl"},
			[]string{"-pattern, -phases, -record"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			args := append([]string{"run", "./cmd/earmac-sim", "-replay", "does-not-exist.trace.jsonl"}, c.extra...)
			stderr := runCLIExpectError(t, args...)
			want := append([]string{"conflicting options", "-replay is exclusive with"}, c.want...)
			for _, w := range want {
				if !strings.Contains(stderr, w) {
					t.Errorf("stderr missing %q:\n%s", w, stderr)
				}
			}
		})
	}
}

// And the non-conflicting replay modifiers still work: -lenient,
// -checked, and -json are about how to replay, not what to replay.
func TestCLISimReplayCompatibleFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	trace := filepath.Join(t.TempDir(), "run.trace.jsonl")
	runCLI(t, "run", "./cmd/earmac-sim",
		"-alg", "count-hop", "-n", "5", "-rho", "1/3", "-pattern", "bernoulli",
		"-seed", "2", "-rounds", "5000", "-record", trace, "-json")
	out := runCLI(t, "run", "./cmd/earmac-sim", "-replay", trace, "-lenient", "-checked", "-json")
	if !bytes.Contains(out, []byte(`"algorithm": "count-hop"`)) {
		t.Errorf("replay with compatible flags produced unexpected output:\n%s", out)
	}
}

// TestCLISimRecordReplayIdentical closes the loop at the binary level:
// a recorded run and its replay print byte-identical JSON reports.
func TestCLISimRecordReplayIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	trace := filepath.Join(t.TempDir(), "run.trace.jsonl")
	recorded := runCLI(t, "run", "./cmd/earmac-sim",
		"-alg", "orchestra", "-n", "6", "-rho", "1/3", "-beta", "2",
		"-pattern", "poisson-batch", "-seed", "3", "-rounds", "30000",
		"-record", trace, "-json")
	replayed := runCLI(t, "run", "./cmd/earmac-sim", "-replay", trace, "-json")
	if !bytes.Equal(recorded, replayed) {
		t.Errorf("replayed report differs from the recorded run:\nrecorded:\n%s\nreplayed:\n%s", recorded, replayed)
	}
	// And a checked-path replay agrees too (the recorded run already
	// ran checked; -checked pins it explicitly).
	checked := runCLI(t, "run", "./cmd/earmac-sim", "-replay", trace, "-checked", "-json")
	if !bytes.Equal(recorded, checked) {
		t.Errorf("checked replay differs from the recorded run")
	}
}

// TestCLISimNetworkGoldenJSON pins the network report schema end to end:
// topology flags through the binary, per-channel breakdown in the JSON.
func TestCLISimNetworkGoldenJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	out := runCLI(t, "run", "./cmd/earmac-sim",
		"-alg", "orchestra", "-topology", "line", "-channels", "3", "-n", "5",
		"-rho", "1/2", "-beta", "3", "-pattern", "bernoulli", "-seed", "11",
		"-rounds", "3000", "-json")
	checkGolden(t, "sim-orchestra-line3.json", out)
}

// The earmac-sweep golden-file tests (the last CLI without any): one
// per output mode, small horizons, fixed seeds.
func TestCLISweepSeedGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	out := runCLI(t, "run", "./cmd/earmac-sweep",
		"-mode", "seed", "-alg", "orchestra", "-pattern", "bernoulli",
		"-n", "5", "-rho", "1/3", "-beta", "2", "-seeds", "1,2,3", "-rounds", "2000")
	checkGolden(t, "sweep-seed.csv", out)
}

func TestCLISweepChannelsGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	out := runCLI(t, "run", "./cmd/earmac-sweep",
		"-mode", "channels", "-topology", "line", "-alg", "count-hop",
		"-n", "4", "-rho", "1/2", "-beta", "4", "-max-channels", "4", "-rounds", "2000")
	checkGolden(t, "sweep-channels.csv", out)
}

func TestCLISweepRhoGoldenJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	out := runCLI(t, "run", "./cmd/earmac-sweep",
		"-mode", "rho", "-alg", "count-hop", "-n", "5", "-rounds", "1000", "-json")
	checkGolden(t, "sweep-rho.json", out)
}

// TestCLISweepFrontierGoldenCSV pins the ISSUE 8 energy-frontier sweep:
// duty-cycle knobs × jamming intensity, one deterministic CSV. Beyond
// byte-stability, the fixture must witness the frontier itself — within
// every jam intensity, mean energy falls (never rises) as the
// sleep-after-idle threshold tightens, at the price of deliveries.
func TestCLISweepFrontierGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	out := runCLI(t, "run", "./cmd/earmac-sweep",
		"-mode", "frontier", "-n", "5", "-rho", "1/4", "-beta", "2",
		"-pattern", "bernoulli", "-seed", "7", "-rounds", "2000")
	checkGolden(t, "sweep-frontier.csv", out)

	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) < 2 || lines[0] != "jam_rho,sleep_idle,wake_every,mean_energy,mean_latency,delivered,dropped,sleep_rounds,jammed_rounds,stable" {
		t.Fatalf("unexpected frontier CSV shape:\n%s", out)
	}
	prevJam, prevEnergy := "", 0.0
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		energy, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			t.Fatalf("bad mean_energy in %q: %v", line, err)
		}
		// The -sleep-idles default is ordered loosest → tightest, so
		// within one jam_rho group energy must be nonincreasing.
		if f[0] == prevJam && energy > prevEnergy {
			t.Errorf("energy rose from %.3f to %.3f as duty-cycling tightened: %q", prevEnergy, energy, line)
		}
		prevJam, prevEnergy = f[0], energy
	}
}

// TestCLITraceAuditGolden pins the earmac-trace audit subcommand against
// committed corpus traces spanning all three format versions: a v1
// single-channel trace, a v2 network trace (per-channel and effective
// global budgets), and a v3 disruption trace with a jam stream.
func TestCLITraceAuditGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	out := runCLI(t, "run", "./cmd/earmac-trace", "audit",
		"testdata/traces/aloha-stochastic.trace.jsonl",
		"testdata/traces/net-line-orchestra.trace.jsonl",
		"testdata/traces/dis-net-line-aloha.trace.jsonl")
	checkGolden(t, "trace-audit.txt", out)
}

// TestCLITraceDiffGolden pins the earmac-trace diff subcommand: a
// self-diff reports identity and exits 0, and diffing two structurally
// different corpus traces reports the header/config fields, the first
// diverging event, and the footer counter deltas, exiting 1. Both
// outputs are golden.
func TestCLITraceDiffGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	out := runCLI(t, "run", "./cmd/earmac-trace", "diff",
		"testdata/traces/aloha-stochastic.trace.jsonl",
		"testdata/traces/aloha-stochastic.trace.jsonl")
	checkGolden(t, "trace-diff-identical.txt", out)

	cmd := exec.Command("go", "run", "./cmd/earmac-trace", "diff",
		"testdata/traces/aloha-stochastic.trace.jsonl",
		"testdata/traces/dis-net-line-aloha.trace.jsonl")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("diff of different traces: err %v, want exit status 1\nstderr:\n%s", err, stderr.String())
	}
	checkGolden(t, "trace-diff.txt", stdout.Bytes())
}

// And the sweep CSV error path: -mode channels without -topology fails
// fast instead of sweeping a single channel silently.
func TestCLISweepChannelsNeedsTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	stderr := runCLIExpectError(t, "run", "./cmd/earmac-sweep", "-mode", "channels")
	if !strings.Contains(stderr, "-topology") {
		t.Errorf("stderr missing -topology hint:\n%s", stderr)
	}
}
