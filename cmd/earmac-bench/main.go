// Command earmac-bench measures simulator performance and writes a
// schema-stable BENCH_<rev>.json consumed by the CI regression gate and
// by the repository's perf trajectory.
//
// Two benchmark families run on the simulator's allocation-free fast
// path (strict checking off — correctness of the same configurations is
// covered by cmd/earmac-table and the test suite):
//
//   - the Table 1 set: every row of the paper's evaluation at the quick
//     or full horizon, and
//   - substrate micro-benchmarks: the prior-work broadcast substrates
//     (MBTF, RRW, OF-RRW), two steady-state routing workloads that must
//     stay allocation-free, and a raw packet-queue op mix.
//
// Every row reports throughput (Mrounds/s), allocs/round, and the
// deterministic simulation outputs queue_max and energy; the file also
// carries a pure-CPU calibration scalar so throughput can be compared
// across machines (see internal/benchcmp).
//
// Usage:
//
//	earmac-bench -quick -out BENCH_abc123.json
//	earmac-bench -quick -baseline BENCH_baseline.json   # CI gate: exit 1 on regression
//	earmac-bench -full                                  # 4× horizons
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"earmac/internal/adversary"
	"earmac/internal/algorithms/ksubsets"
	"earmac/internal/algorithms/orchestra"
	"earmac/internal/algorithms/randmac"
	"earmac/internal/benchcmp"
	"earmac/internal/core"
	"earmac/internal/expt"
	"earmac/internal/mac"
	"earmac/internal/mac/duty"
	"earmac/internal/metrics"
	"earmac/internal/network"
	"earmac/internal/pktq"
	"earmac/internal/ratio"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "quick horizons (the CI setting)")
		full     = flag.Bool("full", false, "4x horizons")
		out      = flag.String("out", "", "output path (default BENCH_<rev>.json)")
		rev      = flag.String("rev", "", "revision stamp (default: git rev-parse --short HEAD)")
		baseline = flag.String("baseline", "", "compare against this bench file and exit 1 on regression")
		speedTol = flag.Float64("speed-tol", benchcmp.DefaultSpeedDropTolerance,
			"permitted relative Mrounds/s drop vs the baseline (0 = gate any drop)")
		repsFlag = flag.Int("reps", 5, "repetitions per row (best throughput wins, damping scheduler noise)")
	)
	flag.Parse()
	if *quick && *full {
		fail(fmt.Errorf("-quick and -full are mutually exclusive"))
	}
	scale := expt.Full
	if *quick {
		scale = expt.Quick
	}

	r := *rev
	if r == "" {
		r = gitRev()
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", r)
	}

	file := benchcmp.File{
		Schema:    benchcmp.Schema,
		Rev:       r,
		GoVersion: runtime.Version(),
		Quick:     *quick,
	}
	reps := *repsFlag
	if reps < 1 {
		reps = 1
	}
	fmt.Fprintf(os.Stderr, "earmac-bench: calibrating...")
	file.CalibrationMops = calibrate(reps)
	fmt.Fprintf(os.Stderr, " %.0f Mops\n", file.CalibrationMops)
	for _, spec := range expt.Table1(scale) {
		file.Rows = append(file.Rows, benchSpec(spec, reps))
	}
	file.Rows = append(file.Rows, substrateRows(scale, reps)...)
	file.Rows = append(file.Rows, networkRows(scale, reps)...)
	for _, row := range file.Rows {
		fmt.Fprintf(os.Stderr, "earmac-bench: %-14s %8.3f Mrounds/s  %7.4f allocs/round  queue_max=%d\n",
			row.ID, row.MroundsPerS, row.AllocsPerRound, row.QueueMax)
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "earmac-bench: wrote %s (%d rows)\n", path, len(file.Rows))

	if *baseline != "" {
		base, err := benchcmp.Load(*baseline)
		if err != nil {
			fail(err)
		}
		res := benchcmp.Compare(base, file, benchcmp.Options{
			SpeedDropTolerance: *speedTol,
			AllocsSlack:        benchcmp.DefaultAllocsSlack,
		})
		fmt.Fprintf(os.Stderr, "earmac-bench: compared %d rows vs %s (calibration ratio %.2f)\n",
			res.Compared, *baseline, res.Ratio)
		if !res.OK() {
			for _, f := range res.Findings {
				fmt.Fprintf(os.Stderr, "earmac-bench: REGRESSION %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "earmac-bench: no regressions")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "earmac-bench:", err)
	os.Exit(1)
}

func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

// calibSink defeats dead-code elimination of the calibration loop.
var calibSink uint64

// mix64 is the splitmix64 finalizer — the fixed pure-CPU workload used
// for calibration and the deterministic op-mix driver for the queue
// micro-benchmark.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// calibrate times a fixed pure-CPU workload (the splitmix64 mix) and
// returns its speed in millions of operations per second, best of reps
// runs — the same noise-damping the benchmark rows get, since this
// scalar rescales the whole regression gate. The same workload on the
// baseline machine anchors cross-machine throughput comparisons.
func calibrate(reps int) float64 {
	const iters = 1 << 25
	best := 0.0
	for rep := 0; rep < reps; rep++ {
		x := uint64(0x9e3779b97f4a7c15)
		start := time.Now()
		for i := 0; i < iters; i++ {
			x += 0x9e3779b97f4a7c15
			x = mix64(x)
		}
		elapsed := time.Since(start).Seconds()
		calibSink = x
		if mops := float64(iters) / elapsed / 1e6; mops > best {
			best = mops
		}
	}
	return best
}

// measure runs a fast-path simulation reps times — a fresh system and
// adversary per repetition, so the fixed seeds make queue_max and energy
// identical across repetitions — and returns the row with the best
// throughput and the fewest allocations (scheduler noise only ever
// slows a run down or interleaves a GC; it never speeds one up).
func measure(id, label string, build func() (*core.System, core.Adversary), rounds int64, reps int) benchcmp.Row {
	row := benchcmp.Row{ID: id, Label: label, Rounds: rounds}
	for rep := 0; rep < reps; rep++ {
		sys, adv := build()
		tr := metrics.NewTracker()
		tr.SampleEvery = 0
		sim := core.NewSim(sys, adv, core.Options{Tracker: tr})

		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := sim.Run(rounds); err != nil {
			fail(fmt.Errorf("%s: %w", id, err))
		}
		elapsed := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)

		speed := float64(rounds) / elapsed / 1e6
		allocs := float64(after.Mallocs-before.Mallocs) / float64(rounds)
		if rep == 0 || speed > row.MroundsPerS {
			row.MroundsPerS = speed
		}
		if rep == 0 || allocs < row.AllocsPerRound {
			row.AllocsPerRound = allocs
		}
		row.QueueMax = tr.MaxQueue
		row.Energy = tr.MeanEnergy()
	}
	return row
}

// benchSpec runs one Table 1 row on the fast path with the same system,
// adversary, and seed the experiment harness uses.
func benchSpec(s expt.Spec, reps int) benchcmp.Row {
	return measure(s.ID, s.Label, func() (*core.System, core.Adversary) {
		sys, err := s.Build()
		if err != nil {
			fail(fmt.Errorf("%s: %w", s.ID, err))
		}
		var adv core.Adversary
		if s.Adv != nil {
			adv = s.Adv(sys)
		} else {
			adv = adversary.New(adversary.Type{Rho: s.Rho, Beta: ratio.FromInt(s.Beta)},
				adversary.Uniform(sys.N(), s.Seed+1))
		}
		return sys, adv
	}, s.Rounds, reps)
}

// substrateRows benchmarks the simulator substrate: the prior-work
// broadcast algorithms at their claimed rates, two steady-state routing
// workloads that the fast path must keep allocation-free, and the raw
// packet queue.
func substrateRows(scale expt.Scale, reps int) []benchcmp.Row {
	rounds := int64(150000)
	if scale == expt.Full {
		rounds *= 4
	}
	var rows []benchcmp.Row

	for _, c := range []struct {
		id, alg    string
		rhoN, rhoD int64
	}{
		{"SUB.mbtf", "mbtf", 1, 1},
		{"SUB.rrw", "rrw", 3, 4},
		{"SUB.ofrrw", "ofrrw", 3, 4},
	} {
		c := c
		rows = append(rows, measure(c.id, fmt.Sprintf("%s @ ρ=%d/%d, n=8", c.alg, c.rhoN, c.rhoD),
			func() (*core.System, core.Adversary) {
				sys, err := expt.Build(c.alg, 8, 0)
				if err != nil {
					fail(err)
				}
				typ := adversary.Type{Rho: ratio.New(c.rhoN, c.rhoD), Beta: ratio.FromInt(2)}
				return sys, adversary.New(typ, adversary.Uniform(8, 11))
			}, rounds, reps))
	}

	rows = append(rows, measure("SUB.ksubsets", "3-subsets steady state @ ρ=1/6, n=6",
		func() (*core.System, core.Adversary) {
			sys, err := ksubsets.New(6, 3)
			if err != nil {
				fail(err)
			}
			return sys, adversary.New(adversary.T(1, 6, 2), adversary.Uniform(6, 42))
		}, rounds, reps))

	rows = append(rows, measure("SUB.aloha", "4-aloha steady state @ ρ=1/40, n=8",
		func() (*core.System, core.Adversary) {
			sys, err := randmac.New(8, 4)
			if err != nil {
				fail(err)
			}
			return sys, adversary.New(adversary.T(1, 40, 2), adversary.Uniform(8, 7))
		}, rounds, reps))

	rows = append(rows, pktqRow(rounds*4, reps))
	return rows
}

// networkRows measures the multi-channel topology layer end to end:
// orchestra replica sets under the budget-split network adversary,
// relays included — the loop the network regression gate watches.
// Rounds are network rounds (each advances all C channel sims), so the
// per-channel step rate is MroundsPerS × C.
//
// Topology shapes scale C from 4 to 1024; each parallel row (workers =
// GOMAXPROCS) is paired with a .ser twin (workers = 1) of the same
// configuration, and the pair's deterministic outputs are asserted
// identical — the worker-count-independence contract, gated on every
// bench run. Rows warm up before the measured window so steady-state
// allocs/round is 0 (buffer growth and ring sizing settle during
// warmup).
func networkRows(scale expt.Scale, reps int) []benchcmp.Row {
	mult := int64(1)
	if scale == expt.Full {
		mult = 4
	}
	cases := []struct {
		id, label string
		spec      network.Spec
		beta      int64
		rounds    int64
		workers   int
		jam       bool
	}{
		{"NET.line4", "orchestra line ×4 @ ρ=1/2 β=4, n=6, net-workers=auto",
			network.Spec{Kind: network.Line, Channels: 4, N: 6}, 4, 100000, 0, false},
		{"NET.line4.ser", "orchestra line ×4 @ ρ=1/2 β=4, n=6, serial",
			network.Spec{Kind: network.Line, Channels: 4, N: 6}, 4, 100000, 1, false},
		{"NET.star64", "orchestra star ×64 @ ρ=1/2 β=64, n=6, net-workers=auto",
			network.Spec{Kind: network.Star, Channels: 64, N: 6}, 64, 20000, 0, false},
		{"NET.star64.ser", "orchestra star ×64 @ ρ=1/2 β=64, n=6, serial",
			network.Spec{Kind: network.Star, Channels: 64, N: 6}, 64, 20000, 1, false},
		{"NET.grid64", "orchestra grid 8×8 @ ρ=1/2 β=64, n=6, net-workers=auto",
			network.Spec{Kind: network.Grid, Channels: 64, N: 6}, 64, 20000, 0, false},
		{"NET.rand64", "orchestra random ×64 seed 9 @ ρ=1/2 β=64, n=6, net-workers=auto",
			network.Spec{Kind: network.Random, Channels: 64, N: 6, Seed: 9}, 64, 20000, 0, false},
		{"NET.clique1024", "orchestra clique ×1024 @ ρ=1/2 β=1024, n=6, net-workers=auto",
			network.Spec{Kind: network.Clique, Channels: 1024, N: 6}, 1024, 1500, 0, false},
		{"NET.clique1024.ser", "orchestra clique ×1024 @ ρ=1/2 β=1024, n=6, serial",
			network.Spec{Kind: network.Clique, Channels: 1024, N: 6}, 1024, 1500, 1, false},
		// The ISSUE 8 disruption loop: duty-cycled aloha (the Tolerant
		// algorithm) under the budgeted jammer — jam flag selection,
		// disrupt plumbing, drop reclamation, and the duty wrapper all on
		// the measured path.
		{"NET.jam16", "aloha line ×16 jammed @ ρ=1/4 β=16 ρ_j=1/4 duty 32/16, n=6, net-workers=auto",
			network.Spec{Kind: network.Line, Channels: 16, N: 6}, 16, 50000, 0, true},
		{"NET.jam16.ser", "aloha line ×16 jammed @ ρ=1/4 β=16 ρ_j=1/4 duty 32/16, n=6, serial",
			network.Spec{Kind: network.Line, Channels: 16, N: 6}, 16, 50000, 1, true},
	}
	// Compile each distinct topology once: the Topology is immutable and
	// shared across repetitions and worker-count twins (the clique-1024
	// all-pairs BFS is the expensive part, not the stepping).
	topos := map[string]*network.Topology{}
	var rows []benchcmp.Row
	for _, c := range cases {
		key := fmt.Sprintf("%+v", c.spec)
		topo := topos[key]
		if topo == nil {
			var err error
			if topo, err = network.Compile(c.spec); err != nil {
				fail(fmt.Errorf("%s: %w", c.id, err))
			}
			topos[key] = topo
		}
		rows = append(rows, measureNet(c.id, c.label, topo, c.beta, c.rounds*mult, c.workers, reps, c.jam))
	}
	for i, r := range rows {
		base := strings.TrimSuffix(r.ID, ".ser")
		if base == r.ID {
			continue
		}
		for _, p := range rows[:i] {
			if p.ID == base && (p.QueueMax != r.QueueMax || p.Energy != r.Energy) {
				fail(fmt.Errorf("%s and %s diverge: queue_max %d vs %d, energy %v vs %v (worker-count independence broken)",
					p.ID, r.ID, p.QueueMax, r.QueueMax, p.Energy, r.Energy))
			}
		}
	}
	return rows
}

// measureNet is measure for a network row: fresh adversary and channel
// systems per repetition over a shared compiled topology, a warmup
// window before the allocation accounting, best-of-reps throughput.
// With jam set the row runs the disruption loop instead: duty-cycled
// aloha replica sets at ρ = 1/4 under a fresh (ρ_j = 1/4, β_j = 2)
// jammer per repetition, deterministic in the fixed seeds like the rest.
func measureNet(id, label string, topo *network.Topology, beta, rounds int64, workers, reps int, jam bool) benchcmp.Row {
	warmup := rounds / 10
	if warmup > 2000 {
		warmup = 2000
	}
	if warmup < 200 {
		warmup = 200
	}
	row := benchcmp.Row{ID: id, Label: label, Rounds: rounds}
	for rep := 0; rep < reps; rep++ {
		pats := make([]adversary.Pattern, topo.Channels())
		for c := range pats {
			pats[c] = adversary.Uniform(topo.Stations(), 31+int64(c)*1000003)
		}
		entry, build := adversary.T(1, 2, beta), func(ch int) (*core.System, error) {
			return orchestra.New(topo.StationsPerChannel())
		}
		opts := network.Options{SampleEvery: -1, Workers: workers}
		if jam {
			entry = adversary.T(1, 4, beta)
			build = func(ch int) (*core.System, error) {
				sys, err := randmac.NewSeeded(topo.StationsPerChannel(), 3, 17)
				if err != nil {
					return nil, err
				}
				sys, _ = duty.Wrap(sys, duty.Params{SleepAfterIdle: 32, WakeEvery: 16})
				return sys, nil
			}
			opts.Disruptor = network.NewJammer(adversary.T(1, 4, 2), topo.Channels(), 31)
		}
		adv, err := network.NewAdversary(topo, entry, pats)
		if err != nil {
			fail(fmt.Errorf("%s: %w", id, err))
		}
		net, err := network.New(topo, build, adv, opts)
		if err != nil {
			fail(fmt.Errorf("%s: %w", id, err))
		}
		if err := net.Run(warmup); err != nil {
			fail(fmt.Errorf("%s warmup: %w", id, err))
		}

		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := net.Run(rounds); err != nil {
			fail(fmt.Errorf("%s: %w", id, err))
		}
		elapsed := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		net.Close()

		speed := float64(rounds) / elapsed / 1e6
		allocs := float64(after.Mallocs-before.Mallocs) / float64(rounds)
		if rep == 0 || speed > row.MroundsPerS {
			row.MroundsPerS = speed
		}
		if rep == 0 || allocs < row.AllocsPerRound {
			row.AllocsPerRound = allocs
		}
		tr := net.Tracker()
		row.QueueMax = tr.MaxQueue
		row.Energy = tr.MeanEnergy()
	}
	return row
}

// pktqRow measures the raw queue reps times (best run wins, like
// measure): a deterministic op mix of pushes, destination pops, global
// pops, and removals at a bounded depth. "Rounds" counts operations.
func pktqRow(ops int64, reps int) benchcmp.Row {
	best := pktqRun(ops)
	for rep := 1; rep < reps; rep++ {
		r := pktqRun(ops)
		if r.MroundsPerS > best.MroundsPerS {
			best.MroundsPerS = r.MroundsPerS
		}
		if r.AllocsPerRound < best.AllocsPerRound {
			best.AllocsPerRound = r.AllocsPerRound
		}
	}
	return best
}

func pktqRun(ops int64) benchcmp.Row {
	const nDests = 16
	q := pktq.New(nDests)
	state := uint64(0x6ea7c0de)
	mix := func() uint64 {
		state += 0x9e3779b97f4a7c15
		return mix64(state)
	}
	nextID := int64(0)
	maxDepth := 0

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := int64(0); i < ops; i++ {
		r := mix()
		switch {
		case q.Len() < 64 && r%3 != 0: // bias pushes at low depth
			q.Push(mac.Packet{ID: nextID, Dest: int(r % nDests)})
			nextID++
		case r%5 == 1:
			q.PopFrontTo(int(r % nDests))
		case r%5 == 2 && nextID > 0:
			q.Remove(int64(r>>1) % nextID)
		default:
			q.PopFront()
		}
		if q.Len() > maxDepth {
			maxDepth = q.Len()
		}
	}
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	return benchcmp.Row{
		ID:             "SUB.pktq",
		Label:          "packet queue op mix (ops, not rounds)",
		Rounds:         ops,
		MroundsPerS:    float64(ops) / elapsed / 1e6,
		AllocsPerRound: float64(after.Mallocs-before.Mallocs) / float64(ops),
		QueueMax:       int64(maxDepth),
	}
}
