// Command earmac-bench measures simulator performance and writes a
// schema-stable BENCH_<rev>.json consumed by the CI regression gate and
// by the repository's perf trajectory.
//
// Two benchmark families run on the simulator's allocation-free fast
// path (strict checking off — correctness of the same configurations is
// covered by cmd/earmac-table and the test suite):
//
//   - the Table 1 set: every row of the paper's evaluation at the quick
//     or full horizon, and
//   - substrate micro-benchmarks: the prior-work broadcast substrates
//     (MBTF, RRW, OF-RRW), two steady-state routing workloads that must
//     stay allocation-free, and a raw packet-queue op mix.
//
// Every row reports throughput (Mrounds/s), allocs/round, and the
// deterministic simulation outputs queue_max and energy; the file also
// carries a pure-CPU calibration scalar so throughput can be compared
// across machines (see internal/benchcmp).
//
// Usage:
//
//	earmac-bench -quick -out BENCH_abc123.json
//	earmac-bench -quick -baseline BENCH_baseline.json   # CI gate: exit 1 on regression
//	earmac-bench -full                                  # 4× horizons
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"earmac/internal/adversary"
	"earmac/internal/algorithms/ksubsets"
	"earmac/internal/algorithms/orchestra"
	"earmac/internal/algorithms/randmac"
	"earmac/internal/benchcmp"
	"earmac/internal/core"
	"earmac/internal/expt"
	"earmac/internal/mac"
	"earmac/internal/mac/duty"
	"earmac/internal/metrics"
	"earmac/internal/network"
	"earmac/internal/pktq"
	"earmac/internal/prof"
	"earmac/internal/ratio"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "quick horizons (the CI setting)")
		full     = flag.Bool("full", false, "4x horizons")
		out      = flag.String("out", "", "output path (default BENCH_<rev>.json)")
		rev      = flag.String("rev", "", "revision stamp (default: git rev-parse --short HEAD)")
		baseline = flag.String("baseline", "", "compare against this bench file and exit 1 on regression")
		speedTol = flag.Float64("speed-tol", benchcmp.DefaultSpeedDropTolerance,
			"permitted relative Mrounds/s drop vs the baseline (0 = gate any drop)")
		repsFlag = flag.Int("reps", 5, "repetitions per row (best throughput wins, damping scheduler noise)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *quick && *full {
		fail(fmt.Errorf("-quick and -full are mutually exclusive"))
	}
	ps, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := ps.Stop(); err != nil {
			fail(err)
		}
	}()
	scale := expt.Full
	if *quick {
		scale = expt.Quick
	}

	r := *rev
	if r == "" {
		r = gitRev()
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", r)
	}

	file := benchcmp.File{
		Schema:    benchcmp.Schema,
		Rev:       r,
		GoVersion: runtime.Version(),
		Quick:     *quick,
	}
	reps := *repsFlag
	if reps < 1 {
		reps = 1
	}
	fmt.Fprintf(os.Stderr, "earmac-bench: calibrating...")
	file.CalibrationMops = calibrate(reps)
	fmt.Fprintf(os.Stderr, " %.0f Mops\n", file.CalibrationMops)
	for _, spec := range expt.Table1(scale) {
		file.Rows = append(file.Rows, benchSpec(spec, reps))
	}
	file.Rows = append(file.Rows, sparseRows(scale, reps)...)
	file.Rows = append(file.Rows, substrateRows(scale, reps)...)
	file.Rows = append(file.Rows, networkRows(scale, reps)...)
	assertTwins(file.Rows)
	for _, row := range file.Rows {
		fmt.Fprintf(os.Stderr, "earmac-bench: %-14s %8.3f Mrounds/s  %7.4f allocs/round  queue_max=%d\n",
			row.ID, row.MroundsPerS, row.AllocsPerRound, row.QueueMax)
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "earmac-bench: wrote %s (%d rows)\n", path, len(file.Rows))

	if *baseline != "" {
		base, err := benchcmp.Load(*baseline)
		if err != nil {
			fail(err)
		}
		res := benchcmp.Compare(base, file, benchcmp.Options{
			SpeedDropTolerance: *speedTol,
			AllocsSlack:        benchcmp.DefaultAllocsSlack,
		})
		fmt.Fprintf(os.Stderr, "earmac-bench: compared %d rows vs %s (calibration ratio %.2f)\n",
			res.Compared, *baseline, res.Ratio)
		for _, id := range res.New {
			fmt.Fprintf(os.Stderr, "earmac-bench: new row %s (not in baseline; informational)\n", id)
		}
		if !res.OK() {
			for _, f := range res.Findings {
				fmt.Fprintf(os.Stderr, "earmac-bench: REGRESSION %s\n", f)
			}
			ps.Stop() // os.Exit skips the deferred flush
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "earmac-bench: no regressions")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "earmac-bench:", err)
	os.Exit(1)
}

func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

// calibSink defeats dead-code elimination of the calibration loop.
var calibSink uint64

// mix64 is the splitmix64 finalizer — the fixed pure-CPU workload used
// for calibration and the deterministic op-mix driver for the queue
// micro-benchmark.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// calibrate times a fixed pure-CPU workload (the splitmix64 mix) and
// returns its speed in millions of operations per second, best of reps
// runs — the same noise-damping the benchmark rows get, since this
// scalar rescales the whole regression gate. The same workload on the
// baseline machine anchors cross-machine throughput comparisons.
func calibrate(reps int) float64 {
	const iters = 1 << 25
	best := 0.0
	for rep := 0; rep < reps; rep++ {
		x := uint64(0x9e3779b97f4a7c15)
		start := time.Now()
		for i := 0; i < iters; i++ {
			x += 0x9e3779b97f4a7c15
			x = mix64(x)
		}
		elapsed := time.Since(start).Seconds()
		calibSink = x
		if mops := float64(iters) / elapsed / 1e6; mops > best {
			best = mops
		}
	}
	return best
}

// measure runs a fast-path simulation reps times — a fresh system and
// adversary per repetition, so the fixed seeds make queue_max and energy
// identical across repetitions — and returns the row with the best
// throughput and the fewest allocations (scheduler noise only ever
// slows a run down or interleaves a GC; it never speeds one up).
func measure(id, label string, build func() (*core.System, core.Adversary), rounds int64, reps int) benchcmp.Row {
	return measureOpt(id, label, build, rounds, reps, false)
}

// measureOpt is measure with the quiescence engine's escape hatch
// exposed, so a ".noskip" twin can run the identical configuration on
// the classic per-round loop.
func measureOpt(id, label string, build func() (*core.System, core.Adversary), rounds int64, reps int, noskip bool) benchcmp.Row {
	row := benchcmp.Row{ID: id, Label: label, Rounds: rounds}
	for rep := 0; rep < reps; rep++ {
		sys, adv := build()
		tr := metrics.NewTracker()
		tr.SampleEvery = 0
		sim := core.NewSim(sys, adv, core.Options{Tracker: tr, NoSkip: noskip})

		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := sim.Run(rounds); err != nil {
			fail(fmt.Errorf("%s: %w", id, err))
		}
		elapsed := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)

		speed := float64(rounds) / elapsed / 1e6
		allocs := float64(after.Mallocs-before.Mallocs) / float64(rounds)
		if rep == 0 || speed > row.MroundsPerS {
			row.MroundsPerS = speed
		}
		if rep == 0 || allocs < row.AllocsPerRound {
			row.AllocsPerRound = allocs
		}
		row.QueueMax = tr.MaxQueue
		row.Energy = tr.MeanEnergy()
	}
	return row
}

// benchSpec runs one Table 1 row on the fast path with the same system,
// adversary, and seed the experiment harness uses.
func benchSpec(s expt.Spec, reps int) benchcmp.Row {
	return measure(s.ID, s.Label, func() (*core.System, core.Adversary) {
		sys, err := s.Build()
		if err != nil {
			fail(fmt.Errorf("%s: %w", s.ID, err))
		}
		var adv core.Adversary
		if s.Adv != nil {
			adv = s.Adv(sys)
		} else {
			adv = adversary.New(adversary.Type{Rho: s.Rho, Beta: ratio.FromInt(s.Beta)},
				adversary.Uniform(sys.N(), s.Seed+1))
		}
		return sys, adv
	}, s.Rounds, reps)
}

// sparseRows measures the quiescence fast-forward engine (DESIGN.md
// §16) on a sparse single-channel workload: at ρ = 1/1024 the entry
// bucket starves for ~1024 rounds after each spend, each injected
// packet drains within a few dozen rounds, and the engine's closed-form
// span skip covers almost the whole run in O(1) jumps. The ".noskip"
// twin runs the identical configuration on the classic per-round loop;
// assertTwins gates their deterministic outputs bit-identical on every
// bench run, the same contract the ".ser" rows pin for worker counts.
func sparseRows(scale expt.Scale, reps int) []benchcmp.Row {
	rounds := int64(2000000)
	if scale == expt.Full {
		rounds *= 4
	}
	build := func() (*core.System, core.Adversary) {
		sys, err := ksubsets.New(6, 3)
		if err != nil {
			fail(err)
		}
		return sys, adversary.New(adversary.T(1, 1024, 1), adversary.Uniform(6, 42))
	}
	return []benchcmp.Row{
		measureOpt("T1.sparse", "3-subsets sparse @ ρ=1/1024 β=1, n=6 (span skipping)", build, rounds, reps, false),
		measureOpt("T1.sparse.noskip", "3-subsets sparse @ ρ=1/1024 β=1, n=6, per-round loop", build, rounds, reps, true),
	}
}

// substrateRows benchmarks the simulator substrate: the prior-work
// broadcast algorithms at their claimed rates, two steady-state routing
// workloads that the fast path must keep allocation-free, and the raw
// packet queue.
func substrateRows(scale expt.Scale, reps int) []benchcmp.Row {
	rounds := int64(150000)
	if scale == expt.Full {
		rounds *= 4
	}
	var rows []benchcmp.Row

	for _, c := range []struct {
		id, alg    string
		rhoN, rhoD int64
	}{
		{"SUB.mbtf", "mbtf", 1, 1},
		{"SUB.rrw", "rrw", 3, 4},
		{"SUB.ofrrw", "ofrrw", 3, 4},
	} {
		c := c
		rows = append(rows, measure(c.id, fmt.Sprintf("%s @ ρ=%d/%d, n=8", c.alg, c.rhoN, c.rhoD),
			func() (*core.System, core.Adversary) {
				sys, err := expt.Build(c.alg, 8, 0)
				if err != nil {
					fail(err)
				}
				typ := adversary.Type{Rho: ratio.New(c.rhoN, c.rhoD), Beta: ratio.FromInt(2)}
				return sys, adversary.New(typ, adversary.Uniform(8, 11))
			}, rounds, reps))
	}

	rows = append(rows, measure("SUB.ksubsets", "3-subsets steady state @ ρ=1/6, n=6",
		func() (*core.System, core.Adversary) {
			sys, err := ksubsets.New(6, 3)
			if err != nil {
				fail(err)
			}
			return sys, adversary.New(adversary.T(1, 6, 2), adversary.Uniform(6, 42))
		}, rounds, reps))

	rows = append(rows, measure("SUB.aloha", "4-aloha steady state @ ρ=1/40, n=8",
		func() (*core.System, core.Adversary) {
			sys, err := randmac.New(8, 4)
			if err != nil {
				fail(err)
			}
			return sys, adversary.New(adversary.T(1, 40, 2), adversary.Uniform(8, 7))
		}, rounds, reps))

	rows = append(rows, pktqRow(rounds*4, reps))
	return rows
}

// networkRows measures the multi-channel topology layer end to end:
// orchestra replica sets under the budget-split network adversary,
// relays included — the loop the network regression gate watches.
// Rounds are network rounds (each advances all C channel sims), so the
// per-channel step rate is MroundsPerS × C.
//
// Topology shapes scale C from 4 to 1024; each parallel row (workers =
// GOMAXPROCS) is paired with a .ser twin (workers = 1) of the same
// configuration, and the pair's deterministic outputs are asserted
// identical — the worker-count-independence contract, gated on every
// bench run. Rows warm up before the measured window so steady-state
// allocs/round is 0 (buffer growth and ring sizing settle during
// warmup).
func networkRows(scale expt.Scale, reps int) []benchcmp.Row {
	mult := int64(1)
	if scale == expt.Full {
		mult = 4
	}
	cases := []struct {
		id, label string
		spec      network.Spec
		beta      int64
		rounds    int64
		workers   int
		mode      string // "" plain orchestra, "jam" ISSUE 8 loop, "frontier" sparse jam+duty
		noskip    bool
	}{
		{"NET.line4", "orchestra line ×4 @ ρ=1/2 β=4, n=6, net-workers=auto",
			network.Spec{Kind: network.Line, Channels: 4, N: 6}, 4, 100000, 0, "", false},
		{"NET.line4.ser", "orchestra line ×4 @ ρ=1/2 β=4, n=6, serial",
			network.Spec{Kind: network.Line, Channels: 4, N: 6}, 4, 100000, 1, "", false},
		{"NET.star64", "orchestra star ×64 @ ρ=1/2 β=64, n=6, net-workers=auto",
			network.Spec{Kind: network.Star, Channels: 64, N: 6}, 64, 20000, 0, "", false},
		{"NET.star64.ser", "orchestra star ×64 @ ρ=1/2 β=64, n=6, serial",
			network.Spec{Kind: network.Star, Channels: 64, N: 6}, 64, 20000, 1, "", false},
		{"NET.grid64", "orchestra grid 8×8 @ ρ=1/2 β=64, n=6, net-workers=auto",
			network.Spec{Kind: network.Grid, Channels: 64, N: 6}, 64, 20000, 0, "", false},
		{"NET.rand64", "orchestra random ×64 seed 9 @ ρ=1/2 β=64, n=6, net-workers=auto",
			network.Spec{Kind: network.Random, Channels: 64, N: 6, Seed: 9}, 64, 20000, 0, "", false},
		{"NET.clique1024", "orchestra clique ×1024 @ ρ=1/2 β=1024, n=6, net-workers=auto",
			network.Spec{Kind: network.Clique, Channels: 1024, N: 6}, 1024, 1500, 0, "", false},
		{"NET.clique1024.ser", "orchestra clique ×1024 @ ρ=1/2 β=1024, n=6, serial",
			network.Spec{Kind: network.Clique, Channels: 1024, N: 6}, 1024, 1500, 1, "", false},
		// The ISSUE 8 disruption loop: duty-cycled aloha (the Tolerant
		// algorithm) under the budgeted jammer — jam flag selection,
		// disrupt plumbing, drop reclamation, and the duty wrapper all on
		// the measured path.
		{"NET.jam16", "aloha line ×16 jammed @ ρ=1/4 β=16 ρ_j=1/4 duty 32/16, n=6, net-workers=auto",
			network.Spec{Kind: network.Line, Channels: 16, N: 6}, 16, 50000, 0, "jam", false},
		{"NET.jam16.ser", "aloha line ×16 jammed @ ρ=1/4 β=16 ρ_j=1/4 duty 32/16, n=6, serial",
			network.Spec{Kind: network.Line, Channels: 16, N: 6}, 16, 50000, 1, "jam", false},
		// The energy frontier under the quiescence engine: the ISSUE 8
		// jam+duty shape in its sparse regime — n=24 per channel at a
		// global entry rate of ρ=1/1024 and a long duty sleep, where the
		// duty wrapper's zero-energy idle profile turns almost every
		// round — jammed rounds included — into an O(1) quiescent tick
		// per channel (the live jammer pins span skipping, so this row
		// measures tier 1). The ".noskip" twin forces the per-round O(n)
		// sweep; assertTwins gates the pair bit-identical on every run.
		{"NET.frontier16", "aloha line ×16 jammed @ ρ=1/1024 β=16 ρ_j=1/4 duty 8/256, n=24, quiescent ticks",
			network.Spec{Kind: network.Line, Channels: 16, N: 24}, 16, 50000, 1, "frontier", false},
		{"NET.frontier16.noskip", "aloha line ×16 jammed @ ρ=1/1024 β=16 ρ_j=1/4 duty 8/256, n=24, per-round loop",
			network.Spec{Kind: network.Line, Channels: 16, N: 24}, 16, 50000, 1, "frontier", true},
	}
	// Compile each distinct topology once: the Topology is immutable and
	// shared across repetitions and worker-count twins (the clique-1024
	// all-pairs BFS is the expensive part, not the stepping).
	topos := map[string]*network.Topology{}
	var rows []benchcmp.Row
	for _, c := range cases {
		key := fmt.Sprintf("%+v", c.spec)
		topo := topos[key]
		if topo == nil {
			var err error
			if topo, err = network.Compile(c.spec); err != nil {
				fail(fmt.Errorf("%s: %w", c.id, err))
			}
			topos[key] = topo
		}
		rows = append(rows, measureNet(c.id, c.label, topo, c.beta, c.rounds*mult, c.workers, reps, c.mode, c.noskip))
	}
	return rows
}

// assertTwins enforces the twin contracts on every bench run, CI's gate
// included: a ".ser" row must match its parallel base row (the
// worker-count-independence contract, DESIGN.md §13) and a ".noskip"
// row must match its fast-forward base row (the quiescence-engine
// bit-identity contract, DESIGN.md §16) on the deterministic outputs.
func assertTwins(rows []benchcmp.Row) {
	byID := make(map[string]benchcmp.Row, len(rows))
	for _, r := range rows {
		byID[r.ID] = r
	}
	for _, r := range rows {
		var base, contract string
		switch {
		case strings.HasSuffix(r.ID, ".ser"):
			base, contract = strings.TrimSuffix(r.ID, ".ser"), "worker-count independence"
		case strings.HasSuffix(r.ID, ".noskip"):
			base, contract = strings.TrimSuffix(r.ID, ".noskip"), "quiescence-engine bit-identity"
		default:
			continue
		}
		p, ok := byID[base]
		if !ok {
			fail(fmt.Errorf("twin row %s has no base row %s", r.ID, base))
		}
		if p.QueueMax != r.QueueMax || p.Energy != r.Energy {
			fail(fmt.Errorf("%s and %s diverge: queue_max %d vs %d, energy %v vs %v (%s broken)",
				p.ID, r.ID, p.QueueMax, r.QueueMax, p.Energy, r.Energy, contract))
		}
	}
}

// measureNet is measure for a network row: fresh adversary and channel
// systems per repetition over a shared compiled topology, a warmup
// window before the allocation accounting, best-of-reps throughput.
// Mode "jam" runs the disruption loop instead: duty-cycled aloha
// replica sets at ρ = 1/4 under a fresh (ρ_j = 1/4, β_j = 2) jammer per
// repetition, deterministic in the fixed seeds like the rest. Mode
// "frontier" is the same machinery in its sparse regime — ρ = 1/1024
// entries and a long (8/256) duty cycle, so nearly every round is an
// O(1) quiescent tick when the engine is on. noskip forces the classic
// per-round loop (network.Options.NoSkip) for the quiescence twin rows.
func measureNet(id, label string, topo *network.Topology, beta, rounds int64, workers, reps int, mode string, noskip bool) benchcmp.Row {
	warmup := rounds / 10
	if warmup > 2000 {
		warmup = 2000
	}
	if warmup < 200 {
		warmup = 200
	}
	row := benchcmp.Row{ID: id, Label: label, Rounds: rounds}
	for rep := 0; rep < reps; rep++ {
		pats := make([]adversary.Pattern, topo.Channels())
		for c := range pats {
			pats[c] = adversary.Uniform(topo.Stations(), 31+int64(c)*1000003)
		}
		entry, build := adversary.T(1, 2, beta), func(ch int) (*core.System, error) {
			return orchestra.New(topo.StationsPerChannel())
		}
		opts := network.Options{SampleEvery: -1, Workers: workers, NoSkip: noskip}
		if mode == "jam" || mode == "frontier" {
			entryDen, dutyParams := int64(4), duty.Params{SleepAfterIdle: 32, WakeEvery: 16}
			if mode == "frontier" {
				entryDen, dutyParams = 1024, duty.Params{SleepAfterIdle: 8, WakeEvery: 256}
			}
			entry = adversary.T(1, entryDen, beta)
			build = func(ch int) (*core.System, error) {
				sys, err := randmac.NewSeeded(topo.StationsPerChannel(), 3, 17)
				if err != nil {
					return nil, err
				}
				sys, _ = duty.Wrap(sys, dutyParams)
				return sys, nil
			}
			opts.Disruptor = network.NewJammer(adversary.T(1, 4, 2), topo.Channels(), 31)
		}
		adv, err := network.NewAdversary(topo, entry, pats)
		if err != nil {
			fail(fmt.Errorf("%s: %w", id, err))
		}
		net, err := network.New(topo, build, adv, opts)
		if err != nil {
			fail(fmt.Errorf("%s: %w", id, err))
		}
		if err := net.Run(warmup); err != nil {
			fail(fmt.Errorf("%s warmup: %w", id, err))
		}

		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := net.Run(rounds); err != nil {
			fail(fmt.Errorf("%s: %w", id, err))
		}
		elapsed := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		net.Close()

		speed := float64(rounds) / elapsed / 1e6
		allocs := float64(after.Mallocs-before.Mallocs) / float64(rounds)
		if rep == 0 || speed > row.MroundsPerS {
			row.MroundsPerS = speed
		}
		if rep == 0 || allocs < row.AllocsPerRound {
			row.AllocsPerRound = allocs
		}
		tr := net.Tracker()
		row.QueueMax = tr.MaxQueue
		row.Energy = tr.MeanEnergy()
	}
	return row
}

// pktqRow measures the raw queue reps times (best run wins, like
// measure): a deterministic op mix of pushes, destination pops, global
// pops, and removals at a bounded depth. "Rounds" counts operations.
func pktqRow(ops int64, reps int) benchcmp.Row {
	best := pktqRun(ops)
	for rep := 1; rep < reps; rep++ {
		r := pktqRun(ops)
		if r.MroundsPerS > best.MroundsPerS {
			best.MroundsPerS = r.MroundsPerS
		}
		if r.AllocsPerRound < best.AllocsPerRound {
			best.AllocsPerRound = r.AllocsPerRound
		}
	}
	return best
}

func pktqRun(ops int64) benchcmp.Row {
	const nDests = 16
	q := pktq.New(nDests)
	state := uint64(0x6ea7c0de)
	mix := func() uint64 {
		state += 0x9e3779b97f4a7c15
		return mix64(state)
	}
	nextID := int64(0)
	maxDepth := 0

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := int64(0); i < ops; i++ {
		r := mix()
		switch {
		case q.Len() < 64 && r%3 != 0: // bias pushes at low depth
			q.Push(mac.Packet{ID: nextID, Dest: int(r % nDests)})
			nextID++
		case r%5 == 1:
			q.PopFrontTo(int(r % nDests))
		case r%5 == 2 && nextID > 0:
			q.Remove(int64(r>>1) % nextID)
		default:
			q.PopFront()
		}
		if q.Len() > maxDepth {
			maxDepth = q.Len()
		}
	}
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	return benchcmp.Row{
		ID:             "SUB.pktq",
		Label:          "packet queue op mix (ops, not rounds)",
		Rounds:         ops,
		MroundsPerS:    float64(ops) / elapsed / 1e6,
		AllocsPerRound: float64(after.Mallocs-before.Mallocs) / float64(ops),
		QueueMax:       int64(maxDepth),
	}
}
