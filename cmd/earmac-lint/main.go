// Command earmac-lint runs the project's static-analysis suite
// (internal/analysis) over the given package patterns: determiter,
// hotalloc, fpsafe, and regmeta — the tooling form of the module's
// determinism, zero-alloc, and fingerprint invariants (DESIGN.md §15).
//
// Usage:
//
//	earmac-lint [flags] [packages]
//
// With no patterns it lints ./.... Exit status is 0 when the tree is
// clean, 1 when any analyzer reported a finding, and 2 when loading or
// type-checking failed. Diagnostics print one per line as
// "file:line:col: [analyzer] message", ready for editors and CI
// annotations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"earmac/internal/analysis"
)

func main() {
	var (
		detPkgs = flag.String("det.pkgs", strings.Join(analysis.DeterministicPackages, ","),
			"comma-separated import paths determiter applies to")
		regRoot = flag.String("regmeta.root", "/internal/algorithms/",
			"import-path substring identifying algorithm packages for regmeta")
		dir = flag.String("C", "", "change to this directory before resolving patterns")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: earmac-lint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(),
			"Runs the earmac static-analysis suite (determiter, hotalloc, fpsafe, regmeta).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	analyzers := []*analysis.Analyzer{
		analysis.NewDeterIter(strings.Split(*detPkgs, ",")...),
		analysis.NewHotAlloc(),
		analysis.NewFpSafe(),
		analysis.NewRegMeta(*regRoot),
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "earmac-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
