// Command earmac-serve is a long-running experiment service: it accepts
// façade Configs as JSON over HTTP, executes them on a shared bounded
// worker pool with per-job cancellation, streams interim progress
// snapshots, and memoizes every completed Report in a content-addressed
// cache keyed by Config.Fingerprint — re-submitting an identical config
// returns the cached report byte-identically without re-simulating.
//
// Usage:
//
//	earmac-serve -addr :8321 -parallel 4
//
//	# synchronous run (second call is a cache hit, byte-identical)
//	curl -s -X POST localhost:8321/v1/run -d '{"algorithm":"orchestra","n":8,"rounds":200000}'
//
//	# asynchronous: submit, stream progress, fetch the result
//	curl -s -X POST localhost:8321/v1/jobs -d '{"algorithm":"k-cycle","n":9,"k":3,"rounds":5000000}'
//	curl -sN localhost:8321/v1/jobs/<id>/stream
//	curl -s localhost:8321/v1/jobs/<id>/result
//
// With -cache-dir the result cache gains a disk tier: completed reports
// survive restarts and POST /v1/cache/preload warms the memory tier.
//
// With -coordinator the process serves the cluster tier instead of
// running simulations itself: POST /v1/suite expands the grid locally,
// shards the cells across the -workers pool of earmac-serve processes,
// and responds with the merged SuiteReport — byte-identical to a
// single-process run of the same grid:
//
//	earmac-serve -addr :8320 -coordinator -workers localhost:8321,localhost:8322
//	curl -s -X POST localhost:8320/v1/suite -d '{"algorithms":["orchestra"],"ns":[8,16],"base":{"rounds":200000}}'
//
// SIGTERM (and the first SIGINT) drains: submissions are refused,
// queued jobs are cancelled without running, in-flight simulations run
// to completion before the process exits. A second signal, or the
// -drain-timeout deadline, cancels in-flight jobs hard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served only via -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"earmac/internal/cluster"
	"earmac/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8321", "listen address")
		parallel = flag.Int("parallel", 0, "simulation workers, or in-flight cells per suite in coordinator mode (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "maximum queued jobs before submissions get 503 + Retry-After")
		cacheN   = flag.Int("cache", 1024, "maximum in-memory cached results (content-addressed, LRU eviction)")
		cacheDir = flag.String("cache-dir", "", "directory for the disk cache tier (results survive restarts; empty = memory only)")
		netWork  = flag.Int("net-workers", 1, "channel-stepping workers per network job (0 = GOMAXPROCS, 1 = serial; results are identical at any value). The default stays serial because -parallel already runs jobs concurrently")
		timeout  = flag.Duration("drain-timeout", time.Minute, "how long a drain waits for in-flight jobs before cancelling them")

		coordinator = flag.Bool("coordinator", false, "serve the cluster tier: shard /v1/suite cells across -workers instead of simulating locally")
		workers     = flag.String("workers", "", "comma-separated worker base URLs for -coordinator (host:port or http://host:port)")
		cellTimeout = flag.Duration("cell-timeout", 5*time.Minute, "coordinator: per-attempt deadline for one cell dispatch")
		retries     = flag.Int("retries", 3, "coordinator: extra attempts for a retryable cell failure, re-dispatched to another worker")
		hedgeAfter  = flag.Duration("hedge-after", 30*time.Second, "coordinator: race a second attempt on another worker after this long (negative disables)")

		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060; empty = off)")
	)
	flag.Parse()

	// The debug endpoints live on their own listener so the profiling
	// surface is never exposed on the service address; net/http/pprof
	// registers on the default mux, which nothing else uses.
	if *pprofAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "earmac-serve: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "earmac-serve: pprof:", err)
			}
		}()
	}

	if *coordinator {
		runCoordinator(*addr, *workers, cluster.Options{
			CellTimeout:  *cellTimeout,
			Retries:      *retries,
			HedgeAfter:   *hedgeAfter,
			Parallel:     *parallel,
			CacheEntries: *cacheN,
			CacheDir:     *cacheDir,
		})
		return
	}

	svc := service.New(service.Options{
		Workers:      *parallel,
		QueueDepth:   *queue,
		CacheEntries: *cacheN,
		CacheDir:     *cacheDir,
		NetWorkers:   *netWork,
	})
	svc.Start()
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "earmac-serve: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "earmac-serve:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "earmac-serve: %v: draining (in-flight jobs finish, queued jobs are cancelled; signal again to cancel hard)\n", sig)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "earmac-serve: second signal: cancelling in-flight jobs")
		cancel()
	}()
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "earmac-serve: drain cut short:", err)
	}
	cancel()

	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "earmac-serve:", err)
	}
	fmt.Fprintln(os.Stderr, "earmac-serve: drained, bye")
}

// runCoordinator serves the cluster tier until a signal, then shuts the
// listener down gracefully (in-flight suite requests complete).
func runCoordinator(addr, workerList string, opts cluster.Options) {
	for _, w := range strings.Split(workerList, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !strings.Contains(w, "://") {
			w = "http://" + w
		}
		opts.Workers = append(opts.Workers, w)
	}
	coord, err := cluster.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "earmac-serve: -coordinator needs -workers url[,url...]:", err)
		os.Exit(2)
	}
	coord.Start()
	httpSrv := &http.Server{Addr: addr, Handler: coord}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "earmac-serve: coordinating %d workers on %s\n", len(opts.Workers), addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "earmac-serve:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "earmac-serve: %v: shutting down (in-flight suites finish)\n", sig)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "earmac-serve:", err)
	}
	coord.Stop()
	fmt.Fprintln(os.Stderr, "earmac-serve: coordinator stopped, bye")
}
