// Command earmac-serve is a long-running experiment service: it accepts
// façade Configs as JSON over HTTP, executes them on a shared bounded
// worker pool with per-job cancellation, streams interim progress
// snapshots, and memoizes every completed Report in a content-addressed
// cache keyed by Config.Fingerprint — re-submitting an identical config
// returns the cached report byte-identically without re-simulating.
//
// Usage:
//
//	earmac-serve -addr :8321 -parallel 4
//
//	# synchronous run (second call is a cache hit, byte-identical)
//	curl -s -X POST localhost:8321/v1/run -d '{"algorithm":"orchestra","n":8,"rounds":200000}'
//
//	# asynchronous: submit, stream progress, fetch the result
//	curl -s -X POST localhost:8321/v1/jobs -d '{"algorithm":"k-cycle","n":9,"k":3,"rounds":5000000}'
//	curl -sN localhost:8321/v1/jobs/<id>/stream
//	curl -s localhost:8321/v1/jobs/<id>/result
//
// SIGTERM (and the first SIGINT) drains: submissions are refused,
// queued jobs are cancelled without running, in-flight simulations run
// to completion before the process exits. A second signal, or the
// -drain-timeout deadline, cancels in-flight jobs hard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"earmac/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8321", "listen address")
		parallel = flag.Int("parallel", 0, "simulation workers (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "maximum queued jobs before submissions get 503")
		cacheN   = flag.Int("cache", 1024, "maximum cached results (content-addressed, FIFO eviction)")
		timeout  = flag.Duration("drain-timeout", time.Minute, "how long a drain waits for in-flight jobs before cancelling them")
	)
	flag.Parse()

	svc := service.New(service.Options{
		Workers:      *parallel,
		QueueDepth:   *queue,
		CacheEntries: *cacheN,
	})
	svc.Start()
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "earmac-serve: listening on %s\n", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "earmac-serve:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "earmac-serve: %v: draining (in-flight jobs finish, queued jobs are cancelled; signal again to cancel hard)\n", sig)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "earmac-serve: second signal: cancelling in-flight jobs")
		cancel()
	}()
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "earmac-serve: drain cut short:", err)
	}
	cancel()

	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "earmac-serve:", err)
	}
	fmt.Fprintln(os.Stderr, "earmac-serve: drained, bye")
}
