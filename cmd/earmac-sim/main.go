// Command earmac-sim runs one simulation of an energy-capped routing
// algorithm on a shared channel and prints a measurement report.
//
// Usage:
//
//	earmac-sim -alg orchestra -n 8 -rho 1/1 -beta 2 -rounds 200000
//	earmac-sim -alg k-cycle -n 9 -k 3 -rho 1/5 -pattern single-target -src 0 -dest 8
//	earmac-sim -alg count-hop -n 6 -json          # Report in the shared JSON schema
//	earmac-sim -alg orchestra -rounds 5000000 -progress
//
// A -topology turns the run into a network of shared channels (each an
// independent contention domain running its own n-station replica set,
// bridged by relays; see DESIGN.md §11):
//
//	earmac-sim -alg orchestra -topology line -channels 3 -n 5 -rho 1/2 -beta 3
//	earmac-sim -alg count-hop -topology custom -channels 4 -links 0-1,1-2,1-3 -n 4 -json
//
// Scenarios are data: a seeded stochastic pattern or a phase schedule
// describes a whole workload, and any run can be recorded as a
// replayable trace and re-executed bit-for-bit:
//
//	earmac-sim -alg orchestra -pattern bernoulli -seed 7 -rho 1/3
//	earmac-sim -alg count-hop -phases quiet:4000,bursty:2000,poisson-batch:0
//	earmac-sim -alg orchestra -pattern poisson-batch -record run.trace.jsonl
//	earmac-sim -replay run.trace.jsonl -json      # same counters, bit-identical
//	earmac-sim -replay run.trace.jsonl -checked   # replay on the checked path
//
// The run honours SIGINT: interrupting prints the measurements gathered
// so far and exits 130 so scripts can tell a truncated horizon from a
// completed one.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"earmac"
	"earmac/internal/prof"
)

func main() {
	var (
		alg      = flag.String("alg", "orchestra", "algorithm: "+strings.Join(earmac.Algorithms(), ", "))
		n        = flag.Int("n", 8, "number of stations (per channel, with -topology)")
		topology = flag.String("topology", "", "network of channels: "+strings.Join(earmac.Topologies(), ", ")+" (empty = single channel)")
		channels = flag.Int("channels", 0, "channel count for -topology (default 2)")
		links    = flag.String("links", "", "explicit channel links for -topology custom, e.g. 0-1,1-2,1-3")
		netWork  = flag.Int("net-workers", 0, "worker goroutines stepping a network's channels (0 = GOMAXPROCS, 1 = serial; output is identical at any value)")
		k        = flag.Int("k", 3, "energy cap parameter for the k-parameterized algorithms")
		rho      = flag.String("rho", "1/2", "injection rate as a fraction p/q (or an integer)")
		beta     = flag.Int64("beta", 1, "burstiness coefficient β")
		pattern  = flag.String("pattern", "uniform", "injection pattern: "+strings.Join(earmac.Patterns(), ", "))
		src      = flag.Int("src", 0, "source station for targeted patterns")
		dest     = flag.Int("dest", 1, "destination station for targeted patterns")
		seed     = flag.Int64("seed", 1, "seed for randomized patterns")
		rounds   = flag.Int64("rounds", 100000, "rounds to simulate")
		stop     = flag.Int64("stop-injections", 0, "stop injecting after this round (0 = never), to observe draining")
		jamRho   = flag.String("jam-rho", "", "jamming adversary rate ρ_j as a fraction p/q (empty = no jamming; needs a tolerant algorithm, e.g. aloha)")
		jamBeta  = flag.Int64("jam-beta", 0, "jamming burstiness β_j (default 1 with -jam-rho)")
		outages  = flag.String("outages", "", "channel outage windows ch@from+rounds[,...], e.g. 0@1000+200")
		sleepIdl = flag.Int64("sleep-idle", 0, "duty-cycling: sleep instead of listening after this many idle rounds (0 = off)")
		wakeEv   = flag.Int64("wake-every", 0, "duty-cycling: wake a sleeping station every this many rounds")
		enBudget = flag.Int64("energy-budget", 0, "duty-cycling: stop listening for good after this many switched-on rounds (0 = unlimited)")
		lenient  = flag.Bool("lenient", false, "record model violations instead of aborting")
		checked  = flag.Bool("checked", false, "force the fully-validating round loop (schedule-conformance scan included)")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON (shared Report schema)")
		progress = flag.Bool("progress", false, "log interim progress snapshots to stderr")
		traceN   = flag.Int64("trace", 0, "log this many rounds of channel events to stderr")
		traceAt  = flag.Int64("trace-from", 0, "first round to trace")
		phases   = flag.String("phases", "", "phase schedule pattern:rounds[,pattern:rounds...] (overrides -pattern; last rounds may be 0 = rest of run)")
		record   = flag.String("record", "", "record a replayable injection trace (JSONL) to this file")
		replay   = flag.String("replay", "", "replay a recorded trace; the trace's config supplies the scenario")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	var cfg earmac.Config
	if *replay != "" {
		// Fail fast on flags the trace supplies: a replayed run takes its
		// scenario (pattern, phases) from the trace, and re-recording a
		// replay would just copy the input. Silently letting one flag win
		// used to hide the mistake.
		if err := replayConflicts(); err != nil {
			fmt.Fprintln(os.Stderr, "earmac-sim:", err)
			os.Exit(2)
		}
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "earmac-sim:", err)
			os.Exit(2)
		}
		tr, err := earmac.ReadTrace(f)
		f.Close()
		if err == nil {
			cfg, err = earmac.ReplayConfig(tr)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "earmac-sim:", err)
			os.Exit(2)
		}
		if *lenient {
			cfg.Lenient = true
		}
	} else {
		num, den, err := parseRho(*rho)
		if err != nil {
			fmt.Fprintln(os.Stderr, "earmac-sim:", err)
			os.Exit(2)
		}
		lk, err := parseLinks(*links)
		if err != nil {
			fmt.Fprintln(os.Stderr, "earmac-sim:", err)
			os.Exit(2)
		}
		ow, err := parseOutages(*outages)
		if err != nil {
			fmt.Fprintln(os.Stderr, "earmac-sim:", err)
			os.Exit(2)
		}
		cfg = earmac.Config{
			Algorithm:           *alg,
			N:                   *n,
			Topology:            *topology,
			Channels:            *channels,
			Links:               lk,
			K:                   *k,
			RhoNum:              num,
			RhoDen:              den,
			Beta:                *beta,
			Pattern:             *pattern,
			Src:                 *src,
			Dest:                *dest,
			Seed:                *seed,
			Rounds:              *rounds,
			StopInjectionsAfter: *stop,
			Lenient:             *lenient,
			JamBeta:             *jamBeta,
			Outages:             ow,
			SleepAfterIdle:      *sleepIdl,
			WakeEvery:           *wakeEv,
			EnergyBudget:        *enBudget,
		}
		if *jamRho != "" {
			jn, jd, err := parseRho(*jamRho)
			if err != nil {
				fmt.Fprintln(os.Stderr, "earmac-sim:", err)
				os.Exit(2)
			}
			cfg.JamRhoNum, cfg.JamRhoDen = jn, jd
		}
		if *phases != "" {
			ph, err := parsePhases(*phases)
			if err != nil {
				fmt.Fprintln(os.Stderr, "earmac-sim:", err)
				os.Exit(2)
			}
			cfg.Phases = ph
		}
	}
	if *checked {
		cfg.ForceChecked = true
	}
	cfg.NetWorkers = *netWork // runtime-only: composes with -replay too
	var recordFile *os.File
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "earmac-sim:", err)
			os.Exit(2)
		}
		recordFile = f
		cfg.RecordTo = f
	}
	if *traceN > 0 {
		cfg.Trace = os.Stderr
		cfg.TraceFrom = *traceAt
		cfg.TraceUpTo = *traceAt + *traceN
	}
	if *progress {
		cfg.OnProgress = func(p earmac.Progress) {
			fmt.Fprintf(os.Stderr, "earmac-sim: round %d/%d, pending %d, max queue %d\n",
				p.Round, p.Total, p.Report.Pending, p.Report.MaxQueue)
		}
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "earmac-sim:", err)
		os.Exit(2)
	}

	ps, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "earmac-sim:", err)
		os.Exit(2)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	rep, err := earmac.RunContext(ctx, cfg)
	// Profiles cover exactly the simulation; flush them before any of
	// the exit paths below (os.Exit skips deferred calls).
	if perr := ps.Stop(); perr != nil {
		fmt.Fprintln(os.Stderr, "earmac-sim:", perr)
	}
	interrupted := errors.Is(err, context.Canceled)
	if recordFile != nil {
		if cerr := recordFile.Close(); cerr != nil && err == nil {
			err = cerr
			interrupted = false
		}
	}
	if err != nil && !interrupted {
		fmt.Fprintln(os.Stderr, "earmac-sim:", err)
		os.Exit(1)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "earmac-sim: interrupted after %d rounds; partial report follows\n", rep.Rounds)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "earmac-sim:", err)
			os.Exit(1)
		}
	} else {
		fmt.Print(rep.Summary())
	}
	if interrupted {
		// Distinguish a truncated horizon from a completed run for scripts.
		os.Exit(130)
	}
}

// replayConflicts returns a typed error (wrapping earmac.ErrConflict)
// when -replay is combined with an explicitly-set flag whose value the
// replayed trace already determines — every scenario flag, not just the
// obviously-colliding ones, so no flag can silently lose to the trace.
// Only the flags that choose *how* to replay (-lenient, -checked,
// -json, -progress, -trace*) compose with -replay. flag.Visit reports
// set flags in lexicographical order, so the message is deterministic.
func replayConflicts() error {
	exclusive := map[string]bool{
		"alg": true, "n": true, "k": true,
		"topology": true, "channels": true, "links": true,
		"rho": true, "beta": true,
		"pattern": true, "phases": true,
		"src": true, "dest": true, "seed": true,
		"rounds": true, "stop-injections": true,
		"record":  true,
		"jam-rho": true, "jam-beta": true, "outages": true,
		"sleep-idle": true, "wake-every": true, "energy-budget": true,
	}
	var set []string
	flag.Visit(func(f *flag.Flag) {
		if exclusive[f.Name] {
			set = append(set, "-"+f.Name)
		}
	})
	if len(set) == 0 {
		return nil
	}
	return fmt.Errorf("earmac: %w: -replay is exclusive with %s (the replayed trace supplies the scenario)",
		earmac.ErrConflict, strings.Join(set, ", "))
}

// parseOutages parses "ch@from+rounds,..." into outage windows.
func parseOutages(spec string) ([]earmac.Outage, error) {
	if spec == "" {
		return nil, nil
	}
	var out []earmac.Outage
	for _, part := range strings.Split(spec, ",") {
		chs, win, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("bad outage %q: want ch@from+rounds", part)
		}
		froms, lens, ok := strings.Cut(win, "+")
		if !ok {
			return nil, fmt.Errorf("bad outage %q: want ch@from+rounds", part)
		}
		ch, err := strconv.Atoi(chs)
		if err != nil {
			return nil, fmt.Errorf("bad outage %q: %v", part, err)
		}
		from, err := strconv.ParseInt(froms, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad outage %q: %v", part, err)
		}
		n, err := strconv.ParseInt(lens, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad outage %q: %v", part, err)
		}
		out = append(out, earmac.Outage{Channel: ch, From: from, Rounds: n})
	}
	return out, nil
}

// parseLinks parses "a-b,c-d,..." into channel-link pairs.
func parseLinks(spec string) ([][2]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out [][2]int
	for _, part := range strings.Split(spec, ",") {
		a, b, ok := strings.Cut(strings.TrimSpace(part), "-")
		if !ok {
			return nil, fmt.Errorf("bad link %q: want from-to", part)
		}
		from, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("bad link %q: %v", part, err)
		}
		to, err := strconv.Atoi(b)
		if err != nil {
			return nil, fmt.Errorf("bad link %q: %v", part, err)
		}
		out = append(out, [2]int{from, to})
	}
	return out, nil
}

// parsePhases parses "pattern:rounds,pattern:rounds,..." into a phase
// schedule; the last phase may give 0 rounds (rest of the run).
func parsePhases(spec string) ([]earmac.Phase, error) {
	var out []earmac.Phase
	for _, part := range strings.Split(spec, ",") {
		name, rounds, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad phase %q: want pattern:rounds", part)
		}
		r, err := strconv.ParseInt(rounds, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad phase %q: %v", part, err)
		}
		out = append(out, earmac.Phase{Pattern: name, Rounds: r})
	}
	return out, nil
}

func parseRho(s string) (num, den int64, err error) {
	if p, q, ok := strings.Cut(s, "/"); ok {
		num, err = strconv.ParseInt(p, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad rate %q: %v", s, err)
		}
		den, err = strconv.ParseInt(q, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad rate %q: %v", s, err)
		}
		return num, den, nil
	}
	num, err = strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad rate %q: %v", s, err)
	}
	return num, 1, nil
}
