// Command earmac-sim runs one simulation of an energy-capped routing
// algorithm on a shared channel and prints a measurement report.
//
// Usage:
//
//	earmac-sim -alg orchestra -n 8 -rho 1/1 -beta 2 -rounds 200000
//	earmac-sim -alg k-cycle -n 9 -k 3 -rho 1/5 -pattern single-target -src 0 -dest 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"earmac"
)

func main() {
	var (
		alg     = flag.String("alg", "orchestra", "algorithm: "+strings.Join(earmac.Algorithms(), ", "))
		n       = flag.Int("n", 8, "number of stations")
		k       = flag.Int("k", 3, "energy cap parameter for the k-parameterized algorithms")
		rho     = flag.String("rho", "1/2", "injection rate as a fraction p/q (or an integer)")
		beta    = flag.Int64("beta", 1, "burstiness coefficient β")
		pattern = flag.String("pattern", "uniform", "injection pattern: "+strings.Join(earmac.Patterns(), ", "))
		src     = flag.Int("src", 0, "source station for targeted patterns")
		dest    = flag.Int("dest", 1, "destination station for targeted patterns")
		seed    = flag.Int64("seed", 1, "seed for randomized patterns")
		rounds  = flag.Int64("rounds", 100000, "rounds to simulate")
		stop    = flag.Int64("stop-injections", 0, "stop injecting after this round (0 = never), to observe draining")
		lenient = flag.Bool("lenient", false, "record model violations instead of aborting")
		traceN  = flag.Int64("trace", 0, "log this many rounds of channel events to stderr")
		traceAt = flag.Int64("trace-from", 0, "first round to trace")
	)
	flag.Parse()

	num, den, err := parseRho(*rho)
	if err != nil {
		fmt.Fprintln(os.Stderr, "earmac-sim:", err)
		os.Exit(2)
	}
	cfg := earmac.Config{
		Algorithm:           *alg,
		N:                   *n,
		K:                   *k,
		RhoNum:              num,
		RhoDen:              den,
		Beta:                *beta,
		Pattern:             *pattern,
		Src:                 *src,
		Dest:                *dest,
		Seed:                *seed,
		Rounds:              *rounds,
		StopInjectionsAfter: *stop,
		Lenient:             *lenient,
	}
	if *traceN > 0 {
		cfg.Trace = os.Stderr
		cfg.TraceFrom = *traceAt
		cfg.TraceUpTo = *traceAt + *traceN
	}
	rep, err := earmac.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "earmac-sim:", err)
		os.Exit(1)
	}
	fmt.Print(rep.Summary())
}

func parseRho(s string) (num, den int64, err error) {
	if p, q, ok := strings.Cut(s, "/"); ok {
		num, err = strconv.ParseInt(p, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad rate %q: %v", s, err)
		}
		den, err = strconv.ParseInt(q, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad rate %q: %v", s, err)
		}
		return num, den, nil
	}
	num, err = strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad rate %q: %v", s, err)
	}
	return num, 1, nil
}
