package main

import "testing"

func TestParseRho(t *testing.T) {
	cases := []struct {
		in       string
		num, den int64
		wantErr  bool
	}{
		{"1/2", 1, 2, false},
		{"3/7", 3, 7, false},
		{"1", 1, 1, false},
		{"10", 10, 1, false},
		{"x/2", 0, 0, true},
		{"1/y", 0, 0, true},
		{"", 0, 0, true},
	}
	for _, c := range cases {
		num, den, err := parseRho(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseRho(%q): want error", c.in)
			}
			continue
		}
		if err != nil || num != c.num || den != c.den {
			t.Errorf("parseRho(%q) = %d/%d, %v; want %d/%d", c.in, num, den, err, c.num, c.den)
		}
	}
}
