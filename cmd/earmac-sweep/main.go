// Command earmac-sweep runs parameter sweeps and emits CSV for plotting:
// injection rate ρ against latency/queues (the universality curves),
// energy cap k against latency (the paper's open tradeoff question, §7),
// or system size n against latency (the polynomial growth of the
// bounds).
//
// Usage:
//
//	earmac-sweep -mode rho  -alg count-hop -n 6            > rho.csv
//	earmac-sweep -mode cap  -alg k-cycle  -n 13            > cap.csv
//	earmac-sweep -mode size -alg orchestra -rho 1/1        > size.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"earmac"
)

func main() {
	var (
		mode   = flag.String("mode", "rho", "sweep variable: rho, cap, or size")
		alg    = flag.String("alg", "count-hop", "algorithm")
		n      = flag.Int("n", 6, "number of stations (fixed for rho/cap sweeps)")
		k      = flag.Int("k", 3, "energy cap parameter (fixed for rho/size sweeps)")
		rho    = flag.String("rho", "1/2", "injection rate (fixed for cap/size sweeps)")
		beta   = flag.Int64("beta", 1, "burstiness coefficient")
		rounds = flag.Int64("rounds", 100000, "rounds per point")
		seed   = flag.Int64("seed", 1, "pattern seed")
	)
	flag.Parse()

	num, den := int64(1), int64(2)
	if p, q, ok := strings.Cut(*rho, "/"); ok {
		num, _ = strconv.ParseInt(p, 10, 64)
		den, _ = strconv.ParseInt(q, 10, 64)
	}

	run := func(alg string, n, k int, num, den int64) (earmac.Report, error) {
		return earmac.Run(earmac.Config{
			Algorithm: alg, N: n, K: k,
			RhoNum: num, RhoDen: den, Beta: *beta,
			Rounds: *rounds, Seed: *seed,
			Lenient: true, DisableChecks: true,
		})
	}

	fmt.Println("x,rho,n,k,stable,max_queue,final_queue,queue_slope,max_latency,mean_latency,p99_latency,mean_energy")
	emit := func(x string, rep earmac.Report, num, den int64, n, k int) {
		fmt.Printf("%s,%d/%d,%d,%d,%v,%d,%d,%.6f,%d,%.2f,%d,%.3f\n",
			x, num, den, n, k, rep.Stable, rep.MaxQueue, rep.FinalQueue, rep.QueueSlope,
			rep.MaxLatency, rep.MeanLatency, rep.P99Latency, rep.MeanEnergy)
	}

	switch *mode {
	case "rho":
		// ρ from 1/10 up to 19/20 plus ρ = 1.
		fracs := [][2]int64{{1, 10}, {1, 5}, {3, 10}, {2, 5}, {1, 2}, {3, 5}, {7, 10}, {4, 5}, {9, 10}, {19, 20}, {1, 1}}
		for _, f := range fracs {
			rep, err := run(*alg, *n, *k, f[0], f[1])
			if err != nil {
				fail(err)
			}
			emit(fmt.Sprintf("%g", float64(f[0])/float64(f[1])), rep, f[0], f[1], *n, *k)
		}
	case "cap":
		for kk := 2; kk <= *n-1; kk++ {
			rep, err := run(*alg, *n, kk, num, den)
			if err != nil {
				fail(err)
			}
			emit(strconv.Itoa(kk), rep, num, den, *n, kk)
		}
	case "size":
		for _, nn := range []int{4, 6, 8, 10, 12, 14, 16} {
			rep, err := run(*alg, nn, *k, num, den)
			if err != nil {
				fail(err)
			}
			emit(strconv.Itoa(nn), rep, num, den, nn, *k)
		}
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "earmac-sweep:", err)
	os.Exit(1)
}
