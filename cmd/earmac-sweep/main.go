// Command earmac-sweep runs parameter sweeps and emits CSV for plotting:
// injection rate ρ against latency/queues (the universality curves),
// energy cap k against latency (the paper's open tradeoff question, §7),
// or system size n against latency (the polynomial growth of the
// bounds). The sweep is a Suite: every point runs as an independent cell
// on a bounded worker pool, with deterministic output order.
//
// Usage:
//
//	earmac-sweep -mode rho  -alg count-hop -n 6            > rho.csv
//	earmac-sweep -mode cap  -alg k-cycle  -n 13            > cap.csv
//	earmac-sweep -mode size -alg orchestra -rho 1/1        > size.csv
//	earmac-sweep -mode rho  -alg count-hop -n 6 -json      > rho.json
//	earmac-sweep -mode cap  -alg k-cycle  -n 13 -parallel 8
//
// Seed sweeps quantify run-to-run spread of stochastic scenarios; the
// report is deterministic and independent of the worker count, so a
// seed sweep is itself reproducible. -seeds also crosses seeds into any
// other mode, and -record-dir captures every cell as a replayable
// trace:
//
//	earmac-sweep -mode seed -alg orchestra -pattern bernoulli -seeds 1,2,3,4 > seeds.csv
//	earmac-sweep -mode rho  -alg count-hop -pattern poisson-batch -seeds 5,6 -record-dir traces/
//
// Networks of channels sweep too: -topology fixes the shape and -mode
// channels grids the channel count (2..-max-channels), the scaling axis
// of the multi-hop setting:
//
//	earmac-sweep -mode channels -topology line -alg orchestra -n 5 -beta 4 > channels.csv
//	earmac-sweep -mode rho -topology star -channels 3 -alg count-hop -n 4 > net-rho.csv
//
// -mode frontier charts the energy–latency frontier of duty-cycled
// stations under jamming: it crosses -jam-rhos (jamming intensity) with
// -sleep-idles (duty-cycle tightness) on a tolerant algorithm (default
// aloha), one CSV row per cell with energy falling as duty-cycling
// tightens within each jam group:
//
//	earmac-sweep -mode frontier -n 6 -k 3 -rho 1/4 > frontier.csv
//	earmac-sweep -mode frontier -jam-rhos 0,1/4,1/2 -sleep-idles 0,64,16 -rounds 50000
//
// With -server the sweep is submitted as one Grid to an earmac-serve
// /v1/suite endpoint — a single worker or a cluster coordinator —
// instead of simulating in-process. The SuiteReport is byte-identical
// either way, so -server changes where the cells run, never the output:
//
//	earmac-sweep -mode seed -alg orchestra -pattern bernoulli -seeds 1,2,3 -server localhost:8320 > seeds.csv
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"earmac"
	"earmac/internal/pool"
)

func main() {
	var (
		mode      = flag.String("mode", "rho", "sweep variable: rho, cap, size, seed, channels, or frontier")
		alg       = flag.String("alg", "count-hop", "algorithm")
		n         = flag.Int("n", 6, "number of stations (per channel, with -topology; fixed for rho/cap sweeps)")
		topology  = flag.String("topology", "", "network of channels: "+strings.Join(earmac.Topologies(), ", ")+" (required for -mode channels)")
		channels  = flag.Int("channels", 0, "fixed channel count for -topology outside -mode channels (default 2)")
		maxChan   = flag.Int("max-channels", 6, "largest channel count for -mode channels")
		k         = flag.Int("k", 3, "energy cap parameter (fixed for rho/size sweeps)")
		rho       = flag.String("rho", "1/2", "injection rate (fixed for cap/size sweeps)")
		beta      = flag.Int64("beta", 1, "burstiness coefficient")
		pattern   = flag.String("pattern", "uniform", "injection pattern")
		rounds    = flag.Int64("rounds", 100000, "rounds per point")
		seed      = flag.Int64("seed", 1, "base pattern seed (each point derives its own)")
		seeds     = flag.String("seeds", "", "comma-separated seed list crossed into the sweep (default 1..8 for -mode seed)")
		parallel  = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
		netWork   = flag.Int("net-workers", 1, "channel-stepping workers inside each network cell (0 = GOMAXPROCS, 1 = serial; results are identical at any value). The default stays serial because -parallel already runs cells concurrently")
		jsonOut   = flag.Bool("json", false, "emit the full SuiteReport as JSON instead of CSV")
		recordDir = flag.String("record-dir", "", "record every cell as a replayable trace cell-NNN.trace.jsonl under this directory")
		server    = flag.String("server", "", "submit the sweep to this earmac-serve /v1/suite endpoint (worker or coordinator) instead of running in-process")
		jamRhos   = flag.String("jam-rhos", "0,1/8,1/4", "-mode frontier: comma-separated jamming rates ρ_j (0 = no jamming)")
		sleepIdls = flag.String("sleep-idles", "0,128,32,8", "-mode frontier: comma-separated sleep-after-idle thresholds (0 = no duty-cycling), loosest first")
		jamBeta   = flag.Int64("jam-beta", 1, "-mode frontier: jamming burstiness β_j")
		wakeEvery = flag.Int64("wake-every", 64, "-mode frontier: wake period of duty-cycled stations (applies to cells that sleep)")
	)
	flag.Parse()

	// The frontier mode needs a jam/duty-tolerant algorithm; switch its
	// default to aloha unless the user picked one explicitly.
	if *mode == "frontier" && !flagSet("alg") {
		*alg = "aloha"
	}

	// Resolve the documented channel default here rather than inside Run,
	// so every cell's Config (and the CSV channels column) carries the
	// count the cell actually ran with.
	if *topology != "" && *channels == 0 {
		*channels = 2
	}

	num, den := int64(1), int64(2)
	if p, q, ok := strings.Cut(*rho, "/"); ok {
		num, _ = strconv.ParseInt(p, 10, 64)
		den, _ = strconv.ParseInt(q, 10, 64)
	} else if v, err := strconv.ParseInt(*rho, 10, 64); err == nil {
		num, den = v, 1
	}

	grid := earmac.Grid{
		Base: earmac.Config{
			Algorithm: *alg, N: *n, K: *k,
			Topology: *topology, Channels: *channels,
			RhoNum: num, RhoDen: den, Beta: *beta,
			Pattern: *pattern,
			Rounds:  *rounds, Seed: *seed,
			Lenient: true, DisableChecks: true,
			NetWorkers: *netWork,
		},
	}
	if *seeds != "" {
		list, err := parseSeeds(*seeds)
		if err != nil {
			fail(err)
		}
		grid.Seeds = list
	}
	switch *mode {
	case "seed":
		if len(grid.Seeds) == 0 {
			for s := int64(1); s <= 8; s++ {
				grid.Seeds = append(grid.Seeds, s)
			}
		}
	case "rho":
		// ρ from 1/10 up to 19/20 plus ρ = 1.
		grid.Rhos = []earmac.Rho{
			{Num: 1, Den: 10}, {Num: 1, Den: 5}, {Num: 3, Den: 10}, {Num: 2, Den: 5},
			{Num: 1, Den: 2}, {Num: 3, Den: 5}, {Num: 7, Den: 10}, {Num: 4, Den: 5},
			{Num: 9, Den: 10}, {Num: 19, Den: 20}, {Num: 1, Den: 1},
		}
	case "cap":
		for kk := 2; kk <= *n-1; kk++ {
			grid.Ks = append(grid.Ks, kk)
		}
	case "size":
		grid.Ns = []int{4, 6, 8, 10, 12, 14, 16}
	case "channels":
		if *topology == "" {
			fail(fmt.Errorf("-mode channels needs -topology (one of %s)",
				strings.Join(earmac.Topologies(), ", ")))
		}
		for c := 2; c <= *maxChan; c++ {
			grid.Channels = append(grid.Channels, c)
		}
	case "frontier":
		// Energy–latency frontier: duty-cycle tightness × jamming
		// intensity, axes Grid doesn't model. The suite is assembled
		// below from explicit cells.
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	var rep earmac.SuiteReport
	var err error
	if *server != "" {
		if *recordDir != "" {
			fail(errors.New("-server cannot record traces on the remote side; drop -record-dir or run locally"))
		}
		if *mode == "frontier" {
			fail(errors.New("-mode frontier sweeps axes the Grid schema doesn't carry; run it locally"))
		}
		rep, err = remoteSuite(ctx, *server, grid)
	} else {
		suite := earmac.NewSuite(grid)
		if *mode == "frontier" {
			cells, ferr := frontierCells(grid.Base, *jamRhos, *sleepIdls, *jamBeta, *wakeEvery)
			if ferr != nil {
				fail(ferr)
			}
			suite = earmac.Suite{Configs: cells}
		}
		var traceFiles []*os.File
		if *recordDir != "" {
			if err := os.MkdirAll(*recordDir, 0o755); err != nil {
				fail(err)
			}
			for i := range suite.Configs {
				f, err := os.Create(filepath.Join(*recordDir, fmt.Sprintf("cell-%03d.trace.jsonl", i)))
				if err != nil {
					fail(err)
				}
				traceFiles = append(traceFiles, f)
				suite.Configs[i].RecordTo = f
			}
		}
		workers := pool.Workers(*parallel)
		rep, err = suite.Run(ctx, earmac.SuiteOptions{Workers: workers})
		for _, f := range traceFiles {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fail(err)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "earmac-sweep: interrupted; emitting the %d completed points\n",
			rep.Cells-rep.Skipped)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		if interrupted {
			os.Exit(130)
		}
		return
	}

	if *mode == "frontier" {
		fmt.Println("jam_rho,sleep_idle,wake_every,mean_energy,mean_latency,delivered,dropped,sleep_rounds,jammed_rounds,stable")
		for _, res := range rep.Results {
			if res.Verdict == earmac.VerdictSkipped {
				continue
			}
			if res.Error != "" {
				fail(fmt.Errorf("cell %d (%s): %s", res.Index, res.Config.Algorithm, res.Error))
			}
			cfg, r := res.Config, res.Report
			fmt.Printf("%s,%d,%d,%.3f,%.2f,%d,%d,%d,%d,%v\n",
				fracString(cfg.JamRhoNum, cfg.JamRhoDen), cfg.SleepAfterIdle, cfg.WakeEvery,
				r.MeanEnergy, r.MeanLatency, r.Delivered, r.Dropped, r.SleepRounds, r.JammedRounds, r.Stable)
		}
		if interrupted {
			os.Exit(130)
		}
		return
	}

	fmt.Println("x,rho,n,k,channels,seed,stable,max_queue,final_queue,queue_slope,max_latency,mean_latency,p99_latency,mean_energy")
	for _, res := range rep.Results {
		if res.Verdict == earmac.VerdictSkipped {
			continue
		}
		if res.Error != "" {
			fail(fmt.Errorf("cell %d (%s): %s", res.Index, res.Config.Algorithm, res.Error))
		}
		cfg, r := res.Config, res.Report
		var x string
		switch *mode {
		case "rho":
			x = fmt.Sprintf("%g", float64(cfg.RhoNum)/float64(cfg.RhoDen))
		case "cap":
			x = strconv.Itoa(cfg.K)
		case "size":
			x = strconv.Itoa(cfg.N)
		case "seed":
			x = strconv.FormatInt(cfg.Seed, 10)
		case "channels":
			x = strconv.Itoa(cfg.Channels)
		}
		fmt.Printf("%s,%d/%d,%d,%d,%d,%d,%v,%d,%d,%.6f,%d,%.2f,%d,%.3f\n",
			x, cfg.RhoNum, cfg.RhoDen, cfg.N, cfg.K, cfg.Channels, cfg.Seed, r.Stable, r.MaxQueue, r.FinalQueue,
			r.QueueSlope, r.MaxLatency, r.MeanLatency, r.P99Latency, r.MeanEnergy)
	}
	if interrupted {
		os.Exit(130)
	}
}

// remoteSuite submits the grid to an earmac-serve /v1/suite endpoint
// and decodes the merged SuiteReport. The server expands the same grid
// with the same enumeration, so the decoded report is the one a local
// run would have produced.
func remoteSuite(ctx context.Context, server string, g earmac.Grid) (earmac.SuiteReport, error) {
	if !strings.Contains(server, "://") {
		server = "http://" + server
	}
	body, err := json.Marshal(g)
	if err != nil {
		return earmac.SuiteReport{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(server, "/")+"/v1/suite", bytes.NewReader(body))
	if err != nil {
		return earmac.SuiteReport{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return earmac.SuiteReport{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return earmac.SuiteReport{}, err
	}
	if resp.StatusCode == http.StatusAccepted {
		// A plain worker queues suite cells asynchronously; only the
		// coordinator answers with the merged report.
		return earmac.SuiteReport{}, fmt.Errorf(
			"server %s queued the suite instead of running it synchronously; point -server at an earmac-serve -coordinator", server)
	}
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			return earmac.SuiteReport{}, fmt.Errorf("server %s: %s", server, eb.Error)
		}
		return earmac.SuiteReport{}, fmt.Errorf("server %s: status %d", server, resp.StatusCode)
	}
	var rep earmac.SuiteReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return earmac.SuiteReport{}, fmt.Errorf("decoding suite report: %w", err)
	}
	return rep, nil
}

// flagSet reports whether the named flag was given on the command line.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// frontierCells crosses jamming intensity (outer axis) with duty-cycle
// tightness (inner axis) over the base config, so each CSV group holds
// one jam rate with energy falling as duty-cycling tightens. Cells that
// never sleep (idle threshold 0) leave the wake period unset — the
// façade rejects a wake schedule nothing sleeps on.
func frontierCells(base earmac.Config, jamRhos, sleepIdles string, jamBeta, wakeEvery int64) ([]earmac.Config, error) {
	var jams [][2]int64
	for _, part := range strings.Split(jamRhos, ",") {
		num, den, err := parseFrac(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -jam-rhos: %v", err)
		}
		jams = append(jams, [2]int64{num, den})
	}
	var idles []int64
	for _, part := range strings.Split(sleepIdles, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -sleep-idles: %v", err)
		}
		idles = append(idles, v)
	}
	var cells []earmac.Config
	for _, jam := range jams {
		for _, idle := range idles {
			cfg := base
			if jam[0] > 0 {
				cfg.JamRhoNum, cfg.JamRhoDen = jam[0], jam[1]
				cfg.JamBeta = jamBeta
			}
			if idle > 0 {
				cfg.SleepAfterIdle = idle
				cfg.WakeEvery = wakeEvery
			}
			cells = append(cells, cfg)
		}
	}
	return cells, nil
}

// parseFrac parses "p/q" or an integer into an exact fraction.
func parseFrac(s string) (num, den int64, err error) {
	if p, q, ok := strings.Cut(s, "/"); ok {
		num, err = strconv.ParseInt(p, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad fraction %q: %v", s, err)
		}
		den, err = strconv.ParseInt(q, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad fraction %q: %v", s, err)
		}
		return num, den, nil
	}
	num, err = strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad fraction %q: %v", s, err)
	}
	return num, 1, nil
}

// fracString renders an exact fraction compactly ("0", "1", "1/8").
func fracString(num, den int64) string {
	if num == 0 {
		return "0"
	}
	if den == 1 {
		return strconv.FormatInt(num, 10)
	}
	return fmt.Sprintf("%d/%d", num, den)
}

func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "earmac-sweep:", err)
	os.Exit(1)
}
