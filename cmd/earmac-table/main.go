// Command earmac-table regenerates the paper's Table 1 — the summary of
// performance bounds and impossibility results that constitutes its
// evaluation — by running every row as a simulation and printing the
// measured figures next to the claimed bounds.
//
// Usage:
//
//	earmac-table          # quick horizons (~seconds per row)
//	earmac-table -full    # 4× horizons
package main

import (
	"flag"
	"fmt"
	"os"

	"earmac/internal/expt"
)

func main() {
	full := flag.Bool("full", false, "run 4× longer horizons")
	flag.Parse()

	scale := expt.Quick
	if *full {
		scale = expt.Full
	}
	fmt.Println("Reproduction of Table 1, \"Energy Efficient Adversarial Routing in Shared Channels\" (SPAA 2019)")
	fmt.Println()
	outs, err := expt.RunAll(expt.Table1(scale), os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "earmac-table:", err)
		os.Exit(1)
	}
	bad := 0
	for _, o := range outs {
		if !o.OK {
			bad++
		}
	}
	fmt.Println()
	fmt.Printf("%d/%d rows reproduced\n", len(outs)-bad, len(outs))
	if bad > 0 {
		os.Exit(1)
	}
}
