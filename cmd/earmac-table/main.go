// Command earmac-table regenerates the paper's Table 1 — the summary of
// performance bounds and impossibility results that constitutes its
// evaluation — by running every row as a simulation and printing the
// measured figures next to the claimed bounds. Rows run concurrently on
// a bounded worker pool; output order is always the table order.
//
// Usage:
//
//	earmac-table              # quick horizons (~seconds per row)
//	earmac-table -full        # 4× horizons
//	earmac-table -parallel 1  # serial, for timing individual rows
//	earmac-table -json        # rows as JSON with the shared Report schema
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"earmac/internal/expt"
	"earmac/internal/pool"
)

func main() {
	var (
		full     = flag.Bool("full", false, "run 4× longer horizons")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
		jsonOut  = flag.Bool("json", false, "emit rows as JSON (shared Report schema) instead of the table")
	)
	flag.Parse()

	scale := expt.Quick
	if *full {
		scale = expt.Full
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	outs, err := expt.RunConcurrent(ctx, expt.Table1(scale), pool.Workers(*parallel))
	if err != nil {
		fmt.Fprintln(os.Stderr, "earmac-table:", err)
		os.Exit(1)
	}

	if *jsonOut {
		rows := make([]expt.OutcomeJSON, len(outs))
		for i, o := range outs {
			rows[i] = o.JSON()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintln(os.Stderr, "earmac-table:", err)
			os.Exit(1)
		}
	} else {
		fmt.Println("Reproduction of Table 1, \"Energy Efficient Adversarial Routing in Shared Channels\" (SPAA 2019)")
		fmt.Println()
		if err := expt.Render(outs, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "earmac-table:", err)
			os.Exit(1)
		}
	}

	bad := 0
	for _, o := range outs {
		if !o.OK {
			bad++
		}
	}
	if !*jsonOut {
		fmt.Println()
		fmt.Printf("%d/%d rows reproduced\n", len(outs)-bad, len(outs))
	}
	if bad > 0 {
		os.Exit(1)
	}
}
