package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"

	"earmac"
	"earmac/internal/metrics"
	"earmac/internal/scenario"
)

// diff compares two trace files structurally and prints a report:
// header/config field differences, the first diverging event, and the
// footer counter deltas. It returns true when the traces are identical.
// Read errors exit with status 2 like the audit subcommand.
func diff(pathA, pathB string) bool {
	a, b := readTrace(pathA), readTrace(pathB)
	same := true

	for _, d := range diffHeaders(a.Header, b.Header) {
		fmt.Println(d)
		same = false
	}

	if d, ok := firstEventDiff(a.Events, b.Events); !ok {
		fmt.Println(d)
		same = false
	}

	for _, d := range diffFooters(a.Footer, b.Footer) {
		fmt.Println(d)
		same = false
	}

	if same {
		fmt.Printf("traces identical: %d events, footer matches\n", len(a.Events))
	}
	return same
}

func readTrace(path string) *earmac.Trace {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	tr, err := earmac.ReadTrace(f)
	f.Close()
	if err != nil {
		fail(fmt.Errorf("%s: %v", path, err))
	}
	return tr
}

// diffHeaders reports the fixed header fields that differ, then the
// embedded config objects key by key (the config is schema-owned by the
// façade, so it is compared as JSON rather than as a struct).
func diffHeaders(a, b scenario.Header) []string {
	var out []string
	for _, f := range []struct {
		name string
		a, b int64
	}{
		{"version", int64(a.Version), int64(b.Version)},
		{"n", int64(a.N), int64(b.N)},
		{"rounds", a.Rounds, b.Rounds},
		{"channels", int64(a.Channels), int64(b.Channels)},
	} {
		if f.a != f.b {
			out = append(out, fmt.Sprintf("header %s: %d vs %d", f.name, f.a, f.b))
		}
	}
	out = append(out, diffConfigs(a.Config, b.Config)...)
	return out
}

func diffConfigs(a, b json.RawMessage) []string {
	ma, mb := configMap(a), configMap(b)
	keys := make(map[string]bool, len(ma)+len(mb))
	for k := range ma {
		keys[k] = true
	}
	for k := range mb {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var out []string
	for _, k := range sorted {
		va, oka := ma[k]
		vb, okb := mb[k]
		switch {
		case !oka:
			out = append(out, fmt.Sprintf("config %s: (absent) vs %v", k, vb))
		case !okb:
			out = append(out, fmt.Sprintf("config %s: %v vs (absent)", k, va))
		case !reflect.DeepEqual(va, vb):
			out = append(out, fmt.Sprintf("config %s: %v vs %v", k, va, vb))
		}
	}
	return out
}

func configMap(raw json.RawMessage) map[string]any {
	if len(raw) == 0 {
		return nil
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		fail(fmt.Errorf("header config: %v", err))
	}
	return m
}

// firstEventDiff locates the first position where the two event streams
// disagree and renders both sides; ok is true when the streams are
// identical. One diverging event is enough — everything after the first
// divergence differs for cascading reasons, not for the root cause.
func firstEventDiff(a, b []scenario.Event) (string, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(a[i], b[i]) {
			return fmt.Sprintf("first diverging event at index %d:\n  a: %s\n  b: %s",
				i, renderEvent(a[i]), renderEvent(b[i])), false
		}
	}
	if len(a) != len(b) {
		longer, side := a, "a"
		if len(b) > len(a) {
			longer, side = b, "b"
		}
		return fmt.Sprintf("event streams diverge at index %d: %s has %d extra event(s), first: %s",
			n, side, len(longer)-n, renderEvent(longer[n])), false
	}
	return "", true
}

func renderEvent(e scenario.Event) string {
	if e.Kind != "" {
		return fmt.Sprintf("round %d ch %d kind %s dur %d asleep %d", e.Round, e.Channel, e.Kind, e.Dur, e.Asleep)
	}
	return fmt.Sprintf("round %d ch %d injs %v", e.Round, e.Channel, e.Injs)
}

// diffFooters reports the footer counter deltas field by field (the
// flat Counters block plus the footer's own injection total), walking
// the struct by reflection so a new counter can never be forgotten
// here. Latency histogram buckets are compared individually.
func diffFooters(a, b *scenario.Footer) []string {
	switch {
	case a == nil && b == nil:
		return nil
	case a == nil || b == nil:
		return []string{fmt.Sprintf("footer: present %v vs %v", a != nil, b != nil)}
	}
	var out []string
	if a.Injected != b.Injected {
		out = append(out, fmt.Sprintf("footer injected: %d vs %d (%+d)", a.Injected, b.Injected, b.Injected-a.Injected))
	}
	ca, cb := a.Counters, b.Counters
	switch {
	case ca == nil && cb == nil:
		return out
	case ca == nil || cb == nil:
		return append(out, fmt.Sprintf("footer counters: present %v vs %v", ca != nil, cb != nil))
	}
	va, vb := reflect.ValueOf(*ca), reflect.ValueOf(*cb)
	typ := reflect.TypeOf(metrics.Counters{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if name == "LatHist" {
			ha := va.Field(i).Interface().([64]int64)
			hb := vb.Field(i).Interface().([64]int64)
			for bucket := range ha {
				if ha[bucket] != hb[bucket] {
					out = append(out, fmt.Sprintf("footer LatHist[%d]: %d vs %d (%+d)",
						bucket, ha[bucket], hb[bucket], hb[bucket]-ha[bucket]))
				}
			}
			continue
		}
		x, y := va.Field(i).Int(), vb.Field(i).Int()
		if x != y {
			out = append(out, fmt.Sprintf("footer %s: %d vs %d (%+d)", name, x, y, y-x))
		}
	}
	return out
}
