// Command earmac-trace inspects recorded trace files. Its audit
// subcommand re-derives the adversarial budgets from the trace's own
// header config and verifies every stream the trace records against
// them:
//
//   - the entry injection stream against the (ρ, β) leaky-bucket
//     contract — per channel *and* network-wide against the effective
//     global type (ρ, max(β, C)) on network traces, since the split
//     burst is floored at 1 per channel (see network.SplitType);
//   - the jam stream (trace v3) against the jamming budget (ρ_j, β_j).
//
// The diff subcommand compares two traces structurally — header and
// config fields, the first diverging event, and the footer counter
// deltas — so a broken bit-identity contract (a replay that drifted, a
// skip-path divergence) is localized to the first round where the two
// runs disagree instead of a wall of JSONL:
//
// Usage:
//
//	earmac-trace audit run.trace.jsonl
//	earmac-trace audit traces/*.trace.jsonl
//	earmac-trace diff a.trace.jsonl b.trace.jsonl
//
// The exit status is 0 when every file passes (audit) or the traces are
// identical (diff), 1 on a budget violation or difference, 2 on usage
// or read errors.
package main

import (
	"fmt"
	"os"

	"earmac"
	"earmac/internal/adversary"
	"earmac/internal/network"
	"earmac/internal/ratio"
	"earmac/internal/scenario"
)

func main() {
	switch {
	case len(os.Args) >= 3 && os.Args[1] == "audit":
		failed := false
		for _, path := range os.Args[2:] {
			if err := audit(path); err != nil {
				fmt.Printf("%s: VIOLATION: %v\n", path, err)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
	case len(os.Args) == 4 && os.Args[1] == "diff":
		if !diff(os.Args[2], os.Args[3]) {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: earmac-trace audit <trace.jsonl>...")
		fmt.Fprintln(os.Stderr, "       earmac-trace diff <a.trace.jsonl> <b.trace.jsonl>")
		os.Exit(2)
	}
}

// audit verifies one trace file; read/config errors exit immediately
// (status 2), budget violations are returned for the caller to report.
func audit(path string) error {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	tr, err := earmac.ReadTrace(f)
	f.Close()
	if err != nil {
		fail(fmt.Errorf("%s: %v", path, err))
	}
	cfg, err := earmac.TraceConfig(tr)
	if err != nil {
		fail(fmt.Errorf("%s: %v", path, err))
	}
	fmt.Printf("%s: version %d, n %d, channels %d, %d events\n",
		path, tr.Header.Version, tr.Header.N, tr.Header.Channels, len(tr.Events))

	typ := adversary.Type{Rho: ratio.New(cfg.RhoNum, cfg.RhoDen), Beta: ratio.FromInt(cfg.Beta)}
	if cfg.Topology == "" {
		if err := scenario.CheckAdmissible(tr, typ); err != nil {
			return err
		}
		fmt.Printf("  entry stream: OK under (ρ %s, β %s)\n", typ.Rho, typ.Beta)
	} else {
		split := network.SplitType(typ, cfg.Channels)
		if err := scenario.CheckAdmissibleSplit(tr, split, cfg.Channels); err != nil {
			return err
		}
		eff := scenario.EffectiveGlobalType(split, cfg.Channels)
		fmt.Printf("  entry stream: OK under per-channel (ρ %s, β %s) and effective global (ρ %s, β %s)\n",
			split.Rho, split.Beta, eff.Rho, eff.Beta)
	}

	jams := 0
	for _, ev := range tr.Events {
		if ev.Kind == scenario.KindJam {
			jams++
		}
	}
	switch {
	case jams == 0:
		fmt.Println("  jam stream: none")
	case cfg.JamRhoNum <= 0:
		return fmt.Errorf("%d jam events but the header config carries no jamming budget", jams)
	default:
		jt := adversary.Type{Rho: ratio.New(cfg.JamRhoNum, cfg.JamRhoDen), Beta: ratio.FromInt(cfg.JamBeta)}
		if err := scenario.CheckJamAdmissible(tr, jt); err != nil {
			return err
		}
		fmt.Printf("  jam stream: %d jams OK under (ρ_j %s, β_j %s)\n", jams, jt.Rho, jt.Beta)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "earmac-trace:", err)
	os.Exit(2)
}
