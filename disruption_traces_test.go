package earmac

// The disruption golden-trace corpus (ISSUE 8): jamming, outages, and
// duty-cycled stations, each pinned by a committed trace-v3 recording.
// The conformance test asserts the same three-way equivalence as the
// other corpora — recorded run, checked-path replay, and fast-path
// replay bit-identical on counters AND on the full re-recorded event
// stream, kinded jam/outage/sleep events included — plus the jamming
// budget audit and byte-stable re-encoding. Regenerate with
//
//	go test -run TestDisruptionGoldenTraceCorpus -update .

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/scenario"
)

func disruptionCorpusCases() []corpusCase {
	base := Config{
		Algorithm: "aloha", N: 6, K: 3,
		RhoNum: 1, RhoDen: 3, Beta: 2,
		Pattern: "bernoulli", Seed: 7, Rounds: 2000,
	}
	jam := base
	jam.JamRhoNum, jam.JamRhoDen, jam.JamBeta = 1, 8, 1
	outage := base
	outage.Outages = []Outage{{Channel: 0, From: 400, Rounds: 100}, {Channel: 0, From: 1200, Rounds: 200}}
	sleep := base
	sleep.SleepAfterIdle, sleep.WakeEvery = 16, 8
	mixed := base
	mixed.JamRhoNum, mixed.JamRhoDen, mixed.JamBeta = 1, 8, 1
	mixed.Outages = []Outage{{Channel: 0, From: 900, Rounds: 150}}
	mixed.SleepAfterIdle, mixed.WakeEvery = 16, 8
	net := Config{
		Algorithm: "aloha", N: 5, K: 3,
		Topology: "line", Channels: 3,
		RhoNum: 1, RhoDen: 2, Beta: 3,
		Pattern: "bernoulli", Seed: 11, Rounds: 2000,
		JamRhoNum: 1, JamRhoDen: 4, JamBeta: 2,
		Outages:        []Outage{{Channel: 1, From: 600, Rounds: 200}},
		SleepAfterIdle: 32, WakeEvery: 16,
	}
	return []corpusCase{
		{"dis-jam-aloha", jam},
		{"dis-outage-aloha", outage},
		{"dis-sleep-aloha", sleep},
		{"dis-mixed-aloha", mixed},
		{"dis-net-line-aloha", net},
	}
}

func TestDisruptionGoldenTraceCorpus(t *testing.T) {
	cases := disruptionCorpusCases()
	if *update {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, c := range cases {
			f, err := os.Create(tracePath(c.name))
			if err != nil {
				t.Fatal(err)
			}
			cfg := c.cfg
			cfg.RecordTo = f
			if _, err := Run(cfg); err != nil {
				t.Fatalf("%s: recording: %v", c.name, err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			raw, err := os.ReadFile(tracePath(c.name))
			if err != nil {
				t.Fatalf("missing golden trace (regenerate with -update): %v", err)
			}
			tr, err := ReadTrace(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if tr.Header.Version != TraceVersion {
				t.Fatalf("header version %d, want %d (disrupted recordings declare v3)",
					tr.Header.Version, TraceVersion)
			}
			if tr.Footer == nil || tr.Footer.Counters == nil {
				t.Fatal("golden trace has no pinned counters")
			}
			want := *tr.Footer.Counters

			// Re-encoding is byte-stable under the v3 writer.
			var reenc bytes.Buffer
			if err := WriteTrace(&reenc, tr); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(reenc.Bytes(), raw) {
				t.Error("re-encoding the golden trace changed its bytes")
			}

			// Each configured disruption actually left events, and the
			// footer shows its effect.
			kinds := map[string]int{}
			for _, ev := range tr.Events {
				kinds[ev.Kind]++
			}
			cfg := c.cfg
			if cfg.JamRhoNum > 0 {
				if kinds[scenario.KindJam] == 0 {
					t.Error("jamming configured but no jam events recorded")
				}
				if want.JammedRounds == 0 {
					t.Error("jamming configured but JammedRounds = 0")
				}
				jt := adversary.T(cfg.JamRhoNum, cfg.JamRhoDen, cfg.JamBeta)
				if err := scenario.CheckJamAdmissible(tr, jt); err != nil {
					t.Errorf("recorded jam stream violates its budget: %v", err)
				}
			}
			if len(cfg.Outages) > 0 {
				if kinds[scenario.KindOutage] != len(cfg.Outages) {
					t.Errorf("%d outage windows configured, %d outage events recorded",
						len(cfg.Outages), kinds[scenario.KindOutage])
				}
				if want.OutageRounds == 0 {
					t.Error("outages configured but OutageRounds = 0")
				}
			}
			if cfg.SleepAfterIdle > 0 && kinds[scenario.KindSleep] == 0 {
				t.Error("duty-cycling configured but no sleep transitions recorded")
			}

			// Three-way equivalence: checked and fast replays reproduce
			// the counters and the full (kinded) event stream.
			modes := []struct {
				name   string
				mutate func(*Config)
			}{
				{"checked", func(c *Config) { c.ForceChecked = true }},
				{"fast", func(c *Config) { c.Lenient, c.DisableChecks = true, true }},
			}
			for _, mode := range modes {
				rcfg, err := ReplayConfig(tr)
				if err != nil {
					t.Fatal(err)
				}
				mode.mutate(&rcfg)
				var buf bytes.Buffer
				rcfg.RecordTo = &buf
				rep, err := Run(rcfg)
				if err != nil {
					t.Fatalf("%s replay: %v", mode.name, err)
				}
				if len(rep.Violations) != 0 {
					t.Fatalf("%s replay hit violations: %v", mode.name, rep.Violations)
				}
				got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("%s replay re-recording: %v", mode.name, err)
				}
				if got.Footer == nil || got.Footer.Counters == nil {
					t.Fatalf("%s replay recorded no counters", mode.name)
				}
				if *got.Footer.Counters != want {
					t.Errorf("%s replay counters differ from the golden footer:\ngot  %+v\nwant %+v",
						mode.name, *got.Footer.Counters, want)
				}
				if !reflect.DeepEqual(got.Events, tr.Events) {
					t.Errorf("%s replay re-recorded a different event stream (%d events vs %d)",
						mode.name, len(got.Events), len(tr.Events))
				}
			}
		})
	}
}

// TestDisruptionGoldenTraceCorpusComplete pins the disruption corpus
// inventory.
func TestDisruptionGoldenTraceCorpusComplete(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(traceDir, "dis-*.trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if want := len(disruptionCorpusCases()); len(files) != want {
		t.Fatalf("disruption corpus has %d traces, want %d; regenerate with -update", len(files), want)
	}
}

// TestTraceCorpusByteStable pins backward compatibility of the v3
// reader/writer over the whole committed corpus: every committed trace
// — v1 single-channel, v2 network, v3 disruption — must survive a
// ReadTrace → WriteTrace round trip byte-identically, so upgrading the
// format never rewrites history.
func TestTraceCorpusByteStable(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(traceDir, "*.trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no committed traces found")
	}
	versions := map[int]int{}
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := ReadTrace(bytes.NewReader(raw))
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		versions[tr.Header.Version]++
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), raw) {
			t.Errorf("%s: re-encoding changed the bytes (version %d)",
				filepath.Base(path), tr.Header.Version)
		}
	}
	// The corpus must keep witnessing every format version the reader
	// accepts, or the compatibility claim goes untested.
	for v := scenario.TraceVersionLegacy; v <= scenario.TraceVersion; v++ {
		if versions[v] == 0 {
			t.Errorf("no committed trace exercises format version %d", v)
		}
	}
}
