// Package earmac is an executable reproduction of "Energy Efficient
// Adversarial Routing in Shared Channels" (Chlebus, Hradovich,
// Jurdziński, Klonowski, Kowalski — SPAA 2019): deterministic distributed
// routing algorithms on a multiple access channel under an energy cap,
// driven by leaky-bucket adversarial packet injection.
//
// The package is a façade over the internal simulator. A Config selects
// an algorithm, a system size, an adversary type (ρ, β) and injection
// pattern, and a horizon; Run executes the simulation in the exact model
// of the paper — validating the energy cap, plain-packet discipline,
// schedule obliviousness, and exactly-once packet ownership — and returns
// a Report of stability, latency, and energy measurements.
//
//	rep, err := earmac.Run(earmac.Config{
//		Algorithm: "orchestra",
//		N:         8,
//		RhoNum:    1, RhoDen: 1, // injection rate 1
//		Beta:      2,
//		Rounds:    200000,
//	})
//
// RunContext adds cancellation and periodic progress snapshots; Suite
// runs a whole grid of configurations (Grid crosses algorithms × sizes ×
// rates × patterns) across a bounded worker pool with deterministic
// result ordering.
//
// Algorithms and injection patterns live in registries populated by
// self-registration (see RegisterAlgorithm and RegisterPattern); each
// entry carries metadata — energy cap, the paper's plain-packet / direct
// / oblivious taxonomy flags, valid parameter ranges — so capabilities
// can be enumerated and filtered without instantiating a system.
//
// Scenarios are data: seeded stochastic patterns ("bernoulli",
// "poisson-batch", clipped online by the leaky bucket so every sampled
// run respects its (ρ, β) contract), time-varying phase schedules
// (Config.Phases), and a versioned replayable trace format
// (Config.RecordTo, Config.Replay, ReadTrace, ReplayConfig) that
// re-executes any run bit-for-bit.
//
// Setting Config.Topology generalizes the single shared channel to a
// *network* of them — the paper's framing of routing networks as
// multiple access channels. Each channel runs its own N-station replica
// set, a global (ρ, β) budget is split evenly across per-channel entry
// buckets, and packets are relayed hop by hop through gateway stations
// along shortest channel-graph paths; reports then carry end-to-end
// figures plus a per-channel breakdown, and recordings use trace format
// v2 (a channel id per event). See DESIGN.md for the algorithm →
// paper-theorem mapping, the model invariants the simulator checks, the
// scenario/trace determinism rules (§8), and the network model (§11).
package earmac

// Stamp a benchmark file for the current revision (same as `make bench`
// without the baseline gate):
//go:generate sh -c "go run ./cmd/earmac-bench -quick -out BENCH_$(git rev-parse --short HEAD).json"

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/mac/duty"
	"earmac/internal/metrics"
	"earmac/internal/network"
	"earmac/internal/ratio"
	"earmac/internal/registry"
	"earmac/internal/report"
	"earmac/internal/scenario"
	"earmac/internal/trace"
)

// Config selects a simulation. Zero fields take the documented defaults.
// The JSON tags define the schema used by SuiteReport serialization.
type Config struct {
	// Algorithm is one of Algorithms(). Default "orchestra".
	Algorithm string `json:"algorithm,omitempty"`
	// N is the number of stations. Default 8.
	N int `json:"n,omitempty"`
	// K is the energy-cap parameter of k-cycle, k-clique, k-subsets and
	// k-subsets-rrw (ignored by the fixed-cap algorithms). Default 3.
	K int `json:"k,omitempty"`
	// RhoNum/RhoDen give the injection rate ρ as an exact fraction.
	// Default 1/2.
	RhoNum int64 `json:"rho_num,omitempty"`
	RhoDen int64 `json:"rho_den,omitempty"`
	// Beta is the burstiness coefficient β ≥ 1. Default 1.
	Beta int64 `json:"beta,omitempty"`
	// Topology, when non-empty, runs a *network* of shared channels
	// instead of the classic single channel: one of Topologies() —
	// "line", "star", "clique", "grid", "random" (seeded by Seed), or
	// "custom" (explicit Links). Every
	// channel is its own contention domain running an N-station replica
	// of the algorithm; packets whose destination lies in another
	// channel are relayed hop by hop through per-neighbour gateway
	// stations (see DESIGN.md §11).
	Topology string `json:"topology,omitempty"`
	// Channels is the channel count of a network topology. Default 2
	// when Topology is set; must stay 0 without one.
	Channels int `json:"channels,omitempty"`
	// Links is the explicit channel adjacency for Topology "custom":
	// undirected [from, to] channel-index pairs forming a connected
	// graph.
	Links [][2]int `json:"links,omitempty"`
	// Pattern is one of Patterns(). Default "uniform". On a network,
	// each channel draws from its own independently-seeded pattern
	// instance over the global station space: sources are folded into
	// the entry channel, destinations stay global.
	Pattern string `json:"pattern,omitempty"`
	// Phases, when non-empty, replaces Pattern with a time-varying phase
	// schedule composed from registered patterns (see Phase). Phase i
	// builds its pattern with seed Seed+i, so phases draw independent
	// randomness yet stay reproducible.
	Phases []Phase `json:"phases,omitempty"`
	// Src and Dest parameterize the targeted patterns (single-target,
	// hot-source).
	Src  int `json:"src,omitempty"`
	Dest int `json:"dest,omitempty"`
	// Seed makes randomized patterns deterministic. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// Rounds is the horizon. Default 100000.
	Rounds int64 `json:"rounds,omitempty"`
	// StopInjectionsAfter ends injection at that round so the system can
	// drain (0 = inject throughout).
	StopInjectionsAfter int64 `json:"stop_injections_after,omitempty"`
	// Lenient records model violations in the report instead of failing.
	Lenient bool `json:"lenient,omitempty"`
	// DisableChecks turns off the packet-conservation invariant checker
	// (on by default; it costs O(queue) every ~10k rounds).
	DisableChecks bool `json:"disable_checks,omitempty"`
	// ForceChecked keeps the fully-validating round loop (including the
	// per-round schedule-conformance scan) even when Lenient and
	// DisableChecks would otherwise select the allocation-free fast
	// path, which records every violation except schedule conformance.
	// Set it to audit a custom algorithm's schedule without aborting on
	// violations.
	ForceChecked bool `json:"force_checked,omitempty"`
	// JamRhoNum/JamRhoDen/JamBeta, when JamRhoNum > 0, add a jamming
	// adversary with its own (ρ_j, β_j) leaky-bucket budget, spent one
	// unit per jammed channel-round: each round it greedily jams as many
	// channels as the budget affords (at most all of them), chosen by a
	// seeded shuffle. A jammed round delivers nothing and every
	// listening station hears a collision. JamRhoDen defaults to 1 and
	// JamBeta to 1 when a jam rate is set. Only algorithms whose
	// metadata declares Tolerant accept a jamming config (see
	// AlgorithmMeta.Tolerant); recorded traces store the jam stream as
	// v3 events, so replays reproduce it exactly.
	JamRhoNum int64 `json:"jam_rho_num,omitempty"`
	JamRhoDen int64 `json:"jam_rho_den,omitempty"`
	JamBeta   int64 `json:"jam_beta,omitempty"`
	// Outages schedules channel-dead windows: during [From, From+Rounds)
	// the named channel delivers nothing (stations hear collisions), and
	// on a network, relay hand-offs destined for it queue at the network
	// layer until the window ends. Windows on one channel must not
	// overlap; channel indices must fit the topology (0 only, for a
	// single-channel run). Requires a Tolerant algorithm.
	Outages []Outage `json:"outages,omitempty"`
	// SleepAfterIdle/WakeEvery/EnergyBudget duty-cycle the stations (see
	// internal/mac/duty): a station whose queue stayed empty for
	// SleepAfterIdle consecutive rounds switches off instead of
	// listening (waking every WakeEvery rounds if set), and one that has
	// spent EnergyBudget switched-on rounds stops listening for good.
	// Zero values disable each rule. Duty-cycling trades deliveries for
	// energy — a packet sent to a sleeping destination is dropped — so
	// it also requires a Tolerant algorithm.
	SleepAfterIdle int64 `json:"sleep_after_idle,omitempty"`
	WakeEvery      int64 `json:"wake_every,omitempty"`
	EnergyBudget   int64 `json:"energy_budget,omitempty"`
	// Trace, when non-nil, receives a per-round event log (who was on,
	// what was transmitted, deliveries) for rounds [TraceFrom, TraceUpTo).
	Trace     io.Writer `json:"-"`
	TraceFrom int64     `json:"-"`
	TraceUpTo int64     `json:"-"`
	// RecordTo, when non-nil, receives a replayable injection trace of
	// the run in the versioned JSONL format (header with this Config,
	// one event line per injecting round, footer pinning the final
	// counters). Recording works on both simulator paths and does not
	// force the checked path.
	RecordTo io.Writer `json:"-"`
	// Replay, when non-nil, re-executes the recorded injection stream
	// instead of running an adversary: Pattern, Phases, Seed, ρ and β
	// are ignored for injection (they still describe the recorded run).
	// Use ReplayConfig to assemble a faithful Config from a trace.
	Replay *Trace `json:"-"`
	// NoSkip disables the quiescence fast-forward engine (DESIGN.md
	// §16), forcing the classic per-round loop even where the simulator
	// could prove idle rounds skippable. The engine is bit-identical by
	// construction — reports, traces, and recordings match at either
	// setting — so this is a pure throughput knob: runtime-only,
	// excluded from the JSON schema and from Fingerprint.
	NoSkip bool `json:"-"`
	// NetWorkers sets how many worker goroutines step a network's
	// channels each round: 0 means GOMAXPROCS, 1 forces the serial
	// loop, k > 1 uses min(k, Channels) persistent workers. Ignored
	// without a Topology. Reports, traces, and progress snapshots are
	// bit-identical at any value (see DESIGN.md §13), so this is a pure
	// throughput knob — runtime-only, excluded from the JSON schema and
	// from Fingerprint.
	NetWorkers int `json:"-"`
	// OnProgress, when non-nil, receives an interim snapshot every
	// ProgressEvery rounds during RunContext, at the final round, and —
	// when the context is cancelled mid-run — once at the round the run
	// stopped, before RunContext returns. RunContext never invokes
	// OnProgress after it has returned.
	OnProgress func(Progress) `json:"-"`
	// ProgressEvery is the snapshot period in rounds. Default Rounds/64
	// (at least 1).
	ProgressEvery int64 `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = "orchestra"
	}
	if c.N == 0 {
		c.N = 8
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.RhoNum == 0 && c.RhoDen == 0 {
		c.RhoNum, c.RhoDen = 1, 2
	}
	if c.RhoDen == 0 {
		c.RhoDen = 1
	}
	if c.Beta == 0 {
		c.Beta = 1
	}
	if c.Pattern == "" {
		c.Pattern = "uniform"
	}
	if c.Topology != "" && c.Channels == 0 {
		c.Channels = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Rounds == 0 {
		c.Rounds = 100000
	}
	if c.JamRhoNum > 0 {
		if c.JamRhoDen == 0 {
			c.JamRhoDen = 1
		}
		if c.JamBeta == 0 {
			c.JamBeta = 1
		}
	}
	return c
}

// Outage is one scheduled channel-dead window (Config.Outages).
type Outage = network.Outage

// jamming reports whether the config enables the jamming adversary.
func (c Config) jamming() bool { return c.JamRhoNum > 0 }

// dutyParams collects the duty-cycling knobs.
func (c Config) dutyParams() duty.Params {
	return duty.Params{
		SleepAfterIdle: c.SleepAfterIdle,
		WakeEvery:      c.WakeEvery,
		EnergyBudget:   c.EnergyBudget,
	}
}

// disrupted reports whether the run can produce trace-v3 events
// (jam/outage/sleep) — recordings then declare format version 3.
func (c Config) disrupted() bool {
	return c.jamming() || len(c.Outages) > 0 || c.dutyParams().Enabled()
}

// Report holds the measurements of one simulation. It is the shared
// schema (internal/report) that Suite results and the -json CLI outputs
// also serialize.
type Report = report.Report

// Progress is an interim snapshot handed to Config.OnProgress during
// RunContext. Report is assembled from the tracker mid-run: cumulative
// counters are exact, derived figures (slope, stability) reflect the
// samples so far.
type Progress struct {
	// Round is the number of completed rounds.
	Round int64 `json:"round"`
	// Total is the configured horizon.
	Total int64 `json:"total"`
	// Report is the interim measurement snapshot.
	Report Report `json:"report"`
}

// buildPattern constructs one injection source over n stations with the
// given base seed: a single registered pattern, or a phase schedule
// composed from several (phase i draws with seed+i).
func buildPattern(cfg Config, n int, seed int64) (adversary.Pattern, error) {
	one := func(name string, seed int64) (adversary.Pattern, error) {
		return adversary.BuildPattern(name, adversary.PatternParams{
			N: n, Seed: seed, Src: cfg.Src, Dest: cfg.Dest,
			RhoNum: cfg.RhoNum, RhoDen: cfg.RhoDen,
		})
	}
	if len(cfg.Phases) == 0 {
		return one(cfg.Pattern, seed)
	}
	segs := make([]scenario.Segment, len(cfg.Phases))
	for i, ph := range cfg.Phases {
		p, err := one(ph.Pattern, seed+int64(i))
		if err != nil {
			return nil, err
		}
		segs[i] = scenario.Segment{Pattern: p, Rounds: ph.Rounds}
	}
	return scenario.NewPhased(segs)
}

// channelSeedStride separates the per-channel base seeds of a network
// run far enough that channel c's phase seeds (base + phase index)
// never collide with channel c+1's.
const channelSeedStride = 1_000_003

// run bundles everything one simulation needs, behind closures so the
// single-channel and network paths share one driver loop (RunContext).
type run struct {
	step     func(rounds int64) error
	snapshot func() Report
	counters func() *metrics.Counters // final-counter source for the trace footer
	enc      *scenario.Encoder        // non-nil when recording a trace
	close    func()                   // non-nil when the simulator owns resources (network workers)
}

// prepare validates the defaulted config and assembles the simulator —
// a single core.Sim, or a network of them when a Topology is set.
func prepare(cfg Config) (run, error) {
	if err := cfg.validate(); err != nil {
		return run{}, err
	}
	if cfg.Topology != "" {
		return prepareNetwork(cfg)
	}
	sys, err := registry.Build(cfg.Algorithm, cfg.N, cfg.K)
	if err != nil {
		return run{}, err
	}
	sys, grp := duty.Wrap(sys, cfg.dutyParams())
	var adv core.Adversary
	if cfg.Replay != nil {
		adv = scenario.NewReplayer(cfg.Replay)
	} else {
		pat, err := buildPattern(cfg, cfg.N, cfg.Seed)
		if err != nil {
			return run{}, err
		}
		if cfg.StopInjectionsAfter > 0 {
			pat = adversary.Stop(pat, cfg.StopInjectionsAfter)
		}
		typ := adversary.Type{Rho: ratio.New(cfg.RhoNum, cfg.RhoDen), Beta: ratio.FromInt(cfg.Beta)}
		adv = adversary.New(typ, pat)
	}

	tr := metrics.NewTracker()
	tr.TrackStations(cfg.N)
	if se := cfg.Rounds / 512; se > tr.SampleEvery {
		tr.SampleEvery = se
	}
	var tracer core.Tracer
	if cfg.Trace != nil {
		tracer = &trace.Logger{W: cfg.Trace, From: cfg.TraceFrom, To: cfg.TraceUpTo}
	}
	var enc *scenario.Encoder
	var injObs func(round int64, injs []core.Injection)
	if cfg.RecordTo != nil {
		raw, err := json.Marshal(cfg)
		if err != nil {
			return run{}, fmt.Errorf("earmac: encoding config into trace header: %w", err)
		}
		hdr := scenario.Header{N: cfg.N, Rounds: cfg.Rounds, Config: raw}
		if cfg.disrupted() {
			hdr.Version = scenario.TraceVersion // kinded events need v3
		}
		enc = scenario.NewEncoder(cfg.RecordTo, hdr)
		injObs = enc.Round
	}
	opts := core.Options{
		Strict:            !cfg.Lenient,
		CheckEvery:        conservationCheckEvery(cfg),
		Tracker:           tr,
		Tracer:            tracer,
		ForceChecked:      cfg.ForceChecked,
		InjectionObserver: injObs,
		NoSkip:            cfg.NoSkip,
	}
	// Disruption on the classic single channel: the jammer (or a trace
	// replay of one) and the outage schedule address channel 0. The
	// closure runs once per round, serially, after the round's injection
	// event was recorded — so jam/outage events land behind it in the
	// trace, as the v3 per-round ordering requires.
	var disruptor network.Disruptor
	if cfg.Replay != nil {
		if jr := network.NewJamReplay(cfg.Replay); jr != nil {
			disruptor = jr
		}
	} else if cfg.jamming() {
		jt := adversary.Type{Rho: ratio.New(cfg.JamRhoNum, cfg.JamRhoDen), Beta: ratio.FromInt(cfg.JamBeta)}
		disruptor = network.NewJammer(jt, 1, cfg.Seed)
	}
	outs, err := network.NewOutageSchedule(cfg.Outages, 1)
	if err != nil {
		return run{}, fmt.Errorf("earmac: %w", err)
	}
	if disruptor != nil || outs != nil {
		jamBuf := make([]int, 0, 1)
		opts.Disrupted = func(round int64) core.Disrupt {
			var d core.Disrupt
			if disruptor != nil {
				jamBuf = disruptor.AppendJams(round, jamBuf[:0])
				if len(jamBuf) > 0 {
					d |= core.DisruptJam
					if enc != nil {
						enc.Jam(round, 0)
					}
				}
			}
			if outs != nil {
				if active, starts, dur := outs.Active(0, round); active {
					d |= core.DisruptOutage
					if starts && enc != nil {
						enc.Outage(round, 0, dur)
					}
				}
			}
			return d
		}
		// Span skipping past disrupted stretches needs a horizon over
		// every disruption source. A replayed jam stream (JamReplay)
		// knows its future; a live Jammer spends budget every round and
		// has none, which pins spans (quiescent ticks still consult the
		// closure round by round, so jam accounting stays exact).
		jh, jok := disruptor.(network.JamHorizon)
		if disruptor == nil || jok {
			opts.DisruptHorizon = func(from int64) int64 {
				next := int64(-1)
				if jok {
					next = jh.NextJamRound(from)
				}
				if outs != nil {
					if nd := outs.NextDisrupted(0, from); nd >= 0 && (next < 0 || nd < next) {
						next = nd
					}
				}
				return next
			}
		}
	}
	if grp != nil && enc != nil {
		lastAsleep := 0
		opts.RoundEnd = func(round int64) {
			if a := grp.Asleep(); a != lastAsleep {
				lastAsleep = a
				enc.Sleep(round, 0, a)
			}
		}
	}
	sim := core.NewSim(sys, adv, opts)
	return run{
		step: sim.Run,
		snapshot: func() Report {
			rep := report.FromTracker(sys.Info, cfg.N, tr)
			if grp != nil {
				rep.SleepRounds = grp.SleepRounds()
			}
			return rep
		},
		counters: func() *metrics.Counters { return &tr.Counters },
		enc:      enc,
	}, nil
}

// conservationCheckEvery is the packet-conservation cadence Run uses
// unless DisableChecks is set (a prime, so it never aligns with phase
// or pattern periods).
func conservationCheckEvery(cfg Config) int64 {
	if cfg.DisableChecks {
		return 0
	}
	return 10007
}

// prepareNetwork assembles a network-of-channels run: one core.Sim per
// channel behind relay queues, an entry adversary splitting the global
// (ρ, β) budget across channels (or a trace-v2 replay source), and the
// aggregate/per-channel report assembly.
func prepareNetwork(cfg Config) (run, error) {
	topo, err := network.Compile(network.Spec{
		Kind: cfg.Topology, Channels: cfg.Channels, N: cfg.N, Links: cfg.Links,
		Seed: cfg.Seed, // the "random" kind's edge set is a function of (Seed, Channels)
	})
	if err != nil {
		return run{}, fmt.Errorf("earmac: %w", err)
	}
	var info core.AlgorithmInfo
	// One duty group per channel (nil entries when duty-cycling is off):
	// the network's Sleepers hook and the report's SleepRounds read them.
	groups := make([]*duty.Group, cfg.Channels)
	build := func(ch int) (*core.System, error) {
		sys, err := registry.Build(cfg.Algorithm, cfg.N, cfg.K)
		if err != nil {
			return nil, err
		}
		sys, groups[ch] = duty.Wrap(sys, cfg.dutyParams())
		if ch == 0 {
			info = sys.Info
		}
		return sys, nil
	}
	var entry network.Source
	if cfg.Replay != nil {
		entry = network.NewReplaySource(cfg.Replay)
	} else {
		pats := make([]adversary.Pattern, cfg.Channels)
		for c := range pats {
			pat, err := buildPattern(cfg, topo.Stations(), cfg.Seed+int64(c)*channelSeedStride)
			if err != nil {
				return run{}, err
			}
			if cfg.StopInjectionsAfter > 0 {
				pat = adversary.Stop(pat, cfg.StopInjectionsAfter)
			}
			pats[c] = pat
		}
		typ := adversary.Type{Rho: ratio.New(cfg.RhoNum, cfg.RhoDen), Beta: ratio.FromInt(cfg.Beta)}
		entry, err = network.NewAdversary(topo, typ, pats)
		if err != nil {
			return run{}, fmt.Errorf("earmac: %w", err)
		}
	}
	var enc *scenario.Encoder
	var rec func(round int64, ch int, injs []core.Injection)
	if cfg.RecordTo != nil {
		raw, err := json.Marshal(cfg)
		if err != nil {
			return run{}, fmt.Errorf("earmac: encoding config into trace header: %w", err)
		}
		hdr := scenario.Header{N: cfg.N, Rounds: cfg.Rounds, Channels: cfg.Channels, Config: raw}
		if cfg.disrupted() {
			hdr.Version = scenario.TraceVersion // kinded events need v3
		}
		enc = scenario.NewEncoder(cfg.RecordTo, hdr)
		rec = enc.ChannelRound
	}
	var tracer func(ch int) core.Tracer
	if cfg.Trace != nil {
		tracer = func(ch int) core.Tracer {
			names := make([]string, cfg.N)
			for i := range names {
				names[i] = fmt.Sprintf("c%d.s%d", ch, i)
			}
			return &trace.Logger{W: cfg.Trace, From: cfg.TraceFrom, To: cfg.TraceUpTo, Names: names}
		}
	}
	netOpts := network.Options{
		Strict:        !cfg.Lenient,
		CheckEvery:    conservationCheckEvery(cfg),
		ForceChecked:  cfg.ForceChecked,
		SampleEvery:   cfg.Rounds / 512,
		Workers:       cfg.NetWorkers,
		NoSkip:        cfg.NoSkip,
		TrackStations: true,
		Recorder:      rec,
		Tracer:        tracer,
	}
	if cfg.Replay != nil {
		if jr := network.NewJamReplay(cfg.Replay); jr != nil {
			netOpts.Disruptor = jr
		}
	} else if cfg.jamming() {
		jt := adversary.Type{Rho: ratio.New(cfg.JamRhoNum, cfg.JamRhoDen), Beta: ratio.FromInt(cfg.JamBeta)}
		netOpts.Disruptor = network.NewJammer(jt, cfg.Channels, cfg.Seed)
	}
	if netOpts.Outages, err = network.NewOutageSchedule(cfg.Outages, cfg.Channels); err != nil {
		return run{}, fmt.Errorf("earmac: %w", err)
	}
	if cfg.dutyParams().Enabled() {
		netOpts.Sleepers = func(ch int) int { return groups[ch].Asleep() }
	}
	if enc != nil && cfg.disrupted() {
		netOpts.Events = enc
	}
	net, err := network.New(topo, build, entry, netOpts)
	if err != nil {
		return run{}, err
	}
	// The effective per-channel entry budget (the burst floored at 1 —
	// see network.SplitType) goes into the report so rows aren't
	// mislabeled with the nominal (ρ, β) when β < Channels.
	split := network.SplitType(adversary.Type{
		Rho: ratio.New(cfg.RhoNum, cfg.RhoDen), Beta: ratio.FromInt(cfg.Beta),
	}, cfg.Channels)
	snapshot := func() Report {
		rep := report.FromTracker(info, topo.Stations(), net.Tracker())
		rep.N = cfg.N
		rep.Topology = cfg.Topology
		rep.Channels = cfg.Channels
		rep.EnergyCap = info.EnergyCap * cfg.Channels
		rep.QueueImbalance = net.QueueImbalance()
		rep.Violations = net.Violations()
		rep.PerChannel = perChannelReports(net)
		rep.SplitRho = split.Rho.String()
		rep.SplitBeta = split.Beta.String()
		for _, g := range groups {
			if g != nil {
				rep.SleepRounds += g.SleepRounds()
			}
		}
		return rep
	}
	return run{
		step:     net.Run,
		snapshot: snapshot,
		counters: func() *metrics.Counters { return &net.Tracker().Counters },
		enc:      enc,
		close:    net.Close,
	}, nil
}

func perChannelReports(net *network.Network) []report.Channel {
	topo := net.Topology()
	out := make([]report.Channel, topo.Channels())
	for c := range out {
		tr := net.ChannelTracker(c)
		out[c] = report.Channel{
			Channel:         c,
			Stations:        topo.StationsPerChannel(),
			Injected:        tr.Injected,
			Delivered:       tr.Delivered,
			Relayed:         net.Relayed(c),
			MaxQueue:        tr.MaxQueue,
			MeanEnergy:      tr.MeanEnergy(),
			MeanLatency:     tr.MeanLatency(),
			HeardRounds:     tr.HeardRounds,
			SilentRounds:    tr.SilentRounds,
			CollisionRounds: tr.CollisionRounds,
			JammedRounds:    tr.JammedRounds,
			OutageRounds:    tr.OutageRounds,
			Dropped:         tr.Dropped,
		}
	}
	return out
}

// Run executes one simulation per the config. It is a thin wrapper over
// RunContext with a background context.
func Run(cfg Config) (Report, error) {
	return RunContext(context.Background(), cfg)
}

// ctxCheckEvery bounds how many rounds run between cancellation checks.
const ctxCheckEvery = 16384

// RunContext executes one simulation per the config, honouring ctx
// cancellation and invoking cfg.OnProgress periodically. On cancellation
// it returns the partial Report measured so far alongside the context's
// error.
func RunContext(ctx context.Context, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	r, err := prepare(cfg)
	if err != nil {
		return Report{}, err
	}
	// finish releases simulator-owned resources (a network's worker
	// team), closes the trace recording (footer with the counters
	// accumulated so far — a cancelled run still yields a replayable,
	// footer-pinned trace), and folds any encoder error into the result.
	finish := func(rep Report, err error) (Report, error) {
		if r.close != nil {
			r.close()
		}
		if r.enc != nil {
			if cerr := r.enc.Close(r.counters()); err == nil && cerr != nil {
				err = fmt.Errorf("earmac: recording trace: %w", cerr)
			}
		}
		return rep, err
	}
	every := cfg.ProgressEvery
	if every <= 0 {
		if every = cfg.Rounds / 64; every < 1 {
			every = 1
		}
	}
	nextMark := every
	lastSnap := int64(-1) // round of the last delivered snapshot
	for done := int64(0); done < cfg.Rounds; {
		if err := ctx.Err(); err != nil {
			rep := r.snapshot()
			// Deliver one closing snapshot at the cancellation round (unless
			// the regular cadence already snapped this exact round), so a
			// consumer streaming progress sees the rounds measured so far
			// before RunContext returns — and nothing after.
			if cfg.OnProgress != nil && done > 0 && done != lastSnap {
				cfg.OnProgress(Progress{Round: done, Total: cfg.Rounds, Report: rep})
			}
			return finish(rep, err)
		}
		chunk := cfg.Rounds - done
		if chunk > ctxCheckEvery {
			chunk = ctxCheckEvery
		}
		if cfg.OnProgress != nil && done+chunk > nextMark {
			chunk = nextMark - done
		}
		if err := r.step(chunk); err != nil {
			return finish(Report{}, err)
		}
		done += chunk
		if cfg.OnProgress != nil && (done == nextMark || done == cfg.Rounds) {
			cfg.OnProgress(Progress{
				Round:  done,
				Total:  cfg.Rounds,
				Report: r.snapshot(),
			})
			lastSnap = done
			for nextMark <= done {
				nextMark += every
			}
		}
	}
	return finish(r.snapshot(), nil)
}
