// Package earmac is an executable reproduction of "Energy Efficient
// Adversarial Routing in Shared Channels" (Chlebus, Hradovich,
// Jurdziński, Klonowski, Kowalski — SPAA 2019): deterministic distributed
// routing algorithms on a multiple access channel under an energy cap,
// driven by leaky-bucket adversarial packet injection.
//
// The package is a façade over the internal simulator. A Config selects
// an algorithm, a system size, an adversary type (ρ, β) and injection
// pattern, and a horizon; Run executes the simulation in the exact model
// of the paper — validating the energy cap, plain-packet discipline,
// schedule obliviousness, and exactly-once packet ownership — and returns
// a Report of stability, latency, and energy measurements.
//
//	rep, err := earmac.Run(earmac.Config{
//		Algorithm: "orchestra",
//		N:         8,
//		RhoNum:    1, RhoDen: 1, // injection rate 1
//		Beta:      2,
//		Rounds:    200000,
//	})
//
// Available algorithms (see DESIGN.md for the paper mapping): orchestra,
// count-hop, adjust-window, k-cycle, k-clique, k-subsets, k-subsets-rrw,
// and the broadcast baselines mbtf, rrw, ofrrw.
package earmac

import (
	"fmt"
	"io"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/expt"
	"earmac/internal/metrics"
	"earmac/internal/ratio"
	"earmac/internal/trace"
)

// Config selects a simulation. Zero fields take the documented defaults.
type Config struct {
	// Algorithm is one of Algorithms(). Default "orchestra".
	Algorithm string
	// N is the number of stations. Default 8.
	N int
	// K is the energy-cap parameter of k-cycle, k-clique, k-subsets and
	// k-subsets-rrw (ignored by the fixed-cap algorithms). Default 3.
	K int
	// RhoNum/RhoDen give the injection rate ρ as an exact fraction.
	// Default 1/2.
	RhoNum, RhoDen int64
	// Beta is the burstiness coefficient β ≥ 1. Default 1.
	Beta int64
	// Pattern is one of Patterns(). Default "uniform".
	Pattern string
	// Src and Dest parameterize the targeted patterns (single-target,
	// hot-source).
	Src, Dest int
	// Seed makes randomized patterns deterministic. Default 1.
	Seed int64
	// Rounds is the horizon. Default 100000.
	Rounds int64
	// StopInjectionsAfter ends injection at that round so the system can
	// drain (0 = inject throughout).
	StopInjectionsAfter int64
	// Lenient records model violations in the report instead of failing.
	Lenient bool
	// DisableChecks turns off the packet-conservation invariant checker
	// (on by default; it costs O(queue) every ~10k rounds).
	DisableChecks bool
	// Trace, when non-nil, receives a per-round event log (who was on,
	// what was transmitted, deliveries) for rounds [TraceFrom, TraceUpTo).
	Trace     io.Writer
	TraceFrom int64
	TraceUpTo int64
}

func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = "orchestra"
	}
	if c.N == 0 {
		c.N = 8
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.RhoNum == 0 && c.RhoDen == 0 {
		c.RhoNum, c.RhoDen = 1, 2
	}
	if c.RhoDen == 0 {
		c.RhoDen = 1
	}
	if c.Beta == 0 {
		c.Beta = 1
	}
	if c.Pattern == "" {
		c.Pattern = "uniform"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Rounds == 0 {
		c.Rounds = 100000
	}
	return c
}

// Report holds the measurements of one simulation.
type Report struct {
	Algorithm   string
	N           int
	EnergyCap   int
	PlainPacket bool
	Direct      bool
	Oblivious   bool

	Rounds    int64
	Injected  int64
	Delivered int64
	Pending   int64

	MaxQueue    int64
	FinalQueue  int64
	QueueSlope  float64
	GrowthRatio float64
	Stable      bool
	// QueueImbalance is the largest per-station queue peak relative to
	// the mean peak (1 = balanced; large = one station absorbed the load).
	QueueImbalance float64

	MaxLatency  int64
	MeanLatency float64
	P50Latency  int64 // histogram upper bound
	P99Latency  int64 // histogram upper bound

	MeanEnergy float64
	MaxEnergy  int

	HeardRounds     int64
	SilentRounds    int64
	CollisionRounds int64
	LightRounds     int64
	ControlBits     int64

	Violations []string
}

// Summary renders a human-readable digest of the report.
func (r Report) Summary() string {
	caps := ""
	if r.PlainPacket {
		caps += " plain-packet"
	}
	if r.Direct {
		caps += " direct"
	}
	if r.Oblivious {
		caps += " oblivious"
	}
	s := fmt.Sprintf("%s (n=%d, cap %d,%s)\n", r.Algorithm, r.N, r.EnergyCap, caps)
	s += fmt.Sprintf("  rounds %d: injected %d, delivered %d, pending %d\n",
		r.Rounds, r.Injected, r.Delivered, r.Pending)
	s += fmt.Sprintf("  queue: max %d, final %d, slope %.5f pkt/round → %s\n",
		r.MaxQueue, r.FinalQueue, r.QueueSlope, stability(r.Stable))
	s += fmt.Sprintf("  latency: max %d, mean %.1f, p50 ≤ %d, p99 ≤ %d\n",
		r.MaxLatency, r.MeanLatency, r.P50Latency, r.P99Latency)
	s += fmt.Sprintf("  energy: mean %.2f on-stations/round (cap %d, peak %d)\n",
		r.MeanEnergy, r.EnergyCap, r.MaxEnergy)
	s += fmt.Sprintf("  channel: %d heard (%d light), %d silent, %d collisions, %d control bits\n",
		r.HeardRounds, r.LightRounds, r.SilentRounds, r.CollisionRounds, r.ControlBits)
	if len(r.Violations) > 0 {
		s += fmt.Sprintf("  VIOLATIONS: %d (first: %s)\n", len(r.Violations), r.Violations[0])
	}
	return s
}

func stability(ok bool) string {
	if ok {
		return "stable"
	}
	return "UNSTABLE"
}

// Run executes one simulation per the config.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	sys, err := expt.Build(cfg.Algorithm, cfg.N, cfg.K)
	if err != nil {
		return Report{}, err
	}
	pat, err := expt.BuildPattern(cfg.Pattern, cfg.N, cfg.Seed, cfg.Src, cfg.Dest)
	if err != nil {
		return Report{}, err
	}
	if cfg.StopInjectionsAfter > 0 {
		pat = adversary.Stop(pat, cfg.StopInjectionsAfter)
	}
	typ := adversary.Type{Rho: ratio.New(cfg.RhoNum, cfg.RhoDen), Beta: ratio.FromInt(cfg.Beta)}
	adv := adversary.New(typ, pat)

	tr := metrics.NewTracker()
	tr.TrackStations(cfg.N)
	if se := cfg.Rounds / 512; se > tr.SampleEvery {
		tr.SampleEvery = se
	}
	check := int64(10007)
	if cfg.DisableChecks {
		check = 0
	}
	var tracer core.Tracer
	if cfg.Trace != nil {
		tracer = &trace.Logger{W: cfg.Trace, From: cfg.TraceFrom, To: cfg.TraceUpTo}
	}
	sim := core.NewSim(sys, adv, core.Options{
		Strict:     !cfg.Lenient,
		CheckEvery: check,
		Tracker:    tr,
		Tracer:     tracer,
	})
	if err := sim.Run(cfg.Rounds); err != nil {
		return Report{}, err
	}

	return Report{
		Algorithm:   sys.Info.Name,
		N:           cfg.N,
		EnergyCap:   sys.Info.EnergyCap,
		PlainPacket: sys.Info.PlainPacket,
		Direct:      sys.Info.Direct,
		Oblivious:   sys.Info.Oblivious,

		Rounds:    tr.Rounds,
		Injected:  tr.Injected,
		Delivered: tr.Delivered,
		Pending:   tr.Pending(),

		MaxQueue:       tr.MaxQueue,
		FinalQueue:     tr.FinalQueue(),
		QueueSlope:     tr.QueueSlope(),
		GrowthRatio:    tr.GrowthRatio(),
		Stable:         tr.LooksStable(),
		QueueImbalance: tr.QueueImbalance(),

		MaxLatency:  tr.MaxLatency,
		MeanLatency: tr.MeanLatency(),
		P50Latency:  tr.LatencyPercentile(0.5),
		P99Latency:  tr.LatencyPercentile(0.99),

		MeanEnergy: tr.MeanEnergy(),
		MaxEnergy:  tr.MaxEnergy,

		HeardRounds:     tr.HeardRounds,
		SilentRounds:    tr.SilentRounds,
		CollisionRounds: tr.CollisionRounds,
		LightRounds:     tr.LightRounds,
		ControlBits:     tr.ControlBits,

		Violations: tr.Violations,
	}, nil
}

// Algorithms lists the available algorithm names.
func Algorithms() []string { return expt.Algorithms() }

// Patterns lists the available injection pattern names.
func Patterns() []string { return expt.Patterns() }
