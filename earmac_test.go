package earmac

import (
	"strings"
	"testing"
)

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Algorithm != "orchestra" || cfg.N != 8 || cfg.K != 3 ||
		cfg.RhoNum != 1 || cfg.RhoDen != 2 || cfg.Beta != 1 ||
		cfg.Pattern != "uniform" || cfg.Rounds != 100000 || cfg.Seed != 1 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestRunDefaultConfig(t *testing.T) {
	rep, err := Run(Config{Rounds: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != "orchestra" || rep.EnergyCap != 3 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if rep.Delivered == 0 {
		t.Error("nothing delivered")
	}
	if rep.MaxEnergy > 3 {
		t.Errorf("energy %d over cap", rep.MaxEnergy)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("violations: %v", rep.Violations)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if _, err := Run(Config{Algorithm: "wat"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Run(Config{Pattern: "wat"}); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestRunWithDrain(t *testing.T) {
	rep, err := Run(Config{
		Algorithm: "k-cycle",
		N:         7,
		K:         3,
		RhoNum:    1, RhoDen: 5,
		Rounds:              60000,
		StopInjectionsAfter: 30000,
		Seed:                7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pending != 0 {
		t.Errorf("pending = %d after drain", rep.Pending)
	}
	if !rep.Oblivious || rep.Direct {
		t.Error("k-cycle property flags wrong")
	}
}

func TestSummaryMentionsKeyFacts(t *testing.T) {
	rep, err := Run(Config{Algorithm: "count-hop", N: 5, Rounds: 20000})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	for _, want := range []string{"count-hop", "cap 2", "queue", "latency", "energy"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestAlgorithmAndPatternLists(t *testing.T) {
	algos := Algorithms()
	if len(algos) != 11 {
		t.Errorf("Algorithms() = %v", algos)
	}
	// 6 built-ins plus the scenario patterns (bernoulli, poisson-batch,
	// quiet).
	pats := Patterns()
	if len(pats) != 9 {
		t.Errorf("Patterns() = %v", pats)
	}
}

func TestLenientModeRecordsInsteadOfFailing(t *testing.T) {
	// Injections out of range: src/dest beyond n. single-target with dest
	// == n would be invalid; use a valid config but lenient anyway to
	// exercise the flag path.
	rep, err := Run(Config{Algorithm: "rrw", N: 4, Lenient: true, Rounds: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 5000 {
		t.Errorf("rounds = %d", rep.Rounds)
	}
}
