// Adversary-duel: the paper's three impossibility results, staged. Each
// theorem is a game between a routing algorithm and an adversary pinned
// exactly at/above the proven threshold:
//
//   - Theorem 2: with energy cap 2, injection rate 1 overwhelms any
//     algorithm (watch Count-Hop's queue grow; Orchestra, with cap 3,
//     absorbs the identical workload).
//   - Theorem 6: a k-energy-oblivious schedule leaves some station on
//     only a k/n fraction of rounds; flooding it above k/n wins.
//   - Theorem 9: a direct-routing oblivious schedule co-schedules some
//     ordered pair at most a k(k−1)/(n(n−1)) fraction; a single flow
//     above that rate wins.
//
// Below the thresholds, the same algorithms are demonstrably stable.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	// Blank-import the façade so every built-in algorithm self-registers.
	_ "earmac"
	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/metrics"
	"earmac/internal/ratio"
	"earmac/internal/registry"
)

type duel struct {
	label  string
	build  func() (*core.System, error)
	adv    func(sys *core.System) core.Adversary
	rounds int64
	expect string // "stable" or "unstable"
}

func main() {
	duels := []duel{
		{
			label: "Thm 2 ceiling: Count-Hop (cap 2) vs ρ=1 uniform",
			build: func() (*core.System, error) { return registry.Build("count-hop", 5, 0) },
			adv: func(sys *core.System) core.Adversary {
				return adversary.New(adversary.T(1, 1, 1), adversary.Uniform(5, 3))
			},
			rounds: 120000, expect: "unstable",
		},
		{
			label: "Thm 2 ceiling: Count-Hop (cap 2) vs the Lemma-1 adaptive adversary",
			build: func() (*core.System, error) { return registry.Build("count-hop", 5, 0) },
			adv: func(sys *core.System) core.Adversary {
				return adversary.NewLemma1(sys.N(), 20)
			},
			rounds: 120000, expect: "unstable",
		},
		{
			label: "…but Orchestra (cap 3) absorbs the same ρ=1 workload",
			build: func() (*core.System, error) { return registry.Build("orchestra", 5, 0) },
			adv: func(sys *core.System) core.Adversary {
				return adversary.New(adversary.T(1, 1, 1), adversary.Uniform(5, 3))
			},
			rounds: 120000, expect: "stable",
		},
		{
			label: "Thm 6 ceiling: 3-Cycle (n=7) vs LeastOn flood at ρ=1/2 > k/n=3/7",
			build: func() (*core.System, error) { return registry.Build("k-cycle", 7, 3) },
			adv: func(sys *core.System) core.Adversary {
				return adversary.LeastOn(sys.Schedule, adversary.T(1, 2, 1))
			},
			rounds: 120000, expect: "unstable",
		},
		{
			label: "…but 3-Cycle is stable at ρ=1/4 < (k−1)/(n−1)",
			build: func() (*core.System, error) { return registry.Build("k-cycle", 7, 3) },
			adv: func(sys *core.System) core.Adversary {
				return adversary.New(adversary.T(1, 4, 2), adversary.Uniform(7, 5))
			},
			rounds: 120000, expect: "stable",
		},
		{
			label: "Thm 9 ceiling: 3-Subsets (n=6) vs LeastPair flood at ρ=1/4 > 1/5",
			build: func() (*core.System, error) { return registry.Build("k-subsets", 6, 3) },
			adv: func(sys *core.System) core.Adversary {
				return adversary.LeastPair(sys.Schedule, adversary.T(1, 4, 1))
			},
			rounds: 150000, expect: "unstable",
		},
		{
			label: "…but 3-Subsets is stable at exactly ρ=1/5 = k(k−1)/(n(n−1))",
			build: func() (*core.System, error) { return registry.Build("k-subsets", 6, 3) },
			adv: func(sys *core.System) core.Adversary {
				return adversary.New(adversary.Type{Rho: ratio.New(1, 5), Beta: ratio.FromInt(2)},
					adversary.Uniform(6, 5))
			},
			rounds: 150000, expect: "stable",
		},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "DUEL\tEXPECTED\tOBSERVED\tQUEUE SLOPE\tFINAL QUEUE")
	for _, d := range duels {
		sys, err := d.build()
		if err != nil {
			log.Fatal(err)
		}
		tr := metrics.NewTracker()
		tr.SampleEvery = d.rounds / 512
		sim := core.NewSim(sys, d.adv(sys), core.Options{Strict: true, Tracker: tr})
		if err := sim.Run(d.rounds); err != nil {
			log.Fatal(err)
		}
		observed := "stable"
		if !tr.LooksStable() {
			observed = "unstable"
		}
		marker := ""
		if observed != d.expect {
			marker = "  (!)"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s%s\t%.5f\t%d\n",
			d.label, d.expect, observed, marker, tr.QueueSlope(), tr.FinalQueue)
	}
	tw.Flush()
}
