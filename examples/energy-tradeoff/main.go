// Energy-tradeoff: the paper's concluding open problem (§7) asks for
// tradeoffs between latency and the energy cap. This example measures
// that curve for the two energy-oblivious algorithms: for each cap k it
// drives k-Cycle and k-Clique at a fixed fraction of their respective
// critical rates and reports the delivered latency — showing latency
// falling polynomially as the system is allowed more simultaneous
// energy. All cells run concurrently as one Suite; results come back in
// deterministic order.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"earmac"
	"earmac/internal/expt"
	"earmac/internal/ratio"
)

func main() {
	const n = 13
	fmt.Printf("Latency as a function of the energy cap k (n=%d stations)\n", n)
	fmt.Printf("Each algorithm runs at half its critical injection rate for that cap.\n\n")

	// The rate depends on the cap, so the cells are built directly rather
	// than from a rectangular Grid; the Suite machinery is the same.
	var suite earmac.Suite
	var rows []func(rep earmac.Report) string
	for k := 2; k <= 6; k++ {
		// k-Cycle: critical rate (k−1)/(n−1); run at (k−1)/(2(n−1)).
		k := k
		rho := ratio.New(int64(k-1), int64(2*(n-1)))
		suite.Configs = append(suite.Configs, earmac.Config{
			Algorithm: "k-cycle", N: n, K: k,
			RhoNum: rho.Num(), RhoDen: rho.Den(),
			Beta: 2, Rounds: 200000, Seed: int64(k),
		})
		rows = append(rows, func(rep earmac.Report) string {
			return fmt.Sprintf("%d\tk-cycle\t%v\t%.0f\t%d\t%.0f\t%.2f",
				k, rho, rep.MeanLatency, rep.P99Latency, expt.KCycleLatencyBound(n, 2), rep.MeanEnergy)
		})
	}
	for _, k := range []int{2, 4, 6, 8} {
		// k-Clique (n=12 divides nicely): critical k²/(2n(2n−k)), half it.
		k := k
		const nc = 12
		num := int64(k * k)
		den := int64(2 * 2 * nc * (2*nc - k))
		suite.Configs = append(suite.Configs, earmac.Config{
			Algorithm: "k-clique", N: nc, K: k,
			RhoNum: num, RhoDen: den,
			Beta: 2, Rounds: 400000, Seed: int64(k),
		})
		rows = append(rows, func(rep earmac.Report) string {
			return fmt.Sprintf("%d\tk-clique (n=%d)\t%d/%d\t%.0f\t%d\t%.0f\t%.2f",
				k, nc, num, den, rep.MeanLatency, rep.P99Latency, expt.KCliqueLatencyBound(nc, k, 2), rep.MeanEnergy)
		})
	}

	srep, err := suite.Run(context.Background(), earmac.SuiteOptions{})
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "k\tALGORITHM\tρ (half-critical)\tMEAN LAT\tP99 LAT\tPAPER BOUND\tENERGY/ROUND")
	for i, res := range srep.Results {
		if res.Error != "" {
			log.Fatalf("cell %d: %s", res.Index, res.Error)
		}
		if i == 5 {
			fmt.Fprintln(tw, "\t\t\t\t\t\t")
		}
		fmt.Fprintln(tw, rows[i](res.Report))
	}
	tw.Flush()
	fmt.Println("\nReading: latency shrinks roughly as n²/k while energy spent grows as k —")
	fmt.Println("the quantitative form of the open tradeoff the paper poses.")
}
