// Ethernet-LAN: the paper's motivating scenario. A shared Ethernet
// segment (multiple access channel) with 12 stations is typically
// under-utilized, so keeping every NIC powered is wasted energy. This
// example routes the same moderate workload (ρ = 1/3, bursty) with each
// of the paper's algorithms and an always-on baseline, and compares
// delivered latency against the energy actually spent — the
// latency-versus-energy menu a deployment would choose from. The
// contenders run concurrently as one Suite.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"earmac"
)

func main() {
	const (
		n      = 12
		rounds = 300000
	)
	base := earmac.Config{
		N:      n,
		RhoNum: 1, RhoDen: 3,
		Beta:   4,
		Rounds: rounds,
		Seed:   7,
	}
	with := func(alg string, k int) earmac.Config {
		c := base
		c.Algorithm = alg
		c.K = k
		return c
	}
	// Adjust-Window's delivery cadence is its window, which at n=12 is
	// about a million rounds (lgL·9n³ before the Main stage fits); it
	// needs a proportionately longer horizon to show steady state.
	adjWin := with("adjust-window", 0)
	adjWin.Rounds = 4500000
	adjWin.DisableChecks = true

	contenders := []struct {
		label string
		cfg   earmac.Config
	}{
		{"always-on RRW (no energy cap)", with("rrw", 0)},
		{"Orchestra (cap 3)", with("orchestra", 0)},
		{"Count-Hop (cap 2)", with("count-hop", 0)},
		{"Adjust-Window (cap 2)*", adjWin},
		{"6-Cycle (cap 6, oblivious)", with("k-cycle", 6)},
		{"6-Clique (cap 6, oblivious, direct)", with("k-clique", 6)},
	}
	var suite earmac.Suite
	for _, c := range contenders {
		suite.Configs = append(suite.Configs, c.cfg)
	}

	srep, err := suite.Run(context.Background(), earmac.SuiteOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Shared Ethernet segment, %d stations, load ρ=1/3 with bursts (β=4), %d rounds\n\n", n, rounds)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ALGORITHM\tENERGY/ROUND\tvs ALWAYS-ON\tMEAN LAT\tP99 LAT\tMAX QUEUE\tSTABLE")
	var baseline float64
	for i, res := range srep.Results {
		if res.Error != "" {
			log.Fatalf("%s: %s", contenders[i].label, res.Error)
		}
		rep := res.Report
		if i == 0 {
			baseline = rep.MeanEnergy
		}
		saving := (1 - rep.MeanEnergy/baseline) * 100
		fmt.Fprintf(tw, "%s\t%.2f\t%+.0f%%\t%.0f\t%d\t%d\t%v\n",
			contenders[i].label, rep.MeanEnergy, -saving, rep.MeanLatency, rep.P99Latency, rep.MaxQueue, rep.Stable)
	}
	tw.Flush()
	fmt.Println("\n* Adjust-Window measured over 4.5M rounds — its delivery unit is a ~1M-round window at n=12.")
	fmt.Println("Reading: the capped algorithms cut energy by 50–85% at this load;")
	fmt.Println("the price is latency, growing as the cap shrinks (see examples/energy-tradeoff).")
}
