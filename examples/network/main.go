// Network: route across a whole network of shared channels — the
// paper's "networks modeled as multiple access channels" framing. A 4×4
// grid of channels each runs its own 5-station Orchestra replica set;
// a global (ρ=1/2, β=16) budget is split exactly across the 16 entry
// channels, and packets cross channel boundaries over deterministic
// gateway stations, one relay hop per round.
//
// The run is stepped twice — serial, then on a parallel worker team —
// to demonstrate the worker-count-independence contract: the two
// reports are identical to the last bit (DESIGN.md §13), which is why
// NetWorkers is not part of the config fingerprint.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"

	"earmac"
)

func main() {
	cfg := earmac.Config{
		Algorithm: "orchestra",
		N:         5,
		Topology:  "grid", // also: line, star, clique, random, custom
		Channels:  16,     // compiled as a 4×4 mesh
		RhoNum:    1, RhoDen: 2,
		Beta:    16, // splits exactly: each entry channel gets (ρ/16, 1)
		Pattern: "bernoulli",
		Seed:    7,
		Rounds:  50000,
	}

	cfg.NetWorkers = 1 // serial reference
	serial, err := earmac.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.NetWorkers = 0 // one worker per core
	parallel, err := earmac.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	a, _ := json.Marshal(serial)
	b, _ := json.Marshal(parallel)
	if !bytes.Equal(a, b) {
		log.Fatal("worker-count independence violated — this is a bug")
	}
	fmt.Print(parallel.Summary())
	fmt.Println()

	var relayed int64
	for _, c := range parallel.PerChannel {
		relayed += c.Relayed
	}
	fmt.Printf("channels:        %d (grid)\n", parallel.Channels)
	fmt.Printf("relay hand-offs: %d\n", relayed)
	fmt.Printf("queue imbalance: %.3f (max channel peak / mean peak)\n", parallel.QueueImbalance)
	fmt.Println("⇒ serial and parallel reports are byte-identical")
}
