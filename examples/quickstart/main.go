// Quickstart: run the paper's flagship algorithm, Orchestra, at the
// maximum injection rate ρ = 1 under an energy cap of 3 and confirm its
// headline property — bounded queues (Theorem 1: at most 2n³ + β).
package main

import (
	"fmt"
	"log"

	"earmac"
)

func main() {
	const (
		n    = 8
		beta = 2
	)
	// The registry answers capability questions without running anything:
	// Orchestra is registered with its Theorem 1 metadata.
	if info, ok := earmac.AlgorithmInfo("orchestra"); ok {
		fmt.Printf("orchestra (%s): cap %d — %s\n\n", info.Theorem, info.CapFor(n, 0), info.Summary)
	}
	rep, err := earmac.Run(earmac.Config{
		Algorithm: "orchestra",
		N:         n,
		RhoNum:    1, RhoDen: 1, // the maximum injection rate, ρ = 1
		Beta:   beta,
		Rounds: 200000,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(rep.Summary())
	fmt.Println()

	bound := int64(2*n*n*n + beta)
	fmt.Printf("Theorem 1 bound: 2n³+β = %d queued packets\n", bound)
	fmt.Printf("Measured peak:   %d queued packets\n", rep.MaxQueue)
	switch {
	case !rep.Stable:
		fmt.Println("⇒ NOT REPRODUCED: queues grew")
	case rep.MaxQueue > bound:
		fmt.Println("⇒ NOT REPRODUCED: bound exceeded")
	default:
		fmt.Println("⇒ reproduced: full throughput on three stations' worth of energy")
	}
}
