package earmac

// Regression tests for the simulator's allocation-free fast path: the
// steady-state round loop must not touch the allocator (the perf floor
// the benchmark pipeline gates on), and the fast path must produce
// exactly the same flat counters as the fully-checked path.

import (
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/algorithms/ksubsets"
	"earmac/internal/algorithms/orchestra"
	"earmac/internal/algorithms/randmac"
	"earmac/internal/core"
	"earmac/internal/mac/duty"
	"earmac/internal/metrics"
	"earmac/internal/ratio"
	"earmac/internal/scenario"
)

// steadyAllocsPerRound warms a fast-path simulation up, then measures the
// allocations per simulated round. Queue high-water records still grow
// the pools amortized-logarithmically ever more rarely, so it returns the
// minimum over a few measurement windows: a zero window proves the round
// loop itself never touches the allocator.
func steadyAllocsPerRound(t *testing.T, sys *core.System, adv core.Adversary, warmup, measure int64) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("allocs-per-round is meaningless under the race detector")
	}
	tr := metrics.NewTracker()
	tr.SampleEvery = 0 // flat counters only: no time-series appends
	sim := core.NewSim(sys, adv, core.Options{Tracker: tr})
	if !sim.FastPath() {
		t.Fatal("fast path not selected")
	}
	if err := sim.Run(warmup); err != nil {
		t.Fatal(err)
	}
	best := -1.0
	for window := 0; window < 5; window++ {
		allocs := testing.AllocsPerRun(1, func() {
			if err := sim.Run(measure); err != nil {
				t.Error(err)
			}
		})
		if best < 0 || allocs < best {
			best = allocs
		}
		if best == 0 {
			break
		}
	}
	return best / float64(measure)
}

func TestFastPathZeroAllocsKSubsets(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is long")
	}
	sys, err := ksubsets.New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	// ρ = 1/6 < k(k−1)/(n(n−1)) = 1/5: stable, queues bounded.
	adv := adversary.New(adversary.T(1, 6, 2), adversary.Uniform(6, 42))
	perRound := steadyAllocsPerRound(t, sys, adv, 60000, 30000)
	if perRound != 0 {
		t.Errorf("k-subsets steady state allocates %.4f allocs/round, want 0", perRound)
	}
}

func TestFastPathZeroAllocsRandMAC(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is long")
	}
	sys, err := randmac.New(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Far below ALOHA's effective throughput so the queues stay bounded.
	adv := adversary.New(adversary.T(1, 40, 2), adversary.Uniform(8, 7))
	perRound := steadyAllocsPerRound(t, sys, adv, 60000, 30000)
	if perRound != 0 {
		t.Errorf("aloha steady state allocates %.4f allocs/round, want 0", perRound)
	}
}

// TestFastPathZeroAllocsDutyCycled extends the perf floor to the ISSUE 8
// energy layer: a duty-cycled wrap (sleep-after-idle plus a wake
// schedule) must not cost the fast path its allocation-free steady
// state — the wrapper is pure bookkeeping over the inner protocol.
func TestFastPathZeroAllocsDutyCycled(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is long")
	}
	sys, err := randmac.New(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	sys, grp := duty.Wrap(sys, duty.Params{SleepAfterIdle: 16, WakeEvery: 8})
	adv := adversary.New(adversary.T(1, 40, 2), adversary.Uniform(8, 7))
	perRound := steadyAllocsPerRound(t, sys, adv, 60000, 30000)
	if perRound != 0 {
		t.Errorf("duty-cycled aloha steady state allocates %.4f allocs/round, want 0", perRound)
	}
	if grp.SleepRounds() == 0 {
		t.Error("duty-cycling never suppressed a listen at ρ = 1/40")
	}
}

// TestFastPathZeroAllocsStochasticScenario pins the seed/RNG plumbing
// of the scenario subsystem to the same perf floor as the hand-written
// patterns: a phased stochastic workload — quiet warm-up, Bernoulli
// body, open-ended Poisson-batch tail — must run the steady-state round
// loop without touching the allocator.
func TestFastPathZeroAllocsStochasticScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is long")
	}
	sys, err := orchestra.New(6)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := scenario.NewPhased([]scenario.Segment{
		{Pattern: scenario.Quiet(), Rounds: 512},
		{Pattern: scenario.Bernoulli(6, 11, 1, 4), Rounds: 4096},
		{Pattern: scenario.PoissonBatch(6, 13, 1, 4), Rounds: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// ρ = 1/4 ≪ 1: orchestra is stable at ρ = 1, so queues stay bounded.
	adv := adversary.New(adversary.T(1, 4, 2), ph)
	perRound := steadyAllocsPerRound(t, sys, adv, 60000, 30000)
	if perRound != 0 {
		t.Errorf("phased stochastic steady state allocates %.4f allocs/round, want 0", perRound)
	}
}

// equivRun executes one configuration on the given options and returns
// the flat counters.
func equivRun(t *testing.T, build func() (*core.System, error), mkAdv func() core.Adversary,
	rounds int64, opt core.Options) metrics.Counters {
	t.Helper()
	sys, err := build()
	if err != nil {
		t.Fatal(err)
	}
	tr := metrics.NewTracker()
	opt.Tracker = tr
	sim := core.NewSim(sys, mkAdv(), opt)
	if err := sim.Run(rounds); err != nil {
		t.Fatal(err)
	}
	return tr.Counters
}

// TestFastCheckedEquivalence runs identical seeds through the fast path
// and the fully-checked path and requires bit-identical flat counters.
func TestFastCheckedEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		build  func() (*core.System, error)
		mkAdv  func() core.Adversary
		rounds int64
	}{
		{
			name:  "ksubsets-uniform",
			build: func() (*core.System, error) { return ksubsets.New(6, 3) },
			mkAdv: func() core.Adversary {
				return adversary.New(adversary.T(1, 6, 2), adversary.Uniform(6, 42))
			},
			rounds: 30000,
		},
		{
			name:  "aloha-uniform",
			build: func() (*core.System, error) { return randmac.New(8, 4) },
			mkAdv: func() core.Adversary {
				return adversary.New(adversary.T(1, 40, 2), adversary.Uniform(8, 7))
			},
			rounds: 30000,
		},
		{
			name:  "aloha-maxqueue-adaptive",
			build: func() (*core.System, error) { return randmac.New(6, 3) },
			mkAdv: func() core.Adversary {
				return adversary.NewMaxQueue(6, adversary.Type{
					Rho: ratio.New(1, 30), Beta: ratio.FromInt(2),
				})
			},
			rounds: 20000,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fast := equivRun(t, c.build, c.mkAdv, c.rounds, core.Options{})
			checked := equivRun(t, c.build, c.mkAdv, c.rounds, core.Options{ForceChecked: true})
			if fast != checked {
				t.Errorf("fast and checked counters differ:\nfast:    %+v\nchecked: %+v", fast, checked)
			}
		})
	}
}
