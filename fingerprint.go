package earmac

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"

	"earmac/internal/scenario"
)

// Fingerprint returns the content address of the experiment this config
// describes: "sha256:" plus the hex digest of the defaults-resolved
// config's canonical JSON encoding. Every simulation in this module is
// deterministic given its config (algorithms are deterministic and
// randomized patterns are seeded), so the fingerprint content-addresses
// the resulting Report — the property the serving layer's result cache
// is keyed on.
//
// Canonicalization rules:
//
//   - Defaults are resolved before hashing, so a zero field and its
//     explicit default fingerprint identically (Config{} and
//     Config{Algorithm: "orchestra", N: 8, ...} are the same experiment).
//   - Field ordering is stable: encoding/json emits struct fields in
//     declaration order, and the Config schema owns that order.
//   - Runtime-only observation fields — trace/record writers, the
//     progress callback and its cadence — do not contribute: they change
//     how a run is watched, not what it computes.
//   - A Replay trace DOES contribute: replay replaces the adversary's
//     injections, so the replayed stream determines the Report. The
//     trace's canonical re-encoding (scenario.Write) is folded into the
//     digest after the config JSON.
//
// The fingerprint is a syntactic identity, not a full semantic one:
// fields the selected pattern happens to ignore (Src on an untargeted
// pattern, K on a fixed-cap algorithm) still contribute when set.
func (c Config) Fingerprint() string {
	d := c.withDefaults()
	replay := d.Replay
	// The json:"-" tags already exclude the runtime fields from the
	// encoding; zero them anyway so a future tag change cannot silently
	// fork fingerprints.
	d.Trace, d.RecordTo, d.Replay, d.OnProgress = nil, nil, nil, nil
	d.TraceFrom, d.TraceUpTo, d.ProgressEvery = 0, 0, 0
	d.NetWorkers = 0 // parallelism never changes the result
	d.NoSkip = false // the fast-forward engine never changes the result
	raw, err := json.Marshal(d)
	if err != nil {
		// Unreachable: after the zeroing above Config contains only
		// marshalable field types.
		panic("earmac: encoding config for fingerprint: " + err.Error())
	}
	h := sha256.New()
	h.Write(raw)
	if replay != nil {
		// Write re-encodes a decoded trace deterministically (decode ∘
		// encode is the identity), so equal traces hash equally no matter
		// how their source files were formatted.
		io.WriteString(h, "\nreplay\n")
		if err := scenario.Write(h, replay); err != nil {
			panic("earmac: encoding replay trace for fingerprint: " + err.Error())
		}
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}
