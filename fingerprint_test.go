package earmac

import (
	"bytes"
	"strings"
	"testing"
)

func TestFingerprintDefaultsResolved(t *testing.T) {
	zero := Config{}.Fingerprint()
	explicit := Config{
		Algorithm: "orchestra",
		N:         8,
		K:         3,
		RhoNum:    1, RhoDen: 2,
		Beta:    1,
		Pattern: "uniform",
		Seed:    1,
		Rounds:  100000,
	}.Fingerprint()
	if zero != explicit {
		t.Errorf("zero config and explicit defaults fingerprint differently:\n%s\n%s", zero, explicit)
	}
	if !strings.HasPrefix(zero, "sha256:") || len(zero) != len("sha256:")+64 {
		t.Errorf("fingerprint shape: %q", zero)
	}
}

func TestFingerprintDistinguishesSemanticFields(t *testing.T) {
	base := Config{Algorithm: "count-hop", N: 5, Rounds: 1000}
	fp := base.Fingerprint()
	for name, alt := range map[string]Config{
		"algorithm": {Algorithm: "orchestra", N: 5, Rounds: 1000},
		"n":         {Algorithm: "count-hop", N: 6, Rounds: 1000},
		"rho":       {Algorithm: "count-hop", N: 5, Rounds: 1000, RhoNum: 1, RhoDen: 3},
		"beta":      {Algorithm: "count-hop", N: 5, Rounds: 1000, Beta: 2},
		"pattern":   {Algorithm: "count-hop", N: 5, Rounds: 1000, Pattern: "bernoulli"},
		"seed":      {Algorithm: "count-hop", N: 5, Rounds: 1000, Seed: 7},
		"rounds":    {Algorithm: "count-hop", N: 5, Rounds: 2000},
		"phases":    {Algorithm: "count-hop", N: 5, Rounds: 1000, Phases: []Phase{{Pattern: "quiet", Rounds: 0}}},
		"lenient":   {Algorithm: "count-hop", N: 5, Rounds: 1000, Lenient: true},
	} {
		if alt.Fingerprint() == fp {
			t.Errorf("changing %s did not change the fingerprint", name)
		}
	}
}

// TestFingerprintDistinguishesReplayTraces: a Replay trace replaces the
// adversary's injections and so determines the Report — two configs
// replaying different traces must not fingerprint-collide, while
// replaying the same trace twice must.
func TestFingerprintDistinguishesReplayTraces(t *testing.T) {
	record := func(seed int64) *Trace {
		var buf bytes.Buffer
		cfg := Config{Algorithm: "count-hop", N: 5, Pattern: "bernoulli", Seed: seed, Rounds: 2000, RecordTo: &buf}
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		tr, err := ReadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	trA, trB := record(1), record(2)
	base := Config{Algorithm: "count-hop", N: 5, Rounds: 2000}
	withA, withA2, withB := base, base, base
	withA.Replay, withA2.Replay, withB.Replay = trA, trA, trB
	if withA.Fingerprint() == base.Fingerprint() {
		t.Error("setting Replay did not change the fingerprint")
	}
	if withA.Fingerprint() == withB.Fingerprint() {
		t.Error("different replay traces fingerprint-collide")
	}
	if withA.Fingerprint() != withA2.Fingerprint() {
		t.Error("the same replay trace fingerprints differently across calls")
	}
}

func TestFingerprintIgnoresRuntimeFields(t *testing.T) {
	base := Config{Algorithm: "count-hop", N: 5, Rounds: 1000}
	fp := base.Fingerprint()
	withRuntime := base
	withRuntime.Trace = &bytes.Buffer{}
	withRuntime.TraceFrom, withRuntime.TraceUpTo = 10, 20
	withRuntime.RecordTo = &bytes.Buffer{}
	withRuntime.OnProgress = func(Progress) {}
	withRuntime.ProgressEvery = 500
	if got := withRuntime.Fingerprint(); got != fp {
		t.Errorf("runtime-only fields changed the fingerprint:\n%s\n%s", fp, got)
	}
}

// TestFingerprintTopologySpellings: the fingerprint canonicalization
// must treat equivalent topology spellings as one experiment (defaults
// omitted vs explicit) and distinct topologies as different ones — the
// property the serving cache keys on.
func TestFingerprintTopologySpellings(t *testing.T) {
	base := Config{Algorithm: "orchestra", N: 5, Rounds: 1000, Topology: "line"}
	explicit := base
	explicit.Channels = 2 // the documented default for a set Topology
	if base.Fingerprint() != explicit.Fingerprint() {
		t.Error("Topology with defaulted vs explicit Channels fingerprint differently")
	}
	single := Config{Algorithm: "orchestra", N: 5, Rounds: 1000}
	distinct := map[string]Config{
		"line vs single":  base,
		"star vs line":    {Algorithm: "orchestra", N: 5, Rounds: 1000, Topology: "star"},
		"3 vs 2 channels": {Algorithm: "orchestra", N: 5, Rounds: 1000, Topology: "line", Channels: 3},
		"custom links":    {Algorithm: "orchestra", N: 5, Rounds: 1000, Topology: "custom", Channels: 3, Links: [][2]int{{0, 1}, {1, 2}}},
	}
	seen := map[string]string{"single": single.Fingerprint()}
	for name, cfg := range distinct {
		fp := cfg.Fingerprint()
		for prev, prevFP := range seen {
			if fp == prevFP {
				t.Errorf("%s collides with %s", name, prev)
			}
		}
		seen[name] = fp
	}
	// And two custom graphs with different links differ.
	a := Config{Algorithm: "orchestra", N: 5, Rounds: 1000, Topology: "custom", Channels: 3, Links: [][2]int{{0, 1}, {1, 2}}}
	b := Config{Algorithm: "orchestra", N: 5, Rounds: 1000, Topology: "custom", Channels: 3, Links: [][2]int{{0, 1}, {0, 2}}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different custom links fingerprint-collide")
	}
}
