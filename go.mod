module earmac

go 1.23
