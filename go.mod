module earmac

go 1.24
