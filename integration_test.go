package earmac

// Cross-module integration tests: every registered algorithm is driven
// against multiple adversarial patterns under the strictest simulator
// settings — energy-cap validation, plain-packet validation, oblivious-
// schedule conformance, and exactly-once packet conservation — and must
// honor its declared properties end to end.

import (
	"fmt"
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/expt"
	"earmac/internal/metrics"
	"earmac/internal/ratio"
	"earmac/internal/sched"
)

// integrationConfig gives each algorithm a configuration at which it is
// provably stable, so strict invariants plus draining can be asserted.
type integrationConfig struct {
	n, k       int
	rho        ratio.Rat
	beta       int64
	stopAfter  int64
	drainUntil int64
}

func configFor(alg string) integrationConfig {
	switch alg {
	case "orchestra":
		return integrationConfig{n: 6, rho: ratio.One(), beta: 2, stopAfter: 30000, drainUntil: 90000}
	case "count-hop":
		return integrationConfig{n: 6, rho: ratio.New(1, 2), beta: 2, stopAfter: 30000, drainUntil: 60000}
	case "adjust-window":
		// n=4: initial window 32768; stop after 3 windows, drain 3 more.
		return integrationConfig{n: 4, rho: ratio.New(2, 5), beta: 2, stopAfter: 98304, drainUntil: 196608}
	case "k-cycle":
		return integrationConfig{n: 7, k: 3, rho: ratio.New(1, 4), beta: 2, stopAfter: 40000, drainUntil: 90000}
	case "k-clique":
		return integrationConfig{n: 8, k: 4, rho: ratio.New(1, 13), beta: 2, stopAfter: 50000, drainUntil: 120000}
	case "k-subsets":
		return integrationConfig{n: 6, k: 3, rho: ratio.New(1, 6), beta: 2, stopAfter: 60000, drainUntil: 150000}
	case "k-subsets-rrw":
		return integrationConfig{n: 6, k: 3, rho: ratio.New(1, 6), beta: 2, stopAfter: 60000, drainUntil: 150000}
	case "aloha":
		// The randomized baseline sustains only ~k(k−1)/(kn(n−1)) per
		// targeted flow; keep the rate low so every pattern drains.
		return integrationConfig{n: 8, k: 4, rho: ratio.New(1, 30), beta: 2, stopAfter: 40000, drainUntil: 200000}
	case "mbtf":
		return integrationConfig{n: 6, rho: ratio.One(), beta: 2, stopAfter: 20000, drainUntil: 40000}
	case "rrw", "ofrrw":
		return integrationConfig{n: 6, rho: ratio.New(3, 4), beta: 2, stopAfter: 20000, drainUntil: 40000}
	default:
		panic("no integration config for " + alg)
	}
}

func patternsFor(cfg integrationConfig, seed int64) map[string]adversary.Pattern {
	n := cfg.n
	return map[string]adversary.Pattern{
		"uniform":       adversary.Uniform(n, seed),
		"single-target": adversary.SingleTarget(0, n-1),
		"hot-source":    adversary.HotSource(n/2, n),
		"round-robin":   adversary.RoundRobin(n),
		"self-loops":    adversary.SingleTarget(1, 1),
	}
}

// TestEveryAlgorithmEveryPatternStrict is the workhorse: all algorithms ×
// all patterns, strict mode, conservation checking, full drain.
func TestEveryAlgorithmEveryPatternStrict(t *testing.T) {
	for _, alg := range Algorithms() {
		cfg := configFor(alg)
		for patName, pat := range patternsFor(cfg, 17) {
			t.Run(fmt.Sprintf("%s/%s", alg, patName), func(t *testing.T) {
				sys, err := expt.Build(alg, cfg.n, cfg.k)
				if err != nil {
					t.Fatal(err)
				}
				typ := adversary.Type{Rho: cfg.rho, Beta: ratio.FromInt(cfg.beta)}
				adv := adversary.New(typ, adversary.Stop(pat, cfg.stopAfter))
				tr := metrics.NewTracker()
				sim := core.NewSim(sys, adv, core.Options{Strict: true, CheckEvery: 5003, Tracker: tr})
				if err := sim.Run(cfg.drainUntil); err != nil {
					t.Fatal(err)
				}
				if len(tr.Violations) > 0 {
					t.Errorf("violations: %v", tr.Violations)
				}
				if tr.Injected == 0 {
					t.Fatal("adversary injected nothing")
				}
				if tr.Pending() != 0 {
					t.Errorf("pending = %d of %d after drain", tr.Pending(), tr.Injected)
				}
				if tr.MaxEnergy > int64(sys.Info.EnergyCap) {
					t.Errorf("energy %d exceeds declared cap %d", tr.MaxEnergy, sys.Info.EnergyCap)
				}
				if sys.Info.PlainPacket && tr.ControlBits > 0 {
					t.Errorf("plain-packet algorithm transmitted %d control bits", tr.ControlBits)
				}
				// Collisions are the signature of the randomized baseline
				// only; every paper algorithm is collision-free by design.
				if alg != "aloha" && tr.CollisionRounds > 0 {
					t.Errorf("%d collisions in a deterministic schedule", tr.CollisionRounds)
				}
			})
		}
	}
}

// TestObliviousSchedulesAreValid verifies every oblivious algorithm's
// published schedule against its declared cap, and that the non-oblivious
// algorithms do not publish one.
func TestObliviousSchedulesAreValid(t *testing.T) {
	for _, alg := range Algorithms() {
		cfg := configFor(alg)
		sys, err := expt.Build(alg, cfg.n, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		if sys.Info.Oblivious != (sys.Schedule != nil) {
			t.Errorf("%s: oblivious=%v but schedule presence=%v", alg, sys.Info.Oblivious, sys.Schedule != nil)
			continue
		}
		if sys.Schedule != nil {
			if err := sched.Validate(sys.Schedule, sys.Info.EnergyCap); err != nil {
				t.Errorf("%s: %v", alg, err)
			}
		}
	}
}

// TestEnergyAccountingMatchesSchedule cross-checks the mean energy of an
// oblivious run against the schedule's own station-round count.
func TestEnergyAccountingMatchesSchedule(t *testing.T) {
	sys, err := expt.Build("k-clique", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := sched.OnCounts(sys.Schedule)
	var perPeriod int64
	for _, c := range counts {
		perPeriod += c
	}
	period := sys.Schedule.Period()
	want := float64(perPeriod) / float64(period)

	adv := adversary.New(adversary.T(1, 20, 1), adversary.Uniform(8, 3))
	tr := metrics.NewTracker()
	sim := core.NewSim(sys, adv, core.Options{Strict: true, Tracker: tr})
	rounds := 100 * period
	if err := sim.Run(rounds); err != nil {
		t.Fatal(err)
	}
	if got := tr.MeanEnergy(); got != want {
		t.Errorf("mean energy %v != schedule's %v", got, want)
	}
}

// TestThroughputOrderingMatchesTable verifies the qualitative ordering of
// Table 1 at one shared configuration: at ρ just above k/n the oblivious
// algorithm collapses while Orchestra (non-oblivious, cap 3) holds; at
// ρ = 1 only Orchestra holds.
func TestThroughputOrderingMatchesTable(t *testing.T) {
	runAt := func(alg string, n, k int, rho ratio.Rat, pattern adversary.Pattern) bool {
		sys, err := expt.Build(alg, n, k)
		if err != nil {
			t.Fatal(err)
		}
		adv := adversary.New(adversary.Type{Rho: rho, Beta: ratio.FromInt(1)}, pattern)
		tr := metrics.NewTracker()
		tr.SampleEvery = 256
		sim := core.NewSim(sys, adv, core.Options{Strict: true, Tracker: tr})
		if err := sim.Run(120000); err != nil {
			t.Fatal(err)
		}
		return tr.LooksStable()
	}
	n := 7
	// ρ = 1: Orchestra stable, Count-Hop not.
	if !runAt("orchestra", n, 0, ratio.One(), adversary.Uniform(n, 3)) {
		t.Error("Orchestra should be stable at ρ=1")
	}
	if runAt("count-hop", n, 0, ratio.One(), adversary.Uniform(n, 3)) {
		t.Error("Count-Hop should be unstable at ρ=1")
	}
	// ρ = 1/2 < 1: Count-Hop stable; 3-cycle (ceiling 3/7) not, under a
	// targeted flood.
	if !runAt("count-hop", n, 0, ratio.New(1, 2), adversary.Uniform(n, 3)) {
		t.Error("Count-Hop should be stable at ρ=1/2")
	}
	if runAt("k-cycle", n, 3, ratio.New(1, 2), adversary.SingleTarget(3, 6)) {
		t.Error("3-cycle should be unstable at ρ=1/2 under a single-station flood")
	}
}

// TestLatencyHierarchy checks the relative latency order the bounds
// predict at a common low rate: direct oblivious k-clique beats indirect
// k-cycle's worst case bound n·(32+β) > 8n²/k(1+β/2k) only for large k;
// at k=n/2-ish the clique should win on mean latency for pair traffic.
func TestLatencyHierarchy(t *testing.T) {
	// Modest claim that must hold: at the same low rate and same cap,
	// always-on RRW (cap n) beats every capped algorithm on mean latency.
	n := 8
	meanLat := func(alg string, k int) float64 {
		sys, err := expt.Build(alg, n, k)
		if err != nil {
			t.Fatal(err)
		}
		adv := adversary.New(adversary.T(1, 16, 1), adversary.Uniform(n, 5))
		tr := metrics.NewTracker()
		sim := core.NewSim(sys, adv, core.Options{Strict: true, Tracker: tr})
		if err := sim.Run(100000); err != nil {
			t.Fatal(err)
		}
		if tr.Delivered == 0 {
			t.Fatalf("%s delivered nothing", alg)
		}
		return tr.MeanLatency()
	}
	rrw := meanLat("rrw", 0)
	for _, alg := range []string{"orchestra", "count-hop", "k-clique"} {
		if l := meanLat(alg, 4); l <= rrw {
			t.Errorf("%s mean latency %.1f unexpectedly beats always-on RRW %.1f", alg, l, rrw)
		}
	}
}
