package adversary

import (
	"earmac/internal/core"
	"earmac/internal/mac"
)

// MaxQueue is an adaptive adversary that always injects into the station
// currently holding the longest queue (destinations cycle over the other
// stations). Against algorithms whose service discipline favours loaded
// stations — Orchestra's move-big-to-front, MBTF — it is the natural
// stress test: it tries to keep the served station permanently loaded
// while starving the schedule of diversity. The model permits it: the
// adversary knows the algorithm and could derive the queues itself.
type MaxQueue struct {
	bucket *Bucket
	n      int
	target int
	cursor int
}

// NewMaxQueue builds the adversary for an n-station system.
func NewMaxQueue(n int, typ Type) *MaxQueue {
	return &MaxQueue{bucket: NewBucket(typ), n: n}
}

// Inject implements core.Adversary.
func (a *MaxQueue) Inject(round int64) []core.Injection {
	return a.InjectAppend(round, nil)
}

// InjectAppend implements core.InjectAppender.
func (a *MaxQueue) InjectAppend(round int64, buf []core.Injection) []core.Injection {
	budget := a.bucket.Tick()
	for i := 0; i < budget; i++ {
		d := (a.target + 1 + a.cursor%(a.n-1)) % a.n
		a.cursor++
		buf = append(buf, core.Injection{Station: a.target, Dest: d})
	}
	a.bucket.Spend(budget)
	return buf
}

// ObserveQueues implements core.QueueObserver: retarget to the longest
// queue (ties to the smallest name).
func (a *MaxQueue) ObserveQueues(round int64, queueLens []int) {
	best, bestLen := 0, -1
	for i, l := range queueLens {
		if l > bestLen {
			best, bestLen = i, l
		}
	}
	a.target = best
}

// AntiToken is an adaptive adversary specialized against round-robin
// token disciplines (the standalone RRW/OF-RRW substrates): it maintains
// an exact replica of the token ring from the channel feedback (the
// token advances on every silent round) and injects each packet into the
// station the token has just left — so every packet waits close to a
// full token cycle, realizing the worst case of the 2n/(1−ρ) bound of
// [3].
type AntiToken struct {
	bucket *Bucket
	n      int
	holder int
	target int
	cursor int
}

// NewAntiToken builds the adversary for an n-station RRW/OF-RRW system
// with token order 0, 1, …, n−1.
func NewAntiToken(n int, typ Type) *AntiToken {
	// Before the first silence the token sits at station 0; the station
	// it most recently "left" is its cyclic predecessor.
	return &AntiToken{bucket: NewBucket(typ), n: n, holder: 0, target: n - 1}
}

// Inject implements core.Adversary.
func (a *AntiToken) Inject(round int64) []core.Injection {
	return a.InjectAppend(round, nil)
}

// InjectAppend implements core.InjectAppender.
func (a *AntiToken) InjectAppend(round int64, buf []core.Injection) []core.Injection {
	budget := a.bucket.Tick()
	for i := 0; i < budget; i++ {
		d := (a.target + 1 + a.cursor%(a.n-1)) % a.n
		a.cursor++
		buf = append(buf, core.Injection{Station: a.target, Dest: d})
	}
	a.bucket.Spend(budget)
	return buf
}

// ObserveFeedback implements core.FeedbackObserver: replicate the ring.
func (a *AntiToken) ObserveFeedback(round int64, fb mac.Feedback) {
	if fb.Kind == mac.FbSilence {
		a.target = a.holder
		a.holder = (a.holder + 1) % a.n
	}
}
