package adversary

import (
	"testing"

	"earmac/internal/mac"
)

func TestMaxQueueFollowsLongestQueue(t *testing.T) {
	a := NewMaxQueue(4, T(1, 1, 1))
	a.ObserveQueues(0, []int{0, 5, 2, 1})
	injs := a.Inject(1)
	if len(injs) == 0 {
		t.Fatal("no injections")
	}
	for _, in := range injs {
		if in.Station != 1 {
			t.Errorf("MaxQueue injected into %d, want 1", in.Station)
		}
		if in.Dest == 1 {
			t.Error("MaxQueue addressed the target itself")
		}
	}
	// Retarget when another queue overtakes (ties → smallest name).
	a.ObserveQueues(1, []int{7, 7, 2, 9})
	injs = a.Inject(2)
	for _, in := range injs {
		if in.Station != 3 {
			t.Errorf("MaxQueue injected into %d, want 3", in.Station)
		}
	}
}

func TestMaxQueueRespectsRate(t *testing.T) {
	a := NewMaxQueue(3, T(1, 2, 1))
	total := 0
	for r := int64(0); r < 100; r++ {
		total += len(a.Inject(r))
		a.ObserveQueues(r, []int{1, 2, 3})
	}
	if total > 51 { // ρ·100 + β
		t.Errorf("injected %d > ρt+β", total)
	}
}

func TestAntiTokenTracksRing(t *testing.T) {
	a := NewAntiToken(4, T(1, 1, 1))
	// Initially the token sits at 0; target is its predecessor 3.
	injs := a.Inject(0)
	for _, in := range injs {
		if in.Station != 3 {
			t.Errorf("initial target %d, want 3", in.Station)
		}
	}
	// A heard round keeps the token; a silent round advances it, so the
	// just-left station becomes the target.
	a.ObserveFeedback(0, mac.Feedback{Kind: mac.FbHeard})
	a.ObserveFeedback(1, mac.Feedback{Kind: mac.FbSilence}) // token 0→1
	injs = a.Inject(2)
	for _, in := range injs {
		if in.Station != 0 {
			t.Errorf("target after one silence = %d, want 0", in.Station)
		}
	}
	a.ObserveFeedback(2, mac.Feedback{Kind: mac.FbSilence}) // token 1→2
	a.ObserveFeedback(3, mac.Feedback{Kind: mac.FbSilence}) // token 2→3
	injs = a.Inject(4)
	for _, in := range injs {
		if in.Station != 2 {
			t.Errorf("target = %d, want 2", in.Station)
		}
	}
}
