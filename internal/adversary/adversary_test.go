package adversary

import (
	"testing"
	"testing/quick"

	"earmac/internal/core"
	"earmac/internal/ratio"
	"earmac/internal/sched"
)

func TestBucketSingleRoundBurst(t *testing.T) {
	// (ρ=1, β=3): at most ⌊β+ρ⌋ = 4 in the first round.
	b := NewBucket(T(1, 1, 3))
	if got := b.Tick(); got != 4 {
		t.Errorf("first-round budget = %d, want 4", got)
	}
	b.Spend(4)
	// Credit is now 0; next round exactly 1.
	if got := b.Tick(); got != 1 {
		t.Errorf("second-round budget = %d, want 1", got)
	}
}

func TestBucketFractionalRate(t *testing.T) {
	// ρ = 1/3, β = 1: budgets cycle so that exactly 1 packet is allowed
	// every 3 rounds once the initial burst is used.
	b := NewBucket(T(1, 3, 1))
	total := 0
	for i := 0; i < 30; i++ {
		m := b.Tick()
		b.Spend(m)
		total += m
	}
	// ≤ ρ·30 + β = 11, and full-rate spending achieves it.
	if total != 11 {
		t.Errorf("spent %d over 30 rounds, want 11", total)
	}
}

func TestBucketCreditCapsAtBeta(t *testing.T) {
	b := NewBucket(T(1, 2, 2))
	for i := 0; i < 100; i++ {
		b.Tick()
		b.Spend(0) // never inject
	}
	if b.Credit().Cmp(ratio.FromInt(2)) != 0 {
		t.Errorf("credit = %v, want capped at 2", b.Credit())
	}
}

func TestBucketOverspendPanics(t *testing.T) {
	b := NewBucket(T(1, 1, 1))
	b.Tick()
	defer func() {
		if recover() == nil {
			t.Error("overspend did not panic")
		}
	}()
	b.Spend(100)
}

func TestBucketNegativeTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative rho did not panic")
		}
	}()
	NewBucket(Type{Rho: ratio.New(-1, 2), Beta: ratio.FromInt(1)})
}

// Property: for random (ρ, β) and greedy spending, every window of every
// length satisfies the leaky-bucket bound Σ ≤ ρ·t + β.
func TestBucketWindowProperty(t *testing.T) {
	f := func(rn, rd uint8, beta uint8, greedySeed uint8) bool {
		num := int64(rn%10) + 1
		den := int64(rd%10) + 1
		if num > den {
			num, den = den, num // keep ρ ≤ 1
		}
		typ := Type{Rho: ratio.New(num, den), Beta: ratio.FromInt(int64(beta % 5))}
		b := NewBucket(typ)
		const rounds = 200
		spent := make([]int64, rounds)
		for i := 0; i < rounds; i++ {
			m := b.Tick()
			// Pseudo-greedy: sometimes skip to let credit rebuild.
			if (int(greedySeed)+i)%7 == 0 {
				m = 0
			}
			b.Spend(m)
			spent[i] = int64(m)
		}
		// Check all windows.
		for lo := 0; lo < rounds; lo++ {
			var sum int64
			for hi := lo; hi < rounds; hi++ {
				sum += spent[hi]
				windowLen := int64(hi - lo + 1)
				bound := typ.Rho.MulInt(windowLen).Add(typ.Beta)
				if bound.Less(ratio.FromInt(sum)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAdvRespectsBudgetAndClamps(t *testing.T) {
	// Pattern tries to inject 100 packets per round; the bucket must clamp.
	greedy := PatternFunc(func(round int64, budget int) []core.Injection {
		injs := make([]core.Injection, 100)
		for i := range injs {
			injs[i] = core.Injection{Station: 0, Dest: 1}
		}
		return injs
	})
	a := New(T(1, 2, 1), greedy)
	var total int
	for r := int64(0); r < 100; r++ {
		total += len(a.Inject(r))
	}
	// ρ·100 + β = 51.
	if total != 51 {
		t.Errorf("injected %d over 100 rounds, want 51", total)
	}
}

func TestUniformDeterministicAndInRange(t *testing.T) {
	p1 := Uniform(7, 42)
	p2 := Uniform(7, 42)
	for r := int64(0); r < 50; r++ {
		a := p1.Draw(r, 3)
		b := p2.Draw(r, 3)
		if len(a) != 3 || len(b) != 3 {
			t.Fatal("wrong count")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("Uniform not deterministic for equal seeds")
			}
			if a[i].Station < 0 || a[i].Station >= 7 || a[i].Dest < 0 || a[i].Dest >= 7 {
				t.Fatal("out of range")
			}
		}
	}
}

func TestSingleTarget(t *testing.T) {
	p := SingleTarget(2, 5)
	injs := p.Draw(0, 4)
	if len(injs) != 4 {
		t.Fatal("wrong count")
	}
	for _, in := range injs {
		if in.Station != 2 || in.Dest != 5 {
			t.Errorf("injection %+v", in)
		}
	}
}

func TestHotSourceAvoidsSelf(t *testing.T) {
	p := HotSource(1, 4)
	for r := int64(0); r < 20; r++ {
		for _, in := range p.Draw(r, 3) {
			if in.Station != 1 {
				t.Error("wrong source")
			}
			if in.Dest == 1 {
				t.Error("HotSource addressed its own source")
			}
		}
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	p := RoundRobin(3)
	seen := map[int]int{}
	for r := int64(0); r < 9; r++ {
		for _, in := range p.Draw(r, 1) {
			seen[in.Station]++
			if in.Dest != (in.Station+1)%3 {
				t.Errorf("dest %d for src %d", in.Dest, in.Station)
			}
		}
	}
	for st, c := range seen {
		if c != 3 {
			t.Errorf("station %d used %d times, want 3", st, c)
		}
	}
}

func TestBurstyOnlyFiresOnPeriod(t *testing.T) {
	p := Bursty(SingleTarget(0, 1), 5)
	for r := int64(0); r < 20; r++ {
		injs := p.Draw(r, 2)
		if r%5 == 4 && len(injs) != 2 {
			t.Errorf("round %d: burst missing", r)
		}
		if r%5 != 4 && len(injs) != 0 {
			t.Errorf("round %d: unexpected injections", r)
		}
	}
}

func TestDiurnalDutyCycle(t *testing.T) {
	p := Diurnal(SingleTarget(0, 1), 100, 1, 4)
	for r := int64(0); r < 300; r++ {
		injs := p.Draw(r, 1)
		active := r%100 < 25
		if active && len(injs) != 1 {
			t.Errorf("round %d: expected injection during active phase", r)
		}
		if !active && len(injs) != 0 {
			t.Errorf("round %d: injection during quiet phase", r)
		}
	}
}

func TestPacedAndStop(t *testing.T) {
	p := Paced(SingleTarget(0, 1), 3)
	var total int
	for r := int64(0); r < 9; r++ {
		total += len(p.Draw(r, 1))
	}
	if total != 3 {
		t.Errorf("paced injected %d, want 3", total)
	}
	st := Stop(SingleTarget(0, 1), 5)
	for r := int64(0); r < 10; r++ {
		injs := st.Draw(r, 1)
		if r >= 5 && len(injs) != 0 {
			t.Errorf("round %d: injections after stop", r)
		}
		if r < 5 && len(injs) != 1 {
			t.Errorf("round %d: missing injection before stop", r)
		}
	}
}

func TestLeastOnTargetsMinOnStation(t *testing.T) {
	// Station 2 is never on.
	s := sched.Func{N: 4, P: 4, F: func(st int, round int64) bool {
		return st != 2 && int64(st) == round%3
	}}
	adv := LeastOn(s, T(1, 1, 1))
	injs := adv.Inject(0)
	if len(injs) == 0 {
		t.Fatal("no injections")
	}
	for _, in := range injs {
		if in.Station != 2 {
			t.Errorf("LeastOn injected into %d, want 2", in.Station)
		}
		if in.Dest == 2 {
			t.Errorf("LeastOn used the target as destination")
		}
	}
}

func TestLeastPairTargetsMinPair(t *testing.T) {
	// Stations 0,1 always on together; 2,3 never on.
	s := sched.Func{N: 4, P: 2, F: func(st int, round int64) bool { return st < 2 }}
	adv := LeastPair(s, T(1, 1, 1))
	injs := adv.Inject(0)
	if len(injs) == 0 {
		t.Fatal("no injections")
	}
	for _, in := range injs {
		pairOK := (in.Station >= 2 || in.Dest >= 2)
		if !pairOK {
			t.Errorf("LeastPair chose well-covered pair %+v", in)
		}
	}
}

func TestCriticalRates(t *testing.T) {
	if got := CriticalObliviousRate(3, 12); got.Cmp(ratio.New(1, 4)) != 0 {
		t.Errorf("CriticalObliviousRate(3,12) = %v", got)
	}
	if got := CriticalDirectRate(3, 6); got.Cmp(ratio.New(6, 30)) != 0 {
		t.Errorf("CriticalDirectRate(3,6) = %v", got)
	}
}

func TestLemma1SwitchesToCaseI(t *testing.T) {
	l := NewLemma1(4, 6)
	// Round 0: no injections (observation round).
	if injs := l.Inject(0); len(injs) != 0 {
		t.Fatalf("round 0 injections: %v", injs)
	}
	// Stations 0 and 1 are on in round 0; 2 and 3 off → target is 2 or 3.
	l.ObserveRound(0, []bool{true, true, false, false})
	var caseIISeen, caseISeen bool
	for r := int64(1); r < 40; r++ {
		injs := l.Inject(r)
		for _, in := range injs {
			if in.Dest == l.s {
				caseISeen = true
			} else {
				caseIISeen = true
			}
		}
		// Target stays off the whole time.
		l.ObserveRound(r, []bool{true, true, false, false})
	}
	if caseIISeen {
		t.Log("Case II was played while s counted as recently on")
	}
	if !caseISeen {
		t.Error("Lemma1 never switched to Case I although s stayed off")
	}
}

func TestLemma1RetargetsWhenAddressedTargetWakes(t *testing.T) {
	l := NewLemma1(5, 2)
	l.Inject(0)
	on := []bool{true, true, false, false, false}
	l.ObserveRound(0, on)
	oldS := -1
	for r := int64(1); r < 30; r++ {
		l.Inject(r)
		if l.addressed[l.s] && oldS == -1 {
			oldS = l.s
			// Wake the addressed target: adversary must move on.
			on[l.s] = true
			l.ObserveRound(r, on)
			on[oldS] = false
			continue
		}
		l.ObserveRound(r, on)
	}
	if oldS == -1 {
		t.Skip("target never addressed within horizon")
	}
	if l.s == oldS {
		t.Error("Lemma1 did not retarget after its target woke")
	}
}

func TestLemma1RateRespectsType(t *testing.T) {
	l := NewLemma1(3, 4)
	var total int
	on := []bool{true, true, false}
	for r := int64(0); r < 100; r++ {
		total += len(l.Inject(r))
		l.ObserveRound(r, on)
	}
	if total > 101 { // ρ·100 + β = 101
		t.Errorf("Lemma1 injected %d > ρt+β", total)
	}
	if total < 95 {
		t.Errorf("Lemma1 injected only %d, should be near rate 1", total)
	}
}

func TestLemma1PanicsOnTinySystem(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=2 did not panic")
		}
	}()
	NewLemma1(2, 1)
}

func TestBucketOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("coprime huge denominators did not panic on overflow")
		}
	}()
	NewBucket(Type{Rho: ratio.New(1, 4000000007), Beta: ratio.New(1, 4000000009)})
}
