// Package adversary implements the paper's leaky-bucket adversarial model
// of packet injection (§2) plus the constructive adversaries realizing the
// impossibility theorems. An adversary of type (ρ, β) may inject at most
// ρ·t + β packets in any contiguous window of t rounds; ρ is the injection
// rate and β the burstiness coefficient.
package adversary

import (
	"fmt"

	"earmac/internal/ratio"
)

// Type is the adversary's (ρ, β) pair.
type Type struct {
	Rho  ratio.Rat
	Beta ratio.Rat
}

// T builds a Type from integer fractions: rho = rn/rd, beta = b.
func T(rn, rd, b int64) Type {
	return Type{Rho: ratio.New(rn, rd), Beta: ratio.FromInt(b)}
}

func (t Type) String() string { return fmt.Sprintf("(ρ=%v, β=%v)", t.Rho, t.Beta) }

// Bucket enforces the leaky-bucket constraint with exact rational credit.
// The credit starts at β, gains ρ per round, and is capped back to β after
// each round's injections, which yields exactly the paper's bound: at most
// ρ·t + β injections in any window of t rounds, and at most ⌊β + ρ⌋ in a
// single round.
//
// Internally the credit is an integer numerator over the fixed common
// denominator of ρ and β, so the per-round Tick/Spend pair is a handful
// of integer operations — exact (no drift, unlike floats) yet free of
// the gcd reductions general rational arithmetic would pay on the
// simulator's hot path.
type Bucket struct {
	typ    Type
	den    int64 // common denominator of ρ and β
	credit int64 // credit numerator over den
	gain   int64 // ρ numerator over den
	cap    int64 // β numerator over den
}

// NewBucket returns a bucket with full initial credit β.
func NewBucket(typ Type) *Bucket {
	if typ.Rho.Sign() < 0 || typ.Beta.Sign() < 0 {
		panic("adversary: negative rate or burstiness")
	}
	den := lcm(typ.Rho.Den(), typ.Beta.Den())
	b := &Bucket{
		typ:  typ,
		den:  den,
		gain: mustMul(typ.Rho.Num(), den/typ.Rho.Den()),
		cap:  mustMul(typ.Beta.Num(), den/typ.Beta.Den()),
	}
	b.credit = b.cap
	return b
}

func lcm(a, b int64) int64 {
	g := a
	for r := b; r != 0; {
		g, r = r, g%r
	}
	return mustMul(a/g, b)
}

// mustMul multiplies with an overflow check, mirroring the protection
// the general rational arithmetic in internal/ratio provides: adversary
// types in this simulator stay far below the int64 range, so an
// overflow indicates a misconfiguration and must fail loudly rather
// than silently corrupt the injection budget.
func mustMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		panic(fmt.Sprintf("adversary: int64 overflow multiplying %d × %d in bucket setup", a, b))
	}
	return p
}

// Type returns the bucket's (ρ, β).
func (b *Bucket) Type() Type { return b.typ }

// Tick advances one round: the credit gains ρ and the number of packets
// injectable this round is returned.
//
//earmac:hotpath
func (b *Bucket) Tick() int {
	b.credit += b.gain
	return int(b.credit / b.den)
}

// Spend consumes credit for m injections this round and re-caps the
// remaining credit at β. It panics if m exceeds the budget returned by
// Tick — the adversary must never exceed its type.
//
//earmac:hotpath
func (b *Bucket) Spend(m int) {
	b.credit -= int64(m) * b.den
	if b.credit < 0 {
		panic(fmt.Sprintf("adversary: overspent bucket by %v", ratio.New(-b.credit, b.den)))
	}
	if b.credit > b.cap {
		b.credit = b.cap
	}
}

// Credit returns the current credit (for tests).
func (b *Bucket) Credit() ratio.Rat { return ratio.New(b.credit, b.den) }

// RoundsToCredit returns how many further zero-injection rounds must
// pass before a Tick yields a budget of at least one packet: 0 means
// the very next round, -1 that the bucket can never afford a packet
// again (ρ = 0 with spent credit, or ρ + β < 1). Exact over draw-free
// stretches — the quiescence engine's bucket horizon. The credit
// invariant credit <= cap holds between rounds (Spend re-caps), so the
// credit before the j-th future Tick is min(credit + j·ρ, β) and the
// threshold is min(credit + j·ρ, β) + ρ >= 1.
func (b *Bucket) RoundsToCredit() int64 {
	if b.credit+b.gain >= b.den {
		return 0
	}
	if b.gain == 0 || b.cap+b.gain < b.den {
		return -1
	}
	return (b.den - b.credit - 1) / b.gain // ceil((den - gain - credit) / gain)
}

// SkipRounds advances the bucket past m zero-injection rounds in one
// step: exactly m Tick/Spend(0) pairs, each adding ρ and re-capping
// the credit at β.
func (b *Bucket) SkipRounds(m int64) {
	if m <= 0 || b.gain == 0 {
		return
	}
	if m > (b.cap-b.credit)/b.gain {
		b.credit = b.cap
		return
	}
	b.credit += m * b.gain
}
