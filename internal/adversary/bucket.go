// Package adversary implements the paper's leaky-bucket adversarial model
// of packet injection (§2) plus the constructive adversaries realizing the
// impossibility theorems. An adversary of type (ρ, β) may inject at most
// ρ·t + β packets in any contiguous window of t rounds; ρ is the injection
// rate and β the burstiness coefficient.
package adversary

import (
	"fmt"

	"earmac/internal/ratio"
)

// Type is the adversary's (ρ, β) pair.
type Type struct {
	Rho  ratio.Rat
	Beta ratio.Rat
}

// T builds a Type from integer fractions: rho = rn/rd, beta = b.
func T(rn, rd, b int64) Type {
	return Type{Rho: ratio.New(rn, rd), Beta: ratio.FromInt(b)}
}

func (t Type) String() string { return fmt.Sprintf("(ρ=%v, β=%v)", t.Rho, t.Beta) }

// Bucket enforces the leaky-bucket constraint with exact rational credit.
// The credit starts at β, gains ρ per round, and is capped back to β after
// each round's injections, which yields exactly the paper's bound: at most
// ρ·t + β injections in any window of t rounds, and at most ⌊β + ρ⌋ in a
// single round.
type Bucket struct {
	typ    Type
	credit ratio.Rat
}

// NewBucket returns a bucket with full initial credit β.
func NewBucket(typ Type) *Bucket {
	if typ.Rho.Sign() < 0 || typ.Beta.Sign() < 0 {
		panic("adversary: negative rate or burstiness")
	}
	return &Bucket{typ: typ, credit: typ.Beta}
}

// Type returns the bucket's (ρ, β).
func (b *Bucket) Type() Type { return b.typ }

// Tick advances one round: the credit gains ρ and the number of packets
// injectable this round is returned.
func (b *Bucket) Tick() int {
	b.credit = b.credit.Add(b.typ.Rho)
	f := b.credit.Floor()
	if f < 0 {
		return 0
	}
	return int(f)
}

// Spend consumes credit for m injections this round and re-caps the
// remaining credit at β. It panics if m exceeds the budget returned by
// Tick — the adversary must never exceed its type.
func (b *Bucket) Spend(m int) {
	b.credit = b.credit.Sub(ratio.FromInt(int64(m)))
	if b.credit.Sign() < 0 {
		panic(fmt.Sprintf("adversary: overspent bucket by %v", b.credit.Neg()))
	}
	if b.typ.Beta.Less(b.credit) {
		b.credit = b.typ.Beta
	}
}

// Credit returns the current credit (for tests).
func (b *Bucket) Credit() ratio.Rat { return b.credit }
