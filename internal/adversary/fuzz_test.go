package adversary

import (
	"strings"
	"testing"

	"earmac/internal/ratio"
)

// FuzzBucket drives the integer leaky bucket with arbitrary admissible
// spend sequences and asserts the paper's contract: over EVERY
// contiguous window of t rounds the injections total at most ρ·t + β.
// It also exercises the overflow guards — absurd (ρ, β) values must
// fail loudly with the documented panic, never silently corrupt the
// budget.
func FuzzBucket(f *testing.F) {
	f.Add(int64(1), int64(2), int64(1), []byte{255, 0, 3, 9})
	f.Add(int64(3), int64(7), int64(4), []byte{1, 2, 3, 4, 5, 255, 255})
	f.Add(int64(1), int64(1), int64(8), []byte{0, 0, 0, 255})
	f.Add(int64(1)<<62, int64(3), int64(1)<<62, []byte{9})
	f.Fuzz(func(t *testing.T, rn, rd, bn int64, spends []byte) {
		// 1. Overflow guard: raw construction either succeeds or panics
		// with the documented "adversary:" prefix.
		func() {
			defer func() {
				if r := recover(); r != nil {
					s, ok := r.(string)
					if !ok || !strings.HasPrefix(s, "adversary:") {
						t.Fatalf("NewBucket(ρ=%d/%d, β=%d) paniced with %v, want an adversary: message", rn, rd, bn, r)
					}
				}
			}()
			if rn > 0 && rd > 0 && bn > 0 {
				NewBucket(Type{Rho: ratio.New(rn, rd), Beta: ratio.FromInt(bn)})
			}
		}()

		// 2. Window property on a clamped, overflow-free type.
		pos := func(v, m int64) int64 {
			v %= m
			if v < 0 {
				v += m
			}
			return v + 1
		}
		prn, prd, pb := pos(rn, 64), pos(rd, 64), pos(bn, 16)
		b := NewBucket(T(prn, prd, pb))
		n := len(spends)
		if n > 256 {
			n = 256
		}
		inj := make([]int64, n)
		for i := 0; i < n; i++ {
			budget := b.Tick()
			if budget < 0 {
				t.Fatalf("round %d: negative budget %d", i, budget)
			}
			m := 0
			if budget > 0 {
				m = int(spends[i]) % (budget + 1)
			}
			b.Spend(m) // panics on overspend — the fuzzer would catch it
			inj[i] = int64(m)
		}
		// Exhaustive window check: sum over [i, j] ≤ ρ·(j-i+1) + β,
		// i.e. sum·prd ≤ prn·t + pb·prd in exact integer arithmetic.
		for i := 0; i < n; i++ {
			var sum int64
			for j := i; j < n; j++ {
				sum += inj[j]
				win := int64(j - i + 1)
				if sum*prd > prn*win+pb*prd {
					t.Fatalf("window [%d,%d]: %d injections exceed ρ·t+β = %d/%d·%d + %d",
						i, j, sum, prn, prd, win, pb)
				}
			}
		}
	})
}
