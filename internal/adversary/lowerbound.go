package adversary

import (
	"earmac/internal/core"
	"earmac/internal/ratio"
	"earmac/internal/sched"
)

// LeastOn is the Theorem 6 adversary: against a k-energy-oblivious
// algorithm, some station v is switched on for at most (k/n)·t rounds in
// any window of t rounds (double counting over the published schedule).
// Injecting into v at a rate above k/n therefore grows v's queue without
// bound: v cannot even transmit the packets fast enough, regardless of
// destinations or relaying. Destinations cycle over the other stations.
func LeastOn(s sched.Schedule, typ Type) *Adv {
	v, _ := sched.MinOnStation(s)
	n := s.NumStations()
	c := 0
	return New(typ, AppendFunc(func(round int64, budget int, buf []core.Injection) []core.Injection {
		for i := 0; i < budget; i++ {
			d := (v + 1 + c%(n-1)) % n
			c++
			buf = append(buf, core.Injection{Station: v, Dest: d})
		}
		return buf
	}))
}

// CriticalObliviousRate returns k/n — the throughput ceiling for
// k-energy-oblivious algorithms (Theorem 6).
func CriticalObliviousRate(k, n int) ratio.Rat { return ratio.New(int64(k), int64(n)) }

// LeastPair is the Theorem 9 adversary for direct-routing k-oblivious
// algorithms: some ordered pair (w, z) is on together for at most
// k(k−1)/(n(n−1))·t rounds per window of t; direct delivery of a w→z
// packet needs exactly such a round, so flooding w with z-addressed
// packets above that rate is unanswerable.
func LeastPair(s sched.Schedule, typ Type) *Adv {
	w, z, _ := sched.MinOnPair(s)
	return New(typ, SingleTarget(w, z))
}

// CriticalDirectRate returns k(k−1)/(n(n−1)) — the throughput ceiling for
// direct-routing k-oblivious algorithms (Theorems 8 and 9).
func CriticalDirectRate(k, n int) ratio.Rat {
	return ratio.New(int64(k)*int64(k-1), int64(n)*int64(n-1))
}

// Lemma1 is an adaptive realization of the Theorem 2 construction: no
// algorithm with energy cap 2 on n ≥ 3 stations is stable at injection
// rate 1. The proof maintains a station s with no packets and none
// addressed to it; while s stays off, the adversary plays Case II (a
// packet s1→s2 every round, none of which can be delivered in a round
// where s is on, because with cap 2 at most one of {s1, s2} is then on);
// if s stays off for good, it switches to Case I (packets addressed to s,
// which then never deliver). The proof quantifies over executions; this
// adaptive adversary replays its strategy with a finite patience window
// and defeats cap-2 algorithms in practice.
type Lemma1 struct {
	n        int
	patience int64
	bucket   *Bucket

	round     int64
	s, s1, s2 int
	lastOn    []int64
	addressed []bool
	parity    bool
	started   bool
}

// NewLemma1 builds the adversary for an n-station system. Patience is the
// number of rounds s may stay off before the adversary switches to Case I;
// a few multiples of n works well.
func NewLemma1(n int, patience int64) *Lemma1 {
	if n < 3 {
		panic("adversary: Lemma1 needs n >= 3")
	}
	if patience < 1 {
		patience = int64(4 * n)
	}
	l := &Lemma1{
		n:         n,
		patience:  patience,
		bucket:    NewBucket(T(1, 1, 1)),
		s:         -1,
		lastOn:    make([]int64, n),
		addressed: make([]bool, n),
	}
	for i := range l.lastOn {
		l.lastOn[i] = -1
	}
	return l
}

// Inject implements core.Adversary.
func (l *Lemma1) Inject(round int64) []core.Injection {
	return l.InjectAppend(round, nil)
}

// InjectAppend implements core.InjectAppender.
func (l *Lemma1) InjectAppend(round int64, buf []core.Injection) []core.Injection {
	budget := l.bucket.Tick()
	defer func() { l.round = round }()
	if round == 0 || budget == 0 {
		// Observe the first round before committing to a target.
		l.bucket.Spend(0)
		return buf
	}
	if !l.started {
		l.pickTarget(round)
		l.started = true
	}
	// If s was switched on recently it is "awake": play Case II.
	// Otherwise s looks permanently off: play Case I.
	for i := 0; i < budget; i++ {
		if round-l.lastOn[l.s] <= l.patience && l.lastOn[l.s] >= 0 {
			buf = append(buf, core.Injection{Station: l.s1, Dest: l.s2})
			l.addressed[l.s2] = true
		} else {
			// Case I: alternate destinations s and s2.
			l.parity = !l.parity
			if l.parity {
				buf = append(buf, core.Injection{Station: l.s1, Dest: l.s})
				l.addressed[l.s] = true
			} else {
				buf = append(buf, core.Injection{Station: l.s1, Dest: l.s2})
				l.addressed[l.s2] = true
			}
		}
	}
	l.bucket.Spend(budget)
	return buf
}

// ObserveRound implements core.RoundObserver.
func (l *Lemma1) ObserveRound(round int64, on []bool) {
	for i, o := range on {
		if o {
			l.lastOn[i] = round
		}
	}
	// If our target has been addressed (Case I ran) and it just switched
	// on, its pending packets may drain; restart the construction with a
	// fresh target that has never been addressed, if one exists.
	if l.started && on[l.s] && l.addressed[l.s] {
		l.pickTarget(round)
	}
}

// pickTarget chooses s = an unaddressed station that has been off longest,
// and s1, s2 = the two smallest other stations.
func (l *Lemma1) pickTarget(round int64) {
	best, bestAge := -1, int64(-1)
	for i := 0; i < l.n; i++ {
		if l.addressed[i] {
			continue
		}
		age := round - l.lastOn[i]
		if l.lastOn[i] < 0 {
			age = round + 1
		}
		if age > bestAge {
			best, bestAge = i, age
		}
	}
	if best >= 0 {
		l.s = best
	} else if l.s < 0 {
		l.s = 0
	}
	l.s1, l.s2 = -1, -1
	for i := 0; i < l.n; i++ {
		if i == l.s {
			continue
		}
		if l.s1 < 0 {
			l.s1 = i
		} else if l.s2 < 0 {
			l.s2 = i
			break
		}
	}
}
