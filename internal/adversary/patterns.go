package adversary

import (
	"math/rand"

	"earmac/internal/core"
)

// Pattern decides where packets go. Draw is called once per round with
// the bucket's budget (maximum packets injectable this round) and returns
// at most that many injections. Patterns are deterministic: randomized
// ones take an explicit seed.
type Pattern interface {
	Draw(round int64, budget int) []core.Injection
}

// BufferedPattern is an optional Pattern extension implementing the
// simulator's buffer-reuse contract: DrawAppend appends at most budget
// injections to buf and returns the extended slice, so the steady-state
// round loop performs no allocation. Draw and DrawAppend must produce
// the same injections. All patterns in this package implement it.
type BufferedPattern interface {
	Pattern
	DrawAppend(round int64, budget int, buf []core.Injection) []core.Injection
}

// PatternFunc adapts a draw function to a Pattern.
type PatternFunc func(round int64, budget int) []core.Injection

// Draw implements Pattern.
func (f PatternFunc) Draw(round int64, budget int) []core.Injection { return f(round, budget) }

// AppendFunc adapts an append-style function to a BufferedPattern.
type AppendFunc func(round int64, budget int, buf []core.Injection) []core.Injection

// Draw implements Pattern.
func (f AppendFunc) Draw(round int64, budget int) []core.Injection { return f(round, budget, nil) }

// DrawAppend implements BufferedPattern.
//
//earmac:hotpath
func (f AppendFunc) DrawAppend(round int64, budget int, buf []core.Injection) []core.Injection {
	return f(round, budget, buf)
}

// DrawAppend invokes the pattern through the buffer-reuse contract when
// it supports one, falling back to an allocating Draw otherwise.
//
//earmac:hotpath
func DrawAppend(p Pattern, round int64, budget int, buf []core.Injection) []core.Injection {
	if bp, ok := p.(BufferedPattern); ok {
		return bp.DrawAppend(round, budget, buf)
	}
	return append(buf, p.Draw(round, budget)...)
}

// Adv is a leaky-bucket adversary combining a Type with a Pattern; it
// implements core.Adversary and core.InjectAppender.
type Adv struct {
	bucket *Bucket
	pat    Pattern
	buffed BufferedPattern // pat, when it supports the append contract
}

// New builds an adversary of the given type driven by the pattern.
func New(typ Type, pat Pattern) *Adv {
	a := &Adv{bucket: NewBucket(typ), pat: pat}
	a.buffed, _ = pat.(BufferedPattern)
	return a
}

// Inject implements core.Adversary: it offers the pattern this round's
// budget and debits the bucket for what the pattern used.
func (a *Adv) Inject(round int64) []core.Injection {
	return a.InjectAppend(round, nil)
}

// InjectAppend implements core.InjectAppender, appending this round's
// injections to buf without allocating when the pattern supports the
// buffer-reuse contract.
//
//earmac:hotpath
func (a *Adv) InjectAppend(round int64, buf []core.Injection) []core.Injection {
	budget := a.bucket.Tick()
	if budget == 0 {
		a.bucket.Spend(0)
		return buf
	}
	start := len(buf)
	if a.buffed != nil {
		buf = a.buffed.DrawAppend(round, budget, buf)
	} else {
		buf = append(buf, a.pat.Draw(round, budget)...)
	}
	if len(buf)-start > budget {
		buf = buf[:start+budget]
	}
	a.bucket.Spend(len(buf) - start)
	return buf
}

// Uniform injects at the full permitted rate with sources and destinations
// drawn uniformly (and independently) from [0, n).
func Uniform(n int, seed int64) Pattern {
	rng := rand.New(rand.NewSource(seed))
	return AppendFunc(func(round int64, budget int, buf []core.Injection) []core.Injection {
		for i := 0; i < budget; i++ {
			buf = append(buf, core.Injection{Station: rng.Intn(n), Dest: rng.Intn(n)})
		}
		return buf
	})
}

// SingleTarget floods one fixed source station with packets for one fixed
// destination — the paper's worst case for Orchestra's move-big-to-front
// mechanism and the flooding strategy of the lower-bound proofs.
func SingleTarget(src, dest int) Pattern {
	return AppendFunc(func(round int64, budget int, buf []core.Injection) []core.Injection {
		for i := 0; i < budget; i++ {
			buf = append(buf, core.Injection{Station: src, Dest: dest})
		}
		return buf
	})
}

// HotSource injects everything into one station with destinations cycling
// over all other stations.
func HotSource(src, n int) Pattern {
	next := 0
	return AppendFunc(func(round int64, budget int, buf []core.Injection) []core.Injection {
		for i := 0; i < budget; i++ {
			d := next % n
			if d == src {
				next++
				d = next % n
			}
			next++
			buf = append(buf, core.Injection{Station: src, Dest: d})
		}
		return buf
	})
}

// RoundRobin cycles the source over all stations and addresses each packet
// to the next station in cyclic order — maximally spread traffic.
func RoundRobin(n int) Pattern {
	c := 0
	return AppendFunc(func(round int64, budget int, buf []core.Injection) []core.Injection {
		for i := 0; i < budget; i++ {
			s := c % n
			buf = append(buf, core.Injection{Station: s, Dest: (s + 1) % n})
			c++
		}
		return buf
	})
}

// Bursty saves credit and dumps the whole budget every period rounds,
// exercising the burstiness component β of the adversary type.
func Bursty(inner Pattern, period int64) Pattern { return &burstyPat{inner, period} }

type burstyPat struct {
	inner  Pattern
	period int64
}

// Draw implements Pattern.
func (b *burstyPat) Draw(round int64, budget int) []core.Injection {
	return b.DrawAppend(round, budget, nil)
}

// DrawAppend implements BufferedPattern.
//
//earmac:hotpath
func (b *burstyPat) DrawAppend(round int64, budget int, buf []core.Injection) []core.Injection {
	if round%b.period != b.period-1 {
		return buf
	}
	return DrawAppend(b.inner, round, budget, buf)
}

// NextDrawRound implements PatternSkipper: the first burst boundary at
// or after the inner pattern's own horizon. Off-boundary rounds never
// reach the inner pattern, so they are draw-free by construction.
func (b *burstyPat) NextDrawRound(from int64) int64 {
	nr := NextDraw(b.inner, nextCongruent(from, b.period, b.period-1))
	if nr < 0 {
		return -1
	}
	return nextCongruent(nr, b.period, b.period-1)
}

// Paced scales the effective rate: it draws from the inner pattern only
// every stride rounds, letting the bucket otherwise sit at cap. Useful to
// drive a (ρ, β) adversary below its permitted rate.
func Paced(inner Pattern, stride int64) Pattern { return &pacedPat{inner, stride} }

type pacedPat struct {
	inner  Pattern
	stride int64
}

// Draw implements Pattern.
func (p *pacedPat) Draw(round int64, budget int) []core.Injection {
	return p.DrawAppend(round, budget, nil)
}

// DrawAppend implements BufferedPattern.
//
//earmac:hotpath
func (p *pacedPat) DrawAppend(round int64, budget int, buf []core.Injection) []core.Injection {
	if p.stride > 1 && round%p.stride != 0 {
		return buf
	}
	return DrawAppend(p.inner, round, budget, buf)
}

// NextDrawRound implements PatternSkipper.
func (p *pacedPat) NextDrawRound(from int64) int64 {
	if p.stride <= 1 {
		return NextDraw(p.inner, from)
	}
	nr := NextDraw(p.inner, nextCongruent(from, p.stride, 0))
	if nr < 0 {
		return -1
	}
	return nextCongruent(nr, p.stride, 0)
}

// Diurnal gates an inner pattern with a duty cycle: injections flow only
// during the first dutyNum/dutyDen fraction of each period — the
// under-utilized-LAN traffic shape of the paper's Ethernet motivation.
// The leaky bucket still enforces the overall (ρ, β) type; during the
// active phase the bucket's accumulated credit drains as a burst.
func Diurnal(inner Pattern, period, dutyNum, dutyDen int64) Pattern {
	return &diurnalPat{inner, period, dutyNum, dutyDen}
}

type diurnalPat struct {
	inner   Pattern
	period  int64
	dutyNum int64
	dutyDen int64
}

// Draw implements Pattern.
func (d *diurnalPat) Draw(round int64, budget int) []core.Injection {
	return d.DrawAppend(round, budget, nil)
}

// DrawAppend implements BufferedPattern.
//
//earmac:hotpath
func (d *diurnalPat) DrawAppend(round int64, budget int, buf []core.Injection) []core.Injection {
	if (round%d.period)*d.dutyDen >= d.period*d.dutyNum {
		return buf
	}
	return DrawAppend(d.inner, round, budget, buf)
}

// nextActive returns the first round >= from inside an active window.
// The active window is a prefix of each period, so an inactive round's
// successor window opens at the next period boundary.
func (d *diurnalPat) nextActive(from int64) int64 {
	if (from%d.period)*d.dutyDen < d.period*d.dutyNum {
		return from
	}
	return (from/d.period + 1) * d.period
}

// NextDrawRound implements PatternSkipper.
func (d *diurnalPat) NextDrawRound(from int64) int64 {
	if d.dutyNum <= 0 {
		return -1
	}
	nr := NextDraw(d.inner, d.nextActive(from))
	if nr < 0 {
		return -1
	}
	return d.nextActive(nr)
}

// Stop disables injections from the given round on, so the system can be
// drained to verify eventual delivery.
func Stop(inner Pattern, after int64) Pattern { return &stopPat{inner, after} }

type stopPat struct {
	inner Pattern
	after int64
}

// Draw implements Pattern.
func (s *stopPat) Draw(round int64, budget int) []core.Injection {
	return s.DrawAppend(round, budget, nil)
}

// DrawAppend implements BufferedPattern.
//
//earmac:hotpath
func (s *stopPat) DrawAppend(round int64, budget int, buf []core.Injection) []core.Injection {
	if round >= s.after {
		return buf
	}
	return DrawAppend(s.inner, round, budget, buf)
}

// NextDrawRound implements PatternSkipper. Once the stop round is
// reached the pattern never draws again — the horizon every drain
// phase of a benchmark run skips to its end on.
func (s *stopPat) NextDrawRound(from int64) int64 {
	if from >= s.after {
		return -1
	}
	nr := NextDraw(s.inner, from)
	if nr < 0 || nr >= s.after {
		return -1
	}
	return nr
}
