package adversary

import (
	"math/rand"

	"earmac/internal/core"
)

// Pattern decides where packets go. Draw is called once per round with
// the bucket's budget (maximum packets injectable this round) and returns
// at most that many injections. Patterns are deterministic: randomized
// ones take an explicit seed.
type Pattern interface {
	Draw(round int64, budget int) []core.Injection
}

// PatternFunc adapts a function to a Pattern.
type PatternFunc func(round int64, budget int) []core.Injection

// Draw implements Pattern.
func (f PatternFunc) Draw(round int64, budget int) []core.Injection { return f(round, budget) }

// Adv is a leaky-bucket adversary combining a Type with a Pattern; it
// implements core.Adversary.
type Adv struct {
	bucket *Bucket
	pat    Pattern
}

// New builds an adversary of the given type driven by the pattern.
func New(typ Type, pat Pattern) *Adv {
	return &Adv{bucket: NewBucket(typ), pat: pat}
}

// Inject implements core.Adversary: it offers the pattern this round's
// budget and debits the bucket for what the pattern used.
func (a *Adv) Inject(round int64) []core.Injection {
	budget := a.bucket.Tick()
	if budget == 0 {
		a.bucket.Spend(0)
		return nil
	}
	injs := a.pat.Draw(round, budget)
	if len(injs) > budget {
		injs = injs[:budget]
	}
	a.bucket.Spend(len(injs))
	return injs
}

// Uniform injects at the full permitted rate with sources and destinations
// drawn uniformly (and independently) from [0, n).
func Uniform(n int, seed int64) Pattern {
	rng := rand.New(rand.NewSource(seed))
	return PatternFunc(func(round int64, budget int) []core.Injection {
		injs := make([]core.Injection, budget)
		for i := range injs {
			injs[i] = core.Injection{Station: rng.Intn(n), Dest: rng.Intn(n)}
		}
		return injs
	})
}

// SingleTarget floods one fixed source station with packets for one fixed
// destination — the paper's worst case for Orchestra's move-big-to-front
// mechanism and the flooding strategy of the lower-bound proofs.
func SingleTarget(src, dest int) Pattern {
	return PatternFunc(func(round int64, budget int) []core.Injection {
		injs := make([]core.Injection, budget)
		for i := range injs {
			injs[i] = core.Injection{Station: src, Dest: dest}
		}
		return injs
	})
}

// HotSource injects everything into one station with destinations cycling
// over all other stations.
func HotSource(src, n int) Pattern {
	next := 0
	return PatternFunc(func(round int64, budget int) []core.Injection {
		injs := make([]core.Injection, budget)
		for i := range injs {
			d := next % n
			if d == src {
				next++
				d = next % n
			}
			next++
			injs[i] = core.Injection{Station: src, Dest: d}
		}
		return injs
	})
}

// RoundRobin cycles the source over all stations and addresses each packet
// to the next station in cyclic order — maximally spread traffic.
func RoundRobin(n int) Pattern {
	c := 0
	return PatternFunc(func(round int64, budget int) []core.Injection {
		injs := make([]core.Injection, budget)
		for i := range injs {
			s := c % n
			injs[i] = core.Injection{Station: s, Dest: (s + 1) % n}
			c++
		}
		return injs
	})
}

// Bursty saves credit and dumps the whole budget every period rounds,
// exercising the burstiness component β of the adversary type.
func Bursty(inner Pattern, period int64) Pattern {
	return PatternFunc(func(round int64, budget int) []core.Injection {
		if round%period != period-1 {
			return nil
		}
		return inner.Draw(round, budget)
	})
}

// Paced scales the effective rate: it draws from the inner pattern only
// every stride rounds, letting the bucket otherwise sit at cap. Useful to
// drive a (ρ, β) adversary below its permitted rate.
func Paced(inner Pattern, stride int64) Pattern {
	return PatternFunc(func(round int64, budget int) []core.Injection {
		if stride > 1 && round%stride != 0 {
			return nil
		}
		return inner.Draw(round, budget)
	})
}

// Diurnal gates an inner pattern with a duty cycle: injections flow only
// during the first dutyNum/dutyDen fraction of each period — the
// under-utilized-LAN traffic shape of the paper's Ethernet motivation.
// The leaky bucket still enforces the overall (ρ, β) type; during the
// active phase the bucket's accumulated credit drains as a burst.
func Diurnal(inner Pattern, period, dutyNum, dutyDen int64) Pattern {
	return PatternFunc(func(round int64, budget int) []core.Injection {
		if (round%period)*dutyDen >= period*dutyNum {
			return nil
		}
		return inner.Draw(round, budget)
	})
}

// Stop disables injections from the given round on, so the system can be
// drained to verify eventual delivery.
func Stop(inner Pattern, after int64) Pattern {
	return PatternFunc(func(round int64, budget int) []core.Injection {
		if round >= after {
			return nil
		}
		return inner.Draw(round, budget)
	})
}
