package adversary

import (
	"fmt"
	"sort"
	"sync"

	"earmac/internal/registry"
)

// PatternMeta declares what a registered injection pattern consumes, so
// callers can validate parameters without constructing the pattern.
type PatternMeta struct {
	// Summary is a one-line description.
	Summary string `json:"summary"`
	// Randomized patterns consume PatternParams.Seed.
	Randomized bool `json:"randomized,omitempty"`
	// Targeted patterns consume PatternParams.Src/Dest, which must be valid
	// station indices.
	Targeted bool `json:"targeted,omitempty"`
	// Stochastic patterns sample the injection volume per round (their
	// mean rate tracks PatternParams.Rho) instead of filling the whole
	// leaky-bucket budget every round.
	Stochastic bool `json:"stochastic,omitempty"`
}

// PatternParams parameterizes a pattern builder. N is the system size;
// Seed drives randomized patterns; Src and Dest parameterize the targeted
// ones and are ignored by the rest. RhoNum/RhoDen is the adversary's
// contracted injection rate ρ, handed to rate-aware stochastic patterns
// so their sampled mean matches the (ρ, β) contract they are clipped
// against; zero means unknown (stochastic builders fall back to ρ = 1/2).
type PatternParams struct {
	N    int
	Seed int64
	Src  int
	Dest int

	RhoNum int64
	RhoDen int64
}

// PatternBuilder constructs a pattern from its parameters.
type PatternBuilder func(p PatternParams) (Pattern, error)

// PatternEntry is one pattern-registry entry.
type PatternEntry struct {
	Name string `json:"name"`
	PatternMeta
	build PatternBuilder
}

var (
	patMu sync.RWMutex
	pats  = make(map[string]PatternEntry)
)

// RegisterPattern makes an injection pattern available under the given
// name. Intended for init functions; panics on a nil builder, an empty
// name, or a duplicate registration.
func RegisterPattern(name string, meta PatternMeta, build PatternBuilder) {
	if name == "" {
		panic("adversary: RegisterPattern with empty name")
	}
	if build == nil {
		panic("adversary: RegisterPattern with nil builder for " + name)
	}
	patMu.Lock()
	defer patMu.Unlock()
	if _, dup := pats[name]; dup {
		panic("adversary: duplicate pattern " + name)
	}
	pats[name] = PatternEntry{Name: name, PatternMeta: meta, build: build}
}

// BuildPattern constructs an injection pattern by name.
func BuildPattern(name string, p PatternParams) (Pattern, error) {
	e, ok := PatternInfo(name)
	if !ok {
		return nil, fmt.Errorf("adversary: %w %q (have %v)", registry.ErrUnknownPattern, name, Patterns())
	}
	return e.build(p)
}

// PatternInfo returns the registry entry for one pattern.
func PatternInfo(name string) (PatternEntry, bool) {
	patMu.RLock()
	defer patMu.RUnlock()
	e, ok := pats[name]
	return e, ok
}

// Patterns lists the registered pattern names, sorted.
func Patterns() []string {
	patMu.RLock()
	defer patMu.RUnlock()
	names := make([]string, 0, len(pats))
	for n := range pats {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AllPatterns returns every pattern entry, sorted by name.
func AllPatterns() []PatternEntry {
	patMu.RLock()
	defer patMu.RUnlock()
	out := make([]PatternEntry, 0, len(pats))
	for _, e := range pats {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func checkStation(name, field string, idx, n int) error {
	if idx < 0 || idx >= n {
		return fmt.Errorf("%s: %w: %s %d outside [0, %d)", name, registry.ErrBadStation, field, idx, n)
	}
	return nil
}

// The built-in patterns register themselves next to their constructors.
func init() {
	RegisterPattern("uniform", PatternMeta{
		Summary:    "full-rate injection with sources and destinations drawn uniformly",
		Randomized: true,
	}, func(p PatternParams) (Pattern, error) {
		return Uniform(p.N, p.Seed), nil
	})
	RegisterPattern("single-target", PatternMeta{
		Summary:  "one fixed source floods one fixed destination",
		Targeted: true,
	}, func(p PatternParams) (Pattern, error) {
		if err := checkStation("single-target", "src", p.Src, p.N); err != nil {
			return nil, err
		}
		if err := checkStation("single-target", "dest", p.Dest, p.N); err != nil {
			return nil, err
		}
		return SingleTarget(p.Src, p.Dest), nil
	})
	RegisterPattern("hot-source", PatternMeta{
		Summary:  "everything injected at one station, destinations cycling",
		Targeted: true,
	}, func(p PatternParams) (Pattern, error) {
		if err := checkStation("hot-source", "src", p.Src, p.N); err != nil {
			return nil, err
		}
		return HotSource(p.Src, p.N), nil
	})
	RegisterPattern("round-robin", PatternMeta{
		Summary: "source cycles over all stations, each packet to its successor",
	}, func(p PatternParams) (Pattern, error) {
		return RoundRobin(p.N), nil
	})
	RegisterPattern("bursty", PatternMeta{
		Summary:    "credit saved and dumped in a burst every 256 rounds",
		Randomized: true,
	}, func(p PatternParams) (Pattern, error) {
		return Bursty(Uniform(p.N, p.Seed), 256), nil
	})
	RegisterPattern("diurnal", PatternMeta{
		Summary:    "uniform traffic gated to a 1/4 duty cycle of period 1024",
		Randomized: true,
	}, func(p PatternParams) (Pattern, error) {
		return Diurnal(Uniform(p.N, p.Seed), 1024, 1, 4), nil
	})
}
