package adversary

// Quiescence support (DESIGN.md §16). An Adv implements
// core.EventSkipper by composing its bucket's credit horizon with its
// pattern's draw horizon; spans therefore cover only rounds on which
// the real loop would neither have offered the pattern a budget nor
// received a packet from it — in particular, no RNG of a stochastic
// pattern is ever skipped, because a pattern without skip support pins
// the horizon to the first round its DrawAppend would run.

// PatternSkipper is an optional Pattern extension: NextDrawRound
// returns a lower bound on the earliest round >= from at which the
// pattern may return a nonempty draw (-1: never again). Early answers
// are safe — the simulator wakes, draws nothing, and re-enters
// quiescence — late answers are not. Deterministic gating combinators
// (Bursty, Paced, Diurnal, Stop) implement it; stochastic leaf
// patterns deliberately do not.
type PatternSkipper interface {
	NextDrawRound(from int64) int64
}

// NextDraw resolves a pattern's draw horizon, defaulting to from — a
// pattern without skip support may draw on any round it is offered a
// budget.
func NextDraw(p Pattern, from int64) int64 {
	if ps, ok := p.(PatternSkipper); ok {
		return ps.NextDrawRound(from)
	}
	return from
}

// nextCongruent returns the smallest round >= from congruent to res
// modulo period.
func nextCongruent(from, period, res int64) int64 {
	return from + (res-from%period+period)%period
}

// NextEventRound implements core.EventSkipper: the earliest round >=
// from on which the bucket can afford a packet and the pattern may
// draw one. Both horizons are lower bounds, so their composition is.
func (a *Adv) NextEventRound(from int64) int64 {
	j := a.bucket.RoundsToCredit()
	if j < 0 {
		return -1
	}
	return NextDraw(a.pat, from+j)
}

// SkipIdle implements core.EventSkipper: the skipped rounds are proven
// draw-free, so only the bucket's credit advances.
func (a *Adv) SkipIdle(from, to int64) {
	a.bucket.SkipRounds(to - from)
}
