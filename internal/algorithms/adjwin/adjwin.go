// Package adjwin implements algorithm Adjust-Window (paper §4.2): a
// plain-packet, indirect-routing algorithm with energy cap 2 that is
// universal — latency O((n³log²n + β)/(1−ρ)) for every rate ρ < 1 —
// without ever transmitting a control bit.
//
// Time is split into windows of size L; if a window fails to deliver all
// of its old packets (those queued at the window's start), L doubles. A
// window has three stages:
//
//   - Gossip: n² phases of 2+3·lgL rounds, one per ordered pair (i, j),
//     during which a large station i (≥ 4n·lgL old packets) reports to j,
//     purely by the pattern of packet transmissions ("coded transfer":
//     packet = 1, silence = 0): that it is large, whether its queue
//     exceeds L, min(size, L), its count of packets destined to j, and
//     its count destined to stations before j. Packets spent this way
//     prefer destination j (delivered on the spot); others are adopted by
//     j, which relays them during the Auxiliary stage.
//   - Main: from the gossiped snapshot every station derives the same
//     global schedule — sender blocks in name order, ordered by
//     destination inside a block — and each station knows both its
//     transmit slots and its listen slices. If some station reported a
//     queue above L, the stage is instead dedicated to the smallest such
//     station (see DESIGN.md §4 for the schedule realization).
//   - Auxiliary: 8n·lgL phases of n² pair-rounds (i, j) in which i sends
//     one pending packet destined to j — small stations' old packets and
//     the relays adopted during Gossip — and j consumes it.
//
// lg x denotes ⌈log₂(x+1)⌉ throughout, as in the paper.
package adjwin

import (
	"fmt"
	"math/bits"
	"sort"

	"earmac/internal/core"
	"earmac/internal/mac"
	"earmac/internal/pktq"
)

// lg is the paper's ⌈log₂(x+1)⌉.
func lg(x int64) int {
	if x < 0 {
		panic("adjwin: lg of negative")
	}
	return bits.Len64(uint64(x))
}

// windowShape holds the stage lengths of a window of size L.
type windowShape struct {
	L        int64
	lgL      int
	phaseLen int64 // gossip phase length 2+3·lgL
	LG       int64 // gossip stage: n²·phaseLen
	LA       int64 // auxiliary stage: 8n³·lgL
	LM       int64 // main stage: L − LG − LA
	smallCut int   // stations with fewer old packets are small: 4n·lgL
	auxPh    int64 // auxiliary phases: 8n·lgL
}

func shape(n int, L int64) windowShape {
	l := lg(L)
	s := windowShape{
		L:        L,
		lgL:      l,
		phaseLen: int64(2 + 3*l),
		smallCut: 4 * n * l,
		auxPh:    int64(8 * n * l),
	}
	s.LG = int64(n*n) * s.phaseLen
	s.LA = s.auxPh * int64(n*n)
	s.LM = L - s.LG - s.LA
	return s
}

// InitialWindow returns the starting window size: the smallest power of
// two whose Main stage keeps at least half the window, L − LG − LA ≥ L/2.
func InitialWindow(n int) int64 {
	for L := int64(2); ; L *= 2 {
		if s := shape(n, L); s.LM >= L/2 {
			return L
		}
	}
}

type slice struct{ start, end int64 }

type station struct {
	id, n int

	sh       windowShape
	winStart int64
	nextL    int64

	q       *pktq.Queue  // own packets (old snapshot members + new)
	relayQ  *pktq.Queue  // packets adopted during this window's gossip
	staging []mac.Packet // injected this round, queued on next Act

	// Snapshot at window start (the "old" packets).
	oldSet       map[int64]bool
	oldRemaining int
	snapshot     []mac.Packet
	snapSize     int64
	snapCnt      []int64
	snapCntLess  []int64
	small        bool

	// Gossip knowledge about every station (as listener).
	large     []bool
	gtL       []bool
	sizes     []int64 // min(size, L); 0 for small stations
	cntToMe   []int64
	cntLessMe []int64

	// Main-stage plan, computed once per window after gossip.
	mainReady  bool
	dedicated  bool
	dedX       int
	schedLen   int64
	blockStart int64
	mainList   []mac.Packet
	slices     []slice
	slicePtr   int

	pendingTx    int64
	pendingRelay bool
	started      bool
}

// New builds an Adjust-Window system for n ≥ 2 stations with the paper's
// initial window size.
func New(n int) (*core.System, error) {
	if n < 2 {
		return nil, fmt.Errorf("adjwin: need n >= 2, got %d", n)
	}
	return NewWithWindow(n, InitialWindow(n))
}

// NewWithWindow builds the system with a custom initial window size —
// smaller than the paper's choice, the doubling mechanism must grow it;
// larger, the first windows waste capacity. Used by the doubling
// ablation. The window must leave the Main stage at least one round.
func NewWithWindow(n int, L int64) (*core.System, error) {
	if n < 2 {
		return nil, fmt.Errorf("adjwin: need n >= 2, got %d", n)
	}
	if shape(n, L).LM <= 0 {
		return nil, fmt.Errorf("adjwin: window %d leaves no Main stage for n=%d", L, n)
	}
	stations := make([]core.Protocol, n)
	for i := 0; i < n; i++ {
		s := &station{
			id: i, n: n,
			q:         pktq.New(n),
			relayQ:    pktq.New(n),
			pendingTx: -1,
			nextL:     L,
			winStart:  0,
		}
		stations[i] = s
	}
	return &core.System{
		Info: core.AlgorithmInfo{
			Name:        "adjust-window",
			EnergyCap:   2,
			PlainPacket: true,
		},
		Stations: stations,
	}, nil
}

func (s *station) Inject(p mac.Packet) { s.staging = append(s.staging, p) }

func (s *station) beginWindow(round int64) {
	if s.started {
		// End-of-window invariants: all adopted relays were forwarded, and
		// when the window was not doubled, every old packet was delivered.
		if s.relayQ.Len() != 0 {
			panic(fmt.Sprintf("adjwin: station %d ends a window with %d undelivered relays", s.id, s.relayQ.Len()))
		}
		if s.nextL == s.sh.L && s.oldRemaining != 0 {
			panic(fmt.Sprintf("adjwin: station %d ends an undoubled window with %d old packets", s.id, s.oldRemaining))
		}
		s.winStart += s.sh.L
	}
	s.started = true
	s.sh = shape(s.n, s.nextL)
	if s.sh.LM <= 0 {
		panic("adjwin: window too small for its stages")
	}

	// Snapshot: everything queued now is old for this window.
	s.snapshot = s.q.Snapshot()
	s.snapSize = int64(len(s.snapshot))
	s.oldSet = make(map[int64]bool, len(s.snapshot))
	s.snapCnt = make([]int64, s.n)
	s.snapCntLess = make([]int64, s.n)
	for _, p := range s.snapshot {
		s.oldSet[p.ID] = true
		s.snapCnt[p.Dest]++
	}
	var acc int64
	for d := 0; d < s.n; d++ {
		s.snapCntLess[d] = acc
		acc += s.snapCnt[d]
	}
	s.oldRemaining = len(s.snapshot)
	s.small = s.snapSize < int64(s.sh.smallCut)

	// Reset per-window gossip knowledge; record my own stats directly.
	s.large = make([]bool, s.n)
	s.gtL = make([]bool, s.n)
	s.sizes = make([]int64, s.n)
	s.cntToMe = make([]int64, s.n)
	s.cntLessMe = make([]int64, s.n)
	if !s.small {
		s.large[s.id] = true
		s.gtL[s.id] = s.snapSize > s.sh.L
		s.sizes[s.id] = min64(s.snapSize, s.sh.L)
		s.cntToMe[s.id] = min64(s.snapCnt[s.id], s.sh.L)
		s.cntLessMe[s.id] = min64(s.snapCntLess[s.id], s.sh.L)
	}
	s.mainReady = false
	s.slicePtr = 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (s *station) drainStaging() {
	for _, p := range s.staging {
		s.q.Push(p)
	}
	s.staging = s.staging[:0]
}

func (s *station) Act(round int64) core.Action {
	if !s.started || round == s.winStart+s.sh.L {
		s.beginWindow(round)
	}
	s.drainStaging()
	s.pendingTx = -1
	s.pendingRelay = false

	off := round - s.winStart
	switch {
	case off < s.sh.LG:
		return s.actGossip(off)
	case off < s.sh.LG+s.sh.LM:
		return s.actMain(off - s.sh.LG)
	default:
		return s.actAux(off - s.sh.LG - s.sh.LM)
	}
}

// popOld readies the oldest snapshot packet for transmission, preferring
// destination j (which delivers it immediately). Large stations always
// have one: the gossip spend is bounded by (n−1)(2+3·lgL) < 4n·lgL.
func (s *station) popOld(j int) mac.Packet {
	if p, ok := s.q.FrontTo(j); ok && s.oldSet[p.ID] {
		return p
	}
	p, ok := s.q.Front()
	if !ok || !s.oldSet[p.ID] {
		panic(fmt.Sprintf("adjwin: station %d ran out of old packets during coded transfer", s.id))
	}
	return p
}

func (s *station) actGossip(off int64) core.Action {
	pIdx := off / s.sh.phaseLen
	r := off % s.sh.phaseLen
	i, j := int(pIdx)/s.n, int(pIdx)%s.n
	if i == j {
		return core.Off()
	}
	if s.id == j {
		return core.Listen()
	}
	if s.id != i || s.small {
		return core.Off()
	}
	// Large station i reporting to j.
	var send bool
	switch {
	case r == 0:
		send = true // "I am large"
	case r == 1:
		send = s.snapSize > s.sh.L
	default:
		field := (r - 2) / int64(s.sh.lgL)
		bit := int((r - 2) % int64(s.sh.lgL))
		var v int64
		switch field {
		case 0:
			v = min64(s.snapSize, s.sh.L)
		case 1:
			v = min64(s.snapCnt[j], s.sh.L)
		default:
			v = min64(s.snapCntLess[j], s.sh.L)
		}
		send = v>>(uint(s.sh.lgL-1-bit))&1 == 1
	}
	if !send {
		return core.Off()
	}
	p := s.popOld(j)
	s.pendingTx = p.ID
	return core.Transmit(mac.PacketMsg(p))
}

// prepareMain derives the window's Main-stage plan from the gossip data;
// every station computes the identical plan.
func (s *station) prepareMain() {
	s.mainReady = true
	s.dedicated = false
	for i := 0; i < s.n; i++ {
		if s.gtL[i] {
			s.dedicated = true
			s.dedX = i
			break
		}
	}
	var m int64
	starts := make([]int64, s.n)
	for i := 0; i < s.n; i++ {
		starts[i] = m
		m += s.sizes[i]
	}
	if s.dedicated {
		s.nextL = 2 * s.sh.L
		s.schedLen = s.sh.LM
	} else {
		s.nextL = s.sh.L
		if m > s.sh.LM {
			s.nextL = 2 * s.sh.L
		}
		s.schedLen = min64(s.sh.LM, m)
	}

	// Sender plan: the full snapshot sorted by (dest, arrival); gossip-
	// spent packets leave holes (silent slots).
	s.mainList = nil
	s.blockStart = -1
	sender := (!s.dedicated && s.large[s.id]) || (s.dedicated && s.id == s.dedX)
	if sender {
		s.mainList = make([]mac.Packet, len(s.snapshot))
		copy(s.mainList, s.snapshot)
		sort.SliceStable(s.mainList, func(a, b int) bool { return s.mainList[a].Dest < s.mainList[b].Dest })
		if s.dedicated {
			s.blockStart = 0
		} else {
			s.blockStart = starts[s.id]
		}
	}

	// Listener plan: my slices of the schedule, in increasing start order.
	s.slices = s.slices[:0]
	s.slicePtr = 0
	add := func(start, cnt int64) {
		if cnt <= 0 {
			return
		}
		end := min64(start+cnt, s.schedLen)
		if start < end {
			s.slices = append(s.slices, slice{start, end})
		}
	}
	if s.dedicated {
		add(s.cntLessMe[s.dedX], s.cntToMe[s.dedX])
	} else {
		for i := 0; i < s.n; i++ {
			if s.large[i] {
				add(starts[i]+s.cntLessMe[i], s.cntToMe[i])
			}
		}
	}
}

func (s *station) actMain(o int64) core.Action {
	if !s.mainReady {
		s.prepareMain()
	}
	// Sender role.
	if s.blockStart >= 0 {
		slot := o - s.blockStart
		if slot >= 0 && slot < int64(len(s.mainList)) && o < s.schedLen {
			p := s.mainList[slot]
			if s.q.Has(p.ID) {
				s.pendingTx = p.ID
				return core.Transmit(mac.PacketMsg(p))
			}
			return core.Off() // hole: spent during gossip
		}
	}
	// Receiver role.
	for s.slicePtr < len(s.slices) && s.slices[s.slicePtr].end <= o {
		s.slicePtr++
	}
	if s.slicePtr < len(s.slices) && s.slices[s.slicePtr].start <= o {
		return core.Listen()
	}
	return core.Off()
}

func (s *station) actAux(o int64) core.Action {
	pr := o % int64(s.n*s.n)
	i, j := int(pr)/s.n, int(pr)%s.n
	if s.id == i {
		// Send one pending packet destined to j: an old packet if I am
		// small, or an adopted relay.
		if s.small {
			if p, ok := s.q.FrontTo(j); ok && s.oldSet[p.ID] {
				s.pendingTx = p.ID
				return core.Transmit(mac.PacketMsg(p))
			}
		}
		if p, ok := s.relayQ.FrontTo(j); ok {
			s.pendingTx = p.ID
			s.pendingRelay = true
			return core.Transmit(mac.PacketMsg(p))
		}
		if s.id == j {
			return core.Listen() // on as receiver even with nothing to send
		}
		return core.Off()
	}
	if s.id == j {
		return core.Listen()
	}
	return core.Off()
}

func (s *station) Observe(round int64, fb mac.Feedback) {
	off := round - s.winStart
	switch {
	case off < s.sh.LG:
		s.observeGossip(off, fb)
	case off < s.sh.LG+s.sh.LM:
		s.observeDelivery(fb)
	default:
		s.observeDelivery(fb)
	}
}

// observeGossip handles both the transmitter's bookkeeping and the
// listener's bit accumulation and relay adoption.
func (s *station) observeGossip(off int64, fb mac.Feedback) {
	pIdx := off / s.sh.phaseLen
	r := off % s.sh.phaseLen
	i, j := int(pIdx)/s.n, int(pIdx)%s.n

	if s.pendingTx >= 0 && fb.Kind == mac.FbHeard {
		s.q.Remove(s.pendingTx)
		delete(s.oldSet, s.pendingTx)
		s.oldRemaining--
		s.pendingTx = -1
		return
	}
	if s.id != j || i == j {
		return
	}
	heard := fb.Kind == mac.FbHeard
	switch {
	case r == 0:
		s.large[i] = heard
	case r == 1:
		s.gtL[i] = heard
	default:
		field := (r - 2) / int64(s.sh.lgL)
		var b int64
		if heard {
			b = 1
		}
		switch field {
		case 0:
			s.sizes[i] = s.sizes[i]<<1 | b
		case 1:
			s.cntToMe[i] = s.cntToMe[i]<<1 | b
		default:
			s.cntLessMe[i] = s.cntLessMe[i]<<1 | b
		}
	}
	if heard {
		p := fb.Msg.Packet
		// Adopt unless the packet was just delivered: to me (the
		// listener), or to the transmitter i itself, which is switched on
		// and hears its own message.
		if p.Dest != s.id && p.Dest != i {
			s.relayQ.Push(p) // adopt: I relay it in the Auxiliary stage
		}
	}
}

// observeDelivery handles Main and Auxiliary rounds: the only bookkeeping
// is the transmitter removing a delivered packet.
func (s *station) observeDelivery(fb mac.Feedback) {
	if s.pendingTx < 0 || fb.Kind != mac.FbHeard {
		return
	}
	if s.pendingRelay {
		s.relayQ.Remove(s.pendingTx)
	} else {
		s.q.Remove(s.pendingTx)
		delete(s.oldSet, s.pendingTx)
		s.oldRemaining--
	}
	s.pendingTx = -1
	s.pendingRelay = false
}

func (s *station) QueueLen() int {
	return len(s.staging) + s.q.Len() + s.relayQ.Len()
}

// CurrentWindow reports the window size a station of an Adjust-Window
// system has converged to (for experiments reporting the latency bound
// 2·L_final).
func CurrentWindow(p core.Protocol) int64 {
	if st, ok := p.(*station); ok {
		return st.sh.L
	}
	return 0
}

func (s *station) HeldPackets() []mac.Packet {
	out := make([]mac.Packet, 0, s.QueueLen())
	out = append(out, s.staging...)
	out = append(out, s.q.Snapshot()...)
	out = append(out, s.relayQ.Snapshot()...)
	return out
}
