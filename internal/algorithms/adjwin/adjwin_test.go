package adjwin

import (
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/metrics"
)

func TestLg(t *testing.T) {
	cases := []struct {
		x    int64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := lg(c.x); got != c.want {
			t.Errorf("lg(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestInitialWindowLeavesHalfForMain(t *testing.T) {
	for n := 2; n <= 10; n++ {
		L := InitialWindow(n)
		s := shape(n, L)
		if s.LM < L/2 {
			t.Errorf("n=%d: L=%d has Main %d < L/2", n, L, s.LM)
		}
		// Minimality: half the window must not suffice.
		if small := shape(n, L/2); small.LM >= L/4 && L > 2 {
			t.Errorf("n=%d: L/2=%d would already satisfy the constraint", n, L/2)
		}
	}
}

func TestShapePartsSumToL(t *testing.T) {
	for n := 2; n <= 8; n++ {
		L := InitialWindow(n)
		s := shape(n, L)
		if s.LG+s.LM+s.LA != L {
			t.Errorf("n=%d: stages %d+%d+%d != L=%d", n, s.LG, s.LM, s.LA, L)
		}
	}
}

func TestNewWithWindowValidation(t *testing.T) {
	if _, err := NewWithWindow(4, 64); err == nil {
		t.Error("window with no Main stage accepted")
	}
	if _, err := New(1); err == nil {
		t.Error("n=1 accepted")
	}
}

func run(t *testing.T, sys *core.System, adv core.Adversary, rounds int64) *metrics.Tracker {
	t.Helper()
	tr := metrics.NewTracker()
	tr.SampleEvery = 4096
	sim := core.NewSim(sys, adv, core.Options{Strict: true, CheckEvery: 10007, Tracker: tr})
	if err := sim.Run(rounds); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestStableAtHalfRate(t *testing.T) {
	n := 4
	sys, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	L := InitialWindow(n) // 6 windows if it never doubles
	tr := run(t, sys, adversary.New(adversary.T(1, 2, 2), adversary.Uniform(n, 42)), 6*L)
	if !tr.LooksStable() {
		t.Errorf("unstable at ρ=1/2:\n%s", tr.Summary())
	}
	if tr.MaxEnergy > 2 {
		t.Errorf("energy %d exceeds cap 2", tr.MaxEnergy)
	}
	if tr.ControlBits != 0 {
		t.Errorf("plain-packet algorithm sent %d control bits", tr.ControlBits)
	}
	if len(tr.Violations) > 0 {
		t.Errorf("violations: %v", tr.Violations)
	}
	// Latency is at most two windows.
	finalL := CurrentWindow(sys.Stations[0])
	if tr.MaxLatency > 2*finalL {
		t.Errorf("max latency %d exceeds 2·L = %d", tr.MaxLatency, 2*finalL)
	}
}

func TestDrainsCompletely(t *testing.T) {
	n := 4
	sys, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	L := InitialWindow(n)
	adv := adversary.New(adversary.T(2, 5, 2),
		adversary.Stop(adversary.Uniform(n, 11), 3*L))
	tr := run(t, sys, adv, 6*L)
	if tr.Pending() != 0 {
		t.Errorf("pending = %d after drain:\n%s", tr.Pending(), tr.Summary())
	}
}

func TestSingleTargetFlow(t *testing.T) {
	n := 4
	sys, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	L := InitialWindow(n)
	adv := adversary.New(adversary.T(2, 5, 1),
		adversary.Stop(adversary.SingleTarget(0, 3), 2*L))
	tr := run(t, sys, adv, 5*L)
	if tr.Pending() != 0 {
		t.Errorf("single-target pending = %d:\n%s", tr.Pending(), tr.Summary())
	}
}

func TestSelfAddressed(t *testing.T) {
	n := 4
	sys, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	L := InitialWindow(n)
	adv := adversary.New(adversary.T(1, 5, 1),
		adversary.Stop(adversary.SingleTarget(2, 2), 2*L))
	tr := run(t, sys, adv, 5*L)
	if tr.Pending() != 0 {
		t.Errorf("self-addressed pending = %d", tr.Pending())
	}
}

func TestMinimalSystemN2(t *testing.T) {
	sys, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	L := InitialWindow(2)
	adv := adversary.New(adversary.T(1, 3, 1),
		adversary.Stop(adversary.Uniform(2, 5), 3*L))
	tr := run(t, sys, adv, 7*L)
	if tr.Pending() != 0 {
		t.Errorf("n=2 pending = %d:\n%s", tr.Pending(), tr.Summary())
	}
}

func TestWindowDoublesUnderPressure(t *testing.T) {
	// Start with a deliberately tiny window; the doubling mechanism must
	// grow it until all old packets fit, while remaining correct.
	n := 3
	small := int64(4096)
	if shape(n, small).LM <= 0 {
		t.Skip("chosen window infeasible for this n")
	}
	sys, err := NewWithWindow(n, small)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.New(adversary.T(1, 2, 2),
		adversary.Stop(adversary.Uniform(n, 9), 120000))
	tr := run(t, sys, adv, 400000)
	grown := CurrentWindow(sys.Stations[0])
	if grown <= small {
		t.Errorf("window never doubled: still %d", grown)
	}
	if tr.Pending() != 0 {
		t.Errorf("pending = %d after drain:\n%s", tr.Pending(), tr.Summary())
	}
}

func TestAllStationsAgreeOnWindow(t *testing.T) {
	n := 4
	sys, err := NewWithWindow(n, 8192)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.New(adversary.T(1, 2, 1), adversary.Uniform(n, 17))
	sim := core.NewSim(sys, adv, core.Options{Strict: true})
	for r := 0; r < 100000; r++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ref := CurrentWindow(sys.Stations[0])
	for i := 1; i < n; i++ {
		if got := CurrentWindow(sys.Stations[i]); got != ref {
			t.Fatalf("station %d window %d != station 0 window %d", i, got, ref)
		}
	}
}

func TestUnstableAtRateOne(t *testing.T) {
	// Theorem 2 (energy cap 2): at ρ = 1 windows double forever and the
	// backlog grows without bound.
	n := 2
	sys, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	tr := run(t, sys, adversary.New(adversary.T(1, 1, 1), adversary.Uniform(n, 3)), 300000)
	if tr.LooksStable() {
		t.Errorf("unexpectedly stable at ρ=1:\n%s", tr.Summary())
	}
}

func TestBurstAbsorbed(t *testing.T) {
	n := 4
	sys, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	L := InitialWindow(n)
	adv := adversary.New(adversary.T(1, 4, 50),
		adversary.Stop(adversary.Bursty(adversary.Uniform(n, 13), 997), 2*L))
	tr := run(t, sys, adv, 5*L)
	if tr.Pending() != 0 {
		t.Errorf("burst not drained: pending=%d", tr.Pending())
	}
}
