package adjwin

import (
	"earmac/internal/core"
	"earmac/internal/registry"
)

func init() {
	registry.RegisterAlgorithm("adjust-window", registry.AlgorithmMeta{
		Summary:     "doubling-window plain-packet routing, universal for ρ < 1 under cap 2",
		Theorem:     "Thm 4",
		EnergyCap:   2,
		PlainPacket: true,
		MinN:        2,
	}, func(n, _ int) (*core.System, error) { return New(n) })
}
