// Package counthop implements algorithm Count-Hop (paper §4.1): a
// direct-routing, general (control-bit) algorithm with energy cap 2 that
// is universal — latency O((n²+β)/(1−ρ)) for every injection rate ρ < 1.
//
// Station 0 is a dedicated coordinator; the others are workers. An
// execution is structured into phases; packets injected during a phase
// become old at its end and are delivered during the next phase. A phase
// has one stage per receiving station v, and a stage has three substages:
//
//  1. every station w ≠ coordinator transmits, in name order, the number
//     of its old packets destined to v (coordinator listens);
//  2. the coordinator transmits to each w its transmit offset together
//     with the stage total, so every station knows when the stage ends
//     (the paper leaves the dissemination of the stage length implicit —
//     see DESIGN.md);
//  3. the senders wake one after another in name order and transmit their
//     old packets for v, one per round, while v listens throughout.
//
// At most two stations are ever on simultaneously. The first phase
// consists of n rounds with every station switched off (paper §4.1).
package counthop

import (
	"fmt"

	"earmac/internal/core"
	"earmac/internal/mac"
	"earmac/internal/pktq"
)

const coordinator = 0

// control-bit field widths: a count and an offset (32 bits each).
const ctrlW = 32

type substage int

const (
	subCounts substage = iota + 1
	subOffsets
	subSend
)

type station struct {
	id, n int

	oldQ *pktq.Queue // packets injected in earlier phases (deliver now)
	newQ *pktq.Queue // packets injected in the current phase

	bootstrap int // rounds remaining of the initial all-off phase

	v     int      // current stage: receiving station
	sub   substage // current substage
	idx   int      // index within the substage
	total int      // Σ old packets destined to v (known after substage 2)

	myCount int // this station's old-packet count for v (fixed in substage 1)
	offset  int // this station's slot start within substage 3

	counts  []int // coordinator only: per-station counts for v
	offsets []int // coordinator only: per-station slot starts

	// Reused control buffers: receivers decode the fields synchronously
	// from the round's feedback and never retain them (DESIGN.md,
	// pooling invariants).
	ctrlCount  mac.Control // substage 1: my old-packet count
	ctrlOffset mac.Control // substage 2: offset + stage total

	curRound  int64
	started   bool
	pendingTx int64
}

// New builds a Count-Hop system for n ≥ 2 stations.
func New(n int) (*core.System, error) {
	if n < 2 {
		return nil, fmt.Errorf("counthop: need n >= 2, got %d", n)
	}
	stations := make([]core.Protocol, n)
	for i := 0; i < n; i++ {
		s := &station{
			id: i, n: n,
			oldQ: pktq.New(n), newQ: pktq.New(n),
			bootstrap:  n,
			pendingTx:  -1,
			ctrlCount:  mac.MakeControl(ctrlW),
			ctrlOffset: mac.MakeControl(2 * ctrlW),
		}
		if i == coordinator {
			s.counts = make([]int, n)
			s.offsets = make([]int, n)
		}
		stations[i] = s
	}
	return &core.System{
		Info: core.AlgorithmInfo{
			Name:      "count-hop",
			EnergyCap: 2,
			Direct:    true,
		},
		Stations: stations,
		// Idle rounds are control-only ("light") heard rounds: with every
		// queue empty each stage runs n−1 zero-count reports and n−1
		// offset broadcasts, then skips substage 3 — a 2(n−1)-round cycle
		// anchored at the coordinator's replicated cursor.
		Idle: core.IdleProfileFunc(stations[coordinator].(*station).appendIdleCycle),
	}, nil
}

// cyclePos maps the replicated cursor to its position within the
// 2(n−1)-round idle cycle. Only valid in substages 1 and 2 (Quiescent
// declines in substage 3).
func (s *station) cyclePos() int64 {
	if s.sub == subOffsets {
		return int64(s.n-1) + int64(s.idx)
	}
	return int64(s.idx)
}

// appendIdleCycle implements core.IdleProfiler via the coordinator's
// replicated cursor (identical at every station while quiescent). Entry
// j describes round from+j; the cursor is post-Act of round from−1, so
// the position at from is one advance ahead.
func (s *station) appendIdleCycle(from int64, buf []core.IdleRound) []core.IdleRound {
	if !s.started || s.bootstrap > 0 || s.sub == subSend {
		return buf // decline: not in the steady idle cycle
	}
	p := int64(2 * (s.n - 1))
	q0 := (s.cyclePos() + 1) % p
	for j := int64(0); j < p; j++ {
		e := core.IdleRound{Energy: 2, Light: true, CtrlBits: s.ctrlCount.Bits()}
		if (q0+j)%p >= int64(s.n-1) {
			e.CtrlBits = s.ctrlOffset.Bits()
		}
		buf = append(buf, e)
	}
	return buf
}

// Quiescent implements mac.Skipper. The substage-3 tail (idx == total,
// cursor not yet advanced past the stage) declines for one round; the
// next sweep moves the cursor into the following stage.
func (s *station) Quiescent() bool {
	return s.started && s.bootstrap == 0 && s.sub != subSend &&
		s.pendingTx < 0 && s.oldQ.Len() == 0 && s.newQ.Len() == 0
}

// SkipIdle implements mac.Skipper: with all queues empty the replicated
// state is a pure function of the cycle position (counts and offsets are
// all zero, substage 3 is empty), so m rounds of advance-and-observe
// collapse to modular arithmetic plus a positional reset of the
// per-stage fields.
func (s *station) SkipIdle(from, to int64) {
	p := int64(2 * (s.n - 1))
	pf := s.cyclePos() + (to - from) // advances entering rounds from..to−1
	wraps := pf / p
	qf := pf % p
	s.v = int((int64(s.v) + wraps) % int64(s.n))
	s.myCount = 0
	if qf < int64(s.n-1) {
		s.sub, s.idx = subCounts, int(qf)
		s.total = -1
		s.offset = -1
		if s.id == coordinator {
			s.offset = 0
		}
	} else {
		s.sub, s.idx = subOffsets, int(qf)-(s.n-1)
		// A worker knows its offset and the stage total once the
		// coordinator's broadcast for it has happened (rounds 0..idx).
		if s.id == coordinator || s.id <= s.idx+1 {
			s.offset, s.total = 0, 0
		} else {
			s.offset, s.total = -1, -1
		}
	}
	if s.id == coordinator {
		for i := range s.counts {
			s.counts[i] = 0
			s.offsets[i] = 0
		}
	}
	s.curRound = to - 1
}

func (s *station) Inject(p mac.Packet) { s.newQ.Push(p) }

func (s *station) QueueLen() int { return s.oldQ.Len() + s.newQ.Len() }

func (s *station) HeldPackets() []mac.Packet {
	return append(s.oldQ.Snapshot(), s.newQ.Snapshot()...)
}

// startPhase rolls new packets over to old at a phase boundary.
func (s *station) startPhase() {
	if s.oldQ.Len() != 0 {
		panic(fmt.Sprintf("counthop: station %d enters a phase with %d undelivered old packets", s.id, s.oldQ.Len()))
	}
	s.oldQ, s.newQ = s.newQ, s.oldQ
	s.v, s.sub, s.idx = 0, subCounts, 0
	s.total = -1
	s.stageInit()
}

// stageInit captures the per-stage quantities fixed at stage start.
func (s *station) stageInit() {
	s.myCount = s.oldQ.Count(s.v)
	s.offset = -1
	if s.id == coordinator {
		for i := range s.counts {
			s.counts[i] = 0
		}
		s.counts[coordinator] = s.myCount
		s.offset = 0 // the coordinator is first in name order
	}
}

func (s *station) nextStage() {
	s.v++
	if s.v == s.n {
		s.startPhase()
		return
	}
	s.sub, s.idx = subCounts, 0
	s.total = -1
	s.stageInit()
}

// advance moves the replicated cursor to the next round's position.
func (s *station) advance() {
	if s.bootstrap > 0 {
		s.bootstrap--
		if s.bootstrap == 0 {
			s.startPhase()
		}
		return
	}
	s.idx++
	switch s.sub {
	case subCounts:
		if s.idx == s.n-1 {
			s.sub, s.idx = subOffsets, 0
			if s.id == coordinator {
				s.computeOffsets()
			}
		}
	case subOffsets:
		if s.idx == s.n-1 {
			s.sub, s.idx = subSend, 0
			if s.total < 0 {
				panic(fmt.Sprintf("counthop: station %d entered substage 3 without the total", s.id))
			}
			if s.total == 0 {
				s.nextStage()
			}
		}
	case subSend:
		if s.idx == s.total {
			s.nextStage()
		}
	}
}

func (s *station) computeOffsets() {
	sum := 0
	for w := 0; w < s.n; w++ {
		s.offsets[w] = sum
		sum += s.counts[w]
	}
	s.total = sum
}

func (s *station) Act(round int64) core.Action {
	if s.started && round != s.curRound {
		s.advance()
	}
	s.started = true
	s.curRound = round
	s.pendingTx = -1

	if s.bootstrap > 0 {
		return core.Off()
	}

	switch s.sub {
	case subCounts:
		w := s.idx + 1
		switch s.id {
		case w:
			s.ctrlCount.SetUint(0, ctrlW, uint64(s.myCount))
			return core.Transmit(mac.CtrlMsg(s.ctrlCount))
		case coordinator:
			return core.Listen()
		default:
			return core.Off()
		}

	case subOffsets:
		w := s.idx + 1
		switch s.id {
		case coordinator:
			s.ctrlOffset.SetUint(0, ctrlW, uint64(s.offsets[w]))
			s.ctrlOffset.SetUint(ctrlW, ctrlW, uint64(s.total))
			return core.Transmit(mac.CtrlMsg(s.ctrlOffset))
		case w:
			return core.Listen()
		default:
			return core.Off()
		}

	case subSend:
		j := s.idx
		if s.inSlot(j) {
			p, ok := s.oldQ.FrontTo(s.v)
			if !ok {
				panic(fmt.Sprintf("counthop: station %d scheduled to send to %d but has no packet", s.id, s.v))
			}
			s.pendingTx = p.ID
			return core.Transmit(mac.PacketMsg(p))
		}
		if s.id == s.v {
			return core.Listen()
		}
		return core.Off()
	}
	return core.Off()
}

// inSlot reports whether round-index j of substage 3 falls in this
// station's transmit slot.
func (s *station) inSlot(j int) bool {
	return s.offset >= 0 && j >= s.offset && j < s.offset+s.myCount
}

func (s *station) Observe(round int64, fb mac.Feedback) {
	if fb.Kind != mac.FbHeard {
		return
	}
	switch s.sub {
	case subCounts:
		if s.id == coordinator {
			w := s.idx + 1
			s.counts[w] = int(fb.Msg.Ctrl.Uint(0, ctrlW))
		}
	case subOffsets:
		if s.id == s.idx+1 {
			s.offset = int(fb.Msg.Ctrl.Uint(0, ctrlW))
			s.total = int(fb.Msg.Ctrl.Uint(ctrlW, ctrlW))
		}
	case subSend:
		if s.pendingTx >= 0 {
			s.oldQ.Remove(s.pendingTx)
			s.pendingTx = -1
		}
	}
}
