package counthop

import (
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/metrics"
)

func run(t *testing.T, n int, adv core.Adversary, rounds int64) *metrics.Tracker {
	t.Helper()
	sys, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	tr := metrics.NewTracker()
	tr.SampleEvery = 256
	sim := core.NewSim(sys, adv, core.Options{Strict: true, CheckEvery: 997, Tracker: tr})
	if err := sim.Run(rounds); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRejectsTinySystems(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("New(1) should fail")
	}
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
}

func TestStableAtHalfRate(t *testing.T) {
	tr := run(t, 6, adversary.New(adversary.T(1, 2, 2), adversary.Uniform(6, 42)), 60000)
	if !tr.LooksStable() {
		t.Errorf("unstable at ρ=1/2:\n%s", tr.Summary())
	}
	if tr.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if tr.MaxEnergy > 2 {
		t.Errorf("energy %d exceeds cap 2", tr.MaxEnergy)
	}
	if len(tr.Violations) > 0 {
		t.Errorf("violations: %v", tr.Violations)
	}
}

func TestLatencyWithinPaperBoundShape(t *testing.T) {
	// Paper: latency ≤ 2(n²+β)/(1−ρ). Our stage-total dissemination makes
	// the per-phase overhead 2n(n−1) instead of (n−1)², so the bound we
	// must meet is 2(2n(n−1)+n+β)/(1−ρ) (bootstrap adds n).
	n := 6
	rho := adversary.T(1, 2, 2) // ρ=1/2, β=2
	tr := run(t, n, adversary.New(rho, adversary.Uniform(n, 7)), 60000)
	bound := int64(2*(2*n*(n-1)+n+2)) * 2 // ÷(1−ρ) = ×2
	if tr.MaxLatency > bound {
		t.Errorf("max latency %d exceeds bound %d:\n%s", tr.MaxLatency, bound, tr.Summary())
	}
}

func TestStableNearRateOne(t *testing.T) {
	// ρ = 9/10 still universal; phases self-scale.
	tr := run(t, 4, adversary.New(adversary.T(9, 10, 1), adversary.Uniform(4, 3)), 120000)
	if !tr.LooksStable() {
		t.Errorf("unstable at ρ=9/10:\n%s", tr.Summary())
	}
}

func TestUnstableAtRateOne(t *testing.T) {
	// Theorem 2: with energy cap 2 no algorithm is stable at ρ = 1. Every
	// phase pays 2n(n−1) control rounds, so queues must grow.
	tr := run(t, 5, adversary.New(adversary.T(1, 1, 1), adversary.Uniform(5, 9)), 60000)
	if tr.LooksStable() {
		t.Errorf("unexpectedly stable at ρ=1:\n%s", tr.Summary())
	}
	if tr.QueueSlope() <= 0 {
		t.Errorf("queue slope %f not positive at ρ=1", tr.QueueSlope())
	}
}

func TestDrainsCompletely(t *testing.T) {
	n := 5
	adv := adversary.New(adversary.T(1, 2, 3),
		adversary.Stop(adversary.Uniform(n, 11), 20000))
	tr := run(t, n, adv, 40000)
	if tr.Pending() != 0 {
		t.Errorf("pending = %d after drain:\n%s", tr.Pending(), tr.Summary())
	}
}

func TestSelfAddressedPackets(t *testing.T) {
	// Packets injected at their own destination still flow through the
	// schedule (the station transmits to itself during its slot).
	n := 4
	adv := adversary.New(adversary.T(1, 4, 1),
		adversary.Stop(adversary.SingleTarget(2, 2), 8000))
	tr := run(t, n, adv, 20000)
	if tr.Pending() != 0 {
		t.Errorf("self-addressed packets stuck: pending=%d", tr.Pending())
	}
	if tr.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestCoordinatorPacketsDelivered(t *testing.T) {
	// Packets injected into the coordinator (station 0) use its own slots.
	n := 4
	adv := adversary.New(adversary.T(1, 4, 1),
		adversary.Stop(adversary.HotSource(0, n), 8000))
	tr := run(t, n, adv, 20000)
	if tr.Pending() != 0 {
		t.Errorf("coordinator packets stuck: pending=%d", tr.Pending())
	}
}

func TestPacketsToCoordinatorDelivered(t *testing.T) {
	n := 4
	adv := adversary.New(adversary.T(1, 4, 1),
		adversary.Stop(adversary.SingleTarget(3, 0), 8000))
	tr := run(t, n, adv, 20000)
	if tr.Pending() != 0 {
		t.Errorf("packets to coordinator stuck: pending=%d", tr.Pending())
	}
}

func TestMinimalSystemN2(t *testing.T) {
	adv := adversary.New(adversary.T(1, 3, 1),
		adversary.Stop(adversary.Uniform(2, 5), 5000))
	tr := run(t, 2, adv, 12000)
	if tr.Pending() != 0 {
		t.Errorf("n=2 pending = %d:\n%s", tr.Pending(), tr.Summary())
	}
}

func TestBurstAbsorbed(t *testing.T) {
	n := 5
	adv := adversary.New(adversary.T(1, 4, 20),
		adversary.Stop(adversary.Bursty(adversary.Uniform(n, 13), 500), 15000))
	tr := run(t, n, adv, 40000)
	if tr.Pending() != 0 {
		t.Errorf("burst not drained: pending=%d", tr.Pending())
	}
}

func TestEnergyNeverExceedsTwo(t *testing.T) {
	tr := run(t, 7, adversary.New(adversary.T(2, 3, 2), adversary.Uniform(7, 17)), 30000)
	if tr.MaxEnergy > 2 {
		t.Errorf("MaxEnergy = %d", tr.MaxEnergy)
	}
	// The channel must actually be used.
	if tr.DeliveryRounds == 0 {
		t.Error("no delivery rounds")
	}
}
