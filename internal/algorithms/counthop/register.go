package counthop

import (
	"earmac/internal/core"
	"earmac/internal/registry"
)

func init() {
	registry.RegisterAlgorithm("count-hop", registry.AlgorithmMeta{
		Summary:   "token-counting direct routing, universal for ρ < 1 under cap 2",
		Theorem:   "Thm 3",
		EnergyCap: 2,
		Direct:    true,
		MinN:      2,
	}, func(n, _ int) (*core.System, error) { return New(n) })
}
