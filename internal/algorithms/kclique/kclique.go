// Package kclique implements algorithm k-Clique (paper §6): a plain-
// packet, k-energy-oblivious, direct-routing algorithm with latency
// 8(n²/k)(1 + β/2k) for injection rates ρ ≤ k²/(2n(2n−k)).
//
// The stations are partitioned into 2n/k disjoint half-sets of size k/2;
// every unordered pair of half-sets forms a clique of k stations. The
// pairs are arranged in a fixed cycle and take turns being active for one
// round each — all k members on, a fixed schedule, hence oblivious.
// Within a pair, OF-RRW runs: the token holder transmits its old packets
// assigned to this pair; the destination of an assigned packet always
// belongs to the pair, so every heard packet is consumed immediately —
// routing is direct, no relays.
//
// Per the paper, k is assumed even and dividing 2n with k ≤ 2n/3; the
// constructor clamps a requested cap down to the largest feasible k.
package kclique

import (
	"fmt"

	"earmac/internal/broadcast"
	"earmac/internal/core"
	"earmac/internal/mac"
	"earmac/internal/pktq"
	"earmac/internal/sched"
)

// Layout is the static half-set / pair structure.
type Layout struct {
	N        int
	K        int // effective cap: even, divides 2n, ≤ 2n/3
	Sets     int // 2n/k half-sets
	NumPairs int

	pairIndex [][]int // set a, set b → pair index (a < b)
	pairs     [][2]int
	members   [][]int // pair → sorted stations
	pairsOf   [][]int // station → pair indices containing it
	inPair    []map[int]bool
}

// FeasibleK returns the largest k' ≤ k that is even, divides 2n, and
// satisfies k' ≤ 2n/3; 0 if none exists.
func FeasibleK(n, k int) int {
	if k > 2*n/3 {
		k = 2 * n / 3
	}
	for ; k >= 2; k-- {
		if k%2 == 0 && (2*n)%k == 0 {
			return k
		}
	}
	return 0
}

// NewLayout computes the pair structure for n stations under cap k.
func NewLayout(n, k int) (*Layout, error) {
	if n < 3 {
		return nil, fmt.Errorf("kclique: need n >= 3, got %d", n)
	}
	ek := FeasibleK(n, k)
	if ek == 0 {
		return nil, fmt.Errorf("kclique: no feasible even k ≤ %d dividing 2n for n=%d", k, n)
	}
	c := 2 * n / ek
	lay := &Layout{
		N: n, K: ek, Sets: c,
		pairIndex: make([][]int, c),
		pairsOf:   make([][]int, n),
	}
	for a := 0; a < c; a++ {
		lay.pairIndex[a] = make([]int, c)
		for b := range lay.pairIndex[a] {
			lay.pairIndex[a][b] = -1
		}
	}
	half := ek / 2
	for a := 0; a < c; a++ {
		for b := a + 1; b < c; b++ {
			idx := len(lay.pairs)
			lay.pairIndex[a][b] = idx
			lay.pairIndex[b][a] = idx
			lay.pairs = append(lay.pairs, [2]int{a, b})
			m := make([]int, 0, ek)
			for s := a * half; s < (a+1)*half; s++ {
				m = append(m, s)
			}
			for s := b * half; s < (b+1)*half; s++ {
				m = append(m, s)
			}
			lay.members = append(lay.members, m)
			in := make(map[int]bool, ek)
			for _, s := range m {
				in[s] = true
				lay.pairsOf[s] = append(lay.pairsOf[s], idx)
			}
			lay.inPair = append(lay.inPair, in)
		}
	}
	lay.NumPairs = len(lay.pairs)
	return lay, nil
}

// SetOf returns the half-set of a station.
func (l *Layout) SetOf(s int) int { return s / (l.K / 2) }

// ActivePair returns the pair switched on in the given round.
func (l *Layout) ActivePair(round int64) int {
	return int(round % int64(l.NumPairs))
}

// PairFor returns the pair a packet src→dest is assigned to: the unique
// pair of both endpoints' half-sets, or — when the endpoints share a
// half-set — the pair of that set and the cyclically next one.
func (l *Layout) PairFor(src, dest int) int {
	a, b := l.SetOf(src), l.SetOf(dest)
	if a == b {
		b = (a + 1) % l.Sets
	}
	return l.pairIndex[a][b]
}

// Schedule returns the oblivious on/off schedule (period = #pairs).
func (l *Layout) Schedule() sched.Schedule {
	return sched.Func{
		N: l.N,
		P: int64(l.NumPairs),
		F: func(st int, round int64) bool {
			return l.inPair[l.ActivePair(round)][st]
		},
	}
}

// CriticalRate returns k²/(2n(2n−k)), the rate up to which the paper
// bounds the latency (half the pair-activation frequency 1/m).
func (l *Layout) CriticalRate() (num, den int64) {
	return int64(l.K) * int64(l.K), 2 * int64(l.N) * (2*int64(l.N) - int64(l.K))
}

type pairQueue struct {
	q     *pktq.Queue
	tagOf map[int64]int64
}

type station struct {
	id  int
	lay *Layout

	// Pair-local state in membership order (pairs = lay.pairsOf[id],
	// sorted ascending). Pairs activate in index order, so a cursor into
	// the sorted membership list replaces a per-round map lookup.
	pairs   []int
	rings   []*broadcast.Ring
	subs    []*pairQueue
	localOf map[int]int // global pair → membership index (cold paths)
	cursor  int
	cycle   int64

	pendingTx int64
}

func newStation(id int, lay *Layout) *station {
	pairs := lay.pairsOf[id]
	s := &station{
		id: id, lay: lay,
		pairs:   pairs,
		rings:   make([]*broadcast.Ring, len(pairs)),
		subs:    make([]*pairQueue, len(pairs)),
		localOf: make(map[int]int, len(pairs)),
		cycle:   -1, pendingTx: -1,
	}
	for i, p := range pairs {
		s.rings[i] = broadcast.NewRing(lay.members[p])
		s.subs[i] = &pairQueue{q: pktq.New(lay.N), tagOf: map[int64]int64{}}
		s.localOf[p] = i
	}
	return s
}

func (s *station) Inject(p mac.Packet) {
	i := s.localOf[s.lay.PairFor(s.id, p.Dest)]
	sub := s.subs[i]
	sub.q.Push(p)
	sub.tagOf[p.ID] = s.rings[i].Phase()
}

func (s *station) Act(round int64) core.Action {
	s.pendingTx = -1
	cycle := round / int64(s.lay.NumPairs)
	if cycle != s.cycle {
		s.cycle = cycle
		s.cursor = 0
	}
	pair := s.lay.ActivePair(round)
	for s.cursor < len(s.pairs) && s.pairs[s.cursor] < pair {
		s.cursor++
	}
	if s.cursor >= len(s.pairs) || s.pairs[s.cursor] != pair {
		return core.Off()
	}
	ring := s.rings[s.cursor]
	if ring.Holder() != s.id {
		return core.Listen()
	}
	sub := s.subs[s.cursor]
	front, ok := sub.q.Front()
	if !ok || sub.tagOf[front.ID] >= ring.Phase() {
		return core.Listen() // silence advances the token
	}
	s.pendingTx = front.ID
	return core.Transmit(mac.PacketMsg(front))
}

func (s *station) Observe(round int64, fb mac.Feedback) {
	// Only called for switched-on rounds: Act left the cursor on the
	// active pair.
	ring := s.rings[s.cursor]
	switch fb.Kind {
	case mac.FbHeard:
		ring.ObserveHeard()
		if s.pendingTx >= 0 {
			sub := s.subs[s.cursor]
			sub.q.Remove(s.pendingTx)
			delete(sub.tagOf, s.pendingTx)
			s.pendingTx = -1
		}
	case mac.FbSilence:
		ring.ObserveSilence()
	}
}

func (s *station) QueueLen() int {
	total := 0
	for _, sub := range s.subs {
		total += sub.q.Len()
	}
	return total
}

// Quiescent implements mac.Skipper: with every pair-queue empty, each
// on-duty round ends in silence and the only transition is an
// ObserveSilence on the active pair's ring.
func (s *station) Quiescent() bool {
	if s.pendingTx >= 0 {
		return false
	}
	for _, sub := range s.subs {
		if sub.q.Len() != 0 {
			return false
		}
	}
	return true
}

// countCongruent counts rounds r in [from, to) with r % mod == res.
func countCongruent(from, to, mod, res int64) int64 {
	f := func(x int64) int64 {
		if x <= res {
			return 0
		}
		return (x-res-1)/mod + 1
	}
	return f(to) - f(from)
}

// SkipIdle implements mac.Skipper: each membership's ring saw one silence
// per round its pair was active. cycle and the cursor are left stale —
// Act self-corrects exactly as after a long off stretch: a cycle change
// resets the cursor, a same-cycle wake-up resumes the monotone scan.
func (s *station) SkipIdle(from, to int64) {
	np := int64(s.lay.NumPairs)
	for i, p := range s.pairs {
		if m := countCongruent(from, to, np, int64(p)); m > 0 {
			s.rings[i].SkipSilences(m)
		}
	}
}

func (s *station) HeldPackets() []mac.Packet {
	var out []mac.Packet
	for _, sub := range s.subs {
		out = sub.q.AppendTo(out)
	}
	return out
}

// New builds a k-Clique system for n ≥ 3 stations under energy cap k.
// The effective cap (after feasibility clamping) is reported by the
// system's Info.EnergyCap.
func New(n, k int) (*core.System, error) {
	lay, err := NewLayout(n, k)
	if err != nil {
		return nil, err
	}
	stations := make([]core.Protocol, n)
	for i := 0; i < n; i++ {
		stations[i] = newStation(i, lay)
	}
	return &core.System{
		Info: core.AlgorithmInfo{
			Name:        fmt.Sprintf("%d-clique", lay.K),
			EnergyCap:   lay.K,
			PlainPacket: true,
			Direct:      true,
			Oblivious:   true,
		},
		Stations: stations,
		Schedule: lay.Schedule(),
		// Idle rounds: the k members of the active pair listen in silence.
		Idle: core.ConstIdle{Energy: lay.K},
	}, nil
}
