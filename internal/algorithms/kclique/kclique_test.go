package kclique

import (
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/metrics"
	"earmac/internal/sched"
)

func TestFeasibleK(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{8, 4, 4},   // 4 | 16, 4 ≤ 16/3
		{8, 5, 4},   // 5 odd → down to 4
		{8, 100, 4}, // clamp to 2n/3 = 5 → 4
		{9, 6, 6},   // 6 | 18, 6 = 2·9/3
		{9, 4, 2},   // 4 ∤ 18 → 2
		{3, 2, 2},
		{6, 4, 4},
		{12, 8, 8},
	}
	for _, c := range cases {
		if got := FeasibleK(c.n, c.k); got != c.want {
			t.Errorf("FeasibleK(%d, %d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestLayoutStructure(t *testing.T) {
	lay, err := NewLayout(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Sets != 4 || lay.NumPairs != 6 {
		t.Fatalf("sets=%d pairs=%d, want 4 and 6", lay.Sets, lay.NumPairs)
	}
	// Half-sets of size 2: station 5 is in set 2.
	if lay.SetOf(5) != 2 {
		t.Errorf("SetOf(5) = %d", lay.SetOf(5))
	}
	// Every pair has exactly k members and every station is in Sets−1 pairs.
	for p, m := range lay.members {
		if len(m) != 4 {
			t.Errorf("pair %d has %d members", p, len(m))
		}
	}
	for s := 0; s < 8; s++ {
		if len(lay.pairsOf[s]) != 3 {
			t.Errorf("station %d in %d pairs, want 3", s, len(lay.pairsOf[s]))
		}
	}
}

func TestPairForAssignsBothEndpoints(t *testing.T) {
	lay, _ := NewLayout(8, 4)
	for src := 0; src < 8; src++ {
		for dest := 0; dest < 8; dest++ {
			p := lay.PairFor(src, dest)
			if !lay.inPair[p][src] || !lay.inPair[p][dest] {
				t.Errorf("pair %d for %d→%d misses an endpoint", p, src, dest)
			}
		}
	}
}

func TestScheduleRespectsCap(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{8, 4}, {9, 6}, {6, 2}, {12, 6}} {
		lay, err := NewLayout(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Validate(lay.Schedule(), lay.K); err != nil {
			t.Errorf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if got := sched.MaxSimultaneous(lay.Schedule()); got != lay.K {
			t.Errorf("n=%d k=%d: max on %d, want %d", tc.n, tc.k, got, lay.K)
		}
	}
}

func run(t *testing.T, n, k int, adv core.Adversary, rounds int64) *metrics.Tracker {
	t.Helper()
	sys, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	tr := metrics.NewTracker()
	tr.SampleEvery = 256
	sim := core.NewSim(sys, adv, core.Options{Strict: true, CheckEvery: 1013, Tracker: tr})
	if err := sim.Run(rounds); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestStableAtCriticalRate(t *testing.T) {
	// n=8, k=4: paper's latency regime is ρ ≤ k²/(2n(2n−k)) = 1/12.
	tr := run(t, 8, 4, adversary.New(adversary.T(1, 12, 2), adversary.Uniform(8, 42)), 100000)
	if !tr.LooksStable() {
		t.Errorf("unstable at ρ=1/12:\n%s", tr.Summary())
	}
	if len(tr.Violations) > 0 {
		t.Errorf("violations: %v", tr.Violations)
	}
}

func TestLatencyWithinPaperBound(t *testing.T) {
	// Paper: latency ≤ 8(n²/k)(1+β/2k) for ρ ≤ k²/(2n(2n−k)).
	n, k, beta := 8, 4, int64(2)
	tr := run(t, n, k, adversary.New(adversary.T(1, 12, 2), adversary.Uniform(n, 7)), 100000)
	bound := 8 * int64(n) * int64(n) / int64(k) * (1 + beta/(2*int64(k))) // = 8n²/k · (1+β/2k)
	// Integer arithmetic floors (1+β/2k); recompute exactly: 8n²/k + 8n²β/(2k²).
	bound = 8*int64(n)*int64(n)/int64(k) + 8*int64(n)*int64(n)*beta/(2*int64(k)*int64(k))
	if tr.MaxLatency > bound {
		t.Errorf("max latency %d exceeds paper bound %d:\n%s", tr.MaxLatency, bound, tr.Summary())
	}
}

func TestDrainsCompletely(t *testing.T) {
	n := 8
	adv := adversary.New(adversary.T(1, 15, 2),
		adversary.Stop(adversary.Uniform(n, 11), 40000))
	tr := run(t, n, 4, adv, 100000)
	if tr.Pending() != 0 {
		t.Errorf("pending = %d after drain:\n%s", tr.Pending(), tr.Summary())
	}
}

func TestSameSetTraffic(t *testing.T) {
	// Stations 0→1 share half-set 0: handled by the pair {0,1}.
	n := 8
	adv := adversary.New(adversary.T(1, 15, 1),
		adversary.Stop(adversary.SingleTarget(0, 1), 20000))
	tr := run(t, n, 4, adv, 60000)
	if tr.Pending() != 0 {
		t.Errorf("same-set packets stuck: pending=%d", tr.Pending())
	}
}

func TestSelfAddressed(t *testing.T) {
	n := 8
	adv := adversary.New(adversary.T(1, 15, 1),
		adversary.Stop(adversary.SingleTarget(3, 3), 20000))
	tr := run(t, n, 4, adv, 60000)
	if tr.Pending() != 0 {
		t.Errorf("self-addressed stuck: pending=%d", tr.Pending())
	}
}

func TestUnstableAbovePairFrequency(t *testing.T) {
	// A single cross-set flow is served once per m = 6 rounds; ρ = 1/5 >
	// 1/6 must overwhelm it (this is the sharpness of the paper's rate
	// condition).
	n := 8
	adv := adversary.New(adversary.T(1, 5, 1), adversary.SingleTarget(0, 7))
	tr := run(t, n, 4, adv, 60000)
	if tr.LooksStable() {
		t.Errorf("unexpectedly stable above 1/m:\n%s", tr.Summary())
	}
}

func TestUnstableAboveDirectObliviousCeiling(t *testing.T) {
	// Theorem 9 adversary from the published schedule: ρ = 1/4 >
	// k(k−1)/(n(n−1)) = 3/14.
	n, k := 8, 4
	sys, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.LeastPair(sys.Schedule, adversary.T(1, 4, 1))
	tr := metrics.NewTracker()
	tr.SampleEvery = 256
	sim := core.NewSim(sys, adv, core.Options{Strict: true, CheckEvery: 2003, Tracker: tr})
	if err := sim.Run(80000); err != nil {
		t.Fatal(err)
	}
	if tr.LooksStable() {
		t.Errorf("unexpectedly stable above direct-oblivious ceiling:\n%s", tr.Summary())
	}
}

func TestMinimalSystem(t *testing.T) {
	// n=3 → k=2, singleton half-sets, 3 pairs.
	adv := adversary.New(adversary.T(1, 10, 1),
		adversary.Stop(adversary.Uniform(3, 3), 20000))
	tr := run(t, 3, 2, adv, 60000)
	if tr.Pending() != 0 {
		t.Errorf("n=3 pending = %d:\n%s", tr.Pending(), tr.Summary())
	}
}

func TestReplicaRingsConsistent(t *testing.T) {
	n, k := 8, 4
	sys, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.New(adversary.T(1, 12, 2), adversary.Uniform(n, 5))
	sim := core.NewSim(sys, adv, core.Options{Strict: true})
	lay := sys.Stations[0].(*station).lay
	for r := 0; r < 5000; r++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < lay.NumPairs; p++ {
			first := sys.Stations[lay.members[p][0]].(*station)
			ref := first.rings[first.localOf[p]]
			for _, m := range lay.members[p][1:] {
				st := sys.Stations[m].(*station)
				if !st.rings[st.localOf[p]].Equal(ref) {
					t.Fatalf("round %d: ring replicas for pair %d diverged", r, p)
				}
			}
		}
	}
}

func TestInfeasibleConfigRejected(t *testing.T) {
	if _, err := NewLayout(2, 2); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := New(8, 1); err == nil {
		t.Error("k=1 accepted")
	}
}
