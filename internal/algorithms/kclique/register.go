package kclique

import "earmac/internal/registry"

func init() {
	registry.RegisterAlgorithm("k-clique", registry.AlgorithmMeta{
		Summary:     "pairwise co-scheduling of station groups, direct routing for ρ ≤ k²/(2n(2n−k))",
		Theorem:     "Thm 7",
		UsesK:       true,
		PlainPacket: true,
		Direct:      true,
		Oblivious:   true,
		MinN:        3,
		MinK:        2,
		// The builder picks the largest feasible even k' ≤ k dividing 2n.
	}, New)
}
