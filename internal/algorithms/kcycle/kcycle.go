// Package kcycle implements algorithm k-Cycle (paper §5): a plain-packet,
// k-energy-oblivious, indirect-routing algorithm with latency O(n) for
// injection rates below (k−1)/(n−1).
//
// The n stations are covered by ℓ = ⌈n/(k−1)⌉ groups of (up to) k
// consecutive stations; consecutive groups share one station, their
// connector, and the last group wraps around to share station 0 with the
// first. Groups take turns being active for δ = ⌈4(n−1)k/(n−k)⌉ rounds
// each, in round-robin order, with all member stations switched on — a
// fixed schedule, hence energy-oblivious. Within its activity rounds a
// group runs OF-RRW: a token cycles through the members; the holder
// transmits its old packets associated with this group; a silent round
// advances the token; a full token cycle ends the group's phase. A heard
// packet is consumed if its destination belongs to the active group and
// otherwise adopted by the group's connector, hopping group to group
// around the cycle until it reaches its destination's group.
//
// Packets carry a group association (see DESIGN.md §4): injected packets
// belong to a group containing both endpoints when one exists, otherwise
// to the injection station's forward group; adopted packets move to the
// next group. This realizes the paper's store-and-forward intent without
// bouncing packets at connectors.
package kcycle

import (
	"fmt"

	"earmac/internal/broadcast"
	"earmac/internal/core"
	"earmac/internal/mac"
	"earmac/internal/pktq"
	"earmac/internal/sched"
)

// Layout is the static group structure shared by all stations.
type Layout struct {
	N     int
	K     int // effective k after the paper's clamp 2k ≤ n+1
	L     int // number of groups
	Delta int64

	members   [][]int // group → sorted member stations
	groupsOf  [][]int // station → groups it belongs to
	connector []int   // group → connector station shared with next group
	forward   []int   // station → its forward group (where it is first)
	inGroup   []map[int]bool
}

// NewLayout computes the group structure. The requested cap k is clamped
// to ⌊(n+1)/2⌋ per the paper ("if n ≤ 2k then k gets decreased such that
// 2k = n + 1").
func NewLayout(n, k int) (*Layout, error) {
	if n < 3 {
		return nil, fmt.Errorf("kcycle: need n >= 3, got %d", n)
	}
	if k < 2 {
		return nil, fmt.Errorf("kcycle: need k >= 2, got %d", k)
	}
	if k > (n+1)/2 {
		k = (n + 1) / 2
	}
	l := (n + k - 2) / (k - 1) // ⌈n/(k−1)⌉
	lay := &Layout{
		N: n, K: k, L: l,
		Delta:     int64((4*(n-1)*k + (n - k) - 1) / (n - k)), // ⌈4(n−1)k/(n−k)⌉
		members:   make([][]int, l),
		groupsOf:  make([][]int, n),
		connector: make([]int, l),
		forward:   make([]int, n),
		inGroup:   make([]map[int]bool, l),
	}
	for i := range lay.forward {
		lay.forward[i] = -1
	}
	for g := 0; g < l; g++ {
		start := g * (k - 1)
		var m []int
		if g < l-1 {
			for s := start; s < start+k; s++ {
				m = append(m, s)
			}
			lay.connector[g] = start + k - 1
		} else {
			// Last group: remaining stations plus the wrap to station 0.
			m = append(m, 0)
			for s := start; s < n; s++ {
				m = append(m, s)
			}
			lay.connector[g] = 0
		}
		lay.members[g] = m
		lay.inGroup[g] = make(map[int]bool, len(m))
		for _, s := range m {
			lay.inGroup[g][s] = true
			lay.groupsOf[s] = append(lay.groupsOf[s], g)
		}
		// The group's first station (in cycle direction) treats g as its
		// forward group.
		lay.forward[start%n] = g
	}
	// Station 0 is first in group 0.
	lay.forward[0] = 0
	for s := 0; s < n; s++ {
		if lay.forward[s] == -1 {
			lay.forward[s] = lay.groupsOf[s][0]
		}
	}
	return lay, nil
}

// ActiveGroup returns the group switched on in the given round.
func (l *Layout) ActiveGroup(round int64) int {
	return int((round / l.Delta) % int64(l.L))
}

// Schedule returns the oblivious on/off schedule.
func (l *Layout) Schedule() sched.Schedule {
	return sched.Func{
		N: l.N,
		P: l.Delta * int64(l.L),
		F: func(st int, round int64) bool {
			return l.inGroup[l.ActiveGroup(round)][st]
		},
	}
}

// HomeGroup returns the group a packet injected at src with the given
// destination is initially associated with.
func (l *Layout) HomeGroup(src, dest int) int {
	for _, g := range l.groupsOf[src] {
		if l.inGroup[g][dest] {
			return g
		}
	}
	return l.forward[src]
}

// NextGroup returns the group after g in the forwarding cycle.
func (l *Layout) NextGroup(g int) int { return (g + 1) % l.L }

// grpQueue is one station's packet queue for one of its groups, with
// per-packet phase tags implementing OF-RRW's old/new distinction.
type grpQueue struct {
	q     *pktq.Queue
	tagOf map[int64]int64
}

func newGrpQueue(n int) *grpQueue {
	return &grpQueue{q: pktq.New(n), tagOf: make(map[int64]int64)}
}

func (gq *grpQueue) push(p mac.Packet, phase int64) {
	gq.q.Push(p)
	gq.tagOf[p.ID] = phase
}

func (gq *grpQueue) remove(id int64) {
	gq.q.Remove(id)
	delete(gq.tagOf, id)
}

// oldFront returns the oldest packet if it is old for the given phase.
// Tags are non-decreasing in arrival order, so a new front means the
// whole queue is new.
func (gq *grpQueue) oldFront(phase int64) (mac.Packet, bool) {
	p, ok := gq.q.Front()
	if !ok || gq.tagOf[p.ID] >= phase {
		return mac.Packet{}, false
	}
	return p, true
}

type station struct {
	id  int
	lay *Layout

	// Group-local state in membership order (groups = lay.groupsOf[id],
	// at most two entries), found by linear scan — cheaper than a map on
	// the per-round hot path.
	groups []int
	rings  []*broadcast.Ring // one replica per group membership
	subs   []*grpQueue

	pendingTx int64
}

func newStation(id int, lay *Layout) *station {
	groups := lay.groupsOf[id]
	s := &station{
		id: id, lay: lay,
		groups:    groups,
		rings:     make([]*broadcast.Ring, len(groups)),
		subs:      make([]*grpQueue, len(groups)),
		pendingTx: -1,
	}
	for i, g := range groups {
		s.rings[i] = broadcast.NewRing(lay.members[g])
		s.subs[i] = newGrpQueue(lay.N)
	}
	return s
}

// local returns the membership index of group g, or -1 for non-members.
func (s *station) local(g int) int {
	for i, og := range s.groups {
		if og == g {
			return i
		}
	}
	return -1
}

func (s *station) Inject(p mac.Packet) {
	i := s.local(s.lay.HomeGroup(s.id, p.Dest))
	s.subs[i].push(p, s.rings[i].Phase())
}

func (s *station) Act(round int64) core.Action {
	s.pendingTx = -1
	i := s.local(s.lay.ActiveGroup(round))
	if i < 0 {
		return core.Off()
	}
	ring := s.rings[i]
	if ring.Holder() != s.id {
		return core.Listen()
	}
	p, ok := s.subs[i].oldFront(ring.Phase())
	if !ok {
		return core.Listen() // silent round: token will advance
	}
	s.pendingTx = p.ID
	return core.Transmit(mac.PacketMsg(p))
}

func (s *station) Observe(round int64, fb mac.Feedback) {
	// Only called for switched-on rounds, i.e. active-group members.
	g := s.lay.ActiveGroup(round)
	i := s.local(g)
	ring := s.rings[i]
	switch fb.Kind {
	case mac.FbHeard:
		ring.ObserveHeard()
		if s.pendingTx >= 0 {
			s.subs[i].remove(s.pendingTx)
			s.pendingTx = -1
		}
		p := fb.Msg.Packet
		if !s.lay.inGroup[g][p.Dest] && s.id == s.lay.connector[g] {
			// Adopt and advance the packet to the next group.
			ni := s.local(s.lay.NextGroup(g))
			s.subs[ni].push(p, s.rings[ni].Phase())
		}
	case mac.FbSilence:
		ring.ObserveSilence()
	}
}

func (s *station) QueueLen() int {
	total := 0
	for _, gq := range s.subs {
		total += gq.q.Len()
	}
	return total
}

// Quiescent implements mac.Skipper: with every group-queue empty, each
// on-duty round ends in silence and the only transition is an
// ObserveSilence on the active group's ring.
func (s *station) Quiescent() bool {
	if s.pendingTx >= 0 {
		return false
	}
	for _, gq := range s.subs {
		if gq.q.Len() != 0 {
			return false
		}
	}
	return true
}

// countActive counts rounds r in [from, to) with (r/delta) % l == g —
// the rounds group g is active for a station fast-forwarding past them.
func countActive(from, to, delta, l, g int64) int64 {
	f := func(x int64) int64 {
		p := delta * l
		q, rem := x/p, x%p
		in := rem - g*delta
		if in < 0 {
			in = 0
		} else if in > delta {
			in = delta
		}
		return q*delta + in
	}
	return f(to) - f(from)
}

// SkipIdle implements mac.Skipper: each membership's ring saw one silence
// per round its group was active.
func (s *station) SkipIdle(from, to int64) {
	for i, g := range s.groups {
		if m := countActive(from, to, s.lay.Delta, int64(s.lay.L), int64(g)); m > 0 {
			s.rings[i].SkipSilences(m)
		}
	}
}

func (s *station) HeldPackets() []mac.Packet {
	var out []mac.Packet
	for _, gq := range s.subs {
		out = gq.q.AppendTo(out)
	}
	return out
}

// New builds a k-Cycle system for n ≥ 3 stations under energy cap k ≥ 2.
// The effective cap (after the paper's clamp) is reported by the system's
// Info.EnergyCap.
func New(n, k int) (*core.System, error) {
	lay, err := NewLayout(n, k)
	if err != nil {
		return nil, err
	}
	stations := make([]core.Protocol, n)
	for i := 0; i < n; i++ {
		stations[i] = newStation(i, lay)
	}
	return &core.System{
		Info: core.AlgorithmInfo{
			Name:        fmt.Sprintf("%d-cycle", lay.K),
			EnergyCap:   lay.K,
			PlainPacket: true,
			Oblivious:   true,
		},
		Stations: stations,
		Schedule: lay.Schedule(),
		// Idle rounds are silent with the active group's members on;
		// groups differ in size (the last wraps around), so the profile
		// cycles over one full activation super-period of δ·ℓ rounds.
		Idle: core.IdleProfileFunc(func(from int64, buf []core.IdleRound) []core.IdleRound {
			for j := int64(0); j < lay.Delta*int64(lay.L); j++ {
				buf = append(buf, core.IdleRound{
					Energy: len(lay.members[lay.ActiveGroup(from+j)]),
				})
			}
			return buf
		}),
	}, nil
}
