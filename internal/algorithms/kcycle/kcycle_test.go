package kcycle

import (
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/metrics"
	"earmac/internal/sched"
)

func TestLayoutValidation(t *testing.T) {
	if _, err := NewLayout(2, 2); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := NewLayout(5, 1); err == nil {
		t.Error("k=1 accepted")
	}
}

func TestLayoutClampsK(t *testing.T) {
	lay, err := NewLayout(7, 6)
	if err != nil {
		t.Fatal(err)
	}
	if lay.K != 4 { // ⌊(7+1)/2⌋
		t.Errorf("K = %d, want 4", lay.K)
	}
}

func TestLayoutSmall(t *testing.T) {
	lay, err := NewLayout(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lay.L != 4 {
		t.Fatalf("L = %d, want 4", lay.L)
	}
	wantMembers := [][]int{{0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {0, 6}}
	for g, want := range wantMembers {
		got := lay.members[g]
		if len(got) != len(want) {
			t.Fatalf("group %d = %v, want %v", g, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("group %d = %v, want %v", g, got, want)
			}
		}
	}
	wantConn := []int{2, 4, 6, 0}
	for g, want := range wantConn {
		if lay.connector[g] != want {
			t.Errorf("connector[%d] = %d, want %d", g, lay.connector[g], want)
		}
	}
	// δ = ⌈4·6·3/4⌉ = 18.
	if lay.Delta != 18 {
		t.Errorf("Delta = %d, want 18", lay.Delta)
	}
}

func TestLayoutCoversAllStationsEveryK(t *testing.T) {
	for n := 3; n <= 16; n++ {
		for k := 2; k <= n; k++ {
			lay, err := NewLayout(n, k)
			if err != nil {
				t.Fatal(err)
			}
			covered := make([]bool, n)
			for g := 0; g < lay.L; g++ {
				if len(lay.members[g]) > lay.K {
					t.Errorf("n=%d k=%d: group %d has %d members > effective k %d", n, k, g, len(lay.members[g]), lay.K)
				}
				for _, s := range lay.members[g] {
					covered[s] = true
				}
				// Consecutive groups share their connector.
				c := lay.connector[g]
				ng := lay.NextGroup(g)
				if !lay.inGroup[g][c] || !lay.inGroup[ng][c] {
					t.Errorf("n=%d k=%d: connector %d not shared between groups %d and %d", n, k, c, g, ng)
				}
			}
			for s, ok := range covered {
				if !ok {
					t.Errorf("n=%d k=%d: station %d uncovered", n, k, s)
				}
			}
		}
	}
}

func TestScheduleRespectsCap(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{5, 2}, {7, 3}, {9, 4}, {12, 5}} {
		lay, err := NewLayout(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if err := sched.Validate(lay.Schedule(), lay.K); err != nil {
			t.Errorf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if got := sched.MaxSimultaneous(lay.Schedule()); got != lay.K {
			t.Errorf("n=%d k=%d: max simultaneous %d, want %d", tc.n, tc.k, got, lay.K)
		}
	}
}

func TestHomeGroupPrefersSharedGroup(t *testing.T) {
	lay, _ := NewLayout(7, 3)
	// 0 and 1 share group 0.
	if g := lay.HomeGroup(0, 1); g != 0 {
		t.Errorf("HomeGroup(0,1) = %d, want 0", g)
	}
	// 3's only group is 1; dest 6 is elsewhere.
	if g := lay.HomeGroup(3, 6); g != 1 {
		t.Errorf("HomeGroup(3,6) = %d, want 1", g)
	}
	// Connector 4 (groups 1,2) with dest 0: forward group is 2.
	if g := lay.HomeGroup(4, 0); g != 2 {
		t.Errorf("HomeGroup(4,0) = %d, want 2", g)
	}
	// Connector 4 with dest 3: group 1 contains both.
	if g := lay.HomeGroup(4, 3); g != 1 {
		t.Errorf("HomeGroup(4,3) = %d, want 1", g)
	}
}

func run(t *testing.T, n, k int, adv core.Adversary, rounds int64) *metrics.Tracker {
	t.Helper()
	sys, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	tr := metrics.NewTracker()
	tr.SampleEvery = 256
	sim := core.NewSim(sys, adv, core.Options{Strict: true, CheckEvery: 1009, Tracker: tr})
	if err := sim.Run(rounds); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestStableBelowCriticalRate(t *testing.T) {
	// n=7, k=3: stable for ρ < (k−1)/(n−1) = 1/3. Use ρ = 1/4.
	tr := run(t, 7, 3, adversary.New(adversary.T(1, 4, 2), adversary.Uniform(7, 42)), 80000)
	if !tr.LooksStable() {
		t.Errorf("unstable at ρ=1/4 < 1/3:\n%s", tr.Summary())
	}
	if tr.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if len(tr.Violations) > 0 {
		t.Errorf("violations: %v", tr.Violations)
	}
}

func TestLatencyWithinPaperBound(t *testing.T) {
	// Paper: latency ≤ (32+β)·n for ρ < (k−1)/(n−1).
	n, beta := 7, int64(2)
	tr := run(t, n, 3, adversary.New(adversary.T(1, 4, 2), adversary.Uniform(n, 7)), 80000)
	bound := (32 + beta) * int64(n)
	if tr.MaxLatency > bound {
		t.Errorf("max latency %d exceeds paper bound %d:\n%s", tr.MaxLatency, bound, tr.Summary())
	}
}

func TestDrainsCompletely(t *testing.T) {
	n := 7
	adv := adversary.New(adversary.T(1, 5, 2),
		adversary.Stop(adversary.Uniform(n, 11), 30000))
	tr := run(t, n, 3, adv, 60000)
	if tr.Pending() != 0 {
		t.Errorf("pending = %d after drain:\n%s", tr.Pending(), tr.Summary())
	}
}

func TestMultiHopForwarding(t *testing.T) {
	// Packets from station 1 (group 0) to station 5 (group 2) must cross
	// groups; verify they arrive.
	n := 7
	adv := adversary.New(adversary.T(1, 8, 1),
		adversary.Stop(adversary.SingleTarget(1, 5), 20000))
	tr := run(t, n, 3, adv, 60000)
	if tr.Pending() != 0 {
		t.Errorf("multi-hop packets stuck: pending=%d\n%s", tr.Pending(), tr.Summary())
	}
	if tr.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestBackwardDestination(t *testing.T) {
	// Station 5 (group 2) to station 1 (group 0): must wrap through the
	// last group and around.
	n := 7
	adv := adversary.New(adversary.T(1, 8, 1),
		adversary.Stop(adversary.SingleTarget(5, 1), 20000))
	tr := run(t, n, 3, adv, 80000)
	if tr.Pending() != 0 {
		t.Errorf("backward packets stuck: pending=%d", tr.Pending())
	}
}

func TestSelfAddressed(t *testing.T) {
	n := 7
	adv := adversary.New(adversary.T(1, 8, 1),
		adversary.Stop(adversary.SingleTarget(4, 4), 10000))
	tr := run(t, n, 3, adv, 40000)
	if tr.Pending() != 0 {
		t.Errorf("self-addressed stuck: pending=%d", tr.Pending())
	}
}

func TestConnectorInjection(t *testing.T) {
	// Packets injected directly into a connector station (4 in groups 1,2).
	n := 7
	adv := adversary.New(adversary.T(1, 8, 1),
		adversary.Stop(adversary.HotSource(4, n), 20000))
	tr := run(t, n, 3, adv, 80000)
	if tr.Pending() != 0 {
		t.Errorf("connector packets stuck: pending=%d", tr.Pending())
	}
}

func TestUnstableAboveObliviousCeiling(t *testing.T) {
	// Theorem 6: any k-oblivious algorithm is unstable for ρ > k/n.
	// n=7, k=3: ceiling 3/7; inject at ρ = 1/2 > 3/7 into the least-on
	// station.
	n, k := 7, 3
	sys, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.LeastOn(sys.Schedule, adversary.T(1, 2, 1))
	tr := metrics.NewTracker()
	tr.SampleEvery = 256
	sim := core.NewSim(sys, adv, core.Options{Strict: true, CheckEvery: 2003, Tracker: tr})
	if err := sim.Run(100000); err != nil {
		t.Fatal(err)
	}
	if tr.LooksStable() {
		t.Errorf("unexpectedly stable above k/n:\n%s", tr.Summary())
	}
	if tr.QueueSlope() <= 0 {
		t.Errorf("queue slope %f not positive", tr.QueueSlope())
	}
}

func TestConcentratedFloodCrossesAtActivityFraction(t *testing.T) {
	// Reproduction finding (EXPERIMENTS.md): Theorem 5 claims stability
	// for ρ < (k−1)/(n−1), but a station is only on during its group's
	// activity — a 1/ℓ fraction of rounds, and 1/ℓ ≈ (k−1)/n is strictly
	// below the claimed threshold whenever the wrap group exists. Under a
	// single-station flood the measured crossover sits at 1/ℓ: for n=7,
	// k=3 (ℓ=4, claimed threshold 1/3) the flood is absorbed at ρ=1/5 and
	// overwhelms the station at ρ=3/10 < 1/3, with queue growth matching
	// ρ − 1/ℓ.
	stableAt := func(num, den int64) (bool, float64) {
		sys, err := New(7, 3)
		if err != nil {
			t.Fatal(err)
		}
		adv := adversary.New(adversary.T(num, den, 2), adversary.SingleTarget(3, 6))
		tr := metrics.NewTracker()
		tr.SampleEvery = 512
		sim := core.NewSim(sys, adv, core.Options{Strict: true, Tracker: tr})
		if err := sim.Run(400000); err != nil {
			t.Fatal(err)
		}
		return tr.LooksStable(), tr.QueueSlope()
	}
	if ok, slope := stableAt(1, 5); !ok {
		t.Errorf("concentrated flood at ρ=1/5 < 1/ℓ should be absorbed (slope %f)", slope)
	}
	ok, slope := stableAt(3, 10)
	if ok {
		t.Error("concentrated flood at ρ=3/10 ∈ (1/ℓ, (k−1)/(n−1)) should overwhelm the station")
	}
	// The growth rate is the injection rate minus the station's service
	// fraction: 3/10 − 1/4 = 0.05.
	if slope < 0.03 || slope > 0.07 {
		t.Errorf("growth slope %f, want ≈ ρ − 1/ℓ = 0.05", slope)
	}
}

func TestMinimalSystem(t *testing.T) {
	// n=3, k=2 is the smallest configuration.
	adv := adversary.New(adversary.T(1, 10, 1),
		adversary.Stop(adversary.Uniform(3, 3), 20000))
	tr := run(t, 3, 2, adv, 80000)
	if tr.Pending() != 0 {
		t.Errorf("n=3 pending = %d:\n%s", tr.Pending(), tr.Summary())
	}
}

func TestReplicaRingsConsistent(t *testing.T) {
	n, k := 9, 4
	sys, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.New(adversary.T(1, 4, 2), adversary.Uniform(n, 5))
	sim := core.NewSim(sys, adv, core.Options{Strict: true})
	lay := sys.Stations[0].(*station).lay
	for r := 0; r < 5000; r++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		// All members of each group agree on that group's ring.
		for g := 0; g < lay.L; g++ {
			first := sys.Stations[lay.members[g][0]].(*station)
			ref := first.rings[first.local(g)]
			for _, m := range lay.members[g][1:] {
				st := sys.Stations[m].(*station)
				if !st.rings[st.local(g)].Equal(ref) {
					t.Fatalf("round %d: ring replicas for group %d diverged", r, g)
				}
			}
		}
	}
}
