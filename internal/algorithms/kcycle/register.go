package kcycle

import "earmac/internal/registry"

func init() {
	registry.RegisterAlgorithm("k-cycle", registry.AlgorithmMeta{
		Summary:     "round-robin group cycle, O(n) latency for ρ < (k−1)/(n−1)",
		Theorem:     "Thm 5",
		UsesK:       true,
		PlainPacket: true,
		Oblivious:   true,
		MinN:        3,
		MinK:        2,
		// Over-range k is clamped to 2k ≤ n+1 per the paper, not rejected.
	}, New)
}
