// Package ksubsets implements algorithm k-Subsets (paper §6): a
// k-energy-oblivious direct-routing algorithm that is stable at injection
// rate k(k−1)/(n(n−1)) — the maximum any k-oblivious direct algorithm can
// achieve (Theorem 9) — with at most 2·C(n,k)·(n²+β) queued packets
// (Theorem 8).
//
// Fix the lexicographic enumeration A_0, …, A_{γ−1} of all γ = C(n,k)
// k-element subsets of the stations. Rounds i + jγ form thread i; during
// thread i's rounds exactly the stations of A_i are on — a fixed schedule,
// hence oblivious. Each thread runs an independent replica-consistent
// instance of Move-Big-To-Front [17] over its k members with per-thread
// queues. Time is grouped into phases of γ rounds; at each phase start a
// station allocates the packets injected during the previous phase to
// threads: per destination w, as balanced as possible (counts differing
// by at most 1) across the C(n−2,k−2) threads containing both endpoints.
//
// With MBTF inside, packets can starve (Table 1: latency ∞); the paper
// notes that substituting Round-Robin-Withholding [18] yields bounded
// latency Θ(γ(n+β)) for rates strictly below critical. NewRRW builds that
// variant, which is moreover plain-packet.
package ksubsets

import (
	"fmt"
	"math/big"

	"earmac/internal/broadcast"
	"earmac/internal/core"
	"earmac/internal/mac"
	"earmac/internal/pktq"
	"earmac/internal/sched"
)

// MaxThreads caps γ = C(n,k); configurations beyond it are rejected
// (thread state is per-station, so memory grows as n·γ).
const MaxThreads = 1 << 17

// Layout is the static thread structure.
type Layout struct {
	N, K    int
	Gamma   int
	members [][]int  // thread → sorted member stations
	mask    []uint64 // thread → membership bitmask (n ≤ 64)

	threadsOf [][]int32 // station → thread indices containing it
	eligible  [][]int32 // v*n+w → threads containing both v and w
}

// Binomial returns C(n, k) or MaxThreads+1 if it overflows the cap.
func Binomial(n, k int) int {
	var b big.Int
	b.Binomial(int64(n), int64(k))
	if !b.IsInt64() || b.Int64() > MaxThreads {
		return MaxThreads + 1
	}
	return int(b.Int64())
}

// NewLayout enumerates the k-subsets of [0,n).
func NewLayout(n, k int) (*Layout, error) {
	if n < 2 || n > 64 {
		return nil, fmt.Errorf("ksubsets: need 2 <= n <= 64, got %d", n)
	}
	if k < 2 || k > n {
		return nil, fmt.Errorf("ksubsets: need 2 <= k <= n, got k=%d n=%d", k, n)
	}
	gamma := Binomial(n, k)
	if gamma > MaxThreads {
		return nil, fmt.Errorf("ksubsets: C(%d,%d) exceeds the %d-thread cap", n, k, MaxThreads)
	}
	lay := &Layout{
		N: n, K: k, Gamma: gamma,
		members:   make([][]int, 0, gamma),
		mask:      make([]uint64, 0, gamma),
		threadsOf: make([][]int32, n),
		eligible:  make([][]int32, n*n),
	}
	// Lexicographic enumeration.
	comb := make([]int, k)
	for i := range comb {
		comb[i] = i
	}
	for {
		m := make([]int, k)
		copy(m, comb)
		var bits uint64
		for _, s := range m {
			bits |= 1 << uint(s)
		}
		idx := int32(len(lay.members))
		lay.members = append(lay.members, m)
		lay.mask = append(lay.mask, bits)
		for _, s := range m {
			lay.threadsOf[s] = append(lay.threadsOf[s], idx)
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && comb[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		comb[i]++
		for j := i + 1; j < k; j++ {
			comb[j] = comb[j-1] + 1
		}
	}
	if len(lay.members) != gamma {
		panic("ksubsets: enumeration mismatch")
	}
	for v := 0; v < n; v++ {
		for w := 0; w < n; w++ {
			var el []int32
			for _, t := range lay.threadsOf[v] {
				if lay.mask[t]&(1<<uint(w)) != 0 {
					el = append(el, t)
				}
			}
			lay.eligible[v*n+w] = el
		}
	}
	return lay, nil
}

// Eligible returns the threads containing both v and w.
func (l *Layout) Eligible(v, w int) []int32 { return l.eligible[v*l.N+w] }

// ActiveThread returns the thread on duty in the given round.
func (l *Layout) ActiveThread(round int64) int32 {
	return int32(round % int64(l.Gamma))
}

// Schedule returns the oblivious on/off schedule (period γ).
func (l *Layout) Schedule() sched.Schedule {
	return sched.Func{
		N: l.N,
		P: int64(l.Gamma),
		F: func(st int, round int64) bool {
			return l.mask[l.ActiveThread(round)]&(1<<uint(st)) != 0
		},
	}
}

// threadEngine abstracts the per-thread token machinery so the MBTF and
// RRW variants share the station logic.
type threadEngine interface {
	Holder() int
	ObserveHeard(ctrl mac.Control)
	ObserveSilence()
	// BigBit returns the control bits to attach given the holder's queue
	// length, or nil for the plain-packet variant.
	BigBit(queueLen int) mac.Control
	// SkipSilences batch-applies m ObserveSilence transitions — the
	// quiescence engine's closed form for idle stretches, where every
	// holder is empty and every thread round is silent.
	SkipSilences(m int64)
}

// mbtfEngine reuses one control buffer across rounds: receivers read the
// big bit synchronously from the feedback and never retain it (see
// DESIGN.md on pooling invariants).
type mbtfEngine struct {
	m    *broadcast.MBTF
	ctrl mac.Control
}

func newMBTFEngine(members []int) *mbtfEngine {
	return &mbtfEngine{m: broadcast.NewMBTF(members), ctrl: mac.MakeControl(1)}
}

func (e *mbtfEngine) Holder() int                   { return e.m.Holder() }
func (e *mbtfEngine) ObserveHeard(ctrl mac.Control) { e.m.ObserveHeard(ctrl.Bit(0)) }
func (e *mbtfEngine) ObserveSilence()               { e.m.ObserveSilence() }
func (e *mbtfEngine) BigBit(queueLen int) mac.Control {
	e.ctrl.SetBit(0, queueLen >= e.m.Threshold())
	return e.ctrl
}
func (e *mbtfEngine) SkipSilences(m int64) { e.m.SkipSilences(m) }

type rrwEngine struct{ r *broadcast.Ring }

func (e rrwEngine) Holder() int              { return e.r.Holder() }
func (e rrwEngine) ObserveHeard(mac.Control) { e.r.ObserveHeard() }
func (e rrwEngine) ObserveSilence()          { e.r.ObserveSilence() }
func (e rrwEngine) BigBit(int) mac.Control   { return nil }
func (e rrwEngine) SkipSilences(m int64)     { e.r.SkipSilences(m) }

type station struct {
	id  int
	lay *Layout

	// The station's thread-local state is laid out densely in membership
	// order (threads = lay.threadsOf[id], sorted ascending). The active
	// thread visits 0..γ−1 in round order, so a cursor into the sorted
	// membership list replaces a per-round map lookup: the station is on
	// duty exactly when the active thread equals threads[cursor].
	threads []int32
	engines []threadEngine
	queues  []*pktq.Queue
	localOf map[int32]int // global thread → membership index (cold paths)
	cursor  int

	staging  []mac.Packet    // injected this phase, allocated at next boundary
	counters map[int][]int64 // dest → per-eligible-thread allocation counts

	curPhase  int64
	pendingTx int64
}

func newStation(id int, lay *Layout, rrw bool) *station {
	threads := lay.threadsOf[id]
	s := &station{
		id: id, lay: lay,
		threads:   threads,
		engines:   make([]threadEngine, len(threads)),
		queues:    make([]*pktq.Queue, len(threads)),
		localOf:   make(map[int32]int, len(threads)),
		counters:  make(map[int][]int64),
		curPhase:  -1,
		pendingTx: -1,
	}
	for i, t := range threads {
		if rrw {
			s.engines[i] = rrwEngine{broadcast.NewRing(lay.members[t])}
		} else {
			s.engines[i] = newMBTFEngine(lay.members[t])
		}
		s.queues[i] = pktq.New(lay.N)
		s.localOf[t] = i
	}
	return s
}

func (s *station) Inject(p mac.Packet) { s.staging = append(s.staging, p) }

// allocate distributes the previous phase's packets to threads, balanced
// per destination (the counters of eligible threads differ by at most 1).
func (s *station) allocate() {
	for _, p := range s.staging {
		el := s.lay.Eligible(s.id, p.Dest)
		cnt, ok := s.counters[p.Dest]
		if !ok {
			cnt = make([]int64, len(el))
			s.counters[p.Dest] = cnt
		}
		best := 0
		for i := 1; i < len(cnt); i++ {
			if cnt[i] < cnt[best] {
				best = i
			}
		}
		cnt[best]++
		s.queues[s.localOf[el[best]]].Push(p)
	}
	s.staging = s.staging[:0]
}

func (s *station) Act(round int64) core.Action {
	phase := round / int64(s.lay.Gamma)
	if phase != s.curPhase {
		s.curPhase = phase
		s.cursor = 0
		s.allocate()
	}
	s.pendingTx = -1
	t := s.lay.ActiveThread(round)
	for s.cursor < len(s.threads) && s.threads[s.cursor] < t {
		s.cursor++
	}
	if s.cursor >= len(s.threads) || s.threads[s.cursor] != t {
		return core.Off()
	}
	eng := s.engines[s.cursor]
	if eng.Holder() != s.id {
		return core.Listen()
	}
	q := s.queues[s.cursor]
	front, ok := q.Front()
	if !ok {
		return core.Listen()
	}
	s.pendingTx = front.ID
	return core.Transmit(mac.Message{HasPacket: true, Packet: front, Ctrl: eng.BigBit(q.Len())})
}

func (s *station) Observe(round int64, fb mac.Feedback) {
	// Observe is only called for switched-on rounds, when Act left the
	// cursor on the active thread.
	eng := s.engines[s.cursor]
	switch fb.Kind {
	case mac.FbHeard:
		if s.pendingTx >= 0 {
			s.queues[s.cursor].Remove(s.pendingTx)
			s.pendingTx = -1
		}
		eng.ObserveHeard(fb.Msg.Ctrl)
	case mac.FbSilence:
		eng.ObserveSilence()
	}
}

func (s *station) QueueLen() int {
	total := len(s.staging)
	for _, q := range s.queues {
		total += q.Len()
	}
	return total
}

// Quiescent implements mac.Skipper: with nothing staged or queued, every
// on-duty round finds an empty holder — the station listens and the only
// engine transition is ObserveSilence.
func (s *station) Quiescent() bool {
	if len(s.staging) != 0 || s.pendingTx >= 0 {
		return false
	}
	for _, q := range s.queues {
		if q.Len() != 0 {
			return false
		}
	}
	return true
}

// countCongruent counts rounds r in [from, to) with r % mod == res.
func countCongruent(from, to, mod, res int64) int64 {
	f := func(x int64) int64 {
		if x <= res {
			return 0
		}
		return (x-res-1)/mod + 1
	}
	return f(to) - f(from)
}

// SkipIdle implements mac.Skipper: each membership's engine saw one
// silence per round its thread was on duty, and curPhase/cursor take
// their exact post-Act(to−1) values. The phase must NOT be left stale:
// a wake-up round injects before it acts, and a stale phase would make
// Act allocate the fresh packet a phase early instead of staging it
// until the next real boundary.
func (s *station) SkipIdle(from, to int64) {
	g := int64(s.lay.Gamma)
	for i, t := range s.threads {
		if m := countCongruent(from, to, g, int64(t)); m > 0 {
			s.engines[i].SkipSilences(m)
		}
	}
	s.curPhase = (to - 1) / g
	t := int32((to - 1) % g)
	s.cursor = 0
	for s.cursor < len(s.threads) && s.threads[s.cursor] < t {
		s.cursor++
	}
}

func (s *station) HeldPackets() []mac.Packet {
	out := make([]mac.Packet, 0, s.QueueLen())
	out = append(out, s.staging...)
	for _, q := range s.queues {
		out = q.AppendTo(out)
	}
	return out
}

func build(n, k int, rrw bool) (*core.System, error) {
	lay, err := NewLayout(n, k)
	if err != nil {
		return nil, err
	}
	stations := make([]core.Protocol, n)
	for i := 0; i < n; i++ {
		stations[i] = newStation(i, lay, rrw)
	}
	name := fmt.Sprintf("%d-subsets", k)
	if rrw {
		name += "-rrw"
	}
	return &core.System{
		Info: core.AlgorithmInfo{
			Name:        name,
			EnergyCap:   k,
			PlainPacket: rrw,
			Direct:      true,
			Oblivious:   true,
		},
		Stations: stations,
		Schedule: lay.Schedule(),
		// Idle rounds: the k members of the active thread listen in
		// silence (empty holders never transmit).
		Idle: core.ConstIdle{Energy: k},
	}, nil
}

// New builds the k-Subsets system with MBTF inside each thread — maximum
// throughput k(k−1)/(n(n−1)), latency possibly unbounded.
func New(n, k int) (*core.System, error) { return build(n, k, false) }

// NewRRW builds the plain-packet RRW variant — bounded latency for rates
// strictly below k(k−1)/(n(n−1)).
func NewRRW(n, k int) (*core.System, error) { return build(n, k, true) }
