package ksubsets

import (
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/mac"
	"earmac/internal/metrics"
	"earmac/internal/sched"
)

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{6, 3, 20}, {5, 2, 10}, {8, 4, 70}, {4, 4, 1}, {10, 2, 45},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	if got := Binomial(60, 30); got <= MaxThreads {
		t.Error("huge binomial should exceed cap")
	}
}

func TestLayoutValidation(t *testing.T) {
	if _, err := NewLayout(70, 3); err == nil {
		t.Error("n>64 accepted")
	}
	if _, err := NewLayout(6, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewLayout(40, 20); err == nil {
		t.Error("overlarge γ accepted")
	}
}

func TestLayoutEnumeration(t *testing.T) {
	lay, err := NewLayout(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Gamma != 6 {
		t.Fatalf("γ = %d, want 6", lay.Gamma)
	}
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for i, w := range want {
		got := lay.members[i]
		if len(got) != 2 || got[0] != w[0] || got[1] != w[1] {
			t.Errorf("A_%d = %v, want %v", i, got, w)
		}
	}
	// Each station is in C(3,1) = 3 threads.
	for v := 0; v < 4; v++ {
		if len(lay.threadsOf[v]) != 3 {
			t.Errorf("station %d in %d threads", v, len(lay.threadsOf[v]))
		}
	}
}

func TestEligibleThreads(t *testing.T) {
	lay, _ := NewLayout(5, 3)
	// Eligible(v,w) for v≠w has C(n−2,k−2) = C(3,1) = 3 threads, each
	// containing both.
	for v := 0; v < 5; v++ {
		for w := 0; w < 5; w++ {
			el := lay.Eligible(v, w)
			wantLen := 3
			if v == w {
				wantLen = 6 // C(4,2): threads containing v
			}
			if len(el) != wantLen {
				t.Errorf("Eligible(%d,%d) has %d threads, want %d", v, w, len(el), wantLen)
			}
			for _, th := range el {
				if lay.mask[th]&(1<<uint(v)) == 0 || lay.mask[th]&(1<<uint(w)) == 0 {
					t.Errorf("thread %d in Eligible(%d,%d) misses an endpoint", th, v, w)
				}
			}
		}
	}
}

func TestScheduleRespectsCap(t *testing.T) {
	lay, _ := NewLayout(6, 3)
	if err := sched.Validate(lay.Schedule(), 3); err != nil {
		t.Error(err)
	}
	if got := sched.MaxSimultaneous(lay.Schedule()); got != 3 {
		t.Errorf("max on = %d, want 3", got)
	}
	// Double counting: every station is on in exactly C(n−1,k−1)/γ of the
	// rounds = k/n.
	counts := sched.OnCounts(lay.Schedule())
	for v, c := range counts {
		if c != 10 { // C(5,2)
			t.Errorf("station %d on %d rounds per period, want 10", v, c)
		}
	}
}

func run(t *testing.T, sys *core.System, adv core.Adversary, rounds int64) *metrics.Tracker {
	t.Helper()
	tr := metrics.NewTracker()
	tr.SampleEvery = 256
	sim := core.NewSim(sys, adv, core.Options{Strict: true, CheckEvery: 2003, Tracker: tr})
	if err := sim.Run(rounds); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestStableAtCriticalRate(t *testing.T) {
	// Theorem 8: stable at exactly ρ = k(k−1)/(n(n−1)). n=6, k=3: ρ = 1/5.
	n, k := 6, 3
	sys, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	tr := run(t, sys, adversary.New(adversary.T(1, 5, 2), adversary.Uniform(n, 42)), 150000)
	if !tr.LooksStable() {
		t.Errorf("unstable at the critical rate 1/5:\n%s", tr.Summary())
	}
	bound := 2 * 20 * int64(n*n+2) // 2·C(n,k)·(n²+β)
	if tr.MaxQueue > bound {
		t.Errorf("max queue %d exceeds Theorem 8 bound %d", tr.MaxQueue, bound)
	}
	if len(tr.Violations) > 0 {
		t.Errorf("violations: %v", tr.Violations)
	}
}

func TestUnstableAboveCriticalRate(t *testing.T) {
	// Theorem 9: ρ = 1/4 > 1/5 against the least co-scheduled pair.
	n, k := 6, 3
	sys, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.LeastPair(sys.Schedule, adversary.T(1, 4, 1))
	tr := run(t, sys, adv, 120000)
	if tr.LooksStable() {
		t.Errorf("unexpectedly stable above critical rate:\n%s", tr.Summary())
	}
	if tr.QueueSlope() <= 0 {
		t.Errorf("queue slope %f not positive", tr.QueueSlope())
	}
}

func TestDrainsCompletely(t *testing.T) {
	n, k := 5, 3
	sys, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.New(adversary.T(1, 12, 2),
		adversary.Stop(adversary.Uniform(n, 11), 40000))
	tr := run(t, sys, adv, 120000)
	if tr.Pending() != 0 {
		t.Errorf("pending = %d after drain:\n%s", tr.Pending(), tr.Summary())
	}
}

func TestRRWVariantDrainsAndIsPlainPacket(t *testing.T) {
	n, k := 5, 3
	sys, err := NewRRW(n, k)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Info.PlainPacket {
		t.Error("RRW variant must be plain-packet")
	}
	adv := adversary.New(adversary.T(1, 12, 2),
		adversary.Stop(adversary.Uniform(n, 13), 40000))
	tr := run(t, sys, adv, 120000)
	if tr.Pending() != 0 {
		t.Errorf("pending = %d after drain:\n%s", tr.Pending(), tr.Summary())
	}
	if tr.ControlBits != 0 {
		t.Errorf("plain-packet variant sent %d control bits", tr.ControlBits)
	}
}

func TestRRWVariantStableBelowCritical(t *testing.T) {
	// RRW inside threads: stable strictly below critical (1/5); use 1/6.
	n, k := 6, 3
	sys, err := NewRRW(n, k)
	if err != nil {
		t.Fatal(err)
	}
	tr := run(t, sys, adversary.New(adversary.T(1, 6, 2), adversary.Uniform(n, 7)), 150000)
	if !tr.LooksStable() {
		t.Errorf("RRW variant unstable at 1/6:\n%s", tr.Summary())
	}
}

func TestBalancedAllocation(t *testing.T) {
	// After many injections to one destination, the per-thread counters of
	// that (src, dest) pair differ by at most 1 (the paper's balance
	// property).
	lay, _ := NewLayout(6, 3)
	s := newStation(0, lay, false)
	for i := 0; i < 101; i++ {
		s.Inject(pktFor(int64(i), 0, 4))
	}
	s.curPhase = 0
	s.allocate()
	cnt := s.counters[4]
	min, max := cnt[0], cnt[0]
	for _, c := range cnt {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Errorf("allocation unbalanced: min=%d max=%d", min, max)
	}
	var total int64
	for _, c := range cnt {
		total += c
	}
	if total != 101 {
		t.Errorf("allocated %d packets, want 101", total)
	}
}

func TestSelfAddressed(t *testing.T) {
	n, k := 5, 2
	sys, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.New(adversary.T(1, 20, 1),
		adversary.Stop(adversary.SingleTarget(3, 3), 20000))
	tr := run(t, sys, adv, 80000)
	if tr.Pending() != 0 {
		t.Errorf("self-addressed stuck: pending=%d", tr.Pending())
	}
}

func TestFullSetSingleThread(t *testing.T) {
	// k = n degenerates to one thread: plain MBTF, always on.
	n := 4
	sys, err := New(n, n)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.New(adversary.T(1, 2, 1),
		adversary.Stop(adversary.Uniform(n, 9), 10000))
	tr := run(t, sys, adv, 30000)
	if tr.Pending() != 0 {
		t.Errorf("pending = %d", tr.Pending())
	}
}

func pktFor(id int64, src, dest int) mac.Packet {
	return mac.Packet{ID: id, Src: src, Dest: dest}
}
