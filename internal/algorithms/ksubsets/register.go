package ksubsets

import "earmac/internal/registry"

func init() {
	registry.RegisterAlgorithm("k-subsets", registry.AlgorithmMeta{
		Summary:   "all C(n,k) subsets in cyclic order, stable at ρ = k(k−1)/(n(n−1))",
		Theorem:   "Thm 8",
		UsesK:     true,
		Direct:    true,
		Oblivious: true,
		MinN:      2,
		MaxN:      64,
		MinK:      2,
		KStrict:   true,
	}, New)
	registry.RegisterAlgorithm("k-subsets-rrw", registry.AlgorithmMeta{
		Summary:     "k-subsets with plain-packet round-robin withholding inside each subset",
		Theorem:     "Thm 8",
		UsesK:       true,
		PlainPacket: true,
		Direct:      true,
		Oblivious:   true,
		MinN:        2,
		MaxN:        64,
		MinK:        2,
		KStrict:     true,
	}, NewRRW)
}
