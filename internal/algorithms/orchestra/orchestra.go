// Package orchestra implements algorithm Orchestra (paper §3.1): a
// direct-routing algorithm with energy cap 3 that is stable at the
// maximum injection rate 1, keeping at most 2n³ + β packets queued
// (Theorem 1). By Theorem 2 the cap 3 is optimal: cap 2 cannot sustain
// rate 1.
//
// Time is divided into seasons of n−1 rounds. One station per season, the
// conductor, transmits in every round; the remaining stations (musicians)
// switch on only to learn (one round per season each, in name order) or
// to receive a packet (per the schedule the same conductor taught them in
// its previous conducting season) — so at most three stations are on in a
// round: conductor, learner, receiver.
//
// At the start of its conducting season, a conductor computes from its
// old, not-yet-scheduled packets (in injection order, up to n−1 of them)
// the schedule for its *next* conducting season, and teaches it during
// the current season: the message of round j carries, as control bits,
// the receive-round mask for the j-th musician plus a toggle bit
// announcing whether the conductor is big (≥ n²−1 old packets). Big
// conductors are moved to the front of the replicated baton list at
// season end and keep the baton while big; otherwise the baton passes to
// the next station in cyclic list order.
//
// Packets injected into the conductor stay new for the season (they only
// become schedulable afterwards); packets injected into musicians are old
// immediately. The receive-round mask needs n−1 control bits per message,
// more than the paper's O(log n) budget — an encoding the paper leaves
// open; see DESIGN.md §4.
package orchestra

import (
	"fmt"

	"earmac/internal/batonlist"
	"earmac/internal/core"
	"earmac/internal/mac"
	"earmac/internal/pktq"
)

type station struct {
	id, n int

	list *batonlist.List // replicated baton list

	staging []mac.Packet // injected this round, classified on next Act
	pending *pktq.Queue  // old packets not yet scheduled (injection order)
	fresh   []mac.Packet // injected while conducting: new for the season

	sigmaCur  []mac.Packet // schedule executing in my current/next conducting season
	delivered int          // prefix of sigmaCur already delivered
	sigmaNext []mac.Packet // schedule being taught this conducting season

	taught     map[int][]bool // conductor → receive mask for its next conducting season
	activeMask []bool         // snapshot of taught[conductor] for the current season
	// maskBufs double-buffers the taught masks per conductor: a mask is
	// written during one of the conductor's seasons and read (as
	// activeMask) during the next, so two buffers per conductor suffice
	// and learning allocates nothing in steady state.
	maskBufs map[int]*[2][]bool
	maskFlip map[int]int

	ctrl mac.Control // conductor's reused teaching-message buffer

	curSeason   int64
	announceBig bool // conductor: my big status this season
	seasonBig   bool // learned/own big status, applied to the list at season end
	pendingTx   bool
}

// New builds an Orchestra system for n ≥ 2 stations.
func New(n int) (*core.System, error) {
	if n < 2 {
		return nil, fmt.Errorf("orchestra: need n >= 2, got %d", n)
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	stations := make([]core.Protocol, n)
	for i := 0; i < n; i++ {
		stations[i] = &station{
			id: i, n: n,
			ctrl:      mac.MakeControl(1 + n - 1),
			maskBufs:  make(map[int]*[2][]bool),
			maskFlip:  make(map[int]int),
			list:      batonlist.New(ids),
			pending:   pktq.New(n),
			taught:    make(map[int][]bool),
			curSeason: -1,
		}
	}
	return &core.System{
		Info: core.AlgorithmInfo{
			Name:      "orchestra",
			EnergyCap: 3,
			Direct:    true,
		},
		Stations: stations,
		// Idle rounds are light: the conductor transmits an all-zero
		// teaching message, the round's learner listens, and no receiver
		// is scheduled (all taught masks are provably all-false while
		// quiescent — see Quiescent).
		Idle: core.ConstIdle{
			Energy:   2,
			Light:    true,
			CtrlBits: stations[0].(*station).ctrl.Bits(),
		},
	}, nil
}

func (s *station) seasonLen() int64 { return int64(s.n - 1) }

// learnerOf returns the station learning in round j of a season: the j-th
// musician in name order given the current conductor.
func (s *station) learnerOf(j int64, conductor int) int {
	if int(j) < conductor {
		return int(j)
	}
	return int(j) + 1
}

func (s *station) Inject(p mac.Packet) { s.staging = append(s.staging, p) }

// drainStaging classifies packets injected this round: new if this
// station is currently conducting, old otherwise.
func (s *station) drainStaging() {
	if len(s.staging) == 0 {
		return
	}
	conducting := s.list.Holder() == s.id
	for _, p := range s.staging {
		if conducting {
			s.fresh = append(s.fresh, p)
		} else {
			s.pending.Push(p)
		}
	}
	s.staging = s.staging[:0]
}

func (s *station) endSeason() {
	if s.curSeason < 0 {
		return
	}
	wasConductor := s.list.Holder() == s.id
	if s.seasonBig {
		s.list.MoveHolderToFront()
	} else {
		s.list.Advance()
	}
	s.seasonBig = false
	if wasConductor {
		if s.delivered != len(s.sigmaCur) {
			panic(fmt.Sprintf("orchestra: station %d ends its season with %d/%d scheduled packets delivered",
				s.id, s.delivered, len(s.sigmaCur)))
		}
		// The outgoing sigmaCur is fully delivered: recycle its backing
		// array for the schedule drawn next season.
		s.sigmaCur, s.sigmaNext = s.sigmaNext, s.sigmaCur[:0]
		s.delivered = 0
		for _, p := range s.fresh {
			s.pending.Push(p)
		}
		s.fresh = s.fresh[:0]
	}
}

func (s *station) startSeason(season int64) {
	s.curSeason = season
	conductor := s.list.Holder()
	s.activeMask = nil
	s.announceBig = false
	if conductor != s.id {
		s.activeMask = s.taught[conductor]
		return
	}
	// Conducting: bigness is judged on old packets (pending plus packets
	// already scheduled but not delivered), then the next season's
	// schedule is drawn from the unscheduled old packets in injection
	// order.
	oldCount := s.pending.Len() + (len(s.sigmaCur) - s.delivered)
	s.announceBig = oldCount >= s.n*s.n-1
	s.seasonBig = s.announceBig
	slots := int(s.seasonLen())
	if s.pending.Len() < slots {
		slots = s.pending.Len()
	}
	s.sigmaNext = s.sigmaNext[:0]
	for i := 0; i < slots; i++ {
		p, _ := s.pending.PopFront()
		s.sigmaNext = append(s.sigmaNext, p)
	}
}

func (s *station) Act(round int64) core.Action {
	season := round / s.seasonLen()
	j := round % s.seasonLen()
	if season != s.curSeason {
		s.endSeason()
		s.startSeason(season)
	}
	s.drainStaging()
	s.pendingTx = false

	conductor := s.list.Holder()
	if s.id == conductor {
		// Control bits: toggle bit plus the learner's receive mask for my
		// next conducting season.
		learner := s.learnerOf(j, conductor)
		ctrl := s.ctrl
		for i := range ctrl {
			ctrl[i] = 0
		}
		ctrl.SetBit(0, s.announceBig)
		for slot, p := range s.sigmaNext {
			if p.Dest == learner {
				ctrl.SetBit(1+slot, true)
			}
		}
		if int(j) < len(s.sigmaCur) {
			s.pendingTx = true
			return core.Transmit(mac.Message{HasPacket: true, Packet: s.sigmaCur[j], Ctrl: ctrl})
		}
		return core.Transmit(mac.CtrlMsg(ctrl)) // light round
	}

	// Musician: on to learn in my learning round, on to receive per the
	// active mask.
	if s.learnerOf(j, conductor) == s.id {
		return core.Listen()
	}
	if s.activeMask != nil && s.activeMask[j] {
		return core.Listen()
	}
	return core.Off()
}

func (s *station) Observe(round int64, fb mac.Feedback) {
	if fb.Kind != mac.FbHeard {
		// The conductor transmits every round; silence or collision would
		// be a protocol bug.
		panic(fmt.Sprintf("orchestra: station %d observed %v", s.id, fb.Kind))
	}
	j := round % s.seasonLen()
	conductor := s.list.Holder()
	if s.id == conductor {
		if s.pendingTx {
			s.delivered++
			s.pendingTx = false
		}
		return
	}
	if s.learnerOf(j, conductor) == s.id {
		mask := s.nextMaskBuf(conductor)
		for slot := range mask {
			mask[slot] = fb.Msg.Ctrl.Bit(1 + slot)
		}
		s.taught[conductor] = mask
		if fb.Msg.Ctrl.Bit(0) {
			s.seasonBig = true
		}
	}
}

// nextMaskBuf returns the mask buffer to fill for the conductor's next
// season: the one not currently aliased by a possibly-active mask.
func (s *station) nextMaskBuf(conductor int) []bool {
	bufs := s.maskBufs[conductor]
	if bufs == nil {
		bufs = &[2][]bool{}
		s.maskBufs[conductor] = bufs
	}
	flip := 1 - s.maskFlip[conductor]
	s.maskFlip[conductor] = flip
	if bufs[flip] == nil {
		bufs[flip] = make([]bool, s.seasonLen())
	}
	return bufs[flip]
}

func (s *station) QueueLen() int {
	return len(s.staging) + s.pending.Len() + len(s.fresh) +
		(len(s.sigmaCur) - s.delivered) + len(s.sigmaNext)
}

// Quiescent implements mac.Skipper. Requiring len(sigmaCur) == 0 — not
// merely delivered == len(sigmaCur) — makes every taught mask provably
// all-false: a mask's set bits mirror the schedule that is now the
// teacher's sigmaCur, so empty schedules everywhere mean no musician is
// ever scheduled to receive, and idle learning rounds rewrite all-false
// masks with all-false masks (a write SkipIdle may therefore elide; the
// buffer-flip bookkeeping it also skips is unobservable). The conductor
// with a just-delivered schedule declines until its season ends.
func (s *station) Quiescent() bool {
	return len(s.staging) == 0 && s.pending.Len() == 0 && len(s.fresh) == 0 &&
		len(s.sigmaCur) == 0 && len(s.sigmaNext) == 0 &&
		!s.pendingTx && !s.announceBig && !s.seasonBig && s.curSeason >= 0
}

// SkipIdle implements mac.Skipper: each skipped season boundary advanced
// the baton by one (nobody is big while quiescent), and every idle
// round's remaining effects — empty-schedule drains, all-false mask
// writes — are no-ops on quiescent state. The final partial season's
// startSeason effects reduce to repointing the active mask.
func (s *station) SkipIdle(from, to int64) {
	sTo := (to - 1) / s.seasonLen()
	b := sTo - s.curSeason
	if b <= 0 {
		return
	}
	s.list.AdvanceBy(b)
	s.curSeason = sTo
	if h := s.list.Holder(); h == s.id {
		s.activeMask = nil
	} else {
		s.activeMask = s.taught[h]
	}
}

func (s *station) HeldPackets() []mac.Packet {
	out := make([]mac.Packet, 0, s.QueueLen())
	out = append(out, s.staging...)
	out = append(out, s.pending.Snapshot()...)
	out = append(out, s.fresh...)
	out = append(out, s.sigmaCur[s.delivered:]...)
	out = append(out, s.sigmaNext...)
	return out
}
