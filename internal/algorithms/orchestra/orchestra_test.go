package orchestra

import (
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/mac"
	"earmac/internal/metrics"
)

func run(t *testing.T, n int, adv core.Adversary, rounds int64) *metrics.Tracker {
	t.Helper()
	sys, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	tr := metrics.NewTracker()
	tr.SampleEvery = 256
	sim := core.NewSim(sys, adv, core.Options{Strict: true, CheckEvery: 1021, Tracker: tr})
	if err := sim.Run(rounds); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRejectsTinySystem(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("New(1) should fail")
	}
}

func TestStableAtRateOneUniform(t *testing.T) {
	// Theorem 1: stable at the maximum injection rate ρ = 1 with queues
	// bounded by 2n³ + β.
	n := 6
	beta := int64(2)
	tr := run(t, n, adversary.New(adversary.T(1, 1, beta), adversary.Uniform(n, 42)), 120000)
	if !tr.LooksStable() {
		t.Errorf("unstable at ρ=1:\n%s", tr.Summary())
	}
	bound := 2*int64(n)*int64(n)*int64(n) + beta
	if tr.MaxQueue > bound {
		t.Errorf("max queue %d exceeds Theorem 1 bound %d:\n%s", tr.MaxQueue, bound, tr.Summary())
	}
	if tr.MaxEnergy > 3 {
		t.Errorf("energy %d exceeds cap 3", tr.MaxEnergy)
	}
	if len(tr.Violations) > 0 {
		t.Errorf("violations: %v", tr.Violations)
	}
}

func TestStableAtRateOneSingleTarget(t *testing.T) {
	// All packets into one station: it becomes big, grabs the baton, and
	// conducts indefinitely — the move-big-to-front mechanism.
	n := 6
	tr := run(t, n, adversary.New(adversary.T(1, 1, 1), adversary.HotSource(3, n)), 120000)
	if !tr.LooksStable() {
		t.Errorf("unstable under single-source flood:\n%s", tr.Summary())
	}
	bound := 2*int64(n)*int64(n)*int64(n) + 1
	if tr.MaxQueue > bound {
		t.Errorf("max queue %d exceeds bound %d", tr.MaxQueue, bound)
	}
}

func TestStableAtRateOneRoundRobin(t *testing.T) {
	n := 5
	tr := run(t, n, adversary.New(adversary.T(1, 1, 1), adversary.RoundRobin(n)), 100000)
	if !tr.LooksStable() {
		t.Errorf("unstable under round-robin traffic:\n%s", tr.Summary())
	}
}

func TestBurstAbsorbed(t *testing.T) {
	n := 5
	beta := int64(30)
	tr := run(t, n, adversary.New(adversary.T(1, 2, beta),
		adversary.Bursty(adversary.Uniform(n, 13), 200)), 60000)
	if !tr.LooksStable() {
		t.Errorf("unstable under bursts:\n%s", tr.Summary())
	}
	bound := 2*int64(n)*int64(n)*int64(n) + beta
	if tr.MaxQueue > bound {
		t.Errorf("max queue %d exceeds bound %d", tr.MaxQueue, bound)
	}
}

func TestDrainsCompletely(t *testing.T) {
	n := 5
	adv := adversary.New(adversary.T(1, 2, 2),
		adversary.Stop(adversary.Uniform(n, 11), 30000))
	tr := run(t, n, adv, 90000)
	if tr.Pending() != 0 {
		t.Errorf("pending = %d after drain:\n%s", tr.Pending(), tr.Summary())
	}
}

func TestSelfAddressedDelivered(t *testing.T) {
	n := 4
	adv := adversary.New(adversary.T(1, 3, 1),
		adversary.Stop(adversary.SingleTarget(2, 2), 10000))
	tr := run(t, n, adv, 40000)
	if tr.Pending() != 0 {
		t.Errorf("self-addressed stuck: pending=%d", tr.Pending())
	}
}

func TestMinimalSystemN2(t *testing.T) {
	adv := adversary.New(adversary.T(1, 2, 1),
		adversary.Stop(adversary.Uniform(2, 5), 4000))
	tr := run(t, 2, adv, 16000)
	if tr.Pending() != 0 {
		t.Errorf("n=2 pending = %d:\n%s", tr.Pending(), tr.Summary())
	}
}

func TestStarvationUnderPermanentFlood(t *testing.T) {
	// Table 1 reports latency ∞ for Orchestra: a permanently big conductor
	// keeps the baton forever and other stations' packets starve. A burst
	// of β+1 packets makes station 0 big before station 4 conducts for the
	// second time; one victim packet at station 4 then waits forever.
	n := 6
	early := adversary.PatternFunc(func(round int64, budget int) []core.Injection {
		if round == 10 {
			return []core.Injection{{Station: 4, Dest: 5}}
		}
		injs := make([]core.Injection, budget)
		for i := range injs {
			injs[i] = core.Injection{Station: 0, Dest: 1 + int(round)%2}
		}
		return injs
	})
	sys, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	tr := metrics.NewTracker()
	sim := core.NewSim(sys, adversary.New(adversary.T(1, 1, 50), early), core.Options{Strict: true, Tracker: tr})
	if err := sim.Run(60000); err != nil {
		t.Fatal(err)
	}
	// Station 4 still holds its packet: the flooded station monopolizes
	// the channel. (Pending = that one packet plus whatever of the flood
	// is in flight; assert specifically that station 4 never delivered.)
	held := sys.Stations[4].(*station).HeldPackets()
	found := false
	for _, p := range held {
		if p.Dest == 5 {
			found = true
		}
	}
	if !found {
		t.Error("starvation expected: station 4's packet should still be queued while station 0 monopolizes the baton")
	}
}

func TestStableAgainstMaxQueueAdversary(t *testing.T) {
	// Theorem 1 is a worst-case claim: the adaptive adversary that always
	// injects into the currently-longest queue must also be absorbed.
	n := 6
	tr := run(t, n, adversary.NewMaxQueue(n, adversary.T(1, 1, 2)), 120000)
	if !tr.LooksStable() {
		t.Errorf("unstable against MaxQueue at ρ=1:\n%s", tr.Summary())
	}
	bound := 2*int64(n)*int64(n)*int64(n) + 2
	if tr.MaxQueue > bound {
		t.Errorf("max queue %d exceeds Theorem 1 bound %d", tr.MaxQueue, bound)
	}
}

func TestBatonReplicasStayConsistent(t *testing.T) {
	n := 6
	sys, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	adv := adversary.New(adversary.T(1, 1, 3), adversary.Uniform(n, 5))
	sim := core.NewSim(sys, adv, core.Options{Strict: true})
	seasonLen := int64(n - 1)
	for r := int64(0); r < 20000; r++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		// Lists are guaranteed identical at season boundaries (stations
		// update them lazily in Act, so compare right after a season's
		// first round has been processed by everyone).
		if (r+1)%seasonLen == 1 || seasonLen == 1 {
			ref := sys.Stations[0].(*station).list
			for i := 1; i < n; i++ {
				if !sys.Stations[i].(*station).list.Equal(ref) {
					t.Fatalf("round %d: baton list of station %d diverged:\n  %v\n  %v",
						r, i, ref, sys.Stations[i].(*station).list)
				}
			}
		}
	}
}

func TestLearnerMapping(t *testing.T) {
	s := &station{id: 0, n: 5}
	// Conductor 2: musicians in name order are 0,1,3,4.
	want := []int{0, 1, 3, 4}
	for j, w := range want {
		if got := s.learnerOf(int64(j), 2); got != w {
			t.Errorf("learnerOf(%d, conductor 2) = %d, want %d", j, got, w)
		}
	}
	// Conductor 0: musicians are 1,2,3,4.
	want = []int{1, 2, 3, 4}
	for j, w := range want {
		if got := s.learnerOf(int64(j), 0); got != w {
			t.Errorf("learnerOf(%d, conductor 0) = %d, want %d", j, got, w)
		}
	}
}

func TestLatencyBoundedBelowRateOne(t *testing.T) {
	// Below rate 1 Orchestra delivers everything with finite delay; check
	// the maximum delay stays well under the run length (i.e. no creeping
	// starvation at moderate rates).
	n := 5
	tr := run(t, n, adversary.New(adversary.T(1, 2, 1), adversary.Uniform(n, 21)), 80000)
	if !tr.LooksStable() {
		t.Errorf("unstable at ρ=1/2:\n%s", tr.Summary())
	}
	if tr.MaxLatency > 4000 {
		t.Errorf("max latency %d suspiciously high at ρ=1/2:\n%s", tr.MaxLatency, tr.Summary())
	}
}

func TestControlBitsAreBounded(t *testing.T) {
	// Every message carries at most 1 + (n−1) control bits (the toggle and
	// the teaching mask), rounded up to whole bytes.
	n := 6
	sys, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	tr := metrics.NewTracker()
	sim := core.NewSim(sys, adversary.New(adversary.T(1, 1, 1), adversary.Uniform(n, 3)),
		core.Options{Strict: true, Tracker: tr})
	if err := sim.Run(5000); err != nil {
		t.Fatal(err)
	}
	maxBitsPerMsg := int64((1 + n - 1 + 7) / 8 * 8)
	if tr.ControlBits > tr.HeardRounds*maxBitsPerMsg {
		t.Errorf("control bits %d exceed %d per message", tr.ControlBits, maxBitsPerMsg)
	}
	if tr.HeardRounds != tr.Rounds {
		t.Errorf("conductor must transmit every round: heard=%d rounds=%d", tr.HeardRounds, tr.Rounds)
	}
}

var _ = mac.Packet{} // keep the mac import for the starvation test's types
