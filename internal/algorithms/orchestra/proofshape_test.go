package orchestra

// Proof-shape test for Theorem 1. The proof partitions seasons into
// sparse and dense intervals (a season is dense when the queues at its
// start exceed D = n³−2n+1) and shows that during a dense interval only
// pre-big conductors can produce light rounds — at most (n−1)² each,
// (n−1)³ in total — no matter how long the interval lasts. This test
// drives a long dense interval and verifies the light-round budget is
// respected, i.e. the implementation realizes the mechanism the proof
// relies on, not just the final bound.

import (
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/mac"
	"earmac/internal/metrics"
)

// lightCounter tracks light rounds per dense interval, classifying
// seasons by the queue size at their first round.
type lightCounter struct {
	n         int
	sys       *core.System
	threshold int64

	inDense       bool
	currentLights int64
	maxLights     int64
	denseSeasons  int64
	lightsNow     int64 // lights in the season being accumulated
}

func (lc *lightCounter) TraceRound(round int64, actions []core.Action, fb mac.Feedback, delivered []mac.Packet) {
	seasonLen := int64(lc.n - 1)
	if round%seasonLen == 0 {
		// Season boundary: classify the season that starts now.
		dense := lc.sys.TotalQueue() > lc.threshold
		if dense {
			if !lc.inDense {
				lc.currentLights = 0
			}
			lc.inDense = true
			lc.denseSeasons++
		} else {
			if lc.inDense && lc.currentLights > lc.maxLights {
				lc.maxLights = lc.currentLights
			}
			lc.inDense = false
		}
	}
	if lc.inDense && fb.Kind == mac.FbHeard && fb.Msg.IsLight() {
		lc.currentLights++
		if lc.currentLights > lc.maxLights {
			lc.maxLights = lc.currentLights
		}
	}
}

func TestDenseIntervalLightRoundBudget(t *testing.T) {
	// n=5: D = 116, light budget (n−1)³ = 64. A β-burst of 200 packets
	// into one station opens a dense interval; ρ=1 keeps it dense for the
	// rest of the run. The number of light rounds inside the interval
	// must stay below the budget even though the interval spans tens of
	// thousands of rounds.
	n := 5
	sys, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	D := int64(n*n*n - 2*n + 1)
	lc := &lightCounter{n: n, sys: sys, threshold: D}

	pat := adversary.PatternFunc(func(round int64, budget int) []core.Injection {
		injs := make([]core.Injection, budget)
		for i := range injs {
			injs[i] = core.Injection{Station: 0, Dest: 1 + (int(round)+i)%(n-1)}
		}
		return injs
	})
	adv := adversary.New(adversary.T(1, 1, 200), pat)
	tr := metrics.NewTracker()
	sim := core.NewSim(sys, adv, core.Options{Strict: true, Tracker: tr, Tracer: lc})
	if err := sim.Run(60000); err != nil {
		t.Fatal(err)
	}
	if lc.denseSeasons < 1000 {
		t.Fatalf("dense interval too short to be meaningful: %d dense seasons (max queue %d, D=%d)",
			lc.denseSeasons, tr.MaxQueue, D)
	}
	budget := int64((n - 1) * (n - 1) * (n - 1))
	if lc.maxLights > budget {
		t.Errorf("a dense interval contained %d light rounds, above the proof's budget (n−1)³ = %d",
			lc.maxLights, budget)
	}
	t.Logf("dense seasons: %d; worst dense-interval light rounds: %d (budget %d)",
		lc.denseSeasons, lc.maxLights, budget)
}
