package orchestra

import (
	"earmac/internal/core"
	"earmac/internal/registry"
)

func init() {
	registry.RegisterAlgorithm("orchestra", registry.AlgorithmMeta{
		Summary:   "baton-list relay routing, stable at ρ = 1 on three stations' energy",
		Theorem:   "Thm 1",
		EnergyCap: 3,
		Direct:    true,
		MinN:      2,
	}, func(n, _ int) (*core.System, error) { return New(n) })
}
