// Package randmac implements a randomized slotted-ALOHA-style baseline
// under the paper's energy cap — NOT an algorithm from the paper, but the
// natural contender its determinism should be measured against (the
// repository's extension ablation; see DESIGN.md §5).
//
// In every round a pseudorandom set of k stations is switched on, drawn
// from a PRG seeded by the round number that is part of the algorithm's
// code — so the schedule is fixed in advance and the algorithm is
// k-energy-oblivious in the paper's sense, like k-Clique. A switched-on
// station holding a packet whose destination is also on transmits it with
// probability 1/k (the classic ALOHA gamble); collisions waste the round
// and everyone retries later. Routing is direct and plain-packet.
//
// Two inefficiencies compound, and the benchmarks quantify both: a given
// (src, dest) pair is co-scheduled only a k(k−1)/(n(n−1)) fraction of
// rounds (the same combinatorial ceiling as Theorem 9, but met here only
// in expectation), and contention loses a further 1/e-style factor to
// collisions — which the paper's deterministic token schedules avoid
// entirely.
package randmac

import (
	"fmt"
	"math/rand"

	"earmac/internal/core"
	"earmac/internal/mac"
	"earmac/internal/pktq"
	"earmac/internal/sched"
)

// period makes the pseudorandom schedule formally periodic (and thus a
// sched.Schedule); it is long enough that no experiment horizon wraps
// meaningfully.
const period = 1 << 14

// splitmix64 is the standard 64-bit mix, used to derive each round's
// on-set deterministically from the shared seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Layout is the shared pseudorandom schedule.
type Layout struct {
	N, K int
	Seed uint64
}

// NewLayout validates the configuration.
func NewLayout(n, k int, seed uint64) (*Layout, error) {
	if n < 2 {
		return nil, fmt.Errorf("randmac: need n >= 2, got %d", n)
	}
	if k < 2 || k > n {
		return nil, fmt.Errorf("randmac: need 2 <= k <= n, got k=%d", k)
	}
	return &Layout{N: n, K: k, Seed: seed}, nil
}

// OnSet returns the k stations switched on in the given round, identical
// across all replicas: the first k entries of a seeded Fisher-Yates
// shuffle of [0, n).
func (l *Layout) OnSet(round int64) []int {
	return l.OnSetInto(round, make([]int, l.N))
}

// OnSetInto computes OnSet into the caller's scratch slice (which must
// have length N) and returns its first K entries — the allocation-free
// variant used by the station hot path. The result aliases perm and is
// only valid until the next call with the same scratch.
func (l *Layout) OnSetInto(round int64, perm []int) []int {
	state := l.Seed ^ splitmix64(uint64(round%period)+1)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < l.K; i++ {
		state = splitmix64(state)
		j := i + int(state%uint64(l.N-i))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:l.K]
}

// Schedule returns the oblivious on/off schedule. The returned schedule
// reuses one internal scratch buffer and must not be queried from
// multiple goroutines concurrently (each simulation builds its own
// system, so this never happens in practice).
func (l *Layout) Schedule() sched.Schedule {
	scratch := make([]int, l.N)
	return sched.Func{
		N: l.N,
		P: period,
		F: func(st int, round int64) bool {
			for _, s := range l.OnSetInto(round, scratch) {
				if s == st {
					return true
				}
			}
			return false
		},
	}
}

type station struct {
	id   int
	lay  *Layout
	q    *pktq.Queue
	rng  *rand.Rand
	perm []int // OnSetInto scratch, reused every round

	pendingTx int64
}

func (s *station) Inject(p mac.Packet) { s.q.Push(p) }

func (s *station) Act(round int64) core.Action {
	s.pendingTx = -1
	onSet := s.lay.OnSetInto(round, s.perm)
	myTurn := false
	for _, st := range onSet {
		if st == s.id {
			myTurn = true
			break
		}
	}
	if !myTurn {
		return core.Off()
	}
	// Oldest packet whose destination is switched on right now (packet
	// IDs increase with injection order).
	var best mac.Packet
	found := false
	for _, d := range onSet {
		if p, ok := s.q.FrontTo(d); ok && (!found || p.ID < best.ID) {
			best, found = p, true
		}
	}
	if !found {
		return core.Listen()
	}
	// The ALOHA gamble: transmit with probability 1/k.
	if s.rng.Intn(s.lay.K) != 0 {
		return core.Listen()
	}
	s.pendingTx = best.ID
	return core.Transmit(mac.PacketMsg(best))
}

func (s *station) Observe(round int64, fb mac.Feedback) {
	if fb.Kind == mac.FbHeard && s.pendingTx >= 0 {
		s.q.Remove(s.pendingTx)
	}
	// On a collision the packet stays queued and will be retried.
	s.pendingTx = -1
}

func (s *station) QueueLen() int { return s.q.Len() }

func (s *station) HeldPackets() []mac.Packet { return s.q.Snapshot() }

// Quiescent implements mac.Skipper: an empty station neither draws
// randomness nor transmits — a switched-on idle round scans the
// on-set, finds no packet, and listens, leaving no state behind (the
// ALOHA gamble runs only when a sendable packet exists, so the RNG
// stream is untouched by idle rounds).
func (s *station) Quiescent() bool { return s.q.Len() == 0 && s.pendingTx < 0 }

// SkipIdle implements mac.Skipper: idle rounds are stateless.
func (s *station) SkipIdle(from, to int64) {}

// FeedbackFreeIdle implements mac.FeedbackFreeIdler: idle rounds never
// consult channel feedback, so the duty-cycle wrapper may fast-forward
// sleeping stations too.
func (s *station) FeedbackFreeIdle() bool { return true }

// New builds the randomized baseline for n stations under energy cap k.
func New(n, k int) (*core.System, error) {
	return NewSeeded(n, k, 0x6ea7_c0de)
}

// NewSeeded builds the baseline with an explicit schedule seed.
func NewSeeded(n, k int, seed uint64) (*core.System, error) {
	lay, err := NewLayout(n, k, seed)
	if err != nil {
		return nil, err
	}
	stations := make([]core.Protocol, n)
	for i := 0; i < n; i++ {
		stations[i] = &station{
			id:        i,
			lay:       lay,
			q:         pktq.New(n),
			rng:       rand.New(rand.NewSource(int64(seed) + int64(i)*7919)),
			perm:      make([]int, n),
			pendingTx: -1,
		}
	}
	return &core.System{
		Info: core.AlgorithmInfo{
			Name:        fmt.Sprintf("%d-aloha", k),
			EnergyCap:   k,
			PlainPacket: true,
			Direct:      true,
			Oblivious:   true,
		},
		Stations: stations,
		Schedule: lay.Schedule(),
		// Idle rounds: the k scheduled stations listen in silence.
		Idle: core.ConstIdle{Energy: k},
	}, nil
}
