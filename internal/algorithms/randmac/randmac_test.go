package randmac

import (
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/metrics"
	"earmac/internal/sched"
)

func TestLayoutValidation(t *testing.T) {
	if _, err := NewLayout(1, 1, 0); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewLayout(5, 1, 0); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewLayout(5, 6, 0); err == nil {
		t.Error("k>n accepted")
	}
}

func TestOnSetProperties(t *testing.T) {
	lay, err := NewLayout(9, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < 500; r++ {
		set := lay.OnSet(r)
		if len(set) != 4 {
			t.Fatalf("round %d: on-set size %d", r, len(set))
		}
		seen := map[int]bool{}
		for _, s := range set {
			if s < 0 || s >= 9 {
				t.Fatalf("round %d: station %d out of range", r, s)
			}
			if seen[s] {
				t.Fatalf("round %d: duplicate station %d", r, s)
			}
			seen[s] = true
		}
	}
}

func TestOnSetDeterministicAndPeriodic(t *testing.T) {
	a, _ := NewLayout(8, 3, 7)
	b, _ := NewLayout(8, 3, 7)
	for r := int64(0); r < 100; r++ {
		x, y := a.OnSet(r), b.OnSet(r)
		for i := range x {
			if x[i] != y[i] {
				t.Fatal("on-set not deterministic")
			}
		}
		z := a.OnSet(r + period)
		for i := range x {
			if x[i] != z[i] {
				t.Fatal("on-set not periodic")
			}
		}
	}
	c, _ := NewLayout(8, 3, 8)
	diff := false
	for r := int64(0); r < 20; r++ {
		x, y := a.OnSet(r), c.OnSet(r)
		for i := range x {
			if x[i] != y[i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical schedules")
	}
}

func TestScheduleRespectsCap(t *testing.T) {
	lay, _ := NewLayout(8, 3, 1)
	s := lay.Schedule()
	// Validating the full 2^14 period is slow-ish; sample a prefix.
	probe := sched.Func{N: 8, P: 2048, F: s.On}
	if err := sched.Validate(probe, 3); err != nil {
		t.Error(err)
	}
	if got := sched.MaxSimultaneous(probe); got != 3 {
		t.Errorf("max simultaneous %d, want 3", got)
	}
}

func run(t *testing.T, n, k int, adv core.Adversary, rounds int64) *metrics.Tracker {
	t.Helper()
	sys, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	tr := metrics.NewTracker()
	tr.SampleEvery = 512
	sim := core.NewSim(sys, adv, core.Options{Strict: true, CheckEvery: 4999, Tracker: tr})
	if err := sim.Run(rounds); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestStableAtLowRate(t *testing.T) {
	tr := run(t, 8, 4, adversary.New(adversary.T(1, 50, 2), adversary.Uniform(8, 3)), 150000)
	if !tr.LooksStable() {
		t.Errorf("unstable at ρ=1/50:\n%s", tr.Summary())
	}
	if tr.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if len(tr.Violations) > 0 {
		t.Errorf("violations: %v", tr.Violations)
	}
}

func TestCollisionsActuallyHappen(t *testing.T) {
	// The whole point of the baseline: contention produces collisions,
	// which the paper's deterministic algorithms never suffer.
	tr := run(t, 8, 4, adversary.New(adversary.T(1, 10, 4), adversary.Uniform(8, 5)), 60000)
	if tr.CollisionRounds == 0 {
		t.Error("no collisions at moderate load — baseline is not contending")
	}
}

func TestUnstableUnderTargetedFlow(t *testing.T) {
	// A single src→dest flow is co-scheduled a k(k−1)/(n(n−1)) ≈ 0.21
	// fraction of rounds, but the ALOHA gamble converts only ~1/k of
	// those into deliveries (~0.05/round). The flow collapses already at
	// ρ = 1/10 — half the rate the deterministic k-Subsets sustains on
	// the very same pair (Theorem 8) — which is the measured price of
	// randomization.
	tr := run(t, 8, 4, adversary.New(adversary.T(1, 10, 2), adversary.SingleTarget(0, 7)), 120000)
	if tr.LooksStable() {
		t.Errorf("ALOHA unexpectedly stable under a ρ=1/10 targeted flow:\n%s", tr.Summary())
	}
	if tr.QueueSlope() <= 0 {
		t.Errorf("queue slope %f not positive", tr.QueueSlope())
	}
}

func TestUniformCapacityBeatsTargeted(t *testing.T) {
	// Average-case vs worst-case: the same baseline that collapses under
	// a ρ=1/10 targeted flow absorbs spread traffic at ρ=1/5 — the gap
	// the paper's worst-case adversarial model is about.
	tr := run(t, 8, 4, adversary.New(adversary.T(1, 5, 2), adversary.Uniform(8, 7)), 120000)
	if !tr.LooksStable() {
		t.Errorf("ALOHA should absorb uniform ρ=1/5:\n%s", tr.Summary())
	}
}

func TestDrainsAtLowRate(t *testing.T) {
	adv := adversary.New(adversary.T(1, 60, 1),
		adversary.Stop(adversary.Uniform(8, 11), 60000))
	tr := run(t, 8, 4, adv, 200000)
	if tr.Pending() != 0 {
		t.Errorf("pending = %d after long drain:\n%s", tr.Pending(), tr.Summary())
	}
}

func TestDirectAndPlainPacketDeclared(t *testing.T) {
	sys, err := New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Info.Direct || !sys.Info.PlainPacket || !sys.Info.Oblivious {
		t.Errorf("property flags wrong: %+v", sys.Info)
	}
	if sys.Info.EnergyCap != 3 {
		t.Errorf("cap = %d", sys.Info.EnergyCap)
	}
}
