package randmac

import "earmac/internal/registry"

func init() {
	registry.RegisterAlgorithm("aloha", registry.AlgorithmMeta{
		Summary:     "randomized slotted-ALOHA baseline on a shared k-station schedule",
		UsesK:       true,
		PlainPacket: true,
		Direct:      true,
		Oblivious:   true,
		MinN:        2,
		MinK:        2,
		KStrict:     true,
		// Collisions (jammed or real) just mean "retry later", and a
		// missed listen costs at most a delivery — never an invariant.
		Tolerant: true,
	}, New)
}
