// Package analysis is earmac's static-analysis suite: a minimal
// go/analysis-compatible framework plus the four project analyzers that
// turn the repository's prose invariants into tooling (DESIGN.md §15):
//
//   - determiter: no nondeterminism sources (map iteration, wall clock,
//     global math/rand, unsynchronized goroutines) inside the packages
//     whose outputs must be bit-identical at any worker count.
//   - hotalloc: no allocation-prone constructs in functions annotated
//     //earmac:hotpath or statically reachable from them.
//   - fpsafe: Config fields excluded from serialization (json:"-") are
//     zeroed in Fingerprint(), and serialized fields carry canonical
//     tags, so cache keys never fork on runtime-only knobs.
//   - regmeta: every algorithm package registers complete metadata from
//     an init function.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// positional diagnostics, analysistest-style golden tests) but is built
// on the standard library only — the build environment is hermetic, so
// the suite cannot vendor x/tools. Packages are loaded with
// `go list -export` and type-checked against gc export data (load.go),
// which is the same strategy the real driver uses.
//
// # Annotation grammar
//
// Two comment directives steer the analyzers:
//
//	//earmac:hotpath
//	    On a function declaration's doc comment: the function (and every
//	    same-package function it statically calls) must not allocate.
//
//	//earmac:nondet -- <reason>
//	//earmac:alloc -- <reason>
//	    On the flagged line, or alone on the line directly above it:
//	    waive one determiter (nondet) or hotalloc (alloc) diagnostic.
//	    The " -- reason" clause is mandatory; a waiver without a reason
//	    is itself a diagnostic, so every waiver is reviewable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: a name that prefixes its
// diagnostics, a doc string, and the Run function applied to every
// loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	// directives maps "file:line" to the earmac comment directives found
	// there, built lazily by Waived.
	directives map[string][]directive
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //earmac:<name> comment line.
type directive struct {
	name   string // "nondet", "alloc", "hotpath", ...
	reason string // text after " -- ", empty when absent
	pos    token.Pos
}

var directiveRe = regexp.MustCompile(`^//earmac:([a-z-]+)(?:\s+--\s*(.*))?\s*$`)

// buildDirectives indexes every //earmac: comment line by file:line.
func (p *Pass) buildDirectives() {
	p.directives = make(map[string][]directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				// Golden-test fixtures pin directive diagnostics with a
				// trailing `// want` clause (see RunTest); it is not part
				// of the directive.
				if i := strings.Index(text, " // want "); i >= 0 {
					text = strings.TrimRight(text[:i], " \t")
				}
				m := directiveRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				p.directives[key] = append(p.directives[key], directive{
					name:   m[1],
					reason: strings.TrimSpace(m[2]),
					pos:    c.Pos(),
				})
			}
		}
	}
}

// Waived reports whether node carries an //earmac:<name> waiver: on the
// node's starting line, or alone on the line directly above it.
func (p *Pass) Waived(node ast.Node, name string) bool {
	if p.directives == nil {
		p.buildDirectives()
	}
	pos := p.Fset.Position(node.Pos())
	for _, line := range []int{pos.Line, pos.Line - 1} {
		key := fmt.Sprintf("%s:%d", pos.Filename, line)
		for _, d := range p.directives[key] {
			if d.name == name {
				return true
			}
		}
	}
	return false
}

// CheckDirectiveGrammar reports malformed uses of the named waiver
// directive: a waiver without the mandatory " -- reason" clause. Each
// analyzer calls it for the directive it honors, so waivers stay
// reviewable (DESIGN.md §15).
func (p *Pass) CheckDirectiveGrammar(name string) {
	if p.directives == nil {
		p.buildDirectives()
	}
	keys := make([]string, 0, len(p.directives))
	for k := range p.directives {
		keys = append(keys, k)
	}
	sort.Strings(keys) //earmac:nondet -- sorted before reporting; map order never escapes
	for _, k := range keys {
		for _, d := range p.directives[k] {
			if d.name == name && d.reason == "" {
				p.Reportf(d.pos, "//earmac:%s waiver is missing its \" -- reason\" clause", name)
			}
		}
	}
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position then analyzer name — a deterministic
// stream regardless of package enumeration or analyzer order.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}
