package analysis

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunTest is the golden-test driver for one analyzer, in the style of
// golang.org/x/tools/go/analysis/analysistest: it loads the fixture
// packages at the given patterns (explicit testdata/src directories —
// wildcards skip testdata), runs the analyzer, and compares its
// diagnostics against `// want` comments in the fixture source.
//
// A want comment sits on the flagged line and carries one quoted
// regular expression per expected diagnostic:
//
//	for k := range m { // want `range over map`
//
// Both backquoted and double-quoted forms are accepted. Every
// diagnostic must be matched by a want on its line and every want must
// match a diagnostic — unexpected and missing findings both fail the
// test, so fixtures pin flagged and waived forms alike.
func RunTest(t *testing.T, a *Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := Load("", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v", patterns)
	}
	diags, err := RunAnalyzers(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					res, perr := parseWants(c.Text)
					if perr != nil {
						pos := pkg.Fset.Position(c.Pos())
						t.Fatalf("%s: bad want comment: %v", pos, perr)
					}
					if len(res) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], res...)
				}
			}
		}
	}

	unmatched := make(map[key][]*regexp.Regexp)
	for k, v := range wants {
		unmatched[k] = append([]*regexp.Regexp(nil), v...)
	}
	var surplus []Diagnostic
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		rest := unmatched[k][:0]
		for _, rx := range unmatched[k] {
			if !matched && rx.MatchString(d.Message) {
				matched = true
				continue
			}
			rest = append(rest, rx)
		}
		unmatched[k] = rest
		if !matched {
			surplus = append(surplus, d)
		}
	}
	for _, d := range surplus {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	keys := make([]key, 0, len(unmatched))
	for k := range unmatched {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, rx := range unmatched[k] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
		}
	}
}

// parseWants extracts the quoted regexps of a `// want "rx" ...`
// comment ("" when the comment has no want clause).
func parseWants(comment string) ([]*regexp.Regexp, error) {
	idx := strings.Index(comment, "// want ")
	if idx < 0 {
		return nil, nil
	}
	rest := strings.TrimSpace(comment[idx+len("// want "):])
	var out []*regexp.Regexp
	for rest != "" {
		var raw string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", comment)
			}
			raw = rest[1 : 1+end]
			rest = strings.TrimSpace(rest[2+end:])
		case '"':
			var err error
			end := matchDoubleQuote(rest)
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", comment)
			}
			raw, err = strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted want in %q: %v", comment, err)
			}
			rest = strings.TrimSpace(rest[end+1:])
		default:
			return nil, fmt.Errorf("want expects quoted regexps, got %q", rest)
		}
		rx, err := regexp.Compile(raw)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", raw, err)
		}
		out = append(out, rx)
	}
	return out, nil
}

// matchDoubleQuote returns the index of the closing quote of a
// double-quoted string starting at s[0], honoring backslash escapes.
func matchDoubleQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}
