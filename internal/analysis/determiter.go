package analysis

import (
	"go/ast"
	"go/types"
)

// DeterministicPackages are the packages whose observable outputs must
// be bit-identical at any worker count (DESIGN.md §13): the round
// engine, the topology layer, the scenario engine, and the statistics
// fold. Everything the simulator's fold/step call graph runs lives in
// (or is called through interfaces defined by) these packages.
var DeterministicPackages = []string{
	"earmac/internal/core",
	"earmac/internal/network",
	"earmac/internal/scenario",
	"earmac/internal/metrics",
}

// NewDeterIter builds the determiter analyzer scoped to the given
// import paths (DeterministicPackages for the real tree; tests point it
// at fixture packages).
//
// Inside a scoped package it forbids the constructs whose results
// depend on runtime state rather than on the config:
//
//   - range over a map: iteration order is randomized per run.
//   - package-level math/rand (rand.Intn, rand.Shuffle, ...): the global
//     source is seeded from runtime entropy and shared across
//     goroutines. Constructing explicitly seeded generators
//     (rand.New(rand.NewSource(seed))) is fine and is how every
//     stochastic pattern draws.
//   - time.Now / time.Since / time.Until: wall-clock reads.
//   - go statements and multi-case selects: scheduler-order dependent.
//     Worker fan-out belongs in internal/pool behind a barrier, never
//     inline in deterministic code.
//
// A finding is waived by an `//earmac:nondet -- reason` comment on the
// flagged line or alone on the line above; the reason clause is
// mandatory.
func NewDeterIter(paths ...string) *Analyzer {
	scope := make(map[string]bool, len(paths))
	for _, p := range paths {
		scope[p] = true
	}
	a := &Analyzer{
		Name: "determiter",
		Doc:  "forbid nondeterminism sources in the bit-identical packages",
	}
	a.Run = func(pass *Pass) error {
		if !scope[pass.Pkg.Path()] {
			return nil
		}
		pass.CheckDirectiveGrammar("nondet")
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					tv := pass.TypesInfo.TypeOf(n.X)
					if tv != nil {
						if _, isMap := tv.Underlying().(*types.Map); isMap && !pass.Waived(n, "nondet") {
							pass.Reportf(n.Pos(), "range over map: iteration order is nondeterministic")
						}
					}
				case *ast.GoStmt:
					if !pass.Waived(n, "nondet") {
						pass.Reportf(n.Pos(), "go statement: goroutine scheduling is nondeterministic (use internal/pool)")
					}
				case *ast.SelectStmt:
					if n.Body != nil && len(n.Body.List) > 1 && !pass.Waived(n, "nondet") {
						pass.Reportf(n.Pos(), "multi-case select: case choice is nondeterministic")
					}
				case *ast.CallExpr:
					checkDeterCall(pass, n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// seededConstructors are the math/rand package-level functions that
// build explicitly seeded state instead of drawing from the global
// source.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func checkDeterCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return // a method (e.g. on an explicitly seeded *rand.Rand) is fine
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			if !pass.Waived(call, "nondet") {
				pass.Reportf(call.Pos(), "time.%s: wall-clock reads are nondeterministic", fn.Name())
			}
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] && !pass.Waived(call, "nondet") {
			pass.Reportf(call.Pos(), "global math/rand source (%s.%s): seed an explicit generator instead",
				fn.Pkg().Name(), fn.Name())
		}
	}
}
