package analysis

import "testing"

func TestDeterIter(t *testing.T) {
	RunTest(t, NewDeterIter("earmac/internal/analysis/testdata/src/determiter"),
		"./testdata/src/determiter")
}
