package analysis

import (
	"go/ast"
	"reflect"
	"strings"
)

// NewFpSafe builds the fpsafe analyzer.
//
// The serving layer's result cache is keyed on Config.Fingerprint(), so
// the Config schema carries two invariants (DESIGN.md §10):
//
//   - A runtime-only field (tagged json:"-") must be explicitly zeroed
//     in Fingerprint() before hashing. The tag already excludes it from
//     the JSON encoding, but the belt-and-suspenders zeroing is the
//     contract: a later tag edit must not silently fork cache keys on a
//     knob that cannot change the result (NetWorkers is the canonical
//     example — parallelism never changes what a run computes).
//   - A serialized field must carry an explicit lowercase json name and
//     omitempty. Fingerprints hash the defaults-resolved config, so
//     every hashed field is populated and omitempty never drops
//     information — but without it, a zero-valued optional field would
//     make equal experiments encode differently depending on which
//     spelling resolved first.
//
// The analyzer fires on any package declaring a struct type Config with
// at least one json-tagged field; it reports each json:"-" field not
// assigned in Fingerprint's body, each serialized field with a missing
// or omitempty-free tag, and a Config that has runtime-only fields but
// no Fingerprint method at all.
func NewFpSafe() *Analyzer {
	a := &Analyzer{
		Name: "fpsafe",
		Doc:  "Config fields tagged json:\"-\" must be zeroed in Fingerprint(); serialized fields need canonical tags",
	}
	a.Run = runFpSafe
	return a
}

func runFpSafe(pass *Pass) error {
	cfg := findConfigStruct(pass)
	if cfg == nil {
		return nil
	}

	var runtimeOnly []*ast.Field // json:"-"
	tagged := false
	for _, field := range cfg.Fields.List {
		tag := fieldJSONTag(field)
		if tag == "" {
			continue
		}
		tagged = true
		if tag == "-" {
			runtimeOnly = append(runtimeOnly, field)
			continue
		}
		name, opts, _ := strings.Cut(tag, ",")
		if name == "" {
			pass.Reportf(field.Pos(), "Config field %s: json tag has no explicit name", fieldNames(field))
			continue
		}
		if name != strings.ToLower(name) {
			pass.Reportf(field.Pos(), "Config field %s: json name %q is not lowercase", fieldNames(field), name)
		}
		if !strings.Contains(","+opts+",", ",omitempty,") {
			pass.Reportf(field.Pos(),
				"Config field %s: serialized field must be omitempty (defaults resolution re-populates it before hashing)",
				fieldNames(field))
		}
	}
	if !tagged {
		return nil // some other Config type, not a serialized schema
	}
	for _, field := range cfg.Fields.List {
		if fieldJSONTag(field) == "" && len(field.Names) > 0 && ast.IsExported(field.Names[0].Name) {
			pass.Reportf(field.Pos(), "Config field %s: exported field has no json tag", fieldNames(field))
		}
	}

	fp := findMethod(pass, "Config", "Fingerprint")
	if fp == nil {
		if len(runtimeOnly) > 0 {
			pass.Reportf(cfg.Pos(), "Config has json:\"-\" fields but no Fingerprint() method to zero them")
		}
		return nil
	}
	zeroed := assignedFieldNames(fp)
	for _, field := range runtimeOnly {
		for _, name := range field.Names {
			if !zeroed[name.Name] {
				pass.Reportf(field.Pos(),
					"Config.%s is json:\"-\" but never zeroed in Fingerprint(): a tag change could fork cache keys on a runtime-only knob",
					name.Name)
			}
		}
	}
	return nil
}

// findConfigStruct locates `type Config struct{...}` in the package.
func findConfigStruct(pass *Pass) *ast.StructType {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Config" {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// findMethod locates a method declaration by receiver type name.
func findMethod(pass *Pass, recv, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == recv {
				return fd
			}
		}
	}
	return nil
}

// assignedFieldNames collects the field names assigned through any
// selector on the left-hand side of an assignment in fd's body
// (d.Trace, d.TraceFrom, ... = nil, 0, ...).
func assignedFieldNames(fd *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	if fd.Body == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				out[sel.Sel.Name] = true
			}
		}
		return true
	})
	return out
}

// fieldJSONTag extracts the json struct tag of a field ("" when
// absent).
func fieldJSONTag(field *ast.Field) string {
	if field.Tag == nil {
		return ""
	}
	raw := strings.Trim(field.Tag.Value, "`")
	return reflect.StructTag(raw).Get("json")
}

// fieldNames joins a field's declared names (a single ast.Field can
// declare several: `A, B int`).
func fieldNames(field *ast.Field) string {
	names := make([]string, 0, len(field.Names))
	for _, n := range field.Names {
		names = append(names, n.Name)
	}
	if len(names) == 0 {
		return "(embedded)"
	}
	return strings.Join(names, ", ")
}
