package analysis

import "testing"

func TestFpSafe(t *testing.T) {
	RunTest(t, NewFpSafe(),
		"./testdata/src/fpsafe",
		"./testdata/src/fpsafe/nofp")
}
