package analysis

import "testing"

// TestTreeClean runs the full suite over the real module — the same
// gate `make lint` and CI apply — so a plain `go test ./...` catches a
// violation introduced without running the linter.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	analyzers := []*Analyzer{
		NewDeterIter(DeterministicPackages...),
		NewHotAlloc(),
		NewFpSafe(),
		NewRegMeta("/internal/algorithms/"),
	}
	diags, err := RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("tree not lint-clean: %s", d)
	}
}

func TestParseWants(t *testing.T) {
	cases := []struct {
		comment string
		n       int
		ok      bool
	}{
		{"// plain comment", 0, true},
		{"// want `range over map`", 1, true},
		{"x := 1 // want `a` `b`", 2, true},
		{`// want "quoted \"escape\""`, 1, true},
		{"//earmac:nondet // want `missing`", 1, true},
		{"// want `unterminated", 0, false},
		{"// want bare-word", 0, false},
		{"// want `bad regexp (`", 0, false},
	}
	for _, c := range cases {
		got, err := parseWants(c.comment)
		if c.ok != (err == nil) {
			t.Errorf("parseWants(%q): err = %v, want ok=%v", c.comment, err, c.ok)
			continue
		}
		if err == nil && len(got) != c.n {
			t.Errorf("parseWants(%q): %d regexps, want %d", c.comment, len(got), c.n)
		}
	}
}
