package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// NewHotAlloc builds the hotalloc analyzer.
//
// A function whose doc comment contains a line `//earmac:hotpath` is a
// hot-path root: it, and every same-package function it statically
// calls (transitively, through plain calls and method calls resolved at
// compile time), must be allocation-free in steady state. Inside that
// closure the analyzer flags the allocation-prone constructs:
//
//   - any call into package fmt (Sprintf and friends allocate their
//     result and box every operand);
//   - make, new, slice/map composite literals, and &T{} literals;
//   - func literals (a closure allocates when it captures);
//   - explicit conversions to interface types (boxing);
//   - append to an unsized slice: one declared `var s []T`, `s := []T{}`,
//     or `s := make([]T, 0)` in the same function, or appended onto a
//     composite literal — growth that a capacity hint would avoid.
//     Appends onto caller-provided buffers (the module's buffer-reuse
//     contract) and onto struct fields are not flagged: their capacity
//     is amortized by the owner.
//
// Constructs inside a panic(...) argument are never flagged — the
// program is dying and the message allocation is irrelevant. Everything
// else is waived case by case with `//earmac:alloc -- reason` on the
// flagged line or alone on the line above; the reason clause is
// mandatory. Function literals are flagged but not entered: a closure's
// body is only hot if it is called on the hot path, and resolving that
// statically would mostly produce noise.
//
// The closure is intra-package: calls that cross a package boundary are
// the callee package's responsibility (annotate its entry points). This
// matches how the buffer-reuse contracts are layered — each package
// documents and enforces its own steady-state guarantee.
func NewHotAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "forbid allocation-prone constructs on //earmac:hotpath call graphs",
	}
	a.Run = runHotAlloc
	return a
}

func runHotAlloc(pass *Pass) error {
	// Collect every function declaration and the hot-path roots.
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if hasHotpathDirective(fd) {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}
	pass.CheckDirectiveGrammar("alloc")

	// Transitive same-package closure over static calls.
	hot := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if hot[fn] {
			return
		}
		hot[fn] = true
		fd := decls[fn]
		if fd == nil || fd.Body == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee = pass.TypesInfo.Uses[fun]
			case *ast.SelectorExpr:
				callee = pass.TypesInfo.Uses[fun.Sel]
			}
			if cf, ok := callee.(*types.Func); ok && cf.Pkg() == pass.Pkg {
				if _, local := decls[cf]; local {
					visit(cf)
				}
			}
			return true
		})
	}
	for _, r := range roots {
		visit(r)
	}

	// Deterministic order: check hot functions by source position.
	ordered := make([]*types.Func, 0, len(hot))
	for fn := range hot {
		ordered = append(ordered, fn)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Pos() < ordered[j].Pos() })
	for _, fn := range ordered {
		if fd := decls[fn]; fd != nil && fd.Body != nil {
			checkHotBody(pass, fn, fd)
		}
	}
	return nil
}

// hasHotpathDirective reports whether the declaration's doc comment
// contains a bare //earmac:hotpath line.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if m := directiveRe.FindStringSubmatch(c.Text); m != nil && m[1] == "hotpath" {
			return true
		}
	}
	return false
}

// checkHotBody walks one hot function's body flagging allocation-prone
// constructs. It tracks panic-argument context and does not descend
// into nested function literals (they are flagged, not entered).
func checkHotBody(pass *Pass, fn *types.Func, fd *ast.FuncDecl) {
	unsized := unsizedLocals(pass, fd)
	var walk func(n ast.Node, inPanic bool)
	walk = func(n ast.Node, inPanic bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if !inPanic && !pass.Waived(n, "alloc") {
				pass.Reportf(n.Pos(), "%s: func literal allocates a closure on a hot path", fn.Name())
			}
			return // not entered; see NewHotAlloc
		case *ast.CompositeLit:
			if !inPanic {
				checkHotComposite(pass, fn, n)
			}
		case *ast.UnaryExpr:
			// &T{} escapes to the heap in practice.
			if _, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND && !inPanic {
				if !pass.Waived(n, "alloc") {
					pass.Reportf(n.Pos(), "%s: &composite literal allocates on a hot path", fn.Name())
				}
			}
		case *ast.CallExpr:
			childPanic := inPanic
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					switch b.Name() {
					case "panic":
						childPanic = true
					case "make", "new":
						if !inPanic && !pass.Waived(n, "alloc") {
							pass.Reportf(n.Pos(), "%s: %s allocates on a hot path", fn.Name(), b.Name())
						}
					case "append":
						if !inPanic {
							checkHotAppend(pass, fn, n, unsized)
						}
					}
				}
			}
			if !inPanic {
				checkHotCallTarget(pass, fn, n)
			}
			for _, arg := range n.Args {
				walk(arg, childPanic)
			}
			walk(n.Fun, childPanic)
			return
		}
		// Generic descent for every other node kind.
		children(n, func(c ast.Node) { walk(c, inPanic) })
	}
	walk(fd.Body, false)
}

// children invokes f on each direct child of n. ast.Inspect with a
// depth guard emulates direct-children iteration without enumerating
// every node type.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c == nil {
			return false
		}
		f(c)
		return false
	})
}

// checkHotCallTarget flags calls into fmt and explicit conversions to
// interface types.
func checkHotCallTarget(pass *Pass, fn *types.Func, call *ast.CallExpr) {
	// Conversion to an interface type boxes its operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && !pass.Waived(call, "alloc") {
			pass.Reportf(call.Pos(), "%s: conversion to interface type boxes its operand on a hot path", fn.Name())
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	callee, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || callee.Pkg() == nil {
		return
	}
	if callee.Pkg().Path() == "fmt" && !pass.Waived(call, "alloc") {
		pass.Reportf(call.Pos(), "%s: fmt.%s allocates on a hot path", fn.Name(), callee.Name())
	}
}

// checkHotComposite flags map and slice composite literals.
func checkHotComposite(pass *Pass, fn *types.Func, lit *ast.CompositeLit) {
	tv := pass.TypesInfo.TypeOf(lit)
	if tv == nil {
		return
	}
	switch tv.Underlying().(type) {
	case *types.Map:
		if !pass.Waived(lit, "alloc") {
			pass.Reportf(lit.Pos(), "%s: map literal allocates on a hot path", fn.Name())
		}
	case *types.Slice:
		if !pass.Waived(lit, "alloc") {
			pass.Reportf(lit.Pos(), "%s: slice literal allocates on a hot path", fn.Name())
		}
	}
}

// unsizedLocals collects the local slice variables of fd that are
// declared without capacity: `var s []T`, `s := []T{}` (empty), or
// `s := make([]T, 0)` with no capacity argument. Appending to these
// grows from zero — the "unsized append growth" hotalloc flags.
func unsizedLocals(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(id *ast.Ident) {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				out[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec: // var s []T
			if len(n.Values) == 0 {
				for _, id := range n.Names {
					mark(id)
				}
			}
		case *ast.AssignStmt: // s := []T{} / s := make([]T, 0)
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if isUnsizedSliceExpr(pass, n.Rhs[i]) {
					mark(id)
				}
			}
		}
		return true
	})
	return out
}

// isUnsizedSliceExpr reports whether e is an empty slice literal or a
// capacity-free make of length zero.
func isUnsizedSliceExpr(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		if _, isSlice := pass.TypesInfo.TypeOf(e).Underlying().(*types.Slice); isSlice {
			return len(e.Elts) == 0
		}
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "make" {
			return false
		}
		if len(e.Args) != 2 {
			return false // make with an explicit capacity is sized
		}
		if tv, ok := pass.TypesInfo.Types[e.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
			return true
		}
	}
	return false
}

// checkHotAppend flags appends whose destination is an unsized local
// slice or a composite literal.
func checkHotAppend(pass *Pass, fn *types.Func, call *ast.CallExpr, unsized map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	switch dst := call.Args[0].(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[dst]; obj != nil && unsized[obj] {
			if !pass.Waived(call, "alloc") {
				pass.Reportf(call.Pos(),
					"%s: append to unsized slice %s grows from zero capacity on a hot path", fn.Name(), dst.Name)
			}
		}
	case *ast.CompositeLit:
		if !pass.Waived(call, "alloc") {
			pass.Reportf(call.Pos(), "%s: append to a slice literal allocates on a hot path", fn.Name())
		}
	}
}
