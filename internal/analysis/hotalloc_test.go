package analysis

import "testing"

func TestHotAlloc(t *testing.T) {
	RunTest(t, NewHotAlloc(), "./testdata/src/hotalloc")
}
