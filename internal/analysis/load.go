package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, parsed, and fully type-checked target.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool and returns every matched
// package parsed and type-checked, sorted by import path. dir is the
// working directory for the go invocation ("" = current).
//
// Imports — including other target packages and the standard library —
// are satisfied from gc export data produced by `go list -export`, so
// loading needs no network and no vendored dependencies; only the
// target packages themselves are parsed from source. Test files are not
// loaded: the invariants the suite enforces live in shipped code, and
// tests routinely use maps, time, and allocation on purpose.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, errb.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	// One importer for every target, so shared dependencies resolve to a
	// single types.Package each.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:      t.ImportPath,
			Dir:       t.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
