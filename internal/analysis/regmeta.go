package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"
)

// NewRegMeta builds the regmeta analyzer scoped to packages whose
// import path contains root ("/internal/algorithms/" for the real
// tree; tests point it at fixture packages).
//
// Every algorithm package must self-register from an init function —
// the registry derives the available-algorithm set from what is linked
// in, so a package that compiles but never registers is silently
// missing from every CLI, sweep, and capability listing. For each
// registration the analyzer requires:
//
//   - the call is lexically inside func init() (registration at any
//     other time races the registry's consumers);
//   - the name argument is a non-empty string literal (a computed name
//     defeats grepping and the static capability audit);
//   - the meta argument is an AlgorithmMeta composite literal with
//     field names, declaring at minimum a Summary, an explicit MinN,
//     and exactly one cap source (EnergyCap, UsesK, or CapIsN — the
//     CapFor contract), with MinK present whenever UsesK is set.
//
// Capability flags the facade consults (e.g. Tolerant) are fields of
// registry.AlgorithmMeta, so their existence is already enforced by the
// type checker; regmeta enforces the parts the compiler cannot see —
// that registration happens at all, and that the declared metadata is
// complete enough for CheckNK and CapFor to be meaningful.
func NewRegMeta(root string) *Analyzer {
	a := &Analyzer{
		Name: "regmeta",
		Doc:  "algorithm packages must register complete AlgorithmMeta from init",
	}
	a.Run = func(pass *Pass) error {
		if !strings.Contains(pass.Pkg.Path(), root) {
			return nil
		}
		registered := false
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				inInit := fd.Recv == nil && fd.Name.Name == "init"
				ast.Inspect(fd, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || !isRegisterAlgorithm(pass, call) {
						return true
					}
					registered = true
					if !inInit {
						pass.Reportf(call.Pos(),
							"RegisterAlgorithm outside func init(): late registration races every registry consumer")
					}
					checkRegistration(pass, call)
					return true
				})
			}
		}
		if !registered {
			pass.Reportf(pass.Files[0].Name.Pos(),
				"algorithm package %s never calls registry.RegisterAlgorithm: it is linked in but invisible to the registry",
				pass.Pkg.Name())
		}
		return nil
	}
	return a
}

// isRegisterAlgorithm matches calls to a function RegisterAlgorithm
// exported by a package named registry.
func isRegisterAlgorithm(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == "RegisterAlgorithm" && fn.Pkg() != nil && fn.Pkg().Name() == "registry"
}

// checkRegistration validates one RegisterAlgorithm(name, meta, build)
// call.
func checkRegistration(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 3 {
		return // the type checker already rejected it
	}
	if tv, ok := pass.TypesInfo.Types[call.Args[0]]; !ok || tv.Value == nil ||
		tv.Value.Kind() != constant.String || constant.StringVal(tv.Value) == "" {
		pass.Reportf(call.Args[0].Pos(), "algorithm name must be a non-empty string literal")
	}
	meta, ok := call.Args[1].(*ast.CompositeLit)
	if !ok {
		pass.Reportf(call.Args[1].Pos(),
			"AlgorithmMeta must be a composite literal so capabilities stay statically auditable")
		return
	}
	fields := make(map[string]ast.Expr)
	for _, elt := range meta.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			pass.Reportf(elt.Pos(), "AlgorithmMeta literal must use field names")
			return
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			fields[id.Name] = kv.Value
		}
	}
	if v, ok := fields["Summary"]; !ok || isEmptyString(pass, v) {
		pass.Reportf(meta.Pos(), "AlgorithmMeta.Summary is required: the registry is the capability catalog")
	}
	if _, ok := fields["MinN"]; !ok {
		pass.Reportf(meta.Pos(), "AlgorithmMeta.MinN is required: declare the smallest valid system size explicitly")
	}
	capSources := 0
	for _, f := range []string{"EnergyCap", "UsesK", "CapIsN"} {
		if _, ok := fields[f]; ok {
			capSources++
		}
	}
	if capSources != 1 {
		pass.Reportf(meta.Pos(),
			"AlgorithmMeta must declare exactly one cap source (EnergyCap, UsesK, or CapIsN), got %d", capSources)
	}
	_, usesK := fields["UsesK"]
	if _, hasMinK := fields["MinK"]; usesK && !hasMinK {
		pass.Reportf(meta.Pos(), "AlgorithmMeta.MinK is required when UsesK is set")
	}
}

// isEmptyString reports whether e is a constant empty string.
func isEmptyString(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	return err == nil && s == ""
}
