package analysis

import "testing"

func TestRegMeta(t *testing.T) {
	RunTest(t, NewRegMeta("/testdata/src/regmeta/"),
		"./testdata/src/regmeta/good",
		"./testdata/src/regmeta/missing",
		"./testdata/src/regmeta/incomplete")
}
