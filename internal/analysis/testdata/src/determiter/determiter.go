// Package determiter is a golden-test fixture for the determiter
// analyzer: every construct it forbids, in flagged and waived forms.
// The `// want` comments are matched by analysis.RunTest.
package determiter

import (
	"math/rand"
	"time"
)

func MapRange(m map[int]int) int {
	sum := 0
	for k := range m { // want `range over map`
		sum += k
	}
	for k := range m { //earmac:nondet -- commutative sum; iteration order cannot reach the result
		sum += k
	}
	return sum
}

func Clock() time.Duration {
	t := time.Now()      // want `time.Now: wall-clock`
	return time.Since(t) // want `time.Since: wall-clock`
}

func GlobalRand() int {
	return rand.Intn(10) // want `global math/rand source`
}

func SeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // seeded constructor and *rand.Rand methods are fine
	return rng.Intn(10)
}

func Spawn(f func()) {
	go f() // want `go statement`
}

func Pick(a, b chan int) int {
	select { // want `multi-case select`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func Recv(a chan int) int {
	select { // a single-case select is deterministic
	case v := <-a:
		return v
	}
}

func MissingReason(m map[int]bool) int {
	n := 0
	//earmac:nondet // want `missing its " -- reason" clause`
	for range m {
		n++
	}
	return n
}
