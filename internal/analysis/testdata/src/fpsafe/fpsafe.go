// Package fpsafe is a golden-test fixture for the fpsafe analyzer: a
// Config schema with tag violations and a runtime-only field that
// Fingerprint forgets to zero. The `// want` comments are matched by
// analysis.RunTest.
package fpsafe

import "strings"

type Config struct {
	Algorithm string `json:"algorithm,omitempty"`
	N         int    `json:"n,omitempty"`
	Rate      int    `json:"rate"`                // want `must be omitempty`
	Camel     int    `json:"CamelCase,omitempty"` // want `is not lowercase`
	Bare      int    `json:",omitempty"`          // want `json tag has no explicit name`
	Untagged  int    // want `exported field has no json tag`
	private   bool   // unexported fields may stay untagged

	Trace   *strings.Builder `json:"-"`
	Workers int              `json:"-"` // want `never zeroed in Fingerprint`
}

// Fingerprint zeroes Trace but forgets Workers.
func (c Config) Fingerprint() string {
	d := c
	d.Trace = nil
	d.private = false
	return d.Algorithm
}
