// Package nofp is a golden-test fixture for the fpsafe analyzer:
// runtime-only fields with no Fingerprint method to zero them.
package nofp

type Config struct { // want `json:"-" fields but no Fingerprint`
	Name  string `json:"name,omitempty"`
	Debug bool   `json:"-"`
}
