// Package hotalloc is a golden-test fixture for the hotalloc analyzer:
// allocation sites inside a //earmac:hotpath closure, in flagged,
// exempt, and waived forms. The `// want` comments are matched by
// analysis.RunTest.
package hotalloc

import "fmt"

type point struct{ x, y int }

// Hot is a hot-path root: it and every same-package function it
// statically calls must not allocate.
//
//earmac:hotpath
func Hot(buf []int, n int) []int {
	s := fmt.Sprintf("%d", n) // want `fmt.Sprintf allocates`
	_ = s
	m := make([]int, n) // want `make allocates`
	_ = m
	var grow []int
	for i := 0; i < n; i++ {
		grow = append(grow, i) // want `append to unsized slice grow`
	}
	_ = grow
	buf = append(buf, n) // a caller-provided buffer owns its capacity (buffer-reuse contract)
	f := func() { n++ }  // want `func literal allocates a closure`
	f()
	lit := []int{1, 2} // want `slice literal allocates`
	_ = lit
	mm := map[int]int{} // want `map literal allocates`
	_ = mm
	p := &point{x: 1, y: 2} // want `&composite literal allocates`
	_ = p
	v := any(n) // want `conversion to interface type boxes`
	_ = v
	helper(n)
	return buf
}

// helper is hot transitively: Hot calls it.
func helper(n int) {
	_ = fmt.Sprint(n) // want `fmt.Sprint allocates`
}

// cold is not reachable from any hot root, so it may allocate freely.
func cold(n int) string {
	return fmt.Sprintf("%d", n)
}

var _ = cold

// Waived is a hot-path root whose allocations are either exempt (panic
// arguments) or waived with a reasoned //earmac:alloc directive.
//
//earmac:hotpath
func Waived(n int) {
	//earmac:alloc -- one-time sizing, not steady state
	tmp := make([]int, n)
	_ = tmp
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // panic arguments are exempt: the program is dying
	}
}
