// Package good is a golden-test fixture for the regmeta analyzer: a
// complete, compliant registration that must produce no diagnostics.
package good

import (
	"earmac/internal/core"
	"earmac/internal/registry"
)

func init() {
	registry.RegisterAlgorithm("good-fixture", registry.AlgorithmMeta{
		Summary:   "fixture algorithm with complete metadata",
		Theorem:   "Thm 0",
		EnergyCap: 4,
		MinN:      2,
	}, build)
}

func build(n, k int) (*core.System, error) {
	return nil, nil
}
