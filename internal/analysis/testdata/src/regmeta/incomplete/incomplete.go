// Package incomplete is a golden-test fixture for the regmeta
// analyzer: registrations with missing or malformed metadata. The
// `// want` comments are matched by analysis.RunTest.
package incomplete

import (
	"earmac/internal/core"
	"earmac/internal/registry"
)

var computed = registry.AlgorithmMeta{
	Summary:   "metadata assembled outside the call",
	EnergyCap: 2,
	MinN:      2,
}

func init() {
	registry.RegisterAlgorithm("", registry.AlgorithmMeta{ // want `non-empty string literal` `Summary is required` `MinN is required` `exactly one cap source`
		Theorem: "Thm 0",
	}, build)
	registry.RegisterAlgorithm("k-fixture", registry.AlgorithmMeta{ // want `MinK is required when UsesK`
		Summary: "k-dependent cap without a declared MinK",
		UsesK:   true,
		MinN:    2,
	}, build)
	registry.RegisterAlgorithm("computed-fixture", computed, build) // want `must be a composite literal`
}

func register() {
	registry.RegisterAlgorithm("late-fixture", registry.AlgorithmMeta{ // want `outside func init`
		Summary:   "registration not reachable from init",
		EnergyCap: 1,
		MinN:      2,
	}, build)
}

var _ = register

func build(n, k int) (*core.System, error) {
	return nil, nil
}
