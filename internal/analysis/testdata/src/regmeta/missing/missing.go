// Package missing is a golden-test fixture for the regmeta analyzer:
// an algorithm package that compiles but never registers itself.
package missing // want `never calls registry.RegisterAlgorithm`

// New would be the constructor, but nothing wires it to the registry.
func New(n, k int) (int, error) {
	return n + k, nil
}
