// Package batonlist implements the replicated move-to-front station list
// underlying both algorithm Orchestra (§3.1, the "baton list") and the
// Move-Big-To-Front broadcast substrate of [17]. Every station keeps its
// own copy; identical update sequences — guaranteed by shared channel
// feedback — keep the copies equal, which tests verify.
package batonlist

import "fmt"

// List is an ordered list of station names with a current holder position
// (the station holding the baton/token).
type List struct {
	order []int
	pos   int
}

// New builds a list over the given members in the given order, with the
// baton at the first member.
func New(members []int) *List {
	if len(members) == 0 {
		panic("batonlist: empty member list")
	}
	order := make([]int, len(members))
	copy(order, members)
	return &List{order: order}
}

// Len returns the number of members.
func (l *List) Len() int { return len(l.order) }

// Holder returns the station currently holding the baton.
func (l *List) Holder() int { return l.order[l.pos] }

// Pos returns the holder's position (0-based; the paper counts from 1).
func (l *List) Pos() int { return l.pos }

// At returns the station at the given position.
func (l *List) At(i int) int { return l.order[i] }

// PosOf returns the position of the given station, or -1.
func (l *List) PosOf(station int) int {
	for i, s := range l.order {
		if s == station {
			return i
		}
	}
	return -1
}

// Advance passes the baton to the next station in cyclic order.
func (l *List) Advance() { l.pos = (l.pos + 1) % len(l.order) }

// AdvanceBy passes the baton m positions forward in one step — the
// closed form of m Advance calls, used by the quiescence engine to
// fast-forward idle seasons.
func (l *List) AdvanceBy(m int64) {
	if m <= 0 {
		return
	}
	n := int64(len(l.order))
	l.pos = int((int64(l.pos) + m%n) % n)
}

// MoveHolderToFront moves the holder to the front of the list, keeping the
// baton with it. Stations that were ahead of it shift one position back
// (away from the front), exactly as in the paper: "each station at the
// original position j < i ... gets its position incremented to j + 1".
func (l *List) MoveHolderToFront() {
	h := l.order[l.pos]
	copy(l.order[1:l.pos+1], l.order[:l.pos])
	l.order[0] = h
	l.pos = 0
}

// Members returns a copy of the current order.
func (l *List) Members() []int {
	out := make([]int, len(l.order))
	copy(out, l.order)
	return out
}

// Clone returns an independent copy.
func (l *List) Clone() *List {
	return &List{order: l.Members(), pos: l.pos}
}

// Equal reports whether two lists have identical order and position.
// Replica consistency checks use it.
func (l *List) Equal(o *List) bool {
	if l.pos != o.pos || len(l.order) != len(o.order) {
		return false
	}
	for i := range l.order {
		if l.order[i] != o.order[i] {
			return false
		}
	}
	return true
}

func (l *List) String() string {
	return fmt.Sprintf("baton@%d %v", l.pos, l.order)
}
