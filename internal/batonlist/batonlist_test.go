package batonlist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndBasics(t *testing.T) {
	l := New([]int{3, 1, 4})
	if l.Len() != 3 || l.Holder() != 3 || l.Pos() != 0 {
		t.Errorf("fresh list wrong: %v", l)
	}
	if l.At(1) != 1 || l.PosOf(4) != 2 || l.PosOf(9) != -1 {
		t.Error("At/PosOf wrong")
	}
}

func TestNewCopiesInput(t *testing.T) {
	in := []int{0, 1, 2}
	l := New(in)
	in[0] = 99
	if l.Holder() != 0 {
		t.Error("New aliased the input slice")
	}
}

func TestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(nil) did not panic")
		}
	}()
	New(nil)
}

func TestAdvanceWraps(t *testing.T) {
	l := New([]int{0, 1, 2})
	got := []int{}
	for i := 0; i < 7; i++ {
		got = append(got, l.Holder())
		l.Advance()
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("holders = %v, want %v", got, want)
		}
	}
}

func TestMoveHolderToFront(t *testing.T) {
	l := New([]int{10, 11, 12, 13})
	l.Advance()
	l.Advance() // holder = 12 at position 2
	l.MoveHolderToFront()
	if l.Holder() != 12 || l.Pos() != 0 {
		t.Errorf("after move: %v", l)
	}
	want := []int{12, 10, 11, 13}
	for i, w := range want {
		if l.At(i) != w {
			t.Fatalf("order = %v, want %v", l.Members(), want)
		}
	}
	// Stations previously ahead (10, 11) shifted back by one; 13 unchanged.
	if l.PosOf(10) != 1 || l.PosOf(11) != 2 || l.PosOf(13) != 3 {
		t.Errorf("positions wrong: %v", l.Members())
	}
}

func TestMoveFrontHolderIsNoop(t *testing.T) {
	l := New([]int{5, 6, 7})
	before := l.Members()
	l.MoveHolderToFront()
	after := l.Members()
	for i := range before {
		if before[i] != after[i] {
			t.Error("moving front holder changed order")
		}
	}
	if l.Pos() != 0 {
		t.Error("pos changed")
	}
}

func TestCloneIndependent(t *testing.T) {
	l := New([]int{0, 1, 2})
	c := l.Clone()
	if !l.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Advance()
	if l.Equal(c) {
		t.Error("clone shares state")
	}
	if l.Pos() != 0 {
		t.Error("advancing clone moved original")
	}
}

func TestEqual(t *testing.T) {
	a := New([]int{0, 1})
	b := New([]int{0, 1})
	if !a.Equal(b) {
		t.Error("identical lists unequal")
	}
	b.Advance()
	if a.Equal(b) {
		t.Error("different pos equal")
	}
	c := New([]int{1, 0})
	if a.Equal(c) {
		t.Error("different order equal")
	}
	d := New([]int{0, 1, 2})
	if a.Equal(d) {
		t.Error("different length equal")
	}
}

// Property: replicas applying the same random operation sequence stay
// equal, and the member multiset never changes.
func TestReplicaConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		members := make([]int, n)
		for i := range members {
			members[i] = i * 10
		}
		a, b := New(members), New(members)
		for op := 0; op < 100; op++ {
			if rng.Intn(2) == 0 {
				a.Advance()
				b.Advance()
			} else {
				a.MoveHolderToFront()
				b.MoveHolderToFront()
			}
			if !a.Equal(b) {
				return false
			}
			// Multiset preserved (all distinct here, so sort-free check).
			seen := map[int]bool{}
			for _, m := range a.Members() {
				seen[m] = true
			}
			if len(seen) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
