// Package benchcmp defines the schema of the BENCH_<rev>.json files
// emitted by cmd/earmac-bench and the regression comparison the CI bench
// job gates on: a current run fails against the committed baseline when
// simulator throughput drops by more than the tolerance or when any row
// starts allocating more per round.
//
// Raw Mrounds/s is machine-dependent, so every bench file carries a
// calibration scalar — the measured speed of a fixed pure-CPU workload —
// and the comparison rescales the baseline's throughput by the
// calibration ratio before applying the tolerance. Allocation counts and
// the deterministic simulation outputs (queue_max, energy) are
// machine-independent and compared directly.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Schema is the current bench-file schema version. Compare refuses files
// with a different major schema so a stale baseline fails loudly instead
// of silently gating on garbage.
const Schema = 1

// Row is one benchmark's measurements.
type Row struct {
	// ID identifies the workload ("T1.5", "SUB.mbtf", ...). Rows are
	// matched across files by ID.
	ID    string `json:"id"`
	Label string `json:"label,omitempty"`
	// Rounds is the simulated horizon.
	Rounds int64 `json:"rounds"`
	// MroundsPerS is the measured throughput in millions of simulated
	// rounds per wall-clock second.
	MroundsPerS float64 `json:"mrounds_per_s"`
	// AllocsPerRound is heap allocations per simulated round.
	AllocsPerRound float64 `json:"allocs_per_round"`
	// QueueMax and Energy are deterministic simulation outputs (fixed
	// seeds), useful for spotting semantic drift between revisions.
	QueueMax int64   `json:"queue_max"`
	Energy   float64 `json:"energy"`
}

// File is one bench run.
type File struct {
	Schema    int    `json:"schema"`
	Rev       string `json:"rev"`
	GoVersion string `json:"go_version"`
	Quick     bool   `json:"quick,omitempty"`
	// CalibrationMops is the speed of a fixed pure-CPU workload on the
	// machine that produced the file, in millions of operations per
	// second. It normalizes cross-machine throughput comparisons.
	CalibrationMops float64 `json:"calibration_mops,omitempty"`
	Rows            []Row   `json:"rows"`
}

// Load reads and validates a bench file.
func Load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	return Parse(data)
}

// Parse decodes and validates a bench file.
func Parse(data []byte) (File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("benchcmp: %w", err)
	}
	if f.Schema != Schema {
		return File{}, fmt.Errorf("benchcmp: schema %d, want %d", f.Schema, Schema)
	}
	seen := make(map[string]bool, len(f.Rows))
	for _, r := range f.Rows {
		if r.ID == "" {
			return File{}, fmt.Errorf("benchcmp: row with empty id")
		}
		if seen[r.ID] {
			return File{}, fmt.Errorf("benchcmp: duplicate row %q", r.ID)
		}
		seen[r.ID] = true
	}
	return f, nil
}

// Default comparison thresholds (see Options).
const (
	// DefaultSpeedDropTolerance permits a 15% calibrated throughput drop.
	DefaultSpeedDropTolerance = 0.15
	// DefaultAllocsSlack absorbs measurement jitter of one allocation
	// per hundred rounds; any growth beyond it fails the gate.
	DefaultAllocsSlack = 0.01
)

// Options tunes the comparison. The zero value is the strictest
// possible gate (no tolerated slowdown, no tolerated allocation
// growth); negative values select the documented defaults, so a caller
// passing an explicit 0 gets exactly zero tolerance rather than
// silently falling back to a default.
type Options struct {
	// SpeedDropTolerance is the permitted relative throughput drop
	// (0.15 = a row may be up to 15% slower than the calibrated
	// baseline). Negative means DefaultSpeedDropTolerance.
	SpeedDropTolerance float64
	// AllocsSlack is the permitted absolute growth in allocs/round
	// (guards against measurement jitter on rows that are not exactly
	// zero). Negative means DefaultAllocsSlack.
	AllocsSlack float64
	// NoCalibration disables rescaling the baseline throughput by the
	// files' calibration ratio.
	NoCalibration bool
}

func (o Options) withDefaults() Options {
	if o.SpeedDropTolerance < 0 {
		o.SpeedDropTolerance = DefaultSpeedDropTolerance
	}
	if o.AllocsSlack < 0 {
		o.AllocsSlack = DefaultAllocsSlack
	}
	return o
}

// Kind classifies a finding.
type Kind string

const (
	// KindSpeed: throughput dropped beyond the tolerance.
	KindSpeed Kind = "speed"
	// KindAllocs: allocs/round grew beyond the slack.
	KindAllocs Kind = "allocs"
	// KindMissing: a baseline row is absent from the current run.
	KindMissing Kind = "missing"
	// KindDrift: a deterministic simulation output (queue_max, energy)
	// changed at an identical horizon — semantic drift, not a perf
	// regression.
	KindDrift Kind = "drift"
)

// Finding is one detected regression.
type Finding struct {
	ID     string
	Kind   Kind
	Detail string
}

func (f Finding) String() string { return fmt.Sprintf("%s [%s]: %s", f.ID, f.Kind, f.Detail) }

// Result is the outcome of a comparison.
type Result struct {
	// Compared counts the rows present in both files.
	Compared int
	// Ratio is the calibration ratio applied to the baseline throughput
	// (1 when calibration was disabled or unavailable).
	Ratio float64
	// Findings lists the regressions, ordered by row ID.
	Findings []Finding
	// New lists the IDs of rows present only in the current run, sorted.
	// New rows are informational, never a regression: adding a benchmark
	// must not require a two-step baseline dance, the row simply starts
	// gating once the baseline is regenerated with it.
	New []string
}

// OK reports whether no regression was found.
func (r Result) OK() bool { return len(r.Findings) == 0 }

// Compare checks the current run against the baseline. Rows are matched
// by ID; rows only present in the current run (new benchmarks) are
// reported in Result.New (informational, never a finding), rows only
// present in the baseline are reported as missing.
func Compare(base, cur File, opt Options) Result {
	opt = opt.withDefaults()
	ratio := 1.0
	if !opt.NoCalibration && base.CalibrationMops > 0 && cur.CalibrationMops > 0 {
		ratio = cur.CalibrationMops / base.CalibrationMops
	}
	curByID := make(map[string]Row, len(cur.Rows))
	for _, r := range cur.Rows {
		curByID[r.ID] = r
	}
	baseByID := make(map[string]Row, len(base.Rows))
	for _, r := range base.Rows {
		baseByID[r.ID] = r
	}
	res := Result{Ratio: ratio}
	for _, c := range sortedRows(cur.Rows) {
		if _, ok := baseByID[c.ID]; !ok {
			res.New = append(res.New, c.ID)
		}
	}
	for _, b := range sortedRows(base.Rows) {
		c, ok := curByID[b.ID]
		if !ok {
			res.Findings = append(res.Findings, Finding{
				ID: b.ID, Kind: KindMissing,
				Detail: "row present in baseline but not in the current run",
			})
			continue
		}
		res.Compared++
		want := b.MroundsPerS * ratio * (1 - opt.SpeedDropTolerance)
		if b.MroundsPerS > 0 && c.MroundsPerS < want {
			res.Findings = append(res.Findings, Finding{
				ID: b.ID, Kind: KindSpeed,
				Detail: fmt.Sprintf("%.3f Mrounds/s < %.3f (baseline %.3f × calib %.2f − %.0f%%)",
					c.MroundsPerS, want, b.MroundsPerS, ratio, opt.SpeedDropTolerance*100),
			})
		}
		if c.AllocsPerRound > b.AllocsPerRound+opt.AllocsSlack {
			res.Findings = append(res.Findings, Finding{
				ID: b.ID, Kind: KindAllocs,
				Detail: fmt.Sprintf("%.4f allocs/round > baseline %.4f + slack %.2f",
					c.AllocsPerRound, b.AllocsPerRound, opt.AllocsSlack),
			})
		}
		// Seeds are fixed, so at an identical horizon the simulation
		// outputs must be bit-identical; a difference is semantic drift
		// (different rounds — quick vs full files — are incomparable).
		if b.Rounds == c.Rounds {
			if c.QueueMax != b.QueueMax {
				res.Findings = append(res.Findings, Finding{
					ID: b.ID, Kind: KindDrift,
					Detail: fmt.Sprintf("queue_max %d != baseline %d at identical horizon (semantic drift)",
						c.QueueMax, b.QueueMax),
				})
			}
			if diff := c.Energy - b.Energy; diff > 1e-9 || diff < -1e-9 {
				res.Findings = append(res.Findings, Finding{
					ID: b.ID, Kind: KindDrift,
					Detail: fmt.Sprintf("energy %.6f != baseline %.6f at identical horizon (semantic drift)",
						c.Energy, b.Energy),
				})
			}
		}
	}
	return res
}

func sortedRows(rows []Row) []Row {
	out := make([]Row, len(rows))
	copy(out, rows)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
