package benchcmp

import (
	"encoding/json"
	"strings"
	"testing"
)

// defaults selects the documented default thresholds.
func defaults() Options {
	return Options{SpeedDropTolerance: -1, AllocsSlack: -1}
}

func file(calib float64, rows ...Row) File {
	return File{Schema: Schema, Rev: "test", GoVersion: "go0", CalibrationMops: calib, Rows: rows}
}

func row(id string, speed, allocs float64) Row {
	return Row{ID: id, Rounds: 1000, MroundsPerS: speed, AllocsPerRound: allocs}
}

func findKinds(r Result) map[string][]Kind {
	out := make(map[string][]Kind)
	for _, f := range r.Findings {
		out[f.ID] = append(out[f.ID], f.Kind)
	}
	return out
}

func TestCompareClean(t *testing.T) {
	base := file(100, row("a", 2.0, 0), row("b", 5.0, 0.5))
	cur := file(100, row("a", 1.9, 0), row("b", 5.5, 0.5))
	res := Compare(base, cur, defaults())
	if !res.OK() {
		t.Errorf("unexpected findings: %v", res.Findings)
	}
	if res.Compared != 2 {
		t.Errorf("Compared = %d, want 2", res.Compared)
	}
}

func TestCompareSpeedRegression(t *testing.T) {
	base := file(100, row("a", 2.0, 0))
	cur := file(100, row("a", 1.5, 0)) // 25% drop > 15% tolerance
	res := Compare(base, cur, defaults())
	kinds := findKinds(res)
	if len(kinds["a"]) != 1 || kinds["a"][0] != KindSpeed {
		t.Errorf("findings = %v, want one speed regression on a", res.Findings)
	}
}

func TestCompareSpeedToleranceBoundary(t *testing.T) {
	base := file(100, row("a", 2.0, 0))
	// Exactly at the 15% boundary: not a regression.
	cur := file(100, row("a", 1.7, 0))
	if res := Compare(base, cur, defaults()); !res.OK() {
		t.Errorf("boundary flagged: %v", res.Findings)
	}
	// Custom tolerance: 10% drop fails at 5% tolerance.
	cur = file(100, row("a", 1.8, 0))
	if res := Compare(base, cur, Options{SpeedDropTolerance: 0.05, AllocsSlack: -1}); res.OK() {
		t.Error("10% drop passed a 5% tolerance")
	}
}

func TestCompareCalibrationRescaling(t *testing.T) {
	// The current machine is half as fast (calibration 50 vs 100):
	// half the throughput is expected, not a regression.
	base := file(100, row("a", 2.0, 0))
	cur := file(50, row("a", 1.0, 0))
	res := Compare(base, cur, defaults())
	if !res.OK() {
		t.Errorf("calibrated comparison flagged: %v", res.Findings)
	}
	if res.Ratio != 0.5 {
		t.Errorf("Ratio = %v, want 0.5", res.Ratio)
	}
	// With calibration disabled the same numbers are a regression.
	if res := Compare(base, cur, Options{NoCalibration: true, SpeedDropTolerance: -1, AllocsSlack: -1}); res.OK() {
		t.Error("uncalibrated 50% drop passed")
	}
	// Missing calibration on either side disables rescaling.
	res = Compare(file(0, row("a", 2.0, 0)), cur, defaults())
	if res.Ratio != 1 {
		t.Errorf("Ratio = %v without baseline calibration, want 1", res.Ratio)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := file(100, row("a", 2.0, 0), row("b", 2.0, 1.0))
	cur := file(100, row("a", 2.0, 0.2), row("b", 2.0, 1.005))
	res := Compare(base, cur, defaults())
	kinds := findKinds(res)
	if len(kinds["a"]) != 1 || kinds["a"][0] != KindAllocs {
		t.Errorf("findings = %v, want one allocs regression on a", res.Findings)
	}
	if len(kinds["b"]) != 0 {
		t.Errorf("b within slack flagged: %v", res.Findings)
	}
}

func TestCompareMissingAndNewRows(t *testing.T) {
	base := file(100, row("a", 2.0, 0), row("gone", 2.0, 0))
	cur := file(100, row("a", 2.0, 0), row("new", 9.0, 0))
	res := Compare(base, cur, defaults())
	kinds := findKinds(res)
	if len(kinds["gone"]) != 1 || kinds["gone"][0] != KindMissing {
		t.Errorf("findings = %v, want missing row 'gone'", res.Findings)
	}
	if len(kinds["new"]) != 0 {
		t.Error("new row flagged")
	}
	if len(res.New) != 1 || res.New[0] != "new" {
		t.Errorf("New = %v, want [new]", res.New)
	}
	if res.Compared != 1 {
		t.Errorf("Compared = %d, want 1", res.Compared)
	}
}

func TestParseRejectsBadFiles(t *testing.T) {
	if _, err := Parse([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Parse([]byte(`{"schema": 99, "rows": []}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	dup, _ := json.Marshal(file(1, row("x", 1, 0), row("x", 2, 0)))
	if _, err := Parse(dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate rows accepted (err=%v)", err)
	}
	empty, _ := json.Marshal(file(1, Row{ID: ""}))
	if _, err := Parse(empty); err == nil {
		t.Error("empty row id accepted")
	}
	good, _ := json.Marshal(file(1, row("x", 1, 0)))
	if _, err := Parse(good); err != nil {
		t.Errorf("valid file rejected: %v", err)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{ID: "T1.1", Kind: KindSpeed, Detail: "slow"}
	if got := f.String(); !strings.Contains(got, "T1.1") || !strings.Contains(got, "speed") {
		t.Errorf("String() = %q", got)
	}
}

func TestCompareSemanticDrift(t *testing.T) {
	b := row("a", 2.0, 0)
	b.QueueMax, b.Energy = 160, 2.75
	c := b
	c.QueueMax = 161
	res := Compare(file(100, b), file(100, c), defaults())
	kinds := findKinds(res)
	if len(kinds["a"]) != 1 || kinds["a"][0] != KindDrift {
		t.Errorf("findings = %v, want one drift finding", res.Findings)
	}
	// Energy drift is also flagged.
	c = b
	c.Energy = 2.7501
	if res := Compare(file(100, b), file(100, c), defaults()); len(res.Findings) != 1 || res.Findings[0].Kind != KindDrift {
		t.Errorf("energy drift findings = %v", res.Findings)
	}
	// Different horizons (quick vs full files) are incomparable: no drift.
	c = b
	c.Rounds = b.Rounds * 4
	c.QueueMax = 999
	if res := Compare(file(100, b), file(100, c), defaults()); !res.OK() {
		t.Errorf("cross-horizon drift flagged: %v", res.Findings)
	}
	// Identical outputs: clean.
	if res := Compare(file(100, b), file(100, b), defaults()); !res.OK() {
		t.Errorf("identical outputs flagged: %v", res.Findings)
	}
}
