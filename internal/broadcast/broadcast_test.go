package broadcast

import (
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/metrics"
)

func TestRingTokenCycle(t *testing.T) {
	r := NewRing([]int{4, 7, 9})
	if r.Holder() != 4 || r.Phase() != 0 {
		t.Fatalf("fresh ring: holder=%d phase=%d", r.Holder(), r.Phase())
	}
	// Heard keeps the token.
	r.ObserveHeard()
	if r.Holder() != 4 {
		t.Error("heard moved the token")
	}
	// Three silences complete a phase.
	if r.ObserveSilence() {
		t.Error("phase ended after 1 silence")
	}
	if r.Holder() != 7 {
		t.Errorf("holder = %d, want 7", r.Holder())
	}
	if r.ObserveSilence() {
		t.Error("phase ended after 2 silences")
	}
	if !r.ObserveSilence() {
		t.Error("phase did not end after full cycle")
	}
	if r.Phase() != 1 || r.Holder() != 4 {
		t.Errorf("after cycle: phase=%d holder=%d", r.Phase(), r.Holder())
	}
}

func TestRingHeardDoesNotCountTowardPhase(t *testing.T) {
	r := NewRing([]int{0, 1})
	r.ObserveSilence()
	r.ObserveHeard()
	r.ObserveHeard()
	if r.Phase() != 0 {
		t.Error("heard rounds advanced the phase")
	}
	if !r.ObserveSilence() {
		t.Error("second silence should end the phase")
	}
}

func TestRingReplicaEquality(t *testing.T) {
	a, b := NewRing([]int{0, 1, 2}), NewRing([]int{0, 1, 2})
	ops := []bool{true, false, true, true, false, true, true, true}
	for _, silence := range ops {
		if silence {
			a.ObserveSilence()
			b.ObserveSilence()
		} else {
			a.ObserveHeard()
			b.ObserveHeard()
		}
		if !a.Equal(b) {
			t.Fatal("replicas diverged")
		}
	}
	b.ObserveSilence()
	if a.Equal(b) {
		t.Error("Equal missed divergence")
	}
}

func TestEmptyRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty ring did not panic")
		}
	}()
	NewRing(nil)
}

func TestMBTFRetainWhileBig(t *testing.T) {
	m := NewMBTF([]int{0, 1, 2, 3})
	if m.Threshold() != 4 {
		t.Errorf("threshold = %d", m.Threshold())
	}
	m.ObserveSilence() // token → 1
	m.ObserveSilence() // token → 2
	if m.Holder() != 2 {
		t.Fatalf("holder = %d", m.Holder())
	}
	m.ObserveHeard(true) // 2 announces big: retains the token
	if m.Holder() != 2 {
		t.Error("big holder lost the token")
	}
	m.ObserveHeard(true)
	if m.Holder() != 2 {
		t.Error("big holder lost the token on second big round")
	}
	m.ObserveHeard(false) // no longer big: token passes with the message
	if m.Holder() != 3 {
		t.Errorf("after big drained, holder = %d, want 3", m.Holder())
	}
	m.ObserveSilence() // wraps
	if m.Holder() != 0 {
		t.Errorf("holder = %d, want 0", m.Holder())
	}
}

func TestMBTFNonBigHeardPassesToken(t *testing.T) {
	a, b := NewMBTF([]int{0, 1, 2}), NewMBTF([]int{0, 1, 2})
	a.ObserveHeard(false)
	b.ObserveHeard(false)
	if !a.Equal(b) {
		t.Error("replicas diverged")
	}
	if a.Holder() != 1 {
		t.Error("non-big transmission should pass the token")
	}
}

func TestMBTFEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty MBTF did not panic")
		}
	}()
	NewMBTF(nil)
}

// run drives a standalone system with the given adversary for rounds,
// strict and with conservation checking.
func run(t *testing.T, sys *core.System, adv core.Adversary, rounds int64) *metrics.Tracker {
	t.Helper()
	tr := metrics.NewTracker()
	tr.SampleEvery = 64
	sim := core.NewSim(sys, adv, core.Options{Strict: true, CheckEvery: 512, Tracker: tr})
	if err := sim.Run(rounds); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRRWStableBelowRateOne(t *testing.T) {
	n := 6
	// ρ = 3/4, β = 2, uniform traffic.
	adv := adversary.New(adversary.T(3, 4, 2), adversary.Uniform(n, 1))
	tr := run(t, NewRRWSystem(n), adv, 30000)
	if !tr.LooksStable() {
		t.Errorf("RRW unstable at ρ=3/4: %s", tr.Summary())
	}
	if tr.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if len(tr.Violations) > 0 {
		t.Errorf("violations: %v", tr.Violations)
	}
}

func TestRRWDrainsCompletely(t *testing.T) {
	n := 5
	adv := adversary.New(adversary.T(1, 2, 1),
		adversary.Stop(adversary.Uniform(n, 7), 5000))
	tr := run(t, NewRRWSystem(n), adv, 10000)
	if tr.Pending() != 0 {
		t.Errorf("pending = %d after drain; %s", tr.Pending(), tr.Summary())
	}
	if tr.FinalQueue != 0 {
		t.Errorf("final queue = %d", tr.FinalQueue)
	}
}

func TestOFRRWStableBelowRateOne(t *testing.T) {
	n := 6
	adv := adversary.New(adversary.T(3, 4, 2), adversary.Uniform(n, 3))
	tr := run(t, NewOFRRWSystem(n), adv, 30000)
	if !tr.LooksStable() {
		t.Errorf("OF-RRW unstable at ρ=3/4: %s", tr.Summary())
	}
}

func TestOFRRWBoundedLatencyMatchesPaperShape(t *testing.T) {
	// [3]: OF-RRW delay ≤ 2n/(1−ρ) + 2β on n stations. At n=4, ρ=1/2,
	// β=1 that is 18; allow the bound itself as the assertion.
	n := 4
	adv := adversary.New(adversary.T(1, 2, 1), adversary.Uniform(n, 11))
	tr := run(t, NewOFRRWSystem(n), adv, 20000)
	bound := int64(2*n*2 + 2*1)
	if tr.MaxLatency > bound {
		t.Errorf("OF-RRW max latency %d exceeds paper bound %d", tr.MaxLatency, bound)
	}
}

func TestMBTFStableAtRateOne(t *testing.T) {
	// The headline property of [17]: throughput 1. Queues stay bounded
	// (O(n²+β)) even at ρ = 1.
	n := 6
	adv := adversary.New(adversary.T(1, 1, 2), adversary.Uniform(n, 5))
	tr := run(t, NewMBTFSystem(n), adv, 40000)
	if !tr.LooksStable() {
		t.Errorf("MBTF unstable at ρ=1: %s", tr.Summary())
	}
	bound := int64(2*n*n + 2) // 2n² + β with room
	if tr.MaxQueue > bound {
		t.Errorf("MBTF max queue %d exceeds O(n²+β) scale %d", tr.MaxQueue, bound)
	}
}

func TestMBTFStableAtRateOneSingleTarget(t *testing.T) {
	// All packets into one station: it becomes big, grabs the front, and
	// streams. Queue must stay small.
	n := 5
	adv := adversary.New(adversary.T(1, 1, 1), adversary.SingleTarget(2, 4))
	tr := run(t, NewMBTFSystem(n), adv, 20000)
	if !tr.LooksStable() {
		t.Errorf("MBTF unstable under single-target flood: %s", tr.Summary())
	}
}

func TestRRWUnstableAtRateOneSpread(t *testing.T) {
	// RRW pays one silent round per station per cycle; at ρ = 1 with
	// spread traffic the queue grows without bound — this is exactly why
	// the paper needs MBTF for throughput 1.
	n := 6
	adv := adversary.New(adversary.T(1, 1, 1), adversary.RoundRobin(n))
	tr := run(t, NewRRWSystem(n), adv, 40000)
	if tr.LooksStable() {
		t.Errorf("RRW unexpectedly stable at ρ=1: %s", tr.Summary())
	}
}

func TestAntiTokenWorsensRRWLatency(t *testing.T) {
	// The adaptive AntiToken adversary injects just behind the token;
	// packets then wait ~a full cycle, pushing RRW's mean latency well
	// above what the same (ρ, β) produces with uniform traffic.
	n := 8
	uni := run(t, NewRRWSystem(n),
		adversary.New(adversary.T(1, 2, 1), adversary.Uniform(n, 3)), 30000)
	anti := run(t, NewRRWSystem(n),
		adversary.NewAntiToken(n, adversary.T(1, 2, 1)), 30000)
	if !anti.LooksStable() {
		t.Fatalf("RRW must stay stable at ρ=1/2 even against AntiToken:\n%s", anti.Summary())
	}
	if anti.MeanLatency() <= uni.MeanLatency() {
		t.Errorf("AntiToken mean latency %.1f not worse than uniform %.1f",
			anti.MeanLatency(), uni.MeanLatency())
	}
	// Still within the universal bound of [18]/[3]: ≈ 2n/(1−ρ) + 2β.
	bound := int64(2*n*2 + 2*1 + n)
	if anti.MaxLatency > bound {
		t.Errorf("AntiToken pushed max latency %d beyond the %d bound", anti.MaxLatency, bound)
	}
}

func TestMaxQueueAdversaryVsMBTF(t *testing.T) {
	// MBTF's throughput-1 claim is worst-case: even an adversary that
	// always feeds the longest queue cannot destabilize it at ρ=1.
	n := 6
	tr := run(t, NewMBTFSystem(n), adversary.NewMaxQueue(n, adversary.T(1, 1, 2)), 40000)
	if !tr.LooksStable() {
		t.Errorf("MBTF unstable against MaxQueue at ρ=1:\n%s", tr.Summary())
	}
}

func TestBroadcastReplicasStayConsistent(t *testing.T) {
	// White-box: drive an MBTF system and check all stations' machines
	// agree after every round.
	n := 5
	sys := NewMBTFSystem(n)
	adv := adversary.New(adversary.T(1, 1, 3), adversary.Uniform(n, 9))
	sim := core.NewSim(sys, adv, core.Options{Strict: true})
	for r := 0; r < 2000; r++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		ref := sys.Stations[0].(*mbtfStation).m
		for i := 1; i < n; i++ {
			if !sys.Stations[i].(*mbtfStation).m.Equal(ref) {
				t.Fatalf("round %d: MBTF replica %d diverged", r, i)
			}
		}
	}
}

func TestOFRRWReplicasStayConsistent(t *testing.T) {
	n := 4
	sys := NewOFRRWSystem(n)
	adv := adversary.New(adversary.T(2, 3, 2), adversary.Uniform(n, 13))
	sim := core.NewSim(sys, adv, core.Options{Strict: true})
	for r := 0; r < 2000; r++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
		ref := sys.Stations[0].(*rrwStation).ring
		for i := 1; i < n; i++ {
			if !sys.Stations[i].(*rrwStation).ring.Equal(ref) {
				t.Fatalf("round %d: ring replica %d diverged", r, i)
			}
		}
	}
}
