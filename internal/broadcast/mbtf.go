package broadcast

// MBTF is the replicated token state of Move-Big-To-Front [17], the
// substrate with throughput 1. Stations take turns in cyclic order; the
// holder transmits one packet per turn, attaching a "big" control bit
// (queue ≥ threshold). A holder that announced big retains the token and
// keeps streaming; a transmission with the bit clear, or a silent round
// (empty holder), passes the token. Silent rounds therefore occur only at
// stations that are actually empty, which is what makes injection rate 1
// sustainable: whenever the total queue exceeds m(m−1) some station is
// big (pigeonhole) and the channel streams packets without waste.
//
// Note on fidelity: [17] describes the algorithm as a station list with
// big stations moved to the front. Since only the token holder ever
// transmits, bigness can only be announced from the front, so moving the
// announcer to the front is equivalent to the holder retaining the token
// while big; the cyclic order is the queue rotation. We implement that
// equivalent form; replica consistency needs exactly the one control bit.
type MBTF struct {
	members   []int
	pos       int
	threshold int
}

// NewMBTF builds the machine over members in cyclic token order. The
// bigness threshold is the member count, matching the pigeonhole step of
// the stability proof.
func NewMBTF(members []int) *MBTF {
	if len(members) == 0 {
		panic("broadcast: empty MBTF member set")
	}
	m := make([]int, len(members))
	copy(m, members)
	return &MBTF{members: m, threshold: len(members)}
}

// Threshold returns the bigness threshold.
func (m *MBTF) Threshold() int { return m.threshold }

// Holder returns the station whose turn it is to transmit.
func (m *MBTF) Holder() int { return m.members[m.pos] }

func (m *MBTF) advance() { m.pos = (m.pos + 1) % len(m.members) }

// ObserveHeard records a successful transmission by the holder carrying
// the given big bit: a big holder retains the token, otherwise it passes.
func (m *MBTF) ObserveHeard(big bool) {
	if !big {
		m.advance()
	}
}

// ObserveSilence advances the token: the holder was empty.
func (m *MBTF) ObserveSilence() { m.advance() }

// SkipSilences applies m consecutive ObserveSilence transitions in
// closed form (see Ring.SkipSilences).
func (m *MBTF) SkipSilences(count int64) {
	if count <= 0 {
		return
	}
	n := int64(len(m.members))
	m.pos = int((int64(m.pos) + count%n) % n)
}

// Equal reports replica equality.
func (m *MBTF) Equal(o *MBTF) bool {
	if m.pos != o.pos || m.threshold != o.threshold || len(m.members) != len(o.members) {
		return false
	}
	for i := range m.members {
		if m.members[i] != o.members[i] {
			return false
		}
	}
	return true
}
