package broadcast

import (
	"earmac/internal/core"
	"earmac/internal/registry"
)

func init() {
	registry.RegisterAlgorithm("mbtf", registry.AlgorithmMeta{
		Summary:   "Move-Big-To-Front broadcast baseline, every station always on",
		CapIsN:    true,
		Direct:    true,
		Oblivious: true,
		MinN:      2,
	}, func(n, _ int) (*core.System, error) { return NewMBTFSystem(n), nil })
	registry.RegisterAlgorithm("rrw", registry.AlgorithmMeta{
		Summary:     "Round-Robin-Withholding broadcast baseline, every station always on",
		CapIsN:      true,
		PlainPacket: true,
		Direct:      true,
		Oblivious:   true,
		MinN:        2,
	}, func(n, _ int) (*core.System, error) { return NewRRWSystem(n), nil })
	registry.RegisterAlgorithm("ofrrw", registry.AlgorithmMeta{
		Summary:     "Old-First RRW broadcast baseline, every station always on",
		CapIsN:      true,
		PlainPacket: true,
		Direct:      true,
		Oblivious:   true,
		MinN:        2,
	}, func(n, _ int) (*core.System, error) { return NewOFRRWSystem(n), nil })
}
