// Package broadcast implements the three prior-work broadcast protocols
// the paper composes its routing algorithms from: Round-Robin-Withholding
// (RRW, [18]), Old-First Round-Robin-Withholding (OF-RRW, [3]), and
// Move-Big-To-Front (MBTF, [17]). Each is available in two forms:
//
//   - as a replicated token state machine (Ring, MBTF) that the energy-
//     capped algorithms embed — k-Cycle runs OF-RRW inside each group,
//     k-Clique inside each pair, and k-Subsets runs MBTF inside each
//     thread;
//   - as a complete standalone core.System with all n stations switched
//     on (energy cap n), the setting of the original papers, used as
//     baselines and to validate the quoted bounds.
package broadcast

// Ring is the replicated token state of RRW/OF-RRW over a fixed member
// set. Every member keeps its own Ring replica and applies the same
// transitions, driven by shared channel feedback: a heard message keeps
// the token in place (the holder keeps transmitting), a silent round
// advances the token to the next member, and a full cycle of the token
// ends a phase (relevant to OF-RRW's old/new distinction).
type Ring struct {
	members []int
	pos     int
	phase   int64
	turns   int // completed turns in the current phase
}

// NewRing builds a ring over members in token order.
func NewRing(members []int) *Ring {
	if len(members) == 0 {
		panic("broadcast: empty ring")
	}
	m := make([]int, len(members))
	copy(m, members)
	return &Ring{members: m}
}

// Holder returns the station currently holding the token.
func (r *Ring) Holder() int { return r.members[r.pos] }

// Phase returns the number of completed token cycles.
func (r *Ring) Phase() int64 { return r.phase }

// Members returns the ring size.
func (r *Ring) Len() int { return len(r.members) }

// ObserveSilence advances the token (the holder had nothing to send) and
// reports whether this completed a phase.
func (r *Ring) ObserveSilence() (phaseDone bool) {
	r.pos = (r.pos + 1) % len(r.members)
	r.turns++
	if r.turns == len(r.members) {
		r.turns = 0
		r.phase++
		return true
	}
	return false
}

// ObserveHeard records a successful transmission: the token stays with the
// holder.
func (r *Ring) ObserveHeard() {}

// SkipSilences applies m consecutive ObserveSilence transitions in
// closed form — the quiescence engine's batch observation for idle
// stretches where every holder is provably empty.
func (r *Ring) SkipSilences(m int64) {
	if m <= 0 {
		return
	}
	n := int64(len(r.members))
	t := int64(r.turns) + m
	r.pos = int((int64(r.pos) + m%n) % n)
	r.phase += t / n
	r.turns = int(t % n)
}

// Equal reports replica equality.
func (r *Ring) Equal(o *Ring) bool {
	if r.pos != o.pos || r.phase != o.phase || r.turns != o.turns || len(r.members) != len(o.members) {
		return false
	}
	for i := range r.members {
		if r.members[i] != o.members[i] {
			return false
		}
	}
	return true
}
