package broadcast

import (
	"earmac/internal/core"
	"earmac/internal/mac"
	"earmac/internal/pktq"
	"earmac/internal/sched"
)

// alwaysOn is the trivial oblivious schedule of the original broadcast
// setting: every station on in every round (energy cap n).
func alwaysOn(n int) sched.Schedule {
	return sched.Func{N: n, P: 1, F: func(int, int64) bool { return true }}
}

func identities(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// rrwStation runs Round-Robin-Withholding [18]: the token holder
// transmits all its packets, one per round; a silent round passes the
// token. Stable for every injection rate ρ < 1.
type rrwStation struct {
	id        int
	ring      *Ring
	q         *pktq.Queue
	pendingTx int64
	oldFirst  bool
	phaseOf   map[int64]int64 // packet ID → ring phase at injection (OF-RRW)
}

func newRRWStation(id int, members []int, oldFirst bool) *rrwStation {
	s := &rrwStation{
		id:        id,
		ring:      NewRing(members),
		q:         pktq.New(len(members)),
		pendingTx: -1,
		oldFirst:  oldFirst,
	}
	if oldFirst {
		s.phaseOf = make(map[int64]int64)
	}
	return s
}

func (s *rrwStation) Inject(p mac.Packet) {
	s.q.Push(p)
	if s.oldFirst {
		s.phaseOf[p.ID] = s.ring.Phase()
	}
}

func (s *rrwStation) Act(round int64) core.Action {
	s.pendingTx = -1
	if s.ring.Holder() != s.id {
		return core.Listen()
	}
	front, ok := s.q.Front()
	if !ok {
		return core.Listen()
	}
	if s.oldFirst && s.phaseOf[front.ID] >= s.ring.Phase() {
		// The oldest packet is new for this phase, hence all are: withhold.
		return core.Listen()
	}
	s.pendingTx = front.ID
	return core.Transmit(mac.PacketMsg(front))
}

func (s *rrwStation) Observe(round int64, fb mac.Feedback) {
	switch fb.Kind {
	case mac.FbHeard:
		if s.pendingTx >= 0 {
			s.q.Remove(s.pendingTx)
			if s.oldFirst {
				delete(s.phaseOf, s.pendingTx)
			}
		}
		s.ring.ObserveHeard()
	case mac.FbSilence:
		s.ring.ObserveSilence()
	}
	// Collisions cannot occur: only the unique token holder transmits.
}

func (s *rrwStation) QueueLen() int { return s.q.Len() }

func (s *rrwStation) HeldPackets() []mac.Packet { return s.q.Snapshot() }

// mbtfStation runs Move-Big-To-Front [17]: the token holder transmits
// until empty, flagging a control bit when its queue is big; heard big
// bits move the holder to the list front. Stable at injection rate 1.
type mbtfStation struct {
	id        int
	m         *MBTF
	q         *pktq.Queue
	ctrl      mac.Control // reused big-bit buffer; receivers never retain it
	pendingTx int64
}

func newMBTFStation(id int, members []int) *mbtfStation {
	return &mbtfStation{
		id: id, m: NewMBTF(members), q: pktq.New(len(members)),
		ctrl: mac.MakeControl(1), pendingTx: -1,
	}
}

func (s *mbtfStation) Inject(p mac.Packet) { s.q.Push(p) }

func (s *mbtfStation) Act(round int64) core.Action {
	s.pendingTx = -1
	if s.m.Holder() != s.id {
		return core.Listen()
	}
	front, ok := s.q.Front()
	if !ok {
		return core.Listen()
	}
	s.pendingTx = front.ID
	s.ctrl.SetBit(0, s.q.Len() >= s.m.Threshold())
	return core.Transmit(mac.Message{HasPacket: true, Packet: front, Ctrl: s.ctrl})
}

func (s *mbtfStation) Observe(round int64, fb mac.Feedback) {
	switch fb.Kind {
	case mac.FbHeard:
		if s.pendingTx >= 0 {
			s.q.Remove(s.pendingTx)
		}
		s.m.ObserveHeard(fb.Msg.Ctrl.Bit(0))
	case mac.FbSilence:
		s.m.ObserveSilence()
	}
}

func (s *mbtfStation) QueueLen() int { return s.q.Len() }

func (s *mbtfStation) HeldPackets() []mac.Packet { return s.q.Snapshot() }

// NewRRWSystem builds the standalone RRW baseline: n always-on stations
// (energy cap n), plain packets, direct delivery.
func NewRRWSystem(n int) *core.System {
	ids := identities(n)
	stations := make([]core.Protocol, n)
	for i := range stations {
		stations[i] = newRRWStation(i, ids, false)
	}
	return &core.System{
		Info: core.AlgorithmInfo{
			Name: "rrw", EnergyCap: n, PlainPacket: true, Direct: true, Oblivious: true,
		},
		Stations: stations,
		Schedule: alwaysOn(n),
	}
}

// NewOFRRWSystem builds the standalone OF-RRW baseline [3].
func NewOFRRWSystem(n int) *core.System {
	ids := identities(n)
	stations := make([]core.Protocol, n)
	for i := range stations {
		stations[i] = newRRWStation(i, ids, true)
	}
	return &core.System{
		Info: core.AlgorithmInfo{
			Name: "ofrrw", EnergyCap: n, PlainPacket: true, Direct: true, Oblivious: true,
		},
		Stations: stations,
		Schedule: alwaysOn(n),
	}
}

// NewMBTFSystem builds the standalone MBTF baseline [17] — throughput 1
// without an energy cap.
func NewMBTFSystem(n int) *core.System {
	ids := identities(n)
	stations := make([]core.Protocol, n)
	for i := range stations {
		stations[i] = newMBTFStation(i, ids)
	}
	return &core.System{
		Info: core.AlgorithmInfo{
			Name: "mbtf", EnergyCap: n, PlainPacket: false, Direct: true, Oblivious: true,
		},
		Stations: stations,
		Schedule: alwaysOn(n),
	}
}
