// Package cluster is the horizontal scale-out tier behind
// `earmac-serve -coordinator`: a coordinator process that accepts the
// same POST /v1/suite the single-process service serves, expands the
// Grid locally, shards the cells across a pool of earmac-serve worker
// processes over their existing /v1 HTTP endpoints, and merges the
// per-cell reports into a SuiteReport byte-identical to a
// single-process run of the same grid.
//
// Byte-identity is by construction, not by luck: the coordinator
// expands the Grid with the same earmac.NewSuite enumeration the
// in-process runner uses, workers return the canonical report bytes
// from their content-addressed caches, results are merged by cell
// index (never arrival order) through Suite.MergeResults, and the
// response is report.CanonicalJSON of the merged report — the same
// encoder every other tool uses.
//
// Robustness is first-class: workers are health-probed on
// /v1/healthz, each cell dispatch has a timeout and a bounded retry
// budget with re-dispatch to a different worker, slow attempts are
// hedged with a racing attempt on another worker, and a worker dying
// mid-grid only costs the retries that land on its corpse. The
// coordinator runs the same two-tier result cache as the workers
// (in-memory LRU over an optional disk tier), so a re-submitted grid
// is served without dispatching at all — across restarts when
// -cache-dir is set.
package cluster

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"earmac/internal/service"
)

// Options tunes a Coordinator. The zero value of every field but
// Workers selects the documented default.
type Options struct {
	// Workers lists the worker base URLs ("http://host:port").
	// At least one is required.
	Workers []string
	// CellTimeout bounds one dispatch attempt for one cell. Default 5m.
	CellTimeout time.Duration
	// Retries is the number of additional attempts a retryable cell
	// failure gets, re-dispatched to a different worker when one is
	// available. Default 3. A worker's 500 is never retried: the
	// simulation is deterministic, so every worker reproduces it.
	Retries int
	// HedgeAfter races a second attempt on another worker when the
	// first has not answered within this duration — the straggler
	// shield. Default 30s; negative disables hedging.
	HedgeAfter time.Duration
	// Parallel bounds the cells in flight per suite submission.
	// <= 0 means GOMAXPROCS.
	Parallel int
	// CacheEntries bounds the in-memory tier of the coordinator's
	// result cache. Default 1024.
	CacheEntries int
	// CacheDir, when non-empty, adds the disk tier (same layout as the
	// worker's -cache-dir): results survive coordinator restarts.
	CacheDir string
	// ProbeEvery is the worker health-probe period. Default 5s.
	ProbeEvery time.Duration
	// Client issues every worker request. Default &http.Client{}
	// (per-attempt deadlines come from CellTimeout).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.CellTimeout <= 0 {
		o.CellTimeout = 5 * time.Minute
	}
	if o.Retries == 0 {
		o.Retries = 3
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 30 * time.Second
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = 5 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// worker is the coordinator's view of one earmac-serve process.
// healthy is optimistic at construction: a worker is assumed alive
// until a probe or a failed dispatch says otherwise, so dispatch works
// before the first probe completes.
type worker struct {
	url        string
	healthy    atomic.Bool
	dispatched atomic.Int64 // /v1/run attempts sent to this worker
	failures   atomic.Int64 // transport failures and 503s observed
}

// Coordinator fans suite cells out to a pool of workers. It implements
// http.Handler with a /v1 surface mirroring the worker's where it
// makes sense (suite, run, healthz, cache/preload); the caller owns
// the listener.
type Coordinator struct {
	opts    Options
	mux     *http.ServeMux
	cache   *service.Cache
	client  *http.Client
	workers []*worker
	next    atomic.Uint64 // round-robin pick cursor

	// Cumulative dispatch counters, served by /v1/healthz. dispatched
	// counts attempts that went over the wire — the figure the disk-tier
	// acceptance check pins at zero for a fully cached grid.
	dispatched atomic.Int64
	retries    atomic.Int64
	hedges     atomic.Int64

	probeCtx  context.Context
	stopProbe context.CancelFunc
	probeDone chan struct{}
	started   sync.Once
	stopped   sync.Once
}

// New builds a Coordinator over the given worker pool. Call Start to
// launch health probing.
func New(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	if len(opts.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		opts:      opts,
		cache:     service.NewCache(opts.CacheEntries, opts.CacheDir),
		client:    opts.Client,
		probeCtx:  ctx,
		stopProbe: cancel,
		probeDone: make(chan struct{}),
	}
	for _, u := range opts.Workers {
		w := &worker{url: strings.TrimRight(u, "/")}
		w.healthy.Store(true)
		c.workers = append(c.workers, w)
	}
	c.routes()
	return c, nil
}

// Start launches the background health-probe loop. Safe to call once;
// serving without Start works (workers stay optimistically healthy
// until a dispatch fails) but dead workers are then only discovered
// the expensive way.
func (c *Coordinator) Start() {
	c.started.Do(func() {
		go c.probeLoop()
	})
}

// Stop halts health probing and waits for the in-flight sweep. It does
// not interrupt in-flight suite requests — the HTTP server's shutdown
// handles those.
func (c *Coordinator) Stop() {
	c.stopped.Do(func() {
		c.stopProbe()
		c.started.Do(func() { close(c.probeDone) }) // never started: nothing to wait for
		<-c.probeDone
	})
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

func (c *Coordinator) probeLoop() {
	defer close(c.probeDone)
	c.probeAll()
	t := time.NewTicker(c.opts.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-c.probeCtx.Done():
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

func (c *Coordinator) probeAll() {
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.probe(w)
		}()
	}
	wg.Wait()
}

// probe marks a worker healthy iff its /v1/healthz answers 200 within
// the probe budget. A draining worker answers 200 with status
// "draining" — it still completes in-flight work, so it stays
// dispatchable until it stops answering; submissions it refuses with
// 503 are retried elsewhere by the dispatch path.
func (c *Coordinator) probe(w *worker) {
	budget := c.opts.ProbeEvery
	if budget > 2*time.Second {
		budget = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(c.probeCtx, budget)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/v1/healthz", nil)
	if err != nil {
		w.healthy.Store(false)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		w.healthy.Store(false)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	w.healthy.Store(resp.StatusCode == http.StatusOK)
}

// pick selects the dispatch target: round-robin over healthy workers
// not yet tried for this cell, then healthy ones already tried, then —
// when every worker looks down — anything, so the last retry still
// probes reality rather than giving up on bookkeeping. Returns nil
// only for an empty pool (New rejects that).
func (c *Coordinator) pick(avoid map[*worker]bool) *worker {
	n := len(c.workers)
	if n == 0 {
		return nil
	}
	start := int(c.next.Add(1)-1) % n
	var healthyTried *worker
	for i := 0; i < n; i++ {
		w := c.workers[(start+i)%n]
		if !w.healthy.Load() {
			continue
		}
		if !avoid[w] {
			return w
		}
		if healthyTried == nil {
			healthyTried = w
		}
	}
	if healthyTried != nil {
		return healthyTried
	}
	for i := 0; i < n; i++ {
		if w := c.workers[(start+i)%n]; !avoid[w] {
			return w
		}
	}
	return c.workers[start]
}
