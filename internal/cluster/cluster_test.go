package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"earmac"
	"earmac/internal/report"
	"earmac/internal/service"
)

// newWorker starts one real earmac-serve service — the coordinator's
// workers in these tests are the actual single-process implementation,
// so byte-identity is checked against the real thing, not a stub.
func newWorker(t *testing.T, opts service.Options) *httptest.Server {
	t.Helper()
	svc := service.New(opts)
	svc.Start()
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Drain(ctx)
	})
	return ts
}

func newCoordinator(t *testing.T, opts Options) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c)
	t.Cleanup(func() {
		ts.Close()
		c.Stop()
	})
	return c, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// testGrid crosses two algorithms, two sizes and two rates at a small
// horizon: eight cells, a mix of stable and unstable verdicts.
const testGrid = `{"algorithms":["count-hop","orchestra"],"ns":[4,5],"rhos":[{"num":1,"den":3},{"num":3,"den":4}],"base":{"rounds":8000}}`

// singleProcess runs the grid in-process and returns the canonical
// SuiteReport bytes — the reference every distributed test compares
// against.
func singleProcess(t *testing.T, gridJSON string) []byte {
	t.Helper()
	var g earmac.Grid
	if err := json.Unmarshal([]byte(gridJSON), &g); err != nil {
		t.Fatal(err)
	}
	rep, err := earmac.NewSuite(g).Run(context.Background(), earmac.SuiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return report.CanonicalJSON(rep)
}

// TestCoordinatorMatchesSingleProcess is the tentpole guarantee: a grid
// sharded across two worker processes merges to the byte-identical
// SuiteReport a single process produces.
func TestCoordinatorMatchesSingleProcess(t *testing.T) {
	w1 := newWorker(t, service.Options{Workers: 2})
	w2 := newWorker(t, service.Options{Workers: 2})
	_, ts := newCoordinator(t, Options{Workers: []string{w1.URL, w2.URL}, Parallel: 4})

	want := singleProcess(t, testGrid)
	resp, got := post(t, ts.URL+"/v1/suite", testGrid)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suite: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("distributed SuiteReport differs from single-process:\n got: %s\nwant: %s", got, want)
	}
	if cells := resp.Header.Get("X-Earmac-Cells"); cells != "8" {
		t.Errorf("X-Earmac-Cells = %q, want 8", cells)
	}

	// Both workers did some of the grid: the coordinator sharded, it did
	// not just forward everything to one place.
	_, raw := get(t, ts.URL+"/v1/healthz")
	var h healthResponse
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatal(err)
	}
	if h.Totals.Dispatched != 8 {
		t.Errorf("dispatched = %d, want 8", h.Totals.Dispatched)
	}
	for _, ws := range h.Workers {
		if ws.Dispatched == 0 {
			t.Errorf("worker %s received no cells; sharding did not spread the grid", ws.URL)
		}
	}

	// Resubmission is served from the coordinator's cache: no new
	// dispatches, same bytes.
	resp, again := post(t, ts.URL+"/v1/suite", testGrid)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(want, again) {
		t.Fatalf("cached resubmit: %d, identical=%v", resp.StatusCode, bytes.Equal(want, again))
	}
	_, raw = get(t, ts.URL+"/v1/healthz")
	json.Unmarshal(raw, &h)
	if h.Totals.Dispatched != 8 {
		t.Errorf("dispatched after cached resubmit = %d, want still 8", h.Totals.Dispatched)
	}
	if h.Cache.Hits != 8 {
		t.Errorf("cache hits after resubmit = %d, want 8", h.Cache.Hits)
	}
}

// TestWorkerDiesMidGrid kills one of two workers after it has served
// its first cell. The coordinator must mark it unhealthy, re-dispatch
// the lost and remaining cells to the survivor, and still produce the
// byte-identical report.
func TestWorkerDiesMidGrid(t *testing.T) {
	w1 := newWorker(t, service.Options{Workers: 2})

	// The doomed worker: a real service wrapped so the test learns when
	// its first cell has been fully served.
	svc2 := service.New(service.Options{Workers: 2})
	svc2.Start()
	var once sync.Once
	served := make(chan struct{})
	w2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		svc2.ServeHTTP(w, r)
		if r.URL.Path == "/v1/run" {
			once.Do(func() { close(served) })
		}
	}))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc2.Drain(ctx)
	})

	_, ts := newCoordinator(t, Options{
		Workers:  []string{w1.URL, w2.URL},
		Parallel: 2,
		Retries:  4,
	})

	killed := make(chan struct{})
	go func() {
		<-served
		w2.CloseClientConnections()
		w2.Close()
		close(killed)
	}()

	want := singleProcess(t, testGrid)
	resp, got := post(t, ts.URL+"/v1/suite", testGrid)
	<-killed
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suite with dying worker: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("report after worker death differs from single-process:\n got: %s\nwant: %s", got, want)
	}
	_, raw := get(t, ts.URL+"/v1/healthz")
	var h healthResponse
	json.Unmarshal(raw, &h)
	if h.Status != "degraded" {
		t.Errorf("healthz status = %q after losing a worker, want degraded", h.Status)
	}
}

// TestDiskCacheServesRestartedCoordinator is the acceptance check for
// the disk tier: a grid run once through a coordinator with -cache-dir
// is served entirely from disk by a fresh coordinator over the same
// directory — zero dispatches, asserted via the healthz counters, even
// though its only configured worker is dead.
func TestDiskCacheServesRestartedCoordinator(t *testing.T) {
	dir := t.TempDir()
	w1 := newWorker(t, service.Options{Workers: 2})
	c1, ts1 := newCoordinator(t, Options{Workers: []string{w1.URL}, Parallel: 4, CacheDir: dir})
	resp, want := post(t, ts1.URL+"/v1/suite", testGrid)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d %s", resp.StatusCode, want)
	}
	ts1.Close()
	c1.Stop()

	// The restarted coordinator points at a worker that no longer
	// exists: only the disk tier can satisfy the grid.
	dead := w1.URL
	w1.Close()
	_, ts2 := newCoordinator(t, Options{Workers: []string{dead}, Parallel: 4, CacheDir: dir})
	resp, raw := post(t, ts2.URL+"/v1/cache/preload", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("preload: %d %s", resp.StatusCode, raw)
	}
	var pre struct {
		Loaded int `json:"loaded"`
	}
	json.Unmarshal(raw, &pre)
	if pre.Loaded != 8 {
		t.Fatalf("preload loaded %d entries, want 8", pre.Loaded)
	}
	resp, got := post(t, ts2.URL+"/v1/suite", testGrid)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached run: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("disk-served report differs:\n got: %s\nwant: %s", got, want)
	}
	_, raw = get(t, ts2.URL+"/v1/healthz")
	var h healthResponse
	json.Unmarshal(raw, &h)
	if h.Totals.Dispatched != 0 {
		t.Errorf("restarted coordinator dispatched %d cells, want 0 (disk tier must carry the grid)", h.Totals.Dispatched)
	}
}

// TestHedgedDispatch: worker 0 hangs, worker 1 is fine; with a short
// hedge delay the coordinator races a second attempt and the cell
// completes without waiting out the straggler.
func TestHedgedDispatch(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read runs — that is
		// what lets r.Context() fire when the coordinator abandons the
		// attempt (otherwise the disconnect goes unnoticed and the
		// handler stalls forever).
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // stalls until the coordinator gives up on this attempt
	}))
	defer func() {
		hang.CloseClientConnections()
		hang.Close()
	}()
	w2 := newWorker(t, service.Options{Workers: 2})
	_, ts := newCoordinator(t, Options{
		Workers:    []string{hang.URL, w2.URL},
		HedgeAfter: 50 * time.Millisecond,
	})
	resp, _ := post(t, ts.URL+"/v1/run", `{"algorithm":"count-hop","n":4,"rho_num":1,"rho_den":3,"rounds":5000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged run: %d", resp.StatusCode)
	}
	_, raw := get(t, ts.URL+"/v1/healthz")
	var h healthResponse
	json.Unmarshal(raw, &h)
	if h.Totals.Hedges == 0 {
		t.Error("straggling worker produced no hedged attempt")
	}
}

// TestRunProxyMatchesWorker: the coordinator's /v1/run is transparent —
// same bytes and cache headers a worker would have produced.
func TestRunProxyMatchesWorker(t *testing.T) {
	w1 := newWorker(t, service.Options{Workers: 1})
	_, ts := newCoordinator(t, Options{Workers: []string{w1.URL}})
	cfg := `{"algorithm":"orchestra","n":4,"rounds":5000}`
	respW, direct := post(t, w1.URL+"/v1/run", cfg)
	respC, proxied := post(t, ts.URL+"/v1/run", cfg)
	if respW.StatusCode != http.StatusOK || respC.StatusCode != http.StatusOK {
		t.Fatalf("status: worker %d, coordinator %d", respW.StatusCode, respC.StatusCode)
	}
	if !bytes.Equal(direct, proxied) {
		t.Fatalf("proxied run differs:\n%s\n%s", direct, proxied)
	}
	// Second submission through the coordinator is its own cache hit.
	respC2, again := post(t, ts.URL+"/v1/run", cfg)
	if respC2.Header.Get("X-Earmac-Cache") != "hit" {
		t.Errorf("second proxied run disposition = %q, want hit", respC2.Header.Get("X-Earmac-Cache"))
	}
	if !bytes.Equal(direct, again) {
		t.Error("cached proxy response not byte-identical")
	}
	if respC.Header.Get("X-Earmac-Job") != respW.Header.Get("X-Earmac-Job") {
		t.Errorf("job id differs: coordinator %q, worker %q",
			respC.Header.Get("X-Earmac-Job"), respW.Header.Get("X-Earmac-Job"))
	}
}

// TestSuiteValidationRejectsBeforeDispatch mirrors the worker's /v1/suite
// contract: one invalid cell rejects the grid, nothing is dispatched.
func TestSuiteValidationRejectsBeforeDispatch(t *testing.T) {
	w1 := newWorker(t, service.Options{Workers: 1})
	c, ts := newCoordinator(t, Options{Workers: []string{w1.URL}})
	resp, raw := post(t, ts.URL+"/v1/suite", `{"algorithms":["count-hop","no-such-alg"],"base":{"rounds":1000}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid grid: %d %s", resp.StatusCode, raw)
	}
	if n := c.dispatched.Load(); n != 0 {
		t.Errorf("invalid grid dispatched %d cells", n)
	}
}

// TestQueueFullRetryHonored: a worker whose queue is saturated answers
// 503 + Retry-After; the coordinator backs off and the cell eventually
// lands instead of erroring out.
func TestQueueFullRetryHonored(t *testing.T) {
	// One execution slot, queue depth 1: concurrent cells force 503s.
	w1 := newWorker(t, service.Options{Workers: 1, QueueDepth: 1})
	_, ts := newCoordinator(t, Options{
		Workers:  []string{w1.URL},
		Parallel: 4,
		Retries:  30,
	})
	want := singleProcess(t, testGrid)
	resp, got := post(t, ts.URL+"/v1/suite", testGrid)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("suite against saturated worker: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("report through saturated worker differs from single-process")
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}
