package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"earmac"
	"earmac/internal/service"
)

// workerError is a permanent per-cell failure: the worker ran the
// simulation and it failed deterministically, so re-dispatching the
// cell anywhere reproduces the same outcome. msg is the worker's error
// string with the job envelope stripped — exactly what a single-process
// runCell would have recorded in SuiteResult.Error.
type workerError struct {
	msg string
}

func (e *workerError) Error() string { return e.msg }

// retryableError is a transient dispatch failure — a transport error,
// a timeout, or a 503 (queue full / draining). after carries the
// worker's Retry-After wish, when it sent one.
type retryableError struct {
	err   error
	after time.Duration
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// resolve returns the canonical report bytes for a config: from the
// coordinator's two-tier cache when present (hit=true), otherwise
// dispatched to the worker pool and cached on success. The error is a
// *workerError for a deterministic simulation failure, or a transient
// condition (retries exhausted, no workers, context cancelled).
func (c *Coordinator) resolve(ctx context.Context, cfg earmac.Config) (raw []byte, hit bool, err error) {
	fp := cfg.Fingerprint()
	if e, ok := c.cache.Peek(fp); ok {
		c.cache.MarkHit()
		return e.Report, true, nil
	}
	c.cache.MarkMiss()
	raw, err = c.fetch(ctx, fp, cfg)
	if err != nil {
		return nil, false, err
	}
	c.cache.Put(fp, service.Entry{Report: raw})
	return raw, false, nil
}

// fetch runs one cell on the worker pool: up to 1+Retries attempts,
// each re-dispatched to a different worker when one is available, with
// hedging inside each attempt. Permanent failures short-circuit;
// Retry-After wishes from busy workers are honoured between attempts.
func (c *Coordinator) fetch(ctx context.Context, fp string, cfg earmac.Config) ([]byte, error) {
	body, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("encoding config: %w", err)
	}
	tried := make(map[*worker]bool)
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			c.retries.Add(1)
		}
		w := c.pick(tried)
		if w == nil {
			return nil, errors.New("cluster: no workers configured")
		}
		raw, err := c.attemptHedged(ctx, w, tried, fp, body)
		if err == nil {
			return raw, nil
		}
		var pe *workerError
		if errors.As(err, &pe) {
			return nil, err
		}
		lastErr = err
		tried[w] = true
		var re *retryableError
		if errors.As(err, &re) && re.after > 0 && attempt < c.opts.Retries {
			select {
			case <-time.After(re.after):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	return nil, fmt.Errorf("cell %s: %d attempts failed, last: %w", fp, c.opts.Retries+1, lastErr)
}

// attemptHedged runs one attempt on w and, if it is still in flight
// after HedgeAfter, races a second attempt on a different worker —
// first success wins, the loser's request is cancelled. A permanent
// failure from either attempt wins immediately (it is the cell's
// deterministic outcome, not the worker's fault).
func (c *Coordinator) attemptHedged(ctx context.Context, w *worker, tried map[*worker]bool, fp string, body []byte) ([]byte, error) {
	if c.opts.HedgeAfter < 0 {
		return c.attempt(ctx, w, fp, body)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		raw []byte
		err error
	}
	results := make(chan outcome, 2) // buffered: a losing attempt must not leak its goroutine
	go func() {
		raw, err := c.attempt(actx, w, fp, body)
		results <- outcome{raw, err}
	}()
	timer := time.NewTimer(c.opts.HedgeAfter)
	defer timer.Stop()
	outstanding, hedged := 1, false
	var firstErr error
	for {
		select {
		case out := <-results:
			outstanding--
			if out.err == nil {
				return out.raw, nil
			}
			var pe *workerError
			if errors.As(out.err, &pe) {
				return nil, out.err
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			if hedged {
				continue
			}
			avoid := map[*worker]bool{w: true}
			for t := range tried {
				avoid[t] = true
			}
			h := c.pick(avoid)
			if h == nil || h == w {
				continue // nobody to hedge onto
			}
			hedged = true
			outstanding++
			c.hedges.Add(1)
			go func() {
				raw, err := c.attempt(actx, h, fp, body)
				results <- outcome{raw, err}
			}()
		}
	}
}

// attempt sends one POST /v1/run to one worker and classifies the
// response: 200 is the canonical report bytes; 503 is retryable with
// the worker's Retry-After wish; transport failures are retryable and
// mark the worker unhealthy until a probe revives it; anything else is
// the cell's deterministic outcome and permanent.
func (c *Coordinator) attempt(ctx context.Context, w *worker, fp string, body []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.CellTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, &retryableError{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	w.dispatched.Add(1)
	c.dispatched.Add(1)
	resp, err := c.client.Do(req)
	if err != nil {
		w.healthy.Store(false)
		w.failures.Add(1)
		return nil, &retryableError{err: fmt.Errorf("worker %s: %w", w.url, err)}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		w.healthy.Store(false)
		w.failures.Add(1)
		return nil, &retryableError{err: fmt.Errorf("worker %s: reading response: %w", w.url, err)}
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return raw, nil
	case http.StatusServiceUnavailable, http.StatusConflict:
		// Busy, draining, or the job was cancelled under us on that
		// worker — another worker (or the same one, later) can run it.
		w.failures.Add(1)
		return nil, &retryableError{
			err:   fmt.Errorf("worker %s: %s", w.url, bodyError(raw, resp.StatusCode)),
			after: retryAfter(resp),
		}
	default:
		return nil, &workerError{msg: permanentMessage(fp, resp.StatusCode, raw)}
	}
}

// bodyError extracts the service's {"error": ...} message, falling
// back to the status code.
func bodyError(raw []byte, status int) string {
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	return http.StatusText(status)
}

// permanentMessage recovers the worker-side simulation error. The
// worker's 500 body wraps the RunContext error as
// "job <fp> failed: <msg>"; stripping the envelope leaves <msg> —
// byte-for-byte what a single-process runCell records, which keeps
// error cells inside the byte-identity guarantee.
func permanentMessage(fp string, status int, raw []byte) string {
	msg := bodyError(raw, status)
	if rest, ok := strings.CutPrefix(msg, "job "+fp+" failed: "); ok {
		return rest
	}
	return msg
}

// retryAfter parses a Retry-After header (delta-seconds form, the only
// one the service emits), clamped to [0, 30s] so a confused worker
// cannot park the coordinator.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	if secs > 30 {
		secs = 30
	}
	return time.Duration(secs) * time.Second
}
