package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"earmac"
	"earmac/internal/pool"
	"earmac/internal/report"
	"earmac/internal/service"
)

// The coordinator's HTTP surface — a subset of the worker's /v1,
// same shapes, so clients point at a coordinator without changing:
//
//	POST /v1/suite          expand a Grid, shard the cells across the
//	                        worker pool, respond with the merged
//	                        SuiteReport (canonical bytes, synchronous)
//	POST /v1/run            run one Config through the cache + pool
//	POST /v1/cache/preload  warm the in-memory LRU from the disk tier
//	GET  /v1/healthz        coordinator + per-worker health and counters
func (c *Coordinator) routes() {
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/suite", c.handleSuite)
	c.mux.HandleFunc("POST /v1/run", c.handleRun)
	c.mux.HandleFunc("POST /v1/cache/preload", c.handlePreload)
	c.mux.HandleFunc("GET /v1/healthz", c.handleHealthz)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}

// handleSuite is the tentpole endpoint: one Grid in, one merged
// SuiteReport out. Cells run concurrently across the worker pool
// (bounded by Options.Parallel) and land in the results slice by
// index, so the merge — and therefore the response bytes — cannot
// depend on which worker answered first. Validation mirrors the
// worker's /v1/suite: any invalid cell rejects the whole grid before
// anything is dispatched.
func (c *Coordinator) handleSuite(w http.ResponseWriter, r *http.Request) {
	var g earmac.Grid
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding grid: %w", err))
		return
	}
	suite := earmac.NewSuite(g)
	for i, cfg := range suite.Configs {
		if err := cfg.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("cell %d: %w", i, err))
			return
		}
	}
	ctx := r.Context()
	results := make([]earmac.SuiteResult, len(suite.Configs))
	pool.RunIndexed(ctx, len(suite.Configs), c.opts.Parallel, func(i int) {
		results[i] = c.runCell(ctx, i, suite.Configs[i])
	})
	// Cells the pool never reached (cancelled request) still hold their
	// zero value; only completed results enter the merge — MergeResults
	// fills every gap with the same skipped placeholder Suite.Run uses.
	done := results[:0]
	for _, res := range results {
		if res.Verdict != "" {
			done = append(done, res)
		}
	}
	rep := suite.MergeResults(done)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Earmac-Cells", strconv.Itoa(rep.Cells))
	w.Write(report.CanonicalJSON(rep))
}

// runCell resolves one cell to a SuiteResult, mirroring the verdict
// derivation of the single-process runCell: a report with Stable set is
// "stable", otherwise "unstable"; a deterministic worker failure is
// "error" with the worker's message verbatim; a cell the pool could not
// place (every retry exhausted, or the request cancelled) stays
// "skipped" — it was not run, and the summary says so.
func (c *Coordinator) runCell(ctx context.Context, i int, cfg earmac.Config) earmac.SuiteResult {
	res := earmac.SuiteResult{Index: i, Config: cfg}
	raw, _, err := c.resolve(ctx, cfg)
	if err != nil {
		var pe *workerError
		switch {
		case errors.As(err, &pe):
			res.Verdict = earmac.VerdictError
			res.Error = pe.msg
		default:
			res.Verdict = earmac.VerdictSkipped
			res.Error = err.Error()
		}
		return res
	}
	if err := json.Unmarshal(raw, &res.Report); err != nil {
		res.Verdict = earmac.VerdictError
		res.Error = fmt.Sprintf("decoding worker report: %v", err)
		return res
	}
	if res.Report.Stable {
		res.Verdict = earmac.VerdictStable
	} else {
		res.Verdict = earmac.VerdictUnstable
	}
	return res
}

// handleRun proxies a single config through the coordinator's cache
// and the worker pool, byte-identical to asking a worker directly —
// same canonical bytes, same X-Earmac-Cache/X-Earmac-Job headers.
func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	var cfg earmac.Config
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding config: %w", err))
		return
	}
	if err := cfg.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fp := cfg.Fingerprint()
	raw, hit, err := c.resolve(r.Context(), cfg)
	if err != nil {
		var pe *workerError
		if errors.As(err, &pe) {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("job %s failed: %s", fp, pe.msg))
			return
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	disposition := "miss"
	if hit {
		disposition = "hit"
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Earmac-Cache", disposition)
	w.Header().Set("X-Earmac-Job", fp)
	w.Write(raw)
}

func (c *Coordinator) handlePreload(w http.ResponseWriter, r *http.Request) {
	n, err := c.cache.Preload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("preloading cache: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Loaded int `json:"loaded"`
	}{n})
}

// workerStatus is one worker's row in the coordinator healthz.
type workerStatus struct {
	URL        string `json:"url"`
	Healthy    bool   `json:"healthy"`
	Dispatched int64  `json:"dispatched"`
	Failures   int64  `json:"failures"`
}

// dispatchTotals are the coordinator-wide counters. Dispatched counts
// attempts that went over the wire; a grid served entirely from the
// cache leaves it untouched — the figure the disk-tier smoke check
// pins at zero.
type dispatchTotals struct {
	Dispatched int64 `json:"dispatched"`
	Retries    int64 `json:"retries"`
	Hedges     int64 `json:"hedges"`
}

type healthResponse struct {
	Status  string             `json:"status"` // ok | degraded | down
	Role    string             `json:"role"`
	Workers []workerStatus     `json:"workers"`
	Totals  dispatchTotals     `json:"totals"`
	Cache   service.CacheStats `json:"cache"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Role: "coordinator",
		Totals: dispatchTotals{
			Dispatched: c.dispatched.Load(),
			Retries:    c.retries.Load(),
			Hedges:     c.hedges.Load(),
		},
		Cache: c.cache.Stats(),
	}
	healthy := 0
	for _, wk := range c.workers {
		ok := wk.healthy.Load()
		if ok {
			healthy++
		}
		resp.Workers = append(resp.Workers, workerStatus{
			URL:        wk.url,
			Healthy:    ok,
			Dispatched: wk.dispatched.Load(),
			Failures:   wk.failures.Load(),
		})
	}
	switch {
	case healthy == len(c.workers):
		resp.Status = "ok"
	case healthy > 0:
		resp.Status = "degraded"
	default:
		resp.Status = "down"
	}
	writeJSON(w, http.StatusOK, resp)
}
