package cluster

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"earmac/internal/service"
)

// TestSweepServerGoldenCSV shells the real earmac-sweep binary with
// -server pointed at an in-process coordinator (one worker behind it)
// and compares stdout against the committed sweep-seed.csv fixture —
// the same golden file the local-run CLI test uses. One fixture, two
// execution paths: -server must change where the cells run, never a
// byte of the output.
//
// The test lives here rather than next to the other CLI golden tests
// because the root package cannot import internal/cluster (cluster
// imports earmac).
func TestSweepServerGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out via go run")
	}
	worker := newWorker(t, service.Options{Workers: 2})
	_, ts := newCoordinator(t, Options{Workers: []string{worker.URL}, Parallel: 2})

	cmd := exec.Command("go", "run", "earmac/cmd/earmac-sweep",
		"-mode", "seed", "-alg", "orchestra", "-pattern", "bernoulli",
		"-n", "5", "-rho", "1/3", "-beta", "2", "-seeds", "1,2,3", "-rounds", "2000",
		"-server", ts.URL)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("earmac-sweep -server: %v\nstderr:\n%s", err, errb.String())
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "cli", "sweep-seed.csv"))
	if err != nil {
		t.Fatalf("reading golden fixture: %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-server sweep differs from the local-run golden fixture:\ngot:\n%s\nwant:\n%s", out.Bytes(), want)
	}

	// And the misuse path: -server pointed at a plain worker explains
	// itself instead of dumping a bare status code.
	cmd = exec.Command("go", "run", "earmac/cmd/earmac-sweep",
		"-mode", "seed", "-alg", "orchestra", "-pattern", "bernoulli",
		"-n", "5", "-rho", "1/3", "-beta", "2", "-seeds", "1,2,3", "-rounds", "2000",
		"-server", worker.URL)
	errb.Reset()
	cmd.Stderr = &errb
	if err := cmd.Run(); err == nil {
		t.Fatal("-server against a plain worker succeeded, want a coordinator hint")
	}
	if !strings.Contains(errb.String(), "-coordinator") {
		t.Errorf("stderr missing the -coordinator hint:\n%s", errb.String())
	}
}
