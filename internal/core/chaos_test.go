package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"earmac/internal/mac"
	"earmac/internal/metrics"
)

// chaosProto acts randomly every round — on/off, listen/transmit, light
// or packet messages — to fuzz the simulator's resolution and accounting
// paths, including collisions, which the deterministic algorithms never
// produce.
type chaosProto struct {
	rng   *rand.Rand
	queue []mac.Packet
	txIdx int
}

func (p *chaosProto) Inject(pkt mac.Packet) { p.queue = append(p.queue, pkt) }

func (p *chaosProto) Act(round int64) Action {
	p.txIdx = -1
	switch p.rng.Intn(4) {
	case 0:
		return Off()
	case 1:
		return Listen()
	case 2: // light message
		return Transmit(mac.CtrlMsg(mac.MakeControl(4)))
	default:
		if len(p.queue) == 0 {
			return Listen()
		}
		p.txIdx = p.rng.Intn(len(p.queue))
		return Transmit(mac.PacketMsg(p.queue[p.txIdx]))
	}
}

func (p *chaosProto) Observe(round int64, fb mac.Feedback) {
	// On success, drop the transmitted packet whether or not it was
	// delivered (chaos mode loses undelivered packets deliberately; the
	// test disables conservation checking).
	if fb.Kind == mac.FbHeard && p.txIdx >= 0 {
		p.queue = append(p.queue[:p.txIdx], p.queue[p.txIdx+1:]...)
	}
	p.txIdx = -1
}

func (p *chaosProto) QueueLen() int { return len(p.queue) }

type chaosAdv struct {
	rng *rand.Rand
	n   int
}

func (a *chaosAdv) Inject(round int64) []Injection {
	injs := make([]Injection, a.rng.Intn(3))
	for i := range injs {
		injs[i] = Injection{Station: a.rng.Intn(a.n), Dest: a.rng.Intn(a.n)}
	}
	return injs
}

// TestChaosAccountingConsistency drives random protocols and checks the
// simulator's channel accounting invariants hold for any behaviour:
// every round is exactly one of heard/silent/collision, deliveries never
// exceed heard rounds, and energy stays within [0, n].
func TestChaosAccountingConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		protos := make([]Protocol, n)
		for i := range protos {
			protos[i] = &chaosProto{rng: rand.New(rand.NewSource(seed + int64(i)))}
		}
		system := &System{
			Info:     AlgorithmInfo{Name: "chaos", EnergyCap: n},
			Stations: protos,
		}
		sim := NewSim(system, &chaosAdv{rng: rng, n: n}, Options{})
		if err := sim.Run(2000); err != nil {
			return false
		}
		tr := sim.Tracker()
		if tr.HeardRounds+tr.SilentRounds+tr.CollisionRounds != tr.Rounds {
			return false
		}
		if tr.DeliveryRounds > tr.HeardRounds || tr.LightRounds > tr.HeardRounds {
			return false
		}
		if tr.Delivered > tr.Injected {
			return false
		}
		if tr.MaxEnergy > int64(n) || tr.MaxEnergy < 0 {
			return false
		}
		// Chaos transmits constantly from several stations: with n ≥ 3 we
		// expect all three channel outcomes to occur.
		if n >= 3 && (tr.CollisionRounds == 0 || tr.HeardRounds == 0 || tr.SilentRounds == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestChaosWithConservationCatchesLoss runs chaos protocols under the
// conservation checker, which must flag the deliberate packet loss.
func TestChaosWithConservationCatchesLoss(t *testing.T) {
	n := 4
	protos := make([]Protocol, n)
	for i := range protos {
		protos[i] = &chaosProto{rng: rand.New(rand.NewSource(int64(i) + 7))}
	}
	system := &System{
		Info:     AlgorithmInfo{Name: "chaos", EnergyCap: n},
		Stations: protos,
	}
	// chaosProto does not implement PacketHolder: the checker must
	// report that rather than crash.
	sim := NewSim(system, &chaosAdv{rng: rand.New(rand.NewSource(3)), n: n}, Options{CheckEvery: 100})
	err := sim.Run(1000)
	if err == nil {
		t.Error("conservation check should fail for protocols without PacketHolder")
	}
}

// chaosRun drives n chaos protocols for the given rounds on the chosen
// path and returns the flat counters.
func chaosRun(t *testing.T, seed int64, n int, rounds int64, opt Options) metrics.Counters {
	t.Helper()
	protos := make([]Protocol, n)
	for i := range protos {
		protos[i] = &chaosProto{rng: rand.New(rand.NewSource(seed + int64(i)))}
	}
	system := &System{
		Info:     AlgorithmInfo{Name: "chaos", EnergyCap: n},
		Stations: protos,
	}
	tr := metrics.NewTracker()
	opt.Tracker = tr
	sim := NewSim(system, &chaosAdv{rng: rand.New(rand.NewSource(seed ^ 0x5eed)), n: n}, opt)
	if sim.FastPath() == (opt.ForceChecked || opt.Tracer != nil) {
		t.Fatal("path selection does not match options")
	}
	if err := sim.Run(rounds); err != nil {
		t.Fatal(err)
	}
	return tr.Counters
}

// TestChaosFastCheckedEquivalence replays identical chaos executions —
// including collisions, light messages, and deliberate packet loss, which
// the deterministic algorithms never produce — through the fast and the
// fully-checked round loop and requires bit-identical flat counters.
func TestChaosFastCheckedEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		n := 2 + int(seed%5)
		fast := chaosRun(t, seed, n, 4000, Options{})
		checked := chaosRun(t, seed, n, 4000, Options{ForceChecked: true})
		if fast != checked {
			t.Errorf("seed %d: fast and checked counters differ:\nfast:    %+v\nchecked: %+v",
				seed, fast, checked)
		}
	}
}
