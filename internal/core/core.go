// Package core implements the executable model of the paper: a
// synchronous multiple access channel shared by n stations under an
// energy cap, with adversarial packet injection.
//
// The simulator drives per-station protocol replicas in lockstep rounds.
// In every round it (1) lets the adversary inject packets, (2) asks every
// station for its action (off, listen, or transmit), (3) resolves the
// channel (success / collision / silence), (4) determines ground-truth
// deliveries, and (5) hands feedback to the switched-on stations. It
// validates the model constraints the paper states: the energy cap, the
// plain-packet discipline, schedule conformance for energy-oblivious
// algorithms, and exactly-once packet ownership.
package core

import (
	"earmac/internal/mac"
	"earmac/internal/sched"
)

// Action is a station's decision for one round. A switched-off station
// (On == false) can neither transmit nor receive. A switched-on station
// either transmits a message or listens.
type Action struct {
	On       bool
	Transmit bool
	Msg      mac.Message
}

// Listen is the action of a station that is on and sensing the channel.
func Listen() Action { return Action{On: true} }

// Off is the action of a switched-off station.
func Off() Action { return Action{} }

// Transmit is the action of a station transmitting msg.
func Transmit(msg mac.Message) Action {
	return Action{On: true, Transmit: true, Msg: msg}
}

// Protocol is one station's replica of a distributed routing algorithm.
// Implementations must rely only on information available to the station:
// the global round number (stations share a synchronized clock), packets
// injected into this station, and channel feedback from rounds in which
// this station was switched on.
type Protocol interface {
	// Inject notifies the station of a packet injected into it. Injection
	// happens at the start of a round, before actions are decided, and
	// reaches the station whether it is on or off.
	Inject(p mac.Packet)
	// Act returns the station's action for the given round. It is called
	// exactly once per round for every station, in increasing round order.
	Act(round int64) Action
	// Observe delivers channel feedback for a round in which the station
	// was switched on. It is never called for switched-off rounds.
	Observe(round int64, fb mac.Feedback)
	// QueueLen returns the number of packets currently queued here.
	QueueLen() int
}

// PacketHolder is an optional Protocol extension that exposes the held
// packets for invariant checking (exactly-once ownership, direct routing).
// All algorithms in this repository implement it.
type PacketHolder interface {
	HeldPackets() []mac.Packet
}

// AlgorithmInfo describes the declared properties of an algorithm, in the
// paper's taxonomy. The simulator validates the declarations at runtime.
type AlgorithmInfo struct {
	Name string
	// EnergyCap is the number of simultaneously-on stations the algorithm
	// needs (3 for Orchestra, 2 for Count-Hop and Adjust-Window, k for the
	// oblivious algorithms).
	EnergyCap int
	// PlainPacket algorithms transmit messages consisting of exactly one
	// packet and no control bits.
	PlainPacket bool
	// Direct algorithms never relay: every packet hops once, from the
	// station it was injected into straight to its destination.
	Direct bool
	// Oblivious algorithms fix every station's on/off pattern in advance.
	Oblivious bool
}

// System is an instantiated algorithm: one protocol replica per station
// plus its declared properties. Schedule is non-nil exactly for oblivious
// algorithms and is cross-checked against the stations' actual behaviour.
type System struct {
	Info     AlgorithmInfo
	Stations []Protocol
	Schedule sched.Schedule
	// Idle, when non-nil, declares the system's periodic idle-round
	// profile for the quiescence fast-forward engine (see skip.go).
	// Constructors set it only when every station implements
	// mac.Skipper; nil keeps the classic per-round loop.
	Idle IdleProfiler
}

// N returns the number of stations.
func (s *System) N() int { return len(s.Stations) }

// TotalQueue sums the stations' queue lengths.
func (s *System) TotalQueue() int64 {
	var total int64
	for _, st := range s.Stations {
		total += int64(st.QueueLen())
	}
	return total
}

// Injection is an adversary's decision to inject one packet into Station
// addressed to Dest.
type Injection struct {
	Station int
	Dest    int
}

// Adversary generates packet injections. Implementations enforce their
// own (ρ, β) leaky-bucket constraint; see the adversary package.
type Adversary interface {
	// Inject returns the injections for the given round. Called once per
	// round before stations act.
	Inject(round int64) []Injection
}

// InjectAppender is an optional Adversary extension for the simulator's
// allocation-free round loop: InjectAppend appends this round's
// injections to buf and returns the extended slice, so the caller can
// reuse one scratch buffer across rounds. The simulator detects the
// capability once at NewSim and then calls InjectAppend instead of
// Inject on every round; the two must produce the same injections.
// The returned slice is owned by the caller and is only valid until the
// next call.
type InjectAppender interface {
	InjectAppend(round int64, buf []Injection) []Injection
}

// RoundObserver is an optional Adversary extension for adaptive
// adversaries (e.g. the Lemma 1 construction) that react to which
// stations were switched on. ObserveRound is called after each round with
// the on/off vector; the slice is reused and must not be retained.
type RoundObserver interface {
	ObserveRound(round int64, on []bool)
}

// QueueObserver is an optional Adversary extension for adaptive
// adversaries that react to queue build-up (the adversary knows the
// algorithm and can simulate it, so exposing queue lengths grants no
// power the model doesn't already allow). ObserveQueues is called after
// each round; the slice is reused and must not be retained.
type QueueObserver interface {
	ObserveQueues(round int64, queueLens []int)
}

// FeedbackObserver is an optional Adversary extension receiving the
// channel feedback of every round, letting an adaptive adversary track
// protocol state (token positions, phases) exactly — again, power the
// omniscient adversary of the model already has.
type FeedbackObserver interface {
	ObserveFeedback(round int64, fb mac.Feedback)
}

// Tracer is an optional hook receiving a full view of every round, used
// for debugging and the example binaries. The slices are reused between
// rounds and must not be retained.
type Tracer interface {
	TraceRound(round int64, actions []Action, fb mac.Feedback, delivered []mac.Packet)
}
