package core

// The quiescence fast-forward engine (DESIGN.md §16). All methods here
// run only on the fast path with skipOK resolved at NewSim; the
// checked path never skips. See skip.go for the contracts.

// tryEnterQuiescence is called after a completed fast round whose
// total queue was zero; s.round is the next unexecuted round. It asks
// every station whether its idle behavior is fast-forwardable and the
// profiler for the system's idle cycle, anchoring both at s.round.
func (s *Sim) tryEnterQuiescence() {
	for _, sk := range s.skippers {
		if !sk.Quiescent() {
			return
		}
	}
	s.idleCycle = s.sys.Idle.AppendIdleCycle(s.round, s.idleCycle[:0])
	if len(s.idleCycle) == 0 {
		return // profiler declined from this state
	}
	s.idleAnchor = s.round
	s.qFrom = s.round
	s.idleBreakAt = -1
	if h, ok := s.sys.Idle.(IdleHorizon); ok {
		s.idleBreakAt = h.NextIdleBreak(s.round)
	}
	s.buildIdlePrefix()
	s.quiescent = true
}

// buildIdlePrefix precomputes one-cycle prefix sums for the span-skip
// accrual; buffers are reused so re-entering quiescence allocates
// nothing in steady state.
func (s *Sim) buildIdlePrefix() {
	p := len(s.idleCycle)
	if cap(s.prefEnergy) < p+1 {
		//earmac:alloc -- one-time growth to the profile's cycle length, reused afterwards
		s.prefEnergy = make([]int64, p+1)
		//earmac:alloc -- one-time growth to the profile's cycle length, reused afterwards
		s.prefLight = make([]int64, p+1)
		//earmac:alloc -- one-time growth to the profile's cycle length, reused afterwards
		s.prefCtrl = make([]int64, p+1)
	}
	s.prefEnergy = s.prefEnergy[:p+1]
	s.prefLight = s.prefLight[:p+1]
	s.prefCtrl = s.prefCtrl[:p+1]
	s.prefEnergy[0], s.prefLight[0], s.prefCtrl[0] = 0, 0, 0
	s.cycleMaxE = 0
	for i, e := range s.idleCycle {
		s.prefEnergy[i+1] = s.prefEnergy[i] + int64(e.Energy)
		s.prefLight[i+1] = s.prefLight[i]
		s.prefCtrl[i+1] = s.prefCtrl[i]
		if e.Light {
			s.prefLight[i+1]++
			s.prefCtrl[i+1] += int64(e.CtrlBits)
		}
		if e.Energy > s.cycleMaxE {
			s.cycleMaxE = e.Energy
		}
	}
}

// idleEntry returns the profile entry describing round t.
func (s *Sim) idleEntry(t int64) IdleRound {
	return s.idleCycle[(t-s.idleAnchor)%int64(len(s.idleCycle))]
}

// prefRange sums a one-cycle prefix array over profile offsets [a, b)
// measured from the anchor, extended periodically.
func (s *Sim) prefRange(pref []int64, a, b int64) int64 {
	p := int64(len(s.idleCycle))
	total := pref[p]
	return (b/p)*total + pref[b%p] - ((a/p)*total + pref[a%p])
}

// quiescentAdvance executes one quiescent round — an O(1) tick, or a
// wake-up full sweep when the round carries an event — and then
// attempts a span skip toward end. The per-round external state
// (adversary bucket, replay cursors, the Disrupted hook) advances
// exactly as on the classic loop: gather and the disruption consult
// run for every ticked round.
//
//earmac:hotpath
func (s *Sim) quiescentAdvance(end int64) {
	t := s.round
	injs := s.gather(t)
	var d Disrupt
	if s.disrupt != nil {
		d = s.disrupt(t)
	}
	// A wake-up is forced by a pending injection, the idle-profile
	// horizon, or a disrupted round some station would observe (the
	// collision feedback alters station state, so it cannot be ticked;
	// with zero idle energy nobody is listening and the tick just
	// counts the jammed/outaged round).
	if len(injs) > 0 || t == s.idleBreakAt || (d != 0 && s.idleEntry(t).Energy > 0) {
		s.wake(t)
		s.stepFastFrom(t, injs, d)
		return
	}
	s.tick(t, d)
	s.trySpan(end)
}

// wake replays the skipped idle rounds into the stations and leaves
// quiescence; the caller then executes round t as a normal full sweep.
func (s *Sim) wake(t int64) {
	if t > s.qFrom {
		for _, sk := range s.skippers {
			sk.SkipIdle(s.qFrom, t)
		}
	}
	s.quiescent = false
}

// tick is the O(1) quiescent round: the station sweep collapses to the
// idle profile's entry for round t. The caller has already consulted
// the adversary (no injections) and the disruption hook.
//
//earmac:hotpath
func (s *Sim) tick(t int64, d Disrupt) {
	tr := s.tracker
	e := s.idleEntry(t)
	switch {
	case d != 0:
		tr.CollisionRounds++
		if d&DisruptJam != 0 {
			tr.JammedRounds++
		}
		if d&DisruptOutage != 0 {
			tr.OutageRounds++
		}
	case e.Light:
		tr.HeardRounds++
		tr.LightRounds++
		tr.ControlBits += int64(e.CtrlBits)
	default:
		tr.SilentRounds++
	}
	tr.ObserveRound(t, 0, e.Energy)
	s.round++
}

// trySpan attempts the closed-form span skip after a successful tick,
// bounded by end (the Run horizon), the idle-profile break, the
// adversary's next possible event, and the disruption horizon. A
// Disrupted hook without DisruptHorizon pins spans (its per-round
// consult may have side effects the engine cannot replay); external
// injections (a topology layer's relay feed) pin spans too — the
// network layer skips spans itself, under its own guarantees.
//
//earmac:hotpath
func (s *Sim) trySpan(end int64) {
	if s.advSkip == nil || s.extInj != nil {
		return
	}
	from := s.round
	limit := end
	if s.disrupt != nil {
		if s.dhor == nil {
			return
		}
		if dh := s.dhor(from); dh >= 0 && dh < limit {
			limit = dh
		}
	}
	if to := s.SpanHorizon(from, limit); to > from+1 {
		s.SkipSpan(to)
	}
}

// Quiescent reports whether the simulator is inside a quiescent
// stretch (fast path only; always false otherwise).
func (s *Sim) Quiescent() bool { return s.quiescent }

// QuiescentConst returns the constant idle round of a quiescent sim
// whose profile is period-1, and whether that holds. The network span
// barrier requires constant profiles so per-round channel totals stay
// aligned across an arbitrary window.
func (s *Sim) QuiescentConst() (IdleRound, bool) {
	if !s.quiescent || len(s.idleCycle) != 1 {
		return IdleRound{}, false
	}
	return s.idleCycle[0], true
}

// SpanHorizon returns the furthest round to <= limit such that rounds
// [from, to) are provably idle by the simulator's own constraints (the
// idle-profile break and the adversary's next possible event); from
// must equal Round(). It does not consult the Disrupted hook — the
// single-channel span gates on Options.DisruptHorizon, and a topology
// layer owns its own disruption horizon.
func (s *Sim) SpanHorizon(from, limit int64) int64 {
	if !s.quiescent || s.advSkip == nil || from != s.round {
		return from
	}
	to := limit
	if s.idleBreakAt >= 0 && s.idleBreakAt < to {
		to = s.idleBreakAt
	}
	if nr := s.advSkip.NextEventRound(from); nr >= 0 && nr < to {
		to = nr
	}
	if to < from {
		to = from
	}
	return to
}

// SkipSpan accrues rounds [Round(), to) in closed form and jumps the
// clock to to. The window must have been established via SpanHorizon
// (plus, for topology layers, their own guarantee that no external
// injection or disruption lands inside it). Station state advances
// lazily — at the next wake-up or Settle.
//
//earmac:hotpath
func (s *Sim) SkipSpan(to int64) {
	from := s.round
	if to <= from {
		return
	}
	m := to - from
	tr := s.tracker
	a, b := from-s.idleAnchor, to-s.idleAnchor
	lights := s.prefRange(s.prefLight, a, b)
	tr.HeardRounds += lights
	tr.LightRounds += lights
	tr.SilentRounds += m - lights
	tr.ControlBits += s.prefRange(s.prefCtrl, a, b)
	esum := s.prefRange(s.prefEnergy, a, b)
	maxE := s.cycleMaxE
	if p := int64(len(s.idleCycle)); m < p {
		maxE = 0
		for r := from; r < to; r++ {
			if e := s.idleEntry(r).Energy; e > maxE {
				maxE = e
			}
		}
	}
	tr.ObserveQuietSpan(from, m, esum, maxE)
	if s.advSkip != nil {
		s.advSkip.SkipIdle(from, to)
	}
	s.round = to
}

// Settle replays any pending skipped rounds into the stations without
// leaving quiescence, so externally visible station state (queue
// snapshots, duty-cycle sleep totals) is exact at Run boundaries. It
// is idempotent and cheap when nothing is pending.
func (s *Sim) Settle() {
	if !s.quiescent || s.round == s.qFrom {
		return
	}
	for _, sk := range s.skippers {
		sk.SkipIdle(s.qFrom, s.round)
	}
	s.qFrom = s.round
}
