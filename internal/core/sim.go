package core

import (
	"fmt"
	"slices"

	"earmac/internal/mac"
	"earmac/internal/metrics"
)

// Options configures a simulation run.
type Options struct {
	// Strict makes model violations return errors instead of only being
	// recorded in the tracker. Tests run strict; long benchmarks may not.
	Strict bool
	// CheckEvery enables the packet-conservation invariant check every so
	// many rounds (0 disables). Checking requires all stations to
	// implement PacketHolder and costs O(total queue) per check.
	CheckEvery int64
	// Tracker receives statistics; a fresh one is created when nil.
	Tracker *metrics.Tracker
	// Tracer, when non-nil, receives a full view of every round.
	Tracer Tracer
	// InjectionObserver, when non-nil, receives every round's injections
	// right after the adversary produces them (before range validation),
	// on both the fast and checked paths — the hook the trace recorder
	// (internal/scenario) captures replayable runs with. The slice is
	// reused between rounds and must not be retained. Unlike Tracer it
	// does not force the checked path. Externally-sourced injections
	// (ExtraInjections) are NOT reported: they are derived state, fully
	// reproducible from the recorded adversarial stream.
	InjectionObserver func(round int64, injs []Injection)
	// ExtraInjections, when non-nil, supplies externally-sourced
	// injections — relay arrivals from a surrounding topology layer
	// (internal/network) — appended after the adversary's injections
	// each round. It reuses the InjectAppender buffer contract, so the
	// steady-state round loop stays allocation-free; when nil (every
	// single-channel run) the hook costs one pointer comparison.
	ExtraInjections InjectAppender
	// DeliveryObserver, when non-nil, receives every delivered packet on
	// both simulator paths, in the round it was delivered. It is the
	// hook relay layers intercept deliveries with; like
	// InjectionObserver it does not force the checked path.
	DeliveryObserver func(round int64, p mac.Packet)
	// ForceChecked keeps the fully-validating round loop even when the
	// fast path would apply (see Sim.FastPath). Used by the equivalence
	// tests; never needed in normal operation.
	ForceChecked bool
	// Disrupted, when non-nil, is consulted exactly once per round on
	// both paths — after injections and actions, before channel
	// resolution — and returns the round's disruption flags. A disrupted
	// round delivers nothing: every switched-on station observes
	// FbCollision regardless of how many stations transmitted (jamming
	// noise and a dead channel are indistinguishable from a collision at
	// the receivers), stations still spend their energy, and the tracker
	// counts the round as a collision plus the matching Jammed/Outaged
	// counter. The hook runs on the fast path too, so it must not
	// allocate in steady state.
	Disrupted func(round int64) Disrupt
	// DropObserver, when non-nil, receives every packet that dies
	// mid-route: a heard round whose destination station is switched off
	// under a direct algorithm (see Counters.Dropped for the exact
	// semantics). Topology layers use it to reclaim per-packet relay
	// state; like DeliveryObserver it runs on both paths.
	DropObserver func(round int64, p mac.Packet)
	// RoundEnd, when non-nil, runs at the very end of every round on
	// both paths, after all statistics for the round are folded. It is
	// the hook duty-cycle recorders use to observe per-round sleep
	// state at a point where every station has acted. Because it
	// observes every round, it disables the quiescence fast-forward
	// engine entirely.
	RoundEnd func(round int64)
	// NoSkip disables the quiescence fast-forward engine (quiesce.go)
	// even when the system declares an idle profile, forcing the
	// classic per-round loop. The engine is bit-identical by
	// construction; the flag exists as an escape hatch and for the
	// equivalence tests.
	NoSkip bool
	// DisruptHorizon, when non-nil alongside Disrupted, returns a
	// lower bound on the earliest round >= from whose Disrupted
	// consult may return nonzero (-1: never). It gates the span-skip
	// tier: a Disrupted hook without a horizon pins spans, because the
	// hook may have per-round side effects the engine cannot replay
	// (quiescent ticks still consult it every round).
	DisruptHorizon func(from int64) int64
}

// Disrupt is a bit set of reasons a round was externally disrupted.
type Disrupt uint8

const (
	// DisruptJam marks a round jammed by a budgeted jamming adversary.
	DisruptJam Disrupt = 1 << iota
	// DisruptOutage marks a round inside a channel outage window.
	DisruptOutage
)

// Sim drives one system against one adversary.
//
// At construction the simulator selects one of two round loops:
//
//   - The checked path runs every model validation the paper states —
//     per-round schedule conformance, conservation tracking, tracing.
//     It is selected in strict mode, when a Tracer is attached, or when
//     conservation checking (Options.CheckEvery) is on.
//   - The fast path is the steady-state loop used by benchmarks and
//     sweeps: no tracer, no conservation bookkeeping, no per-round
//     schedule scan, and no allocation — injections land in a reused
//     scratch buffer (see InjectAppender) and all statistics go to the
//     tracker's flat counters. Cheap validations (energy cap, the
//     transmit-while-off and plain-packet disciplines, injection ranges)
//     still run, so the tracker totals match the checked path exactly
//     for any well-behaved system; only schedule-conformance violations
//     would go unnoticed.
type Sim struct {
	sys     *System
	adv     Adversary
	opt     Options
	tracker *metrics.Tracker
	fast    bool

	// Adversary capabilities, resolved once so the round loop performs no
	// per-round type assertions.
	advAppend InjectAppender
	roundObs  RoundObserver
	queueObs  QueueObserver
	fbObs     FeedbackObserver
	injObs    func(round int64, injs []Injection)
	extInj    InjectAppender
	delObs    func(round int64, p mac.Packet)
	disrupt   func(round int64) Disrupt
	dropObs   func(round int64, p mac.Packet)
	roundEnd  func(round int64)

	round    int64
	nextID   int64
	actions  []Action
	on       []bool
	queueLen []int
	injBuf   []Injection  // reused injection scratch (fast and checked path)
	delBuf   []mac.Packet // reused delivered-packet scratch (checked path)
	// live maps in-flight packet IDs to their packets; maintained only
	// when conservation checking is enabled.
	live      map[int64]mac.Packet
	delivered map[int64]bool

	// Quiescence fast-forward state (fast path only; see quiesce.go).
	skipOK      bool          // engine enabled for this sim
	quiescent   bool          // currently inside a quiescent stretch
	qFrom       int64         // first round the stations have not executed
	skippers    []mac.Skipper // per-station, populated only when skipOK
	advSkip     EventSkipper  // adversary skip contract, when supported
	dhor        func(from int64) int64
	idleCycle   []IdleRound // reused idle-profile buffer
	idleAnchor  int64       // round idleCycle[0] describes
	idleBreakAt int64       // profile horizon (-1: indefinite)
	prefEnergy  []int64     // prefix sums over idleCycle (span accrual)
	prefLight   []int64
	prefCtrl    []int64
	cycleMaxE   int
}

// NewSim prepares a simulation starting at round 0.
func NewSim(sys *System, adv Adversary, opt Options) *Sim {
	t := opt.Tracker
	if t == nil {
		t = metrics.NewTracker()
	}
	s := &Sim{
		sys:      sys,
		adv:      adv,
		opt:      opt,
		tracker:  t,
		actions:  make([]Action, sys.N()),
		on:       make([]bool, sys.N()),
		queueLen: make([]int, sys.N()),
	}
	if adv != nil {
		s.advAppend, _ = adv.(InjectAppender)
		s.roundObs, _ = adv.(RoundObserver)
		s.queueObs, _ = adv.(QueueObserver)
		s.fbObs, _ = adv.(FeedbackObserver)
	}
	s.injObs = opt.InjectionObserver
	s.extInj = opt.ExtraInjections
	s.delObs = opt.DeliveryObserver
	s.disrupt = opt.Disrupted
	s.dropObs = opt.DropObserver
	s.roundEnd = opt.RoundEnd
	if opt.CheckEvery > 0 {
		s.live = make(map[int64]mac.Packet)
		s.delivered = make(map[int64]bool)
	}
	s.fast = !opt.Strict && opt.CheckEvery <= 0 && opt.Tracer == nil && !opt.ForceChecked
	s.dhor = opt.DisruptHorizon
	if adv != nil {
		s.advSkip, _ = adv.(EventSkipper)
	}
	// The fast-forward engine needs an idle profile, a Skipper at every
	// station, and the absence of every per-round observer the engine
	// cannot replay: RoundEnd and the adaptive-adversary hooks see each
	// round individually, so any of them pins the loop to per-round.
	if s.fast && !opt.NoSkip && sys.Idle != nil && opt.RoundEnd == nil &&
		s.roundObs == nil && s.queueObs == nil && s.fbObs == nil {
		skippers := make([]mac.Skipper, len(sys.Stations))
		ok := true
		for i, st := range sys.Stations {
			if skippers[i], ok = st.(mac.Skipper); !ok {
				break
			}
		}
		if ok {
			s.skippers = skippers
			s.skipOK = true
		}
	}
	return s
}

// Tracker returns the statistics collector.
func (s *Sim) Tracker() *metrics.Tracker { return s.tracker }

// Round returns the number of completed rounds.
func (s *Sim) Round() int64 { return s.round }

// System returns the simulated system.
func (s *Sim) System() *System { return s.sys }

// FastPath reports whether the allocation-free steady-state loop was
// selected at construction (no strict mode, no conservation checking, no
// tracer, not forced off).
func (s *Sim) FastPath() bool { return s.fast }

// SkipCapable reports whether the quiescence fast-forward engine was
// enabled at construction: the fast path was selected, NoSkip is off,
// the system declares an idle profile, every station implements
// mac.Skipper, and no per-round observer pins the loop.
func (s *Sim) SkipCapable() bool { return s.skipOK }

func (s *Sim) violate(format string, args ...any) error {
	s.tracker.Violate(format, args...)
	if s.opt.Strict {
		return fmt.Errorf("round %d: "+format, append([]any{s.round}, args...)...)
	}
	return nil
}

// Run executes the given number of rounds. In strict mode it stops at the
// first model violation. On the fast path quiescent stretches advance by
// O(1) ticks and closed-form span skips (quiesce.go); Run settles any
// pending skip before returning, so station state is exact at the exit.
func (s *Sim) Run(rounds int64) error {
	if s.fast {
		end := s.round + rounds
		for s.round < end {
			if s.quiescent {
				s.quiescentAdvance(end)
			} else {
				s.stepFast()
			}
		}
		s.Settle()
		return nil
	}
	for i := int64(0); i < rounds; i++ {
		if err := s.stepChecked(); err != nil {
			return err
		}
	}
	return nil
}

// Step executes one round on whichever path was selected at NewSim.
func (s *Sim) Step() error {
	if s.fast {
		if s.quiescent {
			s.quiescentAdvance(s.round + 1)
		} else {
			s.stepFast()
		}
		return nil
	}
	return s.stepChecked()
}

// inject obtains this round's injections, reusing the scratch buffer when
// the adversary supports the append contract.
func (s *Sim) inject(t int64) []Injection {
	if s.advAppend != nil {
		s.injBuf = s.advAppend.InjectAppend(t, s.injBuf[:0])
		return s.injBuf
	}
	if s.adv != nil {
		return s.adv.Inject(t)
	}
	return nil
}

// gather assembles one round's full injection list: the adversary's
// injections (reported to InjectionObserver) followed by the
// externally-sourced ones (ExtraInjections; not reported — they are
// derived state, reproducible from the adversarial stream). Both paths
// call it; with no external injector it is exactly the old inject +
// observe sequence, so single-channel runs keep the same cost.
func (s *Sim) gather(t int64) []Injection {
	injs := s.inject(t)
	if s.injObs != nil && len(injs) > 0 {
		s.injObs(t, injs)
	}
	if s.extInj == nil {
		return injs
	}
	if s.advAppend == nil {
		// injs is owned by the adversary (or nil); move it into the
		// scratch buffer before appending the external stream.
		s.injBuf = append(s.injBuf[:0], injs...)
	}
	s.injBuf = s.extInj.InjectAppend(t, s.injBuf)
	return s.injBuf
}

// NextPacketID returns the ID the next accepted injection will be
// assigned. IDs are handed out sequentially, in injection order, to
// every in-range injection; topology layers use this to mirror the
// simulator's ID assignment without a per-packet callback.
func (s *Sim) NextPacketID() int64 { return s.nextID }

// stepFast is the allocation-free steady-state round loop. It performs
// the same channel resolution, delivery accounting, and cheap model
// validation as the checked path (so tracker totals agree), but skips the
// per-round schedule-conformance scan, conservation bookkeeping, and
// tracing.
//
//earmac:hotpath
func (s *Sim) stepFast() {
	t := s.round
	// 1. Adversarial injection (plus externally-sourced arrivals), and
	// the round's disruption flags. The Disrupted consult commutes with
	// the station sweep — it interacts with nothing before channel
	// resolution — so hoisting it keeps both paths bit-identical while
	// letting the quiescence engine share stepFastFrom on wake-up.
	injs := s.gather(t)
	var disrupted Disrupt
	if s.disrupt != nil {
		disrupted = s.disrupt(t)
	}
	s.stepFastFrom(t, injs, disrupted)
}

// stepFastFrom is the station sweep of one fast round: injections and
// disruption flags have already been obtained for round t. It is the
// shared tail of stepFast and the quiescence engine's wake-up path.
//
//earmac:hotpath
func (s *Sim) stepFastFrom(t int64, injs []Injection, disrupted Disrupt) {
	n := s.sys.N()
	tr := s.tracker

	for _, in := range injs {
		if in.Station < 0 || in.Station >= n || in.Dest < 0 || in.Dest >= n {
			tr.Violate("injection out of range: %+v", in)
			continue
		}
		p := mac.Packet{ID: s.nextID, Src: in.Station, Dest: in.Dest, Injected: t}
		s.nextID++
		s.sys.Stations[in.Station].Inject(p)
		tr.Injected++
	}

	// 2. Station actions. Unlike the checked path, only the transmitted
	// message is retained — there is no tracer to hand the full action
	// vector to.
	energy := 0
	transmitters := 0
	lastTx := -1
	var txMsg mac.Message
	for i, st := range s.sys.Stations {
		a := st.Act(t)
		if a.On {
			energy++
		}
		if a.Transmit {
			if !a.On {
				tr.Violate("station %d transmits while off", i)
			} else {
				transmitters++
				lastTx = i
				txMsg = a.Msg
			}
		}
		s.on[i] = a.On
	}

	// 3. Model validation (cheap checks only; the schedule-conformance
	// scan is checked-path-only).
	if energy > s.sys.Info.EnergyCap {
		tr.Violate("%d stations on exceeds energy cap %d", energy, s.sys.Info.EnergyCap)
	}
	if s.sys.Info.PlainPacket && transmitters == 1 {
		if !txMsg.HasPacket || len(txMsg.Ctrl) > 0 {
			tr.Violate("station %d violates plain-packet discipline (packet=%v, ctrl=%d bits)",
				lastTx, txMsg.HasPacket, txMsg.Ctrl.Bits())
		}
	}

	// 4. Channel resolution and ground-truth delivery. An externally
	// disrupted round (jam or outage) overrides the contention outcome:
	// nothing is delivered and every listener observes a collision.
	var fb mac.Feedback
	switch {
	case disrupted != 0:
		fb.Kind = mac.FbCollision
		tr.CollisionRounds++
		if disrupted&DisruptJam != 0 {
			tr.JammedRounds++
		}
		if disrupted&DisruptOutage != 0 {
			tr.OutageRounds++
		}
	case transmitters == 0:
		fb.Kind = mac.FbSilence
		tr.SilentRounds++
	case transmitters == 1:
		msg := txMsg
		fb = mac.Feedback{Kind: mac.FbHeard, Msg: msg}
		tr.HeardRounds++
		tr.ControlBits += int64(msg.Ctrl.Bits())
		if msg.IsLight() {
			tr.LightRounds++
		} else if s.on[msg.Packet.Dest] {
			tr.DeliveryRounds++
			tr.ObserveDelivery(t - msg.Packet.Injected)
			if s.delObs != nil {
				s.delObs(t, msg.Packet)
			}
		} else if s.sys.Info.Direct {
			// A direct algorithm's transmitter treats an uncontended
			// heard round as an acknowledgement and retires the packet,
			// but the destination was switched off (duty-cycled): the
			// packet dies mid-route.
			tr.Dropped++
			if s.dropObs != nil {
				s.dropObs(t, msg.Packet)
			}
		}
	default:
		fb.Kind = mac.FbCollision
		tr.CollisionRounds++
	}

	// 5. Feedback to switched-on stations.
	for i, st := range s.sys.Stations {
		if s.on[i] {
			st.Observe(t, fb)
		}
	}

	if s.roundObs != nil {
		s.roundObs.ObserveRound(t, s.on)
	}
	if s.fbObs != nil {
		s.fbObs.ObserveFeedback(t, fb)
	}

	var totalQueue int64
	for i, st := range s.sys.Stations {
		l := st.QueueLen()
		s.queueLen[i] = l
		totalQueue += int64(l)
	}
	if s.queueObs != nil {
		s.queueObs.ObserveQueues(t, s.queueLen)
	}
	tr.ObserveStationQueues(s.queueLen)
	tr.ObserveRound(t, totalQueue, energy)
	if s.roundEnd != nil {
		s.roundEnd(t)
	}
	s.round++
	if s.skipOK && totalQueue == 0 && !s.quiescent {
		s.tryEnterQuiescence()
	}
}

// stepChecked executes one fully-validated round.
func (s *Sim) stepChecked() error {
	n := s.sys.N()
	t := s.round

	// 1. Adversarial injection (plus externally-sourced arrivals).
	injs := s.gather(t)
	for _, in := range injs {
		if in.Station < 0 || in.Station >= n || in.Dest < 0 || in.Dest >= n {
			if err := s.violate("injection out of range: %+v", in); err != nil {
				return err
			}
			continue
		}
		p := mac.Packet{ID: s.nextID, Src: in.Station, Dest: in.Dest, Injected: t}
		s.nextID++
		if s.live != nil {
			s.live[p.ID] = p
		}
		s.sys.Stations[in.Station].Inject(p)
		s.tracker.ObserveInjections(1)
	}

	// 2. Station actions.
	energy := 0
	transmitters := 0
	lastTx := -1
	for i, st := range s.sys.Stations {
		a := st.Act(t)
		s.actions[i] = a
		s.on[i] = a.On
		if a.On {
			energy++
		}
		if a.Transmit {
			if !a.On {
				if err := s.violate("station %d transmits while off", i); err != nil {
					return err
				}
				a.Transmit = false
				s.actions[i] = a
				continue
			}
			transmitters++
			lastTx = i
		}
	}

	// 3. Model validation.
	if energy > s.sys.Info.EnergyCap {
		if err := s.violate("%d stations on exceeds energy cap %d", energy, s.sys.Info.EnergyCap); err != nil {
			return err
		}
	}
	if s.sys.Schedule != nil {
		for i := 0; i < n; i++ {
			if s.on[i] != s.sys.Schedule.On(i, t) {
				if err := s.violate("station %d violates oblivious schedule: on=%v", i, s.on[i]); err != nil {
					return err
				}
			}
		}
	}
	if s.sys.Info.PlainPacket && transmitters == 1 {
		msg := s.actions[lastTx].Msg
		if !msg.HasPacket || len(msg.Ctrl) > 0 {
			if err := s.violate("station %d violates plain-packet discipline (packet=%v, ctrl=%d bits)",
				lastTx, msg.HasPacket, msg.Ctrl.Bits()); err != nil {
				return err
			}
		}
	}

	// 4. Channel resolution and ground-truth delivery. Disruption
	// overrides the contention outcome exactly as on the fast path.
	var disrupted Disrupt
	if s.disrupt != nil {
		disrupted = s.disrupt(t)
	}
	var fb mac.Feedback
	deliveredPkts := s.delBuf[:0]
	switch {
	case disrupted != 0:
		fb = mac.Feedback{Kind: mac.FbCollision}
		s.tracker.CollisionRounds++
		if disrupted&DisruptJam != 0 {
			s.tracker.JammedRounds++
		}
		if disrupted&DisruptOutage != 0 {
			s.tracker.OutageRounds++
		}
	case transmitters == 0:
		fb = mac.Feedback{Kind: mac.FbSilence}
		s.tracker.SilentRounds++
	case transmitters == 1:
		msg := s.actions[lastTx].Msg
		fb = mac.Feedback{Kind: mac.FbHeard, Msg: msg}
		s.tracker.HeardRounds++
		s.tracker.ControlBits += int64(msg.Ctrl.Bits())
		if msg.IsLight() {
			s.tracker.LightRounds++
		} else if s.on[msg.Packet.Dest] {
			p := msg.Packet
			s.tracker.DeliveryRounds++
			s.tracker.ObserveDelivery(t - p.Injected)
			if s.delObs != nil {
				s.delObs(t, p)
			}
			deliveredPkts = append(deliveredPkts, p)
			if s.live != nil {
				if s.delivered[p.ID] {
					if err := s.violate("packet %v delivered twice", p); err != nil {
						return err
					}
				}
				s.delivered[p.ID] = true
				delete(s.live, p.ID)
			}
		} else if s.sys.Info.Direct {
			// Mid-route death (see the fast path): the direct
			// transmitter retires the packet on an uncontended heard
			// round, but the duty-cycled destination was off. The
			// packet leaves conservation tracking as consumed — no
			// station may hold it afterwards.
			p := msg.Packet
			s.tracker.Dropped++
			if s.dropObs != nil {
				s.dropObs(t, p)
			}
			if s.live != nil {
				s.delivered[p.ID] = true
				delete(s.live, p.ID)
			}
		}
	default:
		fb = mac.Feedback{Kind: mac.FbCollision}
		s.tracker.CollisionRounds++
	}
	s.delBuf = deliveredPkts

	// 5. Feedback to switched-on stations.
	for i, st := range s.sys.Stations {
		if s.on[i] {
			st.Observe(t, fb)
		}
	}

	if s.roundObs != nil {
		s.roundObs.ObserveRound(t, s.on)
	}
	if s.fbObs != nil {
		s.fbObs.ObserveFeedback(t, fb)
	}
	if s.opt.Tracer != nil {
		s.opt.Tracer.TraceRound(t, s.actions, fb, deliveredPkts)
	}

	var totalQueue int64
	for i, st := range s.sys.Stations {
		l := st.QueueLen()
		s.queueLen[i] = l
		totalQueue += int64(l)
	}
	if s.queueObs != nil {
		s.queueObs.ObserveQueues(t, s.queueLen)
	}
	s.tracker.ObserveStationQueues(s.queueLen)
	s.tracker.ObserveRound(t, totalQueue, energy)
	if s.roundEnd != nil {
		s.roundEnd(t)
	}
	s.round++

	if s.opt.CheckEvery > 0 && s.round%s.opt.CheckEvery == 0 {
		if err := s.CheckConservation(); err != nil {
			return err
		}
	}
	return nil
}

// CheckConservation verifies exactly-once packet ownership: every
// in-flight packet is held by exactly one station, no station holds a
// delivered or unknown packet, and (for algorithms declared direct) every
// packet still sits in the station it was injected into. It requires
// conservation tracking (Options.CheckEvery > 0) and stations
// implementing PacketHolder.
func (s *Sim) CheckConservation() error {
	if s.live == nil {
		return fmt.Errorf("core: conservation tracking disabled (set Options.CheckEvery)")
	}
	seen := make(map[int64]int, len(s.live))
	for i, st := range s.sys.Stations {
		h, ok := st.(PacketHolder)
		if !ok {
			return fmt.Errorf("core: station %d does not implement PacketHolder", i)
		}
		for _, p := range h.HeldPackets() {
			seen[p.ID]++
			if seen[p.ID] > 1 {
				if err := s.violate("packet %v held by more than one station", p); err != nil {
					return err
				}
			}
			if s.delivered[p.ID] {
				if err := s.violate("station %d holds already-delivered packet %v", i, p); err != nil {
					return err
				}
			} else if _, isLive := s.live[p.ID]; !isLive {
				if err := s.violate("station %d holds unknown packet %v", i, p); err != nil {
					return err
				}
			}
			if s.sys.Info.Direct && i != p.Src {
				if err := s.violate("direct algorithm relayed packet %v to station %d", p, i); err != nil {
					return err
				}
			}
		}
	}
	// Check live packets in id order, so multi-packet violation reports
	// are deterministic (violations land in reports and trace footers;
	// map order must never reach them).
	ids := make([]int64, 0, len(s.live))
	for id := range s.live { //earmac:nondet -- key collection only; ids are sorted before any observable use
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		if seen[id] != 1 {
			if err := s.violate("in-flight packet %v held by %d stations", s.live[id], seen[id]); err != nil {
				return err
			}
		}
	}
	return nil
}

// LivePackets returns the number of injected-but-undelivered packets
// (available only with conservation tracking).
func (s *Sim) LivePackets() int { return len(s.live) }
