package core

import (
	"strings"
	"testing"

	"earmac/internal/mac"
	"earmac/internal/sched"
)

// scriptProto follows a fixed per-round action script and records what it
// hears. Injected packets accumulate in a simple queue; the script can
// transmit the oldest one with txPacket.
type scriptProto struct {
	acts       []Action
	txPacket   []bool // for rounds where acts[i].Transmit: attach oldest queued packet
	queue      []mac.Packet
	heard      []mac.Feedback
	rounds     []int64
	removeOnTx bool
}

func (p *scriptProto) Inject(pkt mac.Packet) { p.queue = append(p.queue, pkt) }

func (p *scriptProto) Act(round int64) Action {
	if int(round) >= len(p.acts) {
		return Off()
	}
	a := p.acts[round]
	if a.Transmit && int(round) < len(p.txPacket) && p.txPacket[round] && len(p.queue) > 0 {
		a.Msg = mac.PacketMsg(p.queue[0])
		if p.removeOnTx {
			p.queue = p.queue[1:]
		}
	}
	return a
}

func (p *scriptProto) Observe(round int64, fb mac.Feedback) {
	p.heard = append(p.heard, fb)
	p.rounds = append(p.rounds, round)
	// Consume packets addressed to us... scriptProto has no identity; tests
	// handle removal via removeOnTx on the sender side.
}

func (p *scriptProto) QueueLen() int { return len(p.queue) }

func (p *scriptProto) HeldPackets() []mac.Packet {
	out := make([]mac.Packet, len(p.queue))
	copy(out, p.queue)
	return out
}

// injectOnce injects a fixed list at round 0.
type injectOnce struct{ injs []Injection }

func (a *injectOnce) Inject(round int64) []Injection {
	if round == 0 {
		return a.injs
	}
	return nil
}

func sys(cap int, protos ...Protocol) *System {
	return &System{
		Info:     AlgorithmInfo{Name: "test", EnergyCap: cap},
		Stations: protos,
	}
}

func TestSilenceFeedback(t *testing.T) {
	a := &scriptProto{acts: []Action{Listen()}}
	b := &scriptProto{acts: []Action{Off()}}
	s := NewSim(sys(2, a, b), &injectOnce{}, Options{Strict: true})
	if err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(a.heard) != 1 || a.heard[0].Kind != mac.FbSilence {
		t.Errorf("listener heard %+v, want silence", a.heard)
	}
	if len(b.heard) != 0 {
		t.Error("off station received feedback")
	}
	if s.Tracker().SilentRounds != 1 {
		t.Error("silent round not counted")
	}
}

func TestSuccessfulTransmissionHeardByAllOn(t *testing.T) {
	ctrl := mac.MakeControl(4)
	ctrl.SetBit(1, true)
	tx := &scriptProto{acts: []Action{Transmit(mac.CtrlMsg(ctrl))}}
	rx := &scriptProto{acts: []Action{Listen()}}
	off := &scriptProto{acts: []Action{Off()}}
	s := NewSim(sys(2, tx, rx, off), &injectOnce{}, Options{Strict: true})
	if err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	// The transmitter hears its own message.
	for name, p := range map[string]*scriptProto{"tx": tx, "rx": rx} {
		if len(p.heard) != 1 || p.heard[0].Kind != mac.FbHeard {
			t.Fatalf("%s heard %+v", name, p.heard)
		}
		if !p.heard[0].Msg.Ctrl.Bit(1) {
			t.Errorf("%s control bits corrupted", name)
		}
	}
	if len(off.heard) != 0 {
		t.Error("off station heard a message")
	}
	if s.Tracker().LightRounds != 1 {
		t.Error("light round not counted")
	}
	if s.Tracker().ControlBits != 8 {
		t.Errorf("ControlBits = %d, want 8", s.Tracker().ControlBits)
	}
}

func TestCollision(t *testing.T) {
	tx1 := &scriptProto{acts: []Action{Transmit(mac.CtrlMsg(nil))}}
	tx2 := &scriptProto{acts: []Action{Transmit(mac.CtrlMsg(nil))}}
	s := NewSim(sys(2, tx1, tx2), &injectOnce{}, Options{Strict: true})
	if err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	if tx1.heard[0].Kind != mac.FbCollision || tx2.heard[0].Kind != mac.FbCollision {
		t.Error("colliding transmitters should hear collision")
	}
	if s.Tracker().CollisionRounds != 1 {
		t.Error("collision round not counted")
	}
}

func TestDeliveryRequiresDestinationOn(t *testing.T) {
	// Station 0 transmits a packet to station 1 twice; station 1 is off in
	// round 0 and on in round 1. Only the second transmission delivers.
	tx := &scriptProto{
		acts:       []Action{Transmit(mac.Message{}), Transmit(mac.Message{})},
		txPacket:   []bool{true, true},
		removeOnTx: false,
	}
	rx := &scriptProto{acts: []Action{Off(), Listen()}}
	s := NewSim(sys(2, tx, rx), &injectOnce{injs: []Injection{{Station: 0, Dest: 1}}}, Options{Strict: true})
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if s.Tracker().Delivered != 0 {
		t.Fatal("delivered although destination off")
	}
	tx.removeOnTx = true // deliver and remove on second attempt
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if s.Tracker().Delivered != 1 {
		t.Fatal("not delivered although destination on")
	}
	if s.Tracker().MaxLatency != 1 {
		t.Errorf("latency = %d, want 1", s.Tracker().MaxLatency)
	}
}

func TestSelfDelivery(t *testing.T) {
	// A station transmitting a self-addressed packet while on delivers it
	// to itself (it hears its own message).
	tx := &scriptProto{
		acts:       []Action{Transmit(mac.Message{})},
		txPacket:   []bool{true},
		removeOnTx: true,
	}
	s := NewSim(sys(1, tx), &injectOnce{injs: []Injection{{Station: 0, Dest: 0}}}, Options{Strict: true})
	if err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	if s.Tracker().Delivered != 1 {
		t.Error("self-addressed packet not delivered")
	}
}

func TestEnergyCapViolation(t *testing.T) {
	a := &scriptProto{acts: []Action{Listen()}}
	b := &scriptProto{acts: []Action{Listen()}}
	c := &scriptProto{acts: []Action{Listen()}}
	s := NewSim(sys(2, a, b, c), &injectOnce{}, Options{Strict: true})
	err := s.Run(1)
	if err == nil || !strings.Contains(err.Error(), "energy cap") {
		t.Errorf("want energy cap violation, got %v", err)
	}
	// Non-strict mode records it instead.
	a2 := &scriptProto{acts: []Action{Listen()}}
	b2 := &scriptProto{acts: []Action{Listen()}}
	c2 := &scriptProto{acts: []Action{Listen()}}
	s2 := NewSim(sys(2, a2, b2, c2), &injectOnce{}, Options{})
	if err := s2.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(s2.Tracker().Violations) != 1 {
		t.Error("violation not recorded in non-strict mode")
	}
}

func TestTransmitWhileOffViolation(t *testing.T) {
	bad := &scriptProto{acts: []Action{{On: false, Transmit: true}}}
	s := NewSim(sys(2, bad), &injectOnce{}, Options{Strict: true})
	err := s.Run(1)
	if err == nil || !strings.Contains(err.Error(), "transmits while off") {
		t.Errorf("want transmit-while-off violation, got %v", err)
	}
}

func TestPlainPacketViolation(t *testing.T) {
	// A plain-packet algorithm transmitting control bits is flagged.
	tx := &scriptProto{acts: []Action{Transmit(mac.CtrlMsg(mac.MakeControl(3)))}}
	system := sys(2, tx)
	system.Info.PlainPacket = true
	s := NewSim(system, &injectOnce{}, Options{Strict: true})
	err := s.Run(1)
	if err == nil || !strings.Contains(err.Error(), "plain-packet") {
		t.Errorf("want plain-packet violation, got %v", err)
	}
}

func TestObliviousScheduleViolation(t *testing.T) {
	// Schedule says station 0 must be off in round 0, but it listens.
	st := &scriptProto{acts: []Action{Listen()}}
	system := sys(2, st)
	system.Schedule = sched.Func{N: 1, P: 1, F: func(int, int64) bool { return false }}
	s := NewSim(system, &injectOnce{}, Options{Strict: true})
	err := s.Run(1)
	if err == nil || !strings.Contains(err.Error(), "oblivious schedule") {
		t.Errorf("want schedule violation, got %v", err)
	}
}

func TestInjectionOutOfRange(t *testing.T) {
	st := &scriptProto{acts: []Action{Off()}}
	s := NewSim(sys(2, st), &injectOnce{injs: []Injection{{Station: 5, Dest: 0}}}, Options{Strict: true})
	err := s.Run(1)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("want out-of-range violation, got %v", err)
	}
}

func TestConservationDetectsLoss(t *testing.T) {
	// A protocol that silently drops its packet: conservation must flag the
	// lost packet.
	drop := &scriptProto{acts: []Action{Off()}}
	s := NewSim(sys(2, drop), &injectOnce{injs: []Injection{{Station: 0, Dest: 0}}}, Options{Strict: true, CheckEvery: 1})
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	drop.queue = nil // lose the packet
	err := s.Step()
	if err == nil || !strings.Contains(err.Error(), "held by 0 stations") {
		t.Errorf("want lost-packet violation, got %v", err)
	}
}

func TestConservationDetectsDuplicate(t *testing.T) {
	a := &scriptProto{acts: []Action{Off(), Off()}}
	b := &scriptProto{acts: []Action{Off(), Off()}}
	s := NewSim(sys(2, a, b), &injectOnce{injs: []Injection{{Station: 0, Dest: 1}}}, Options{Strict: true, CheckEvery: 1})
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	b.queue = append(b.queue, a.queue[0]) // duplicate ownership
	err := s.Step()
	if err == nil || !strings.Contains(err.Error(), "more than one station") {
		t.Errorf("want duplicate-holder violation, got %v", err)
	}
}

func TestConservationDetectsIndirectHopInDirectAlgorithm(t *testing.T) {
	a := &scriptProto{acts: []Action{Off(), Off()}}
	b := &scriptProto{acts: []Action{Off(), Off()}}
	system := sys(2, a, b)
	system.Info.Direct = true
	s := NewSim(system, &injectOnce{injs: []Injection{{Station: 0, Dest: 1}}}, Options{Strict: true, CheckEvery: 1})
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	// Move the packet to station 1 as if relayed.
	b.queue = a.queue
	a.queue = nil
	err := s.Step()
	if err == nil || !strings.Contains(err.Error(), "direct algorithm relayed") {
		t.Errorf("want direct-violation, got %v", err)
	}
}

func TestConservationCleanRun(t *testing.T) {
	tx := &scriptProto{
		acts:       []Action{Transmit(mac.Message{}), Off()},
		txPacket:   []bool{true},
		removeOnTx: true,
	}
	rx := &scriptProto{acts: []Action{Listen(), Off()}}
	s := NewSim(sys(2, tx, rx), &injectOnce{injs: []Injection{{Station: 0, Dest: 1}}},
		Options{Strict: true, CheckEvery: 1})
	if err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	if s.LivePackets() != 0 {
		t.Errorf("LivePackets = %d after delivery", s.LivePackets())
	}
}

type recordingAdv struct {
	injectOnce
	observed [][]bool
}

func (r *recordingAdv) ObserveRound(round int64, on []bool) {
	cp := make([]bool, len(on))
	copy(cp, on)
	r.observed = append(r.observed, cp)
}

func TestRoundObserverSeesOnVector(t *testing.T) {
	a := &scriptProto{acts: []Action{Listen(), Off()}}
	b := &scriptProto{acts: []Action{Off(), Listen()}}
	adv := &recordingAdv{}
	s := NewSim(sys(2, a, b), adv, Options{Strict: true})
	if err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	want := [][]bool{{true, false}, {false, true}}
	for r := range want {
		for i := range want[r] {
			if adv.observed[r][i] != want[r][i] {
				t.Errorf("observed[%d] = %v, want %v", r, adv.observed[r], want[r])
			}
		}
	}
}

type countingTracer struct{ rounds int }

func (c *countingTracer) TraceRound(int64, []Action, mac.Feedback, []mac.Packet) { c.rounds++ }

func TestTracerCalledEveryRound(t *testing.T) {
	a := &scriptProto{acts: []Action{Off(), Off(), Off()}}
	tr := &countingTracer{}
	s := NewSim(sys(1, a), &injectOnce{}, Options{Strict: true, Tracer: tr})
	if err := s.Run(3); err != nil {
		t.Fatal(err)
	}
	if tr.rounds != 3 {
		t.Errorf("tracer called %d times, want 3", tr.rounds)
	}
}

func TestQueueTrackedPerRound(t *testing.T) {
	a := &scriptProto{acts: []Action{Off(), Off()}}
	s := NewSim(sys(1, a), &injectOnce{injs: []Injection{{0, 0}, {0, 0}, {0, 0}}}, Options{Strict: true})
	if err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	if s.Tracker().MaxQueue != 3 {
		t.Errorf("MaxQueue = %d, want 3", s.Tracker().MaxQueue)
	}
	if s.Tracker().Injected != 3 {
		t.Errorf("Injected = %d, want 3", s.Tracker().Injected)
	}
	if s.Round() != 2 {
		t.Errorf("Round = %d", s.Round())
	}
}

// extraOnce is an ExtraInjections source feeding a fixed list at round 0.
type extraOnce struct{ injs []Injection }

func (e *extraOnce) InjectAppend(round int64, buf []Injection) []Injection {
	if round == 0 {
		buf = append(buf, e.injs...)
	}
	return buf
}

// TestExtraInjectionsHook: externally-sourced injections are processed
// like adversarial ones (IDs, tracker totals) but are invisible to the
// InjectionObserver — on both simulator paths.
func TestExtraInjectionsHook(t *testing.T) {
	for _, forceChecked := range []bool{false, true} {
		a := &scriptProto{acts: []Action{Listen()}}
		b := &scriptProto{acts: []Action{Listen()}}
		var observed []Injection
		s := NewSim(sys(2, a, b),
			&injectOnce{injs: []Injection{{Station: 0, Dest: 1}}},
			Options{
				ForceChecked:    forceChecked,
				ExtraInjections: &extraOnce{injs: []Injection{{Station: 1, Dest: 0}, {Station: 1, Dest: 1}}},
				InjectionObserver: func(round int64, injs []Injection) {
					observed = append(observed, injs...)
				},
			})
		if forceChecked != !s.FastPath() {
			t.Fatalf("forceChecked=%v but FastPath=%v", forceChecked, s.FastPath())
		}
		if err := s.Run(1); err != nil {
			t.Fatal(err)
		}
		if got := s.Tracker().Injected; got != 3 {
			t.Errorf("checked=%v: injected %d, want 3 (1 adversarial + 2 external)", forceChecked, got)
		}
		if len(observed) != 1 || observed[0] != (Injection{Station: 0, Dest: 1}) {
			t.Errorf("checked=%v: observer saw %+v, want only the adversarial injection", forceChecked, observed)
		}
		if a.QueueLen() != 1 || b.QueueLen() != 2 {
			t.Errorf("checked=%v: queues (%d, %d), want (1, 2)", forceChecked, a.QueueLen(), b.QueueLen())
		}
		if s.NextPacketID() != 3 {
			t.Errorf("checked=%v: NextPacketID = %d, want 3", forceChecked, s.NextPacketID())
		}
	}
}

// TestDeliveryObserver: the hook fires exactly on ground-truth
// deliveries (dest switched on), with the delivered packet, on both
// simulator paths.
func TestDeliveryObserver(t *testing.T) {
	for _, forceChecked := range []bool{false, true} {
		tx := &scriptProto{
			acts:       []Action{Listen(), Transmit(mac.Message{}), Listen()},
			txPacket:   []bool{false, true, false},
			removeOnTx: true,
		}
		rx := &scriptProto{acts: []Action{Listen(), Listen(), Listen()}}
		var delivered []mac.Packet
		var rounds []int64
		s := NewSim(sys(2, tx, rx),
			&injectOnce{injs: []Injection{{Station: 0, Dest: 1}}},
			Options{
				ForceChecked: forceChecked,
				DeliveryObserver: func(round int64, p mac.Packet) {
					delivered = append(delivered, p)
					rounds = append(rounds, round)
				},
			})
		if err := s.Run(3); err != nil {
			t.Fatal(err)
		}
		if len(delivered) != 1 {
			t.Fatalf("checked=%v: observer saw %d deliveries, want 1", forceChecked, len(delivered))
		}
		if delivered[0].Src != 0 || delivered[0].Dest != 1 || rounds[0] != 1 {
			t.Errorf("checked=%v: observed %v at round %d, want pkt 0->1 at round 1",
				forceChecked, delivered[0], rounds[0])
		}
		if s.Tracker().Delivered != 1 {
			t.Errorf("checked=%v: tracker delivered %d, want 1", forceChecked, s.Tracker().Delivered)
		}
	}
}
