package core

// Quiescence fast-forward (DESIGN.md §16). When a system declares its
// idle-round profile (System.Idle) and every station implements
// mac.Skipper, the fast path replaces idle rounds with two tiers of
// closed-form bookkeeping:
//
//   - a quiescent tick: the O(n) station sweep collapses to an O(1)
//     counter update, while all per-round external state (adversary
//     bucket, replay cursors, disruption hooks) still advances exactly;
//   - a span skip: when the next possible event round is computable
//     (EventSkipper on the adversary, IdleHorizon on the profile, a
//     DisruptHorizon on the disruption source), the simulator jumps
//     from→to in one step, accruing energy, channel-utilization
//     counters, and queue samples in closed form.
//
// Both tiers are bit-identical to executing the rounds: a tick covers
// one round whose injections and disruption were consulted normally; a
// span covers only rounds proven free of injections, disruption, and
// observers. Anything the engine cannot prove pins the horizon and the
// loop degrades to today's per-round behavior.

// IdleRound is one round of a system's periodic idle cycle: the energy
// spent (switched-on stations), whether the round is a heard
// control-only ("light") round or silent, and the control bits such a
// light round carries.
type IdleRound struct {
	Energy   int
	Light    bool
	CtrlBits int
}

// IdleProfiler describes what a quiescent system does on the channel.
// AppendIdleCycle appends one full period of idle rounds, starting at
// round from (the first round the simulator would tick), and returns
// the extended buffer. Returning the buffer unchanged declines the
// profile — the system cannot fast-forward from its current state. The
// profile must be exact: round from+j behaves as entry j mod period
// for as long as the system stays quiescent (up to any IdleHorizon).
type IdleProfiler interface {
	AppendIdleCycle(from int64, buf []IdleRound) []IdleRound
}

// IdleProfileFunc adapts a function to an IdleProfiler.
type IdleProfileFunc func(from int64, buf []IdleRound) []IdleRound

// AppendIdleCycle implements IdleProfiler.
func (f IdleProfileFunc) AppendIdleCycle(from int64, buf []IdleRound) []IdleRound {
	return f(from, buf)
}

// IdleHorizon is an optional IdleProfiler extension for profiles that
// hold only up to a known round: NextIdleBreak returns the earliest
// round >= from at which the idle cycle may stop describing the system
// (a duty-cycled wake round), or -1 when it holds indefinitely. The
// simulator runs a full station sweep at that round.
type IdleHorizon interface {
	NextIdleBreak(from int64) int64
}

// ConstIdle is the period-1 idle profile: every quiescent round looks
// the same. Most algorithms (a fixed-size listening set per round)
// declare one.
type ConstIdle IdleRound

// AppendIdleCycle implements IdleProfiler.
func (c ConstIdle) AppendIdleCycle(from int64, buf []IdleRound) []IdleRound {
	return append(buf, IdleRound(c))
}

// IdleConstOf reports the single idle round of a period-1 constant
// profile, and whether p is one. The network span barrier requires
// constant profiles so per-round totals across channels stay aligned.
func IdleConstOf(p IdleProfiler) (IdleRound, bool) {
	c, ok := p.(ConstIdle)
	return IdleRound(c), ok
}

// EventSkipper is the adversary-side skip contract. NextEventRound
// returns a lower bound on the earliest round >= from at which the
// adversary may produce an injection (-1: never again) — it may be
// early (the simulator wakes, finds nothing, and re-enters quiescence)
// but must never be late. SkipIdle(from, to) advances internal state
// (leaky-bucket credit) exactly as to-from zero-injection rounds
// would; the skipped rounds are proven draw-free, so no RNG advances.
type EventSkipper interface {
	NextEventRound(from int64) int64
	SkipIdle(from, to int64)
}
