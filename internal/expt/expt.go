// Package expt defines the reproduction experiments: one runnable
// specification per row of the paper's Table 1 (its entire evaluation),
// plus the algorithm/pattern registries shared by the command-line tools,
// the public façade, and the benchmark suite.
//
// A Spec pins a system, an adversary, and a horizon; Run executes it
// strictly (with conservation checking) and produces an Outcome holding
// the measured stability, queue, latency, and energy figures next to the
// paper's claimed bound, plus a verdict of whether the measurement
// reproduces the claim.
package expt

import (
	"fmt"
	"math"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/metrics"
	"earmac/internal/ratio"
	"earmac/internal/report"
)

// Kind states what a spec is checking.
type Kind int

const (
	// KindStable: the algorithm must keep queues bounded.
	KindStable Kind = iota
	// KindQueueBound: bounded queues that also stay under Bound.
	KindQueueBound
	// KindLatency: bounded queues with max latency under Bound×Slack.
	KindLatency
	// KindUnstable: the adversary must force unbounded queue growth.
	KindUnstable
)

func (k Kind) String() string {
	switch k {
	case KindStable:
		return "stable"
	case KindQueueBound:
		return "queue-bound"
	case KindLatency:
		return "latency"
	case KindUnstable:
		return "unstable"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec is one experiment.
type Spec struct {
	ID    string // Table 1 row, e.g. "T1.5"
	Label string // algorithm and setting
	N     int
	K     int // energy cap parameter (0 when fixed by the algorithm)

	Rho  ratio.Rat
	Beta int64

	Rounds int64

	Kind  Kind
	Bound float64 // the paper's bound for this configuration (0 if n/a)
	Slack float64 // multiplicative tolerance on Bound (1 = exact)

	PaperClaim string // the formula as stated in Table 1

	Build func() (*core.System, error)
	// Adv builds the adversary; nil means a full-rate Uniform pattern of
	// type (Rho, Beta).
	Adv  func(sys *core.System) core.Adversary
	Seed int64
}

// Outcome is the measured result of a Spec.
type Outcome struct {
	Spec

	Stable      bool
	MaxQueue    int64
	FinalQueue  int64
	Slope       float64
	Growth      float64
	MaxLatency  int64
	MeanLatency float64
	P99Latency  int64
	MeanEnergy  float64
	MaxEnergy   int64
	Injected    int64
	Delivered   int64
	Violations  int

	// Report is the full measurement record in the shared schema
	// (internal/report) that the façade and the Suite runner also emit.
	Report report.Report

	// Measured is the headline number compared against Bound (max queue
	// for queue bounds, max latency for latency bounds, the queue growth
	// slope for instability rows).
	Measured float64
	// OK reports whether the measurement reproduces the paper's claim.
	OK bool
}

// Run executes the spec strictly with conservation checking.
func Run(s Spec) (Outcome, error) {
	sys, err := s.Build()
	if err != nil {
		return Outcome{}, fmt.Errorf("%s: %w", s.ID, err)
	}
	var adv core.Adversary
	if s.Adv != nil {
		adv = s.Adv(sys)
	} else {
		adv = adversary.New(adversary.Type{Rho: s.Rho, Beta: ratio.FromInt(s.Beta)},
			adversary.Uniform(sys.N(), s.Seed+1))
	}
	tr := metrics.NewTracker()
	tr.SampleEvery = maxI64(s.Rounds/512, 1)
	sim := core.NewSim(sys, adv, core.Options{Strict: true, CheckEvery: 10007, Tracker: tr})
	if err := sim.Run(s.Rounds); err != nil {
		return Outcome{}, fmt.Errorf("%s: %w", s.ID, err)
	}

	o := Outcome{
		Spec:        s,
		Report:      report.FromTracker(sys.Info, sys.N(), tr),
		Stable:      tr.LooksStable(),
		MaxQueue:    tr.MaxQueue,
		FinalQueue:  tr.FinalQueue,
		Slope:       tr.QueueSlope(),
		Growth:      tr.GrowthRatio(),
		MaxLatency:  tr.MaxLatency,
		MeanLatency: tr.MeanLatency(),
		P99Latency:  tr.LatencyPercentile(0.99),
		MeanEnergy:  tr.MeanEnergy(),
		MaxEnergy:   tr.MaxEnergy,
		Injected:    tr.Injected,
		Delivered:   tr.Delivered,
		Violations:  len(tr.Violations),
	}
	slack := s.Slack
	if slack == 0 {
		slack = 1
	}
	switch s.Kind {
	case KindStable:
		o.Measured = float64(o.MaxQueue)
		o.OK = o.Stable && o.Violations == 0
	case KindQueueBound:
		o.Measured = float64(o.MaxQueue)
		o.OK = o.Stable && o.Violations == 0 && o.Measured <= s.Bound*slack
	case KindLatency:
		o.Measured = float64(o.MaxLatency)
		o.OK = o.Stable && o.Violations == 0 && o.Measured <= s.Bound*slack
	case KindUnstable:
		o.Measured = o.Slope
		o.OK = !o.Stable && o.Slope > 0 && o.Violations == 0
	}
	return o, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// lgCeil is ⌈log₂(x+1)⌉ as used in the paper's bounds.
func lgCeil(x float64) float64 {
	return math.Ceil(math.Log2(x + 1))
}

// Paper bounds per Table 1, as functions of the configuration.

// OrchestraQueueBound is Theorem 1: 2n³ + β.
func OrchestraQueueBound(n int, beta int64) float64 {
	return 2*math.Pow(float64(n), 3) + float64(beta)
}

// CountHopLatencyBound is Theorem 3: 2(n²+β)/(1−ρ).
func CountHopLatencyBound(n int, beta int64, rho ratio.Rat) float64 {
	return 2 * (float64(n*n) + float64(beta)) / (1 - rho.Float64())
}

// AdjustWindowLatencyBound is Theorem 4: (18n³·lg²n + 2β)/(1−ρ).
func AdjustWindowLatencyBound(n int, beta int64, rho ratio.Rat) float64 {
	lgn := lgCeil(float64(n))
	return (18*math.Pow(float64(n), 3)*lgn*lgn + 2*float64(beta)) / (1 - rho.Float64())
}

// KCycleLatencyBound is Theorem 5: (32+β)·n.
func KCycleLatencyBound(n int, beta int64) float64 {
	return (32 + float64(beta)) * float64(n)
}

// KCliqueLatencyBound is Theorem 7: 8(n²/k)(1+β/(2k)).
func KCliqueLatencyBound(n, k int, beta int64) float64 {
	return 8 * float64(n*n) / float64(k) * (1 + float64(beta)/float64(2*k))
}

// KSubsetsQueueBound is Theorem 8: 2·C(n,k)·(n²+β).
func KSubsetsQueueBound(n, k int, beta int64) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return 2 * c * (float64(n*n) + float64(beta))
}
