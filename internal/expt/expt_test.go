package expt

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"earmac/internal/core"
	"earmac/internal/ratio"
)

func TestPaperBoundFormulas(t *testing.T) {
	if got := OrchestraQueueBound(6, 2); got != 434 {
		t.Errorf("OrchestraQueueBound(6,2) = %v, want 434", got)
	}
	if got := CountHopLatencyBound(6, 2, ratio.New(1, 2)); got != 152 {
		t.Errorf("CountHopLatencyBound = %v, want 152", got)
	}
	if got := KCycleLatencyBound(7, 2); got != 238 {
		t.Errorf("KCycleLatencyBound = %v, want 238", got)
	}
	if got := KCliqueLatencyBound(8, 4, 2); got != 160 {
		t.Errorf("KCliqueLatencyBound = %v, want 160", got)
	}
	if got := KSubsetsQueueBound(6, 3, 2); got != 1520 {
		t.Errorf("KSubsetsQueueBound = %v, want 1520 (2·20·38)", got)
	}
	// Adjust-Window: (18·64·lg²4 + 4)/(1/2) with lg4 = ⌈log₂5⌉ = 3.
	want := (18*64*9 + 4.0) * 2
	if got := AdjustWindowLatencyBound(4, 2, ratio.New(1, 2)); math.Abs(got-want) > 1e-9 {
		t.Errorf("AdjustWindowLatencyBound = %v, want %v", got, want)
	}
}

func TestRegistryBuildsEverything(t *testing.T) {
	for _, name := range Algorithms() {
		sys, err := Build(name, 6, 3)
		if err != nil {
			t.Errorf("Build(%q): %v", name, err)
			continue
		}
		if sys.N() != 6 {
			t.Errorf("Build(%q): n = %d", name, sys.N())
		}
		if sys.Info.Oblivious && sys.Schedule == nil {
			t.Errorf("Build(%q): oblivious without schedule", name)
		}
	}
	if _, err := Build("nonsense", 4, 2); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestPatternRegistry(t *testing.T) {
	for _, name := range Patterns() {
		p, err := BuildPattern(name, 5, 1, 0, 1)
		if err != nil {
			t.Errorf("BuildPattern(%q): %v", name, err)
			continue
		}
		injs := p.Draw(255, 2) // round 255 hits the bursty period too
		for _, in := range injs {
			if in.Station < 0 || in.Station >= 5 || in.Dest < 0 || in.Dest >= 5 {
				t.Errorf("pattern %q out of range: %+v", name, in)
			}
		}
	}
	if _, err := BuildPattern("nope", 5, 1, 0, 1); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestTable1SpecsComplete(t *testing.T) {
	specs := Table1(Quick)
	if len(specs) != 11 {
		t.Fatalf("Table1 has %d specs, want 11 (9 rows, T1.2 in three variants)", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.ID] {
			t.Errorf("duplicate spec ID %s", s.ID)
		}
		seen[s.ID] = true
		if s.Build == nil || s.Rounds <= 0 || s.PaperClaim == "" {
			t.Errorf("spec %s incomplete", s.ID)
		}
	}
	for _, want := range []string{"T1.1", "T1.2a", "T1.2b", "T1.2c", "T1.3", "T1.4", "T1.5", "T1.6", "T1.7", "T1.8", "T1.9"} {
		if !seen[want] {
			t.Errorf("missing spec %s", want)
		}
	}
}

func TestFullScaleQuadruplesRounds(t *testing.T) {
	q := Table1(Quick)
	f := Table1(Full)
	for i := range q {
		if f[i].Rounds != 4*q[i].Rounds {
			t.Errorf("%s: full rounds %d != 4× quick %d", q[i].ID, f[i].Rounds, q[i].Rounds)
		}
	}
}

func TestRunSingleRowReproduces(t *testing.T) {
	// Smoke-run the cheapest row end to end (T1.5, k-Cycle).
	specs := Table1(Quick)
	var spec Spec
	for _, s := range specs {
		if s.ID == "T1.5" {
			spec = s
		}
	}
	o, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !o.OK {
		t.Errorf("T1.5 did not reproduce: measured %v vs bound %v, stable=%v",
			o.Measured, o.Bound, o.Stable)
	}
	if o.Delivered == 0 || o.MeanEnergy <= 0 {
		t.Error("outcome missing measurements")
	}
}

func TestRunUnstableRow(t *testing.T) {
	specs := Table1(Quick)
	for _, s := range specs {
		if s.ID != "T1.6" {
			continue
		}
		o, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if !o.OK {
			t.Errorf("T1.6 did not reproduce: stable=%v slope=%v", o.Stable, o.Slope)
		}
	}
}

func TestRunAndRenderTable(t *testing.T) {
	// Render just two rows to keep the test fast.
	specs := Table1(Quick)
	subset := []Spec{}
	for _, s := range specs {
		if s.ID == "T1.5" || s.ID == "T1.7" {
			subset = append(subset, s)
		}
	}
	outs, err := RunConcurrent(context.Background(), subset, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(outs, &buf); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	rendered := buf.String()
	for _, want := range []string{"ID", "T1.5", "T1.7", "REPRODUCED"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("table missing %q:\n%s", want, rendered)
		}
	}
}

func TestReplicate(t *testing.T) {
	var spec Spec
	for _, s := range Table1(Quick) {
		if s.ID == "T1.7" {
			spec = s
		}
	}
	agg, err := Replicate(spec, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Outcomes) != 3 {
		t.Fatalf("got %d outcomes", len(agg.Outcomes))
	}
	if !agg.AllOK {
		t.Error("T1.7 failed to reproduce under some seed")
	}
	if agg.MinMeasured > agg.MeanMeasured || agg.MeanMeasured > agg.MaxMeasured {
		t.Errorf("aggregate ordering wrong: min=%v mean=%v max=%v",
			agg.MinMeasured, agg.MeanMeasured, agg.MaxMeasured)
	}
	if agg.MaxMeasured > spec.Bound {
		t.Errorf("worst seed %v exceeds bound %v", agg.MaxMeasured, spec.Bound)
	}
}

func TestReplicateNeedsSeeds(t *testing.T) {
	if _, err := Replicate(Spec{}, nil); err == nil {
		t.Error("empty seed list accepted")
	}
}

func TestRenderRowMismatch(t *testing.T) {
	o := Outcome{
		Spec: Spec{ID: "X", Label: "fake", N: 4, Kind: KindLatency,
			Bound: 10, PaperClaim: "c", Rho: ratio.New(1, 2)},
		MaxLatency: 99,
		OK:         false,
	}
	row := renderRow(o)
	if !strings.Contains(row, "MISMATCH") || !strings.Contains(row, "max lat 99") {
		t.Errorf("row = %q", row)
	}
}

func TestRunPropagatesBuildError(t *testing.T) {
	_, err := Run(Spec{ID: "bad", Build: func() (*core.System, error) {
		return nil, fmt.Errorf("nope")
	}})
	if err == nil {
		t.Error("build error swallowed")
	}
}

func TestRunKindStable(t *testing.T) {
	o, err := Run(Spec{
		ID: "S", Label: "rrw stability smoke",
		N: 4, Rho: ratio.New(1, 2), Beta: 1,
		Rounds: 20000, Kind: KindStable,
		Build: func() (*core.System, error) { return Build("rrw", 4, 0) },
		Seed:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !o.OK || !o.Stable {
		t.Errorf("KindStable outcome: %+v", o)
	}
}

func TestKindStrings(t *testing.T) {
	if KindStable.String() != "stable" || KindUnstable.String() != "unstable" ||
		KindLatency.String() != "latency" || KindQueueBound.String() != "queue-bound" {
		t.Error("Kind strings wrong")
	}
}
