package expt

import (
	"context"

	"earmac/internal/pool"
	"earmac/internal/report"
)

// RunConcurrent executes the specs across a bounded worker pool
// (workers <= 0 means GOMAXPROCS) and returns the outcomes in spec order
// regardless of worker count. Each spec builds its own system, adversary,
// and tracker, so runs are independent and deterministic. The first
// simulation error, or the context's error if it is cancelled, is
// returned alongside the outcomes gathered so far; outcomes of specs
// that did not run have an empty ID.
func RunConcurrent(ctx context.Context, specs []Spec, workers int) ([]Outcome, error) {
	outs := make([]Outcome, len(specs))
	errs := make([]error, len(specs))
	if err := pool.RunIndexed(ctx, len(specs), workers, func(i int) {
		outs[i], errs[i] = Run(specs[i])
	}); err != nil {
		return outs, err
	}
	for _, err := range errs {
		if err != nil {
			return outs, err
		}
	}
	return outs, nil
}

// OutcomeJSON is the serialization of an Outcome: the spec's identity and
// claim next to the measured verdict, with the full measurement record in
// the shared Report schema.
type OutcomeJSON struct {
	ID         string        `json:"id"`
	Label      string        `json:"label"`
	N          int           `json:"n"`
	K          int           `json:"k,omitempty"`
	Rho        string        `json:"rho"`
	Beta       int64         `json:"beta"`
	Rounds     int64         `json:"rounds"`
	Seed       int64         `json:"seed"`
	Kind       string        `json:"kind"`
	PaperClaim string        `json:"paper_claim"`
	Bound      float64       `json:"bound,omitempty"`
	Slack      float64       `json:"slack,omitempty"`
	Measured   float64       `json:"measured"`
	OK         bool          `json:"ok"`
	Report     report.Report `json:"report"`
}

// JSON converts the outcome to its serializable form.
func (o Outcome) JSON() OutcomeJSON {
	return OutcomeJSON{
		ID:         o.ID,
		Label:      o.Label,
		N:          o.N,
		K:          o.K,
		Rho:        o.Rho.String(),
		Beta:       o.Beta,
		Rounds:     o.Rounds,
		Seed:       o.Seed,
		Kind:       o.Kind.String(),
		PaperClaim: o.PaperClaim,
		Bound:      o.Bound,
		Slack:      o.Slack,
		Measured:   o.Measured,
		OK:         o.OK,
		Report:     o.Report,
	}
}
