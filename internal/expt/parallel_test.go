package expt

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func cheapSpecs(t *testing.T) []Spec {
	t.Helper()
	var out []Spec
	for _, s := range Table1(Quick) {
		if s.ID == "T1.5" || s.ID == "T1.7" || s.ID == "T1.8" {
			out = append(out, s)
		}
	}
	if len(out) != 3 {
		t.Fatal("cheap spec subset missing")
	}
	return out
}

func TestRunConcurrentMatchesSerialOrder(t *testing.T) {
	specs := cheapSpecs(t)
	serial := make([]Outcome, len(specs))
	for i, s := range specs {
		o, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = o
	}
	conc, err := RunConcurrent(context.Background(), specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(conc) != len(serial) {
		t.Fatalf("got %d outcomes", len(conc))
	}
	for i := range serial {
		if conc[i].ID != specs[i].ID {
			t.Errorf("outcome %d is %s, want %s — ordering not deterministic", i, conc[i].ID, specs[i].ID)
		}
		if conc[i].Measured != serial[i].Measured || conc[i].OK != serial[i].OK {
			t.Errorf("%s: concurrent (%v, %v) != serial (%v, %v)",
				specs[i].ID, conc[i].Measured, conc[i].OK, serial[i].Measured, serial[i].OK)
		}
		if conc[i].Report.Rounds != specs[i].Rounds {
			t.Errorf("%s: embedded report covers %d rounds, want %d",
				specs[i].ID, conc[i].Report.Rounds, specs[i].Rounds)
		}
	}
}

func TestRunConcurrentCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunConcurrent(ctx, cheapSpecs(t), 2)
	if err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestOutcomeJSONCarriesSharedReport(t *testing.T) {
	o, err := Run(cheapSpecs(t)[0]) // T1.5
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(o.JSON())
	if err != nil {
		t.Fatal(err)
	}
	s := string(blob)
	for _, want := range []string{
		`"id":"T1.5"`, `"kind":"latency"`, `"rho":"1/4"`, `"ok":true`,
		`"report":{`, `"energy_cap":3`, `"max_queue"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("outcome JSON missing %s:\n%s", want, s)
		}
	}
}
