package expt

import (
	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/registry"

	// Every built-in algorithm self-registers from init; linking them here
	// keeps the expt-level registry views complete for direct users of
	// this package (benchmarks, integration tests, examples).
	_ "earmac/internal/algorithms/adjwin"
	_ "earmac/internal/algorithms/counthop"
	_ "earmac/internal/algorithms/kclique"
	_ "earmac/internal/algorithms/kcycle"
	_ "earmac/internal/algorithms/ksubsets"
	_ "earmac/internal/algorithms/orchestra"
	_ "earmac/internal/algorithms/randmac"
	_ "earmac/internal/broadcast"
)

// Build constructs a system by algorithm name. It delegates to the
// self-registration registry (internal/registry); the k parameter is
// ignored by algorithms with a fixed energy cap.
func Build(name string, n, k int) (*core.System, error) {
	return registry.Build(name, n, k)
}

// Algorithms lists the registered algorithm names, sorted.
func Algorithms() []string { return registry.Algorithms() }

// BuildPattern constructs an injection pattern by name, delegating to the
// adversary package's pattern registry. src and dest parameterize the
// targeted patterns and are ignored by the others.
func BuildPattern(name string, n int, seed int64, src, dest int) (adversary.Pattern, error) {
	return adversary.BuildPattern(name, adversary.PatternParams{N: n, Seed: seed, Src: src, Dest: dest})
}

// Patterns lists the registered pattern names, sorted. The list is
// derived from registration, so it cannot drift from what BuildPattern
// accepts.
func Patterns() []string { return adversary.Patterns() }
