package expt

import (
	"fmt"
	"sort"

	"earmac/internal/adversary"
	"earmac/internal/algorithms/adjwin"
	"earmac/internal/algorithms/counthop"
	"earmac/internal/algorithms/kclique"
	"earmac/internal/algorithms/kcycle"
	"earmac/internal/algorithms/ksubsets"
	"earmac/internal/algorithms/orchestra"
	"earmac/internal/algorithms/randmac"
	"earmac/internal/broadcast"
	"earmac/internal/core"
)

// builders maps algorithm names to constructors. The k parameter is
// ignored by algorithms with a fixed energy cap.
var builders = map[string]func(n, k int) (*core.System, error){
	"orchestra":     func(n, _ int) (*core.System, error) { return orchestra.New(n) },
	"count-hop":     func(n, _ int) (*core.System, error) { return counthop.New(n) },
	"adjust-window": func(n, _ int) (*core.System, error) { return adjwin.New(n) },
	"k-cycle":       kcycle.New,
	"k-clique":      kclique.New,
	"k-subsets":     ksubsets.New,
	"k-subsets-rrw": ksubsets.NewRRW,
	"aloha":         randmac.New,
	"mbtf":          func(n, _ int) (*core.System, error) { return broadcast.NewMBTFSystem(n), nil },
	"rrw":           func(n, _ int) (*core.System, error) { return broadcast.NewRRWSystem(n), nil },
	"ofrrw":         func(n, _ int) (*core.System, error) { return broadcast.NewOFRRWSystem(n), nil },
}

// Build constructs a system by algorithm name. The energy-parameterized
// algorithms (k-cycle, k-clique, k-subsets, k-subsets-rrw) use k; the
// broadcast baselines (mbtf, rrw, ofrrw) run with all stations on.
func Build(name string, n, k int) (*core.System, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("expt: unknown algorithm %q (have %v)", name, Algorithms())
	}
	return b(n, k)
}

// Algorithms lists the registered algorithm names, sorted.
func Algorithms() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BuildPattern constructs an injection pattern by name. src and dest
// parameterize the targeted patterns and are ignored by the others.
func BuildPattern(name string, n int, seed int64, src, dest int) (adversary.Pattern, error) {
	switch name {
	case "uniform":
		return adversary.Uniform(n, seed), nil
	case "single-target":
		return adversary.SingleTarget(src, dest), nil
	case "hot-source":
		return adversary.HotSource(src, n), nil
	case "round-robin":
		return adversary.RoundRobin(n), nil
	case "bursty":
		return adversary.Bursty(adversary.Uniform(n, seed), 256), nil
	case "diurnal":
		return adversary.Diurnal(adversary.Uniform(n, seed), 1024, 1, 4), nil
	default:
		return nil, fmt.Errorf("expt: unknown pattern %q (have %v)", name, Patterns())
	}
}

// Patterns lists the registered pattern names.
func Patterns() []string {
	return []string{"bursty", "diurnal", "hot-source", "round-robin", "single-target", "uniform"}
}
