package expt

import "fmt"

// Aggregate summarizes replicated runs of one spec across seeds.
type Aggregate struct {
	Outcomes []Outcome
	// AllOK reports whether every replication reproduced the claim.
	AllOK bool
	// MinMeasured/MaxMeasured/MeanMeasured aggregate the headline figure.
	MinMeasured  float64
	MaxMeasured  float64
	MeanMeasured float64
}

// Replicate runs the spec once per seed (the seed perturbs the injection
// pattern; the algorithms themselves are deterministic) and aggregates
// the outcomes. Bounds in the paper are worst-case, so the aggregate's
// MaxMeasured is the figure to hold against them.
func Replicate(s Spec, seeds []int64) (Aggregate, error) {
	if len(seeds) == 0 {
		return Aggregate{}, fmt.Errorf("expt: no seeds")
	}
	agg := Aggregate{AllOK: true}
	var sum float64
	for i, seed := range seeds {
		spec := s
		spec.Seed = seed
		o, err := Run(spec)
		if err != nil {
			return agg, fmt.Errorf("seed %d: %w", seed, err)
		}
		agg.Outcomes = append(agg.Outcomes, o)
		agg.AllOK = agg.AllOK && o.OK
		if i == 0 || o.Measured < agg.MinMeasured {
			agg.MinMeasured = o.Measured
		}
		if i == 0 || o.Measured > agg.MaxMeasured {
			agg.MaxMeasured = o.Measured
		}
		sum += o.Measured
	}
	agg.MeanMeasured = sum / float64(len(seeds))
	return agg, nil
}
