package expt

import (
	"fmt"
	"io"
	"text/tabwriter"

	"earmac/internal/adversary"
	"earmac/internal/algorithms/adjwin"
	"earmac/internal/algorithms/counthop"
	"earmac/internal/algorithms/kclique"
	"earmac/internal/algorithms/kcycle"
	"earmac/internal/algorithms/ksubsets"
	"earmac/internal/algorithms/orchestra"
	"earmac/internal/core"
	"earmac/internal/ratio"
)

// Scale selects the horizon of the Table 1 experiments.
type Scale int

const (
	// Quick runs each row in roughly a second — used by the benchmarks.
	Quick Scale = iota
	// Full runs several-fold longer horizons — used by cmd/earmac-table.
	Full
)

func (sc Scale) mult(rounds int64) int64 {
	if sc == Full {
		return 4 * rounds
	}
	return rounds
}

// Table1 returns one spec per row of the paper's Table 1. Configurations
// are laptop-scale; DESIGN.md §5 maps each ID to the paper's row.
func Table1(sc Scale) []Spec {
	return []Spec{
		{
			ID: "T1.1", Label: "Orchestra @ ρ=1 (cap 3)",
			N: 6, Rho: ratio.One(), Beta: 2,
			Rounds: sc.mult(120000),
			Kind:   KindQueueBound, Bound: OrchestraQueueBound(6, 2),
			PaperClaim: "queues ≤ 2n³+β at ρ=1",
			Build:      func() (*core.System, error) { return orchestra.New(6) },
			Seed:       101,
		},
		{
			ID: "T1.2a", Label: "Count-Hop @ ρ=1 (cap-2 impossibility)",
			N: 5, Rho: ratio.One(), Beta: 1,
			Rounds:     sc.mult(80000),
			Kind:       KindUnstable,
			PaperClaim: "no cap-2 algorithm is stable at ρ=1 (Thm 2)",
			Build:      func() (*core.System, error) { return counthop.New(5) },
			Seed:       102,
		},
		{
			ID: "T1.2b", Label: "Adjust-Window @ ρ=1 (cap-2 impossibility)",
			N: 2, Rho: ratio.One(), Beta: 1,
			Rounds:     sc.mult(300000),
			Kind:       KindUnstable,
			PaperClaim: "no cap-2 algorithm is stable at ρ=1 (Thm 2)",
			Build:      func() (*core.System, error) { return adjwin.New(2) },
			Seed:       103,
		},
		{
			ID: "T1.2c", Label: "Lemma-1 adversary vs Count-Hop @ ρ=1",
			N: 5, Rho: ratio.One(), Beta: 1,
			Rounds:     sc.mult(80000),
			Kind:       KindUnstable,
			PaperClaim: "the Case I/II construction of Lemma 1",
			Build:      func() (*core.System, error) { return counthop.New(5) },
			Adv: func(sys *core.System) core.Adversary {
				return adversary.NewLemma1(sys.N(), int64(4*sys.N()))
			},
			Seed: 104,
		},
		{
			ID: "T1.3", Label: "Count-Hop @ ρ=1/2 (universal, cap 2)",
			N: 6, Rho: ratio.New(1, 2), Beta: 2,
			Rounds: sc.mult(60000),
			Kind:   KindLatency, Bound: CountHopLatencyBound(6, 2, ratio.New(1, 2)),
			// Our stage-length dissemination doubles the per-phase control
			// overhead relative to the paper's accounting (DESIGN.md §4).
			Slack:      2.5,
			PaperClaim: "latency ≤ 2(n²+β)/(1−ρ)",
			Build:      func() (*core.System, error) { return counthop.New(6) },
			Seed:       105,
		},
		{
			ID: "T1.4", Label: "Adjust-Window @ ρ=1/2 (plain packets, cap 2)",
			N: 4, Rho: ratio.New(1, 2), Beta: 2,
			Rounds: sc.mult(6 * adjwin.InitialWindow(4)),
			Kind:   KindLatency, Bound: AdjustWindowLatencyBound(4, 2, ratio.New(1, 2)),
			// The paper's constant is asymptotic: lg L ≫ lg²n at small n
			// (DESIGN.md §4 discusses the gap).
			Slack:      4,
			PaperClaim: "latency ≤ (18n³lg²n+2β)/(1−ρ)",
			Build:      func() (*core.System, error) { return adjwin.New(4) },
			Seed:       106,
		},
		{
			ID: "T1.5", Label: "3-Cycle on n=7 @ ρ=1/4 < (k−1)/(n−1)",
			N: 7, K: 3, Rho: ratio.New(1, 4), Beta: 2,
			Rounds: sc.mult(80000),
			Kind:   KindLatency, Bound: KCycleLatencyBound(7, 2),
			PaperClaim: "latency ≤ (32+β)n for ρ < (k−1)/(n−1)",
			Build:      func() (*core.System, error) { return kcycle.New(7, 3) },
			Seed:       107,
		},
		{
			ID: "T1.6", Label: "LeastOn adversary vs 3-Cycle @ ρ=1/2 > k/n",
			N: 7, K: 3, Rho: ratio.New(1, 2), Beta: 1,
			Rounds:     sc.mult(100000),
			Kind:       KindUnstable,
			PaperClaim: "no k-oblivious algorithm stable for ρ > k/n (Thm 6)",
			Build:      func() (*core.System, error) { return kcycle.New(7, 3) },
			Adv: func(sys *core.System) core.Adversary {
				return adversary.LeastOn(sys.Schedule, adversary.T(1, 2, 1))
			},
			Seed: 108,
		},
		{
			ID: "T1.7", Label: "4-Clique on n=8 @ ρ=1/12 = k²/(2n(2n−k))",
			N: 8, K: 4, Rho: ratio.New(1, 12), Beta: 2,
			Rounds: sc.mult(100000),
			Kind:   KindLatency, Bound: KCliqueLatencyBound(8, 4, 2),
			PaperClaim: "latency ≤ 8(n²/k)(1+β/2k) for ρ ≤ k²/(2n(2n−k))",
			Build:      func() (*core.System, error) { return kclique.New(8, 4) },
			Seed:       109,
		},
		{
			ID: "T1.8", Label: "3-Subsets on n=6 @ ρ=1/5 = k(k−1)/(n(n−1))",
			N: 6, K: 3, Rho: ratio.New(1, 5), Beta: 2,
			Rounds: sc.mult(150000),
			Kind:   KindQueueBound, Bound: KSubsetsQueueBound(6, 3, 2),
			PaperClaim: "stable at ρ = k(k−1)/(n(n−1)), queues ≤ 2C(n,k)(n²+β)",
			Build:      func() (*core.System, error) { return ksubsets.New(6, 3) },
			Seed:       110,
		},
		{
			ID: "T1.9", Label: "LeastPair adversary vs 3-Subsets @ ρ=1/4 > 1/5",
			N: 6, K: 3, Rho: ratio.New(1, 4), Beta: 1,
			Rounds:     sc.mult(120000),
			Kind:       KindUnstable,
			PaperClaim: "no k-oblivious direct algorithm stable for ρ > k(k−1)/(n(n−1)) (Thm 9)",
			Build:      func() (*core.System, error) { return ksubsets.New(6, 3) },
			Adv: func(sys *core.System) core.Adversary {
				return adversary.LeastPair(sys.Schedule, adversary.T(1, 4, 1))
			},
			Seed: 111,
		},
	}
}

const tableHeader = "ID\tEXPERIMENT\tn\tk\tρ\tβ\tPAPER\tBOUND\tMEASURED\tSTABLE\tVERDICT"

// Render writes already-computed outcomes (typically from RunConcurrent)
// as the Table 1 digest.
func Render(outs []Outcome, w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, tableHeader)
	for _, o := range outs {
		fmt.Fprintln(tw, renderRow(o))
	}
	return tw.Flush()
}

func renderRow(o Outcome) string {
	k := "-"
	if o.K > 0 {
		k = fmt.Sprintf("%d", o.K)
	}
	bound := "-"
	if o.Bound > 0 {
		bound = fmt.Sprintf("%.0f", o.Bound)
	}
	var measured string
	switch o.Kind {
	case KindUnstable:
		measured = fmt.Sprintf("slope %.4f pkt/rd", o.Measured)
	case KindLatency:
		measured = fmt.Sprintf("max lat %d", o.MaxLatency)
	default:
		measured = fmt.Sprintf("max queue %d", o.MaxQueue)
	}
	verdict := "REPRODUCED"
	if !o.OK {
		verdict = "MISMATCH"
	}
	return fmt.Sprintf("%s\t%s\t%d\t%s\t%v\t%d\t%s\t%s\t%s\t%v\t%s",
		o.ID, o.Label, o.N, k, o.Rho, o.Beta, o.PaperClaim, bound, measured, o.Stable, verdict)
}
