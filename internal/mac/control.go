package mac

// Control is a string of control bits attached to a message. The paper
// restricts algorithms to O(log n) control bits per message (Orchestra's
// teaching messages need O(n); see DESIGN.md §4). Bits are addressed MSB
// first within each byte so that a Control compares lexicographically as a
// bit string.
type Control []byte

// MakeControl allocates a zeroed control string able to hold nbits bits.
func MakeControl(nbits int) Control {
	if nbits <= 0 {
		return nil
	}
	return make(Control, (nbits+7)/8)
}

// Bits returns the capacity of the control string in bits.
func (c Control) Bits() int { return len(c) * 8 }

// SetBit sets bit i to v. The bit must be within capacity.
func (c Control) SetBit(i int, v bool) {
	byteIdx, mask := i/8, byte(1)<<(7-uint(i%8))
	if v {
		c[byteIdx] |= mask
	} else {
		c[byteIdx] &^= mask
	}
}

// Bit reports bit i. Bits beyond capacity read as zero, which lets
// receivers probe optional fields safely.
func (c Control) Bit(i int) bool {
	byteIdx := i / 8
	if byteIdx >= len(c) {
		return false
	}
	return c[byteIdx]&(byte(1)<<(7-uint(i%8))) != 0
}

// SetUint writes v into width bits starting at bit offset off, most
// significant bit first. v must fit in width bits.
func (c Control) SetUint(off, width int, v uint64) {
	for i := 0; i < width; i++ {
		c.SetBit(off+i, v&(1<<(uint(width-1-i))) != 0)
	}
}

// Uint reads width bits starting at offset off as an unsigned integer,
// most significant bit first.
func (c Control) Uint(off, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v <<= 1
		if c.Bit(off + i) {
			v |= 1
		}
	}
	return v
}

// Clone returns an independent copy of the control string.
func (c Control) Clone() Control {
	if c == nil {
		return nil
	}
	out := make(Control, len(c))
	copy(out, c)
	return out
}
