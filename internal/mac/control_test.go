package mac

import (
	"testing"
	"testing/quick"
)

func TestMakeControlSizes(t *testing.T) {
	cases := []struct{ bits, wantBytes int }{
		{0, 0}, {1, 1}, {7, 1}, {8, 1}, {9, 2}, {16, 2}, {63, 8}, {64, 8}, {65, 9},
	}
	for _, c := range cases {
		got := MakeControl(c.bits)
		if len(got) != c.wantBytes {
			t.Errorf("MakeControl(%d) = %d bytes, want %d", c.bits, len(got), c.wantBytes)
		}
	}
}

func TestSetBitGetBit(t *testing.T) {
	c := MakeControl(20)
	for i := 0; i < 20; i++ {
		if c.Bit(i) {
			t.Fatalf("fresh control has bit %d set", i)
		}
	}
	set := []int{0, 3, 7, 8, 13, 19}
	for _, i := range set {
		c.SetBit(i, true)
	}
	for i := 0; i < 20; i++ {
		want := false
		for _, j := range set {
			if i == j {
				want = true
			}
		}
		if c.Bit(i) != want {
			t.Errorf("bit %d = %v, want %v", i, c.Bit(i), want)
		}
	}
	c.SetBit(7, false)
	if c.Bit(7) {
		t.Error("clearing bit 7 failed")
	}
	if !c.Bit(8) {
		t.Error("clearing bit 7 disturbed bit 8")
	}
}

func TestBitBeyondCapacityReadsZero(t *testing.T) {
	c := MakeControl(8)
	if c.Bit(100) {
		t.Error("out-of-range bit should read as zero")
	}
	var nilCtrl Control
	if nilCtrl.Bit(0) {
		t.Error("nil control bit should read as zero")
	}
}

func TestSetUintRoundTrip(t *testing.T) {
	c := MakeControl(80)
	c.SetUint(0, 16, 0xBEEF)
	c.SetUint(16, 1, 1)
	c.SetUint(17, 33, 0x1_2345_6789)
	if got := c.Uint(0, 16); got != 0xBEEF {
		t.Errorf("Uint(0,16) = %#x", got)
	}
	if got := c.Uint(16, 1); got != 1 {
		t.Errorf("Uint(16,1) = %d", got)
	}
	if got := c.Uint(17, 33); got != 0x1_2345_6789 {
		t.Errorf("Uint(17,33) = %#x", got)
	}
}

func TestSetUintQuick(t *testing.T) {
	f := func(v uint32, offRaw uint8) bool {
		off := int(offRaw % 40)
		c := MakeControl(off + 32)
		c.SetUint(off, 32, uint64(v))
		return c.Uint(off, 32) == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUintAdjacentFieldsDoNotOverlap(t *testing.T) {
	c := MakeControl(64)
	c.SetUint(0, 10, 1023)
	c.SetUint(10, 10, 0)
	c.SetUint(20, 10, 777)
	if got := c.Uint(0, 10); got != 1023 {
		t.Errorf("field 0 = %d", got)
	}
	if got := c.Uint(10, 10); got != 0 {
		t.Errorf("field 1 = %d", got)
	}
	if got := c.Uint(20, 10); got != 777 {
		t.Errorf("field 2 = %d", got)
	}
}

func TestClone(t *testing.T) {
	c := MakeControl(16)
	c.SetBit(3, true)
	d := c.Clone()
	d.SetBit(3, false)
	if !c.Bit(3) {
		t.Error("mutating clone changed original")
	}
	var nilCtrl Control
	if nilCtrl.Clone() != nil {
		t.Error("clone of nil should be nil")
	}
}

func TestMessageKinds(t *testing.T) {
	p := Packet{ID: 1, Src: 0, Dest: 2, Injected: 5}
	pm := PacketMsg(p)
	if pm.IsLight() || !pm.HasPacket || pm.Packet.ID != 1 {
		t.Errorf("PacketMsg wrong: %+v", pm)
	}
	cm := CtrlMsg(MakeControl(4))
	if !cm.IsLight() || cm.HasPacket {
		t.Errorf("CtrlMsg wrong: %+v", cm)
	}
}

func TestFeedbackKindString(t *testing.T) {
	if FbSilence.String() != "silence" || FbHeard.String() != "heard" || FbCollision.String() != "collision" {
		t.Error("FeedbackKind strings wrong")
	}
	if FeedbackKind(9).String() != "FeedbackKind(9)" {
		t.Error("unknown FeedbackKind string wrong")
	}
}

func TestPacketString(t *testing.T) {
	p := Packet{ID: 7, Src: 1, Dest: 3, Injected: 42}
	if got := p.String(); got != "pkt#7 1->3@42" {
		t.Errorf("Packet.String() = %q", got)
	}
}
