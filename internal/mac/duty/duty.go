// Package duty implements threshold-rule duty-cycling as a wrapper over
// any registered algorithm's station set (ISSUE 8; after Giroire et al.,
// "Energy Efficient Routing by Switching-Off Network Interfaces").
//
// A wrapped station runs its inner protocol unchanged but may suppress
// the rounds the inner protocol would merely *listen* in: once its queue
// has been empty for SleepAfterIdle consecutive rounds it switches off
// instead of listening (waking every WakeEvery rounds to peek at the
// channel, if configured), and once it has spent EnergyBudget switched-on
// rounds it stops listening for good. Transmissions are always honored —
// sleeping must never destroy a packet the inner protocol decided to
// send — and a fresh injection resets the idle clock, so loaded stations
// behave exactly like the unwrapped algorithm.
//
// The price of sleeping is paid in deliveries, not protocol corruption: a
// direct algorithm's transmitter retires a packet on an uncontended heard
// round even when the sleeping destination missed it, which the simulator
// counts as a drop (metrics.Counters.Dropped). Only algorithms whose
// registry metadata declares Tolerant compose safely with duty-cycling;
// the facade enforces that.
//
// Wrapping clears the system's oblivious schedule claim: the sleep rules
// are adaptive (they depend on queue history), so the wrapped system is
// no longer schedule-conformant and must not advertise one.
package duty

import (
	"earmac/internal/core"
	"earmac/internal/mac"
)

// Params are the threshold knobs. The zero value disables duty-cycling
// entirely (Wrap then returns the system unchanged).
type Params struct {
	// SleepAfterIdle switches a station off instead of listening once
	// its queue has been empty for this many consecutive rounds
	// (0 = never sleep on idleness).
	SleepAfterIdle int64
	// WakeEvery, when > 0, wakes an idle-sleeping station every
	// WakeEvery rounds for one round, so it can still be reached.
	WakeEvery int64
	// EnergyBudget, when > 0, is the residual-energy threshold: after a
	// station has spent this many switched-on rounds it suppresses all
	// further listening (transmissions still go out).
	EnergyBudget int64
}

// Enabled reports whether any knob is active.
func (p Params) Enabled() bool { return p.SleepAfterIdle > 0 || p.EnergyBudget > 0 }

// Group is the shared sleep bookkeeping for one wrapped station set.
type Group struct {
	p Params

	curRound    int64
	curAsleep   int
	sleepRounds int64

	// Quiescence fast-forward bookkeeping (set only when Wrap validated
	// the inner system for duty-level skipping): innerOn is the inner
	// idle profile's energy — the listens suppressed per slept round —
	// and skippedTo guards the group-level accrual, which every
	// station's SkipIdle reports but must apply exactly once.
	innerOn   int
	skippedTo int64
}

// skipIdle accrues the group counters for a skipped all-asleep stretch.
func (g *Group) skipIdle(from, to int64) {
	if to <= g.skippedTo {
		return
	}
	if from < g.skippedTo {
		from = g.skippedTo
	}
	g.sleepRounds += int64(g.innerOn) * (to - from)
	g.curRound, g.curAsleep = to-1, g.innerOn
	g.skippedTo = to
}

// Asleep returns the number of stations that suppressed their action in
// the round currently being (or just finished being) stepped. It is
// meaningful at round end — core.Options.RoundEnd, or the network's
// post-dispatch fold — after every station has acted.
func (g *Group) Asleep() int { return g.curAsleep }

// SleepRounds returns the cumulative count of suppressed station-rounds.
func (g *Group) SleepRounds() int64 { return g.sleepRounds }

type station struct {
	g     *Group
	inner core.Protocol
	sk    mac.Skipper // inner as a Skipper when duty-level skip is validated, else nil
	idle  int64       // consecutive rounds ended with an empty queue
	spent int64       // switched-on rounds consumed against EnergyBudget
}

//earmac:hotpath
func (s *station) Inject(p mac.Packet) {
	s.idle = 0 // traffic wakes the station this very round
	s.inner.Inject(p)
}

//earmac:hotpath
func (s *station) Act(round int64) core.Action {
	g := s.g
	if round != g.curRound {
		g.curRound, g.curAsleep = round, 0
	}
	a := s.inner.Act(round)
	if a.On && !a.Transmit && s.sleeping(round) {
		a = core.Action{} // off: the listen is suppressed, nothing else
		g.curAsleep++
		g.sleepRounds++
	}
	if a.On {
		s.spent++
	}
	if s.inner.QueueLen() == 0 {
		s.idle++
	} else {
		s.idle = 0
	}
	return a
}

// sleeping decides whether a would-be listen round is suppressed.
func (s *station) sleeping(round int64) bool {
	if s.exhausted() {
		return true // exhausted: no wake schedule brings it back
	}
	if s.g.p.SleepAfterIdle > 0 && s.idle >= s.g.p.SleepAfterIdle {
		return !(s.g.p.WakeEvery > 0 && round%s.g.p.WakeEvery == 0)
	}
	return false
}

func (s *station) exhausted() bool {
	return s.g.p.EnergyBudget > 0 && s.spent >= s.g.p.EnergyBudget
}

// Quiescent implements mac.Skipper: an empty station that is past its
// sleep threshold (or out of budget) stays off every non-wake round, so
// the system-wide idle round is silent with energy zero. The idle clock
// only grows while empty, and exhaustion is permanent, so the state
// persists across the skipped stretch.
func (s *station) Quiescent() bool {
	return s.sk != nil && s.sk.Quiescent() &&
		(s.exhausted() || (s.g.p.SleepAfterIdle > 0 && s.idle >= s.g.p.SleepAfterIdle))
}

// SkipIdle implements mac.Skipper for a stretch the station slept
// through: the inner protocol's idle evolution is feedback-free (Wrap
// validated mac.FeedbackFreeIdler), the idle clock advances one per
// round, no energy is spent, and the group accrues the suppressed
// listens once.
func (s *station) SkipIdle(from, to int64) {
	s.sk.SkipIdle(from, to)
	s.idle += to - from
	s.g.skipIdle(from, to)
}

//earmac:hotpath
func (s *station) Observe(round int64, fb mac.Feedback) { s.inner.Observe(round, fb) }

func (s *station) QueueLen() int { return s.inner.QueueLen() }

// HeldPackets forwards conservation snapshots: sleeping never moves or
// destroys queued packets, so the inner holder's view is the truth.
func (s *station) HeldPackets() []mac.Packet {
	if h, ok := s.inner.(core.PacketHolder); ok {
		return h.HeldPackets()
	}
	return nil
}

// Wrap returns sys with every station duty-cycled under p, plus the
// Group exposing the sleep counters. With p zero it returns (sys, nil)
// unchanged. The wrapped system drops the oblivious schedule claim (see
// the package comment); everything else in Info is preserved — in
// particular EnergyCap, which sleeping can only help satisfy.
func Wrap(sys *core.System, p Params) (*core.System, *Group) {
	if !p.Enabled() {
		return sys, nil
	}
	g := &Group{p: p, curRound: -1}
	stations := make([]core.Protocol, len(sys.Stations))
	wrapped := make([]*station, len(sys.Stations))
	for i, st := range sys.Stations {
		ws := &station{g: g, inner: st}
		wrapped[i], stations[i] = ws, ws
	}
	info := sys.Info
	info.Oblivious = false
	out := &core.System{Info: info, Stations: stations}
	if inner, ok := skipProfile(sys); ok {
		g.innerOn = inner.Energy
		for i, st := range sys.Stations {
			wrapped[i].sk = st.(mac.Skipper)
		}
		out.Idle = dutyIdle{g: g}
	}
	return out, g
}

// skipProfile decides whether the wrapped system supports quiescence
// fast-forward, returning the inner idle round. It requires the inner
// system to declare a constant silent idle profile (a light profile
// means idle transmissions, which sleeping never suppresses) and every
// inner station to be a mac.Skipper whose idle evolution is
// feedback-free — duty-slept stations act every round but never
// observe, so an inner SkipIdle that replays feedback effects would
// diverge from the slept execution.
func skipProfile(sys *core.System) (core.IdleRound, bool) {
	if sys.Idle == nil {
		return core.IdleRound{}, false
	}
	e, ok := core.IdleConstOf(sys.Idle)
	if !ok || e.Light || e.CtrlBits != 0 {
		return core.IdleRound{}, false
	}
	for _, st := range sys.Stations {
		if _, ok := st.(mac.Skipper); !ok {
			return core.IdleRound{}, false
		}
		f, ok := st.(mac.FeedbackFreeIdler)
		if !ok || !f.FeedbackFreeIdle() {
			return core.IdleRound{}, false
		}
	}
	return e, true
}

// dutyIdle is the wrapped system's idle profile: with every station
// asleep (Quiescent), each non-wake round is silent with energy zero.
// WakeEvery rounds break the profile — the sleeping stations listen —
// so they are reported as idle breaks and run a full station sweep.
type dutyIdle struct{ g *Group }

// AppendIdleCycle implements core.IdleProfiler.
func (d dutyIdle) AppendIdleCycle(from int64, buf []core.IdleRound) []core.IdleRound {
	return append(buf, core.IdleRound{})
}

// NextIdleBreak implements core.IdleHorizon.
func (d dutyIdle) NextIdleBreak(from int64) int64 {
	w := d.g.p.WakeEvery
	if w <= 0 {
		return -1
	}
	return from + (w-from%w)%w
}
