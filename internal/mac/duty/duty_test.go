package duty

import (
	"testing"

	"earmac/internal/core"
	"earmac/internal/mac"
)

// listener is a minimal inner protocol: it listens every round, holds a
// countable queue, and records the feedback it observes.
type listener struct {
	queue    []mac.Packet
	observed int
}

func (l *listener) Inject(p mac.Packet)                  { l.queue = append(l.queue, p) }
func (l *listener) Act(round int64) core.Action          { return core.Listen() }
func (l *listener) Observe(round int64, fb mac.Feedback) { l.observed++ }
func (l *listener) QueueLen() int                        { return len(l.queue) }

func wrapOne(t *testing.T, p Params) (*station, *Group) {
	t.Helper()
	sys := &core.System{
		Info:     core.AlgorithmInfo{Name: "listener", EnergyCap: 1},
		Stations: []core.Protocol{&listener{}},
	}
	wrapped, g := Wrap(sys, p)
	if g == nil {
		t.Fatalf("Wrap(%+v) disabled duty-cycling", p)
	}
	if sys.Info.Oblivious {
		t.Fatal("test premise broken: inner Info claims a schedule")
	}
	if wrapped.Info.Oblivious {
		t.Error("wrapped system still claims an oblivious schedule")
	}
	return wrapped.Stations[0].(*station), g
}

func TestWrapDisabledIsIdentity(t *testing.T) {
	sys := &core.System{Stations: []core.Protocol{&listener{}}}
	got, g := Wrap(sys, Params{})
	if got != sys || g != nil {
		t.Fatalf("Wrap with zero Params = (%p, %v), want the input system and nil group", got, g)
	}
	if (Params{WakeEvery: 8}).Enabled() {
		t.Error("WakeEvery alone must not enable duty-cycling")
	}
}

// TestSleepAfterIdle: a station listens through the idle threshold, then
// suppresses every listen — except the WakeEvery peek rounds — and the
// group counters see each suppression.
func TestSleepAfterIdle(t *testing.T) {
	s, g := wrapOne(t, Params{SleepAfterIdle: 3, WakeEvery: 5})
	for round := int64(1); round <= 20; round++ {
		a := s.Act(round)
		// idle hits 3 at the end of round 3, so round 4 is the first
		// suppressed listen; multiples of 5 stay awake.
		wantOn := round <= 3 || round%5 == 0
		if a.On != wantOn {
			t.Errorf("round %d: On = %v, want %v", round, a.On, wantOn)
		}
	}
	if g.SleepRounds() != 13 {
		t.Errorf("SleepRounds = %d, want 13 (rounds 4..20 minus the four wake peeks)", g.SleepRounds())
	}
}

// TestInjectResetsIdle: traffic wakes a sleeping station that very
// round, and the idle clock restarts from its queue going empty again.
func TestInjectResetsIdle(t *testing.T) {
	s, _ := wrapOne(t, Params{SleepAfterIdle: 2})
	for round := int64(1); round <= 4; round++ {
		if a := s.Act(round); a.On != (round <= 2) {
			t.Fatalf("round %d: On = %v during warm-up", round, a.On)
		}
	}
	s.Inject(mac.Packet{ID: 1})
	if a := s.Act(5); !a.On {
		t.Error("round 5: injection did not wake the station")
	}
	// The queue never drains (the listener keeps its packets), so the
	// station stays awake indefinitely.
	for round := int64(6); round <= 12; round++ {
		if a := s.Act(round); !a.On {
			t.Errorf("round %d: loaded station went to sleep", round)
		}
	}
}

// TestEnergyBudgetExhaustionIsPermanent: after EnergyBudget switched-on
// rounds the station stops listening for good — no wake schedule and no
// idle reset brings it back.
func TestEnergyBudgetExhaustionIsPermanent(t *testing.T) {
	s, g := wrapOne(t, Params{EnergyBudget: 4, SleepAfterIdle: 100, WakeEvery: 2})
	for round := int64(1); round <= 4; round++ {
		if a := s.Act(round); !a.On {
			t.Fatalf("round %d: suppressed before the budget ran out", round)
		}
	}
	s.Inject(mac.Packet{ID: 1}) // traffic cannot revive a dead battery
	for round := int64(5); round <= 12; round++ {
		if a := s.Act(round); a.On {
			t.Errorf("round %d: exhausted station switched on", round)
		}
	}
	if g.SleepRounds() != 8 {
		t.Errorf("SleepRounds = %d, want 8", g.SleepRounds())
	}
}

// transmitter always sends; duty-cycling must never suppress a
// transmission, whatever the thresholds say.
type transmitter struct{ listener }

func (tr *transmitter) Act(round int64) core.Action {
	return core.Transmit(mac.Message{})
}

func TestTransmissionsAlwaysHonored(t *testing.T) {
	sys := &core.System{Stations: []core.Protocol{&transmitter{}}}
	wrapped, g := Wrap(sys, Params{SleepAfterIdle: 1, EnergyBudget: 2})
	s := wrapped.Stations[0]
	for round := int64(1); round <= 10; round++ {
		if a := s.Act(round); !a.On || !a.Transmit {
			t.Fatalf("round %d: transmission suppressed: %+v", round, a)
		}
	}
	if g.SleepRounds() != 0 {
		t.Errorf("SleepRounds = %d for a station that never listened", g.SleepRounds())
	}
}

// TestGroupAsleepPerRound: Asleep reports the current round's count
// across the whole wrapped set and resets when the next round begins.
func TestGroupAsleepPerRound(t *testing.T) {
	sys := &core.System{Stations: []core.Protocol{&listener{}, &listener{}, &transmitter{}}}
	wrapped, g := Wrap(sys, Params{SleepAfterIdle: 2})
	act := func(round int64) {
		for _, s := range wrapped.Stations {
			s.Act(round)
		}
	}
	act(1)
	act(2)
	if g.Asleep() != 0 {
		t.Fatalf("Asleep = %d before the idle threshold", g.Asleep())
	}
	act(3)
	if g.Asleep() != 2 {
		t.Errorf("Asleep = %d, want the two idle listeners", g.Asleep())
	}
	if g.SleepRounds() != 2 {
		t.Errorf("SleepRounds = %d, want 2", g.SleepRounds())
	}
}
