// Package mac defines the multiple access channel model of the paper:
// packets, messages, control bits, and per-round channel feedback.
//
// A multiple access channel is shared by n stations operating in
// synchronous rounds. In each round every switched-on station either
// transmits one message or listens. If exactly one station transmits, all
// switched-on stations (including the transmitter) hear the message; if
// two or more transmit, the round is a collision and nothing is heard; if
// none transmits, the round is silent. Switched-off stations receive no
// feedback at all.
package mac

import "fmt"

// Packet is a unit of traffic injected by the adversary into some station
// (Src) that must be delivered to its destination station (Dest). The
// simulator assigns IDs; the payload ("content" in the paper) is opaque
// and does not affect routing, so it is not modeled.
type Packet struct {
	ID       int64 // unique per simulation, assigned at injection
	Src      int   // station the packet was injected into
	Dest     int   // station that must consume the packet
	Injected int64 // round of injection (for latency accounting)
}

func (p Packet) String() string {
	return fmt.Sprintf("pkt#%d %d->%d@%d", p.ID, p.Src, p.Dest, p.Injected)
}

// Message is what one station puts on the channel in one round: at most
// one packet plus a string of control bits. Plain-packet algorithms must
// transmit exactly a packet and no control bits.
type Message struct {
	HasPacket bool
	Packet    Packet
	Ctrl      Control
}

// IsLight reports whether the message carries control bits only.
// A round in which a light message is heard is called a light round.
func (m Message) IsLight() bool { return !m.HasPacket }

// PacketMsg builds a plain-packet message.
func PacketMsg(p Packet) Message { return Message{HasPacket: true, Packet: p} }

// CtrlMsg builds a light (control-bits-only) message.
func CtrlMsg(c Control) Message { return Message{Ctrl: c} }

// FeedbackKind is what a switched-on station senses from the channel in a
// round.
type FeedbackKind uint8

const (
	// FbSilence: no station transmitted.
	FbSilence FeedbackKind = iota
	// FbHeard: exactly one station transmitted; the message was heard.
	FbHeard
	// FbCollision: two or more stations transmitted; noise was heard.
	FbCollision
)

func (k FeedbackKind) String() string {
	switch k {
	case FbSilence:
		return "silence"
	case FbHeard:
		return "heard"
	case FbCollision:
		return "collision"
	default:
		return fmt.Sprintf("FeedbackKind(%d)", uint8(k))
	}
}

// Feedback is delivered to every switched-on station at the end of a
// round. Msg is meaningful only when Kind == FbHeard.
type Feedback struct {
	Kind FeedbackKind
	Msg  Message
}
