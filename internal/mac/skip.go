package mac

// Skipper is the opt-in quiescence contract of the fast-forward engine
// (DESIGN.md §16). A station implementing it lets the simulator replace
// provably idle rounds — every queue empty, no injection pending, no
// disruption observable — with closed-form bookkeeping.
//
// The simulator queries Quiescent only immediately after a round in
// which it observed every station queue empty; the station answers
// whether, from its current state, it will neither transmit a packet
// nor change any externally observable behavior for as long as no
// packet is injected anywhere. A station whose idle behavior is
// round-periodic (deterministic schedule cursors) answers true; one
// holding deferred work (a pending retransmission, an unfinished
// protocol phase that still transmits data) answers false.
//
// SkipIdle(from, to) must then leave the station in exactly the state
// repeated Act/Observe calls over rounds [from, to) would have — with
// the channel feedback those idle rounds produce (silence, or the
// algorithm's own periodic light messages). It is called once, at the
// first non-idle round, before the station's next Inject/Act.
type Skipper interface {
	Quiescent() bool
	SkipIdle(from, to int64)
}

// FeedbackFreeIdler marks a Skipper whose idle evolution does not
// depend on channel feedback: SkipIdle is correct even if the station
// was switched off (and so observed nothing) for the skipped rounds.
// The duty-cycle wrapper requires it — a sleeping station's inner
// protocol still Acts every round but never Observes.
type FeedbackFreeIdler interface {
	FeedbackFreeIdle() bool
}
