// Package metrics collects the performance measures the paper reports:
// queue sizes (stability), packet delays (latency), and energy use, plus
// channel-utilization counters useful for diagnosing algorithms. A single
// Tracker is fed by the simulator once per round and once per delivery.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// QueueSample is one sampled point of the total-queue time series.
type QueueSample struct {
	Round int64
	Queue int64
}

// Counters is the flat, comparable block of hot-path statistics. Every
// field is a plain accumulator updated by simple stores and adds — no
// allocation, no indirection — so the simulator's steady-state round loop
// can feed it allocation-free; the rich views (percentiles, slopes,
// stability heuristics) are derived on read by Tracker methods. Being a
// plain comparable struct, two runs can be checked for identical totals
// with ==.
type Counters struct {
	Rounds    int64
	Injected  int64
	Delivered int64

	MaxQueue      int64
	MaxQueueRound int64
	FinalQueue    int64

	MaxLatency int64
	LatencySum int64
	// LatHist[b] counts deliveries with latency in [2^b, 2^(b+1)).
	LatHist [64]int64

	EnergySum int64
	MaxEnergy int64

	SilentRounds    int64 // nothing transmitted
	HeardRounds     int64 // exactly one transmitter
	CollisionRounds int64 // two or more transmitters
	LightRounds     int64 // heard, but control bits only
	DeliveryRounds  int64 // heard and the packet reached its destination
	ControlBits     int64 // total control bits on heard messages

	// Disruption counters (ISSUE 8). A jammed or outaged round is also a
	// CollisionRounds round — the disruption counters say why. Dropped
	// counts packets that died mid-route: an uncontended heard round
	// under a direct algorithm whose (duty-cycled) destination was off,
	// so the transmitter retired a packet nobody received. The omitempty
	// tags keep every committed trace footer and report byte-stable for
	// runs without jamming, outages, or duty-cycling.
	JammedRounds int64 `json:"JammedRounds,omitempty"`
	OutageRounds int64 `json:"OutageRounds,omitempty"`
	Dropped      int64 `json:"Dropped,omitempty"`
}

// Tracker accumulates simulation statistics. The zero value is not
// usable; call NewTracker.
type Tracker struct {
	// SampleEvery controls the queue time-series resolution: one sample is
	// kept every SampleEvery rounds (default 1024 in NewTracker). 0
	// disables the time series (hot loops that only need the flat
	// counters).
	SampleEvery int64

	Counters

	Violations []string // model violations (energy cap, plain-packet, ...)

	samples []QueueSample

	// Per-station peaks, enabled by TrackStations: fairness diagnostics
	// for the starvation phenomena of Table 1's latency-∞ rows.
	stationMax []int64
}

// TrackStations enables per-station queue peak tracking for n stations.
func (t *Tracker) TrackStations(n int) { t.stationMax = make([]int64, n) }

// ObserveStationQueues records one round's per-station queue lengths
// (no-op unless TrackStations was called).
func (t *Tracker) ObserveStationQueues(lens []int) {
	if t.stationMax == nil {
		return
	}
	for i, l := range lens {
		if int64(l) > t.stationMax[i] {
			t.stationMax[i] = int64(l)
		}
	}
}

// StationMaxQueues returns the per-station queue peaks (nil unless
// TrackStations was called).
func (t *Tracker) StationMaxQueues() []int64 { return t.stationMax }

// QueueImbalance returns the ratio of the largest per-station peak to the
// mean peak — 1 means perfectly balanced load, large values indicate one
// station absorbed the brunt. Returns 0 unless TrackStations was called
// and some packet was queued.
func (t *Tracker) QueueImbalance() float64 {
	if t.stationMax == nil {
		return 0
	}
	var sum, max int64
	for _, m := range t.stationMax {
		sum += m
		if m > max {
			max = m
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(t.stationMax))
	return float64(max) / mean
}

// NewTracker returns a Tracker sampling the queue curve every 1024 rounds.
func NewTracker() *Tracker {
	return &Tracker{SampleEvery: 1024}
}

// ObserveRound records one completed round.
func (t *Tracker) ObserveRound(round int64, queue int64, energy int) {
	t.Rounds++
	t.EnergySum += int64(energy)
	if int64(energy) > t.MaxEnergy {
		t.MaxEnergy = int64(energy)
	}
	if queue > t.MaxQueue {
		t.MaxQueue = queue
		t.MaxQueueRound = round
	}
	t.Counters.FinalQueue = queue
	if t.SampleEvery > 0 && round%t.SampleEvery == 0 {
		t.samples = append(t.samples, QueueSample{Round: round, Queue: queue})
	}
}

// ObserveQuietSpan records m consecutive quiescent rounds [from,
// from+m) in closed form: the total queue is zero throughout, the
// per-round energies sum to energySum with per-round maximum
// maxEnergy. It is bit-identical to m ObserveRound calls with queue 0
// — a zero queue never displaces MaxQueue/MaxQueueRound, and samples
// land on exactly the rounds the per-round loop would have sampled.
//
//earmac:hotpath
func (t *Tracker) ObserveQuietSpan(from, m, energySum int64, maxEnergy int) {
	t.Rounds += m
	t.EnergySum += energySum
	if int64(maxEnergy) > t.MaxEnergy {
		t.MaxEnergy = int64(maxEnergy)
	}
	t.Counters.FinalQueue = 0
	if t.SampleEvery > 0 {
		first := from + (t.SampleEvery-from%t.SampleEvery)%t.SampleEvery
		for r := first; r < from+m; r += t.SampleEvery {
			t.samples = append(t.samples, QueueSample{Round: r, Queue: 0})
		}
	}
}

// ObserveInjections records packets injected this round.
func (t *Tracker) ObserveInjections(count int) { t.Injected += int64(count) }

// ObserveDelivery records one delivered packet by its delay.
func (t *Tracker) ObserveDelivery(latency int64) {
	t.Delivered++
	if latency > t.MaxLatency {
		t.MaxLatency = latency
	}
	t.LatencySum += latency
	t.LatHist[bucketOf(latency)]++
}

func bucketOf(latency int64) int {
	if latency <= 0 {
		return 0
	}
	return bits.Len64(uint64(latency)) - 1
}

// Violate records a model violation.
func (t *Tracker) Violate(format string, args ...any) {
	if len(t.Violations) < 100 {
		t.Violations = append(t.Violations, fmt.Sprintf(format, args...))
	}
}

// Pending returns the packets still in flight: injected minus delivered
// minus dropped (a dropped packet left the system without arriving, so
// it no longer occupies any queue).
func (t *Tracker) Pending() int64 { return t.Injected - t.Delivered - t.Dropped }

// MeanLatency returns the average delivery delay.
func (t *Tracker) MeanLatency() float64 {
	if t.Delivered == 0 {
		return 0
	}
	return float64(t.LatencySum) / float64(t.Delivered)
}

// LatencyPercentile returns an upper bound for the p-quantile of delivery
// delay from the power-of-two histogram: the top of the bucket containing
// the quantile. p is clamped into [0,1] — a negative or NaN p behaves as
// 0 (the smallest observed bucket's top), p > 1 behaves as 1 (the bucket
// of the largest observed latency) — so out-of-range input can never
// push the quantile target past Delivered and silently fall through to
// an unrelated figure.
func (t *Tracker) LatencyPercentile(p float64) int64 {
	if t.Delivered == 0 {
		return 0
	}
	if math.IsNaN(p) || p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	target := int64(math.Ceil(p * float64(t.Delivered)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < len(t.LatHist); b++ {
		cum += t.LatHist[b]
		if cum >= target {
			if b == 63 {
				return math.MaxInt64
			}
			return (int64(1) << uint(b+1)) - 1
		}
	}
	// Unreachable: with p clamped, target <= Delivered, and the histogram
	// sums exactly to Delivered, so the loop always returns. Fail loudly
	// rather than fall back to an unrelated figure.
	panic("metrics: latency histogram inconsistent with Delivered")
}

// MeanEnergy returns the average number of switched-on stations per round.
func (t *Tracker) MeanEnergy() float64 {
	if t.Rounds == 0 {
		return 0
	}
	return float64(t.EnergySum) / float64(t.Rounds)
}

// Samples returns the sampled queue-size curve.
func (t *Tracker) Samples() []QueueSample { return t.samples }

// QueueSlope estimates the long-run growth rate of the total queue in
// packets per round by least-squares over the second half of the sampled
// curve (the first half is discarded as warm-up). A stable execution has
// slope ≈ 0; the impossibility adversaries force a clearly positive slope.
func (t *Tracker) QueueSlope() float64 {
	s := t.samples
	if len(s) < 4 {
		return 0
	}
	s = s[len(s)/2:]
	var n, sumX, sumY, sumXY, sumXX float64
	for _, pt := range s {
		x, y := float64(pt.Round), float64(pt.Queue)
		n++
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return 0
	}
	return (n*sumXY - sumX*sumY) / den
}

// GrowthRatio compares the mean queue in the last quarter of the run to
// the mean in the second quarter. Values near 1 indicate a bounded queue;
// values well above 1 indicate growth. Returns 1 when there is not enough
// data or the early mean is zero.
func (t *Tracker) GrowthRatio() float64 {
	s := t.samples
	if len(s) < 8 {
		return 1
	}
	q := len(s) / 4
	early := s[q : 2*q]
	late := s[3*q:]
	mean := func(pts []QueueSample) float64 {
		var sum float64
		for _, p := range pts {
			sum += float64(p.Queue)
		}
		return sum / float64(len(pts))
	}
	e := mean(early)
	if e == 0 {
		if mean(late) == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return mean(late) / e
}

// LooksStable applies the growth heuristic used by the experiment harness:
// bounded queues keep the late/early ratio below 1.5 and the slope near 0.
func (t *Tracker) LooksStable() bool {
	return t.GrowthRatio() < 1.5
}

// Summary renders a human-readable digest.
func (t *Tracker) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d injected=%d delivered=%d pending=%d\n",
		t.Rounds, t.Injected, t.Delivered, t.Pending())
	fmt.Fprintf(&b, "queue: max=%d (round %d) final=%d slope=%.6f growth=%.2f\n",
		t.MaxQueue, t.MaxQueueRound, t.Counters.FinalQueue, t.QueueSlope(), t.GrowthRatio())
	fmt.Fprintf(&b, "latency: max=%d mean=%.1f p50<=%d p99<=%d\n",
		t.MaxLatency, t.MeanLatency(), t.LatencyPercentile(0.5), t.LatencyPercentile(0.99))
	fmt.Fprintf(&b, "energy: mean=%.3f max=%d\n", t.MeanEnergy(), t.MaxEnergy)
	fmt.Fprintf(&b, "channel: heard=%d silent=%d collisions=%d light=%d deliveries=%d ctrlbits=%d\n",
		t.HeardRounds, t.SilentRounds, t.CollisionRounds, t.LightRounds, t.DeliveryRounds, t.ControlBits)
	if len(t.Violations) > 0 {
		fmt.Fprintf(&b, "VIOLATIONS (%d):\n", len(t.Violations))
		for _, v := range t.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	return b.String()
}

// LatencyBuckets returns the non-empty latency histogram as (upperBound,
// count) pairs in increasing order.
func (t *Tracker) LatencyBuckets() []struct {
	UpTo  int64
	Count int64
} {
	var out []struct {
		UpTo  int64
		Count int64
	}
	for b, c := range t.LatHist {
		if c == 0 {
			continue
		}
		up := int64(math.MaxInt64)
		if b < 63 {
			up = (int64(1) << uint(b+1)) - 1
		}
		out = append(out, struct {
			UpTo  int64
			Count int64
		}{up, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UpTo < out[j].UpTo })
	return out
}
