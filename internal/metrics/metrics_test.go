package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		lat  int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1 << 40, 40},
	}
	for _, c := range cases {
		if got := bucketOf(c.lat); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.lat, got, c.want)
		}
	}
}

func TestDeliveryStats(t *testing.T) {
	tr := NewTracker()
	for _, lat := range []int64{1, 2, 3, 4, 100} {
		tr.ObserveDelivery(lat)
	}
	if tr.Delivered != 5 {
		t.Errorf("Delivered = %d", tr.Delivered)
	}
	if tr.MaxLatency != 100 {
		t.Errorf("MaxLatency = %d", tr.MaxLatency)
	}
	if got := tr.MeanLatency(); got != 22 {
		t.Errorf("MeanLatency = %v, want 22", got)
	}
	// p50 over {1,2,3,4,100}: 3rd smallest = 3, bucket [2,4) → upper 3.
	if got := tr.LatencyPercentile(0.5); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}
	if got := tr.LatencyPercentile(1.0); got != 127 {
		t.Errorf("p100 = %d, want 127 (bucket top of 100)", got)
	}
}

// TestLatencyPercentileClamped is the regression test for out-of-range
// quantiles: p > 1, p < 0, and NaN used to produce a target beyond
// Delivered and silently fall through to MaxLatency; they now clamp to
// the [0,1] endpoints.
func TestLatencyPercentileClamped(t *testing.T) {
	tr := NewTracker()
	for _, lat := range []int64{1, 2, 3, 4, 100} {
		tr.ObserveDelivery(lat)
	}
	p0 := tr.LatencyPercentile(0)   // smallest bucket top: latency 1 → bucket [1,2) → 1
	p1 := tr.LatencyPercentile(1.0) // bucket top of 100 → 127
	if p0 != 1 {
		t.Errorf("p=0: %d, want 1", p0)
	}
	if p1 != 127 {
		t.Errorf("p=1: %d, want 127", p1)
	}
	for _, p := range []float64{1.0001, 2, 100, math.Inf(1)} {
		if got := tr.LatencyPercentile(p); got != p1 {
			t.Errorf("p=%v: %d, want clamp to p=1 result %d", p, got, p1)
		}
	}
	for _, p := range []float64{-0.0001, -3, math.Inf(-1), math.NaN()} {
		if got := tr.LatencyPercentile(p); got != p0 {
			t.Errorf("p=%v: %d, want clamp to p=0 result %d", p, got, p0)
		}
	}
}

// TestLatencyPercentileZeroLatency: instant deliveries land in bucket 0,
// whose upper bound is 1.
func TestLatencyPercentileZeroLatency(t *testing.T) {
	tr := NewTracker()
	tr.ObserveDelivery(0)
	tr.ObserveDelivery(0)
	for _, p := range []float64{0, 0.5, 1} {
		if got := tr.LatencyPercentile(p); got != 1 {
			t.Errorf("p=%v over zero-latency deliveries: %d, want 1", p, got)
		}
	}
	if tr.MaxLatency != 0 {
		t.Errorf("MaxLatency = %d", tr.MaxLatency)
	}
}

// TestLatencyPercentileBucketBoundaries pins the quantile at exact
// power-of-two boundaries: a latency of exactly 2^b sits at the bottom
// of bucket b, so its reported upper bound is 2^(b+1)-1.
func TestLatencyPercentileBucketBoundaries(t *testing.T) {
	for _, lat := range []int64{1, 2, 4, 8, 1024} {
		tr := NewTracker()
		tr.ObserveDelivery(lat)
		want := int64(1)<<(bucketOf(lat)+1) - 1
		if got := tr.LatencyPercentile(0.5); got != want {
			t.Errorf("single delivery at %d: p50 = %d, want %d", lat, got, want)
		}
	}
}

func TestLatencyPercentileTopBucket(t *testing.T) {
	tr := NewTracker()
	tr.ObserveDelivery(math.MaxInt64) // bucket 63: upper bound saturates
	if got := tr.LatencyPercentile(1); got != math.MaxInt64 {
		t.Errorf("top-bucket percentile = %d, want MaxInt64", got)
	}
}

func TestBucketOfNegativeLatency(t *testing.T) {
	// Defensive: latency is never negative in practice, but bucketOf must
	// not index out of range if it ever is.
	if got := bucketOf(-5); got != 0 {
		t.Errorf("bucketOf(-5) = %d, want 0", got)
	}
}

func TestMaxEnergyWideRange(t *testing.T) {
	// MaxEnergy is int64: it sits among int64 accumulators and serializes
	// with the same JSON width (the compile-time assignment below pins
	// the field's type). Per-round energy is one round's on-station
	// count, so the int parameter bounds single observations, but the
	// stored peak must carry the full value without truncation on every
	// platform.
	tr := NewTracker()
	tr.ObserveRound(0, 0, math.MaxInt32)
	var peak int64 = tr.MaxEnergy
	if peak != math.MaxInt32 {
		t.Errorf("MaxEnergy = %d, want %d", peak, int64(math.MaxInt32))
	}
}

func TestLatencyPercentileEmpty(t *testing.T) {
	tr := NewTracker()
	if tr.LatencyPercentile(0.99) != 0 || tr.MeanLatency() != 0 {
		t.Error("empty tracker percentile/mean should be 0")
	}
}

func TestRoundObservation(t *testing.T) {
	tr := NewTracker()
	tr.SampleEvery = 1
	queues := []int64{0, 5, 3, 9, 2}
	for i, q := range queues {
		tr.ObserveRound(int64(i), q, i%3)
	}
	if tr.Rounds != 5 {
		t.Errorf("Rounds = %d", tr.Rounds)
	}
	if tr.MaxQueue != 9 || tr.MaxQueueRound != 3 {
		t.Errorf("MaxQueue = %d @%d", tr.MaxQueue, tr.MaxQueueRound)
	}
	if tr.FinalQueue != 2 {
		t.Errorf("FinalQueue = %d", tr.FinalQueue)
	}
	if tr.MaxEnergy != 2 {
		t.Errorf("MaxEnergy = %d", tr.MaxEnergy)
	}
	if got := tr.MeanEnergy(); got != (0+1+2+0+1)/5.0 {
		t.Errorf("MeanEnergy = %v", got)
	}
	if len(tr.Samples()) != 5 {
		t.Errorf("samples = %d", len(tr.Samples()))
	}
}

func TestQueueSlopeGrowth(t *testing.T) {
	tr := NewTracker()
	tr.SampleEvery = 1
	// Queue grows 2 packets/round.
	for r := int64(0); r < 1000; r++ {
		tr.ObserveRound(r, 2*r, 1)
	}
	if got := tr.QueueSlope(); math.Abs(got-2) > 0.01 {
		t.Errorf("QueueSlope = %v, want ≈2", got)
	}
	if tr.LooksStable() {
		t.Error("growing queue reported stable")
	}
}

func TestQueueSlopeStable(t *testing.T) {
	tr := NewTracker()
	tr.SampleEvery = 1
	for r := int64(0); r < 1000; r++ {
		tr.ObserveRound(r, 40+(r%7), 1)
	}
	if got := tr.QueueSlope(); math.Abs(got) > 0.01 {
		t.Errorf("QueueSlope = %v, want ≈0", got)
	}
	if !tr.LooksStable() {
		t.Error("bounded queue reported unstable")
	}
	if g := tr.GrowthRatio(); g < 0.9 || g > 1.1 {
		t.Errorf("GrowthRatio = %v, want ≈1", g)
	}
}

func TestGrowthRatioEmptyEarly(t *testing.T) {
	tr := NewTracker()
	tr.SampleEvery = 1
	for r := int64(0); r < 100; r++ {
		q := int64(0)
		if r >= 80 {
			q = 50
		}
		tr.ObserveRound(r, q, 1)
	}
	if !math.IsInf(tr.GrowthRatio(), 1) {
		t.Errorf("GrowthRatio = %v, want +Inf", tr.GrowthRatio())
	}
}

func TestGrowthRatioNotEnoughData(t *testing.T) {
	tr := NewTracker()
	tr.SampleEvery = 1
	for r := int64(0); r < 4; r++ {
		tr.ObserveRound(r, r, 1)
	}
	if tr.GrowthRatio() != 1 {
		t.Errorf("GrowthRatio with little data = %v, want 1", tr.GrowthRatio())
	}
}

func TestPerStationTracking(t *testing.T) {
	tr := NewTracker()
	// Disabled by default: no-ops.
	tr.ObserveStationQueues([]int{5, 5})
	if tr.StationMaxQueues() != nil || tr.QueueImbalance() != 0 {
		t.Error("per-station tracking should be off by default")
	}
	tr.TrackStations(3)
	tr.ObserveStationQueues([]int{1, 7, 2})
	tr.ObserveStationQueues([]int{4, 3, 2})
	peaks := tr.StationMaxQueues()
	want := []int64{4, 7, 2}
	for i := range want {
		if peaks[i] != want[i] {
			t.Errorf("peaks = %v, want %v", peaks, want)
		}
	}
	// Imbalance = 7 / mean(4,7,2) = 7/4.333.
	if got := tr.QueueImbalance(); got < 1.6 || got > 1.63 {
		t.Errorf("QueueImbalance = %v", got)
	}
}

func TestQueueImbalanceEmpty(t *testing.T) {
	tr := NewTracker()
	tr.TrackStations(2)
	if tr.QueueImbalance() != 0 {
		t.Error("imbalance of untouched tracker should be 0")
	}
}

func TestViolationsCapped(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 200; i++ {
		tr.Violate("violation %d", i)
	}
	if len(tr.Violations) != 100 {
		t.Errorf("violations = %d, want capped at 100", len(tr.Violations))
	}
}

func TestSummaryIncludesViolations(t *testing.T) {
	tr := NewTracker()
	tr.ObserveRound(0, 1, 2)
	tr.ObserveDelivery(10)
	tr.Violate("cap exceeded")
	s := tr.Summary()
	for _, want := range []string{"rounds=1", "delivered=1", "VIOLATIONS", "cap exceeded"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestPendingAndInjections(t *testing.T) {
	tr := NewTracker()
	tr.ObserveInjections(7)
	tr.ObserveDelivery(1)
	tr.ObserveDelivery(2)
	if tr.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", tr.Pending())
	}
}

func TestLatencyBuckets(t *testing.T) {
	tr := NewTracker()
	for _, lat := range []int64{1, 1, 5, 6, 7} {
		tr.ObserveDelivery(lat)
	}
	b := tr.LatencyBuckets()
	if len(b) != 2 {
		t.Fatalf("buckets = %v", b)
	}
	if b[0].UpTo != 1 || b[0].Count != 2 {
		t.Errorf("bucket 0 = %+v", b[0])
	}
	if b[1].UpTo != 7 || b[1].Count != 3 {
		t.Errorf("bucket 1 = %+v", b[1])
	}
}
