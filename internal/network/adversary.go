package network

import (
	"fmt"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/ratio"
)

// Source supplies each round's adversarial entry injections for one
// channel, in global station coordinates, appended to buf. Rounds are
// queried in increasing order, each channel exactly once per round;
// every injection's source station must belong to the queried channel.
//
// Concurrency contract: with Options.Workers != 1 the network calls
// AppendEntries concurrently for *distinct* channels (never for the
// same channel — a channel always steps on the same worker). A Source
// must therefore keep its mutable per-round state partitioned per
// channel, the way Adversary keeps per-channel buckets and pattern
// RNGs and ReplaySource keeps per-channel cursors. Determinism follows
// for free: each channel's entry stream depends only on (round, ch)
// and that channel's own state, so it is identical at any worker
// count.
type Source interface {
	AppendEntries(round int64, ch int, buf []core.Injection) []core.Injection
}

// SplitType divides a global (ρ, β) adversary type evenly across
// channels, with exact rational arithmetic: each of the `channels`
// entry buckets gets rate ρ/channels and burstiness β/channels floored
// at 1. The floor keeps every channel live — a bucket with β < 1 can
// never afford even a single packet, because any 1-packet window needs
// ρ_c·1 + β_c ≥ 1 — so the budget-split invariant is:
//
//   - rates split exactly: Σ_c ρ_c = ρ, and
//   - bursts split exactly whenever β ≥ channels (Σ_c β_c = β); for
//     β < channels the floor *overshoots* — the channels jointly hold
//     burst credit `channels`, more than the nominal β — so the network
//     total respects the (ρ, max(β, channels)) contract, NOT the
//     nominal (ρ, β) one.
//
// Per channel, the entry stream always respects (ρ/channels,
// max(β/channels, 1)); the network-wide entry stream respects the
// effective global type scenario.EffectiveGlobalType(split, channels) =
// (ρ, max(β, channels)). CheckAdmissibleSplit audits recorded traces
// against both.
func SplitType(typ adversary.Type, channels int) adversary.Type {
	if channels < 1 {
		panic("network: SplitType with no channels")
	}
	c := int64(channels)
	beta := ratio.New(typ.Beta.Num(), typ.Beta.Den()*c)
	if beta.Less(ratio.One()) {
		beta = ratio.One()
	}
	return adversary.Type{
		Rho:  ratio.New(typ.Rho.Num(), typ.Rho.Den()*c),
		Beta: beta,
	}
}

// Adversary is the network-level injection source: one injection
// pattern per channel, each clipped online by that channel's own
// leaky bucket of the evenly split global (ρ, β) budget (SplitType).
// Patterns draw over the global station space; each drawn source is
// folded into the entry channel (local = station mod N), while the
// destination stays global — so any registered single-channel pattern
// doubles as a network workload without modification.
type Adversary struct {
	topo    *Topology
	buckets []*adversary.Bucket
	pats    []adversary.Pattern
}

// NewAdversary builds the budget-splitting entry source. pats must hold
// one pattern per channel (independent seeds keep channels'
// randomness uncorrelated); each draws with the per-channel budget.
func NewAdversary(topo *Topology, typ adversary.Type, pats []adversary.Pattern) (*Adversary, error) {
	if len(pats) != topo.Channels() {
		return nil, fmt.Errorf("network: %d patterns for %d channels", len(pats), topo.Channels())
	}
	split := SplitType(typ, topo.Channels())
	a := &Adversary{
		topo:    topo,
		buckets: make([]*adversary.Bucket, topo.Channels()),
		pats:    pats,
	}
	for c := range a.buckets {
		a.buckets[c] = adversary.NewBucket(split)
	}
	return a, nil
}

// AppendEntries implements Source. All mutable state (bucket levels,
// pattern RNGs) is per-channel, satisfying Source's concurrency
// contract for distinct channels.
func (a *Adversary) AppendEntries(round int64, ch int, buf []core.Injection) []core.Injection {
	b := a.buckets[ch]
	budget := b.Tick()
	if budget == 0 {
		b.Spend(0)
		return buf
	}
	start := len(buf)
	buf = adversary.DrawAppend(a.pats[ch], round, budget, buf)
	if len(buf)-start > budget {
		buf = buf[:start+budget]
	}
	n := a.topo.StationsPerChannel()
	for i := start; i < len(buf); i++ {
		buf[i].Station = a.topo.Global(ch, buf[i].Station%n)
	}
	b.Spend(len(buf) - start)
	return buf
}

// NextEntryRound implements SourceSkipper: channel ch's bucket is
// credit-starved for a computable stretch (rounds the pattern is never
// consulted on), and from the first affordable round the pattern's own
// skipper, if any, bounds the next draw. Stochastic patterns without a
// skipper return the first affordable round itself, pinning spans.
func (a *Adversary) NextEntryRound(from int64, ch int) int64 {
	j := a.buckets[ch].RoundsToCredit()
	if j < 0 {
		return -1
	}
	return adversary.NextDraw(a.pats[ch], from+j)
}

// SkipEntries implements SourceSkipper: each skipped round is
// entry-free, so channel ch's bucket advances exactly as Tick+Spend(0)
// per round would.
func (a *Adversary) SkipEntries(from, to int64, ch int) {
	a.buckets[ch].SkipRounds(to - from)
}
