package network

// Disruption sources (ISSUE 8): a budgeted jamming adversary choosing
// (round, channel) pairs to jam, and validated per-channel outage
// schedules. Both feed Network.Step's phase 1, which translates them
// into per-channel core.Disrupt flags for the round — a disrupted round
// delivers nothing and reads as a collision (see core.Options.Disrupted)
// — and, for outages, parks incoming relay hand-offs until the channel
// comes back.

import (
	"fmt"
	"sort"

	"earmac/internal/adversary"
	"earmac/internal/scenario"
)

// Disruptor supplies the channels jammed in each round. AppendJams is
// called exactly once per round, serially (from Step's phase 1, before
// any channel is dispatched), with rounds strictly increasing; it must
// append the jammed channel indices in ascending order and reuse buf —
// the steady-state round loop is allocation-free.
type Disruptor interface {
	AppendJams(round int64, buf []int) []int
}

// jamSeedMix decorrelates the jammer's channel choices from the
// injection patterns, which are seeded from the same user seed.
const jamSeedMix = 0x6a61_6d5f_6561_72 // "jam_ear"

// Jammer is the budgeted jamming adversary: a separate (ρ_j, β_j)
// leaky bucket, spent one unit per jammed (round, channel). Each round
// it greedily spends as much budget as it can — min(budget, channels)
// distinct channels, drawn by a seeded partial shuffle — so intensity
// is governed purely by the type: ρ_j = 1/8 on one channel jams every
// 8th round. Fully deterministic in (type, channels, seed).
type Jammer struct {
	bucket   *adversary.Bucket
	state    uint64
	channels int
	perm     []int
}

// NewJammer builds a jamming adversary over the given channel count.
func NewJammer(typ adversary.Type, channels int, seed int64) *Jammer {
	if channels < 1 {
		panic("network: jammer needs at least one channel")
	}
	return &Jammer{
		bucket:   adversary.NewBucket(typ),
		state:    uint64(seed) ^ jamSeedMix,
		channels: channels,
		perm:     make([]int, channels),
	}
}

// splitmix is the standard 64-bit mix (private copy; randmac keeps its
// own for the same reason: the constant is part of the algorithm).
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// AppendJams implements Disruptor.
func (j *Jammer) AppendJams(round int64, buf []int) []int {
	k := j.bucket.Tick()
	if k > j.channels {
		k = j.channels
	}
	j.bucket.Spend(k)
	if k == 0 {
		return buf
	}
	if k == j.channels {
		for c := 0; c < j.channels; c++ {
			buf = append(buf, c)
		}
		return buf
	}
	// Partial Fisher-Yates over the persistent scratch, then an
	// insertion sort of the k chosen channels (k is tiny).
	for i := range j.perm {
		j.perm[i] = i
	}
	for i := 0; i < k; i++ {
		j.state = splitmix(j.state)
		o := i + int(j.state%uint64(j.channels-i))
		j.perm[i], j.perm[o] = j.perm[o], j.perm[i]
	}
	start := len(buf)
	buf = append(buf, j.perm[:k]...)
	chosen := buf[start:]
	for i := 1; i < len(chosen); i++ {
		for o := i; o > 0 && chosen[o] < chosen[o-1]; o-- {
			chosen[o], chosen[o-1] = chosen[o-1], chosen[o]
		}
	}
	return buf
}

// JamReplay re-executes the jam stream of a recorded trace-v3 run: the
// recorded jam events, consumed in (round, channel) order. Like the
// entry-stream replayers it applies no bucket — the recording already
// proved the jam stream affordable (CheckJamAdmissible).
type JamReplay struct {
	events []scenario.Event
	cur    int
}

// NewJamReplay extracts a trace's jam events. It returns nil when the
// trace has none, so callers can gate on the result.
func NewJamReplay(t *scenario.Trace) *JamReplay {
	var r *JamReplay
	for _, ev := range t.Events {
		if ev.Kind == scenario.KindJam {
			if r == nil {
				r = &JamReplay{}
			}
			r.events = append(r.events, ev)
		}
	}
	return r
}

// AppendJams implements Disruptor.
func (r *JamReplay) AppendJams(round int64, buf []int) []int {
	for r.cur < len(r.events) && r.events[r.cur].Round < round {
		r.cur++ // skipped by the driver
	}
	for r.cur < len(r.events) && r.events[r.cur].Round == round {
		buf = append(buf, r.events[r.cur].Channel)
		r.cur++
	}
	return buf
}

// NextJamRound implements JamHorizon: the first recorded jam at round
// >= from, or -1. Read-only — the cursor is left for AppendJams.
func (r *JamReplay) NextJamRound(from int64) int64 {
	for i := r.cur; i < len(r.events); i++ {
		if r.events[i].Round >= from {
			return r.events[i].Round
		}
	}
	return -1
}

// Outage is one channel-dead window: channel Channel delivers nothing
// during rounds [From, From+Rounds), and relay hand-offs destined for
// it queue at the network layer until the window ends.
type Outage struct {
	Channel int   `json:"channel"`
	From    int64 `json:"from"`
	Rounds  int64 `json:"rounds"`
}

// OutageSchedule is a validated set of outage windows, queried once per
// (channel, round) with rounds nondecreasing (one cursor per channel —
// a schedule is good for a single forward pass; build a fresh one per
// run).
type OutageSchedule struct {
	byCh [][]Outage
	cur  []int
}

// NewOutageSchedule validates and indexes outage windows for a network
// of the given channel count: every window must name a valid channel,
// start at round ≥ 0, last ≥ 1 round, and windows on the same channel
// must not overlap. An empty window set returns (nil, nil).
func NewOutageSchedule(outs []Outage, channels int) (*OutageSchedule, error) {
	if len(outs) == 0 {
		return nil, nil
	}
	s := &OutageSchedule{
		byCh: make([][]Outage, channels),
		cur:  make([]int, channels),
	}
	for _, o := range outs {
		if o.Channel < 0 || o.Channel >= channels {
			return nil, fmt.Errorf("network: outage on channel %d, have %d channels", o.Channel, channels)
		}
		if o.From < 0 {
			return nil, fmt.Errorf("network: outage on channel %d starts at negative round %d", o.Channel, o.From)
		}
		if o.Rounds < 1 {
			return nil, fmt.Errorf("network: outage on channel %d lasts %d rounds, need >= 1", o.Channel, o.Rounds)
		}
		s.byCh[o.Channel] = append(s.byCh[o.Channel], o)
	}
	for c, wins := range s.byCh {
		sort.Slice(wins, func(i, o int) bool { return wins[i].From < wins[o].From })
		for i := 1; i < len(wins); i++ {
			if wins[i].From < wins[i-1].From+wins[i-1].Rounds {
				return nil, fmt.Errorf("network: overlapping outage windows on channel %d: [%d,%d) and [%d,%d)",
					c, wins[i-1].From, wins[i-1].From+wins[i-1].Rounds, wins[i].From, wins[i].From+wins[i].Rounds)
			}
		}
	}
	return s, nil
}

// Active reports whether channel ch is dead in the given round, whether
// this round opens a window (for event emission), and the window's
// length when it does.
func (s *OutageSchedule) Active(ch int, round int64) (active, starts bool, dur int64) {
	wins := s.byCh[ch]
	i := s.cur[ch]
	for i < len(wins) && round >= wins[i].From+wins[i].Rounds {
		i++
	}
	s.cur[ch] = i
	if i >= len(wins) || round < wins[i].From {
		return false, false, 0
	}
	return true, round == wins[i].From, wins[i].Rounds
}

// NextDisrupted returns the earliest round >= from at which channel ch
// is inside an outage window, or -1 when none remains. Read-only: the
// forward cursor is left for Active to advance.
func (s *OutageSchedule) NextDisrupted(ch int, from int64) int64 {
	wins := s.byCh[ch]
	for i := s.cur[ch]; i < len(wins); i++ {
		if from < wins[i].From {
			return wins[i].From
		}
		if from < wins[i].From+wins[i].Rounds {
			return from
		}
	}
	return -1
}

// EventSink receives the disruption and sleep events Step emits after
// its barrier, in ascending channel order within each round — the
// trace-v3 recording hook (scenario.Encoder implements it).
type EventSink interface {
	Jam(round int64, ch int)
	Outage(round int64, ch int, rounds int64)
	Sleep(round int64, ch int, asleep int)
}
