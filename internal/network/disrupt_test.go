package network

// Tests for the disruption layer (ISSUE 8): the budgeted jammer, outage
// schedule validation and querying, jam-stream replay, the mid-route
// packet-death mirror-state reclamation regression, and the disrupted
// variant of the allocation-free steady state.

import (
	"reflect"
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/algorithms/randmac"
	"earmac/internal/core"
	"earmac/internal/mac/duty"
	"earmac/internal/scenario"
)

// TestJammerDeterministicAndBudgeted: the jam stream is a pure function
// of (type, channels, seed); every round's jams are distinct ascending
// channels; and every prefix of the stream respects the (ρ_j, β_j)
// leaky-bucket budget while the greedy spend keeps long-run intensity at
// the rate the type promises.
func TestJammerDeterministicAndBudgeted(t *testing.T) {
	const channels, rounds = 4, 4000
	typ := adversary.T(1, 8, 3)
	j1 := NewJammer(typ, channels, 99)
	j2 := NewJammer(typ, channels, 99)
	other := NewJammer(typ, channels, 100)

	var total int64
	var buf1, buf2, buf3 []int
	differs := false
	for r := int64(0); r < rounds; r++ {
		buf1 = j1.AppendJams(r, buf1[:0])
		buf2 = j2.AppendJams(r, buf2[:0])
		buf3 = other.AppendJams(r, buf3[:0])
		if !reflect.DeepEqual(buf1, buf2) {
			t.Fatalf("round %d: same seed diverged: %v vs %v", r, buf1, buf2)
		}
		if !reflect.DeepEqual(buf1, buf3) {
			differs = true
		}
		for i := 1; i < len(buf1); i++ {
			if buf1[i] <= buf1[i-1] {
				t.Fatalf("round %d: jams not ascending distinct: %v", r, buf1)
			}
		}
		for _, c := range buf1 {
			if c < 0 || c >= channels {
				t.Fatalf("round %d: jammed channel %d out of range", r, c)
			}
		}
		total += int64(len(buf1))
		// Leaky-bucket prefix bound: jams in [0, r] cost one unit each
		// out of ρ_j·(r+1) + β_j.
		if limit := (r+1)/8 + 3; total > limit {
			t.Fatalf("round %d: %d jams exceed the budget %d", r, total, limit)
		}
	}
	if !differs {
		t.Error("different seeds produced identical jam streams")
	}
	// Greedy spending tracks the rate: ρ_j = 1/8 over 4000 rounds is 500
	// units, all affordable with 4 channels to spread them over.
	if total < rounds/8 {
		t.Errorf("jammer left budget unspent: %d jams over %d rounds at ρ_j = 1/8", total, rounds)
	}
}

// TestJammerSaturatesAtChannelCount: a budget richer than the channel
// count jams every channel rather than overdrawing the topology.
func TestJammerSaturatesAtChannelCount(t *testing.T) {
	j := NewJammer(adversary.T(3, 1, 10), 2, 1)
	var buf []int
	for r := int64(0); r < 50; r++ {
		buf = j.AppendJams(r, buf[:0])
		if !reflect.DeepEqual(buf, []int{0, 1}) {
			t.Fatalf("round %d: want both channels jammed, got %v", r, buf)
		}
	}
}

// TestJamReplayReproducesStream: replaying recorded jam events yields
// the original per-round channel sets, and a trace without jam events
// yields a nil replayer so callers can gate on it.
func TestJamReplayReproducesStream(t *testing.T) {
	tr := &scenario.Trace{Events: []scenario.Event{
		{Round: 1, Kind: scenario.KindJam, Channel: 0},
		{Round: 1, Kind: scenario.KindJam, Channel: 2},
		{Round: 2, Kind: scenario.KindSleep, Channel: 0, Asleep: 3},
		{Round: 5, Kind: scenario.KindJam, Channel: 1},
	}}
	r := NewJamReplay(tr)
	if r == nil {
		t.Fatal("NewJamReplay returned nil for a trace with jam events")
	}
	want := map[int64][]int{1: {0, 2}, 5: {1}}
	var buf []int
	for round := int64(0); round < 8; round++ {
		buf = r.AppendJams(round, buf[:0])
		if w := want[round]; !reflect.DeepEqual(append([]int(nil), buf...), w) && !(len(buf) == 0 && len(w) == 0) {
			t.Errorf("round %d: replayed jams %v, want %v", round, buf, w)
		}
	}
	if r := NewJamReplay(&scenario.Trace{Events: []scenario.Event{{Round: 3}}}); r != nil {
		t.Error("NewJamReplay should return nil when the trace has no jam events")
	}
}

func TestOutageScheduleValidation(t *testing.T) {
	cases := []struct {
		name string
		outs []Outage
	}{
		{"channel out of range", []Outage{{Channel: 3, From: 0, Rounds: 5}}},
		{"negative channel", []Outage{{Channel: -1, From: 0, Rounds: 5}}},
		{"negative start", []Outage{{Channel: 0, From: -2, Rounds: 5}}},
		{"empty window", []Outage{{Channel: 0, From: 10, Rounds: 0}}},
		{"overlap", []Outage{{Channel: 1, From: 10, Rounds: 10}, {Channel: 1, From: 15, Rounds: 3}}},
	}
	for _, c := range cases {
		if _, err := NewOutageSchedule(c.outs, 3); err == nil {
			t.Errorf("%s: accepted %v", c.name, c.outs)
		}
	}
	if s, err := NewOutageSchedule(nil, 3); s != nil || err != nil {
		t.Errorf("empty schedule: got (%v, %v), want (nil, nil)", s, err)
	}
	// Adjacent windows on one channel and same rounds on different
	// channels are both fine.
	if _, err := NewOutageSchedule([]Outage{
		{Channel: 0, From: 10, Rounds: 5},
		{Channel: 0, From: 15, Rounds: 5},
		{Channel: 2, From: 12, Rounds: 4},
	}, 3); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

// TestOutageScheduleActive pins the window semantics of the forward
// query: dead exactly during [From, From+Rounds), with the opening round
// flagged once alongside the window length.
func TestOutageScheduleActive(t *testing.T) {
	s, err := NewOutageSchedule([]Outage{
		{Channel: 0, From: 3, Rounds: 2},
		{Channel: 0, From: 8, Rounds: 1},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	type q struct {
		active, starts bool
		dur            int64
	}
	want := map[int64]q{
		3: {true, true, 2},
		4: {true, false, 2},
		8: {true, true, 1},
	}
	for round := int64(0); round < 12; round++ {
		for ch := 0; ch < 2; ch++ {
			active, starts, dur := s.Active(ch, round)
			w := q{}
			if ch == 0 {
				w = want[round]
			}
			if (q{active, starts, dur}) != w {
				t.Errorf("Active(%d, %d) = (%v, %v, %d), want %+v", ch, round, active, starts, dur, w)
			}
		}
	}
}

// TestDroppedPacketsReclaimMirrorState is the ISSUE 8 satellite-2
// regression: a packet that dies mid-route — its transmitter retired it
// while the duty-cycled destination slept — must give back its
// mirror-map slot and relay-arena state. A long disrupted run with
// steady drops must (a) keep every channel's metaTable ring at its
// steady-state size instead of growing with the drop count, and (b)
// conserve packets exactly: in-flight = injected − delivered − dropped.
func TestDroppedPacketsReclaimMirrorState(t *testing.T) {
	const rounds = 30000
	topo := mustCompile(t, Spec{Kind: Line, Channels: 3, N: 5})
	build := func(ch int) (*core.System, error) {
		sys, err := randmac.NewSeeded(5, 3, 77)
		if err != nil {
			return nil, err
		}
		sys, _ = duty.Wrap(sys, duty.Params{SleepAfterIdle: 16, WakeEvery: 8})
		return sys, nil
	}
	net, err := New(topo, build, mkUniformAdversary(t, topo, adversary.T(1, 4, 3), 11), Options{
		SampleEvery: -1,
		Disruptor:   NewJammer(adversary.T(1, 8, 1), 3, 11),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if err := net.Run(rounds); err != nil {
		t.Fatal(err)
	}
	agg := net.Tracker().Counters
	if agg.Dropped == 0 {
		t.Fatal("run produced no drops; the regression needs mid-route packet death")
	}
	if agg.JammedRounds == 0 {
		t.Fatal("run produced no jammed rounds")
	}
	if got, want := int64(net.InFlight()), agg.Injected-agg.Delivered-agg.Dropped; got != want {
		t.Errorf("conservation broken: in-flight %d, want injected %d - delivered %d - dropped %d = %d",
			got, agg.Injected, agg.Delivered, agg.Dropped, want)
	}
	// With drops reclaiming their slots the live window stays small, so
	// the rings stay near their steady-state size; a leak would scale
	// them with the thousands of injected packets instead. The bound is
	// generous (stragglers in sleeping queues stretch the id window) but
	// far below the injected count, which the guard below keeps honest.
	if agg.Injected < 4096 {
		t.Fatalf("only %d injections; the run is too short to witness a leak", agg.Injected)
	}
	for c := 0; c < 3; c++ {
		if n := len(net.chans[c].meta.ring); n > 1024 {
			t.Errorf("channel %d: metaTable ring grew to %d entries (live %d) — dropped packets leak mirror state",
				c, n, net.chans[c].meta.live)
		}
	}
}

// TestDisruptedNetworkZeroAllocs extends the steady-state allocation
// contract to disrupted, duty-cycled runs: jamming, a (past) outage
// window, and sleep suppression in the round loop must all stay off the
// allocator once warm.
func TestDisruptedNetworkZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocs-per-round is meaningless under the race detector")
	}
	for _, workers := range []int{1, 2} {
		topo := mustCompile(t, Spec{Kind: Line, Channels: 4, N: 6})
		outs, err := NewOutageSchedule([]Outage{{Channel: 1, From: 500, Rounds: 300}}, 4)
		if err != nil {
			t.Fatal(err)
		}
		net, err := New(topo, func(ch int) (*core.System, error) {
			// randmac (the registered "aloha") is the one Tolerant
			// algorithm: jam-induced collisions are business as usual.
			sys, err := randmac.NewSeeded(6, 3, 31)
			if err != nil {
				return nil, err
			}
			sys, _ = duty.Wrap(sys, duty.Params{SleepAfterIdle: 32, WakeEvery: 16})
			return sys, nil
		}, mkUniformAdversary(t, topo, adversary.T(1, 4, 4), 31), Options{
			SampleEvery: -1, Workers: workers,
			Disruptor: NewJammer(adversary.T(1, 4, 2), 4, 31),
			Outages:   outs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Run(20000); err != nil {
			t.Fatal(err)
		}
		best := -1.0
		for window := 0; window < 5 && best != 0; window++ {
			allocs := testing.AllocsPerRun(1, func() {
				if err := net.Run(2000); err != nil {
					t.Error(err)
				}
			})
			if best < 0 || allocs < best {
				best = allocs
			}
		}
		agg := net.Tracker().Counters
		net.Close()
		if agg.JammedRounds == 0 || agg.OutageRounds == 0 {
			t.Fatalf("workers=%d: disruption never fired (jammed %d, outage %d)",
				workers, agg.JammedRounds, agg.OutageRounds)
		}
		if best != 0 {
			t.Errorf("workers=%d: disrupted steady-state round loop allocates (%v allocs in the best window)",
				workers, best)
		}
	}
}
