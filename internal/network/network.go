package network

import (
	"fmt"

	"earmac/internal/core"
	"earmac/internal/mac"
	"earmac/internal/metrics"
)

// Options configures a network run. The per-channel fields mirror
// core.Options and apply to every channel's simulator.
type Options struct {
	// Strict makes per-channel model violations abort the run.
	Strict bool
	// CheckEvery enables each channel's packet-conservation checker.
	CheckEvery int64
	// ForceChecked keeps every channel on the fully-validating path.
	ForceChecked bool
	// SampleEvery sets the aggregate tracker's queue-curve resolution
	// (0 keeps the metrics.NewTracker default).
	SampleEvery int64
	// TrackStations enables per-station queue peaks on every channel
	// tracker (the network-wide QueueImbalance diagnostic).
	TrackStations bool
	// Recorder, when non-nil, receives every channel's adversarial
	// entry injections (global coordinates) each round, in increasing
	// (round, channel) order — the trace-v2 recording hook. Relay
	// arrivals are not reported: they are derived state, reproduced by
	// routing during replay. The slice is reused and must not be
	// retained.
	Recorder func(round int64, ch int, injs []core.Injection)
	// Tracer, when non-nil, supplies each channel's event tracer (nil
	// returns are fine). Like core.Options.Tracer, a non-nil tracer
	// forces that channel onto the checked path. Channels are stepped
	// in index order, so tracers sharing one writer interleave
	// deterministically: all of round t's channel-0 lines before its
	// channel-1 lines.
	Tracer func(ch int) core.Tracer
}

// pending is one relayed packet waiting to enter its next channel.
type pending struct {
	station int // arrival gateway, local to the next channel
	dest    int // within-channel destination, local to the next channel
	meta    netPacket
}

// netPacket is the network-level identity of an in-flight packet:
// everything needed to route it onward and to account its end-to-end
// latency. Channel sims know nothing of it — they see ordinary local
// packets — so the network keeps a per-channel map from the local
// packet ids the sims assign (mirrored via emission order) to metas.
type netPacket struct {
	origin  int64 // round the packet entered the network
	destCh  int   // final channel
	destLoc int   // final station, local to destCh
}

// Network composes one core.Sim per channel into a synchronous network:
// lockstep rounds, per-channel adversarial entry, relay queues between
// adjacent channels, and deterministic aggregate metrics.
//
// Aggregate semantics: Injected, Delivered, and the latency figures are
// *end-to-end* (a packet counts once, when it reaches its final
// station, with latency measured from network entry); queue and energy
// figures are network totals per round (relayed packets in flight
// between two channels count toward the queue); the channel-utilization
// counters (heard/silent/collision/light/delivery rounds, control bits)
// are sums over channels. Per-channel trackers additionally expose each
// channel's own counters, where Injected includes relay arrivals and
// latency is per-hop.
type Network struct {
	topo  *Topology
	sims  []*core.Sim
	trks  []*metrics.Tracker
	entry Source
	opt   Options

	agg        *metrics.Tracker
	round      int64
	prevEnergy []int64
	relayed    []int64 // per channel: deliveries forwarded onward

	// meta[c] maps channel c's local packet ids to network identities;
	// nextID[c] mirrors the sim's sequential id assignment.
	meta   []map[int64]netPacket
	nextID []int64

	// Relay double-buffer: deliveries of round t append to incoming;
	// at the start of round t+1 incoming becomes arriving, so arrivals
	// never depend on the order channels are stepped in.
	incoming [][]pending
	arriving [][]pending

	entryScratch []core.Injection
}

// New assembles a network. build constructs channel c's system (every
// channel runs its own replica set of topo.StationsPerChannel()
// stations); entry supplies the adversarial entry injections.
func New(topo *Topology, build func(ch int) (*core.System, error), entry Source, opt Options) (*Network, error) {
	C := topo.Channels()
	n := &Network{
		topo:       topo,
		sims:       make([]*core.Sim, C),
		trks:       make([]*metrics.Tracker, C),
		entry:      entry,
		opt:        opt,
		agg:        metrics.NewTracker(),
		prevEnergy: make([]int64, C),
		relayed:    make([]int64, C),
		meta:       make([]map[int64]netPacket, C),
		nextID:     make([]int64, C),
		incoming:   make([][]pending, C),
		arriving:   make([][]pending, C),
	}
	if opt.SampleEvery > n.agg.SampleEvery {
		n.agg.SampleEvery = opt.SampleEvery
	}
	for c := 0; c < C; c++ {
		sys, err := build(c)
		if err != nil {
			return nil, fmt.Errorf("network: building channel %d: %w", c, err)
		}
		if sys.N() != topo.StationsPerChannel() {
			return nil, fmt.Errorf("network: channel %d has %d stations, topology says %d",
				c, sys.N(), topo.StationsPerChannel())
		}
		tr := metrics.NewTracker()
		tr.SampleEvery = 0 // the aggregate tracker owns the time series
		if opt.TrackStations {
			tr.TrackStations(sys.N())
		}
		n.trks[c] = tr
		n.meta[c] = make(map[int64]netPacket)
		var tracer core.Tracer
		if opt.Tracer != nil {
			tracer = opt.Tracer(c)
		}
		ch := c
		n.sims[c] = core.NewSim(sys, &feed{net: n, ch: c}, core.Options{
			Strict:           opt.Strict,
			CheckEvery:       opt.CheckEvery,
			ForceChecked:     opt.ForceChecked,
			Tracer:           tracer,
			Tracker:          tr,
			ExtraInjections:  &relayFeed{net: n, ch: c},
			DeliveryObserver: func(round int64, p mac.Packet) { n.onDelivery(ch, round, p) },
		})
	}
	return n, nil
}

// feed is channel ch's core.Adversary: it pulls the channel's entry
// injections from the network Source, records them for tracing, and
// routes them into local coordinates.
type feed struct {
	net *Network
	ch  int
}

func (f *feed) Inject(round int64) []core.Injection { return f.InjectAppend(round, nil) }

// InjectAppend implements core.InjectAppender.
func (f *feed) InjectAppend(round int64, buf []core.Injection) []core.Injection {
	n := f.net
	n.entryScratch = n.entry.AppendEntries(round, f.ch, n.entryScratch[:0])
	if n.opt.Recorder != nil && len(n.entryScratch) > 0 {
		n.opt.Recorder(round, f.ch, n.entryScratch)
	}
	for _, in := range n.entryScratch {
		buf = n.admit(round, f.ch, in, buf)
	}
	return buf
}

// relayFeed is channel ch's core.Options.ExtraInjections: the relay
// arrivals scheduled for this round.
type relayFeed struct {
	net *Network
	ch  int
}

// InjectAppend implements core.InjectAppender.
func (r *relayFeed) InjectAppend(round int64, buf []core.Injection) []core.Injection {
	n := r.net
	for _, p := range n.arriving[r.ch] {
		buf = append(buf, core.Injection{Station: p.station, Dest: p.dest})
		n.register(r.ch, p.meta)
	}
	return buf
}

// admit validates one global entry injection for channel ch, translates
// it into the channel's local coordinates, registers its network
// identity, and appends the local injection. Invalid entries (possible
// only via hand-edited replay traces) are recorded as violations on the
// aggregate tracker and skipped before the channel sim sees them, so
// local packet-id mirroring stays in sync.
func (n *Network) admit(round int64, ch int, in core.Injection, buf []core.Injection) []core.Injection {
	total := n.topo.Stations()
	if in.Station < 0 || in.Station >= total || in.Dest < 0 || in.Dest >= total ||
		n.topo.ChannelOf(in.Station) != ch {
		n.agg.Violate("round %d channel %d: entry injection out of range: %+v", round, ch, in)
		return buf
	}
	destCh := n.topo.ChannelOf(in.Dest)
	m := netPacket{origin: round, destCh: destCh, destLoc: n.topo.Local(in.Dest)}
	var dest int
	if destCh == ch {
		dest = m.destLoc
	} else {
		dest = n.topo.Gateway(ch, n.topo.NextHop(ch, destCh))
	}
	n.register(ch, m)
	n.agg.ObserveInjections(1)
	return append(buf, core.Injection{Station: n.topo.Local(in.Station), Dest: dest})
}

// register mirrors the channel sim's sequential packet-id assignment:
// the k-th in-range injection emitted to channel ch this run gets local
// id k. Both feeds emit only in-range injections, in the exact order
// the sim processes them, so the mirror never drifts.
func (n *Network) register(ch int, m netPacket) {
	n.meta[ch][n.nextID[ch]] = m
	n.nextID[ch]++
}

// onDelivery is channel ch's DeliveryObserver: a within-channel
// delivery either completes a packet's journey or relays it into the
// next channel on its path (arriving next round).
func (n *Network) onDelivery(ch int, round int64, p mac.Packet) {
	m, ok := n.meta[ch][p.ID]
	if !ok {
		panic(fmt.Sprintf("network: channel %d delivered unregistered packet %v", ch, p))
	}
	delete(n.meta[ch], p.ID)
	if m.destCh == ch {
		n.agg.ObserveDelivery(round - m.origin)
		return
	}
	next := n.topo.NextHop(ch, m.destCh)
	var dest int
	if next == m.destCh {
		dest = m.destLoc
	} else {
		dest = n.topo.Gateway(next, n.topo.NextHop(next, m.destCh))
	}
	n.incoming[next] = append(n.incoming[next], pending{
		station: n.topo.Gateway(next, ch),
		dest:    dest,
		meta:    m,
	})
	n.relayed[ch]++
}

// Step advances every channel by one lockstep round.
func (n *Network) Step() error {
	// Last round's deliveries become this round's relay arrivals.
	for c := range n.arriving {
		n.arriving[c], n.incoming[c] = n.incoming[c], n.arriving[c][:0]
	}
	for c, sim := range n.sims {
		if err := sim.Step(); err != nil {
			return fmt.Errorf("channel %d: %w", c, err)
		}
	}
	var totalQueue int64
	totalEnergy := 0
	for c, tr := range n.trks {
		totalQueue += tr.FinalQueue
		totalEnergy += int(tr.EnergySum - n.prevEnergy[c])
		n.prevEnergy[c] = tr.EnergySum
	}
	for _, inc := range n.incoming {
		totalQueue += int64(len(inc)) // relayed packets in flight between channels
	}
	n.agg.ObserveRound(n.round, totalQueue, totalEnergy)
	n.round++
	return nil
}

// Run executes the given number of rounds.
func (n *Network) Run(rounds int64) error {
	for i := int64(0); i < rounds; i++ {
		if err := n.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Round returns the number of completed rounds.
func (n *Network) Round() int64 { return n.round }

// Topology returns the compiled topology.
func (n *Network) Topology() *Topology { return n.topo }

// Tracker returns the aggregate tracker with the channel-summed
// utilization counters synchronized, ready for report assembly or a
// trace footer. The end-to-end fields (Injected, Delivered, latency,
// queue, energy, Rounds) are maintained live; the utilization sums are
// folded in here because they are pure functions of the per-channel
// counters.
func (n *Network) Tracker() *metrics.Tracker {
	a := &n.agg.Counters
	a.HeardRounds, a.SilentRounds, a.CollisionRounds = 0, 0, 0
	a.LightRounds, a.DeliveryRounds, a.ControlBits = 0, 0, 0
	for _, tr := range n.trks {
		a.HeardRounds += tr.HeardRounds
		a.SilentRounds += tr.SilentRounds
		a.CollisionRounds += tr.CollisionRounds
		a.LightRounds += tr.LightRounds
		a.DeliveryRounds += tr.DeliveryRounds
		a.ControlBits += tr.ControlBits
	}
	return n.agg
}

// ChannelTracker returns channel ch's own tracker (hop-level counters).
func (n *Network) ChannelTracker(ch int) *metrics.Tracker { return n.trks[ch] }

// Relayed returns how many deliveries channel ch forwarded onward.
func (n *Network) Relayed(ch int) int64 { return n.relayed[ch] }

// InFlight returns the number of packets currently inside the network:
// registered with some channel or queued between two channels.
func (n *Network) InFlight() int {
	total := 0
	for _, m := range n.meta {
		total += len(m)
	}
	for _, q := range n.incoming {
		total += len(q)
	}
	for _, q := range n.arriving {
		total += len(q)
	}
	return total
}

// QueueImbalance is the network-wide fairness diagnostic: the largest
// per-station queue peak across all channels relative to the mean peak
// (0 unless Options.TrackStations was set).
func (n *Network) QueueImbalance() float64 {
	var sum, max int64
	count := 0
	for _, tr := range n.trks {
		for _, m := range tr.StationMaxQueues() {
			sum += m
			if m > max {
				max = m
			}
			count++
		}
	}
	if count == 0 || sum == 0 {
		return 0
	}
	return float64(max) / (float64(sum) / float64(count))
}

// Violations collects every channel's model violations (prefixed with
// the channel id) after the aggregate tracker's own.
func (n *Network) Violations() []string {
	var out []string
	out = append(out, n.agg.Violations...)
	for c, tr := range n.trks {
		for _, v := range tr.Violations {
			out = append(out, fmt.Sprintf("channel %d: %s", c, v))
		}
	}
	return out
}
