package network

import (
	"fmt"

	"earmac/internal/core"
	"earmac/internal/mac"
	"earmac/internal/metrics"
	"earmac/internal/pool"
)

// Options configures a network run. The per-channel fields mirror
// core.Options and apply to every channel's simulator.
type Options struct {
	// Strict makes per-channel model violations abort the run.
	Strict bool
	// CheckEvery enables each channel's packet-conservation checker.
	CheckEvery int64
	// ForceChecked keeps every channel on the fully-validating path.
	ForceChecked bool
	// SampleEvery sets the aggregate tracker's queue-curve resolution:
	// 0 keeps the metrics.NewTracker default, a negative value disables
	// the aggregate time series entirely (the benchmark setting — curve
	// appends are the one steady-state allocation).
	SampleEvery int64
	// Workers sets the channel-stepping parallelism: 0 means GOMAXPROCS
	// (the pool.Workers convention), 1 forces the serial loop, and any
	// k > 1 steps channels on min(k, C) persistent worker goroutines.
	// Every observable output — counters, per-channel trackers, traces,
	// violations — is bit-identical at any worker count (see Step), so
	// Workers is a pure throughput knob. A non-nil Tracer forces 1: the
	// per-round event log interleaves channel sections through a shared
	// writer and is only deterministic when channels step in index
	// order. Networks with Workers != 1 own goroutines; call Close.
	Workers int
	// TrackStations enables per-station queue peaks on every channel
	// tracker (the network-wide QueueImbalance diagnostic).
	TrackStations bool
	// Recorder, when non-nil, receives every channel's adversarial
	// entry injections (global coordinates) each round, in increasing
	// (round, channel) order — the trace-v2 recording hook. Entries are
	// buffered per channel while the round executes and emitted after
	// its sync point in ascending channel order, so the recorded stream
	// is identical at any worker count. Relay arrivals are not
	// reported: they are derived state, reproduced by routing during
	// replay. The slice is reused and must not be retained.
	Recorder func(round int64, ch int, injs []core.Injection)
	// Tracer, when non-nil, supplies each channel's event tracer (nil
	// returns are fine). Like core.Options.Tracer, a non-nil tracer
	// forces that channel onto the checked path — and forces Workers to
	// 1, so tracers sharing one writer interleave deterministically:
	// all of round t's channel-0 lines before its channel-1 lines.
	Tracer func(ch int) core.Tracer
	// Disruptor, when non-nil, supplies the jammed channels each round
	// (a live Jammer, or a JamReplay during trace replay). It is
	// consulted serially in Step's phase 1, so the per-channel disrupt
	// flags are computed before any worker runs.
	Disruptor Disruptor
	// Outages, when non-nil, is the validated channel-dead schedule. A
	// channel in outage resolves every round as disrupted (nothing
	// delivered) and relay hand-offs destined for it park in a held
	// queue at the network layer until the window ends.
	Outages *OutageSchedule
	// Events, when non-nil, receives jam/outage/sleep events after each
	// round's barrier, in ascending channel order — the trace-v3
	// counterpart of Recorder. Outage events fire once per window, on
	// its first round, carrying the window length; sleep events fire on
	// transitions of a channel's asleep-station count.
	Events EventSink
	// Sleepers, when non-nil, reports channel ch's current count of
	// duty-cycled stations that suppressed their action this round
	// (duty.Group.Asleep). Consulted in the fold, after every station
	// has acted, to drive Events.Sleep transitions.
	Sleepers func(ch int) int
	// NoSkip disables the quiescence fast-forward engine: per-channel
	// O(1) idle ticks and the network-level span barrier (DESIGN.md
	// §16). The escape hatch for A/B timing comparisons — skipping is
	// bit-identical, so results never depend on it.
	NoSkip bool
}

// pending is one relayed packet waiting to enter its next channel.
type pending struct {
	station int // arrival gateway, local to the next channel
	dest    int // within-channel destination, local to the next channel
	meta    netPacket
}

// handoff is one relay hand-off parked in a channel's outbox: a pending
// arrival tagged with the channel it enters next round.
type handoff struct {
	next int
	p    pending
}

// netPacket is the network-level identity of an in-flight packet:
// everything needed to route it onward and to account its end-to-end
// latency. Channel sims know nothing of it — they see ordinary local
// packets — so each channel keeps a metaTable from the local packet ids
// its sim assigns (mirrored via emission order) to metas. A negative
// destCh never occurs on a live packet; metaTable uses it as the empty
// marker.
type netPacket struct {
	origin  int64 // round the packet entered the network
	destCh  int   // final channel
	destLoc int   // final station, local to destCh
}

// metaMinRing is the initial metaTable window size.
const metaMinRing = 16

// metaTable mirrors one channel sim's local packet-id assignment. Ids
// are dense and sequential (the k-th injection the sim consumes gets id
// k), so instead of a Go map the table keeps a power-of-two ring
// indexed by id: the live window is [base, next), slot id&(len-1)
// holds the meta, and destCh < 0 marks a delivered (dead) slot. When
// the window would outgrow the ring, the dead prefix is reclaimed
// first and the ring doubles only if truly full — so register and take
// are allocation-free in steady state and the table never walks more
// than the live window. This is the same index-arena idea as the pktq
// rewrite, with the id itself as the arena index.
type metaTable struct {
	ring []netPacket
	base int64 // oldest id that may still be live
	next int64 // next id the sim will assign
	live int   // registered, undelivered packets
}

// register appends the meta for the next sequential local id.
func (t *metaTable) register(m netPacket) {
	if len(t.ring) == 0 || t.next-t.base == int64(len(t.ring)) {
		t.compactOrGrow()
	}
	t.ring[t.next&int64(len(t.ring)-1)] = m
	t.next++
	t.live++
}

// take removes and returns the meta for local id, reporting whether the
// id was live.
func (t *metaTable) take(id int64) (netPacket, bool) {
	if id < t.base || id >= t.next {
		return netPacket{}, false
	}
	slot := id & int64(len(t.ring)-1)
	m := t.ring[slot]
	if m.destCh < 0 {
		return netPacket{}, false
	}
	t.ring[slot].destCh = -1
	t.live--
	return m, true
}

// compactOrGrow reclaims the dead prefix of the window, doubling the
// ring (re-placing live entries by id) only when the live window spans
// the whole ring.
func (t *metaTable) compactOrGrow() {
	mask := int64(len(t.ring) - 1)
	for t.base < t.next && t.ring[t.base&mask].destCh < 0 {
		t.base++
	}
	if len(t.ring) > 0 && t.next-t.base < int64(len(t.ring)) {
		return
	}
	size := 2 * len(t.ring)
	if size < metaMinRing {
		size = metaMinRing
	}
	old := t.ring
	//earmac:alloc -- amortized ring doubling; steady state never reaches it (TestNetworkZeroAllocs)
	t.ring = make([]netPacket, size)
	for i := range t.ring {
		t.ring[i].destCh = -1
	}
	for id := t.base; id < t.next; id++ {
		t.ring[id&int64(size-1)] = old[id&mask]
	}
}

// chanState bundles everything one channel's step touches: its sim and
// tracker, its relay buffers, its packet-id mirror, and the per-round
// accumulators the deterministic fold consumes. During Step each
// chanState is written only by the worker that owns the channel; the
// fold reads them after the barrier, so no field needs locking.
type chanState struct {
	sim *core.Sim
	trk *metrics.Tracker

	feed  feed      // the sim's adversary: entry injections
	relay relayFeed // the sim's ExtraInjections: relay arrivals

	// entries is this round's raw entry stream (global coordinates),
	// buffered for the post-barrier Recorder flush. Reused every round.
	entries []core.Injection
	// arriving holds the relay arrivals injected this round (filled by
	// the hand-off merge, drained by relayFeed). outbox collects this
	// round's onward deliveries, merged into the destinations' arriving
	// buffers at the next round's hand-off.
	arriving []pending
	outbox   []handoff

	meta metaTable

	// held parks relay arrivals destined for this channel while it is
	// in outage; they drain into arriving (FIFO, ahead of new
	// hand-offs) on the first round the channel is back.
	held []pending

	// Per-round disruption state, written serially in Step's phase 1
	// before dispatch and read by this channel's sim (via its Disrupted
	// hook) and by the fold's event emission.
	disrupt    core.Disrupt
	outStart   bool  // this round opens an outage window
	outDur     int64 // window length when outStart
	lastAsleep int   // last sleep count emitted (transition dedup)

	relayed    int64 // deliveries forwarded onward, cumulative
	prevEnergy int64 // tracker energy already folded into the aggregate

	// Per-round accumulators, reset by stepChannel and folded into the
	// aggregate tracker in ascending channel order after the barrier.
	admitted   int64    // in-range entry injections this round
	deliv      []int64  // end-to-end latencies completed this round
	violations []string // entry violations this round
	err        error
}

// Network composes one core.Sim per channel into a synchronous network:
// lockstep rounds, per-channel adversarial entry, relay queues between
// adjacent channels, and deterministic aggregate metrics.
//
// Aggregate semantics: Injected, Delivered, and the latency figures are
// *end-to-end* (a packet counts once, when it reaches its final
// station, with latency measured from network entry); queue and energy
// figures are network totals per round (relayed packets in flight
// between two channels count toward the queue); the channel-utilization
// counters (heard/silent/collision/light/delivery rounds, control bits)
// are sums over channels. Per-channel trackers additionally expose each
// channel's own counters, where Injected includes relay arrivals and
// latency is per-hop.
//
// All outputs are bit-identical at any Options.Workers value; DESIGN.md
// §13 states the argument. Networks built with Workers != 1 own worker
// goroutines — call Close when done.
type Network struct {
	topo      *Topology
	chans     []*chanState
	entry     Source
	entrySkip SourceSkipper // entry as a SourceSkipper, nil when it has no horizon
	opt       Options

	agg           *metrics.Tracker
	round         int64
	relayInFlight int64 // packets parked in outboxes or held behind outages
	jamBuf        []int // Disruptor scratch, reused every round

	team *pool.Team
}

// New assembles a network. build constructs channel c's system (every
// channel runs its own replica set of topo.StationsPerChannel()
// stations); entry supplies the adversarial entry injections. When the
// resolved Options.Workers is not 1, entry.AppendEntries is called
// concurrently for distinct channels (never for the same channel), so
// a Source must keep its per-channel state independent — Adversary and
// ReplaySource both do.
func New(topo *Topology, build func(ch int) (*core.System, error), entry Source, opt Options) (*Network, error) {
	C := topo.Channels()
	n := &Network{
		topo:  topo,
		chans: make([]*chanState, C),
		entry: entry,
		opt:   opt,
		agg:   metrics.NewTracker(),
	}
	n.entrySkip, _ = entry.(SourceSkipper)
	switch {
	case opt.SampleEvery < 0:
		n.agg.SampleEvery = 0
	case opt.SampleEvery > n.agg.SampleEvery:
		n.agg.SampleEvery = opt.SampleEvery
	}
	for c := 0; c < C; c++ {
		sys, err := build(c)
		if err != nil {
			return nil, fmt.Errorf("network: building channel %d: %w", c, err)
		}
		if sys.N() != topo.StationsPerChannel() {
			return nil, fmt.Errorf("network: channel %d has %d stations, topology says %d",
				c, sys.N(), topo.StationsPerChannel())
		}
		tr := metrics.NewTracker()
		tr.SampleEvery = 0 // the aggregate tracker owns the time series
		if opt.TrackStations {
			tr.TrackStations(sys.N())
		}
		cs := &chanState{trk: tr}
		cs.feed = feed{net: n, cs: cs, ch: c}
		cs.relay = relayFeed{cs: cs}
		n.chans[c] = cs
		var tracer core.Tracer
		if opt.Tracer != nil {
			tracer = opt.Tracer(c)
		}
		ch := c
		copts := core.Options{
			Strict:       opt.Strict,
			CheckEvery:   opt.CheckEvery,
			ForceChecked: opt.ForceChecked,
			Tracer:       tracer,
			Tracker:      tr,
			// Sleep-event emission reads duty.Group.Asleep every round;
			// quiescent ticks advance duty state lazily, so that pairing
			// pins the channel to the classic per-round loop.
			NoSkip:           opt.NoSkip || (opt.Events != nil && opt.Sleepers != nil),
			ExtraInjections:  &cs.relay,
			DeliveryObserver: func(round int64, p mac.Packet) { n.onDelivery(cs, ch, round, p) },
			// Mid-route death (a duty-cycled destination missed an
			// uncontended transmission) must reclaim the packet's
			// mirror-table slot, or the arena would leak one live entry
			// per drop forever.
			DropObserver: func(round int64, p mac.Packet) { n.onDrop(cs, ch, p) },
		}
		if opt.Disruptor != nil || opt.Outages != nil {
			// Flags are computed serially in Step's phase 1; the sim
			// only reads its own channel's copy during dispatch.
			copts.Disrupted = func(int64) core.Disrupt { return cs.disrupt }
		}
		cs.sim = core.NewSim(sys, &cs.feed, copts)
	}
	workers := opt.Workers
	if opt.Tracer != nil {
		workers = 1 // shared-writer tracers need index-order stepping
	}
	n.team = pool.NewTeam(C, workers, n.stepChannel)
	return n, nil
}

// Workers returns the resolved channel-stepping worker count.
func (n *Network) Workers() int { return n.team.Workers() }

// Close releases the worker goroutines behind parallel stepping. It is
// idempotent and cheap; a serial network (resolved Workers == 1) owns
// no goroutines, but calling Close is always correct. The Network must
// not be stepped after Close.
func (n *Network) Close() {
	if n != nil {
		n.team.Close()
	}
}

// feed is channel ch's core.Adversary: it pulls the channel's entry
// injections from the network Source, buffers them for the post-barrier
// Recorder flush, and routes them into local coordinates.
type feed struct {
	net *Network
	cs  *chanState
	ch  int
}

func (f *feed) Inject(round int64) []core.Injection { return f.InjectAppend(round, nil) }

// InjectAppend implements core.InjectAppender.
//
//earmac:hotpath
func (f *feed) InjectAppend(round int64, buf []core.Injection) []core.Injection {
	cs := f.cs
	cs.entries = f.net.entry.AppendEntries(round, f.ch, cs.entries[:0])
	for _, in := range cs.entries {
		buf = f.net.admit(round, f.ch, cs, in, buf)
	}
	return buf
}

// relayFeed is channel ch's core.Options.ExtraInjections: the relay
// arrivals scheduled for this round, already in local coordinates.
type relayFeed struct {
	cs *chanState
}

// InjectAppend implements core.InjectAppender.
//
//earmac:hotpath
func (r *relayFeed) InjectAppend(round int64, buf []core.Injection) []core.Injection {
	cs := r.cs
	for _, p := range cs.arriving {
		buf = append(buf, core.Injection{Station: p.station, Dest: p.dest})
		cs.meta.register(p.meta)
	}
	return buf
}

// admit validates one global entry injection for channel ch, translates
// it into the channel's local coordinates, registers its network
// identity, and appends the local injection. Invalid entries (possible
// only via hand-edited replay traces) are buffered as violations on the
// channel — folded into the aggregate tracker after the barrier — and
// skipped before the channel sim sees them, so local packet-id
// mirroring stays in sync.
func (n *Network) admit(round int64, ch int, cs *chanState, in core.Injection, buf []core.Injection) []core.Injection {
	total := n.topo.Stations()
	if in.Station < 0 || in.Station >= total || in.Dest < 0 || in.Dest >= total ||
		n.topo.ChannelOf(in.Station) != ch {
		cs.violations = append(cs.violations,
			//earmac:alloc -- violation path: only hand-edited replay traces reach it, never a live adversary
			fmt.Sprintf("round %d channel %d: entry injection out of range: %+v", round, ch, in))
		return buf
	}
	destCh := n.topo.ChannelOf(in.Dest)
	m := netPacket{origin: round, destCh: destCh, destLoc: n.topo.Local(in.Dest)}
	var dest int
	if destCh == ch {
		dest = m.destLoc
	} else {
		dest = n.topo.Gateway(ch, n.topo.NextHop(ch, destCh))
	}
	cs.meta.register(m)
	cs.admitted++
	return append(buf, core.Injection{Station: n.topo.Local(in.Station), Dest: dest})
}

// onDelivery is channel ch's DeliveryObserver: a within-channel
// delivery either completes a packet's journey (buffered for the
// post-barrier latency fold) or parks it in the channel's outbox,
// tagged with the next channel on its path, to arrive there next round.
//
//earmac:hotpath
func (n *Network) onDelivery(cs *chanState, ch int, round int64, p mac.Packet) {
	m, ok := cs.meta.take(p.ID)
	if !ok {
		panic(fmt.Sprintf("network: channel %d delivered unregistered packet %v", ch, p))
	}
	if m.destCh == ch {
		cs.deliv = append(cs.deliv, round-m.origin)
		return
	}
	next := n.topo.NextHop(ch, m.destCh)
	var dest int
	if next == m.destCh {
		dest = m.destLoc
	} else {
		dest = n.topo.Gateway(next, n.topo.NextHop(next, m.destCh))
	}
	cs.outbox = append(cs.outbox, handoff{next: next, p: pending{
		station: n.topo.Gateway(next, ch),
		dest:    dest,
		meta:    m,
	}})
	cs.relayed++
}

// onDrop is channel ch's DropObserver: a packet died mid-route (its
// duty-cycled destination — final station or relay gateway — was off on
// an uncontended heard round). The network's only job is to reclaim the
// packet's mirror-table slot; the channel tracker already counted the
// drop, and the aggregate Tracker fold sums those counts end-to-end
// (a packet dies at most once, so the sum is exact).
//
//earmac:hotpath
func (n *Network) onDrop(cs *chanState, ch int, p mac.Packet) {
	if _, ok := cs.meta.take(p.ID); !ok {
		panic(fmt.Sprintf("network: channel %d dropped unregistered packet %v", ch, p))
	}
}

// stepChannel advances one channel by one round: the worker-team body.
// It touches only chanState c (plus the immutable topology and the
// Source's channel-c state), so channels step concurrently without
// locks; everything the fold needs is parked in the chanState.
//
//earmac:hotpath
func (n *Network) stepChannel(c int) {
	cs := n.chans[c]
	cs.admitted = 0
	cs.deliv = cs.deliv[:0]
	cs.err = cs.sim.Step()
}

// Step advances every channel by one lockstep round.
//
// The round has three phases. (1) Relay hand-off: the previous round's
// outboxes are merged into the destination channels' arriving buffers
// in ascending source-channel order — exactly the order the serial loop
// produced them in — so arrival order never depends on scheduling.
// (2) Channel stepping: every channel's sim advances one round on the
// worker team (Options.Workers); the only cross-channel data are the
// immutable topology and the per-channel buffers merged in phase 1, so
// workers never contend. (3) Deterministic fold: after the barrier,
// per-channel accumulators (entry admissions, end-to-end completions,
// violations, recorder buffers, queue/energy totals) are folded into
// the aggregate tracker in ascending channel order. Phases 1 and 3
// iterate channels identically at any worker count, which is why every
// output is bit-identical to the serial loop's.
//
//earmac:hotpath
func (n *Network) Step() error {
	// (1) Disruption flags for the round, computed serially so every
	// channel's sim sees its flags before dispatch, then the relay
	// hand-off: last round's deliveries become this round's arrivals.
	chans := n.chans
	if n.opt.Disruptor != nil || n.opt.Outages != nil {
		for _, cs := range chans {
			cs.disrupt, cs.outStart, cs.outDur = 0, false, 0
		}
		if n.opt.Disruptor != nil {
			n.jamBuf = n.opt.Disruptor.AppendJams(n.round, n.jamBuf[:0])
			for _, c := range n.jamBuf {
				if c < 0 || c >= len(chans) {
					n.agg.Violate("round %d: jam on invalid channel %d", n.round, c)
					continue
				}
				chans[c].disrupt |= core.DisruptJam
			}
		}
		if n.opt.Outages != nil {
			for c, cs := range chans {
				active, starts, dur := n.opt.Outages.Active(c, n.round)
				if active {
					cs.disrupt |= core.DisruptOutage
				}
				cs.outStart, cs.outDur = starts, dur
			}
		}
	}
	for _, cs := range chans {
		cs.arriving = cs.arriving[:0]
		// A channel back from outage drains its held relay arrivals
		// first (FIFO across the window), ahead of new hand-offs.
		if cs.disrupt&core.DisruptOutage == 0 && len(cs.held) > 0 {
			cs.arriving = append(cs.arriving, cs.held...)
			cs.held = cs.held[:0]
		}
	}
	for _, cs := range chans {
		for _, h := range cs.outbox {
			dst := chans[h.next]
			if dst.disrupt&core.DisruptOutage != 0 {
				dst.held = append(dst.held, h.p)
			} else {
				dst.arriving = append(dst.arriving, h.p)
			}
		}
		cs.outbox = cs.outbox[:0]
	}

	// (2) One lockstep round across the worker team.
	n.team.Dispatch()

	// (3) Fold, ascending channel order throughout. Recorder entries
	// and disruption/sleep events interleave per channel so a shared
	// trace encoder sees strictly increasing (round, channel, kind).
	if n.opt.Recorder != nil || n.opt.Events != nil {
		for c, cs := range chans {
			if n.opt.Recorder != nil && len(cs.entries) > 0 {
				n.opt.Recorder(n.round, c, cs.entries)
			}
			if n.opt.Events == nil {
				continue
			}
			if cs.disrupt&core.DisruptJam != 0 {
				n.opt.Events.Jam(n.round, c)
			}
			if cs.outStart {
				n.opt.Events.Outage(n.round, c, cs.outDur)
			}
			if n.opt.Sleepers != nil {
				if v := n.opt.Sleepers(c); v != cs.lastAsleep {
					n.opt.Events.Sleep(n.round, c, v)
					cs.lastAsleep = v
				}
			}
		}
	}
	for c, cs := range chans {
		if cs.err != nil {
			//earmac:alloc -- error propagation: a channel error aborts the run
			return fmt.Errorf("channel %d: %w", c, cs.err)
		}
	}
	var totalQueue, inFlight int64
	totalEnergy := 0
	for _, cs := range chans {
		if cs.admitted > 0 {
			n.agg.ObserveInjections(int(cs.admitted))
		}
		for _, lat := range cs.deliv {
			n.agg.ObserveDelivery(lat)
		}
		if len(cs.violations) > 0 {
			for _, v := range cs.violations {
				n.agg.Violate("%s", v)
			}
			cs.violations = cs.violations[:0]
		}
		totalQueue += cs.trk.FinalQueue
		totalEnergy += int(cs.trk.EnergySum - cs.prevEnergy)
		cs.prevEnergy = cs.trk.EnergySum
		// Relayed packets between channels, plus any parked behind an
		// outage window.
		inFlight += int64(len(cs.outbox) + len(cs.held))
	}
	n.relayInFlight = inFlight
	n.agg.ObserveRound(n.round, totalQueue+inFlight, totalEnergy)
	n.round++
	return nil
}

// Run executes the given number of rounds. Between steps it attempts
// the network-level span skip (see trySpan); at exit it settles every
// channel so station state is exact at the Run boundary.
func (n *Network) Run(rounds int64) error {
	end := n.round + rounds
	for n.round < end {
		if err := n.Step(); err != nil {
			return err
		}
		n.trySpan(end)
	}
	n.settle()
	return nil
}

// Round returns the number of completed rounds.
func (n *Network) Round() int64 { return n.round }

// Topology returns the compiled topology.
func (n *Network) Topology() *Topology { return n.topo }

// Tracker returns the aggregate tracker with the channel-summed
// utilization counters synchronized, ready for report assembly or a
// trace footer. The end-to-end fields (Injected, Delivered, latency,
// queue, energy, Rounds) are maintained live; the utilization sums are
// folded in here because they are pure functions of the per-channel
// counters. Call between rounds (never concurrently with Step).
func (n *Network) Tracker() *metrics.Tracker {
	a := &n.agg.Counters
	a.HeardRounds, a.SilentRounds, a.CollisionRounds = 0, 0, 0
	a.LightRounds, a.DeliveryRounds, a.ControlBits = 0, 0, 0
	a.JammedRounds, a.OutageRounds, a.Dropped = 0, 0, 0
	for _, cs := range n.chans {
		a.HeardRounds += cs.trk.HeardRounds
		a.SilentRounds += cs.trk.SilentRounds
		a.CollisionRounds += cs.trk.CollisionRounds
		a.LightRounds += cs.trk.LightRounds
		a.DeliveryRounds += cs.trk.DeliveryRounds
		a.ControlBits += cs.trk.ControlBits
		a.JammedRounds += cs.trk.JammedRounds
		a.OutageRounds += cs.trk.OutageRounds
		// A packet dies at most once, so summing per-channel drops is
		// the exact end-to-end count.
		a.Dropped += cs.trk.Dropped
	}
	return n.agg
}

// ChannelTracker returns channel ch's own tracker (hop-level counters).
// Call between rounds (never concurrently with Step).
func (n *Network) ChannelTracker(ch int) *metrics.Tracker { return n.chans[ch].trk }

// Relayed returns how many deliveries channel ch forwarded onward.
func (n *Network) Relayed(ch int) int64 { return n.chans[ch].relayed }

// InFlight returns the number of packets currently inside the network:
// registered with some channel or parked in a relay hand-off between
// two channels. Maintained counters — no per-packet walk.
func (n *Network) InFlight() int {
	total := int(n.relayInFlight)
	for _, cs := range n.chans {
		total += cs.meta.live
	}
	return total
}

// QueueImbalance is the network-wide fairness diagnostic: the largest
// per-station queue peak across all channels relative to the mean peak
// (0 unless Options.TrackStations was set).
func (n *Network) QueueImbalance() float64 {
	var sum, max int64
	count := 0
	for _, cs := range n.chans {
		for _, m := range cs.trk.StationMaxQueues() {
			sum += m
			if m > max {
				max = m
			}
			count++
		}
	}
	if count == 0 || sum == 0 {
		return 0
	}
	return float64(max) / (float64(sum) / float64(count))
}

// Violations collects every channel's model violations (prefixed with
// the channel id) after the aggregate tracker's own. Entry violations
// land on the aggregate tracker in (round, channel) order regardless of
// worker count — the fold appends them in ascending channel order.
func (n *Network) Violations() []string {
	var out []string
	out = append(out, n.agg.Violations...)
	for c, cs := range n.chans {
		for _, v := range cs.trk.Violations {
			out = append(out, fmt.Sprintf("channel %d: %s", c, v))
		}
	}
	return out
}
