package network

// Tests for the parallel stepping machinery: the metaTable id arena, the
// worker-count-independence contract of Step, and the allocation-free
// steady state of the network round loop.

import (
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/algorithms/orchestra"
	"earmac/internal/core"
)

func TestMetaTableRoundTrip(t *testing.T) {
	var m metaTable
	for id := int64(0); id < 100; id++ {
		m.register(netPacket{origin: id, destCh: int(id % 7), destLoc: int(id % 3)})
	}
	if m.live != 100 {
		t.Fatalf("live = %d, want 100", m.live)
	}
	// Out-of-window and double takes miss.
	if _, ok := m.take(-1); ok {
		t.Error("take(-1) hit")
	}
	if _, ok := m.take(100); ok {
		t.Error("take(next) hit")
	}
	for id := int64(0); id < 100; id += 2 {
		got, ok := m.take(id)
		if !ok || got.origin != id || got.destCh != int(id%7) || got.destLoc != int(id%3) {
			t.Fatalf("take(%d) = %+v, %v", id, got, ok)
		}
		if _, ok := m.take(id); ok {
			t.Fatalf("double take(%d) hit", id)
		}
	}
	if m.live != 50 {
		t.Fatalf("live after takes = %d, want 50", m.live)
	}
	// The odd ids survive growth and compaction.
	for id := int64(100); id < 300; id++ {
		m.register(netPacket{origin: id, destCh: 1})
	}
	for id := int64(1); id < 100; id += 2 {
		if got, ok := m.take(id); !ok || got.origin != id {
			t.Fatalf("take(%d) after growth = %+v, %v", id, got, ok)
		}
	}
}

// TestMetaTableSteadyStateCompacts: FIFO churn with a bounded live
// window must reclaim dead slots instead of growing the ring — the
// allocation-free steady state the relay path depends on.
func TestMetaTableSteadyStateCompacts(t *testing.T) {
	var m metaTable
	next, taken := int64(0), int64(0)
	for i := 0; i < 100000; i++ {
		m.register(netPacket{origin: next, destCh: 2})
		next++
		if next-taken > 8 {
			if _, ok := m.take(taken); !ok {
				t.Fatalf("take(%d) missed", taken)
			}
			taken++
		}
	}
	if len(m.ring) != metaMinRing {
		t.Errorf("ring grew to %d under bounded churn, want %d", len(m.ring), metaMinRing)
	}
	if m.live != int(next-taken) {
		t.Errorf("live = %d, want %d", m.live, next-taken)
	}
}

// TestStepWorkerCountInvariance is the internal half of the determinism
// contract: the same network stepped with any worker count produces
// identical aggregate counters, per-channel counters, relay counts,
// violations, and in-flight totals. (The facade-level test additionally
// byte-compares Report JSON and recorded traces.)
func TestStepWorkerCountInvariance(t *testing.T) {
	run := func(workers int) *Network {
		topo := mustCompile(t, Spec{Kind: Random, Channels: 6, N: 4, Seed: 3})
		net, err := New(topo, rrBuild(4), mkUniformAdversary(t, topo, adversary.T(1, 2, 6), 17), Options{
			Strict: true, CheckEvery: 503, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(net.Close)
		if err := net.Run(3000); err != nil {
			t.Fatal(err)
		}
		return net
	}
	want := run(1)
	for _, workers := range []int{2, 6, 12} {
		got := run(workers)
		if got.Tracker().Counters != want.Tracker().Counters {
			t.Errorf("workers=%d: aggregate counters diverge:\ngot  %+v\nwant %+v",
				workers, got.Tracker().Counters, want.Tracker().Counters)
		}
		for c := 0; c < 6; c++ {
			if got.ChannelTracker(c).Counters != want.ChannelTracker(c).Counters {
				t.Errorf("workers=%d: channel %d counters diverge", workers, c)
			}
			if got.Relayed(c) != want.Relayed(c) {
				t.Errorf("workers=%d: channel %d relayed %d, want %d",
					workers, c, got.Relayed(c), want.Relayed(c))
			}
		}
		if got.InFlight() != want.InFlight() {
			t.Errorf("workers=%d: in-flight %d, want %d", workers, got.InFlight(), want.InFlight())
		}
		if len(got.Violations()) != len(want.Violations()) {
			t.Errorf("workers=%d: violations %v, want %v", workers, got.Violations(), want.Violations())
		}
	}
}

// TestNetworkZeroAllocs: after warmup the network round loop — relay
// hand-off, worker dispatch, sims, metaTable traffic, and the
// deterministic fold — runs without touching the allocator. SampleEvery
// < 0 disables the aggregate queue curve, the one steady-state append.
func TestNetworkZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocs-per-round is meaningless under the race detector")
	}
	for _, workers := range []int{1, 2} {
		topo := mustCompile(t, Spec{Kind: Line, Channels: 4, N: 6})
		net, err := New(topo, func(ch int) (*core.System, error) {
			return orchestra.New(6)
		}, mkUniformAdversary(t, topo, adversary.T(1, 2, 4), 31), Options{
			SampleEvery: -1, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Run(20000); err != nil {
			t.Fatal(err)
		}
		best := -1.0
		for window := 0; window < 5 && best != 0; window++ {
			allocs := testing.AllocsPerRun(1, func() {
				if err := net.Run(2000); err != nil {
					t.Error(err)
				}
			})
			if best < 0 || allocs < best {
				best = allocs
			}
		}
		net.Close()
		if best != 0 {
			t.Errorf("workers=%d: steady-state round loop allocates (%v allocs in the best window)",
				workers, best)
		}
	}
}
