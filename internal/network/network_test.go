package network

import (
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/mac"
	"earmac/internal/scenario"
)

// rrProto is a deliberately simple correct protocol for exercising the
// network fabric: every station stays on, and station (round mod n)
// transmits its oldest packet. With all stations on, every solo
// transmission is a delivery, so routing behaviour is exactly
// predictable.
type rrProto struct {
	id, n int
	queue []mac.Packet
}

func (p *rrProto) Inject(pkt mac.Packet) { p.queue = append(p.queue, pkt) }

func (p *rrProto) Act(round int64) core.Action {
	if int(round%int64(p.n)) == p.id && len(p.queue) > 0 {
		return core.Transmit(mac.PacketMsg(p.queue[0]))
	}
	return core.Listen()
}

func (p *rrProto) Observe(round int64, fb mac.Feedback) {
	if fb.Kind == mac.FbHeard && fb.Msg.HasPacket &&
		len(p.queue) > 0 && fb.Msg.Packet.ID == p.queue[0].ID &&
		int(round%int64(p.n)) == p.id {
		p.queue = p.queue[1:] // own delivery: drop it
	}
}

func (p *rrProto) QueueLen() int { return len(p.queue) }

func (p *rrProto) HeldPackets() []mac.Packet {
	out := make([]mac.Packet, len(p.queue))
	copy(out, p.queue)
	return out
}

func rrBuild(n int) func(ch int) (*core.System, error) {
	return func(ch int) (*core.System, error) {
		stations := make([]core.Protocol, n)
		for i := range stations {
			stations[i] = &rrProto{id: i, n: n}
		}
		return &core.System{
			Info:     core.AlgorithmInfo{Name: "rr", EnergyCap: n},
			Stations: stations,
		}, nil
	}
}

// scriptSource injects a fixed list of global (src, dest) pairs at
// given (round, channel) points.
type scriptSource struct {
	at map[[2]int64][]core.Injection // key: (round, channel)
}

func (s *scriptSource) AppendEntries(round int64, ch int, buf []core.Injection) []core.Injection {
	return append(buf, s.at[[2]int64{round, int64(ch)}]...)
}

func mustCompile(t *testing.T, s Spec) *Topology {
	t.Helper()
	topo, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestRelayAcrossLine traces one packet hop by hop through a 2-channel
// line: entry at channel 0, delivery to its gateway, relay arrival one
// round later, final delivery in channel 1 — with end-to-end latency
// accounted from network entry.
func TestRelayAcrossLine(t *testing.T) {
	topo := mustCompile(t, Spec{Kind: Line, Channels: 2, N: 2})
	src := &scriptSource{at: map[[2]int64][]core.Injection{
		{0, 0}: {{Station: 0, Dest: 3}}, // global 0 (ch 0) -> global 3 (ch 1, local 1)
	}}
	net, err := New(topo, rrBuild(2), src, Options{Strict: true, CheckEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(8); err != nil {
		t.Fatal(err)
	}
	tr := net.Tracker()
	if tr.Injected != 1 || tr.Delivered != 1 {
		t.Fatalf("injected %d delivered %d, want 1 and 1", tr.Injected, tr.Delivered)
	}
	// Hop 1 delivers at round 0 (station 0's slot), the relay arrives at
	// round 1, and channel 1's station 0 transmits at round 2: latency 2.
	if tr.MaxLatency != 2 {
		t.Errorf("end-to-end latency %d, want 2", tr.MaxLatency)
	}
	if net.Relayed(0) != 1 || net.Relayed(1) != 0 {
		t.Errorf("relayed = (%d, %d), want (1, 0)", net.Relayed(0), net.Relayed(1))
	}
	if net.InFlight() != 0 {
		t.Errorf("%d packets still in flight", net.InFlight())
	}
	// Hop-level accounting: each channel delivered once.
	if d0, d1 := net.ChannelTracker(0).Delivered, net.ChannelTracker(1).Delivered; d0 != 1 || d1 != 1 {
		t.Errorf("per-channel deliveries (%d, %d), want (1, 1)", d0, d1)
	}
}

// TestMultiHopStar routes through the hub: a packet between two leaves
// of a star crosses three channels.
func TestMultiHopStar(t *testing.T) {
	topo := mustCompile(t, Spec{Kind: Star, Channels: 3, N: 2})
	// Global 2 is channel 1 local 0; global 5 is channel 2 local 1.
	src := &scriptSource{at: map[[2]int64][]core.Injection{
		{0, 1}: {{Station: 2, Dest: 5}},
	}}
	net, err := New(topo, rrBuild(2), src, Options{Strict: true, CheckEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(20); err != nil {
		t.Fatal(err)
	}
	tr := net.Tracker()
	if tr.Delivered != 1 {
		t.Fatalf("delivered %d, want 1 (in-flight %d)", tr.Delivered, net.InFlight())
	}
	if net.Relayed(1) != 1 || net.Relayed(0) != 1 {
		t.Errorf("relay counts: leaf %d, hub %d, want 1 and 1", net.Relayed(1), net.Relayed(0))
	}
	if tr.MaxLatency < 2 {
		t.Errorf("two-hop latency %d, want >= 2", tr.MaxLatency)
	}
}

func mkUniformAdversary(t *testing.T, topo *Topology, typ adversary.Type, seed int64) *Adversary {
	t.Helper()
	pats := make([]adversary.Pattern, topo.Channels())
	for c := range pats {
		pats[c] = adversary.Uniform(topo.Stations(), seed+int64(c)*1000003)
	}
	adv, err := NewAdversary(topo, typ, pats)
	if err != nil {
		t.Fatal(err)
	}
	return adv
}

// TestBudgetSplitAdmissible records the entry streams of a loaded run
// and audits every channel against its split bucket — the budget-split
// invariant the network adversary promises.
func TestBudgetSplitAdmissible(t *testing.T) {
	topo := mustCompile(t, Spec{Kind: Clique, Channels: 3, N: 3})
	typ := adversary.T(2, 3, 3)
	var trace scenario.Trace
	rec := func(round int64, ch int, injs []core.Injection) {
		ev := scenario.Event{Round: round, Channel: ch}
		for _, in := range injs {
			ev.Injs = append(ev.Injs, [2]int{in.Station, in.Dest})
		}
		trace.Events = append(trace.Events, ev)
	}
	net, err := New(topo, rrBuild(3), mkUniformAdversary(t, topo, typ, 17), Options{
		Strict: true, CheckEvery: 997, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(6000); err != nil {
		t.Fatal(err)
	}
	if net.Tracker().Injected == 0 {
		t.Fatal("no entry injections recorded")
	}
	if err := scenario.CheckAdmissibleSplit(&trace, SplitType(typ, 3), 3); err != nil {
		t.Errorf("entry stream violates the split contract: %v", err)
	}
	// The global stream (all channels pooled) respects the global type:
	// fold channels together and audit against one bucket.
	var pooled scenario.Trace
	for i := 0; i < len(trace.Events); {
		r := trace.Events[i].Round
		ev := scenario.Event{Round: r}
		for i < len(trace.Events) && trace.Events[i].Round == r {
			ev.Injs = append(ev.Injs, trace.Events[i].Injs...)
			i++
		}
		pooled.Events = append(pooled.Events, ev)
	}
	if err := scenario.CheckAdmissible(&pooled, typ); err != nil {
		t.Errorf("pooled entry stream violates the global contract: %v", err)
	}
}

// TestFastCheckedNetworkEquivalence: identical seeds through the fast
// and fully-checked per-channel paths produce bit-identical aggregate
// and per-channel counters, and replaying the recorded entry stream
// reproduces them again.
func TestFastCheckedNetworkEquivalence(t *testing.T) {
	typ := adversary.T(1, 2, 2)
	build := func(forceChecked bool, entry Source, rec func(int64, int, []core.Injection)) *Network {
		topo := mustCompile(t, Spec{Kind: Line, Channels: 3, N: 3})
		if entry == nil {
			entry = mkUniformAdversary(t, topo, typ, 23)
		}
		net, err := New(topo, rrBuild(3), entry, Options{
			ForceChecked: forceChecked,
			Recorder:     rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	var trace scenario.Trace
	rec := func(round int64, ch int, injs []core.Injection) {
		ev := scenario.Event{Round: round, Channel: ch}
		for _, in := range injs {
			ev.Injs = append(ev.Injs, [2]int{in.Station, in.Dest})
		}
		trace.Events = append(trace.Events, ev)
	}
	fast := build(false, nil, rec)
	if err := fast.Run(4000); err != nil {
		t.Fatal(err)
	}
	checked := build(true, nil, nil)
	if err := checked.Run(4000); err != nil {
		t.Fatal(err)
	}
	if fast.Tracker().Counters != checked.Tracker().Counters {
		t.Errorf("fast and checked aggregates differ:\nfast:    %+v\nchecked: %+v",
			fast.Tracker().Counters, checked.Tracker().Counters)
	}
	for c := 0; c < 3; c++ {
		if fast.ChannelTracker(c).Counters != checked.ChannelTracker(c).Counters {
			t.Errorf("channel %d counters differ between paths", c)
		}
	}
	replay := build(false, NewReplaySource(&trace), nil)
	if err := replay.Run(4000); err != nil {
		t.Fatal(err)
	}
	if replay.Tracker().Counters != fast.Tracker().Counters {
		t.Errorf("replayed aggregate differs:\nreplay: %+v\nlive:   %+v",
			replay.Tracker().Counters, fast.Tracker().Counters)
	}
}

// TestAggregateRollup: the aggregate utilization counters are the exact
// sums of the per-channel counters, and end-to-end packet conservation
// holds (entries = final deliveries + in flight).
func TestAggregateRollup(t *testing.T) {
	topo := mustCompile(t, Spec{Kind: Star, Channels: 4, N: 3})
	net, err := New(topo, rrBuild(3), mkUniformAdversary(t, topo, adversary.T(3, 4, 2), 5), Options{
		Strict: true, CheckEvery: 1009, TrackStations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Run(5000); err != nil {
		t.Fatal(err)
	}
	agg := net.Tracker()
	var heard, silent, coll, light, deliv, ctrl, hopInjected int64
	for c := 0; c < 4; c++ {
		tr := net.ChannelTracker(c)
		heard += tr.HeardRounds
		silent += tr.SilentRounds
		coll += tr.CollisionRounds
		light += tr.LightRounds
		deliv += tr.DeliveryRounds
		ctrl += tr.ControlBits
		hopInjected += tr.Injected
	}
	if agg.HeardRounds != heard || agg.SilentRounds != silent || agg.CollisionRounds != coll ||
		agg.LightRounds != light || agg.DeliveryRounds != deliv || agg.ControlBits != ctrl {
		t.Errorf("aggregate utilization is not the channel sum:\nagg: %+v", agg.Counters)
	}
	if agg.Rounds != 5000 {
		t.Errorf("aggregate rounds %d, want 5000", agg.Rounds)
	}
	// Per-round rollup sanity: every round all 4×3 stations are on.
	if agg.MaxEnergy != 12 || agg.EnergySum != 5000*12 {
		t.Errorf("aggregate energy (max %d, sum %d), want (12, %d)", agg.MaxEnergy, agg.EnergySum, 5000*12)
	}
	if got := agg.Injected - agg.Delivered; got != int64(net.InFlight()) {
		t.Errorf("conservation: injected-delivered = %d but %d in flight", got, net.InFlight())
	}
	// Relay arrivals inflate hop-level injections beyond entries.
	if hopInjected < agg.Injected {
		t.Errorf("hop injections %d below entries %d", hopInjected, agg.Injected)
	}
	if len(net.Violations()) != 0 {
		t.Errorf("violations: %v", net.Violations())
	}
}
