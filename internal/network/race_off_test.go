//go:build !race

package network

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count regressions are only meaningful without it (race
// instrumentation allocates on its own), so the zero-allocs tests skip
// themselves under `go test -race`.
const raceEnabled = false
