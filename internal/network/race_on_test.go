//go:build race

package network

// See race_off_test.go.
const raceEnabled = true
