package network

import (
	"earmac/internal/core"
	"earmac/internal/scenario"
)

// ReplaySource re-executes the entry stream of a recorded trace-v2
// network run. Events carry (round, channel, global [src, dest] pairs);
// routing and relaying are recomputed deterministically, so the replay
// reproduces the recorded run bit-for-bit without the trace having to
// store any relay traffic. It implements Source; like the
// single-channel scenario.Replayer it applies no bucket and no RNG —
// the recording already proved admissibility.
type ReplaySource struct {
	events []scenario.Event
	cur    int
}

// NewReplaySource returns a source positioned at round 0.
func NewReplaySource(t *scenario.Trace) *ReplaySource {
	return &ReplaySource{events: t.Events}
}

// AppendEntries implements Source. The network queries in increasing
// (round, channel) order, matching the trace's event order; events for
// rounds or channels the driver skipped are passed over.
func (r *ReplaySource) AppendEntries(round int64, ch int, buf []core.Injection) []core.Injection {
	for r.cur < len(r.events) {
		ev := r.events[r.cur]
		if ev.Round < round || (ev.Round == round && ev.Channel < ch) {
			r.cur++ // skipped by the driver
			continue
		}
		if ev.Round == round && ev.Channel == ch {
			for _, p := range ev.Injs {
				buf = append(buf, core.Injection{Station: p[0], Dest: p[1]})
			}
			r.cur++
		}
		break
	}
	return buf
}
