package network

import (
	"earmac/internal/core"
	"earmac/internal/scenario"
)

// ReplaySource re-executes the entry stream of a recorded trace-v2
// network run. Events carry (round, channel, global [src, dest] pairs);
// routing and relaying are recomputed deterministically, so the replay
// reproduces the recorded run bit-for-bit without the trace having to
// store any relay traffic. It implements Source; like the
// single-channel scenario.Replayer it applies no bucket and no RNG —
// the recording already proved admissibility.
//
// Events are bucketed per channel at construction and consumed through
// one cursor per channel, so AppendEntries for distinct channels never
// touch shared state — the Source contract parallel stepping
// (Options.Workers != 1) relies on.
type ReplaySource struct {
	byCh [][]scenario.Event // per channel, in increasing round order
	cur  []int              // per-channel replay cursor
}

// NewReplaySource returns a source positioned at round 0. Buckets are
// sized by the larger of the header's channel count and the highest
// event channel, so ad-hoc traces without a header replay too; events
// with a negative channel (possible only in a hand-edited trace) are
// dropped, matching the driver's behavior of never querying such a
// channel.
func NewReplaySource(t *scenario.Trace) *ReplaySource {
	C := t.Header.Channels
	for _, ev := range t.Events {
		if ev.Channel >= C {
			C = ev.Channel + 1
		}
	}
	if C < 1 {
		C = 1
	}
	r := &ReplaySource{
		byCh: make([][]scenario.Event, C),
		cur:  make([]int, C),
	}
	for _, ev := range t.Events {
		if ev.Channel < 0 || ev.Kind != "" {
			// Kinded events (jam/outage/sleep, trace v3) are not entry
			// injections; jams replay through JamReplay, the rest are
			// derived state recomputed during the replay.
			continue
		}
		r.byCh[ev.Channel] = append(r.byCh[ev.Channel], ev)
	}
	return r
}

// AppendEntries implements Source. Within one channel the driver
// queries rounds in increasing order, matching the trace's event order;
// events for rounds the driver skipped are passed over. Calls for
// distinct channels are independent and may run concurrently.
//
//earmac:hotpath
func (r *ReplaySource) AppendEntries(round int64, ch int, buf []core.Injection) []core.Injection {
	if ch < 0 || ch >= len(r.byCh) {
		return buf
	}
	evs := r.byCh[ch]
	i := r.cur[ch]
	for i < len(evs) && evs[i].Round < round {
		i++ // skipped by the driver
	}
	if i < len(evs) && evs[i].Round == round {
		for _, p := range evs[i].Injs {
			buf = append(buf, core.Injection{Station: p[0], Dest: p[1]})
		}
		i++
	}
	r.cur[ch] = i
	return buf
}

// NextEntryRound implements SourceSkipper: the first recorded entry
// event on channel ch at round >= from — exact, not just a bound. The
// scan is read-only and starts at the channel cursor, which
// AppendEntries keeps near the current round.
func (r *ReplaySource) NextEntryRound(from int64, ch int) int64 {
	if ch < 0 || ch >= len(r.byCh) {
		return -1
	}
	evs := r.byCh[ch]
	for i := r.cur[ch]; i < len(evs); i++ {
		if evs[i].Round >= from {
			return evs[i].Round
		}
	}
	return -1
}

// SkipEntries implements SourceSkipper: replay cursors self-heal (the
// next AppendEntries skips past passed rounds), so skipping is free.
func (r *ReplaySource) SkipEntries(from, to int64, ch int) {}
