package network

// Network-level quiescence fast-forward (DESIGN.md §16). Channel sims
// run their own O(1) quiescent ticks inside stepChannel — their relay
// feed pins single-channel spans by design — and the network skips
// whole spans itself, from Run, when it can prove the span free of
// entries, relays, and disruption on every channel at once.

// SourceSkipper is the optional Source extension for entry streams with
// a computable horizon. NextEntryRound returns a lower bound on the
// earliest round >= from at which the source may produce an entry
// injection on channel ch (-1: never again) — it may be early but must
// never be late. SkipEntries advances channel ch's state (leaky-bucket
// credit) exactly as to-from zero-entry rounds would; the skipped
// rounds are proven draw-free, so no pattern RNG advances.
type SourceSkipper interface {
	NextEntryRound(from int64, ch int) int64
	SkipEntries(from, to int64, ch int)
}

// JamHorizon is the optional Disruptor extension for jam streams with a
// computable next jam round (-1: none remains). A replayed stream
// (JamReplay) knows its future; a live Jammer spends budget through a
// seeded shuffle every round and does not implement it, which pins
// network spans — quiescent ticks stay exact regardless, because
// AppendJams runs for every ticked round.
type JamHorizon interface {
	NextJamRound(from int64) int64
}

// NextEventRound implements core.EventSkipper for a channel's entry
// feed: the network Source's horizon when it has one, else the queried
// round itself (pinning the channel's span horizon).
func (f *feed) NextEventRound(from int64) int64 {
	if ss := f.net.entrySkip; ss != nil {
		return ss.NextEntryRound(from, f.ch)
	}
	return from
}

// SkipIdle implements core.EventSkipper: invoked by the channel sim's
// SkipSpan during a network-level span skip.
func (f *feed) SkipIdle(from, to int64) {
	if ss := f.net.entrySkip; ss != nil {
		ss.SkipEntries(from, to, f.ch)
	}
}

// trySpan attempts a network-level span skip starting at n.round,
// bounded by end. A span requires: the escape hatch off and a
// horizon-capable entry source; no packet in flight anywhere (relay
// outboxes, outage holds, or registered with a channel sim); every
// channel quiescent on a constant idle profile; and jam/outage horizons
// covering the span. Each channel accrues its own counters via
// core.SkipSpan; the aggregate accrues the constant per-round totals in
// closed form. Anything unprovable just returns — the Run loop degrades
// to per-round stepping with per-channel O(1) ticks.
//
//earmac:hotpath
func (n *Network) trySpan(end int64) {
	if n.opt.NoSkip || n.entrySkip == nil || n.relayInFlight != 0 {
		return
	}
	from := n.round
	to := end
	if n.opt.Disruptor != nil {
		jh, ok := n.opt.Disruptor.(JamHorizon)
		if !ok {
			return
		}
		if nj := jh.NextJamRound(from); nj >= 0 && nj < to {
			to = nj
		}
	}
	totalE := 0
	for c, cs := range n.chans {
		e, ok := cs.sim.QuiescentConst()
		if !ok || cs.meta.live != 0 {
			return
		}
		if n.opt.Outages != nil {
			if nd := n.opt.Outages.NextDisrupted(c, from); nd >= 0 && nd < to {
				to = nd
			}
		}
		to = cs.sim.SpanHorizon(from, to)
		totalE += e.Energy
	}
	if to <= from+1 {
		return
	}
	m := to - from
	for _, cs := range n.chans {
		cs.sim.SkipSpan(to)
		cs.prevEnergy = cs.trk.EnergySum
	}
	n.agg.ObserveQuietSpan(from, m, m*int64(totalE), totalE)
	n.round = to
}

// settle replays lazily skipped idle rounds into every channel's
// stations, so externally visible station state (queue snapshots,
// duty-cycle sleep totals) is exact at Run boundaries.
func (n *Network) settle() {
	for _, cs := range n.chans {
		cs.sim.Settle()
	}
}
