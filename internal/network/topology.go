// Package network generalizes the single multiple access channel of
// internal/core to a *network of channels* — the setting the paper
// frames its routing problem in ("networks modeled as multiple access
// channels") and the one multi-hop adversarial-routing work (Amir, Bunn,
// Ostrovsky; Sheikholeslami et al.) presumes.
//
// A network is a connected graph whose nodes are channels. Every channel
// is an independent contention domain — its own station set, its own
// replica of the routing algorithm, its own core.Sim — and all channels
// advance in lockstep rounds. Adjacent channels are bridged by relays:
// each channel designates, per neighbour, a gateway station; a packet
// delivered to a gateway is moved by the network into the neighbouring
// channel's injection queue, where it arrives at the start of the *next*
// round (one-round relay latency). Relay arrivals therefore never depend
// on the order channels are stepped in, which makes every aggregate
// deterministic and independent of channel iteration order — and of the
// worker count: Network.Step fans the channels out across a persistent
// worker team (Options.Workers) and every observable output stays
// bit-identical to the serial loop (see Step and DESIGN.md §13).
//
// Stations are addressed globally: channel c owns the contiguous id
// block [c·n, (c+1)·n). The adversary injects (src, dest) pairs in
// global coordinates; the network routes each packet along the unique
// BFS shortest path (lowest-numbered neighbour first) through the
// channel graph, hop by hop, re-addressing it within each channel to
// the gateway toward the next hop — or to its final station on the last
// hop.
package network

import (
	"fmt"

	"earmac/internal/registry"
)

// SpecVersion is the topology-spec version this package compiles.
// Traces recorded against a network embed the spec (via the façade
// Config) and the trace format version (scenario.TraceVersion) gates
// decoding; SpecVersion exists so a future incompatible change to
// routing or gateway assignment can fail loudly instead of silently
// re-routing a recorded run.
const SpecVersion = 1

// Topology kinds. A kind names a channel-graph generator; Custom takes
// an explicit edge list instead.
const (
	Line   = "line"   // channels 0—1—2—…—C-1
	Star   = "star"   // channel 0 is the hub, edges 0—i for i ≥ 1
	Clique = "clique" // every pair of channels adjacent
	Grid   = "grid"   // rows×cols mesh, rows = largest divisor of C ≤ √C
	Random = "random" // seeded random spanning tree + extra chords
	Custom = "custom" // explicit edge list over channel indices
)

// Kinds lists the topology kinds, sorted, for capability enumeration.
func Kinds() []string { return []string{Clique, Custom, Grid, Line, Random, Star} }

// Spec describes a network of channels. It is pure data — the façade
// Config carries its fields — and compiles into a Topology.
type Spec struct {
	// Kind is one of Line, Star, Clique, Grid, Random, or Custom.
	Kind string
	// Channels is the number of channels, ≥ 2.
	Channels int
	// N is the number of stations on every channel, ≥ 2.
	N int
	// Links is the explicit channel adjacency for Custom (ignored
	// otherwise): undirected edges as [from, to] channel-index pairs.
	// The resulting graph must be connected, self-loop- and
	// duplicate-free.
	Links [][2]int
	// Seed parameterizes the Random generator (ignored otherwise). The
	// edge set is a pure function of (Seed, Channels), so a recorded
	// run re-compiles to the identical graph.
	Seed int64
}

// Validate checks the spec. Every failure wraps registry.ErrBadTopology.
func (s Spec) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", registry.ErrBadTopology, fmt.Sprintf(format, args...))
	}
	switch s.Kind {
	case Line, Star, Clique, Grid, Random:
		if len(s.Links) > 0 {
			return bad("%s topology takes no explicit links", s.Kind)
		}
	case Custom:
		if len(s.Links) == 0 {
			return bad("custom topology needs explicit links")
		}
	default:
		return bad("unknown kind %q (have %v)", s.Kind, Kinds())
	}
	if s.Channels < 2 {
		return bad("need at least 2 channels, got %d", s.Channels)
	}
	if s.N < 2 {
		return bad("need at least 2 stations per channel, got %d", s.N)
	}
	if s.Kind == Custom {
		seen := make(map[[2]int]bool, len(s.Links))
		for _, l := range s.Links {
			a, b := l[0], l[1]
			if a < 0 || a >= s.Channels || b < 0 || b >= s.Channels {
				return bad("link %v outside [0, %d)", l, s.Channels)
			}
			if a == b {
				return bad("self-loop on channel %d", a)
			}
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				return bad("duplicate link %v", l)
			}
			seen[[2]int{a, b}] = true
		}
	}
	return nil
}

// edges returns the undirected channel-graph edge list the spec
// generates (explicit for Custom). Assumes a validated spec.
func (s Spec) edges() [][2]int {
	switch s.Kind {
	case Line:
		out := make([][2]int, 0, s.Channels-1)
		for c := 1; c < s.Channels; c++ {
			out = append(out, [2]int{c - 1, c})
		}
		return out
	case Star:
		out := make([][2]int, 0, s.Channels-1)
		for c := 1; c < s.Channels; c++ {
			out = append(out, [2]int{0, c})
		}
		return out
	case Clique:
		var out [][2]int
		for a := 0; a < s.Channels; a++ {
			for b := a + 1; b < s.Channels; b++ {
				out = append(out, [2]int{a, b})
			}
		}
		return out
	case Grid:
		rows, cols := gridDims(s.Channels)
		var out [][2]int
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				at := r*cols + c
				if c+1 < cols {
					out = append(out, [2]int{at, at + 1})
				}
				if r+1 < rows {
					out = append(out, [2]int{at, at + cols})
				}
			}
		}
		return out
	case Random:
		return randomEdges(s.Channels, s.Seed)
	default: // Custom
		return s.Links
	}
}

// gridDims factors C into rows×cols with rows the largest divisor of C
// not exceeding √C (so the mesh is as square as C allows; a prime C
// degenerates to a 1×C line, which is still a valid connected grid).
func gridDims(channels int) (rows, cols int) {
	rows = 1
	for d := 2; d*d <= channels; d++ {
		if channels%d == 0 {
			rows = d
		}
	}
	return rows, channels / rows
}

// randomEdges generates a connected random channel graph as a pure
// function of (seed, C): a uniform random spanning tree prefix (channel
// v ≥ 1 attaches to a uniformly drawn channel below it) plus ⌊C/2⌋
// extra chord attempts, deduplicated and self-loop-free. The splitmix64
// stream makes the graph identical across platforms and runs.
func randomEdges(channels int, seed int64) [][2]int {
	state := uint64(seed)*0x9e3779b97f4a7c15 + uint64(channels)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	seen := make(map[[2]int]bool, channels+channels/2)
	out := make([][2]int, 0, channels+channels/2)
	add := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			return
		}
		seen[[2]int{a, b}] = true
		out = append(out, [2]int{a, b})
	}
	for v := 1; v < channels; v++ {
		add(int(next()%uint64(v)), v)
	}
	for i := 0; i < channels/2; i++ {
		add(int(next()%uint64(channels)), int(next()%uint64(channels)))
	}
	return out
}

// Topology is a compiled Spec: adjacency, shortest-path next hops, and
// gateway assignments, all deterministic functions of the spec.
type Topology struct {
	spec Spec
	// adj[c] is channel c's neighbour list, sorted ascending.
	adj [][]int
	// next[a][b] is the first channel after a on the shortest a→b path
	// (BFS, lowest-numbered neighbour first); next[a][a] = a.
	next [][]int
	// gw[c][d] is the local gateway station of channel c toward
	// neighbour d (the i-th sorted neighbour uses station i mod N), or
	// -1 when c and d are not adjacent. A flat table rather than a map:
	// Gateway sits on the relay hot path, stepped every round by every
	// channel, and is read concurrently by the worker team.
	gw [][]int32
}

// Compile validates a spec and precomputes routing.
func Compile(s Spec) (*Topology, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	C := s.Channels
	t := &Topology{
		spec: s,
		adj:  make([][]int, C),
		next: make([][]int, C),
		gw:   make([][]int32, C),
	}
	for _, e := range s.edges() {
		t.adj[e[0]] = append(t.adj[e[0]], e[1])
		t.adj[e[1]] = append(t.adj[e[1]], e[0])
	}
	gwFlat := make([]int32, C*C)
	for i := range gwFlat {
		gwFlat[i] = -1
	}
	for c := range t.adj {
		// Edge lists are generated (or validated) duplicate-free; sort
		// ascending so routing ties break toward lower channel ids.
		sortInts(t.adj[c])
		t.gw[c] = gwFlat[c*C : (c+1)*C : (c+1)*C]
		for i, d := range t.adj[c] {
			t.gw[c][d] = int32(i % s.N)
		}
	}
	// BFS from every source; parent-first expansion over sorted
	// neighbour lists makes the next-hop matrix deterministic.
	queue := make([]int, 0, C)
	for src := 0; src < C; src++ {
		nh := make([]int, C)
		for i := range nh {
			nh[i] = -1
		}
		nh[src] = src
		queue = queue[:0]
		queue = append(queue, src)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range t.adj[cur] {
				if nh[nb] != -1 {
					continue
				}
				if cur == src {
					nh[nb] = nb // first hop is the neighbour itself
				} else {
					nh[nb] = nh[cur]
				}
				queue = append(queue, nb)
			}
		}
		for d, h := range nh {
			if h == -1 {
				return nil, fmt.Errorf("%w: channel %d unreachable from channel %d",
					registry.ErrBadTopology, d, src)
			}
		}
		t.next[src] = nh
	}
	return t, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Spec returns the compiled spec.
func (t *Topology) Spec() Spec { return t.spec }

// Channels returns the number of channels.
func (t *Topology) Channels() int { return t.spec.Channels }

// StationsPerChannel returns the per-channel station count.
func (t *Topology) StationsPerChannel() int { return t.spec.N }

// Stations returns the total number of stations across the network.
func (t *Topology) Stations() int { return t.spec.Channels * t.spec.N }

// ChannelOf returns the channel owning global station id g.
func (t *Topology) ChannelOf(g int) int { return g / t.spec.N }

// Local converts a global station id to its channel-local index.
func (t *Topology) Local(g int) int { return g % t.spec.N }

// Global converts (channel, local station) to the global id.
func (t *Topology) Global(ch, local int) int { return ch*t.spec.N + local }

// NextHop returns the channel after `from` on the shortest path to
// `to`; NextHop(c, c) == c.
func (t *Topology) NextHop(from, to int) int { return t.next[from][to] }

// Gateway returns the local station in channel ch that relays traffic
// toward the adjacent channel `toward`. Assignment is deterministic:
// the i-th sorted neighbour uses local station i mod N, so every
// gateway exists for any N ≥ 2 (a channel with more neighbours than
// stations shares gateways). Safe for concurrent readers — the table
// is immutable after Compile.
func (t *Topology) Gateway(ch, toward int) int {
	g := t.gw[ch][toward]
	if g < 0 {
		panic(fmt.Sprintf("network: channels %d and %d are not adjacent", ch, toward))
	}
	return int(g)
}

// Hops returns the shortest-path hop count between two channels.
func (t *Topology) Hops(from, to int) int {
	hops := 0
	for from != to {
		from = t.next[from][to]
		hops++
	}
	return hops
}
