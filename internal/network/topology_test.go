package network

import (
	"errors"
	"reflect"
	"testing"

	"earmac/internal/registry"
)

func TestSpecValidateErrors(t *testing.T) {
	cases := map[string]Spec{
		"unknown kind":        {Kind: "ring", Channels: 3, N: 4},
		"one channel":         {Kind: Line, Channels: 1, N: 4},
		"tiny channel":        {Kind: Star, Channels: 3, N: 1},
		"links on named":      {Kind: Line, Channels: 3, N: 4, Links: [][2]int{{0, 1}}},
		"custom without link": {Kind: Custom, Channels: 3, N: 4},
		"link out of range":   {Kind: Custom, Channels: 3, N: 4, Links: [][2]int{{0, 3}}},
		"self loop":           {Kind: Custom, Channels: 3, N: 4, Links: [][2]int{{1, 1}}},
		"duplicate link":      {Kind: Custom, Channels: 3, N: 4, Links: [][2]int{{0, 1}, {1, 0}}},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, registry.ErrBadTopology) {
			t.Errorf("%s: error %v does not wrap ErrBadTopology", name, err)
		}
	}
	// Disconnected graphs surface at Compile (reachability needs BFS).
	if _, err := Compile(Spec{Kind: Custom, Channels: 4, N: 3,
		Links: [][2]int{{0, 1}, {2, 3}}}); !errors.Is(err, registry.ErrBadTopology) {
		t.Errorf("disconnected custom graph: got %v, want ErrBadTopology", err)
	}
}

func TestCompileRouting(t *testing.T) {
	line, err := Compile(Spec{Kind: Line, Channels: 4, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := line.NextHop(0, 3); got != 1 {
		t.Errorf("line next hop 0->3 = %d, want 1", got)
	}
	if got := line.Hops(0, 3); got != 3 {
		t.Errorf("line hops 0->3 = %d, want 3", got)
	}
	if got := line.NextHop(2, 2); got != 2 {
		t.Errorf("self next hop = %d, want 2", got)
	}

	star, err := Compile(Spec{Kind: Star, Channels: 4, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := star.NextHop(1, 3); got != 0 {
		t.Errorf("star next hop 1->3 = %d, want hub 0", got)
	}
	if got := star.Hops(1, 3); got != 2 {
		t.Errorf("star hops 1->3 = %d, want 2", got)
	}

	clique, err := Compile(Spec{Kind: Clique, Channels: 5, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			if a != b && clique.NextHop(a, b) != b {
				t.Errorf("clique next hop %d->%d = %d, want direct", a, b, clique.NextHop(a, b))
			}
		}
	}
}

func TestGridDims(t *testing.T) {
	cases := map[int][2]int{
		4:  {2, 2},
		6:  {2, 3},
		7:  {1, 7}, // prime: degenerates to a line
		9:  {3, 3},
		12: {3, 4},
		64: {8, 8},
	}
	for c, want := range cases {
		if rows, cols := gridDims(c); rows != want[0] || cols != want[1] {
			t.Errorf("gridDims(%d) = (%d, %d), want (%d, %d)", c, rows, cols, want[0], want[1])
		}
	}
}

func TestGridCompileRouting(t *testing.T) {
	// 6 channels → a 2×3 mesh: 0-1-2 over 3-4-5. Opposite corners are 3
	// hops apart and ties break toward the lower-numbered neighbour.
	grid, err := Compile(Spec{Kind: Grid, Channels: 6, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := grid.Hops(0, 5); got != 3 {
		t.Errorf("grid hops 0->5 = %d, want 3", got)
	}
	if got := grid.NextHop(0, 5); got != 1 {
		t.Errorf("grid next hop 0->5 = %d, want 1 (lowest-neighbour tie-break)", got)
	}
	if got := grid.Hops(1, 4); got != 1 {
		t.Errorf("grid hops 1->4 = %d, want 1 (vertical edge)", got)
	}
}

func TestRandomTopologyDeterministicAndConnected(t *testing.T) {
	// Same (seed, C) → the same graph, on every platform and run.
	a, err := Compile(Spec{Kind: Random, Channels: 16, N: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(Spec{Kind: Random, Channels: 16, N: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.adj, b.adj) {
		t.Error("random topology is not deterministic for a fixed seed")
	}
	c, err := Compile(Spec{Kind: Random, Channels: 16, N: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.adj, c.adj) {
		t.Error("seeds 7 and 8 generated identical graphs")
	}
	// The spanning-tree prefix makes every draw connected: Compile (which
	// rejects unreachable pairs) must succeed for any (C, seed).
	for _, channels := range []int{2, 3, 16, 64} {
		for _, seed := range []int64{0, 1, 9, -5} {
			if _, err := Compile(Spec{Kind: Random, Channels: channels, N: 2, Seed: seed}); err != nil {
				t.Errorf("random C=%d seed=%d: %v", channels, seed, err)
			}
		}
	}
	// The edge list itself is self-loop-free and duplicate-free.
	edges := randomEdges(64, 9)
	seen := map[[2]int]bool{}
	for _, e := range edges {
		if e[0] == e[1] {
			t.Errorf("self loop %v", e)
		}
		if seen[e] {
			t.Errorf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestKindsComplete(t *testing.T) {
	want := []string{Clique, Custom, Grid, Line, Random, Star}
	if !reflect.DeepEqual(Kinds(), want) {
		t.Errorf("Kinds() = %v, want %v", Kinds(), want)
	}
}

func TestGlobalLocalMapping(t *testing.T) {
	topo, err := Compile(Spec{Kind: Line, Channels: 3, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if topo.Stations() != 12 {
		t.Fatalf("stations = %d, want 12", topo.Stations())
	}
	for g := 0; g < 12; g++ {
		ch, loc := topo.ChannelOf(g), topo.Local(g)
		if ch != g/4 || loc != g%4 || topo.Global(ch, loc) != g {
			t.Errorf("mapping of %d: (%d, %d)", g, ch, loc)
		}
	}
}

func TestGatewaysDeterministicAndInRange(t *testing.T) {
	// A clique with more neighbours than stations per channel: gateways
	// must still be valid local stations (shared, mod N).
	topo, err := Compile(Spec{Kind: Clique, Channels: 5, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 5; c++ {
		for d := 0; d < 5; d++ {
			if c == d {
				continue
			}
			g := topo.Gateway(c, d)
			if g < 0 || g >= 2 {
				t.Errorf("gateway(%d, %d) = %d outside [0, 2)", c, d, g)
			}
			if g2 := topo.Gateway(c, d); g2 != g {
				t.Errorf("gateway(%d, %d) not deterministic: %d vs %d", c, d, g, g2)
			}
		}
	}
	// Non-adjacent channels have no gateway.
	lineT, _ := Compile(Spec{Kind: Line, Channels: 3, N: 2})
	defer func() {
		if recover() == nil {
			t.Error("Gateway between non-adjacent channels did not panic")
		}
	}()
	lineT.Gateway(0, 2)
}
