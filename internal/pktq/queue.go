// Package pktq provides the packet queue held by every station: a FIFO in
// injection-arrival order with per-destination indexing. The paper assumes
// a station "can scan its queue and access any packet in negligible time";
// this implementation makes the operations the algorithms actually use
// O(1) (push, pops, removal by ID, per-destination counts).
//
// The queue is built for the simulator's steady-state hot path: nodes live
// in an index-addressed arena recycled through a free list, and the
// per-destination index is a slice keyed by the destination station name
// (destinations are 0..n-1), so a push/pop cycle at constant queue depth
// performs no allocation.
package pktq

import (
	"fmt"

	"earmac/internal/mac"
)

// none marks the absence of a node link.
const none = int32(-1)

type node struct {
	pkt          mac.Packet
	prev, next   int32 // global arrival order
	dprev, dnext int32 // arrival order within the same destination
}

type destList struct {
	head, tail int32
	count      int
}

// Queue is a packet queue. The zero value is not usable; call New.
type Queue struct {
	byID   map[int64]int32
	byDest []destList // indexed by destination station
	nodes  []node     // arena; freed nodes are threaded through .next
	free   int32      // head of the free list
	head   int32
	tail   int32
	size   int
}

// New returns an empty queue for destinations in [0, nDests). Pushing a
// packet with a larger destination grows the index transparently, so
// nDests is a capacity hint, not a hard bound.
func New(nDests int) *Queue {
	if nDests < 0 {
		nDests = 0
	}
	return &Queue{
		byID:   make(map[int64]int32),
		byDest: make([]destList, nDests),
		free:   none,
		head:   none,
		tail:   none,
	}
}

// alloc takes a node off the free list or extends the arena.
func (q *Queue) alloc(p mac.Packet) int32 {
	if q.free != none {
		i := q.free
		q.free = q.nodes[i].next
		q.nodes[i] = node{pkt: p, prev: none, next: none, dprev: none, dnext: none}
		return i
	}
	q.nodes = append(q.nodes, node{pkt: p, prev: none, next: none, dprev: none, dnext: none})
	return int32(len(q.nodes) - 1)
}

// dest returns the destination list for d, growing the index if needed.
func (q *Queue) dest(d int) *destList {
	if d >= len(q.byDest) {
		//earmac:alloc -- amortized index growth past the New(nDests) hint; sized callers never reach it
		grown := make([]destList, d+1)
		copy(grown, q.byDest)
		q.byDest = grown
	}
	return &q.byDest[d]
}

// Len returns the number of queued packets.
//
//earmac:hotpath
func (q *Queue) Len() int { return q.size }

// Has reports whether the packet with the given ID is queued.
//
//earmac:hotpath
func (q *Queue) Has(id int64) bool { _, ok := q.byID[id]; return ok }

// Get returns the queued packet with the given ID.
func (q *Queue) Get(id int64) (mac.Packet, bool) {
	n, ok := q.byID[id]
	if !ok {
		return mac.Packet{}, false
	}
	return q.nodes[n].pkt, true
}

// Count returns the number of queued packets with the given destination.
//
//earmac:hotpath
func (q *Queue) Count(dest int) int {
	if dest < 0 || dest >= len(q.byDest) {
		return 0
	}
	return q.byDest[dest].count
}

// CountLess returns the number of queued packets whose destination is
// strictly smaller than dest (used by the Adjust-Window gossip stage).
func (q *Queue) CountLess(dest int) int {
	if dest > len(q.byDest) {
		dest = len(q.byDest)
	}
	total := 0
	for d := 0; d < dest; d++ {
		total += q.byDest[d].count
	}
	return total
}

// Push appends a packet. Pushing a duplicate ID panics: packet ownership
// is exactly-once by design and a duplicate indicates an algorithm bug.
// A negative destination panics, since the per-destination index is
// keyed by station name.
//
//earmac:hotpath
func (q *Queue) Push(p mac.Packet) {
	if _, dup := q.byID[p.ID]; dup {
		panic(fmt.Sprintf("pktq: duplicate packet %v", p))
	}
	if p.Dest < 0 {
		panic(fmt.Sprintf("pktq: negative destination on %v", p))
	}
	n := q.alloc(p)
	q.byID[p.ID] = n
	if q.tail == none {
		q.head, q.tail = n, n
	} else {
		q.nodes[n].prev = q.tail
		q.nodes[q.tail].next = n
		q.tail = n
	}
	dl := q.dest(p.Dest)
	if dl.count == 0 {
		dl.head, dl.tail = n, n
	} else {
		q.nodes[n].dprev = dl.tail
		q.nodes[dl.tail].dnext = n
		dl.tail = n
	}
	dl.count++
	q.size++
}

// Front returns the oldest queued packet without removing it.
//
//earmac:hotpath
func (q *Queue) Front() (mac.Packet, bool) {
	if q.head == none {
		return mac.Packet{}, false
	}
	return q.nodes[q.head].pkt, true
}

// FrontTo returns the oldest queued packet destined to dest without
// removing it.
//
//earmac:hotpath
func (q *Queue) FrontTo(dest int) (mac.Packet, bool) {
	if dest < 0 || dest >= len(q.byDest) {
		return mac.Packet{}, false
	}
	dl := &q.byDest[dest]
	if dl.count == 0 {
		return mac.Packet{}, false
	}
	return q.nodes[dl.head].pkt, true
}

// PopFront removes and returns the oldest queued packet.
//
//earmac:hotpath
func (q *Queue) PopFront() (mac.Packet, bool) {
	if q.head == none {
		return mac.Packet{}, false
	}
	p := q.nodes[q.head].pkt
	q.unlink(q.head)
	return p, true
}

// PopFrontTo removes and returns the oldest packet destined to dest.
//
//earmac:hotpath
func (q *Queue) PopFrontTo(dest int) (mac.Packet, bool) {
	if dest < 0 || dest >= len(q.byDest) {
		return mac.Packet{}, false
	}
	dl := &q.byDest[dest]
	if dl.count == 0 {
		return mac.Packet{}, false
	}
	p := q.nodes[dl.head].pkt
	q.unlink(dl.head)
	return p, true
}

// PopPrefer removes and returns the oldest packet destined to dest if one
// exists, and otherwise the oldest packet overall. Used by coded transfer,
// where sending a packet addressed to the listener delivers it for free.
//
//earmac:hotpath
func (q *Queue) PopPrefer(dest int) (mac.Packet, bool) {
	if p, ok := q.PopFrontTo(dest); ok {
		return p, true
	}
	return q.PopFront()
}

// Remove deletes the packet with the given ID, reporting whether it was
// present.
//
//earmac:hotpath
func (q *Queue) Remove(id int64) bool {
	n, ok := q.byID[id]
	if !ok {
		return false
	}
	q.unlink(n)
	return true
}

func (q *Queue) unlink(n int32) {
	nd := &q.nodes[n]
	if nd.prev != none {
		q.nodes[nd.prev].next = nd.next
	} else {
		q.head = nd.next
	}
	if nd.next != none {
		q.nodes[nd.next].prev = nd.prev
	} else {
		q.tail = nd.prev
	}
	dl := &q.byDest[nd.pkt.Dest]
	if nd.dprev != none {
		q.nodes[nd.dprev].dnext = nd.dnext
	} else {
		dl.head = nd.dnext
	}
	if nd.dnext != none {
		q.nodes[nd.dnext].dprev = nd.dprev
	} else {
		dl.tail = nd.dprev
	}
	dl.count--
	delete(q.byID, nd.pkt.ID)
	q.size--
	// Recycle the node: clear the packet so the arena does not retain it,
	// then thread it onto the free list through .next.
	*nd = node{next: q.free, prev: none, dprev: none, dnext: none}
	q.free = n
}

// Snapshot returns the queued packets in arrival order.
func (q *Queue) Snapshot() []mac.Packet {
	out := make([]mac.Packet, 0, q.size)
	for n := q.head; n != none; n = q.nodes[n].next {
		out = append(out, q.nodes[n].pkt)
	}
	return out
}

// AppendTo appends the queued packets in arrival order to buf and returns
// the extended slice — the allocation-free variant of Snapshot.
//
//earmac:hotpath
func (q *Queue) AppendTo(buf []mac.Packet) []mac.Packet {
	for n := q.head; n != none; n = q.nodes[n].next {
		buf = append(buf, q.nodes[n].pkt)
	}
	return buf
}

// IDs returns the queued packet IDs in arrival order.
func (q *Queue) IDs() []int64 {
	out := make([]int64, 0, q.size)
	for n := q.head; n != none; n = q.nodes[n].next {
		out = append(out, q.nodes[n].pkt.ID)
	}
	return out
}

// Each calls f on every queued packet in arrival order; f returning false
// stops the iteration.
func (q *Queue) Each(f func(mac.Packet) bool) {
	for n := q.head; n != none; n = q.nodes[n].next {
		if !f(q.nodes[n].pkt) {
			return
		}
	}
}
