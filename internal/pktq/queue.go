// Package pktq provides the packet queue held by every station: a FIFO in
// injection-arrival order with per-destination indexing. The paper assumes
// a station "can scan its queue and access any packet in negligible time";
// this implementation makes the operations the algorithms actually use
// O(1) (push, pops, removal by ID, per-destination counts).
package pktq

import (
	"fmt"

	"earmac/internal/mac"
)

type node struct {
	pkt          mac.Packet
	prev, next   *node // global arrival order
	dprev, dnext *node // arrival order within the same destination
}

type destList struct {
	head, tail *node
	count      int
}

// Queue is a packet queue. The zero value is not usable; call New.
type Queue struct {
	byID   map[int64]*node
	byDest map[int]*destList
	head   *node
	tail   *node
	size   int
}

// New returns an empty queue.
func New() *Queue {
	return &Queue{
		byID:   make(map[int64]*node),
		byDest: make(map[int]*destList),
	}
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return q.size }

// Has reports whether the packet with the given ID is queued.
func (q *Queue) Has(id int64) bool { _, ok := q.byID[id]; return ok }

// Get returns the queued packet with the given ID.
func (q *Queue) Get(id int64) (mac.Packet, bool) {
	n, ok := q.byID[id]
	if !ok {
		return mac.Packet{}, false
	}
	return n.pkt, true
}

// Count returns the number of queued packets with the given destination.
func (q *Queue) Count(dest int) int {
	dl := q.byDest[dest]
	if dl == nil {
		return 0
	}
	return dl.count
}

// CountLess returns the number of queued packets whose destination is
// strictly smaller than dest (used by the Adjust-Window gossip stage).
func (q *Queue) CountLess(dest int) int {
	total := 0
	for d, dl := range q.byDest {
		if d < dest {
			total += dl.count
		}
	}
	return total
}

// Push appends a packet. Pushing a duplicate ID panics: packet ownership
// is exactly-once by design and a duplicate indicates an algorithm bug.
func (q *Queue) Push(p mac.Packet) {
	if _, dup := q.byID[p.ID]; dup {
		panic(fmt.Sprintf("pktq: duplicate packet %v", p))
	}
	n := &node{pkt: p}
	q.byID[p.ID] = n
	if q.tail == nil {
		q.head, q.tail = n, n
	} else {
		n.prev = q.tail
		q.tail.next = n
		q.tail = n
	}
	dl := q.byDest[p.Dest]
	if dl == nil {
		dl = &destList{}
		q.byDest[p.Dest] = dl
	}
	if dl.tail == nil {
		dl.head, dl.tail = n, n
	} else {
		n.dprev = dl.tail
		dl.tail.dnext = n
		dl.tail = n
	}
	dl.count++
	q.size++
}

// Front returns the oldest queued packet without removing it.
func (q *Queue) Front() (mac.Packet, bool) {
	if q.head == nil {
		return mac.Packet{}, false
	}
	return q.head.pkt, true
}

// FrontTo returns the oldest queued packet destined to dest without
// removing it.
func (q *Queue) FrontTo(dest int) (mac.Packet, bool) {
	dl := q.byDest[dest]
	if dl == nil || dl.head == nil {
		return mac.Packet{}, false
	}
	return dl.head.pkt, true
}

// PopFront removes and returns the oldest queued packet.
func (q *Queue) PopFront() (mac.Packet, bool) {
	if q.head == nil {
		return mac.Packet{}, false
	}
	p := q.head.pkt
	q.unlink(q.head)
	return p, true
}

// PopFrontTo removes and returns the oldest packet destined to dest.
func (q *Queue) PopFrontTo(dest int) (mac.Packet, bool) {
	dl := q.byDest[dest]
	if dl == nil || dl.head == nil {
		return mac.Packet{}, false
	}
	p := dl.head.pkt
	q.unlink(dl.head)
	return p, true
}

// PopPrefer removes and returns the oldest packet destined to dest if one
// exists, and otherwise the oldest packet overall. Used by coded transfer,
// where sending a packet addressed to the listener delivers it for free.
func (q *Queue) PopPrefer(dest int) (mac.Packet, bool) {
	if p, ok := q.PopFrontTo(dest); ok {
		return p, true
	}
	return q.PopFront()
}

// Remove deletes the packet with the given ID, reporting whether it was
// present.
func (q *Queue) Remove(id int64) bool {
	n, ok := q.byID[id]
	if !ok {
		return false
	}
	q.unlink(n)
	return true
}

func (q *Queue) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		q.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		q.tail = n.prev
	}
	dl := q.byDest[n.pkt.Dest]
	if n.dprev != nil {
		n.dprev.dnext = n.dnext
	} else {
		dl.head = n.dnext
	}
	if n.dnext != nil {
		n.dnext.dprev = n.dprev
	} else {
		dl.tail = n.dprev
	}
	dl.count--
	if dl.count == 0 {
		delete(q.byDest, n.pkt.Dest)
	}
	delete(q.byID, n.pkt.ID)
	q.size--
	n.prev, n.next, n.dprev, n.dnext = nil, nil, nil, nil
}

// Snapshot returns the queued packets in arrival order.
func (q *Queue) Snapshot() []mac.Packet {
	out := make([]mac.Packet, 0, q.size)
	for n := q.head; n != nil; n = n.next {
		out = append(out, n.pkt)
	}
	return out
}

// IDs returns the queued packet IDs in arrival order.
func (q *Queue) IDs() []int64 {
	out := make([]int64, 0, q.size)
	for n := q.head; n != nil; n = n.next {
		out = append(out, n.pkt.ID)
	}
	return out
}

// Each calls f on every queued packet in arrival order; f returning false
// stops the iteration.
func (q *Queue) Each(f func(mac.Packet) bool) {
	for n := q.head; n != nil; n = n.next {
		if !f(n.pkt) {
			return
		}
	}
}
