package pktq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"earmac/internal/mac"
)

func pk(id int64, dest int) mac.Packet {
	return mac.Packet{ID: id, Src: 0, Dest: dest, Injected: id}
}

func TestEmptyQueue(t *testing.T) {
	q := New(10)
	if q.Len() != 0 {
		t.Error("new queue not empty")
	}
	if _, ok := q.PopFront(); ok {
		t.Error("PopFront on empty queue succeeded")
	}
	if _, ok := q.PopFrontTo(3); ok {
		t.Error("PopFrontTo on empty queue succeeded")
	}
	if _, ok := q.Front(); ok {
		t.Error("Front on empty queue succeeded")
	}
	if _, ok := q.FrontTo(1); ok {
		t.Error("FrontTo on empty queue succeeded")
	}
	if q.Remove(99) {
		t.Error("Remove on empty queue succeeded")
	}
	if q.Count(0) != 0 || q.CountLess(5) != 0 {
		t.Error("counts on empty queue nonzero")
	}
}

func TestFIFOOrder(t *testing.T) {
	q := New(10)
	for i := int64(0); i < 10; i++ {
		q.Push(pk(i, int(i%3)))
	}
	for i := int64(0); i < 10; i++ {
		p, ok := q.PopFront()
		if !ok || p.ID != i {
			t.Fatalf("PopFront #%d = %v, %v", i, p, ok)
		}
	}
	if q.Len() != 0 {
		t.Error("queue not drained")
	}
}

func TestPerDestFIFO(t *testing.T) {
	q := New(10)
	q.Push(pk(1, 5))
	q.Push(pk(2, 7))
	q.Push(pk(3, 5))
	q.Push(pk(4, 7))
	if p, _ := q.FrontTo(5); p.ID != 1 {
		t.Errorf("FrontTo(5) = %v", p)
	}
	p, ok := q.PopFrontTo(7)
	if !ok || p.ID != 2 {
		t.Errorf("PopFrontTo(7) = %v", p)
	}
	p, ok = q.PopFrontTo(7)
	if !ok || p.ID != 4 {
		t.Errorf("second PopFrontTo(7) = %v", p)
	}
	if _, ok = q.PopFrontTo(7); ok {
		t.Error("third PopFrontTo(7) should fail")
	}
	// Global order must reflect the removals.
	p, _ = q.PopFront()
	if p.ID != 1 {
		t.Errorf("global front = %v, want 1", p)
	}
	p, _ = q.PopFront()
	if p.ID != 3 {
		t.Errorf("global front = %v, want 3", p)
	}
}

func TestCounts(t *testing.T) {
	q := New(10)
	dests := []int{0, 1, 1, 3, 3, 3, 7}
	for i, d := range dests {
		q.Push(pk(int64(i), d))
	}
	if q.Count(3) != 3 || q.Count(1) != 2 || q.Count(0) != 1 || q.Count(2) != 0 {
		t.Error("Count wrong")
	}
	if q.CountLess(3) != 3 { // dests 0,1,1
		t.Errorf("CountLess(3) = %d, want 3", q.CountLess(3))
	}
	if q.CountLess(0) != 0 {
		t.Errorf("CountLess(0) = %d", q.CountLess(0))
	}
	if q.CountLess(100) != 7 {
		t.Errorf("CountLess(100) = %d", q.CountLess(100))
	}
}

func TestRemoveByID(t *testing.T) {
	q := New(10)
	for i := int64(0); i < 5; i++ {
		q.Push(pk(i, 1))
	}
	if !q.Remove(2) {
		t.Fatal("Remove(2) failed")
	}
	if q.Remove(2) {
		t.Fatal("double Remove(2) succeeded")
	}
	if q.Has(2) {
		t.Error("removed packet still present")
	}
	want := []int64{0, 1, 3, 4}
	got := q.IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if q.Count(1) != 4 {
		t.Errorf("Count(1) = %d after removal", q.Count(1))
	}
}

func TestRemoveHeadAndTail(t *testing.T) {
	q := New(10)
	q.Push(pk(1, 0))
	q.Push(pk(2, 0))
	q.Push(pk(3, 0))
	q.Remove(1)
	q.Remove(3)
	p, ok := q.Front()
	if !ok || p.ID != 2 {
		t.Errorf("Front = %v after head/tail removal", p)
	}
	q.Remove(2)
	if q.Len() != 0 {
		t.Error("queue not empty")
	}
	q.Push(pk(4, 9))
	if p, _ := q.Front(); p.ID != 4 {
		t.Error("push after full drain broken")
	}
}

func TestPopPrefer(t *testing.T) {
	q := New(10)
	q.Push(pk(1, 3))
	q.Push(pk(2, 8))
	p, ok := q.PopPrefer(8)
	if !ok || p.ID != 2 {
		t.Errorf("PopPrefer(8) = %v", p)
	}
	p, ok = q.PopPrefer(8) // no dest-8 packet left: falls back to oldest
	if !ok || p.ID != 1 {
		t.Errorf("PopPrefer(8) fallback = %v", p)
	}
	if _, ok = q.PopPrefer(8); ok {
		t.Error("PopPrefer on empty queue succeeded")
	}
}

func TestDuplicatePushPanics(t *testing.T) {
	q := New(10)
	q.Push(pk(1, 0))
	defer func() {
		if recover() == nil {
			t.Error("duplicate push did not panic")
		}
	}()
	q.Push(pk(1, 5))
}

func TestGetAndEach(t *testing.T) {
	q := New(10)
	q.Push(pk(10, 2))
	q.Push(pk(11, 4))
	p, ok := q.Get(11)
	if !ok || p.Dest != 4 {
		t.Errorf("Get(11) = %v, %v", p, ok)
	}
	if _, ok := q.Get(99); ok {
		t.Error("Get(99) succeeded")
	}
	var seen []int64
	q.Each(func(p mac.Packet) bool {
		seen = append(seen, p.ID)
		return true
	})
	if len(seen) != 2 || seen[0] != 10 || seen[1] != 11 {
		t.Errorf("Each order = %v", seen)
	}
	seen = nil
	q.Each(func(p mac.Packet) bool {
		seen = append(seen, p.ID)
		return false
	})
	if len(seen) != 1 {
		t.Errorf("Each early stop visited %v", seen)
	}
}

// refModel is a naive slice-backed reference implementation.
type refModel struct {
	pkts []mac.Packet
}

func (m *refModel) push(p mac.Packet) { m.pkts = append(m.pkts, p) }
func (m *refModel) popFront() (mac.Packet, bool) {
	if len(m.pkts) == 0 {
		return mac.Packet{}, false
	}
	p := m.pkts[0]
	m.pkts = m.pkts[1:]
	return p, true
}
func (m *refModel) popFrontTo(d int) (mac.Packet, bool) {
	for i, p := range m.pkts {
		if p.Dest == d {
			m.pkts = append(m.pkts[:i:i], m.pkts[i+1:]...)
			return p, true
		}
	}
	return mac.Packet{}, false
}
func (m *refModel) remove(id int64) bool {
	for i, p := range m.pkts {
		if p.ID == id {
			m.pkts = append(m.pkts[:i:i], m.pkts[i+1:]...)
			return true
		}
	}
	return false
}
func (m *refModel) count(d int) int {
	c := 0
	for _, p := range m.pkts {
		if p.Dest == d {
			c++
		}
	}
	return c
}
func (m *refModel) countLess(d int) int {
	c := 0
	for _, p := range m.pkts {
		if p.Dest < d {
			c++
		}
	}
	return c
}

// TestAgainstReferenceModel drives random operation sequences against the
// naive model and checks every observable.
func TestAgainstReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := New(10)
		ref := &refModel{}
		nextID := int64(0)
		for op := 0; op < 300; op++ {
			switch rng.Intn(5) {
			case 0, 1: // push (biased so queues grow)
				p := pk(nextID, rng.Intn(6))
				nextID++
				q.Push(p)
				ref.push(p)
			case 2:
				gp, gok := q.PopFront()
				wp, wok := ref.popFront()
				if gok != wok || gp != wp {
					return false
				}
			case 3:
				d := rng.Intn(6)
				gp, gok := q.PopFrontTo(d)
				wp, wok := ref.popFrontTo(d)
				if gok != wok || gp != wp {
					return false
				}
			case 4:
				id := int64(rng.Intn(int(nextID + 1)))
				if q.Remove(id) != ref.remove(id) {
					return false
				}
			}
			if q.Len() != len(ref.pkts) {
				return false
			}
			d := rng.Intn(7)
			if q.Count(d) != ref.count(d) || q.CountLess(d) != ref.countLess(d) {
				return false
			}
		}
		// Final: snapshot order matches.
		snap := q.Snapshot()
		if len(snap) != len(ref.pkts) {
			return false
		}
		for i := range snap {
			if snap[i] != ref.pkts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestDestIndexGrowth pushes destinations beyond the New hint and checks
// the per-destination index grows transparently.
func TestDestIndexGrowth(t *testing.T) {
	q := New(2)
	q.Push(pk(1, 0))
	q.Push(pk(2, 17))
	if q.Count(17) != 1 {
		t.Errorf("Count(17) = %d after growth", q.Count(17))
	}
	if p, ok := q.PopFrontTo(17); !ok || p.ID != 2 {
		t.Errorf("PopFrontTo(17) = %v, %v", p, ok)
	}
	if q.Count(17) != 0 || q.Len() != 1 {
		t.Error("growth bookkeeping wrong after pop")
	}
}

// TestFreeListReuse checks that a steady-state push/pop cycle recycles
// arena nodes instead of growing the arena.
func TestFreeListReuse(t *testing.T) {
	q := New(4)
	for i := int64(0); i < 8; i++ {
		q.Push(pk(i, int(i%4)))
	}
	arena := len(q.nodes)
	for i := int64(8); i < 5000; i++ {
		if _, ok := q.PopFront(); !ok {
			t.Fatal("pop failed")
		}
		q.Push(pk(i, int(i%4)))
	}
	if len(q.nodes) != arena {
		t.Errorf("arena grew from %d to %d under steady state", arena, len(q.nodes))
	}
	if q.Len() != 8 {
		t.Errorf("Len = %d", q.Len())
	}
}

// TestNegativeDestPanics documents the station-name keying contract.
func TestNegativeDestPanics(t *testing.T) {
	q := New(4)
	defer func() {
		if recover() == nil {
			t.Error("negative destination did not panic")
		}
	}()
	q.Push(pk(1, -1))
}
