// Package pool provides the bounded-worker dispatch primitives shared by
// the Suite runner, the experiment harness, and the serving layer.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a requested worker count to the effective pool size:
// any value <= 0 means GOMAXPROCS. Every consumer of a -parallel style
// knob (the Suite runner, the experiment harness, the CLIs, the service)
// resolves through this one function so the default is consistent
// everywhere.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// startPool starts n goroutines draining jobs and returns a WaitGroup
// that completes when jobs closes and every dispatched call has
// returned. It is the single worker loop behind RunIndexed and Run, so
// both share the drain guarantee: in-flight run calls always finish.
func startPool[T any](jobs <-chan T, n int, run func(T)) *sync.WaitGroup {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				run(j)
			}
		}()
	}
	return &wg
}

// RunIndexed invokes run(i) for i in [0, n) across a bounded worker pool
// (workers <= 0 means GOMAXPROCS, per Workers) and blocks until every
// dispatched call returns. Dispatching stops early when ctx is
// cancelled; indices not dispatched are simply never run. Returns
// ctx.Err().
//
// Cancellation cuts dispatch deterministically: the feed loop checks
// ctx.Err() before offering each index, so once ctx is done no index
// whose offer had not already begun can be dispatched. (A bare select
// between the handoff and ctx.Done() chooses randomly among ready cases,
// which used to let dispatch keep winning after cancellation.) The one
// index already being offered when ctx fires may still be taken by a
// worker that was simultaneously ready — an unavoidable race of the
// unbuffered handoff — so a caller observing cancellation from inside
// run can see at most one extra call, never an unbounded stream.
func RunIndexed(ctx context.Context, n, workers int, run func(i int)) error {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	wg := startPool(jobs, workers, run)
feed:
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break feed
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return ctx.Err()
}

// Run invokes run for every value received on jobs across a bounded
// worker pool, until jobs is closed or ctx is cancelled, and blocks
// until every dispatched call returns — in-flight work always drains.
// It is the streaming sibling of RunIndexed with the same deterministic
// cancellation contract: the feed loop checks ctx.Err() before every
// receive, so once ctx is done no further value is taken from jobs
// (values left in jobs are simply never run; the caller owns marking
// them skipped). A value already received when ctx fires is still
// dispatched and run — a received job is never lost, at the cost of at
// most one dispatch after cancellation (the same one-job slack
// RunIndexed documents for an offer in flight). Returns ctx.Err().
//
// The long-running service executor is the main consumer: submitted jobs
// flow through a buffered channel into Run, and a drain (SIGTERM)
// cancels ctx so queued jobs stop dispatching while running ones finish.
func Run[T any](ctx context.Context, jobs <-chan T, n int, run func(T)) error {
	inner := make(chan T)
	wg := startPool(inner, Workers(n), run)
feed:
	for {
		if ctx.Err() != nil {
			break feed
		}
		select {
		case j, ok := <-jobs:
			if !ok {
				break feed
			}
			inner <- j // commit: a received job is always dispatched
		case <-ctx.Done():
			break feed
		}
	}
	close(inner)
	wg.Wait()
	return ctx.Err()
}
