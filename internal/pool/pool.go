// Package pool provides the bounded-worker index pool shared by the
// Suite runner and the experiment harness.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a requested worker count to the effective pool size:
// any value <= 0 means GOMAXPROCS. Every consumer of a -parallel style
// knob (the Suite runner, the experiment harness, the CLIs) resolves
// through this one function so the default is consistent everywhere.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// RunIndexed invokes run(i) for i in [0, n) across a bounded worker pool
// (workers <= 0 means GOMAXPROCS, per Workers) and blocks until every
// dispatched call returns. Dispatching stops early when ctx is
// cancelled; indices not dispatched are simply never run. Returns
// ctx.Err().
func RunIndexed(ctx context.Context, n, workers int, run func(i int)) error {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				run(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return ctx.Err()
}
