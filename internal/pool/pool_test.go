package pool

import (
	"context"
	"runtime"
	"sync"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	for _, req := range []int{0, -1, -100} {
		if got := Workers(req); got != gmp {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS = %d", req, got, gmp)
		}
	}
	for _, req := range []int{1, 2, 64} {
		if got := Workers(req); got != req {
			t.Errorf("Workers(%d) = %d", req, got)
		}
	}
}

func TestRunIndexedRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 100} {
		seen := make([]bool, 37)
		var mu sync.Mutex
		err := RunIndexed(context.Background(), len(seen), workers, func(i int) {
			mu.Lock()
			seen[i] = true
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, s := range seen {
			if !s {
				t.Errorf("workers=%d: index %d never ran", workers, i)
			}
		}
	}
}

func TestRunIndexedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	ran := 0
	err := RunIndexed(ctx, 1000, 1, func(i int) {
		mu.Lock()
		ran++
		mu.Unlock()
		if i == 5 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran >= 1000 {
		t.Error("cancellation did not stop dispatch")
	}
}
