package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	for _, req := range []int{0, -1, -100} {
		if got := Workers(req); got != gmp {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS = %d", req, got, gmp)
		}
	}
	for _, req := range []int{1, 2, 64} {
		if got := Workers(req); got != req {
			t.Errorf("Workers(%d) = %d", req, got)
		}
	}
}

func TestRunIndexedRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 100} {
		seen := make([]bool, 37)
		var mu sync.Mutex
		err := RunIndexed(context.Background(), len(seen), workers, func(i int) {
			mu.Lock()
			seen[i] = true
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, s := range seen {
			if !s {
				t.Errorf("workers=%d: index %d never ran", workers, i)
			}
		}
	}
}

// TestRunIndexedCancelledBeforeDispatchRunsNothing is the regression
// test for nondeterministic dispatch after cancellation: a bare select
// between the job handoff and ctx.Done() picks randomly among ready
// cases, so a pre-cancelled context used to let some jobs through
// whenever a worker happened to be parked on the channel. The fixed feed
// loop checks ctx.Err() before every offer, so a context cancelled
// before dispatch deterministically runs zero jobs — on every iteration.
func TestRunIndexedCancelledBeforeDispatchRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for iter := 0; iter < 200; iter++ {
		var ran atomic.Int64
		err := RunIndexed(ctx, 64, 8, func(i int) { ran.Add(1) })
		if err != context.Canceled {
			t.Fatalf("iter %d: err = %v, want context.Canceled", iter, err)
		}
		if n := ran.Load(); n != 0 {
			t.Fatalf("iter %d: %d jobs ran under a context cancelled before dispatch", iter, n)
		}
	}
}

// TestRunIndexedCancelMidRunStopsDispatch checks the bound on dispatch
// after a mid-run cancellation: with one worker, cancelling from inside
// run(i) allows at most the single index already being offered to slip
// through; dispatch then stops.
func TestRunIndexedCancelMidRunStopsDispatch(t *testing.T) {
	for iter := 0; iter < 100; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		ran := 0
		err := RunIndexed(ctx, 1000, 1, func(i int) {
			ran++
			if i == 5 {
				cancel()
			}
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("iter %d: err = %v, want context.Canceled", iter, err)
		}
		// Jobs 0..5 ran; job 6 may have been mid-offer when cancel fired.
		if ran > 7 {
			t.Fatalf("iter %d: %d jobs ran after cancellation at job 5 (want <= 7)", iter, ran)
		}
	}
}

func TestRunDrainsChannel(t *testing.T) {
	for _, workersN := range []int{0, 1, 3, 100} {
		jobs := make(chan int, 64)
		for i := 0; i < 37; i++ {
			jobs <- i
		}
		close(jobs)
		seen := make([]bool, 37)
		var mu sync.Mutex
		err := Run(context.Background(), jobs, workersN, func(i int) {
			mu.Lock()
			seen[i] = true
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workersN, err)
		}
		for i, s := range seen {
			if !s {
				t.Errorf("workers=%d: job %d never ran", workersN, i)
			}
		}
	}
}

// TestRunCancelledStopsDispatchAndDrains: cancelling the context stops
// dispatch deterministically (values still buffered in jobs are never
// run) while the in-flight call completes before Run returns.
func TestRunCancelledStopsDispatchAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := make(chan int, 16)
	for i := 0; i < 16; i++ {
		jobs <- i
	}
	inflight := make(chan struct{})
	finished := false
	var ran atomic.Int64
	err := Run(ctx, jobs, 1, func(i int) {
		ran.Add(1)
		if i == 0 {
			close(inflight)
			cancel()
			// Simulate real work after cancellation: the drain contract
			// says this call still completes before Run returns.
			finished = true
		}
	})
	<-inflight
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !finished {
		t.Error("Run returned before the in-flight job completed")
	}
	// Job 0 ran; job 1 may have been mid-offer when cancel fired.
	if n := ran.Load(); n > 2 {
		t.Errorf("%d jobs ran after cancellation at job 0 (want <= 2)", n)
	}
}

func TestRunIndexedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	ran := 0
	err := RunIndexed(ctx, 1000, 1, func(i int) {
		mu.Lock()
		ran++
		mu.Unlock()
		if i == 5 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran >= 1000 {
		t.Error("cancellation did not stop dispatch")
	}
}
