package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Team is a persistent worker team for lockstep fan-out: Dispatch
// applies the same function to every index in [0, n) and blocks until
// all calls return. It exists for hot loops (the network round loop)
// that fan the same bounded index space out thousands of times per
// second, where RunIndexed's channel handoff and per-call goroutine
// wakeups would dominate the work itself.
//
// The index space is partitioned statically: worker w always owns the
// same contiguous index range, so run(i) is never invoked concurrently
// for the same i and any per-index state needs no locking. A Dispatch
// call performs no allocation; workers spin briefly on a generation
// counter and then park on a condition variable, so an idle Team costs
// nothing and an oversubscribed one (more workers than cores, e.g. a
// parallel Suite of parallel networks) degrades gracefully.
//
// Determinism note: Dispatch guarantees nothing about the order run is
// invoked in across workers — callers needing a deterministic fold must
// buffer per index and merge in index order after Dispatch returns (see
// network.Network.Step). The return of Dispatch happens-after every
// run call of that generation, so the caller may freely read anything
// the calls wrote.
//
// A Team with workers <= 1 starts no goroutines; Dispatch simply runs
// the loop inline. Close releases the worker goroutines; using a Team
// after Close panics. Teams are not safe for concurrent Dispatch calls.
type Team struct {
	n       int
	workers int
	run     func(i int)

	mu       sync.Mutex
	workCond *sync.Cond // workers wait here for a new generation
	doneCond *sync.Cond // the dispatcher waits here for completion
	closed   bool

	gen  atomic.Uint64 // generation counter; bumped once per Dispatch
	done atomic.Int64  // workers finished with the current generation
}

// teamSpin bounds the busy-wait before a worker or the dispatcher parks
// on its condition variable. Gosched calls are interleaved so a spinning
// goroutine never starves the one it is waiting for on a saturated or
// single-core machine.
const teamSpin = 512

// NewTeam builds a team of run-callers over the index space [0, n).
// workers follows the Workers convention (<= 0 means GOMAXPROCS) and is
// capped at n; a resolved count of 1 means Dispatch runs inline with no
// goroutines.
func NewTeam(n, workers int, run func(i int)) *Team {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	t := &Team{n: n, workers: workers, run: run}
	t.workCond = sync.NewCond(&t.mu)
	t.doneCond = sync.NewCond(&t.mu)
	if workers > 1 {
		// Static balanced partition: the first n%workers workers take
		// one extra index.
		base, rem := n/workers, n%workers
		lo := 0
		for w := 0; w < workers; w++ {
			hi := lo + base
			if w < rem {
				hi++
			}
			go t.worker(lo, hi)
			lo = hi
		}
	}
	return t
}

// Workers returns the resolved worker count (>= 1).
func (t *Team) Workers() int { return t.workers }

// Dispatch runs one generation: run(i) for every i in [0, n), across
// the team, returning after all calls complete. With one worker it runs
// the loop inline. It must not be called concurrently with itself or
// with Close, and panics if the team is closed.
func (t *Team) Dispatch() {
	if t.workers <= 1 {
		if t.closed {
			panic("pool: Dispatch on closed Team")
		}
		for i := 0; i < t.n; i++ {
			t.run(i)
		}
		return
	}
	t.done.Store(0)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		panic("pool: Dispatch on closed Team")
	}
	t.gen.Add(1)
	t.workCond.Broadcast()
	t.mu.Unlock()

	want := int64(t.workers)
	for spin := 0; spin < teamSpin; spin++ {
		if t.done.Load() == want {
			return
		}
		if spin%64 == 63 {
			runtime.Gosched()
		}
	}
	t.mu.Lock()
	for t.done.Load() != want {
		t.doneCond.Wait()
	}
	t.mu.Unlock()
}

// Close releases the worker goroutines. Idempotent; nil-safe.
func (t *Team) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.closed = true
	t.workCond.Broadcast()
	t.mu.Unlock()
}

// worker owns indices [lo, hi). It spins briefly for the next
// generation, parks on workCond when none arrives, and signals the
// dispatcher through done (and doneCond, in case the dispatcher parked)
// when it finishes its slice.
func (t *Team) worker(lo, hi int) {
	last := uint64(0)
	for {
		gen, ok := t.await(last)
		if !ok {
			return
		}
		last = gen
		for i := lo; i < hi; i++ {
			t.run(i)
		}
		if t.done.Add(1) == int64(t.workers) {
			// Last finisher: wake the dispatcher if it parked. Taking
			// the mutex serializes with doneCond.Wait, so the wakeup
			// cannot be lost.
			t.mu.Lock()
			t.doneCond.Broadcast()
			t.mu.Unlock()
		}
	}
}

// await blocks until a generation newer than last is dispatched,
// returning it, or returns ok=false once the team is closed.
func (t *Team) await(last uint64) (uint64, bool) {
	for spin := 0; spin < teamSpin; spin++ {
		if g := t.gen.Load(); g != last {
			return g, true
		}
		if spin%64 == 63 {
			runtime.Gosched()
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if g := t.gen.Load(); g != last {
			return g, true
		}
		if t.closed {
			return 0, false
		}
		t.workCond.Wait()
	}
}
