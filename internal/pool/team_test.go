package pool

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestTeamCoversIndexSpace: every Dispatch generation calls run exactly
// once per index, at every worker count (including workers > n, capped,
// and the inline workers <= 1 path). The static-partition contract means
// the plain int counters need no locking.
func TestTeamCoversIndexSpace(t *testing.T) {
	for _, n := range []int{1, 5, 16, 37} {
		for _, workers := range []int{1, 2, 3, 7, 64} {
			counts := make([]int, n)
			team := NewTeam(n, workers, func(i int) { counts[i]++ })
			const gens = 3
			for g := 0; g < gens; g++ {
				team.Dispatch()
			}
			team.Close()
			for i, c := range counts {
				if c != gens {
					t.Errorf("n=%d workers=%d: index %d ran %d times, want %d",
						n, workers, i, c, gens)
				}
			}
		}
	}
}

// TestTeamManyGenerations hammers the generation handshake: thousands of
// back-to-back dispatches exercise the spin fast path, and the paced
// tail (sleeps longer than any spin window) forces workers to park on
// and wake from the condition variable.
func TestTeamManyGenerations(t *testing.T) {
	var total atomic.Int64
	team := NewTeam(8, 4, func(i int) { total.Add(int64(i) + 1) })
	defer team.Close()
	const fast, paced = 2000, 5
	for g := 0; g < fast; g++ {
		team.Dispatch()
	}
	for g := 0; g < paced; g++ {
		time.Sleep(2 * time.Millisecond) // everyone parks
		team.Dispatch()
	}
	perGen := int64(8 * 9 / 2)
	if got, want := total.Load(), perGen*(fast+paced); got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
}

func TestTeamWorkersResolution(t *testing.T) {
	if got := NewTeam(4, 9, func(int) {}).Workers(); got != 4 {
		t.Errorf("workers capped at n: got %d, want 4", got)
	}
	if got := NewTeam(4, 1, func(int) {}).Workers(); got != 1 {
		t.Errorf("explicit serial: got %d, want 1", got)
	}
	if got := NewTeam(16, 0, func(int) {}).Workers(); got < 1 || got > 16 {
		t.Errorf("workers=0 resolved to %d, want within [1, 16]", got)
	}
}

func TestTeamCloseIdempotentNilSafe(t *testing.T) {
	team := NewTeam(4, 2, func(int) {})
	team.Close()
	team.Close()
	var nilTeam *Team
	nilTeam.Close()
}

func TestTeamDispatchAfterClosePanics(t *testing.T) {
	for _, workers := range []int{1, 3} {
		team := NewTeam(4, workers, func(int) {})
		team.Dispatch()
		team.Close()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("workers=%d: Dispatch after Close did not panic", workers)
				}
			}()
			team.Dispatch()
		}()
	}
}
