// Package prof wires the standard runtime/pprof file profiles into the
// CLIs: a -cpuprofile/-memprofile pair handed to Start, a deferred
// Stop. It exists so earmac-bench and earmac-sim expose identical
// profiling knobs without duplicating the file/handle bookkeeping.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Session holds the open CPU-profile file (if any) and the pending
// heap-profile path between Start and Stop.
type Session struct {
	cpuFile *os.File
	memPath string
}

// Start begins CPU profiling to cpuPath and remembers memPath for Stop;
// either path may be empty to skip that profile. On error nothing is
// left running.
func Start(cpuPath, memPath string) (*Session, error) {
	s := &Session{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
		s.cpuFile = f
	}
	return s, nil
}

// Stop ends the CPU profile and writes the heap profile, if either was
// requested. It is safe to call exactly once, typically deferred right
// after Start.
func (s *Session) Stop() error {
	var first error
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := s.cpuFile.Close(); err != nil && first == nil {
			first = err
		}
		s.cpuFile = nil
	}
	if s.memPath != "" {
		f, err := os.Create(s.memPath)
		if err != nil {
			if first == nil {
				first = err
			}
		} else {
			runtime.GC() // flush recently freed objects out of the live-heap profile
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("write heap profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		s.memPath = ""
	}
	return first
}
