// Package ratio implements exact rational arithmetic on int64 numerators
// and denominators. Injection rates such as ρ = (k−1)/(n−1) and the
// leaky-bucket credit β + ρ·t must be tracked exactly over millions of
// rounds; floating point drifts, so the adversary framework and all
// thresholds use this package instead.
package ratio

import (
	"fmt"
	"math"
)

// Rat is an exact rational number. The zero value is 0/1. Rats are always
// stored reduced, with a positive denominator.
type Rat struct {
	n, d int64
}

// New returns the reduced rational n/d. It panics if d == 0.
func New(n, d int64) Rat {
	if d == 0 {
		panic("ratio: zero denominator")
	}
	if d < 0 {
		n, d = -n, -d
	}
	g := gcd(abs(n), d)
	if g > 1 {
		n /= g
		d /= g
	}
	return Rat{n, d}
}

// FromInt returns the rational x/1.
func FromInt(x int64) Rat { return Rat{x, 1} }

// Zero is the rational 0.
func Zero() Rat { return Rat{0, 1} }

// One is the rational 1.
func One() Rat { return Rat{1, 1} }

// Num returns the reduced numerator (sign-carrying).
func (r Rat) Num() int64 { return r.n }

// Den returns the reduced denominator (always positive; 1 for the zero
// value).
func (r Rat) Den() int64 {
	if r.d == 0 {
		return 1
	}
	return r.d
}

func (r Rat) norm() Rat {
	if r.d == 0 {
		return Rat{r.n, 1}
	}
	return r
}

// Add returns r + o.
func (r Rat) Add(o Rat) Rat {
	r, o = r.norm(), o.norm()
	g := gcd(r.d, o.d)
	ld := r.d / g
	return New(mustMul(r.n, o.d/g)+mustMul(o.n, ld), mustMul(ld, o.d))
}

// Sub returns r − o.
func (r Rat) Sub(o Rat) Rat { return r.Add(o.Neg()) }

// Neg returns −r.
func (r Rat) Neg() Rat { r = r.norm(); return Rat{-r.n, r.d} }

// Mul returns r × o.
func (r Rat) Mul(o Rat) Rat {
	r, o = r.norm(), o.norm()
	g1 := gcd(abs(r.n), o.d)
	g2 := gcd(abs(o.n), r.d)
	return New(mustMul(r.n/g1, o.n/g2), mustMul(r.d/g2, o.d/g1))
}

// MulInt returns r × x.
func (r Rat) MulInt(x int64) Rat { return r.Mul(FromInt(x)) }

// Div returns r ÷ o. It panics if o is zero.
func (r Rat) Div(o Rat) Rat {
	o = o.norm()
	if o.n == 0 {
		panic("ratio: division by zero")
	}
	return r.Mul(Rat{o.d, o.n}.canon())
}

func (r Rat) canon() Rat {
	if r.d < 0 {
		return Rat{-r.n, -r.d}
	}
	return r
}

// Cmp compares r and o, returning −1, 0, or +1.
func (r Rat) Cmp(o Rat) int {
	d := r.Sub(o)
	switch {
	case d.n < 0:
		return -1
	case d.n > 0:
		return 1
	default:
		return 0
	}
}

// Less reports r < o.
func (r Rat) Less(o Rat) bool { return r.Cmp(o) < 0 }

// Leq reports r ≤ o.
func (r Rat) Leq(o Rat) bool { return r.Cmp(o) <= 0 }

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.norm().n == 0 }

// Sign returns −1, 0, or +1.
func (r Rat) Sign() int {
	switch n := r.norm().n; {
	case n < 0:
		return -1
	case n > 0:
		return 1
	default:
		return 0
	}
}

// Floor returns ⌊r⌋ as an integer.
func (r Rat) Floor() int64 {
	r = r.norm()
	q := r.n / r.d
	if r.n%r.d != 0 && r.n < 0 {
		q--
	}
	return q
}

// Ceil returns ⌈r⌉ as an integer.
func (r Rat) Ceil() int64 {
	r = r.norm()
	q := r.n / r.d
	if r.n%r.d != 0 && r.n > 0 {
		q++
	}
	return q
}

// Min returns the smaller of r and o.
func (r Rat) Min(o Rat) Rat {
	if r.Leq(o) {
		return r.norm()
	}
	return o.norm()
}

// Float64 returns the nearest float64 (for reporting only).
func (r Rat) Float64() float64 {
	r = r.norm()
	return float64(r.n) / float64(r.d)
}

func (r Rat) String() string {
	r = r.norm()
	if r.d == 1 {
		return fmt.Sprintf("%d", r.n)
	}
	return fmt.Sprintf("%d/%d", r.n, r.d)
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// mustMul multiplies with an overflow check; rationals in this simulator
// stay far below the int64 range, so overflow indicates a bug.
func mustMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) {
		panic(fmt.Sprintf("ratio: int64 overflow multiplying %d × %d", a, b))
	}
	return p
}
