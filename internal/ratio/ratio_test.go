package ratio

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestNewReduces(t *testing.T) {
	cases := []struct {
		n, d       int64
		wantN      int64
		wantD      int64
		wantString string
	}{
		{1, 2, 1, 2, "1/2"},
		{2, 4, 1, 2, "1/2"},
		{-2, 4, -1, 2, "-1/2"},
		{2, -4, -1, 2, "-1/2"},
		{-2, -4, 1, 2, "1/2"},
		{0, 5, 0, 1, "0"},
		{6, 3, 2, 1, "2"},
	}
	for _, c := range cases {
		r := New(c.n, c.d)
		if r.Num() != c.wantN || r.Den() != c.wantD {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.n, c.d, r.Num(), r.Den(), c.wantN, c.wantD)
		}
		if r.String() != c.wantString {
			t.Errorf("New(%d,%d).String() = %q, want %q", c.n, c.d, r.String(), c.wantString)
		}
	}
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(1,0) did not panic")
		}
	}()
	New(1, 0)
}

func TestZeroValueIsUsable(t *testing.T) {
	var r Rat
	if !r.IsZero() || r.Floor() != 0 || r.Den() != 1 {
		t.Errorf("zero value misbehaves: %v floor=%d den=%d", r, r.Floor(), r.Den())
	}
	if got := r.Add(One()); got.Cmp(One()) != 0 {
		t.Errorf("0+1 = %v", got)
	}
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		r          Rat
		floor, cei int64
	}{
		{New(7, 2), 3, 4},
		{New(-7, 2), -4, -3},
		{New(4, 2), 2, 2},
		{New(-4, 2), -2, -2},
		{New(0, 3), 0, 0},
		{New(1, 3), 0, 1},
		{New(-1, 3), -1, 0},
	}
	for _, c := range cases {
		if got := c.r.Floor(); got != c.floor {
			t.Errorf("%v.Floor() = %d, want %d", c.r, got, c.floor)
		}
		if got := c.r.Ceil(); got != c.cei {
			t.Errorf("%v.Ceil() = %d, want %d", c.r, got, c.cei)
		}
	}
}

func TestComparisons(t *testing.T) {
	half, third := New(1, 2), New(1, 3)
	if !third.Less(half) || half.Less(third) {
		t.Error("1/3 < 1/2 failed")
	}
	if !half.Leq(half) {
		t.Error("1/2 ≤ 1/2 failed")
	}
	if half.Cmp(New(2, 4)) != 0 {
		t.Error("1/2 == 2/4 failed")
	}
	if New(-1, 2).Sign() != -1 || Zero().Sign() != 0 || half.Sign() != 1 {
		t.Error("Sign failed")
	}
}

func TestMinDivMulInt(t *testing.T) {
	if got := New(3, 4).Min(New(2, 3)); got.Cmp(New(2, 3)) != 0 {
		t.Errorf("Min = %v", got)
	}
	if got := New(1, 2).Div(New(1, 4)); got.Cmp(FromInt(2)) != 0 {
		t.Errorf("(1/2)/(1/4) = %v", got)
	}
	if got := New(1, 3).MulInt(6); got.Cmp(FromInt(2)) != 0 {
		t.Errorf("(1/3)*6 = %v", got)
	}
	if got := New(1, 2).Div(New(-1, 4)); got.Cmp(FromInt(-2)) != 0 {
		t.Errorf("(1/2)/(-1/4) = %v", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("division by zero did not panic")
		}
	}()
	One().Div(Zero())
}

// Property: all arithmetic agrees with math/big on small operands.
func TestArithmeticAgainstBigRat(t *testing.T) {
	toBig := func(r Rat) *big.Rat { return big.NewRat(r.Num(), r.Den()) }
	mk := func(n int16, d uint8) Rat { return New(int64(n), int64(d%100)+1) }
	f := func(n1 int16, d1 uint8, n2 int16, d2 uint8) bool {
		a, b := mk(n1, d1), mk(n2, d2)
		ba, bb := toBig(a), toBig(b)
		if toBig(a.Add(b)).Cmp(new(big.Rat).Add(ba, bb)) != 0 {
			return false
		}
		if toBig(a.Sub(b)).Cmp(new(big.Rat).Sub(ba, bb)) != 0 {
			return false
		}
		if toBig(a.Mul(b)).Cmp(new(big.Rat).Mul(ba, bb)) != 0 {
			return false
		}
		if a.Cmp(b) != ba.Cmp(bb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Floor(r) ≤ r < Floor(r)+1.
func TestFloorProperty(t *testing.T) {
	f := func(n int32, d uint16) bool {
		r := New(int64(n), int64(d)+1)
		fl := FromInt(r.Floor())
		return fl.Leq(r) && r.Less(fl.Add(One()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: results are always reduced (gcd(num, den) == 1) with positive
// denominator.
func TestAlwaysReduced(t *testing.T) {
	f := func(n1 int16, d1 uint8, n2 int16, d2 uint8) bool {
		a := New(int64(n1), int64(d1)+1)
		b := New(int64(n2), int64(d2)+1)
		for _, r := range []Rat{a.Add(b), a.Sub(b), a.Mul(b)} {
			if r.Den() <= 0 {
				return false
			}
			if g := gcd(abs(r.Num()), r.Den()); r.Num() != 0 && g != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64(t *testing.T) {
	if got := New(1, 2).Float64(); got != 0.5 {
		t.Errorf("Float64 = %v", got)
	}
}

func TestLargeAccumulationStaysExact(t *testing.T) {
	// Simulates the leaky-bucket: add 99/100 ten thousand times and check
	// against the closed form.
	rho := New(99, 100)
	acc := Zero()
	for i := 0; i < 10000; i++ {
		acc = acc.Add(rho)
	}
	if acc.Cmp(New(990000, 100)) != 0 {
		t.Errorf("accumulated %v, want 9900", acc)
	}
}
