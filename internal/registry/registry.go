// Package registry is the self-registration point for routing algorithms.
// Each algorithm package registers a builder plus declarative metadata —
// the energy cap, the paper's taxonomy flags, and the valid (n, k) ranges
// — from an init function, so the set of available algorithms is derived
// from what is actually linked in, and capability questions ("which
// algorithms are plain-packet?", "is k = 5 valid here?") can be answered
// without instantiating a system.
//
// The package also defines the typed configuration errors shared by the
// registries, the public façade, and the experiment harness; every
// validation failure wraps one of them so callers can errors.Is.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"earmac/internal/core"
)

// Typed configuration errors. Validation failures anywhere in the module
// wrap exactly one of these.
var (
	ErrUnknownAlgorithm = errors.New("unknown algorithm")
	ErrUnknownPattern   = errors.New("unknown pattern")
	ErrBadRate          = errors.New("bad injection rate")
	ErrBadBurst         = errors.New("bad burstiness")
	ErrBadSize          = errors.New("bad system size")
	ErrBadCap           = errors.New("bad energy cap parameter")
	ErrBadRounds        = errors.New("bad horizon")
	ErrBadStation       = errors.New("bad station index")
	ErrBadTrace         = errors.New("bad trace")
	ErrBadTopology      = errors.New("bad topology")
	ErrConflict         = errors.New("conflicting options")
)

// AlgorithmMeta declares an algorithm's capabilities in the paper's
// taxonomy, plus the parameter ranges its builder accepts. All fields are
// static — consulting them never instantiates a system.
type AlgorithmMeta struct {
	// Summary is a one-line description.
	Summary string `json:"summary"`
	// Theorem names the paper result(s) backing the algorithm.
	Theorem string `json:"theorem,omitempty"`
	// EnergyCap is the fixed number of simultaneously-on stations; 0 when
	// the cap is parameterized (UsesK) or the whole system (CapIsN).
	EnergyCap int `json:"energy_cap,omitempty"`
	// UsesK marks the k-parameterized algorithms, whose cap is the k
	// argument.
	UsesK bool `json:"uses_k,omitempty"`
	// CapIsN marks the uncapped baselines that keep every station on.
	CapIsN bool `json:"cap_is_n,omitempty"`
	// PlainPacket / Direct / Oblivious mirror core.AlgorithmInfo.
	PlainPacket bool `json:"plain_packet,omitempty"`
	Direct      bool `json:"direct,omitempty"`
	Oblivious   bool `json:"oblivious,omitempty"`
	// MinN/MaxN bound the system size (MaxN 0 = unbounded).
	MinN int `json:"min_n"`
	MaxN int `json:"max_n,omitempty"`
	// MinK is the smallest accepted k (0 when !UsesK).
	MinK int `json:"min_k,omitempty"`
	// KStrict rejects k > n; when false the builder clamps over-range k to
	// a feasible value instead (k-cycle, k-clique).
	KStrict bool `json:"k_strict,omitempty"`
	// Tolerant marks algorithms that stay correct under adverse channel
	// feedback they did not cause: collision rounds not of their own
	// making (jamming, outages) and listens suppressed by duty-cycling.
	// The façade only allows jam/outage/duty-cycle configurations on
	// tolerant algorithms — the paper's token-schedule algorithms build
	// hard invariants on undisturbed feedback and would corrupt.
	Tolerant bool `json:"tolerant,omitempty"`
}

// CapFor returns the energy cap a (n, k) instance would declare.
func (m AlgorithmMeta) CapFor(n, k int) int {
	switch {
	case m.UsesK:
		return k
	case m.CapIsN:
		return n
	default:
		return m.EnergyCap
	}
}

// CheckNK validates the parameters against the declared ranges. The
// returned errors wrap ErrBadSize / ErrBadCap. Builders may impose further
// constraints (e.g. k-subsets caps C(n,k)); CheckNK is the part decidable
// from metadata alone.
func (m AlgorithmMeta) CheckNK(name string, n, k int) error {
	if n < m.MinN {
		return fmt.Errorf("%s: %w: need n >= %d, got %d", name, ErrBadSize, m.MinN, n)
	}
	if m.MaxN > 0 && n > m.MaxN {
		return fmt.Errorf("%s: %w: need n <= %d, got %d", name, ErrBadSize, m.MaxN, n)
	}
	if m.UsesK {
		if k < m.MinK {
			return fmt.Errorf("%s: %w: need k >= %d, got %d", name, ErrBadCap, m.MinK, k)
		}
		if m.KStrict && k > n {
			return fmt.Errorf("%s: %w: need k <= n = %d, got %d", name, ErrBadCap, n, k)
		}
	}
	return nil
}

// Builder constructs a system for n stations; k is the energy-cap
// parameter, ignored by algorithms with a fixed cap.
type Builder func(n, k int) (*core.System, error)

// Algorithm is one registry entry.
type Algorithm struct {
	Name string `json:"name"`
	AlgorithmMeta
	build Builder
}

var (
	mu   sync.RWMutex
	algs = make(map[string]Algorithm)
)

// RegisterAlgorithm makes an algorithm available under the given name.
// It is intended to be called from init functions and panics on a nil
// builder, an empty name, or a duplicate registration — all programmer
// errors.
func RegisterAlgorithm(name string, meta AlgorithmMeta, build Builder) {
	if name == "" {
		panic("registry: RegisterAlgorithm with empty name")
	}
	if build == nil {
		panic("registry: RegisterAlgorithm with nil builder for " + name)
	}
	if meta.MinN < 2 {
		meta.MinN = 2
	}
	if meta.UsesK && meta.MinK == 0 {
		meta.MinK = 2
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := algs[name]; dup {
		panic("registry: duplicate algorithm " + name)
	}
	algs[name] = Algorithm{Name: name, AlgorithmMeta: meta, build: build}
}

// Build constructs a system by algorithm name.
func Build(name string, n, k int) (*core.System, error) {
	a, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("registry: %w %q (have %v)", ErrUnknownAlgorithm, name, Algorithms())
	}
	return a.build(n, k)
}

// Lookup returns the registry entry for one algorithm.
func Lookup(name string) (Algorithm, bool) {
	mu.RLock()
	defer mu.RUnlock()
	a, ok := algs[name]
	return a, ok
}

// Algorithms lists the registered algorithm names, sorted.
func Algorithms() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(algs))
	for n := range algs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every registry entry, sorted by name — the enumeration
// callers filter on metadata (e.g. all oblivious algorithms, all caps
// valid at a given n).
func All() []Algorithm {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Algorithm, 0, len(algs))
	for _, a := range algs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
