package registry

import (
	"errors"
	"testing"

	"earmac/internal/core"
)

func testBuilder(n, k int) (*core.System, error) { return nil, nil }

func TestRegisterAndLookup(t *testing.T) {
	RegisterAlgorithm("test-alg", AlgorithmMeta{Summary: "s", EnergyCap: 2}, testBuilder)
	a, ok := Lookup("test-alg")
	if !ok || a.Name != "test-alg" || a.EnergyCap != 2 {
		t.Fatalf("lookup: %+v %v", a, ok)
	}
	if a.MinN != 2 {
		t.Errorf("MinN not defaulted: %d", a.MinN)
	}
	found := false
	for _, name := range Algorithms() {
		if name == "test-alg" {
			found = true
		}
	}
	if !found {
		t.Error("registered algorithm missing from enumeration")
	}
	found = false
	for _, e := range All() {
		if e.Name == "test-alg" && e.Summary == "s" {
			found = true
		}
	}
	if !found {
		t.Error("registered algorithm missing from All()")
	}
}

func TestRegisterPanicsOnAbuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	RegisterAlgorithm("test-dup", AlgorithmMeta{}, testBuilder)
	mustPanic("duplicate", func() { RegisterAlgorithm("test-dup", AlgorithmMeta{}, testBuilder) })
	mustPanic("empty name", func() { RegisterAlgorithm("", AlgorithmMeta{}, testBuilder) })
	mustPanic("nil builder", func() { RegisterAlgorithm("test-nil", AlgorithmMeta{}, nil) })
}

func TestBuildUnknownAlgorithm(t *testing.T) {
	_, err := Build("no-such", 4, 2)
	if !errors.Is(err, ErrUnknownAlgorithm) {
		t.Errorf("err = %v", err)
	}
}

func TestCapFor(t *testing.T) {
	if got := (AlgorithmMeta{EnergyCap: 3}).CapFor(10, 5); got != 3 {
		t.Errorf("fixed cap = %d", got)
	}
	if got := (AlgorithmMeta{UsesK: true}).CapFor(10, 5); got != 5 {
		t.Errorf("k cap = %d", got)
	}
	if got := (AlgorithmMeta{CapIsN: true}).CapFor(10, 5); got != 10 {
		t.Errorf("n cap = %d", got)
	}
}

func TestCheckNK(t *testing.T) {
	m := AlgorithmMeta{MinN: 3, MaxN: 64, UsesK: true, MinK: 2, KStrict: true}
	if err := m.CheckNK("x", 6, 3); err != nil {
		t.Errorf("valid rejected: %v", err)
	}
	if err := m.CheckNK("x", 2, 3); !errors.Is(err, ErrBadSize) {
		t.Errorf("small n: %v", err)
	}
	if err := m.CheckNK("x", 65, 3); !errors.Is(err, ErrBadSize) {
		t.Errorf("big n: %v", err)
	}
	if err := m.CheckNK("x", 6, 1); !errors.Is(err, ErrBadCap) {
		t.Errorf("small k: %v", err)
	}
	if err := m.CheckNK("x", 6, 7); !errors.Is(err, ErrBadCap) {
		t.Errorf("k > n strict: %v", err)
	}
	lenientK := AlgorithmMeta{MinN: 3, UsesK: true, MinK: 2}
	if err := lenientK.CheckNK("x", 6, 9); err != nil {
		t.Errorf("clamping algorithm rejected k > n: %v", err)
	}
}
