// Package report defines the measurement report shared by the public
// façade, the Suite runner, and the Table 1 experiment harness — one JSON
// schema for every tool that emits results.
package report

import (
	"encoding/json"
	"fmt"
	"math"

	"earmac/internal/core"
	"earmac/internal/metrics"
)

// CanonicalJSON fixes the one byte representation the serving tier
// caches, serves, and merges for a report-shaped value: compact
// json.Marshal plus a trailing newline. The result cache stores these
// exact bytes and the cluster coordinator assembles its SuiteReport
// from them, which is what makes the byte-identical guarantees
// (cache hit == first run; distributed run == single-process run)
// checkable with cmp rather than with semantic comparison.
func CanonicalJSON(v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		// Unreachable for Report/SuiteReport: they contain only
		// marshalable field types.
		panic("report: canonical encoding: " + err.Error())
	}
	return append(raw, '\n')
}

// Channel is one channel's slice of a network report (internal/network).
// Injected counts everything entering the channel's simulator — entries
// plus relay arrivals — Delivered counts hop deliveries on the channel,
// Relayed the deliveries forwarded onward to a further channel, and the
// latency figure is per-hop; the end-to-end view lives in the enclosing
// Report.
type Channel struct {
	Channel         int     `json:"channel"`
	Stations        int     `json:"stations"`
	Injected        int64   `json:"injected"`
	Delivered       int64   `json:"delivered"`
	Relayed         int64   `json:"relayed"`
	MaxQueue        int64   `json:"max_queue"`
	MeanEnergy      float64 `json:"mean_energy"`
	MeanLatency     float64 `json:"mean_latency"`
	HeardRounds     int64   `json:"heard_rounds"`
	SilentRounds    int64   `json:"silent_rounds"`
	CollisionRounds int64   `json:"collision_rounds"`
	// Disruption figures (ISSUE 8); omitted when zero so undisrupted
	// reports keep their committed byte representation.
	JammedRounds int64 `json:"jammed_rounds,omitempty"`
	OutageRounds int64 `json:"outage_rounds,omitempty"`
	Dropped      int64 `json:"dropped,omitempty"`
}

// Report holds the measurements of one simulation. For a network of
// channels (Topology set) the top-level Injected/Delivered/latency
// figures are end-to-end, queue and energy figures are network totals,
// the channel-utilization counters are channel sums, and PerChannel
// breaks the run down per contention domain.
type Report struct {
	Algorithm   string `json:"algorithm"`
	N           int    `json:"n"`
	Topology    string `json:"topology,omitempty"`
	Channels    int    `json:"channels,omitempty"`
	EnergyCap   int    `json:"energy_cap"`
	PlainPacket bool   `json:"plain_packet"`
	Direct      bool   `json:"direct"`
	Oblivious   bool   `json:"oblivious"`

	Rounds    int64 `json:"rounds"`
	Injected  int64 `json:"injected"`
	Delivered int64 `json:"delivered"`
	Pending   int64 `json:"pending"`

	MaxQueue    int64   `json:"max_queue"`
	FinalQueue  int64   `json:"final_queue"`
	QueueSlope  float64 `json:"queue_slope"`
	GrowthRatio float64 `json:"growth_ratio"`
	Stable      bool    `json:"stable"`
	// QueueImbalance is the largest per-station queue peak relative to
	// the mean peak (1 = balanced; large = one station absorbed the load).
	QueueImbalance float64 `json:"queue_imbalance"`

	MaxLatency  int64   `json:"max_latency"`
	MeanLatency float64 `json:"mean_latency"`
	P50Latency  int64   `json:"p50_latency"` // histogram upper bound
	P99Latency  int64   `json:"p99_latency"` // histogram upper bound

	MeanEnergy float64 `json:"mean_energy"`
	MaxEnergy  int64   `json:"max_energy"`

	HeardRounds     int64 `json:"heard_rounds"`
	SilentRounds    int64 `json:"silent_rounds"`
	CollisionRounds int64 `json:"collision_rounds"`
	LightRounds     int64 `json:"light_rounds"`
	ControlBits     int64 `json:"control_bits"`

	// Disruption and duty-cycling figures (ISSUE 8): channel-rounds
	// jammed / in outage, packets dead mid-route, and cumulative
	// duty-suppressed station-rounds. Omitted when zero, so reports of
	// undisrupted runs keep their committed byte representation.
	JammedRounds int64 `json:"jammed_rounds,omitempty"`
	OutageRounds int64 `json:"outage_rounds,omitempty"`
	Dropped      int64 `json:"dropped,omitempty"`
	SleepRounds  int64 `json:"sleep_rounds,omitempty"`

	// SplitRho/SplitBeta surface the *effective* per-channel entry
	// budget on network runs (network.SplitType: ρ/C with the burst
	// floored at 1) as exact fractions, so sweep rows aren't mislabeled
	// with the nominal budget when β < C.
	SplitRho  string `json:"split_rho,omitempty"`
	SplitBeta string `json:"split_beta,omitempty"`

	PerChannel []Channel `json:"per_channel,omitempty"`

	Violations []string `json:"violations,omitempty"`
}

// FromTracker assembles a Report from a (possibly mid-run) tracker. An
// infinite growth ratio (traffic only in the late window) is clamped to
// MaxFloat64 so reports stay JSON-encodable.
func FromTracker(info core.AlgorithmInfo, n int, tr *metrics.Tracker) Report {
	growth := tr.GrowthRatio()
	if math.IsInf(growth, 1) {
		growth = math.MaxFloat64
	}
	return Report{
		Algorithm:   info.Name,
		N:           n,
		EnergyCap:   info.EnergyCap,
		PlainPacket: info.PlainPacket,
		Direct:      info.Direct,
		Oblivious:   info.Oblivious,

		Rounds:    tr.Rounds,
		Injected:  tr.Injected,
		Delivered: tr.Delivered,
		Pending:   tr.Pending(),

		MaxQueue:       tr.MaxQueue,
		FinalQueue:     tr.FinalQueue,
		QueueSlope:     tr.QueueSlope(),
		GrowthRatio:    growth,
		Stable:         tr.LooksStable(),
		QueueImbalance: tr.QueueImbalance(),

		MaxLatency:  tr.MaxLatency,
		MeanLatency: tr.MeanLatency(),
		P50Latency:  tr.LatencyPercentile(0.5),
		P99Latency:  tr.LatencyPercentile(0.99),

		MeanEnergy: tr.MeanEnergy(),
		MaxEnergy:  tr.MaxEnergy,

		HeardRounds:     tr.HeardRounds,
		SilentRounds:    tr.SilentRounds,
		CollisionRounds: tr.CollisionRounds,
		LightRounds:     tr.LightRounds,
		ControlBits:     tr.ControlBits,

		JammedRounds: tr.JammedRounds,
		OutageRounds: tr.OutageRounds,
		Dropped:      tr.Dropped,

		Violations: tr.Violations,
	}
}

// Summary renders a human-readable digest of the report.
func (r Report) Summary() string {
	caps := ""
	if r.PlainPacket {
		caps += " plain-packet"
	}
	if r.Direct {
		caps += " direct"
	}
	if r.Oblivious {
		caps += " oblivious"
	}
	s := fmt.Sprintf("%s (n=%d, cap %d,%s)\n", r.Algorithm, r.N, r.EnergyCap, caps)
	if r.Topology != "" {
		s += fmt.Sprintf("  network: %s topology, %d channels × %d stations (end-to-end figures below)\n",
			r.Topology, r.Channels, r.N)
		for _, c := range r.PerChannel {
			s += fmt.Sprintf("    channel %d: injected %d, delivered %d, relayed %d, max queue %d, mean energy %.2f\n",
				c.Channel, c.Injected, c.Delivered, c.Relayed, c.MaxQueue, c.MeanEnergy)
		}
	}
	s += fmt.Sprintf("  rounds %d: injected %d, delivered %d, pending %d\n",
		r.Rounds, r.Injected, r.Delivered, r.Pending)
	s += fmt.Sprintf("  queue: max %d, final %d, slope %.5f pkt/round → %s\n",
		r.MaxQueue, r.FinalQueue, r.QueueSlope, stability(r.Stable))
	s += fmt.Sprintf("  latency: max %d, mean %.1f, p50 ≤ %d, p99 ≤ %d\n",
		r.MaxLatency, r.MeanLatency, r.P50Latency, r.P99Latency)
	s += fmt.Sprintf("  energy: mean %.2f on-stations/round (cap %d, peak %d)\n",
		r.MeanEnergy, r.EnergyCap, r.MaxEnergy)
	s += fmt.Sprintf("  channel: %d heard (%d light), %d silent, %d collisions, %d control bits\n",
		r.HeardRounds, r.LightRounds, r.SilentRounds, r.CollisionRounds, r.ControlBits)
	if r.JammedRounds+r.OutageRounds+r.Dropped+r.SleepRounds > 0 {
		s += fmt.Sprintf("  disruption: %d jammed, %d outage channel-rounds, %d packets dropped, %d sleep station-rounds\n",
			r.JammedRounds, r.OutageRounds, r.Dropped, r.SleepRounds)
	}
	if r.SplitRho != "" {
		s += fmt.Sprintf("  effective per-channel entry budget: (ρ=%s, β=%s)\n", r.SplitRho, r.SplitBeta)
	}
	if len(r.Violations) > 0 {
		s += fmt.Sprintf("  VIOLATIONS: %d (first: %s)\n", len(r.Violations), r.Violations[0])
	}
	return s
}

func stability(ok bool) string {
	if ok {
		return "stable"
	}
	return "UNSTABLE"
}
