// Package scenario turns workloads into data. It supplies the three
// pieces the hand-written injection patterns lack:
//
//   - Seeded stochastic patterns (Bernoulli and Poisson-batch injection)
//     whose per-round volume is sampled from a PRG and then clipped
//     online by the adversary's integer leaky bucket, so every sampled
//     run provably respects the (ρ, β) contract while still exercising
//     the randomized workloads the paper's guarantees quantify over.
//   - Phase schedules (Phased) that compose any registered patterns into
//     a time-varying scenario — quiet → burst → sustained-ρ — either
//     cycling or holding the final phase for the rest of the run.
//   - A versioned, schema-stable JSONL trace format (see trace.go) that
//     records the injection stream of any run and replays it bit-for-bit
//     on both the fast and the checked simulator paths.
//
// The stochastic patterns register themselves ("bernoulli",
// "poisson-batch", "quiet") next to the built-ins, so they are available
// to the façade Config, Suite grids, and every CLI by name.
package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"earmac/internal/adversary"
	"earmac/internal/core"
)

// Quiet injects nothing; the leaky bucket sits at full credit β, so the
// phase following a quiet one opens with the largest admissible burst.
// It is the canonical first segment of a phased scenario.
func Quiet() adversary.Pattern { return quietPat{} }

type quietPat struct{}

// Draw implements adversary.Pattern.
func (quietPat) Draw(round int64, budget int) []core.Injection { return nil }

// DrawAppend implements adversary.BufferedPattern.
func (quietPat) DrawAppend(round int64, budget int, buf []core.Injection) []core.Injection {
	return buf
}

// NextDrawRound implements adversary.PatternSkipper: a quiet phase
// never draws, so the quiescence engine skips straight across it.
func (quietPat) NextDrawRound(from int64) int64 { return -1 }

// Bernoulli injects, each round, one packet with probability
// p = min(1, pNum/pDen) — sources and destinations uniform over [0, n).
// Rounds on which the bucket has no whole credit forfeit their draw, so
// with p = ρ the realized rate sits somewhat below ρ (the credit
// random-walks against the cap β) and every sampled run is admissible
// by construction.
func Bernoulli(n int, seed, pNum, pDen int64) adversary.Pattern {
	if pNum > pDen {
		pNum = pDen
	}
	rng := rand.New(rand.NewSource(seed))
	return adversary.AppendFunc(func(round int64, budget int, buf []core.Injection) []core.Injection {
		if rng.Int63n(pDen) < pNum {
			buf = append(buf, core.Injection{Station: rng.Intn(n), Dest: rng.Intn(n)})
		}
		return buf
	})
}

// PoissonBatch samples, each round, a batch of K ~ Poisson(λ) packets
// with λ = lNum/lDen and uniform sources and destinations. Unlike
// Bernoulli it produces multi-packet rounds (batches), so it stresses
// burst handling; batches exceeding the bucket's remaining budget are
// clipped online, which keeps every run admissible and caps any single
// round at ⌊ρ + β⌋ packets as the model requires.
func PoissonBatch(n int, seed, lNum, lDen int64) adversary.Pattern {
	rng := rand.New(rand.NewSource(seed))
	// Knuth's product-of-uniforms sampler; λ stays small (≤ ρ ≤ 1 in
	// practice), so the expected number of draws per round is ~1 + λ.
	thresh := math.Exp(-float64(lNum) / float64(lDen))
	return adversary.AppendFunc(func(round int64, budget int, buf []core.Injection) []core.Injection {
		k := 0
		for p := rng.Float64(); p > thresh; p *= rng.Float64() {
			k++
		}
		if k > budget {
			k = budget
		}
		for i := 0; i < k; i++ {
			buf = append(buf, core.Injection{Station: rng.Intn(n), Dest: rng.Intn(n)})
		}
		return buf
	})
}

// Segment is one phase of a schedule: a pattern active for Rounds
// consecutive rounds. Rounds must be positive, except on the final
// segment where 0 means "for the rest of the run".
type Segment struct {
	Pattern adversary.Pattern
	Rounds  int64
}

// Phased composes patterns into a time-varying schedule. When the final
// segment is open-ended (Rounds == 0) the schedule runs each phase once
// and then holds the last; otherwise it cycles with period equal to the
// total length. Inner patterns always receive the global round number,
// so round-periodic patterns (bursty, diurnal) keep their own phase.
type Phased struct {
	pats   []adversary.Pattern
	ends   []int64 // cumulative end round per segment; -1 = open-ended
	period int64   // cycle length; 0 when the last segment is open-ended
}

// NewPhased validates and assembles a phase schedule.
func NewPhased(segs []Segment) (*Phased, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("scenario: empty phase schedule")
	}
	p := &Phased{
		pats: make([]adversary.Pattern, len(segs)),
		ends: make([]int64, len(segs)),
	}
	var cum int64
	for i, s := range segs {
		if s.Pattern == nil {
			return nil, fmt.Errorf("scenario: phase %d has a nil pattern", i)
		}
		p.pats[i] = s.Pattern
		switch {
		case s.Rounds > 0:
			cum += s.Rounds
			p.ends[i] = cum
		case s.Rounds == 0 && i == len(segs)-1:
			p.ends[i] = -1
		default:
			return nil, fmt.Errorf("scenario: phase %d has %d rounds; only the last phase may be open-ended", i, s.Rounds)
		}
	}
	if p.ends[len(segs)-1] != -1 {
		p.period = cum
	}
	return p, nil
}

// Draw implements adversary.Pattern.
func (p *Phased) Draw(round int64, budget int) []core.Injection {
	return p.DrawAppend(round, budget, nil)
}

// DrawAppend implements adversary.BufferedPattern: it dispatches to the
// segment active at round, scanning the (short) segment list — no
// allocation, so phased scenarios stay on the simulator's fast path.
func (p *Phased) DrawAppend(round int64, budget int, buf []core.Injection) []core.Injection {
	r := round
	if p.period > 0 {
		r %= p.period
	}
	for i, end := range p.ends {
		if end < 0 || r < end {
			return adversary.DrawAppend(p.pats[i], round, budget, buf)
		}
	}
	return buf // open-ended schedules always match the last segment
}

// segmentAt locates the segment active at global round r, returning
// its index and the global round its current occurrence ends at (-1
// for the open-ended final segment).
func (p *Phased) segmentAt(r int64) (int, int64) {
	local := r
	var base int64
	if p.period > 0 {
		base = r - r%p.period
		local = r % p.period
	}
	for i, end := range p.ends {
		if end < 0 {
			return i, -1
		}
		if local < end {
			return i, base + end
		}
	}
	// Unreachable: a cycling schedule has local < period = ends[last],
	// a non-cycling one ends with -1.
	return len(p.ends) - 1, -1
}

// NextDrawRound implements adversary.PatternSkipper: it walks the
// schedule from the segment containing from, querying each segment's
// pattern once, for at most one full pass. Segments whose pattern has
// no skip support answer with their own start (a stochastic phase pins
// the horizon, preserving its per-round RNG draws); if a full pass
// yields nothing the next unexamined boundary is returned — a
// conservative-early answer, which the contract allows.
func (p *Phased) NextDrawRound(from int64) int64 {
	r := from
	never := true
	for hops := 0; hops <= len(p.pats); hops++ {
		i, end := p.segmentAt(r)
		nr := adversary.NextDraw(p.pats[i], r)
		if nr >= 0 {
			never = false
			if end < 0 || nr < end {
				return nr
			}
		}
		if end < 0 {
			// Open-ended final segment that never draws again.
			return -1
		}
		r = end
	}
	if never {
		return -1
	}
	return r
}

// rateOf resolves the rate a stochastic builder targets: the contracted
// ρ when the caller supplied it, 1/2 otherwise.
func rateOf(p adversary.PatternParams) (int64, int64) {
	if p.RhoNum > 0 && p.RhoDen > 0 {
		return p.RhoNum, p.RhoDen
	}
	return 1, 2
}

// The scenario patterns register next to the built-ins; linking this
// package (the façade always does) makes them available by name.
func init() {
	adversary.RegisterPattern("quiet", adversary.PatternMeta{
		Summary: "injects nothing; bucket credit accrues for the next phase",
	}, func(p adversary.PatternParams) (adversary.Pattern, error) {
		return Quiet(), nil
	})
	adversary.RegisterPattern("bernoulli", adversary.PatternMeta{
		Summary:    "one packet per round with probability ρ, uniform endpoints, bucket-clipped",
		Randomized: true,
		Stochastic: true,
	}, func(p adversary.PatternParams) (adversary.Pattern, error) {
		num, den := rateOf(p)
		return Bernoulli(p.N, p.Seed, num, den), nil
	})
	adversary.RegisterPattern("poisson-batch", adversary.PatternMeta{
		Summary:    "Poisson(ρ) batch per round, uniform endpoints, bucket-clipped",
		Randomized: true,
		Stochastic: true,
	}, func(p adversary.PatternParams) (adversary.Pattern, error) {
		num, den := rateOf(p)
		return PoissonBatch(p.N, p.Seed, num, den), nil
	})
}
