package scenario

import (
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/core"
)

// collect runs a pattern under a (ρ, β) adversary for the given number
// of rounds and returns the per-round injections.
func collect(t *testing.T, typ adversary.Type, pat adversary.Pattern, rounds int64) [][]core.Injection {
	t.Helper()
	adv := adversary.New(typ, pat)
	out := make([][]core.Injection, rounds)
	var buf []core.Injection
	for r := int64(0); r < rounds; r++ {
		buf = adv.InjectAppend(r, buf[:0])
		out[r] = append([]core.Injection(nil), buf...)
	}
	return out
}

func flatten(rounds [][]core.Injection) []core.Injection {
	var out []core.Injection
	for _, injs := range rounds {
		out = append(out, injs...)
	}
	return out
}

func TestQuietInjectsNothing(t *testing.T) {
	rounds := collect(t, adversary.T(1, 1, 4), Quiet(), 1000)
	if got := flatten(rounds); len(got) != 0 {
		t.Fatalf("quiet pattern injected %d packets", len(got))
	}
}

func TestBernoulliRateAndDeterminism(t *testing.T) {
	const rounds = 30000
	typ := adversary.T(1, 3, 2)
	a := flatten(collect(t, typ, Bernoulli(6, 42, 1, 3), rounds))
	b := flatten(collect(t, typ, Bernoulli(6, 42, 1, 3), rounds))
	if len(a) != len(b) {
		t.Fatalf("same seed, different volume: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at injection %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Mean rate tracks p = 1/3 from below (empty-bucket rounds forfeit
	// their draw): admissible, and not degenerately thinned.
	mean := float64(len(a)) / rounds
	if mean < 0.24 || mean > 1.0/3+0.01 {
		t.Errorf("bernoulli(1/3) realized rate %.4f, want within (0.24, 0.343)", mean)
	}
	c := flatten(collect(t, typ, Bernoulli(6, 43, 1, 3), rounds))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced an identical injection stream")
	}
	for _, in := range a {
		if in.Station < 0 || in.Station >= 6 || in.Dest < 0 || in.Dest >= 6 {
			t.Fatalf("out-of-range injection %+v", in)
		}
	}
}

func TestPoissonBatchClippedByBucket(t *testing.T) {
	const rounds = 20000
	typ := adversary.T(1, 2, 2) // ⌊ρ + β⌋ = 2 packets max per round
	perRound := collect(t, typ, PoissonBatch(5, 7, 1, 2), rounds)
	var total int
	for r, injs := range perRound {
		if len(injs) > 2 {
			t.Fatalf("round %d injected %d > ⌊ρ+β⌋ = 2", r, len(injs))
		}
		total += len(injs)
	}
	mean := float64(total) / rounds
	if mean < 0.35 || mean > 0.51 {
		t.Errorf("poisson(1/2) realized rate %.4f, want within (0.35, 0.51) — below λ, bucket-clipped", mean)
	}
	// The stream as a whole must be admissible — re-check through the
	// bucket via the trace validator.
	tr := &Trace{}
	for r, injs := range perRound {
		if len(injs) == 0 {
			continue
		}
		ev := Event{Round: int64(r)}
		for _, in := range injs {
			ev.Injs = append(ev.Injs, [2]int{in.Station, in.Dest})
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := CheckAdmissible(tr, typ); err != nil {
		t.Fatalf("sampled stream violates its own contract: %v", err)
	}
}

func TestPhasedOpenEnded(t *testing.T) {
	ph, err := NewPhased([]Segment{
		{Pattern: Quiet(), Rounds: 100},
		{Pattern: adversary.SingleTarget(0, 1), Rounds: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	perRound := collect(t, adversary.T(1, 1, 1), ph, 300)
	for r := 0; r < 100; r++ {
		if len(perRound[r]) != 0 {
			t.Fatalf("round %d: quiet phase injected %v", r, perRound[r])
		}
	}
	for r := 100; r < 300; r++ {
		if len(perRound[r]) == 0 {
			t.Fatalf("round %d: open-ended single-target phase injected nothing", r)
		}
		for _, in := range perRound[r] {
			if in.Station != 0 || in.Dest != 1 {
				t.Fatalf("round %d: wrong injection %+v", r, in)
			}
		}
	}
}

func TestPhasedCycles(t *testing.T) {
	ph, err := NewPhased([]Segment{
		{Pattern: Quiet(), Rounds: 50},
		{Pattern: adversary.SingleTarget(2, 3), Rounds: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	perRound := collect(t, adversary.T(1, 1, 1), ph, 400)
	for r := 0; r < 400; r++ {
		inQuiet := (r/50)%2 == 0
		if inQuiet && len(perRound[r]) != 0 {
			t.Fatalf("round %d of a quiet phase injected %v", r, perRound[r])
		}
		if !inQuiet && len(perRound[r]) == 0 {
			t.Fatalf("round %d of an active phase injected nothing", r)
		}
	}
}

func TestNewPhasedRejects(t *testing.T) {
	if _, err := NewPhased(nil); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := NewPhased([]Segment{{Pattern: nil, Rounds: 10}}); err == nil {
		t.Error("nil pattern accepted")
	}
	if _, err := NewPhased([]Segment{
		{Pattern: Quiet(), Rounds: 0},
		{Pattern: Quiet(), Rounds: 10},
	}); err == nil {
		t.Error("open-ended non-final phase accepted")
	}
	if _, err := NewPhased([]Segment{{Pattern: Quiet(), Rounds: -3}}); err == nil {
		t.Error("negative phase length accepted")
	}
}

func TestStochasticPatternsRegistered(t *testing.T) {
	for _, name := range []string{"bernoulli", "poisson-batch", "quiet"} {
		e, ok := adversary.PatternInfo(name)
		if !ok {
			t.Fatalf("pattern %q not registered", name)
		}
		if name != "quiet" && (!e.Randomized || !e.Stochastic) {
			t.Errorf("pattern %q should be marked randomized+stochastic, got %+v", name, e.PatternMeta)
		}
		p, err := adversary.BuildPattern(name, adversary.PatternParams{N: 4, Seed: 1, RhoNum: 1, RhoDen: 2})
		if err != nil || p == nil {
			t.Errorf("building %q: %v", name, err)
		}
	}
}
