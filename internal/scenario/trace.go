package scenario

// The trace format: a versioned, schema-stable JSONL encoding of one
// run's injection stream, sufficient to re-execute the run bit-for-bit
// (every algorithm in the repository is deterministic given its
// injections, and randomized patterns are seeded).
//
// Layout, one JSON object per line:
//
//	{"earmac_trace":1,"n":6,"rounds":2000,"config":{...}}   header
//	{"r":17,"i":[[0,3],[2,5]]}                              one event per
//	{"r":19,"i":[[4,1]]}                                    injecting round
//	{"final":{"injected":123,"counters":{...}}}             footer
//
// Version 2 extends the format to networks of channels
// (internal/network): the header carries the channel count, station
// coordinates are global, and each event names the entry channel it
// belongs to (omitted when 0), so one round may carry one event per
// injecting channel:
//
//	{"earmac_trace":2,"n":5,"rounds":3000,"channels":3,"config":{...}}
//	{"r":17,"i":[[0,11]]}                                   channel 0
//	{"r":17,"c":2,"i":[[12,3],[14,1]]}                      channel 2
//	{"final":{"injected":123,"counters":{...}}}
//
// Versioning rules: the "earmac_trace" field doubles as the format
// version; decoders reject any version they do not know, and reject
// version-2 constructs (a channel id) inside a version-1 trace. Within
// a version, unknown fields are ignored on read and never emitted on
// write, so fields may be *added* by bumping the version while old
// decoders fail loudly instead of misreading. Events are strictly
// increasing by (round, channel); the footer, when present, is the last
// line and pins the run's final flat counters so replays can be checked
// bit-identical. Encoders emit version 1 for single-channel recordings
// — byte-compatible with every previously committed trace — and
// version 2 exactly when the header declares channels.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/metrics"
	"earmac/internal/registry"
)

// TraceVersion is the newest format version this package writes;
// ReadTrace additionally accepts TraceVersionLegacy. Encoders pick the
// version from the header: single-channel recordings (Channels == 0)
// stay on version 1, network recordings use version 2.
const (
	TraceVersion       = 2
	TraceVersionLegacy = 1
)

// Header is the first line of a trace.
type Header struct {
	// Version is the trace format version (the "earmac_trace" field).
	Version int `json:"earmac_trace"`
	// N is the system size the trace was recorded against: stations per
	// channel (the whole system, when single-channel).
	N int `json:"n"`
	// Rounds is the recorded horizon.
	Rounds int64 `json:"rounds"`
	// Channels is the channel count of a network recording; 0 marks a
	// single-channel trace (and selects format version 1 on write).
	Channels int `json:"channels,omitempty"`
	// Config is the recording façade Config, verbatim; its schema is
	// owned by the caller (package earmac), so this package stays
	// independent of the façade.
	Config json.RawMessage `json:"config,omitempty"`
}

// Event is one channel's injections for one round, as [station, dest]
// pairs — global station ids in a network trace, plain ids otherwise.
// Channel is always 0 in version-1 traces.
type Event struct {
	Round   int64    `json:"r"`
	Channel int      `json:"c,omitempty"`
	Injs    [][2]int `json:"i"`
}

// Footer pins the totals of the recorded run.
type Footer struct {
	// Injected is the total number of recorded injections.
	Injected int64 `json:"injected"`
	// Counters is the run's final flat counter block; replaying the
	// trace must reproduce it bit-identically on either simulator path.
	Counters *metrics.Counters `json:"counters,omitempty"`
}

// Trace is a fully-decoded trace. Footer is nil when the recording was
// cut short before the footer was written.
type Trace struct {
	Header Header
	Events []Event
	Footer *Footer
}

// footerLine is the wire shape of the footer line.
type footerLine struct {
	Final *Footer `json:"final"`
}

// Encoder streams a trace to a writer: header at construction, one
// event line per injecting round, footer at Close. Errors are sticky
// and surfaced by Close.
type Encoder struct {
	bw       *bufio.Writer
	scratch  []byte
	injected int64
	err      error
}

// NewEncoder writes the header line and returns a streaming encoder.
// The header's Version is forced to the version its Channels field
// selects: 1 for single-channel recordings, 2 for networks.
func NewEncoder(w io.Writer, h Header) *Encoder {
	e := &Encoder{bw: bufio.NewWriter(w)}
	h.Version = TraceVersionLegacy
	if h.Channels > 0 {
		h.Version = TraceVersion
	}
	line, err := json.Marshal(h)
	if err != nil {
		e.err = fmt.Errorf("scenario: encoding trace header: %w", err)
		return e
	}
	e.writeLine(line)
	return e
}

func (e *Encoder) writeLine(line []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.bw.Write(line); err != nil {
		e.err = err
		return
	}
	if err := e.bw.WriteByte('\n'); err != nil {
		e.err = err
	}
}

// appendEventLine serializes one event line {"r":..,"c":..,"i":[[s,d],...]}
// into b ("c" omitted for channel 0); pair yields the i-th [station,
// dest]. The single serializer keeps live recordings (Encoder.Round,
// Encoder.ChannelRound) and re-encodings (Write) byte-identical by
// construction.
func appendEventLine(b []byte, round int64, ch, n int, pair func(int) (int, int)) []byte {
	b = append(b, `{"r":`...)
	b = strconv.AppendInt(b, round, 10)
	if ch != 0 {
		b = append(b, `,"c":`...)
		b = strconv.AppendInt(b, int64(ch), 10)
	}
	b = append(b, `,"i":[`...)
	for i := 0; i < n; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		s, d := pair(i)
		b = append(b, '[')
		b = strconv.AppendInt(b, int64(s), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(d), 10)
		b = append(b, ']')
	}
	return append(b, "]}"...)
}

// Round records one round's injections. Rounds with no injections cost
// nothing and leave no line. The injections slice may be reused by the
// caller; Round has the signature of core.Options.InjectionObserver.
func (e *Encoder) Round(round int64, injs []core.Injection) {
	e.ChannelRound(round, 0, injs)
}

// ChannelRound records one channel's injections for one round (the
// network recording hook; global station coordinates). Callers must
// supply events in increasing (round, channel) order, as
// network.Options.Recorder does.
func (e *Encoder) ChannelRound(round int64, ch int, injs []core.Injection) {
	if e.err != nil || len(injs) == 0 {
		return
	}
	e.scratch = appendEventLine(e.scratch[:0], round, ch, len(injs), func(i int) (int, int) {
		return injs[i].Station, injs[i].Dest
	})
	e.writeLine(e.scratch)
	e.injected += int64(len(injs))
}

// Injected returns the number of injections recorded so far.
func (e *Encoder) Injected() int64 { return e.injected }

// Close writes the footer (with the run's final counters, which may be
// nil) and flushes. It returns the first error the encoder hit.
func (e *Encoder) Close(c *metrics.Counters) error {
	if e.err == nil {
		line, err := json.Marshal(footerLine{Final: &Footer{Injected: e.injected, Counters: c}})
		if err != nil {
			e.err = fmt.Errorf("scenario: encoding trace footer: %w", err)
		} else {
			e.writeLine(line)
		}
	}
	if ferr := e.bw.Flush(); e.err == nil && ferr != nil {
		e.err = ferr
	}
	return e.err
}

// writeVersion picks the version Write re-encodes a trace at: any
// channel dimension forces version 2, a decoded version is otherwise
// preserved, and hand-assembled traces (Version 0) default to legacy.
func writeVersion(t *Trace) int {
	if t.Header.Channels > 0 {
		return TraceVersion
	}
	for _, ev := range t.Events {
		if ev.Channel != 0 {
			return TraceVersion
		}
	}
	if t.Header.Version == TraceVersion {
		return TraceVersion
	}
	return TraceVersionLegacy
}

// Write re-encodes a decoded trace verbatim (events and footer as they
// are, header version preserved). Decode(Write(t)) == t for any t
// returned by ReadTrace.
func Write(w io.Writer, t *Trace) error {
	e := &Encoder{bw: bufio.NewWriter(w)}
	h := t.Header
	h.Version = writeVersion(t)
	line, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("scenario: encoding trace header: %w", err)
	}
	e.writeLine(line)
	for _, ev := range t.Events {
		injs := ev.Injs
		e.scratch = appendEventLine(e.scratch[:0], ev.Round, ev.Channel, len(injs), func(i int) (int, int) {
			return injs[i][0], injs[i][1]
		})
		e.writeLine(e.scratch)
	}
	if t.Footer != nil {
		line, err := json.Marshal(footerLine{Final: t.Footer})
		if err != nil {
			return fmt.Errorf("scenario: encoding trace footer: %w", err)
		}
		e.writeLine(line)
	}
	if ferr := e.bw.Flush(); e.err == nil && ferr != nil {
		e.err = ferr
	}
	return e.err
}

// probeLine distinguishes event and footer lines by field presence.
type probeLine struct {
	Round   *int64   `json:"r"`
	Channel *int     `json:"c"`
	Injs    [][2]int `json:"i"`
	Final   *Footer  `json:"final"`
}

// ReadTrace decodes a whole trace. It fails loudly — wrapping
// registry.ErrBadTrace — on an unknown version, a malformed line,
// non-increasing event rounds, or content after the footer; it never
// panics on malformed input.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	t := &Trace{}
	sawHeader := false
	lineNo := 0
	for {
		line, err := br.ReadBytes('\n')
		if len(line) == 0 && err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("scenario: %w: reading line %d: %v", registry.ErrBadTrace, lineNo+1, err)
		}
		lineNo++
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			if err == io.EOF {
				break
			}
			continue
		}
		switch {
		case !sawHeader:
			if uerr := json.Unmarshal(line, &t.Header); uerr != nil {
				return nil, fmt.Errorf("scenario: %w: header: %v", registry.ErrBadTrace, uerr)
			}
			if t.Header.Version != TraceVersion && t.Header.Version != TraceVersionLegacy {
				return nil, fmt.Errorf("scenario: %w: unsupported trace version %d (this build reads %d and %d)",
					registry.ErrBadTrace, t.Header.Version, TraceVersionLegacy, TraceVersion)
			}
			// Normalize the raw config to json.Marshal's form (compact,
			// HTML-escaped) so decode ∘ encode is the identity: Write
			// re-marshals the header, which would otherwise reformat a
			// hand-edited config.
			if len(t.Header.Config) > 0 {
				norm, nerr := json.Marshal(t.Header.Config)
				if nerr != nil {
					return nil, fmt.Errorf("scenario: %w: header config: %v", registry.ErrBadTrace, nerr)
				}
				t.Header.Config = norm
			}
			sawHeader = true
		case t.Footer != nil:
			return nil, fmt.Errorf("scenario: %w: line %d after footer", registry.ErrBadTrace, lineNo)
		default:
			var p probeLine
			if uerr := json.Unmarshal(line, &p); uerr != nil {
				return nil, fmt.Errorf("scenario: %w: line %d: %v", registry.ErrBadTrace, lineNo, uerr)
			}
			switch {
			case p.Final != nil:
				t.Footer = p.Final
			case p.Round != nil:
				if *p.Round < 0 {
					return nil, fmt.Errorf("scenario: %w: line %d: negative round %d", registry.ErrBadTrace, lineNo, *p.Round)
				}
				ch := 0
				if p.Channel != nil {
					if t.Header.Version == TraceVersionLegacy {
						return nil, fmt.Errorf("scenario: %w: line %d: channel id in a version 1 trace",
							registry.ErrBadTrace, lineNo)
					}
					ch = *p.Channel
					if ch < 0 {
						return nil, fmt.Errorf("scenario: %w: line %d: negative channel %d", registry.ErrBadTrace, lineNo, ch)
					}
					if t.Header.Channels > 0 && ch >= t.Header.Channels {
						return nil, fmt.Errorf("scenario: %w: line %d: channel %d outside [0, %d)",
							registry.ErrBadTrace, lineNo, ch, t.Header.Channels)
					}
				}
				if n := len(t.Events); n > 0 {
					prev := t.Events[n-1]
					if *p.Round < prev.Round || (*p.Round == prev.Round && ch <= prev.Channel) {
						return nil, fmt.Errorf("scenario: %w: line %d: event (round %d, channel %d) not after (round %d, channel %d)",
							registry.ErrBadTrace, lineNo, *p.Round, ch, prev.Round, prev.Channel)
					}
				}
				injs := p.Injs
				if len(injs) == 0 {
					injs = nil
				}
				t.Events = append(t.Events, Event{Round: *p.Round, Channel: ch, Injs: injs})
			default:
				return nil, fmt.Errorf("scenario: %w: line %d is neither an event nor a footer", registry.ErrBadTrace, lineNo)
			}
		}
		if err == io.EOF {
			break
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("scenario: %w: empty input", registry.ErrBadTrace)
	}
	return t, nil
}

// Replayer re-executes a recorded single-channel injection stream. It
// implements core.Adversary and core.InjectAppender (so replays run on
// the simulator's allocation-free fast path as well as the checked one)
// and injects exactly what the trace recorded, no bucket and no RNG —
// the recording already proved admissibility. Network traces (version
// 2 with a channel dimension) replay through network.ReplaySource
// instead, which routes each event to its entry channel.
type Replayer struct {
	events []Event
	cur    int
}

// NewReplayer returns a replayer positioned at round 0.
func NewReplayer(t *Trace) *Replayer { return &Replayer{events: t.Events} }

// Inject implements core.Adversary.
func (r *Replayer) Inject(round int64) []core.Injection {
	return r.InjectAppend(round, nil)
}

// InjectAppend implements core.InjectAppender.
func (r *Replayer) InjectAppend(round int64, buf []core.Injection) []core.Injection {
	for r.cur < len(r.events) && r.events[r.cur].Round < round {
		r.cur++ // rounds the driver skipped
	}
	if r.cur < len(r.events) && r.events[r.cur].Round == round {
		for _, p := range r.events[r.cur].Injs {
			buf = append(buf, core.Injection{Station: p[0], Dest: p[1]})
		}
		r.cur++
	}
	return buf
}

// CheckAdmissible verifies that every prefix of a single-channel trace
// respects the (ρ, β) leaky-bucket contract, by driving the same
// integer Bucket the live adversary clips against over the trace's
// rounds (cost is linear in the last event's round number). For a
// network trace, use CheckAdmissibleSplit with the per-channel type.
func CheckAdmissible(t *Trace, typ adversary.Type) error {
	return checkAdmissible(t, typ, 1)
}

// CheckAdmissibleSplit verifies a network trace against the budget-split
// invariant (network.SplitType): every channel's entry stream must
// independently respect the given per-channel (ρ/C, β/C) type, which
// makes the network total respect the global (ρ, β) contract.
func CheckAdmissibleSplit(t *Trace, perChannel adversary.Type, channels int) error {
	return checkAdmissible(t, perChannel, channels)
}

func checkAdmissible(t *Trace, typ adversary.Type, channels int) error {
	if channels < 1 {
		return fmt.Errorf("scenario: admissibility check over %d channels", channels)
	}
	if len(t.Events) == 0 {
		return nil
	}
	buckets := make([]*adversary.Bucket, channels)
	for c := range buckets {
		buckets[c] = adversary.NewBucket(typ)
	}
	budgets := make([]int, channels)
	spent := make([]int, channels)
	last := t.Events[len(t.Events)-1].Round
	i := 0
	for r := int64(0); r <= last; r++ {
		for c, b := range buckets {
			budgets[c] = b.Tick()
			spent[c] = 0
		}
		for i < len(t.Events) && t.Events[i].Round == r {
			ev := t.Events[i]
			i++
			if ev.Channel < 0 || ev.Channel >= channels {
				return fmt.Errorf("scenario: round %d: event channel %d outside [0, %d)",
					r, ev.Channel, channels)
			}
			spent[ev.Channel] += len(ev.Injs)
			if spent[ev.Channel] > budgets[ev.Channel] {
				return fmt.Errorf("scenario: round %d channel %d injects %d packets but the %v bucket allows %d",
					r, ev.Channel, spent[ev.Channel], typ, budgets[ev.Channel])
			}
		}
		for c, b := range buckets {
			b.Spend(spent[c])
		}
	}
	return nil
}
