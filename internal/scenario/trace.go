package scenario

// The trace format: a versioned, schema-stable JSONL encoding of one
// run's injection stream, sufficient to re-execute the run bit-for-bit
// (every algorithm in the repository is deterministic given its
// injections, and randomized patterns are seeded).
//
// Layout, one JSON object per line:
//
//	{"earmac_trace":1,"n":6,"rounds":2000,"config":{...}}   header
//	{"r":17,"i":[[0,3],[2,5]]}                              one event per
//	{"r":19,"i":[[4,1]]}                                    injecting round
//	{"final":{"injected":123,"counters":{...}}}             footer
//
// Version 2 extends the format to networks of channels
// (internal/network): the header carries the channel count, station
// coordinates are global, and each event names the entry channel it
// belongs to (omitted when 0), so one round may carry one event per
// injecting channel:
//
//	{"earmac_trace":2,"n":5,"rounds":3000,"channels":3,"config":{...}}
//	{"r":17,"i":[[0,11]]}                                   channel 0
//	{"r":17,"c":2,"i":[[12,3],[14,1]]}                      channel 2
//	{"final":{"injected":123,"counters":{...}}}
//
// Version 3 extends the format to disrupted and duty-cycled runs: an
// event line may carry a kind ("k") instead of injections — "jam" (the
// jamming adversary spent a unit on this round and channel), "out" (an
// outage window opens here; "d" is its length in rounds), or "sleep"
// (the channel's count of duty-suppressed stations changed to "z").
// Within one (round, channel) the injection event precedes any kinded
// events, and kinds order jam < out < sleep:
//
//	{"earmac_trace":3,"n":6,"rounds":4000,"config":{...}}
//	{"r":17,"i":[[0,3]]}
//	{"r":17,"k":"jam"}
//	{"r":40,"k":"out","d":100}
//	{"r":52,"k":"sleep","z":2}
//	{"final":{"injected":123,"counters":{...}}}
//
// Versioning rules: the "earmac_trace" field doubles as the format
// version; decoders reject any version they do not know, and reject
// newer constructs inside an older version (a channel id in version 1,
// an event kind in versions 1 and 2). Within a version, unknown fields
// are ignored on read and never emitted on write, so fields may be
// *added* by bumping the version while old decoders fail loudly instead
// of misreading. Events are strictly increasing by (round, channel,
// kind); the footer, when present, is the last line and pins the run's
// final flat counters so replays can be checked bit-identical. Encoders
// emit the lowest sufficient version — 1 for single-channel recordings,
// 2 exactly when the header declares channels, 3 only when the caller
// requests it for a disrupted or duty-cycled run — so every previously
// committed trace stays byte-stable.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/metrics"
	"earmac/internal/ratio"
	"earmac/internal/registry"
)

// TraceVersion is the newest format version this package writes;
// ReadTrace additionally accepts the older versions. Encoders pick the
// lowest sufficient version: single-channel recordings (Channels == 0)
// stay on version 1, network recordings use version 2, and version 3 is
// used only when the recording run asked for it (jam/outage/sleep
// events, Header.Version set to TraceVersion by the caller).
const (
	TraceVersion       = 3
	TraceVersionMulti  = 2
	TraceVersionLegacy = 1
)

// Event kinds (trace v3). The empty kind marks an ordinary injection
// event; within one (round, channel) the order is "" < jam < out <
// sleep, matching emission order.
const (
	KindJam    = "jam"
	KindOutage = "out"
	KindSleep  = "sleep"
)

// kindRank orders event kinds within one (round, channel); -1 marks an
// unknown kind.
func kindRank(kind string) int {
	switch kind {
	case "":
		return 0
	case KindJam:
		return 1
	case KindOutage:
		return 2
	case KindSleep:
		return 3
	}
	return -1
}

// Header is the first line of a trace.
type Header struct {
	// Version is the trace format version (the "earmac_trace" field).
	Version int `json:"earmac_trace"`
	// N is the system size the trace was recorded against: stations per
	// channel (the whole system, when single-channel).
	N int `json:"n"`
	// Rounds is the recorded horizon.
	Rounds int64 `json:"rounds"`
	// Channels is the channel count of a network recording; 0 marks a
	// single-channel trace (and selects format version 1 on write).
	Channels int `json:"channels,omitempty"`
	// Config is the recording façade Config, verbatim; its schema is
	// owned by the caller (package earmac), so this package stays
	// independent of the façade.
	Config json.RawMessage `json:"config,omitempty"`
}

// Event is one channel's injections for one round, as [station, dest]
// pairs — global station ids in a network trace, plain ids otherwise.
// Channel is always 0 in version-1 traces. A non-empty Kind (trace v3)
// marks a jam/outage/sleep event instead: Injs is nil, Dur carries an
// outage window's length, and Asleep a sleep transition's new count.
type Event struct {
	Round   int64    `json:"r"`
	Channel int      `json:"c,omitempty"`
	Injs    [][2]int `json:"i"`
	Kind    string   `json:"k,omitempty"`
	Dur     int64    `json:"d,omitempty"`
	Asleep  int      `json:"z,omitempty"`
}

// Footer pins the totals of the recorded run.
type Footer struct {
	// Injected is the total number of recorded injections.
	Injected int64 `json:"injected"`
	// Counters is the run's final flat counter block; replaying the
	// trace must reproduce it bit-identically on either simulator path.
	Counters *metrics.Counters `json:"counters,omitempty"`
}

// Trace is a fully-decoded trace. Footer is nil when the recording was
// cut short before the footer was written.
type Trace struct {
	Header Header
	Events []Event
	Footer *Footer
}

// footerLine is the wire shape of the footer line.
type footerLine struct {
	Final *Footer `json:"final"`
}

// Encoder streams a trace to a writer: header at construction, one
// event line per injecting round, footer at Close. Errors are sticky
// and surfaced by Close.
type Encoder struct {
	bw       *bufio.Writer
	scratch  []byte
	version  int
	injected int64
	err      error
}

// NewEncoder writes the header line and returns a streaming encoder.
// The header's Version is forced to the lowest sufficient version: 1
// for single-channel recordings, 2 for networks — unless the caller set
// it to TraceVersion, which keeps version 3 and unlocks the
// jam/outage/sleep event methods (a disrupted or duty-cycled run).
func NewEncoder(w io.Writer, h Header) *Encoder {
	e := &Encoder{bw: bufio.NewWriter(w)}
	if h.Version != TraceVersion {
		h.Version = TraceVersionLegacy
		if h.Channels > 0 {
			h.Version = TraceVersionMulti
		}
	}
	e.version = h.Version
	line, err := json.Marshal(h)
	if err != nil {
		e.err = fmt.Errorf("scenario: encoding trace header: %w", err)
		return e
	}
	e.writeLine(line)
	return e
}

func (e *Encoder) writeLine(line []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.bw.Write(line); err != nil {
		e.err = err
		return
	}
	if err := e.bw.WriteByte('\n'); err != nil {
		e.err = err
	}
}

// appendEventLine serializes one event line {"r":..,"c":..,"i":[[s,d],...]}
// into b ("c" omitted for channel 0); pair yields the i-th [station,
// dest]. The single serializer keeps live recordings (Encoder.Round,
// Encoder.ChannelRound) and re-encodings (Write) byte-identical by
// construction.
func appendEventLine(b []byte, round int64, ch, n int, pair func(int) (int, int)) []byte {
	b = append(b, `{"r":`...)
	b = strconv.AppendInt(b, round, 10)
	if ch != 0 {
		b = append(b, `,"c":`...)
		b = strconv.AppendInt(b, int64(ch), 10)
	}
	b = append(b, `,"i":[`...)
	for i := 0; i < n; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		s, d := pair(i)
		b = append(b, '[')
		b = strconv.AppendInt(b, int64(s), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(d), 10)
		b = append(b, ']')
	}
	return append(b, "]}"...)
}

// appendKindLine serializes one kinded event line (trace v3):
// {"r":..,"c":..,"k":"..."} plus "d" for outage windows and "z" for
// sleep transitions ("z" is emitted even at 0 — everyone back awake is
// a transition worth recording). Like appendEventLine it is the single
// serializer for both live recordings and re-encodings.
func appendKindLine(b []byte, round int64, ch int, kind string, dur int64, asleep int) []byte {
	b = append(b, `{"r":`...)
	b = strconv.AppendInt(b, round, 10)
	if ch != 0 {
		b = append(b, `,"c":`...)
		b = strconv.AppendInt(b, int64(ch), 10)
	}
	b = append(b, `,"k":"`...)
	b = append(b, kind...)
	b = append(b, '"')
	if kind == KindOutage {
		b = append(b, `,"d":`...)
		b = strconv.AppendInt(b, dur, 10)
	}
	if kind == KindSleep {
		b = append(b, `,"z":`...)
		b = strconv.AppendInt(b, int64(asleep), 10)
	}
	return append(b, '}')
}

// Round records one round's injections. Rounds with no injections cost
// nothing and leave no line. The injections slice may be reused by the
// caller; Round has the signature of core.Options.InjectionObserver.
func (e *Encoder) Round(round int64, injs []core.Injection) {
	e.ChannelRound(round, 0, injs)
}

// ChannelRound records one channel's injections for one round (the
// network recording hook; global station coordinates). Callers must
// supply events in increasing (round, channel) order, as
// network.Options.Recorder does.
func (e *Encoder) ChannelRound(round int64, ch int, injs []core.Injection) {
	if e.err != nil || len(injs) == 0 {
		return
	}
	e.scratch = appendEventLine(e.scratch[:0], round, ch, len(injs), func(i int) (int, int) {
		return injs[i].Station, injs[i].Dest
	})
	e.writeLine(e.scratch)
	e.injected += int64(len(injs))
}

// kindLine writes one kinded event line, guarding the version: only a
// version-3 encoder (NewEncoder with Header.Version = TraceVersion) may
// record disruption events.
func (e *Encoder) kindLine(round int64, ch int, kind string, dur int64, asleep int) {
	if e.err != nil {
		return
	}
	if e.version != TraceVersion {
		e.err = fmt.Errorf("scenario: %q event in a version-%d trace (kinded events need version %d)",
			kind, e.version, TraceVersion)
		return
	}
	e.scratch = appendKindLine(e.scratch[:0], round, ch, kind, dur, asleep)
	e.writeLine(e.scratch)
}

// Jam records a jammed (round, channel). With Outage and Sleep it
// implements the network's EventSink recording hook; callers must emit
// within one (round, channel) in the order injections < jam < outage <
// sleep, as Network.Step's fold and the façade's single-channel hooks
// do by construction.
func (e *Encoder) Jam(round int64, ch int) { e.kindLine(round, ch, KindJam, 0, 0) }

// Outage records an outage window opening at round on ch, lasting the
// given number of rounds.
func (e *Encoder) Outage(round int64, ch int, rounds int64) {
	e.kindLine(round, ch, KindOutage, rounds, 0)
}

// Sleep records a transition of ch's duty-suppressed station count.
func (e *Encoder) Sleep(round int64, ch int, asleep int) {
	e.kindLine(round, ch, KindSleep, 0, asleep)
}

// Injected returns the number of injections recorded so far.
func (e *Encoder) Injected() int64 { return e.injected }

// Close writes the footer (with the run's final counters, which may be
// nil) and flushes. It returns the first error the encoder hit.
func (e *Encoder) Close(c *metrics.Counters) error {
	if e.err == nil {
		line, err := json.Marshal(footerLine{Final: &Footer{Injected: e.injected, Counters: c}})
		if err != nil {
			e.err = fmt.Errorf("scenario: encoding trace footer: %w", err)
		} else {
			e.writeLine(line)
		}
	}
	if ferr := e.bw.Flush(); e.err == nil && ferr != nil {
		e.err = ferr
	}
	return e.err
}

// writeVersion picks the version Write re-encodes a trace at: any
// kinded event forces version 3, any channel dimension forces at least
// version 2, a decoded version is otherwise preserved, and
// hand-assembled traces (Version 0) default to legacy.
func writeVersion(t *Trace) int {
	for _, ev := range t.Events {
		if ev.Kind != "" {
			return TraceVersion
		}
	}
	if t.Header.Version == TraceVersion {
		return TraceVersion
	}
	if t.Header.Channels > 0 {
		return TraceVersionMulti
	}
	for _, ev := range t.Events {
		if ev.Channel != 0 {
			return TraceVersionMulti
		}
	}
	if t.Header.Version == TraceVersionMulti {
		return TraceVersionMulti
	}
	return TraceVersionLegacy
}

// Write re-encodes a decoded trace verbatim (events and footer as they
// are, header version preserved). Decode(Write(t)) == t for any t
// returned by ReadTrace.
func Write(w io.Writer, t *Trace) error {
	e := &Encoder{bw: bufio.NewWriter(w)}
	h := t.Header
	h.Version = writeVersion(t)
	line, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("scenario: encoding trace header: %w", err)
	}
	e.writeLine(line)
	for _, ev := range t.Events {
		if ev.Kind != "" {
			e.scratch = appendKindLine(e.scratch[:0], ev.Round, ev.Channel, ev.Kind, ev.Dur, ev.Asleep)
			e.writeLine(e.scratch)
			continue
		}
		injs := ev.Injs
		e.scratch = appendEventLine(e.scratch[:0], ev.Round, ev.Channel, len(injs), func(i int) (int, int) {
			return injs[i][0], injs[i][1]
		})
		e.writeLine(e.scratch)
	}
	if t.Footer != nil {
		line, err := json.Marshal(footerLine{Final: t.Footer})
		if err != nil {
			return fmt.Errorf("scenario: encoding trace footer: %w", err)
		}
		e.writeLine(line)
	}
	if ferr := e.bw.Flush(); e.err == nil && ferr != nil {
		e.err = ferr
	}
	return e.err
}

// probeLine distinguishes event and footer lines by field presence.
type probeLine struct {
	Round   *int64   `json:"r"`
	Channel *int     `json:"c"`
	Injs    [][2]int `json:"i"`
	Kind    *string  `json:"k"`
	Dur     *int64   `json:"d"`
	Asleep  *int     `json:"z"`
	Final   *Footer  `json:"final"`
}

// ReadTrace decodes a whole trace. It fails loudly — wrapping
// registry.ErrBadTrace — on an unknown version, a malformed line,
// non-increasing event rounds, or content after the footer; it never
// panics on malformed input.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	t := &Trace{}
	sawHeader := false
	lineNo := 0
	for {
		line, err := br.ReadBytes('\n')
		if len(line) == 0 && err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("scenario: %w: reading line %d: %v", registry.ErrBadTrace, lineNo+1, err)
		}
		lineNo++
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			if err == io.EOF {
				break
			}
			continue
		}
		switch {
		case !sawHeader:
			if uerr := json.Unmarshal(line, &t.Header); uerr != nil {
				return nil, fmt.Errorf("scenario: %w: header: %v", registry.ErrBadTrace, uerr)
			}
			if t.Header.Version < TraceVersionLegacy || t.Header.Version > TraceVersion {
				return nil, fmt.Errorf("scenario: %w: unsupported trace version %d (this build reads %d through %d)",
					registry.ErrBadTrace, t.Header.Version, TraceVersionLegacy, TraceVersion)
			}
			// Normalize the raw config to json.Marshal's form (compact,
			// HTML-escaped) so decode ∘ encode is the identity: Write
			// re-marshals the header, which would otherwise reformat a
			// hand-edited config.
			if len(t.Header.Config) > 0 {
				norm, nerr := json.Marshal(t.Header.Config)
				if nerr != nil {
					return nil, fmt.Errorf("scenario: %w: header config: %v", registry.ErrBadTrace, nerr)
				}
				t.Header.Config = norm
			}
			sawHeader = true
		case t.Footer != nil:
			return nil, fmt.Errorf("scenario: %w: line %d after footer", registry.ErrBadTrace, lineNo)
		default:
			var p probeLine
			if uerr := json.Unmarshal(line, &p); uerr != nil {
				return nil, fmt.Errorf("scenario: %w: line %d: %v", registry.ErrBadTrace, lineNo, uerr)
			}
			switch {
			case p.Final != nil:
				t.Footer = p.Final
			case p.Round != nil:
				if *p.Round < 0 {
					return nil, fmt.Errorf("scenario: %w: line %d: negative round %d", registry.ErrBadTrace, lineNo, *p.Round)
				}
				ch := 0
				if p.Channel != nil {
					if t.Header.Version == TraceVersionLegacy {
						return nil, fmt.Errorf("scenario: %w: line %d: channel id in a version 1 trace",
							registry.ErrBadTrace, lineNo)
					}
					ch = *p.Channel
					if ch < 0 {
						return nil, fmt.Errorf("scenario: %w: line %d: negative channel %d", registry.ErrBadTrace, lineNo, ch)
					}
					if t.Header.Channels > 0 && ch >= t.Header.Channels {
						return nil, fmt.Errorf("scenario: %w: line %d: channel %d outside [0, %d)",
							registry.ErrBadTrace, lineNo, ch, t.Header.Channels)
					}
				}
				ev := Event{Round: *p.Round, Channel: ch}
				if p.Kind != nil {
					if t.Header.Version < TraceVersion {
						return nil, fmt.Errorf("scenario: %w: line %d: event kind in a version %d trace (needs version %d)",
							registry.ErrBadTrace, lineNo, t.Header.Version, TraceVersion)
					}
					ev.Kind = *p.Kind
					if kindRank(ev.Kind) <= 0 {
						return nil, fmt.Errorf("scenario: %w: line %d: unknown event kind %q",
							registry.ErrBadTrace, lineNo, ev.Kind)
					}
					if len(p.Injs) > 0 {
						return nil, fmt.Errorf("scenario: %w: line %d: %q event carries injections",
							registry.ErrBadTrace, lineNo, ev.Kind)
					}
				}
				if p.Dur != nil {
					if ev.Kind != KindOutage {
						return nil, fmt.Errorf("scenario: %w: line %d: duration on a %q event", registry.ErrBadTrace, lineNo, ev.Kind)
					}
					if *p.Dur < 1 {
						return nil, fmt.Errorf("scenario: %w: line %d: outage lasting %d rounds", registry.ErrBadTrace, lineNo, *p.Dur)
					}
					ev.Dur = *p.Dur
				} else if ev.Kind == KindOutage {
					return nil, fmt.Errorf("scenario: %w: line %d: outage event without a duration", registry.ErrBadTrace, lineNo)
				}
				if p.Asleep != nil {
					if ev.Kind != KindSleep {
						return nil, fmt.Errorf("scenario: %w: line %d: sleep count on a %q event", registry.ErrBadTrace, lineNo, ev.Kind)
					}
					if *p.Asleep < 0 {
						return nil, fmt.Errorf("scenario: %w: line %d: negative sleep count %d", registry.ErrBadTrace, lineNo, *p.Asleep)
					}
					ev.Asleep = *p.Asleep
				}
				if n := len(t.Events); n > 0 {
					prev := t.Events[n-1]
					if *p.Round < prev.Round || (*p.Round == prev.Round &&
						(ch < prev.Channel || (ch == prev.Channel && kindRank(ev.Kind) <= kindRank(prev.Kind)))) {
						return nil, fmt.Errorf("scenario: %w: line %d: event (round %d, channel %d, kind %q) not after (round %d, channel %d, kind %q)",
							registry.ErrBadTrace, lineNo, *p.Round, ch, ev.Kind, prev.Round, prev.Channel, prev.Kind)
					}
				}
				if ev.Kind == "" {
					ev.Injs = p.Injs
					if len(ev.Injs) == 0 {
						ev.Injs = nil
					}
				}
				t.Events = append(t.Events, ev)
			default:
				return nil, fmt.Errorf("scenario: %w: line %d is neither an event nor a footer", registry.ErrBadTrace, lineNo)
			}
		}
		if err == io.EOF {
			break
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("scenario: %w: empty input", registry.ErrBadTrace)
	}
	return t, nil
}

// Replayer re-executes a recorded single-channel injection stream. It
// implements core.Adversary and core.InjectAppender (so replays run on
// the simulator's allocation-free fast path as well as the checked one)
// and injects exactly what the trace recorded, no bucket and no RNG —
// the recording already proved admissibility. Network traces (version
// 2 with a channel dimension) replay through network.ReplaySource
// instead, which routes each event to its entry channel.
type Replayer struct {
	events []Event
	cur    int
}

// NewReplayer returns a replayer positioned at round 0.
func NewReplayer(t *Trace) *Replayer { return &Replayer{events: t.Events} }

// Inject implements core.Adversary.
func (r *Replayer) Inject(round int64) []core.Injection {
	return r.InjectAppend(round, nil)
}

// InjectAppend implements core.InjectAppender. Kinded events (trace v3)
// are not injections and are skipped; jams replay through the façade's
// jam-replay disruptor, outages and sleep are derived state recomputed
// during the replay.
//
//earmac:hotpath
func (r *Replayer) InjectAppend(round int64, buf []core.Injection) []core.Injection {
	for r.cur < len(r.events) {
		ev := &r.events[r.cur]
		if ev.Round > round {
			break
		}
		if ev.Round == round && ev.Kind == "" {
			for _, p := range ev.Injs {
				buf = append(buf, core.Injection{Station: p[0], Dest: p[1]})
			}
			r.cur++
			break
		}
		r.cur++ // rounds the driver skipped, or a kinded event
	}
	return buf
}

// NextEventRound implements core.EventSkipper: the round of the first
// recorded injection event at or after from — exact, so replays skip
// straight from one recorded event to the next. The scan starts at the
// replay cursor, which InjectAppend keeps near the current round.
func (r *Replayer) NextEventRound(from int64) int64 {
	for i := r.cur; i < len(r.events); i++ {
		ev := &r.events[i]
		if ev.Kind == "" && ev.Round >= from {
			return ev.Round
		}
	}
	return -1
}

// SkipIdle implements core.EventSkipper. The replay cursor self-heals
// over skipped rounds in InjectAppend, so nothing advances here.
func (r *Replayer) SkipIdle(from, to int64) {}

// CheckAdmissible verifies that every prefix of a single-channel trace
// respects the (ρ, β) leaky-bucket contract, by driving the same
// integer Bucket the live adversary clips against over the trace's
// rounds (cost is linear in the last event's round number). For a
// network trace, use CheckAdmissibleSplit with the per-channel type.
func CheckAdmissible(t *Trace, typ adversary.Type) error {
	return checkAdmissible(t, typ, 1)
}

// CheckAdmissibleSplit verifies a network trace against the budget-split
// invariant (network.SplitType): every channel's entry stream must
// independently respect the given per-channel (ρ_c, β_c) type, and the
// network-wide entry stream must respect the *effective* global type
// (ρ_c·C, β_c·C). Note the effective burst: SplitType floors each
// channel's burst at 1, so when the nominal β < C the per-channel audit
// alone does NOT bound the network total by the nominal (ρ, β) — C
// channels bursting 1 each total C > β. The effective type is exactly
// what the per-channel contract implies (for the nominal budget it is
// (ρ, max(β, C))), and it is what reports should surface so sweep rows
// aren't mislabeled with the nominal budget.
func CheckAdmissibleSplit(t *Trace, perChannel adversary.Type, channels int) error {
	if err := checkAdmissible(t, perChannel, channels); err != nil {
		return err
	}
	return checkGlobalAdmissible(t, EffectiveGlobalType(perChannel, channels))
}

// EffectiveGlobalType is the tightest global (ρ, β) the per-channel
// split contract guarantees for the network-wide entry stream:
// (ρ_c·C, β_c·C). For a SplitType'd nominal budget this is
// (ρ, max(β, C)).
func EffectiveGlobalType(perChannel adversary.Type, channels int) adversary.Type {
	c := int64(channels)
	return adversary.Type{
		Rho:  ratio.New(perChannel.Rho.Num()*c, perChannel.Rho.Den()),
		Beta: ratio.New(perChannel.Beta.Num()*c, perChannel.Beta.Den()),
	}
}

// checkGlobalAdmissible drives one bucket over the per-round injection
// totals summed across all channels.
func checkGlobalAdmissible(t *Trace, typ adversary.Type) error {
	if len(t.Events) == 0 {
		return nil
	}
	b := adversary.NewBucket(typ)
	last := t.Events[len(t.Events)-1].Round
	i := 0
	for r := int64(0); r <= last; r++ {
		budget := b.Tick()
		spent := 0
		for i < len(t.Events) && t.Events[i].Round == r {
			spent += len(t.Events[i].Injs)
			i++
			if spent > budget {
				return fmt.Errorf("scenario: round %d: the network-wide entry stream injects %d packets but the effective global %v bucket allows %d",
					r, spent, typ, budget)
			}
		}
		b.Spend(spent)
	}
	return nil
}

// CheckJamAdmissible verifies a trace's recorded jam stream against the
// jamming budget: each jam event costs one unit of a global (ρ_j, β_j)
// bucket, exactly as the live Jammer spends it.
func CheckJamAdmissible(t *Trace, typ adversary.Type) error {
	last := int64(-1)
	for _, ev := range t.Events {
		if ev.Kind == KindJam {
			last = ev.Round
		}
	}
	if last < 0 {
		return nil
	}
	b := adversary.NewBucket(typ)
	i := 0
	for r := int64(0); r <= last; r++ {
		budget := b.Tick()
		spent := 0
		for i < len(t.Events) && t.Events[i].Round == r {
			if t.Events[i].Kind == KindJam {
				spent++
				if spent > budget {
					return fmt.Errorf("scenario: round %d: %d channels jammed but the %v jam bucket allows %d",
						r, spent, typ, budget)
				}
			}
			i++
		}
		b.Spend(spent)
	}
	return nil
}

func checkAdmissible(t *Trace, typ adversary.Type, channels int) error {
	if channels < 1 {
		return fmt.Errorf("scenario: admissibility check over %d channels", channels)
	}
	if len(t.Events) == 0 {
		return nil
	}
	buckets := make([]*adversary.Bucket, channels)
	for c := range buckets {
		buckets[c] = adversary.NewBucket(typ)
	}
	budgets := make([]int, channels)
	spent := make([]int, channels)
	last := t.Events[len(t.Events)-1].Round
	i := 0
	for r := int64(0); r <= last; r++ {
		for c, b := range buckets {
			budgets[c] = b.Tick()
			spent[c] = 0
		}
		for i < len(t.Events) && t.Events[i].Round == r {
			ev := t.Events[i]
			i++
			if ev.Channel < 0 || ev.Channel >= channels {
				return fmt.Errorf("scenario: round %d: event channel %d outside [0, %d)",
					r, ev.Channel, channels)
			}
			spent[ev.Channel] += len(ev.Injs)
			if spent[ev.Channel] > budgets[ev.Channel] {
				return fmt.Errorf("scenario: round %d channel %d injects %d packets but the %v bucket allows %d",
					r, ev.Channel, spent[ev.Channel], typ, budgets[ev.Channel])
			}
		}
		for c, b := range buckets {
			b.Spend(spent[c])
		}
	}
	return nil
}
