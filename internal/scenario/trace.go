package scenario

// The trace format: a versioned, schema-stable JSONL encoding of one
// run's injection stream, sufficient to re-execute the run bit-for-bit
// (every algorithm in the repository is deterministic given its
// injections, and randomized patterns are seeded).
//
// Layout, one JSON object per line:
//
//	{"earmac_trace":1,"n":6,"rounds":2000,"config":{...}}   header
//	{"r":17,"i":[[0,3],[2,5]]}                              one event per
//	{"r":19,"i":[[4,1]]}                                    injecting round
//	{"final":{"injected":123,"counters":{...}}}             footer
//
// Versioning rules: the "earmac_trace" field doubles as the format
// version; decoders reject any version they do not know. Within a
// version, unknown fields are ignored on read and never emitted on
// write, so fields may be *added* by bumping the version while old
// decoders fail loudly instead of misreading. Event rounds are strictly
// increasing; the footer, when present, is the last line and pins the
// run's final flat counters so replays can be checked bit-identical.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/metrics"
	"earmac/internal/registry"
)

// TraceVersion is the format version this package reads and writes.
const TraceVersion = 1

// Header is the first line of a trace.
type Header struct {
	// Version is the trace format version (the "earmac_trace" field).
	Version int `json:"earmac_trace"`
	// N is the system size the trace was recorded against.
	N int `json:"n"`
	// Rounds is the recorded horizon.
	Rounds int64 `json:"rounds"`
	// Config is the recording façade Config, verbatim; its schema is
	// owned by the caller (package earmac), so this package stays
	// independent of the façade.
	Config json.RawMessage `json:"config,omitempty"`
}

// Event is one injecting round: the packets as [station, dest] pairs.
type Event struct {
	Round int64    `json:"r"`
	Injs  [][2]int `json:"i"`
}

// Footer pins the totals of the recorded run.
type Footer struct {
	// Injected is the total number of recorded injections.
	Injected int64 `json:"injected"`
	// Counters is the run's final flat counter block; replaying the
	// trace must reproduce it bit-identically on either simulator path.
	Counters *metrics.Counters `json:"counters,omitempty"`
}

// Trace is a fully-decoded trace. Footer is nil when the recording was
// cut short before the footer was written.
type Trace struct {
	Header Header
	Events []Event
	Footer *Footer
}

// footerLine is the wire shape of the footer line.
type footerLine struct {
	Final *Footer `json:"final"`
}

// Encoder streams a trace to a writer: header at construction, one
// event line per injecting round, footer at Close. Errors are sticky
// and surfaced by Close.
type Encoder struct {
	bw       *bufio.Writer
	scratch  []byte
	injected int64
	err      error
}

// NewEncoder writes the header line and returns a streaming encoder.
// The header's Version is forced to TraceVersion.
func NewEncoder(w io.Writer, h Header) *Encoder {
	e := &Encoder{bw: bufio.NewWriter(w)}
	h.Version = TraceVersion
	line, err := json.Marshal(h)
	if err != nil {
		e.err = fmt.Errorf("scenario: encoding trace header: %w", err)
		return e
	}
	e.writeLine(line)
	return e
}

func (e *Encoder) writeLine(line []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.bw.Write(line); err != nil {
		e.err = err
		return
	}
	if err := e.bw.WriteByte('\n'); err != nil {
		e.err = err
	}
}

// appendEventLine serializes one event line {"r":..,"i":[[s,d],...]}
// into b; pair yields the i-th [station, dest]. The single serializer
// keeps live recordings (Encoder.Round) and re-encodings (Write)
// byte-identical by construction.
func appendEventLine(b []byte, round int64, n int, pair func(int) (int, int)) []byte {
	b = append(b, `{"r":`...)
	b = strconv.AppendInt(b, round, 10)
	b = append(b, `,"i":[`...)
	for i := 0; i < n; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		s, d := pair(i)
		b = append(b, '[')
		b = strconv.AppendInt(b, int64(s), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(d), 10)
		b = append(b, ']')
	}
	return append(b, "]}"...)
}

// Round records one round's injections. Rounds with no injections cost
// nothing and leave no line. The injections slice may be reused by the
// caller; Round has the signature of core.Options.InjectionObserver.
func (e *Encoder) Round(round int64, injs []core.Injection) {
	if e.err != nil || len(injs) == 0 {
		return
	}
	e.scratch = appendEventLine(e.scratch[:0], round, len(injs), func(i int) (int, int) {
		return injs[i].Station, injs[i].Dest
	})
	e.writeLine(e.scratch)
	e.injected += int64(len(injs))
}

// Injected returns the number of injections recorded so far.
func (e *Encoder) Injected() int64 { return e.injected }

// Close writes the footer (with the run's final counters, which may be
// nil) and flushes. It returns the first error the encoder hit.
func (e *Encoder) Close(c *metrics.Counters) error {
	if e.err == nil {
		line, err := json.Marshal(footerLine{Final: &Footer{Injected: e.injected, Counters: c}})
		if err != nil {
			e.err = fmt.Errorf("scenario: encoding trace footer: %w", err)
		} else {
			e.writeLine(line)
		}
	}
	if ferr := e.bw.Flush(); e.err == nil && ferr != nil {
		e.err = ferr
	}
	return e.err
}

// Write re-encodes a decoded trace verbatim (events and footer as they
// are, header forced to TraceVersion). Decode(Write(t)) == t for any t
// returned by ReadTrace.
func Write(w io.Writer, t *Trace) error {
	e := &Encoder{bw: bufio.NewWriter(w)}
	h := t.Header
	h.Version = TraceVersion
	line, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("scenario: encoding trace header: %w", err)
	}
	e.writeLine(line)
	for _, ev := range t.Events {
		injs := ev.Injs
		e.scratch = appendEventLine(e.scratch[:0], ev.Round, len(injs), func(i int) (int, int) {
			return injs[i][0], injs[i][1]
		})
		e.writeLine(e.scratch)
	}
	if t.Footer != nil {
		line, err := json.Marshal(footerLine{Final: t.Footer})
		if err != nil {
			return fmt.Errorf("scenario: encoding trace footer: %w", err)
		}
		e.writeLine(line)
	}
	if ferr := e.bw.Flush(); e.err == nil && ferr != nil {
		e.err = ferr
	}
	return e.err
}

// probeLine distinguishes event and footer lines by field presence.
type probeLine struct {
	Round *int64   `json:"r"`
	Injs  [][2]int `json:"i"`
	Final *Footer  `json:"final"`
}

// ReadTrace decodes a whole trace. It fails loudly — wrapping
// registry.ErrBadTrace — on an unknown version, a malformed line,
// non-increasing event rounds, or content after the footer; it never
// panics on malformed input.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	t := &Trace{}
	sawHeader := false
	lineNo := 0
	for {
		line, err := br.ReadBytes('\n')
		if len(line) == 0 && err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("scenario: %w: reading line %d: %v", registry.ErrBadTrace, lineNo+1, err)
		}
		lineNo++
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			if err == io.EOF {
				break
			}
			continue
		}
		switch {
		case !sawHeader:
			if uerr := json.Unmarshal(line, &t.Header); uerr != nil {
				return nil, fmt.Errorf("scenario: %w: header: %v", registry.ErrBadTrace, uerr)
			}
			if t.Header.Version != TraceVersion {
				return nil, fmt.Errorf("scenario: %w: unsupported trace version %d (this build reads %d)",
					registry.ErrBadTrace, t.Header.Version, TraceVersion)
			}
			// Normalize the raw config to json.Marshal's form (compact,
			// HTML-escaped) so decode ∘ encode is the identity: Write
			// re-marshals the header, which would otherwise reformat a
			// hand-edited config.
			if len(t.Header.Config) > 0 {
				norm, nerr := json.Marshal(t.Header.Config)
				if nerr != nil {
					return nil, fmt.Errorf("scenario: %w: header config: %v", registry.ErrBadTrace, nerr)
				}
				t.Header.Config = norm
			}
			sawHeader = true
		case t.Footer != nil:
			return nil, fmt.Errorf("scenario: %w: line %d after footer", registry.ErrBadTrace, lineNo)
		default:
			var p probeLine
			if uerr := json.Unmarshal(line, &p); uerr != nil {
				return nil, fmt.Errorf("scenario: %w: line %d: %v", registry.ErrBadTrace, lineNo, uerr)
			}
			switch {
			case p.Final != nil:
				t.Footer = p.Final
			case p.Round != nil:
				if *p.Round < 0 {
					return nil, fmt.Errorf("scenario: %w: line %d: negative round %d", registry.ErrBadTrace, lineNo, *p.Round)
				}
				if n := len(t.Events); n > 0 && *p.Round <= t.Events[n-1].Round {
					return nil, fmt.Errorf("scenario: %w: line %d: round %d not after round %d",
						registry.ErrBadTrace, lineNo, *p.Round, t.Events[n-1].Round)
				}
				injs := p.Injs
				if len(injs) == 0 {
					injs = nil
				}
				t.Events = append(t.Events, Event{Round: *p.Round, Injs: injs})
			default:
				return nil, fmt.Errorf("scenario: %w: line %d is neither an event nor a footer", registry.ErrBadTrace, lineNo)
			}
		}
		if err == io.EOF {
			break
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("scenario: %w: empty input", registry.ErrBadTrace)
	}
	return t, nil
}

// Replayer re-executes a recorded injection stream. It implements
// core.Adversary and core.InjectAppender (so replays run on the
// simulator's allocation-free fast path as well as the checked one) and
// injects exactly what the trace recorded, no bucket and no RNG — the
// recording already proved admissibility.
type Replayer struct {
	events []Event
	cur    int
}

// NewReplayer returns a replayer positioned at round 0.
func NewReplayer(t *Trace) *Replayer { return &Replayer{events: t.Events} }

// Inject implements core.Adversary.
func (r *Replayer) Inject(round int64) []core.Injection {
	return r.InjectAppend(round, nil)
}

// InjectAppend implements core.InjectAppender.
func (r *Replayer) InjectAppend(round int64, buf []core.Injection) []core.Injection {
	for r.cur < len(r.events) && r.events[r.cur].Round < round {
		r.cur++ // rounds the driver skipped
	}
	if r.cur < len(r.events) && r.events[r.cur].Round == round {
		for _, p := range r.events[r.cur].Injs {
			buf = append(buf, core.Injection{Station: p[0], Dest: p[1]})
		}
		r.cur++
	}
	return buf
}

// CheckAdmissible verifies that every prefix of the trace respects the
// (ρ, β) leaky-bucket contract, by driving the same integer Bucket the
// live adversary clips against over the trace's rounds (cost is linear
// in the last event's round number).
func CheckAdmissible(t *Trace, typ adversary.Type) error {
	b := adversary.NewBucket(typ)
	next := int64(0)
	for _, ev := range t.Events {
		for ; next < ev.Round; next++ {
			b.Tick()
			b.Spend(0)
		}
		budget := b.Tick()
		if m := len(ev.Injs); m > budget {
			return fmt.Errorf("scenario: round %d injects %d packets but the %v bucket allows %d",
				ev.Round, m, typ, budget)
		}
		b.Spend(len(ev.Injs))
		next = ev.Round + 1
	}
	return nil
}
