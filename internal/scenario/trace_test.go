package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"earmac/internal/adversary"
	"earmac/internal/core"
	"earmac/internal/metrics"
	"earmac/internal/registry"
)

func sampleTrace() *Trace {
	return &Trace{
		Header: Header{Version: TraceVersion, N: 6, Rounds: 100,
			Config: json.RawMessage(`{"algorithm":"orchestra","n":6}`)},
		Events: []Event{
			{Round: 0, Injs: [][2]int{{0, 1}}},
			{Round: 3, Injs: [][2]int{{2, 5}, {1, 4}}},
			{Round: 99, Injs: [][2]int{{5, 0}}},
		},
		Footer: &Footer{Injected: 4, Counters: &metrics.Counters{Rounds: 100, Injected: 4, Delivered: 3}},
	}
}

func TestTraceWriteReadRoundTrip(t *testing.T) {
	want := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestEncoderStream(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, Header{N: 4, Rounds: 50})
	scratch := make([]core.Injection, 0, 4)
	enc.Round(0, append(scratch[:0], core.Injection{Station: 1, Dest: 2}))
	enc.Round(1, nil) // empty rounds leave no line
	enc.Round(7, append(scratch[:0], core.Injection{Station: 0, Dest: 3}, core.Injection{Station: 3, Dest: 0}))
	c := metrics.Counters{Rounds: 50, Injected: 3}
	if err := enc.Close(&c); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.N != 4 || tr.Header.Rounds != 50 || tr.Header.Version != TraceVersionLegacy {
		t.Errorf("bad header %+v", tr.Header)
	}
	wantEvents := []Event{
		{Round: 0, Injs: [][2]int{{1, 2}}},
		{Round: 7, Injs: [][2]int{{0, 3}, {3, 0}}},
	}
	if !reflect.DeepEqual(tr.Events, wantEvents) {
		t.Errorf("events %+v, want %+v", tr.Events, wantEvents)
	}
	if tr.Footer == nil || tr.Footer.Injected != 3 || *tr.Footer.Counters != c {
		t.Errorf("footer %+v", tr.Footer)
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":               "",
		"garbage":             "not json at all\n",
		"wrong version":       `{"earmac_trace":4,"n":4,"rounds":10}` + "\n",
		"channel id in v1":    "{\"earmac_trace\":1,\"n\":4,\"rounds\":10}\n{\"r\":1,\"c\":1,\"i\":[[0,1]]}\n",
		"negative channel":    "{\"earmac_trace\":2,\"n\":4,\"rounds\":10,\"channels\":2}\n{\"r\":1,\"c\":-1,\"i\":[[0,1]]}\n",
		"channel overflow":    "{\"earmac_trace\":2,\"n\":4,\"rounds\":10,\"channels\":2}\n{\"r\":1,\"c\":2,\"i\":[[0,1]]}\n",
		"channel regression":  "{\"earmac_trace\":2,\"n\":4,\"rounds\":10,\"channels\":3}\n{\"r\":1,\"c\":2,\"i\":[[0,1]]}\n{\"r\":1,\"c\":1,\"i\":[[0,1]]}\n",
		"same round+channel":  "{\"earmac_trace\":2,\"n\":4,\"rounds\":10,\"channels\":3}\n{\"r\":1,\"c\":2,\"i\":[[0,1]]}\n{\"r\":1,\"c\":2,\"i\":[[0,1]]}\n",
		"no version":          `{"n":4,"rounds":10}` + "\n",
		"bad event":           "{\"earmac_trace\":1,\"n\":4,\"rounds\":10}\n{\"r\":\"zero\"}\n",
		"unknown line":        "{\"earmac_trace\":1,\"n\":4,\"rounds\":10}\n{\"x\":1}\n",
		"negative round":      "{\"earmac_trace\":1,\"n\":4,\"rounds\":10}\n{\"r\":-1,\"i\":[[0,1]]}\n",
		"non-increasing":      "{\"earmac_trace\":1,\"n\":4,\"rounds\":10}\n{\"r\":5,\"i\":[[0,1]]}\n{\"r\":5,\"i\":[[0,1]]}\n",
		"data after footer":   "{\"earmac_trace\":1,\"n\":4,\"rounds\":10}\n{\"final\":{\"injected\":0}}\n{\"r\":1,\"i\":[[0,1]]}\n",
		"float counter field": "{\"earmac_trace\":1,\"n\":4,\"rounds\":10}\n{\"final\":{\"injected\":0,\"counters\":{\"Rounds\":1.5}}}\n",
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, registry.ErrBadTrace) {
			t.Errorf("%s: error %v does not wrap ErrBadTrace", name, err)
		}
	}
}

// TestReadTraceNormalizesConfig pins decode ∘ encode = id for headers
// whose raw config is not in json.Marshal's form (hand-edited spacing,
// HTML-escapable characters): ReadTrace normalizes, so Write emits the
// same bytes the next decode sees.
func TestReadTraceNormalizesConfig(t *testing.T) {
	in := "{\"earmac_trace\":1,\"n\":4,\"rounds\":10,\"config\":{ \"algorithm\" : \"a<b\" }}\n{\"r\":1,\"i\":[[0,1]]}\n"
	tr, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, tr2) {
		t.Fatalf("decode(encode(x)) != x for a non-canonical config:\nx:  %s\nx': %s",
			tr.Header.Config, tr2.Header.Config)
	}
	var cfg struct {
		Algorithm string `json:"algorithm"`
	}
	if err := json.Unmarshal(tr.Header.Config, &cfg); err != nil || cfg.Algorithm != "a<b" {
		t.Fatalf("normalization corrupted the config: %s (%v)", tr.Header.Config, err)
	}
}

func TestReadTraceToleratesMissingFooter(t *testing.T) {
	in := "{\"earmac_trace\":1,\"n\":4,\"rounds\":10}\n{\"r\":2,\"i\":[[0,1]]}\n"
	tr, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Footer != nil || len(tr.Events) != 1 {
		t.Fatalf("got %+v", tr)
	}
}

func TestReplayerReproducesStream(t *testing.T) {
	tr := sampleTrace()
	r := NewReplayer(tr)
	var buf []core.Injection
	for round := int64(0); round < 100; round++ {
		buf = r.InjectAppend(round, buf[:0])
		var want []core.Injection
		for _, ev := range tr.Events {
			if ev.Round == round {
				for _, p := range ev.Injs {
					want = append(want, core.Injection{Station: p[0], Dest: p[1]})
				}
			}
		}
		if !reflect.DeepEqual(append([]core.Injection(nil), buf...), want) && !(len(buf) == 0 && len(want) == 0) {
			t.Fatalf("round %d: replayed %+v, want %+v", round, buf, want)
		}
	}
}

func TestCheckAdmissible(t *testing.T) {
	typ := adversary.T(1, 2, 1) // budget starts at ⌊1/2+1⌋ = 1
	ok := &Trace{Events: []Event{
		{Round: 0, Injs: [][2]int{{0, 1}}},
		{Round: 2, Injs: [][2]int{{0, 1}}},
		{Round: 4, Injs: [][2]int{{0, 1}}},
	}}
	if err := CheckAdmissible(ok, typ); err != nil {
		t.Errorf("admissible trace rejected: %v", err)
	}
	bad := &Trace{Events: []Event{
		{Round: 0, Injs: [][2]int{{0, 1}, {1, 0}, {2, 0}}}, // 3 > ⌊ρ+β⌋ = 1
	}}
	if err := CheckAdmissible(bad, typ); err == nil {
		t.Error("inadmissible trace accepted")
	}
}

// FuzzTraceRoundTrip asserts the two decoder invariants the format
// promises: malformed input never panics, and any trace the decoder
// accepts re-encodes to an equivalent trace (decode ∘ encode = id).
func FuzzTraceRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("{\"earmac_trace\":1,\"n\":2,\"rounds\":5}\n{\"r\":1,\"i\":[[0,1]]}\n"))
	f.Add([]byte("{\"earmac_trace\":1}\n{\"final\":{\"injected\":0}}\n"))
	f.Add([]byte("{\"earmac_trace\":2}\n"))
	f.Add([]byte("{\"earmac_trace\":2,\"n\":4,\"rounds\":9,\"channels\":3}\n{\"r\":1,\"i\":[[0,5]]}\n{\"r\":1,\"c\":2,\"i\":[[9,1]]}\n{\"final\":{\"injected\":2}}\n"))
	f.Add([]byte("garbage\n{\"r\":1}\n"))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected loudly: fine
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("re-encoding an accepted trace failed: %v", err)
		}
		tr2, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-decoding a written trace failed: %v\ntrace: %s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("decode(encode(x)) != x:\nx:  %+v\nx': %+v", tr, tr2)
		}
	})
}

// TestTraceV2EncoderStream pins the network recording surface: a header
// with a channel dimension selects version 2, ChannelRound emits "c"
// for non-zero channels only, and decode reproduces the stream.
func TestTraceV2EncoderStream(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, Header{N: 4, Rounds: 50, Channels: 3})
	enc.ChannelRound(0, 0, []core.Injection{{Station: 1, Dest: 9}})
	enc.ChannelRound(0, 2, []core.Injection{{Station: 8, Dest: 2}, {Station: 11, Dest: 0}})
	enc.ChannelRound(5, 1, []core.Injection{{Station: 4, Dest: 10}})
	c := metrics.Counters{Rounds: 50, Injected: 4}
	if err := enc.Close(&c); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	if !strings.Contains(raw, `"earmac_trace":2`) || !strings.Contains(raw, `"channels":3`) {
		t.Errorf("header not version 2 with channels:\n%s", raw)
	}
	if strings.Contains(raw, `{"r":0,"c":0`) {
		t.Errorf("channel 0 should omit the c field:\n%s", raw)
	}
	tr, err := ReadTrace(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	wantEvents := []Event{
		{Round: 0, Injs: [][2]int{{1, 9}}},
		{Round: 0, Channel: 2, Injs: [][2]int{{8, 2}, {11, 0}}},
		{Round: 5, Channel: 1, Injs: [][2]int{{4, 10}}},
	}
	if !reflect.DeepEqual(tr.Events, wantEvents) {
		t.Errorf("events %+v, want %+v", tr.Events, wantEvents)
	}
	if tr.Footer == nil || tr.Footer.Injected != 4 {
		t.Errorf("footer %+v", tr.Footer)
	}
	// And Write preserves version 2 bit-for-bit.
	var buf2 bytes.Buffer
	if err := Write(&buf2, tr); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != raw {
		t.Errorf("re-encoding differs:\ngot  %s\nwant %s", buf2.String(), raw)
	}
}

// TestCheckAdmissibleSplit: per-channel budget audit of a v2 stream —
// each channel independently bounded by the split type.
func TestCheckAdmissibleSplit(t *testing.T) {
	// Per-channel type (ρ=1/2, β=1): one packet every other round, burst 1.
	typ := adversary.T(1, 2, 1)
	ok := &Trace{Events: []Event{
		{Round: 0, Channel: 0, Injs: [][2]int{{0, 1}}},
		{Round: 0, Channel: 1, Injs: [][2]int{{4, 5}}},
		{Round: 2, Channel: 0, Injs: [][2]int{{1, 0}}},
	}}
	if err := CheckAdmissibleSplit(ok, typ, 2); err != nil {
		t.Errorf("admissible stream rejected: %v", err)
	}
	// Channel 1 overdraws its round-0 burst (2 > ⌊ρ+β⌋ = 1) even though
	// channel 0 is idle: the split budget must not leak across channels.
	bad := &Trace{Events: []Event{
		{Round: 0, Channel: 1, Injs: [][2]int{{4, 5}, {5, 4}}},
	}}
	if err := CheckAdmissibleSplit(bad, typ, 2); err == nil {
		t.Error("per-channel overdraw accepted")
	}
	// Out-of-range channel fails loudly.
	oob := &Trace{Events: []Event{{Round: 0, Channel: 5, Injs: [][2]int{{0, 1}}}}}
	if err := CheckAdmissibleSplit(oob, typ, 2); err == nil {
		t.Error("out-of-range channel accepted")
	}
}
