// Package sched models the fixed on/off schedules of energy-oblivious
// algorithms. Per the paper (§2), an algorithm is energy-oblivious when it
// determines in advance, for each station and round, whether the station
// is on; it is k-energy-oblivious when at most k stations are on per
// round. The impossibility adversaries of Theorems 6 and 9 are constructed
// directly from these schedules (by double counting station-rounds and
// station-pair-rounds), so the package also provides that analysis.
package sched

import "fmt"

// Schedule is a periodic, statically-known on/off assignment.
type Schedule interface {
	// NumStations returns the system size n.
	NumStations() int
	// Period returns the period after which the schedule repeats.
	Period() int64
	// On reports whether the station is switched on in the given round.
	On(station int, round int64) bool
}

// Func adapts a function to a Schedule.
type Func struct {
	N int
	P int64
	F func(station int, round int64) bool
}

func (f Func) NumStations() int            { return f.N }
func (f Func) Period() int64               { return f.P }
func (f Func) On(st int, round int64) bool { return f.F(st, round%f.P) }

// OnCounts returns, for each station, the number of rounds per period in
// which it is switched on.
func OnCounts(s Schedule) []int64 {
	n := s.NumStations()
	counts := make([]int64, n)
	for t := int64(0); t < s.Period(); t++ {
		for i := 0; i < n; i++ {
			if s.On(i, t) {
				counts[i]++
			}
		}
	}
	return counts
}

// PairCounts returns, for each ordered pair (w, z) with w != z, the number
// of rounds per period in which both are on simultaneously. The diagonal
// holds the per-station on-counts.
func PairCounts(s Schedule) [][]int64 {
	n := s.NumStations()
	counts := make([][]int64, n)
	for i := range counts {
		counts[i] = make([]int64, n)
	}
	on := make([]int, 0, n)
	for t := int64(0); t < s.Period(); t++ {
		on = on[:0]
		for i := 0; i < n; i++ {
			if s.On(i, t) {
				on = append(on, i)
			}
		}
		for _, w := range on {
			for _, z := range on {
				counts[w][z]++
			}
		}
	}
	return counts
}

// MaxSimultaneous returns the maximum number of stations switched on in
// any round of a period — the energy the schedule actually needs.
func MaxSimultaneous(s Schedule) int {
	max := 0
	n := s.NumStations()
	for t := int64(0); t < s.Period(); t++ {
		c := 0
		for i := 0; i < n; i++ {
			if s.On(i, t) {
				c++
			}
		}
		if c > max {
			max = c
		}
	}
	return max
}

// Validate checks that the schedule never exceeds the energy cap.
func Validate(s Schedule, cap int) error {
	n := s.NumStations()
	for t := int64(0); t < s.Period(); t++ {
		c := 0
		for i := 0; i < n; i++ {
			if s.On(i, t) {
				c++
			}
		}
		if c > cap {
			return fmt.Errorf("sched: %d stations on in round %d exceeds cap %d", c, t, cap)
		}
	}
	return nil
}

// MinOnStation returns the station with the fewest on-rounds per period
// (ties broken by smallest name) and its on-count. This is the target the
// Theorem 6 adversary floods: that station can transmit at most
// (k/n)·t packets in t rounds.
func MinOnStation(s Schedule) (station int, onRounds int64) {
	counts := OnCounts(s)
	station, onRounds = 0, counts[0]
	for i, c := range counts {
		if c < onRounds {
			station, onRounds = i, c
		}
	}
	return station, onRounds
}

// MinOnPair returns the ordered pair (w, z), w != z, that is switched on
// together in the fewest rounds per period, and that co-on count. This is
// the pair the Theorem 9 adversary floods (inject at w, addressed to z):
// direct delivery w→z requires both on simultaneously.
func MinOnPair(s Schedule) (w, z int, coOn int64) {
	counts := PairCounts(s)
	n := s.NumStations()
	w, z = 0, 1
	coOn = counts[0][1]
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			if counts[a][b] < coOn {
				w, z, coOn = a, b, counts[a][b]
			}
		}
	}
	return w, z, coOn
}
