package sched

import (
	"testing"
	"testing/quick"
)

// roundRobinPairs: period n, in round t stations t and (t+1) mod n are on.
func roundRobinPairs(n int) Schedule {
	return Func{
		N: n,
		P: int64(n),
		F: func(st int, round int64) bool {
			return int64(st) == round || int64(st) == (round+1)%int64(n)
		},
	}
}

func TestOnCountsRoundRobin(t *testing.T) {
	s := roundRobinPairs(5)
	counts := OnCounts(s)
	for i, c := range counts {
		if c != 2 {
			t.Errorf("station %d on %d rounds, want 2", i, c)
		}
	}
}

func TestMaxSimultaneousAndValidate(t *testing.T) {
	s := roundRobinPairs(4)
	if got := MaxSimultaneous(s); got != 2 {
		t.Errorf("MaxSimultaneous = %d, want 2", got)
	}
	if err := Validate(s, 2); err != nil {
		t.Errorf("Validate(cap 2) = %v", err)
	}
	if err := Validate(s, 1); err == nil {
		t.Error("Validate(cap 1) should fail")
	}
}

func TestPairCounts(t *testing.T) {
	s := roundRobinPairs(4)
	pc := PairCounts(s)
	// Adjacent stations (i, i+1 mod 4) share exactly one round; stations two
	// apart share none.
	if pc[0][1] != 1 || pc[1][0] != 1 {
		t.Errorf("pc[0][1] = %d, pc[1][0] = %d, want 1", pc[0][1], pc[1][0])
	}
	if pc[0][2] != 0 {
		t.Errorf("pc[0][2] = %d, want 0", pc[0][2])
	}
	// Diagonal carries on-counts.
	if pc[2][2] != 2 {
		t.Errorf("pc[2][2] = %d, want 2", pc[2][2])
	}
}

func TestMinOnStation(t *testing.T) {
	// Station 3 is on only once; others at least twice.
	s := Func{N: 4, P: 4, F: func(st int, round int64) bool {
		if st == 3 {
			return round == 0
		}
		return round == int64(st) || round == (int64(st)+1)%4
	}}
	st, c := MinOnStation(s)
	if st != 3 || c != 1 {
		t.Errorf("MinOnStation = (%d, %d), want (3, 1)", st, c)
	}
}

func TestMinOnStationTieBreaksSmallest(t *testing.T) {
	s := Func{N: 3, P: 3, F: func(st int, round int64) bool { return round == 0 }}
	st, c := MinOnStation(s)
	if st != 0 || c != 1 {
		t.Errorf("MinOnStation tie = (%d, %d), want (0, 1)", st, c)
	}
}

func TestMinOnPair(t *testing.T) {
	// Stations {0,1} on in rounds 0-2, {2,3} only in round 3.
	// Cross pairs (0,2) etc. are never on together.
	s := Func{N: 4, P: 4, F: func(st int, round int64) bool {
		if round < 3 {
			return st == 0 || st == 1
		}
		return st == 2 || st == 3
	}}
	w, z, c := MinOnPair(s)
	if c != 0 {
		t.Errorf("MinOnPair co-on = %d, want 0", c)
	}
	if w == z {
		t.Errorf("MinOnPair returned diagonal pair (%d,%d)", w, z)
	}
	// A minimal pair must be a cross pair.
	sameSide := (w < 2) == (z < 2)
	if sameSide {
		t.Errorf("MinOnPair = (%d,%d), want a cross pair", w, z)
	}
}

// Property: sum of per-station on-counts equals total station-rounds, and
// no pair count exceeds either station's on-count (double counting used in
// Theorems 6 and 9).
func TestDoubleCountingProperties(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%5) + 3
		s := roundRobinPairs(n)
		counts := OnCounts(s)
		var total int64
		for _, c := range counts {
			total += c
		}
		// k=2 stations on per round, period n.
		if total != 2*int64(n) {
			return false
		}
		pc := PairCounts(s)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				if pc[a][b] > counts[a] || pc[a][b] > counts[b] {
					return false
				}
				if pc[a][b] != pc[b][a] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFuncWrapsPeriod(t *testing.T) {
	s := roundRobinPairs(3)
	for st := 0; st < 3; st++ {
		for r := int64(0); r < 3; r++ {
			if s.On(st, r) != s.On(st, r+3*7) {
				t.Errorf("schedule not periodic at (%d, %d)", st, r)
			}
		}
	}
}
