package service

import "sync"

// entry is one cached run: the canonical report bytes served verbatim to
// every later request for the same fingerprint, and the recorded trace
// when the run was submitted with recording on.
type entry struct {
	report []byte
	trace  []byte
}

// cache is the content-addressed result store: fingerprint → entry.
// Results are immutable once stored (a fingerprint names a deterministic
// run), so the cache never updates in place; the only mutation besides
// insert is FIFO eviction past the capacity. FIFO rather than LRU keeps
// eviction O(1) with no per-hit bookkeeping — for deterministic,
// recomputable results the cost of a wrong eviction is one re-simulation,
// not lost data.
type cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]entry
	order   []string // insertion order, for eviction

	hits, misses int64
}

func newCache(capacity int) *cache {
	return &cache{cap: capacity, entries: make(map[string]entry, capacity)}
}

// peek returns the entry without touching the hit/miss statistics.
// Lookups never count implicitly: the submission path calls markHit or
// markMiss once per submission after deciding the outcome, so the
// statistics measure exactly how often a submitted experiment was
// deduplicated (served from cache or joined to a live run) versus
// simulated fresh — not how often a client polled.
func (c *cache) peek(fp string) (entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	return e, ok
}

// markHit records one deduplicated submission.
func (c *cache) markHit() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

// markMiss records one submission that required a fresh simulation.
func (c *cache) markMiss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// put stores a completed run. A duplicate fingerprint keeps the first
// stored report bytes authoritative — concurrent completions of the same
// config can never flip the served representation — but may attach a
// recorded trace the original entry lacked (a record=true re-run of an
// already-cached config exists exactly to produce that trace).
func (c *cache) put(fp string, e entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[fp]; ok {
		if old.trace == nil && e.trace != nil {
			old.trace = e.trace
			c.entries[fp] = old
		}
		return
	}
	for c.cap > 0 && len(c.entries) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[fp] = e
	c.order = append(c.order, fp)
}

// stats returns (entries, hits, misses).
func (c *cache) stats() (int, int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.hits, c.misses
}
