package service

import (
	"container/list"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Entry is one cached run: the canonical report bytes served verbatim to
// every later request for the same fingerprint, and the recorded trace
// when the run was submitted with recording on.
type Entry struct {
	Report []byte
	Trace  []byte
}

// Cache is the two-level content-addressed result store shared by the
// single-process server and the cluster coordinator: fingerprint → Entry.
//
// Level 1 is an in-memory LRU bounded by the entry capacity; level 2,
// enabled by a non-empty directory, is a disk tier written through on
// every Put (atomic create-then-rename, so a crash never leaves a
// torn entry) and consulted on memory misses — an entry evicted from
// memory, or stored by a previous process, is promoted back into the
// LRU when next requested. Results are immutable once stored (a
// fingerprint names a deterministic run), so neither tier ever updates
// a report in place and the disk tier needs no invalidation; the only
// amendment allowed is attaching a recorded trace to an entry that
// lacked one.
type Cache struct {
	mu    sync.Mutex
	cap   int
	dir   string     // "" = memory only
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions, diskHits int64
}

type lruItem struct {
	key string
	e   Entry
}

// NewCache builds a cache bounded to capacity in-memory entries, with a
// disk tier under dir when dir is non-empty (the directory is created
// on first use).
func NewCache(capacity int, dir string) *Cache {
	return &Cache{
		cap:   capacity,
		dir:   dir,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// CacheStats is the counter snapshot healthz serves. Hits and Misses
// count submissions (dedup outcomes), not lookups; Evictions counts
// memory-tier evictions (write-through entries stay on disk); DiskHits
// counts memory misses satisfied by the disk tier.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	DiskHits  int64 `json:"disk_hits"`
}

// Peek returns the entry without touching the hit/miss statistics.
// Lookups never count implicitly: the submission path calls MarkHit or
// MarkMiss once per submission after deciding the outcome, so the
// statistics measure exactly how often a submitted experiment was
// deduplicated (served from cache or joined to a live run) versus
// simulated fresh — not how often a client polled. A memory hit
// refreshes the entry's LRU recency; a disk hit promotes the entry
// back into memory.
func (c *Cache) Peek(fp string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[fp]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruItem).e, true
	}
	if c.dir == "" {
		return Entry{}, false
	}
	e, ok := c.readDisk(fp)
	if !ok {
		return Entry{}, false
	}
	c.diskHits++
	c.insertLocked(fp, e)
	return e, true
}

// MarkHit records one deduplicated submission.
func (c *Cache) MarkHit() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

// MarkMiss records one submission that required a fresh simulation.
func (c *Cache) MarkMiss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// Put stores a completed run in both tiers. A duplicate fingerprint
// keeps the first stored report bytes authoritative — concurrent
// completions of the same config can never flip the served
// representation — but may attach a recorded trace the original entry
// lacked (a record=true re-run of an already-cached config exists
// exactly to produce that trace). Disk writes are best-effort: an
// unwritable directory degrades the cache to memory-only rather than
// failing the run that produced the result.
func (c *Cache) Put(fp string, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[fp]; ok {
		old := el.Value.(*lruItem)
		if old.e.Trace == nil && e.Trace != nil {
			old.e.Trace = e.Trace
			c.writeDisk(fp, Entry{Report: old.e.Report, Trace: e.Trace})
		}
		return
	}
	// The entry may live only on disk (evicted, or written by another
	// process). Keep its report bytes authoritative; attach the trace.
	if disk, ok := c.readDisk(fp); ok {
		if disk.Trace == nil && e.Trace != nil {
			disk.Trace = e.Trace
			c.writeDisk(fp, disk)
		}
		c.insertLocked(fp, disk)
		return
	}
	c.insertLocked(fp, e)
	c.writeDisk(fp, e)
}

// insertLocked adds an entry to the memory LRU, evicting from the cold
// end past the capacity bound. Callers hold c.mu.
func (c *Cache) insertLocked(fp string, e Entry) {
	for c.cap > 0 && c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
		c.evictions++
	}
	c.items[fp] = c.ll.PushFront(&lruItem{key: fp, e: e})
}

// Stats returns the counter snapshot.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		DiskHits:  c.diskHits,
	}
}

// Disk-tier layout: one <hex>.report file per fingerprint (the exact
// canonical bytes) plus an optional <hex>.trace sibling. The hex name
// is the fingerprint with its "sha256:" prefix stripped, which keeps
// names filesystem-safe without any escaping.
const (
	fpPrefix    = "sha256:"
	reportExt   = ".report"
	traceExt    = ".trace"
	hexKeyChars = 64
)

// diskName maps a fingerprint to its disk base name, or "" when the
// fingerprint is not of the canonical shape (defense against a crafted
// id reaching the filesystem through a lookup path).
func diskName(fp string) string {
	hex, ok := strings.CutPrefix(fp, fpPrefix)
	if !ok || !validHex(hex) {
		return ""
	}
	return hex
}

func validHex(s string) bool {
	if len(s) != hexKeyChars {
		return false
	}
	for i := 0; i < len(s); i++ {
		if c := s[i]; (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// readDisk loads an entry from the disk tier. Callers hold c.mu (the
// files are small and local; holding the lock keeps promotion and the
// counters consistent).
func (c *Cache) readDisk(fp string) (Entry, bool) {
	name := diskName(fp)
	if c.dir == "" || name == "" {
		return Entry{}, false
	}
	report, err := os.ReadFile(filepath.Join(c.dir, name+reportExt))
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Report: report}
	if trace, err := os.ReadFile(filepath.Join(c.dir, name+traceExt)); err == nil {
		e.Trace = trace
	}
	return e, true
}

// writeDisk spills an entry to the disk tier atomically: each file is
// written to a temp name in the same directory and renamed into place,
// so readers (including other processes sharing the directory) never
// observe a torn entry. Callers hold c.mu.
func (c *Cache) writeDisk(fp string, e Entry) {
	name := diskName(fp)
	if c.dir == "" || name == "" {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	atomicWrite(filepath.Join(c.dir, name+reportExt), e.Report)
	if e.Trace != nil {
		atomicWrite(filepath.Join(c.dir, name+traceExt), e.Trace)
	}
}

func atomicWrite(path string, data []byte) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	os.Rename(tmp.Name(), path)
}

// Preload walks the disk tier and promotes entries into the memory LRU
// until it is full, returning how many were loaded (already-resident
// fingerprints are skipped, not double counted). Files are visited in
// sorted name order so a preload is deterministic. It is the warm-up
// behind POST /v1/cache/preload: a freshly restarted server (or
// coordinator) can pull its whole previous working set back into
// memory before traffic arrives.
func (c *Cache) Preload() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir == "" {
		return 0, nil
	}
	names, err := os.ReadDir(c.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil // an empty tier, not a failure
		}
		return 0, err
	}
	loaded := 0
	for _, d := range names { // ReadDir returns sorted names
		base, isReport := strings.CutSuffix(d.Name(), reportExt)
		if !isReport || !validHex(base) {
			continue
		}
		if c.cap > 0 && c.ll.Len() >= c.cap {
			break
		}
		fp := fpPrefix + base
		if _, resident := c.items[fp]; resident {
			continue
		}
		e, ok := c.readDisk(fp)
		if !ok {
			continue
		}
		c.insertLocked(fp, e)
		loaded++
	}
	return loaded, nil
}
