package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"earmac"
)

// The HTTP surface. All request and response bodies are JSON; report
// bytes come verbatim from the content-addressed cache, so two fetches
// of the same fingerprint are byte-identical by construction.
//
//	POST   /v1/run            run a Config synchronously (?record=1 to record a trace)
//	POST   /v1/jobs           submit a Config asynchronously
//	POST   /v1/suite          expand a Grid and submit every cell
//	GET    /v1/jobs/{id}      job status
//	GET    /v1/jobs/{id}/stream  progress snapshots (NDJSON, or SSE via Accept)
//	GET    /v1/jobs/{id}/result  the report (cache bytes)
//	GET    /v1/jobs/{id}/trace   the recorded injection trace (JSONL)
//	DELETE /v1/jobs/{id}      cancel
//	POST   /v1/cache/preload  warm the in-memory LRU from the disk tier
//	GET    /v1/healthz        liveness + queue/cache/job-state stats
//	GET    /v1/capabilities   registered algorithms and patterns
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/suite", s.handleSuite)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/cache/preload", s.handlePreload)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/capabilities", s.handleCapabilities)
}

// Report-response headers: the cache disposition, and the job id
// (fingerprint) so a synchronous /v1/run client can address the
// follow-up endpoints (/trace, /stream, /result) without recomputing
// the hash.
const (
	headerCache = "X-Earmac-Cache"
	headerJob   = "X-Earmac-Job"
	cacheHit    = "hit"
	cacheMiss   = "miss"
)

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// submitCode maps an admission error to its status code.
func submitCode(err error) int {
	if errors.Is(err, earmac.ErrConflict) || errors.Is(err, errQueueFull) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// writeSubmitError writes an admission failure. A queue-full 503
// carries a Retry-After header (seconds, derived from the backlog) so
// well-behaved clients — the cluster coordinator's retry loop among
// them — back off for roughly one drain interval instead of hammering.
// A draining 503 carries none: the server is going away, not busy.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	if errors.Is(err, errQueueFull) {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	writeError(w, submitCode(err), err)
}

// recordParam parses the ?record= query parameter. Absent means false;
// a present value must be a boolean ("1", "true", "0", "false", ...) so
// that ?record=0 disables recording instead of silently enabling it.
func recordParam(r *http.Request) (bool, error) {
	v := r.URL.Query().Get("record")
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("bad record parameter %q: want a boolean", v)
	}
	return b, nil
}

// decodeConfig reads and validates a façade Config from the body.
// Unknown fields are rejected so a typo'd field name fails loudly
// instead of silently running the default experiment.
func decodeConfig(r *http.Request) (earmac.Config, error) {
	var cfg earmac.Config
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return earmac.Config{}, fmt.Errorf("decoding config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return earmac.Config{}, err
	}
	return cfg, nil
}

// handleRun executes a config synchronously and responds with the
// canonical report bytes: straight from the cache on a hit (no
// simulation), from the completed job otherwise. The client going away
// does not cancel the underlying job — another submission of the same
// fingerprint may be waiting on it, and the completed result is cached
// for the next request.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	cfg, err := decodeConfig(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	record, err := recordParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fp, j, e, cached, err := s.submit(cfg, record)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	if cached {
		s.writeReport(w, e.Report, cacheHit, fp)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		writeError(w, 499, r.Context().Err()) // client closed request
		return
	}
	state, errMsg, _ := j.snapshot()
	switch state {
	case StateDone:
		s.writeReport(w, j.resultBytes(), cacheMiss, j.id)
	case StateCancelled:
		writeError(w, http.StatusConflict, fmt.Errorf("job %s cancelled: %s", j.id, errMsg))
	default:
		writeError(w, http.StatusInternalServerError, fmt.Errorf("job %s failed: %s", j.id, errMsg))
	}
}

func (s *Server) writeReport(w http.ResponseWriter, raw []byte, disposition, id string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(headerCache, disposition)
	w.Header().Set(headerJob, id)
	w.Write(raw)
}

// submitResponse is the envelope for asynchronous submissions.
type submitResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
}

// handleSubmit enqueues a config and returns its fingerprint as the job
// id. A cache hit completes immediately (status "done", cached true);
// joining a live identical submission returns that job's current state.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	cfg, err := decodeConfig(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	record, err := recordParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fp, j, _, cached, err := s.submit(cfg, record)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	if cached {
		writeJSON(w, http.StatusOK, submitResponse{ID: fp, Status: StateDone, Cached: true})
		return
	}
	state, _, _ := j.snapshot()
	writeJSON(w, http.StatusAccepted, submitResponse{ID: j.id, Status: state})
}

// suiteRequest is a Grid submission; the response lists one
// submitResponse per cell, in Grid.Configs order.
func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	var g earmac.Grid
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding grid: %w", err))
		return
	}
	cfgs := earmac.NewSuite(g).Configs
	for i, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("cell %d: %w", i, err))
			return
		}
	}
	out := make([]submitResponse, 0, len(cfgs))
	for i, cfg := range cfgs {
		fp, j, _, cached, err := s.submit(cfg, false)
		if err != nil {
			// Cells already admitted keep running; report how far we got.
			if errors.Is(err, errQueueFull) {
				w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			}
			writeError(w, submitCode(err), fmt.Errorf("cell %d (after %d admitted): %w", i, len(out), err))
			return
		}
		if cached {
			out = append(out, submitResponse{ID: fp, Status: StateDone, Cached: true})
		} else {
			state, _, _ := j.snapshot()
			out = append(out, submitResponse{ID: j.id, Status: state})
		}
	}
	writeJSON(w, http.StatusAccepted, out)
}

// statusResponse is the job-status envelope.
type statusResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	Round  int64  `json:"round,omitempty"`
	Total  int64  `json:"total,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := s.lookup(id); ok {
		state, errMsg, latest := j.snapshot()
		resp := statusResponse{ID: id, Status: state, Error: errMsg}
		if latest != nil {
			resp.Round, resp.Total = latest.Round, latest.Total
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if _, ok := s.cache.Peek(id); ok {
		writeJSON(w, http.StatusOK, statusResponse{ID: id, Status: StateDone, Cached: true})
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if e, ok := s.cache.Peek(id); ok {
		s.writeReport(w, e.Report, cacheHit, id)
		return
	}
	if j, ok := s.lookup(id); ok {
		state, errMsg, _ := j.snapshot()
		switch state {
		case StateFailed, StateCancelled:
			writeError(w, http.StatusConflict, fmt.Errorf("job %s %s: %s", id, state, errMsg))
		default:
			writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s; result not ready", id, state))
		}
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
}

// handleTrace serves the recorded injection trace of a run submitted
// with ?record=1 — the versioned JSONL format written by the scenario
// Encoder, replayable with `earmac-sim -replay`.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.cache.Peek(id)
	if !ok || e.Trace == nil {
		// Not served from the cache: distinguish in-flight (not ready
		// yet), terminal-without-trace, and genuinely unknown, mirroring
		// handleResult.
		if j, live := s.lookup(id); live {
			state, errMsg, _ := j.snapshot()
			switch {
			case state == StateFailed || state == StateCancelled:
				writeError(w, http.StatusConflict, fmt.Errorf("job %s %s: %s", id, state, errMsg))
			case j.recording():
				writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s; trace not ready", id, state))
			default:
				writeError(w, http.StatusConflict,
					fmt.Errorf("job %s is not recording; re-submit with ?record=1 to produce a trace", id))
			}
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
			return
		}
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s was not recorded; re-submit with ?record=1 to produce a trace", id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Content-Disposition", `attachment; filename="`+strings.TrimPrefix(id, "sha256:")+`.trace.jsonl"`)
	w.Write(e.Trace)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.lookup(id)
	if !ok {
		// A completed job lives only in the cache; cancelling it is a
		// no-op, not an unknown id — keep the view consistent with
		// handleStatus.
		if _, cached := s.cache.Peek(id); cached {
			writeJSON(w, http.StatusOK, statusResponse{ID: id, Status: StateDone, Cached: true})
			return
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	j.requestCancel()
	state, errMsg, _ := j.snapshot()
	if j.terminal() {
		// A job cancelled while queued is terminal right now: retire it
		// immediately so a resubmission starts fresh instead of joining
		// the corpse until a worker pops it.
		s.retire(j)
	}
	writeJSON(w, http.StatusOK, statusResponse{ID: id, Status: state, Error: errMsg})
}

// handleStream streams progress snapshots until the job completes: one
// JSON object per line (application/x-ndjson) by default, or Server-Sent
// Events when the client asks for text/event-stream. The final line is a
// status envelope, so a consumer always learns how the job ended.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.lookup(id)
	if !ok {
		// A job completed earlier lives only in the cache: nothing to
		// stream but the terminal state (j stays nil).
		if _, cached := s.cache.Peek(id); !cached {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
			return
		}
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	flusher, _ := w.(http.Flusher)
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	writeEvent := func(event string, v any) {
		raw, err := json.Marshal(v)
		if err != nil {
			return
		}
		if sse {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, raw)
		} else {
			w.Write(raw)
			w.Write([]byte("\n"))
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	final := func() {
		resp := statusResponse{ID: id, Status: StateDone, Cached: true}
		if j != nil {
			state, errMsg, latest := j.snapshot()
			resp = statusResponse{ID: id, Status: state, Error: errMsg}
			if latest != nil {
				resp.Round, resp.Total = latest.Round, latest.Total
			}
		}
		writeEvent("end", resp)
	}
	if j == nil {
		final()
		return
	}
	sub := j.subscribe()
	defer j.unsubscribe(sub)
	for {
		select {
		case p, open := <-sub:
			if !open {
				final()
				return
			}
			writeEvent("progress", p)
		case <-r.Context().Done():
			return
		}
	}
}

// jobStats is the per-state job tally healthz serves: the live gauges
// (queued, running) next to the cumulative terminal counters, so the
// coordinator's health probe and the smoke scripts can see both the
// instantaneous load and how jobs have been ending.
type jobStats struct {
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
}

type healthResponse struct {
	Status   string     `json:"status"`
	Draining bool       `json:"draining,omitempty"`
	Workers  int        `json:"workers"`
	Queued   int        `json:"queued"`
	Running  int        `json:"running"`
	Jobs     jobStats   `json:"jobs"`
	Cache    CacheStats `json:"cache"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var resp healthResponse
	resp.Status = "ok"
	resp.Draining = s.Draining()
	if resp.Draining {
		resp.Status = "draining"
	}
	resp.Workers = s.opts.Workers
	resp.Queued, resp.Running = s.counts()
	resp.Jobs.Queued, resp.Jobs.Running = resp.Queued, resp.Running
	resp.Jobs.Done, resp.Jobs.Failed, resp.Jobs.Cancelled = s.tallies()
	resp.Cache = s.cache.Stats()
	writeJSON(w, http.StatusOK, resp)
}

// preloadResponse reports how many disk-tier entries a preload promoted
// into the memory LRU.
type preloadResponse struct {
	Loaded int `json:"loaded"`
}

// handlePreload warms the in-memory cache from the disk tier (a no-op
// without -cache-dir). Idempotent: already-resident entries are skipped.
func (s *Server) handlePreload(w http.ResponseWriter, r *http.Request) {
	n, err := s.cache.Preload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("preloading cache: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, preloadResponse{Loaded: n})
}

type capabilitiesResponse struct {
	Algorithms []earmac.AlgorithmEntry `json:"algorithms"`
	Patterns   []earmac.PatternEntry   `json:"patterns"`
	// Topologies lists the network-of-channels kinds Config.Topology
	// accepts; TraceVersions the trace format versions this build
	// reads (it writes the highest, and version 1 for single-channel
	// recordings). Clients probe these before submitting network
	// configs or uploading traces.
	Topologies    []string `json:"topologies"`
	TraceVersions []int    `json:"trace_versions"`
}

func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, capabilitiesResponse{
		Algorithms:    earmac.AllAlgorithms(),
		Patterns:      earmac.AllPatterns(),
		Topologies:    earmac.Topologies(),
		TraceVersions: []int{1, earmac.TraceVersion},
	})
}
