package service

import (
	"context"
	"sync"

	"earmac"
)

// Job states. A job moves queued → running → one of the terminal states;
// cancellation can also hit a queued job directly.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// job is one submitted experiment. Its identity is the config's
// fingerprint: submitting the same experiment twice joins the same job
// (while it is live) or hits the cache (once it is done).
type job struct {
	id  string // Config.Fingerprint()
	cfg earmac.Config

	mu        sync.Mutex
	record    bool // mutable only while queued (enableRecord)
	state     string
	errMsg    string
	latest    *earmac.Progress                  // most recent snapshot, replayed to new subscribers
	subs      map[chan earmac.Progress]struct{} // progress streams
	cancel    context.CancelFunc                // set while running
	cancelled bool                              // cancel requested (possibly before dispatch)
	result    []byte                            // canonical report bytes once done
	trace     []byte                            // recorded trace once done (when record)
	counted   bool                              // tallied into the per-state counters
	done      chan struct{}                     // closed on reaching a terminal state
}

func newJob(id string, cfg earmac.Config, record bool) *job {
	return &job{
		id:     id,
		cfg:    cfg,
		record: record,
		state:  StateQueued,
		subs:   make(map[chan earmac.Progress]struct{}),
		done:   make(chan struct{}),
	}
}

// start transitions queued → running and installs the run's cancel
// function. It returns false when the job was cancelled while queued —
// the worker must then skip it (terminal state already reached).
func (j *job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelled {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	return true
}

// enableRecord tries to satisfy a record request on this job: already
// recording, or still queued (the flag can be flipped before dispatch).
// Returns false when the job is past the point of recording.
func (j *job) enableRecord() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.record {
		return true
	}
	if j.state == StateQueued && !j.cancelled {
		j.record = true
		return true
	}
	return false
}

// recording reports the record flag (fixed once the job has started).
func (j *job) recording() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.record
}

// requestCancel cancels the job: a running job's RunContext is
// interrupted, a queued job is marked so the dispatcher skips it (and
// reaches its terminal state immediately, since no worker will).
func (j *job) requestCancel() {
	j.mu.Lock()
	already := j.cancelled
	j.cancelled = true
	cancel := j.cancel
	queued := j.state == StateQueued
	if queued && !already {
		j.state = StateCancelled
	}
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if queued && !already {
		j.finish()
	}
}

// publish fans a progress snapshot out to every subscriber. Slow
// subscribers are skipped rather than blocking the simulation: each
// subscription channel is buffered, and a full buffer drops the
// snapshot (progress is advisory; the result is what matters).
func (j *job) publish(p earmac.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	cp := p
	j.latest = &cp
	for ch := range j.subs {
		select {
		case ch <- p:
		default:
		}
	}
}

// subscribe registers a progress stream. The returned channel receives
// the latest snapshot immediately (if any), then live snapshots; it is
// closed when the job reaches a terminal state. unsubscribe must be
// called when the consumer stops listening.
func (j *job) subscribe() chan earmac.Progress {
	ch := make(chan earmac.Progress, 16)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.latest != nil {
		ch <- *j.latest
	}
	if j.terminalLocked() {
		close(ch)
		return ch
	}
	j.subs[ch] = struct{}{}
	return ch
}

func (j *job) unsubscribe(ch chan earmac.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.subs, ch)
}

// complete records a successful run: the canonical report bytes and the
// recorded trace (nil unless recording was requested).
func (j *job) complete(report, trace []byte) {
	j.mu.Lock()
	j.state = StateDone
	j.result = report
	j.trace = trace
	j.mu.Unlock()
	j.finish()
}

// fail records a terminal failure (or cancellation, per state).
func (j *job) fail(state, msg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = msg
	j.mu.Unlock()
	j.finish()
}

// finish closes the done channel and every subscription exactly once.
// The caller must already have published the terminal state.
func (j *job) finish() {
	j.mu.Lock()
	defer j.mu.Unlock()
	select {
	case <-j.done:
		return // already finished
	default:
	}
	close(j.done)
	for ch := range j.subs {
		close(ch)
		delete(j.subs, ch)
	}
}

func (j *job) terminalLocked() bool {
	switch j.state {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// markCounted claims the job's single slot in the server's per-state
// tallies: the first caller gets true, every later one false. retire can
// run more than once for the same job (a cancelled corpse is retired
// both by the cancel path and by the worker that pops it), so the tally
// is guarded here rather than at the call sites.
func (j *job) markCounted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.counted {
		return false
	}
	j.counted = true
	return true
}

// terminal reports whether the job has reached a terminal state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.terminalLocked()
}

// resultBytes returns the canonical report bytes (nil unless done).
func (j *job) resultBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// snapshot returns the fields a status response needs, consistently.
func (j *job) snapshot() (state, errMsg string, latest *earmac.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg, j.latest
}
