// Package service is the experiment-serving layer behind cmd/earmac-serve:
// a long-running daemon that accepts façade Configs over HTTP, executes
// them on a shared bounded worker pool with per-job cancellation, streams
// interim Progress snapshots, and stores every completed Report in a
// content-addressed cache keyed by Config.Fingerprint — re-submitting an
// identical config returns the cached report byte-identically without
// re-simulating.
//
// Lifecycle: New builds the server, Start launches the executor, Drain
// stops dispatch (in-flight runs finish; queued jobs are cancelled) —
// the SIGTERM path of cmd/earmac-serve. The executor is pool.Run, so
// drain inherits the pool's deterministic cancellation contract: once
// the drain context fires, no queued job can be dispatched.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"earmac"
	"earmac/internal/pool"
	"earmac/internal/report"
)

// Options tunes a Server. The zero value selects the documented
// defaults.
type Options struct {
	// Workers bounds the simulation worker pool; <= 0 means GOMAXPROCS
	// (resolved through pool.Workers like every other -parallel knob).
	Workers int
	// QueueDepth bounds the number of accepted-but-not-yet-running jobs;
	// a full queue rejects submissions with 503 + Retry-After. Default 64.
	QueueDepth int
	// CacheEntries bounds the in-memory tier of the content-addressed
	// result cache (LRU eviction past the bound). Default 1024.
	CacheEntries int
	// CacheDir, when non-empty, enables the disk tier: every completed
	// result is spilled to <dir>/<hex>.report atomically, memory misses
	// fall through to disk, and POST /v1/cache/preload warms the LRU
	// from the directory. Results survive restarts.
	CacheDir string
	// NetWorkers sets Config.NetWorkers on every executed job: the
	// channel-stepping parallelism of network runs (0 = GOMAXPROCS,
	// 1 = serial). Runtime-only — results and fingerprints are
	// identical at any value, so it never affects cache keys.
	NetWorkers int
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	return o
}

// Server is the experiment service. It implements http.Handler; the
// caller owns the listener (net/http, httptest, ...).
type Server struct {
	opts  Options
	mux   *http.ServeMux
	cache *Cache
	queue chan *job

	mu       sync.Mutex
	started  bool
	live     map[string]*job // fingerprint → queued or running job
	recent   map[string]*job // terminal non-cached jobs (failed/cancelled), bounded FIFO
	order    []string        // recent insertion order, for eviction
	draining bool
	// Cumulative terminal-state tallies (each job counted exactly once,
	// at first retire); the healthz per-state job counters.
	doneJobs, failedJobs, cancelledJobs int64

	dispatchCtx  context.Context
	stopDispatch context.CancelFunc
	execDone     chan struct{}
}

// recentCap bounds the terminal-job map that backs status queries for
// failed and cancelled jobs (done jobs live in the result cache).
const recentCap = 256

// New builds a Server. Call Start before serving requests.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	opts.Workers = pool.Workers(opts.Workers)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:         opts,
		cache:        NewCache(opts.CacheEntries, opts.CacheDir),
		queue:        make(chan *job, opts.QueueDepth),
		live:         make(map[string]*job),
		recent:       make(map[string]*job),
		dispatchCtx:  ctx,
		stopDispatch: cancel,
		execDone:     make(chan struct{}),
	}
	s.routes()
	return s
}

// Start launches the executor: pool.Run dispatching queued jobs across
// the bounded worker pool until Drain cancels the dispatch context.
// Start must be called exactly once, before serving requests.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("service: Start called twice")
	}
	s.started = true
	s.mu.Unlock()
	go func() {
		defer close(s.execDone)
		pool.Run(s.dispatchCtx, s.queue, s.opts.Workers, s.runJob)
	}()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain gracefully stops the server: no new submissions are accepted,
// queued jobs are cancelled without running, and in-flight simulations
// run to completion (the pool's deterministic cancellation stops
// dispatch, never a running job). Drain returns when the executor has
// fully drained or ctx expires — on expiry the remaining running jobs
// are cancelled hard and Drain waits for them to unwind.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	started := s.started
	s.started = true // a drained server cannot be started
	s.mu.Unlock()
	s.stopDispatch()
	if !started {
		close(s.execDone) // no executor to wait for
	}
	var err error
	select {
	case <-s.execDone:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelAll()
		<-s.execDone
	}
	// Jobs still queued after the executor stopped were never dispatched
	// (pool.Run never drops a received job, so they are all still
	// buffered in the channel — the live-map sweep below is a
	// belt-and-suspenders net). Close all of them out as cancelled so
	// waiters unblock.
flush:
	for {
		select {
		case j := <-s.queue:
			j.fail(StateCancelled, "server draining")
			s.retire(j)
		default:
			break flush
		}
	}
	s.mu.Lock()
	var undispatched []*job
	for _, j := range s.live {
		if state, _, _ := j.snapshot(); state == StateQueued {
			undispatched = append(undispatched, j)
		}
	}
	s.mu.Unlock()
	for _, j := range undispatched {
		j.fail(StateCancelled, "server draining")
		s.retire(j)
	}
	return err
}

// cancelAll hard-cancels every live job (the Drain-timeout path).
func (s *Server) cancelAll() {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.live))
	for _, j := range s.live {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.requestCancel()
	}
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// errDraining is returned (as 503) for submissions during drain. It
// wraps the façade's typed conflict error: the submission is valid, the
// server's state conflicts with running it.
var errDraining = fmt.Errorf("%w: server is draining, not accepting new jobs", earmac.ErrConflict)

// errQueueFull is returned (as 503) when the admission queue is full.
var errQueueFull = errors.New("job queue is full, retry later")

// submit admits one validated config. It returns the config's
// fingerprint plus either a cache entry (cached true — no simulation)
// or the live job executing it, joining an existing identical
// submission when there is one: a fingerprint never has two live jobs.
func (s *Server) submit(cfg earmac.Config, record bool) (fp string, j *job, e Entry, cached bool, err error) {
	fp = cfg.Fingerprint()
	// A recording submission must run even if the report is cached but
	// the trace is not: only serve the cache when it satisfies the
	// request.
	if e, ok := s.cache.Peek(fp); ok && (!record || e.Trace != nil) {
		s.cache.MarkHit()
		return fp, nil, e, true, nil
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fp, nil, Entry{}, false, errDraining
	}
	if j, ok := s.live[fp]; ok {
		if j.terminal() {
			// A corpse: cancelled while queued and not yet popped by a
			// worker. A resubmission starts fresh instead of joining it.
			delete(s.live, fp)
		} else if !record || j.enableRecord() {
			// Join the live job. A record request can still be honoured
			// while the job is queued (the flag flips before dispatch).
			// Joining is deduplication too: count it as a hit.
			s.mu.Unlock()
			s.cache.MarkHit()
			return fp, j, Entry{}, false, nil
		} else {
			// Running without recording: a second concurrent run of the
			// same fingerprint would break the dedup invariant, so the
			// trace request conflicts until the run completes.
			s.mu.Unlock()
			return fp, nil, Entry{}, false, fmt.Errorf(
				"%w: an identical experiment is already running without trace recording; retry once it completes", earmac.ErrConflict)
		}
	}
	j = newJob(fp, cfg, record)
	s.live[fp] = j
	s.mu.Unlock()
	select {
	case s.queue <- j:
		s.cache.MarkMiss()
		return fp, j, Entry{}, false, nil
	default:
		// Roll back through the job's terminal machinery, not just the
		// live map: a concurrent identical submission may already have
		// joined j in the window since we published it, and must observe
		// a terminal state rather than wait forever on a job that was
		// never enqueued.
		j.fail(StateFailed, errQueueFull.Error())
		s.retire(j)
		return fp, nil, Entry{}, false, errQueueFull
	}
}

// runJob executes one dispatched job on a pool worker.
func (s *Server) runJob(j *job) {
	// pool.Run never loses a received job, at the price of dispatching at
	// most one job after its context fires; the service's drain promise —
	// no queued job starts after the signal — is enforced here instead.
	if s.Draining() {
		j.fail(StateCancelled, "server draining")
		s.retire(j)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !j.start(cancel) {
		s.retire(j) // cancelled while queued
		return
	}
	record := j.recording() // fixed now that the job has started
	cfg := j.cfg
	cfg.OnProgress = j.publish
	cfg.NetWorkers = s.opts.NetWorkers
	var traceBuf bytes.Buffer
	if record {
		cfg.RecordTo = &traceBuf
	}
	rep, err := earmac.RunContext(ctx, cfg)
	switch {
	case err == nil:
		raw := canonicalReport(rep)
		var tr []byte
		if record {
			tr = traceBuf.Bytes()
		}
		// Store before publishing completion: from the first moment a
		// waiter can observe "done" the cache already serves the bytes.
		s.cache.Put(j.id, Entry{Report: raw, Trace: tr})
		j.complete(raw, tr)
	case errors.Is(err, context.Canceled):
		j.fail(StateCancelled, "cancelled after "+fmt.Sprint(rep.Rounds)+" rounds")
	default:
		j.fail(StateFailed, err.Error())
	}
	s.retire(j)
}

// retire moves a terminal job out of the live map; failed and cancelled
// jobs stay queryable in the bounded recent map (done jobs are served
// from the cache).
func (s *Server) retire(j *job) {
	state, _, _ := j.snapshot()
	counted := j.markCounted()
	s.mu.Lock()
	defer s.mu.Unlock()
	if counted {
		switch state {
		case StateDone:
			s.doneJobs++
		case StateFailed:
			s.failedJobs++
		case StateCancelled:
			s.cancelledJobs++
		}
	}
	if s.live[j.id] == j {
		delete(s.live, j.id)
	}
	if state == StateDone {
		// A successful run supersedes any stale failed/cancelled record of
		// the same fingerprint: status must agree with the cached result,
		// not report a failure that a re-run has since recovered from.
		if _, ok := s.recent[j.id]; ok {
			delete(s.recent, j.id)
			s.order = removeKey(s.order, j.id)
		}
		return
	}
	// The converse supersession: once a successful run of this
	// fingerprint is cached, a late-retiring failure (e.g. a cancelled
	// corpse popped from the queue after a fresh resubmission completed)
	// must not shadow it in status responses.
	if _, ok := s.cache.Peek(j.id); ok {
		return
	}
	if _, ok := s.recent[j.id]; !ok {
		for len(s.recent) >= recentCap {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.recent, oldest)
		}
		s.order = append(s.order, j.id)
	}
	s.recent[j.id] = j
}

// removeKey deletes one occurrence of key, preserving order. s.order
// mirrors s.recent's keys exactly (the FIFO invariant eviction relies
// on), so supersession must remove the slot, not just the map entry.
func removeKey(order []string, key string) []string {
	for i, k := range order {
		if k == key {
			return append(order[:i], order[i+1:]...)
		}
	}
	return order
}

// lookup finds a job by fingerprint: live first, then recent terminal.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.live[id]; ok {
		return j, true
	}
	j, ok := s.recent[id]
	return j, ok
}

// counts returns the live-job tally by state.
func (s *Server) counts() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.live {
		switch state, _, _ := j.snapshot(); state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	return
}

// tallies returns the cumulative terminal-state job counters.
func (s *Server) tallies() (done, failed, cancelled int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doneJobs, s.failedJobs, s.cancelledJobs
}

// retryAfterSeconds derives a Retry-After hint for a queue-full 503
// from the current backlog: roughly the queue depth divided by the
// worker count (how many "queue drain slots" precede the retry),
// clamped to [1, 60]. The coordinator's retry loop honours it.
func (s *Server) retryAfterSeconds() int {
	queued, _ := s.counts()
	secs := queued / s.opts.Workers
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// canonicalReport fixes the byte representation every endpoint serves
// for a Report: report.CanonicalJSON (compact marshal + newline). The
// cache stores these exact bytes, which is what makes the
// byte-identical guarantee checkable with cmp.
func canonicalReport(rep earmac.Report) []byte {
	return report.CanonicalJSON(rep)
}
