package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"earmac"
)

// newTestServer starts a service with a deterministic single worker and
// returns it with its HTTP front.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(opts)
	svc.Start()
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		svc.cancelAll() // deliberately long test jobs should not outlive the test
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Drain(ctx)
	})
	return svc, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

const quickConfig = `{"algorithm":"count-hop","n":5,"rho_num":1,"rho_den":3,"rounds":20000}`

// TestRunCachedByteIdentical is the tentpole's core guarantee: the
// second submission of an identical config is served from the
// content-addressed cache, byte-identical, without re-simulating.
func TestRunCachedByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	resp1, body1 := post(t, ts.URL+"/v1/run", quickConfig)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get(headerCache); got != cacheMiss {
		t.Errorf("first run cache header = %q, want %q", got, cacheMiss)
	}
	// An equivalent spelling of the same experiment (explicit defaults)
	// must hit the same cache entry.
	equivalent := `{"algorithm":"count-hop","n":5,"k":3,"rho_num":1,"rho_den":3,"beta":1,"pattern":"uniform","seed":1,"rounds":20000}`
	resp2, body2 := post(t, ts.URL+"/v1/run", equivalent)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run: %d %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get(headerCache); got != cacheHit {
		t.Errorf("second run cache header = %q, want %q", got, cacheHit)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("cached response not byte-identical:\n%s\n%s", body1, body2)
	}
	var rep earmac.Report
	if err := json.Unmarshal(body1, &rep); err != nil {
		t.Fatalf("response is not a Report: %v", err)
	}
	if rep.Algorithm != "count-hop" || rep.Rounds != 20000 {
		t.Errorf("unexpected report: %+v", rep)
	}
}

func TestSubmitStatusResult(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	resp, raw := post(t, ts.URL+"/v1/jobs", quickConfig)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub submitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sub.ID, "sha256:") {
		t.Fatalf("job id %q is not a fingerprint", sub.ID)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, raw = get(t, ts.URL+"/v1/jobs/"+sub.ID)
		var st statusResponse
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("status: %v (%s)", err, raw)
		}
		if st.Status == StateDone {
			break
		}
		if st.Status == StateFailed || st.Status == StateCancelled {
			t.Fatalf("job ended %s: %s", st.Status, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, raw = get(t, ts.URL+"/v1/jobs/"+sub.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, raw)
	}
	// The async result and a sync re-run serve the same cached bytes.
	_, rerun := post(t, ts.URL+"/v1/run", quickConfig)
	if !bytes.Equal(raw, rerun) {
		t.Errorf("async result and cached sync run differ:\n%s\n%s", raw, rerun)
	}
	// A resubmission reports done+cached instantly.
	resp, raw = post(t, ts.URL+"/v1/jobs", quickConfig)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, raw)
	}
	var again submitResponse
	json.Unmarshal(raw, &again)
	if !again.Cached || again.Status != StateDone {
		t.Errorf("resubmit = %+v, want cached done", again)
	}
}

func TestStreamNDJSONProgress(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	cfg := `{"algorithm":"orchestra","n":6,"rounds":400000}`
	resp, raw := post(t, ts.URL+"/v1/jobs", cfg)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub submitResponse
	json.Unmarshal(raw, &sub)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	sawProgress := false
	var last map[string]any
	for dec.More() {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("stream line: %v", err)
		}
		if _, ok := line["report"]; ok {
			sawProgress = true
		}
		last = line
	}
	if !sawProgress {
		t.Error("stream delivered no progress snapshots")
	}
	if last == nil || last["status"] != StateDone {
		t.Errorf("final stream line = %v, want status done", last)
	}
}

func TestStreamSSE(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	post(t, ts.URL+"/v1/run", quickConfig) // ensure cached/terminal
	fp := earmacFingerprint(t, quickConfig)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+fp+"/stream", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(string(raw), "event: end") {
		t.Errorf("SSE stream missing end event:\n%s", raw)
	}
}

func earmacFingerprint(t *testing.T, cfgJSON string) string {
	t.Helper()
	var cfg earmac.Config
	if err := json.Unmarshal([]byte(cfgJSON), &cfg); err != nil {
		t.Fatal(err)
	}
	return cfg.Fingerprint()
}

func TestRecordedTraceDownloadAndReplay(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	cfg := `{"algorithm":"orchestra","n":6,"pattern":"poisson-batch","seed":3,"rounds":30000}`
	resp, report := post(t, ts.URL+"/v1/run?record=1", cfg)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recorded run: %d %s", resp.StatusCode, report)
	}
	fp := earmacFingerprint(t, cfg)
	resp, traceRaw := get(t, ts.URL+"/v1/jobs/"+fp+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace download: %d %s", resp.StatusCode, traceRaw)
	}
	tr, err := earmac.ReadTrace(bytes.NewReader(traceRaw))
	if err != nil {
		t.Fatalf("downloaded trace does not decode: %v", err)
	}
	if tr.Footer == nil || tr.Footer.Counters == nil {
		t.Fatal("downloaded trace has no footer")
	}
	// Replaying the downloaded trace locally reproduces the served report.
	rcfg, err := earmac.ReplayConfig(tr)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := earmac.Run(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	// The canonical encoding of the local replay must equal the served
	// bytes exactly — the replayed trace reproduces the run bit-for-bit.
	if !bytes.Equal(canonicalReport(rep), report) {
		t.Errorf("replay of downloaded trace diverges:\nserved: %s\nreplay: %s", report, canonicalReport(rep))
	}
}

// TestTraceForCachedRunRequiresRecording: a plain cached run has no
// trace; a record=1 re-submission of the same fingerprint re-runs and
// attaches one.
func TestTraceForCachedRunRequiresRecording(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	_, first := post(t, ts.URL+"/v1/run", quickConfig)
	fp := earmacFingerprint(t, quickConfig)
	resp, _ := get(t, ts.URL+"/v1/jobs/"+fp+"/trace")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("trace of unrecorded run: %d, want 409", resp.StatusCode)
	}
	// Re-submit with recording: the run repeats (cache does not satisfy
	// a record request without a trace) and the report stays identical.
	resp, second := post(t, ts.URL+"/v1/run?record=1", quickConfig)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("record re-run: %d", resp.StatusCode)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("record re-run changed the report:\n%s\n%s", first, second)
	}
	resp, _ = get(t, ts.URL+"/v1/jobs/"+fp+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("trace after record re-run: %d, want 200", resp.StatusCode)
	}
}

func TestSubmitValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name, body string
		wantSub    string
	}{
		{"unknown-algorithm", `{"algorithm":"nope"}`, "unknown algorithm"},
		{"bad-rate", `{"rho_num":3,"rho_den":2}`, "bad injection rate"},
		{"unknown-field", `{"algorithm":"orchestra","typo_field":1}`, "unknown field"},
		{"malformed", `{`, "decoding config"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, raw := post(t, ts.URL+"/v1/run", c.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, raw)
			}
			var eb errorBody
			json.Unmarshal(raw, &eb)
			if !strings.Contains(eb.Error, c.wantSub) {
				t.Errorf("error %q missing %q", eb.Error, c.wantSub)
			}
		})
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	long := `{"algorithm":"orchestra","n":6,"rounds":4000000000}`
	resp, raw := post(t, ts.URL+"/v1/jobs", long)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub submitResponse
	json.Unmarshal(raw, &sub)
	waitState(t, ts, sub.ID, StateRunning)
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitState(t, ts, sub.ID, StateCancelled)
	if !strings.Contains(st.Error, "cancelled") {
		t.Errorf("cancelled status error = %q", st.Error)
	}
	// The cancelled run is not cached.
	resp, _ = get(t, ts.URL+"/v1/jobs/"+sub.ID+"/result")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result of cancelled job: %d, want 409", resp.StatusCode)
	}
}

func waitState(t *testing.T, ts *httptest.Server, id, want string) statusResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, raw := get(t, ts.URL+"/v1/jobs/"+id)
		var st statusResponse
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("status: %v (%s)", err, raw)
		}
		if st.Status == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, st.Status, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDrain: in-flight jobs finish, queued jobs are cancelled without
// running, and new submissions are refused with 503 + the typed
// conflict message.
func TestDrain(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1})
	running := `{"algorithm":"count-hop","n":5,"rounds":3000000}`
	queuedCfg := `{"algorithm":"count-hop","n":6,"rounds":3000000}`
	resp, raw := post(t, ts.URL+"/v1/jobs", running)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit running: %d %s", resp.StatusCode, raw)
	}
	var runningSub submitResponse
	json.Unmarshal(raw, &runningSub)
	waitState(t, ts, runningSub.ID, StateRunning)
	resp, raw = post(t, ts.URL+"/v1/jobs", queuedCfg)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit queued: %d %s", resp.StatusCode, raw)
	}
	var queuedSub submitResponse
	json.Unmarshal(raw, &queuedSub)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitState(t, ts, runningSub.ID, StateDone)
	resp, _ = get(t, ts.URL+"/v1/jobs/"+runningSub.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("in-flight job result after drain: %d, want 200 (drain must let it finish)", resp.StatusCode)
	}
	qst := waitState(t, ts, queuedSub.ID, StateCancelled)
	if qst.Status != StateCancelled {
		t.Errorf("queued job after drain: %s, want cancelled", qst.Status)
	}
	resp, raw = post(t, ts.URL+"/v1/run", quickConfig)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
	var eb errorBody
	json.Unmarshal(raw, &eb)
	if !strings.Contains(eb.Error, "conflicting options") || !strings.Contains(eb.Error, "draining") {
		t.Errorf("draining error = %q, want the typed conflict message", eb.Error)
	}
	_, raw = get(t, ts.URL+"/v1/healthz")
	if !strings.Contains(string(raw), `"status":"draining"`) {
		t.Errorf("healthz while draining: %s", raw)
	}
}

func TestSuiteSubmission(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	grid := `{"algorithms":["count-hop","orchestra"],"ns":[4,5],"base":{"rounds":10000}}`
	resp, raw := post(t, ts.URL+"/v1/suite", grid)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("suite: %d %s", resp.StatusCode, raw)
	}
	var subs []submitResponse
	if err := json.Unmarshal(raw, &subs); err != nil {
		t.Fatal(err)
	}
	if len(subs) != 4 {
		t.Fatalf("suite expanded to %d cells, want 4", len(subs))
	}
	for _, sub := range subs {
		waitState(t, ts, sub.ID, StateDone)
	}
	// Resubmitting the same grid is now fully cached.
	resp, raw = post(t, ts.URL+"/v1/suite", grid)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("suite resubmit: %d %s", resp.StatusCode, raw)
	}
	json.Unmarshal(raw, &subs)
	for i, sub := range subs {
		if !sub.Cached {
			t.Errorf("cell %d not served from cache on resubmit", i)
		}
	}
}

func TestSuiteValidationFailsWholeBatch(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1})
	grid := `{"algorithms":["count-hop","no-such-alg"],"base":{"rounds":1000}}`
	resp, raw := post(t, ts.URL+"/v1/suite", grid)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("suite with invalid cell: %d %s", resp.StatusCode, raw)
	}
	queued, running := svc.counts()
	if queued+running != 0 {
		t.Errorf("invalid suite admitted %d jobs", queued+running)
	}
}

func TestQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	long := func(n int) string {
		return fmt.Sprintf(`{"algorithm":"orchestra","n":%d,"rounds":4000000000}`, n)
	}
	// One running, one queued, then the queue is full. Admission and
	// dispatch race, so keep submitting until we see the 503.
	deadline := time.Now().Add(10 * time.Second)
	rejected := ""
	for n := 6; rejected == ""; n++ {
		resp, raw := post(t, ts.URL+"/v1/jobs", long(n))
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusServiceUnavailable:
			rejected = long(n)
			var eb errorBody
			json.Unmarshal(raw, &eb)
			if !strings.Contains(eb.Error, "queue is full") {
				t.Errorf("503 body = %q", eb.Error)
			}
		default:
			t.Fatalf("submit %d: %d %s", n, resp.StatusCode, raw)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
	// The rejected submission reached a terminal state: a concurrent
	// waiter that joined it in the admission window must not block
	// forever, and its status stays queryable.
	st := waitState(t, ts, earmacFingerprint(t, rejected), StateFailed)
	if !strings.Contains(st.Error, "queue is full") {
		t.Errorf("rejected job status error = %q", st.Error)
	}
}

// TestQueueFullRetryAfter: the queue-full 503 carries a Retry-After
// header (whole seconds, derived from the backlog) that clients — the
// cluster coordinator's retry loop among them — can honour. A draining
// 503 carries none: the server is going away, not busy.
func TestQueueFullRetryAfter(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	long := func(n int) string {
		return fmt.Sprintf(`{"algorithm":"orchestra","n":%d,"rounds":4000000000}`, n)
	}
	deadline := time.Now().Add(10 * time.Second)
	for n := 6; ; n++ {
		resp, raw := post(t, ts.URL+"/v1/jobs", long(n))
		if resp.StatusCode == http.StatusServiceUnavailable {
			ra := resp.Header.Get("Retry-After")
			secs, err := strconv.Atoi(ra)
			if err != nil || secs < 1 || secs > 60 {
				t.Fatalf("queue-full Retry-After = %q, want an integer in [1, 60]", ra)
			}
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", n, resp.StatusCode, raw)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	svc.cancelAll()
	svc.Drain(ctx)
	resp, _ := post(t, ts.URL+"/v1/jobs", quickConfig)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Errorf("draining 503 carries Retry-After %q; retrying a draining server is pointless", ra)
	}
}

// TestConcurrentDuplicateSubmissions: N goroutines submitting equivalent
// spellings of one Config must join a single job — exactly one
// simulation — and every one of them must receive byte-identical result
// bytes. This is the dedup/join path under race (the -race CI job runs
// this test with the detector on).
func TestConcurrentDuplicateSubmissions(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 2})
	// Equivalent spellings: zero fields vs their explicit defaults, and
	// permuted key order — all one fingerprint.
	spellings := []string{
		`{"algorithm":"count-hop","n":5,"rho_num":1,"rho_den":3,"rounds":25000}`,
		`{"algorithm":"count-hop","n":5,"k":3,"rho_num":1,"rho_den":3,"rounds":25000}`,
		`{"algorithm":"count-hop","n":5,"rho_num":1,"rho_den":3,"beta":1,"rounds":25000,"seed":1}`,
		`{"rounds":25000,"rho_den":3,"rho_num":1,"n":5,"algorithm":"count-hop","pattern":"uniform"}`,
	}
	const waves = 4 // 16 concurrent submissions
	n := waves * len(spellings)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/run", "application/json",
				strings.NewReader(spellings[i%len(spellings)]))
			if err != nil {
				t.Errorf("submission %d: %v", i, err)
				return
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("submission %d: %d %v %s", i, resp.StatusCode, err, raw)
				return
			}
			bodies[i] = raw
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("submission %d received different bytes:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	// Exactly one submission created the job (miss); the rest were
	// deduplicated onto it or served from the cache (hits).
	st := svc.cache.Stats()
	if st.Misses != 1 || st.Hits != int64(n-1) {
		t.Errorf("dedup stats: hits=%d misses=%d, want %d/1", st.Hits, st.Misses, n-1)
	}
	done, failed, cancelled := svc.tallies()
	if done != 1 || failed != 0 || cancelled != 0 {
		t.Errorf("job tallies = %d done, %d failed, %d cancelled, want exactly one done job", done, failed, cancelled)
	}
}

// TestDiskCacheAcrossRestart: with CacheDir set, a completed result
// survives a server restart — the fresh process serves it byte-identical
// from the disk tier without re-simulating, and /v1/cache/preload warms
// the memory tier explicitly.
func TestDiskCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	svc1 := New(Options{Workers: 1, CacheDir: dir})
	svc1.Start()
	ts1 := httptest.NewServer(svc1)
	resp, first := post(t, ts1.URL+"/v1/run", quickConfig)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d %s", resp.StatusCode, first)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	svc1.Drain(ctx)
	ts1.Close()

	svc2, ts2 := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	resp, raw := post(t, ts2.URL+"/v1/cache/preload", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("preload: %d %s", resp.StatusCode, raw)
	}
	var pre preloadResponse
	json.Unmarshal(raw, &pre)
	if pre.Loaded != 1 {
		t.Fatalf("preload loaded %d entries, want 1", pre.Loaded)
	}
	resp, second := post(t, ts2.URL+"/v1/run", quickConfig)
	if got := resp.Header.Get(headerCache); got != cacheHit {
		t.Errorf("restarted server cache header = %q, want %q", got, cacheHit)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("disk-tier response not byte-identical:\n%s\n%s", first, second)
	}
	if done, _, _ := svc2.tallies(); done != 0 {
		t.Errorf("restarted server ran %d jobs; the disk tier should have served the result", done)
	}
}

// TestHealthzJobAndCacheCounters pins the new healthz schema: per-state
// job counters plus cache hit/miss/eviction/disk figures.
func TestHealthzJobAndCacheCounters(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	post(t, ts.URL+"/v1/run", quickConfig) // miss
	post(t, ts.URL+"/v1/run", quickConfig) // hit
	_, raw := get(t, ts.URL+"/v1/healthz")
	var h healthResponse
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatalf("healthz: %v (%s)", err, raw)
	}
	if h.Jobs.Done != 1 || h.Jobs.Failed != 0 || h.Jobs.Cancelled != 0 {
		t.Errorf("healthz jobs = %+v, want exactly one done", h.Jobs)
	}
	if h.Cache.Hits != 1 || h.Cache.Misses != 1 || h.Cache.Entries != 1 {
		t.Errorf("healthz cache = %+v, want 1 hit / 1 miss / 1 entry", h.Cache)
	}
	// The raw JSON carries every counter field the smoke scripts grep for.
	for _, key := range []string{`"jobs"`, `"done"`, `"failed"`, `"cancelled"`, `"evictions"`, `"disk_hits"`} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("healthz body missing %s:\n%s", key, raw)
		}
	}
}

// TestRecordParamFalseDoesNotForceRerun: ?record=0 must behave like no
// record request at all — served from the cache, no re-simulation.
func TestRecordParamFalseDoesNotForceRerun(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	_, first := post(t, ts.URL+"/v1/run", quickConfig)
	resp, second := post(t, ts.URL+"/v1/run?record=0", quickConfig)
	if got := resp.Header.Get(headerCache); got != cacheHit {
		t.Errorf("record=0 resubmit cache header = %q, want %q", got, cacheHit)
	}
	if !bytes.Equal(first, second) {
		t.Error("record=0 resubmit changed the response")
	}
	resp, raw := post(t, ts.URL+"/v1/run?record=banana", quickConfig)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("record=banana: %d %s, want 400", resp.StatusCode, raw)
	}
}

// TestReportResponsesCarryJobID: /v1/run (miss and hit) and /result
// expose the fingerprint in the X-Earmac-Job header, so a synchronous
// client can reach /trace, /stream, and /result without recomputing
// the hash.
func TestReportResponsesCarryJobID(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	fp := earmacFingerprint(t, quickConfig)
	for _, label := range []string{"miss", "hit"} {
		resp, _ := post(t, ts.URL+"/v1/run", quickConfig)
		if got := resp.Header.Get(headerJob); got != fp {
			t.Errorf("%s run %s header = %q, want %q", label, headerJob, got, fp)
		}
	}
	resp, _ := get(t, ts.URL+"/v1/jobs/"+fp+"/result")
	if got := resp.Header.Get(headerJob); got != fp {
		t.Errorf("result %s header = %q, want %q", headerJob, got, fp)
	}
}

// TestDoneRunSupersedesStaleFailure: a cancelled run leaves a terminal
// record, but once a re-run of the same fingerprint succeeds, status
// and result must agree on "done" — the stale failure may not shadow
// the cached report.
func TestDoneRunSupersedesStaleFailure(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	blocker := `{"algorithm":"orchestra","n":6,"rounds":4000000000}`
	resp, raw := post(t, ts.URL+"/v1/jobs", blocker)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker: %d %s", resp.StatusCode, raw)
	}
	var blockerSub submitResponse
	json.Unmarshal(raw, &blockerSub)
	waitState(t, ts, blockerSub.ID, StateRunning)
	// quickConfig queues behind the blocker; cancel it while queued.
	resp, raw = post(t, ts.URL+"/v1/jobs", quickConfig)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub submitResponse
	json.Unmarshal(raw, &sub)
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	waitState(t, ts, sub.ID, StateCancelled)
	// Re-run the cancelled config (unblock the worker first) to success.
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+blockerSub.ID, nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	resp, _ = post(t, ts.URL+"/v1/run", quickConfig)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-run: %d", resp.StatusCode)
	}
	st := waitState(t, ts, sub.ID, StateDone)
	if !st.Cached {
		t.Errorf("superseded status = %+v, want done+cached", st)
	}
}

// TestRecordJoinSemantics: a record submission for a fingerprint with a
// live job never forks a second run — it upgrades the job while it is
// still queued, and conflicts (503) once the job is running without
// recording.
func TestRecordJoinSemantics(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	blocker := `{"algorithm":"orchestra","n":6,"rounds":4000000000}`
	resp, raw := post(t, ts.URL+"/v1/jobs", blocker)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker: %d %s", resp.StatusCode, raw)
	}
	var blockerSub submitResponse
	json.Unmarshal(raw, &blockerSub)
	waitState(t, ts, blockerSub.ID, StateRunning)

	// quickConfig queues (worker busy); the record submission joins it
	// and flips the flag before dispatch.
	resp, raw = post(t, ts.URL+"/v1/jobs", quickConfig)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: %d %s", resp.StatusCode, raw)
	}
	var sub submitResponse
	json.Unmarshal(raw, &sub)
	resp, raw = post(t, ts.URL+"/v1/jobs?record=1", quickConfig)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("record join of queued job: %d %s", resp.StatusCode, raw)
	}
	var joined submitResponse
	json.Unmarshal(raw, &joined)
	if joined.ID != sub.ID {
		t.Fatalf("record submission forked a second job: %s vs %s", joined.ID, sub.ID)
	}

	// A record request for the running, non-recording blocker conflicts.
	resp, raw = post(t, ts.URL+"/v1/run?record=1", blocker)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("record of running non-record job: %d %s, want 503", resp.StatusCode, raw)
	}
	var eb errorBody
	json.Unmarshal(raw, &eb)
	if !strings.Contains(eb.Error, "conflicting options") {
		t.Errorf("conflict body = %q", eb.Error)
	}

	// While the recording job is still queued/running, its trace is "not
	// ready" (409), never "unknown" (404).
	resp, raw = get(t, ts.URL+"/v1/jobs/"+sub.ID+"/trace")
	if resp.StatusCode != http.StatusConflict || !strings.Contains(string(raw), "not ready") {
		t.Errorf("trace of in-flight recording job: %d %s, want 409 not-ready", resp.StatusCode, raw)
	}

	// Unblock; the joined job runs with recording on: trace available.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+blockerSub.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	waitState(t, ts, sub.ID, StateDone)
	resp, _ = get(t, ts.URL+"/v1/jobs/"+sub.ID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("trace after upgraded record join: %d, want 200", resp.StatusCode)
	}
}

// TestResubmitAfterCancelledQueuedJob: cancelling a queued job must not
// leave a corpse in the live map — an immediate resubmission of the
// same config starts a fresh run instead of joining the cancelled job.
func TestResubmitAfterCancelledQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	blocker := `{"algorithm":"orchestra","n":6,"rounds":4000000000}`
	resp, raw := post(t, ts.URL+"/v1/jobs", blocker)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker: %d %s", resp.StatusCode, raw)
	}
	var blockerSub submitResponse
	json.Unmarshal(raw, &blockerSub)
	waitState(t, ts, blockerSub.ID, StateRunning)
	resp, raw = post(t, ts.URL+"/v1/jobs", quickConfig)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var sub submitResponse
	json.Unmarshal(raw, &sub)
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	// Resubmit immediately — while the cancelled job's corpse would
	// still be queued. It must come back as a fresh queued job, not the
	// cancelled one.
	resp, raw = post(t, ts.URL+"/v1/jobs", quickConfig)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit after cancel: %d %s", resp.StatusCode, raw)
	}
	var resub submitResponse
	json.Unmarshal(raw, &resub)
	if resub.Status != StateQueued {
		t.Fatalf("resubmit status = %q, want queued (fresh job, not the cancelled corpse)", resub.Status)
	}
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+blockerSub.ID, nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	// The fresh job runs to completion and its success is what status
	// reports — the popped corpse must not shadow it.
	st := waitState(t, ts, sub.ID, StateDone)
	if !st.Cached && st.Error != "" {
		t.Errorf("final status = %+v", st)
	}
}

// TestCancelCompletedJob: DELETE on a job that already completed (and
// so lives only in the cache) reports done, consistent with status —
// not 404.
func TestCancelCompletedJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	post(t, ts.URL+"/v1/run", quickConfig)
	fp := earmacFingerprint(t, quickConfig)
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+fp, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel of completed job: %d %s, want 200", resp.StatusCode, raw)
	}
	var st statusResponse
	json.Unmarshal(raw, &st)
	if st.Status != StateDone || !st.Cached {
		t.Errorf("cancel of completed job = %+v, want done+cached", st)
	}
}

// TestStatusPollingDoesNotSkewCacheStats: read-path lookups (status
// polls of an unknown or running job) must not count as cache misses —
// the healthz statistics measure submission dedup only.
func TestStatusPollingDoesNotSkewCacheStats(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1})
	post(t, ts.URL+"/v1/run", quickConfig) // one genuine miss
	fp := earmacFingerprint(t, quickConfig)
	for i := 0; i < 25; i++ {
		get(t, ts.URL+"/v1/jobs/"+fp)
		get(t, ts.URL+"/v1/jobs/"+fp+"/result")
		get(t, ts.URL+"/v1/jobs/sha256:unknown")
	}
	st := svc.cache.Stats()
	if st.Hits != 0 || st.Misses != 1 {
		t.Errorf("after polling: hits=%d misses=%d, want 0/1 (submission stats only)", st.Hits, st.Misses)
	}
}

func TestHealthzAndCapabilities(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	resp, raw := get(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 2 {
		t.Errorf("healthz = %+v", h)
	}
	resp, raw = get(t, ts.URL+"/v1/capabilities")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capabilities: %d", resp.StatusCode)
	}
	var caps capabilitiesResponse
	if err := json.Unmarshal(raw, &caps); err != nil {
		t.Fatal(err)
	}
	if len(caps.Algorithms) == 0 || len(caps.Patterns) == 0 {
		t.Errorf("capabilities empty: %s", raw)
	}
	if len(caps.Topologies) == 0 || caps.Topologies[len(caps.Topologies)-1] != "star" {
		t.Errorf("capabilities topologies = %v, want the sorted topology kinds", caps.Topologies)
	}
	if len(caps.TraceVersions) != 2 || caps.TraceVersions[0] != 1 || caps.TraceVersions[1] != earmac.TraceVersion {
		t.Errorf("capabilities trace versions = %v", caps.TraceVersions)
	}
}

// TestRunNetworkConfig: a network-of-channels config flows through the
// service — the per-channel breakdown survives the cache, and the same
// experiment with the channel count spelled explicitly (its default) is
// a byte-identical cache hit, while a different topology misses.
func TestRunNetworkConfig(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	body := `{"algorithm":"orchestra","n":5,"topology":"line","rho_num":1,"rho_den":2,"beta":3,"pattern":"bernoulli","seed":7,"rounds":3000}`
	resp, raw := post(t, ts.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("network run: %d: %s", resp.StatusCode, raw)
	}
	var rep earmac.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Topology != "line" || rep.Channels != 2 || len(rep.PerChannel) != 2 {
		t.Fatalf("network report lost its channel dimension: %+v", rep)
	}
	// Explicit default channel count: same fingerprint, cache hit,
	// byte-identical body.
	explicit := `{"algorithm":"orchestra","n":5,"topology":"line","channels":2,"rho_num":1,"rho_den":2,"beta":3,"pattern":"bernoulli","seed":7,"rounds":3000}`
	resp2, raw2 := post(t, ts.URL+"/v1/run", explicit)
	if resp2.Header.Get(headerCache) != cacheHit {
		t.Errorf("equivalent topology spelling was not a cache hit")
	}
	if string(raw2) != string(raw) {
		t.Errorf("cache hit not byte-identical")
	}
	// A different topology is a different experiment.
	star := `{"algorithm":"orchestra","n":5,"topology":"star","channels":2,"rho_num":1,"rho_den":2,"beta":3,"pattern":"bernoulli","seed":7,"rounds":3000}`
	resp3, _ := post(t, ts.URL+"/v1/run", star)
	if resp3.Header.Get(headerCache) != cacheMiss {
		t.Errorf("different topology served from cache")
	}
}

func TestUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, path := range []string{"/v1/jobs/sha256:beef", "/v1/jobs/sha256:beef/result", "/v1/jobs/sha256:beef/trace", "/v1/jobs/sha256:beef/stream"} {
		resp, _ := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestCacheEvictionLRU(t *testing.T) {
	c := NewCache(2, "")
	c.Put("a", Entry{Report: []byte("A")})
	c.Put("b", Entry{Report: []byte("B")})
	// Touch a: it is now the most recently used, so inserting c must
	// evict b, not a — the LRU upgrade over the old FIFO.
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("entry a missing before eviction")
	}
	c.Put("c", Entry{Report: []byte("C")}) // evicts b (least recently used)
	if _, ok := c.Peek("b"); ok {
		t.Error("least-recently-used entry not evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Peek(k); !ok {
			t.Errorf("entry %s evicted prematurely", k)
		}
	}
	// Duplicate put keeps the original report bytes but attaches a trace.
	c.Put("a", Entry{Report: []byte("A2"), Trace: []byte("T")})
	e, _ := c.Peek("a")
	if string(e.Report) != "A" || string(e.Trace) != "T" {
		t.Errorf("duplicate put: report %q trace %q, want A / T", e.Report, e.Trace)
	}
	c.MarkHit()
	c.MarkMiss()
	st := c.Stats()
	if st.Entries != 2 || st.Hits != 1 || st.Misses != 1 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries, 1 hit, 1 miss, 1 eviction", st)
	}
}

// TestCacheDiskTier: the disk tier persists entries across cache
// instances (the coordinator-restart scenario), promotes them back into
// memory on a miss, counts disk hits, and keeps entries that were
// evicted from the memory LRU.
func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	fpA := "sha256:" + strings.Repeat("a", 64)
	fpB := "sha256:" + strings.Repeat("b", 64)
	fpC := "sha256:" + strings.Repeat("c", 64)

	c1 := NewCache(2, dir)
	c1.Put(fpA, Entry{Report: []byte("A\n"), Trace: []byte("TA\n")})
	c1.Put(fpB, Entry{Report: []byte("B\n")})
	c1.Put(fpC, Entry{Report: []byte("C\n")}) // evicts A from memory only
	if st := c1.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// The evicted entry comes back from disk, trace intact.
	e, ok := c1.Peek(fpA)
	if !ok || string(e.Report) != "A\n" || string(e.Trace) != "TA\n" {
		t.Fatalf("evicted entry not recovered from disk: %+v ok=%v", e, ok)
	}
	if st := c1.Stats(); st.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1", st.DiskHits)
	}

	// A fresh cache over the same directory (a restarted process) serves
	// every entry from the disk tier.
	c2 := NewCache(16, dir)
	for fp, want := range map[string]string{fpA: "A\n", fpB: "B\n", fpC: "C\n"} {
		e, ok := c2.Peek(fp)
		if !ok || string(e.Report) != want {
			t.Errorf("restart peek %s = %q ok=%v, want %q", fp[:16], e.Report, ok, want)
		}
	}
	if st := c2.Stats(); st.DiskHits != 3 || st.Entries != 3 {
		t.Errorf("restart stats = %+v, want 3 disk hits, 3 entries", st)
	}

	// Preload warms a cold cache without counting disk hits as traffic.
	c3 := NewCache(16, dir)
	n, err := c3.Preload()
	if err != nil || n != 3 {
		t.Fatalf("preload = %d, %v, want 3 entries", n, err)
	}
	if n, err = c3.Preload(); err != nil || n != 0 {
		t.Errorf("second preload = %d, %v, want 0 (idempotent)", n, err)
	}
	if st := c3.Stats(); st.Entries != 3 || st.DiskHits != 0 {
		t.Errorf("preloaded stats = %+v, want 3 resident entries, 0 disk hits", st)
	}

	// Stray files never round-trip into fingerprints.
	if err := os.WriteFile(filepath.Join(dir, "junk.report"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c4 := NewCache(16, dir)
	if n, _ := c4.Preload(); n != 3 {
		t.Errorf("preload with stray file = %d, want 3", n)
	}
}
