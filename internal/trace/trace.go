// Package trace renders per-round simulation events as a human-readable
// log — which stations were on, who transmitted what, collisions,
// deliveries. It implements core.Tracer and is wired into earmac-sim's
// -trace flag; it is also the debugging tool used while bringing up the
// algorithms.
package trace

import (
	"fmt"
	"io"
	"strings"

	"earmac/internal/core"
	"earmac/internal/mac"
)

// Logger writes one line per round to W, within the configured round
// window (inclusive From, exclusive To; To == 0 means unbounded).
type Logger struct {
	W    io.Writer
	From int64
	To   int64
	// Names maps station IDs to labels; station numbers are used if nil.
	Names []string
}

// New returns a logger for the given writer covering all rounds.
func New(w io.Writer) *Logger { return &Logger{W: w} }

func (l *Logger) name(st int) string {
	if l.Names != nil && st < len(l.Names) {
		return l.Names[st]
	}
	return fmt.Sprintf("s%d", st)
}

// TraceRound implements core.Tracer.
func (l *Logger) TraceRound(round int64, actions []core.Action, fb mac.Feedback, delivered []mac.Packet) {
	if round < l.From || (l.To > 0 && round >= l.To) {
		return
	}
	var on, tx []string
	for i, a := range actions {
		if a.On {
			on = append(on, l.name(i))
		}
		if a.Transmit {
			tx = append(tx, l.describeTx(i, a.Msg))
		}
	}
	var event string
	switch fb.Kind {
	case mac.FbSilence:
		event = "silence"
	case mac.FbCollision:
		event = fmt.Sprintf("COLLISION (%d transmitters)", len(tx))
	case mac.FbHeard:
		event = "heard " + strings.Join(tx, " ")
		for _, p := range delivered {
			event += fmt.Sprintf(" → delivered to %s after %d rounds", l.name(p.Dest), round-p.Injected)
		}
	}
	fmt.Fprintf(l.W, "r%-8d on=[%s] %s\n", round, strings.Join(on, " "), event)
}

func (l *Logger) describeTx(station int, msg mac.Message) string {
	switch {
	case msg.HasPacket && len(msg.Ctrl) > 0:
		return fmt.Sprintf("%s:%v+%db", l.name(station), msg.Packet, msg.Ctrl.Bits())
	case msg.HasPacket:
		return fmt.Sprintf("%s:%v", l.name(station), msg.Packet)
	default:
		return fmt.Sprintf("%s:light(%db)", l.name(station), msg.Ctrl.Bits())
	}
}
