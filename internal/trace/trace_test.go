package trace

import (
	"strings"
	"testing"

	"earmac/internal/core"
	"earmac/internal/mac"
)

func actions() []core.Action {
	p := mac.Packet{ID: 4, Src: 0, Dest: 2, Injected: 1}
	return []core.Action{
		core.Transmit(mac.PacketMsg(p)),
		core.Off(),
		core.Listen(),
	}
}

func TestTraceHeardAndDelivered(t *testing.T) {
	var sb strings.Builder
	l := New(&sb)
	p := mac.Packet{ID: 4, Src: 0, Dest: 2, Injected: 1}
	l.TraceRound(5, actions(), mac.Feedback{Kind: mac.FbHeard, Msg: mac.PacketMsg(p)}, []mac.Packet{p})
	out := sb.String()
	for _, want := range []string{"r5", "on=[s0 s2]", "pkt#4", "delivered to s2 after 4 rounds"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q: %s", want, out)
		}
	}
}

func TestTraceSilenceAndCollision(t *testing.T) {
	var sb strings.Builder
	l := New(&sb)
	l.TraceRound(1, []core.Action{core.Listen()}, mac.Feedback{Kind: mac.FbSilence}, nil)
	twoTx := []core.Action{
		core.Transmit(mac.CtrlMsg(mac.MakeControl(3))),
		core.Transmit(mac.CtrlMsg(nil)),
	}
	l.TraceRound(2, twoTx, mac.Feedback{Kind: mac.FbCollision}, nil)
	out := sb.String()
	if !strings.Contains(out, "silence") {
		t.Errorf("missing silence: %s", out)
	}
	if !strings.Contains(out, "COLLISION (2 transmitters)") {
		t.Errorf("missing collision: %s", out)
	}
}

func TestTraceWindow(t *testing.T) {
	var sb strings.Builder
	l := &Logger{W: &sb, From: 10, To: 12}
	for r := int64(0); r < 20; r++ {
		l.TraceRound(r, []core.Action{core.Off()}, mac.Feedback{Kind: mac.FbSilence}, nil)
	}
	lines := strings.Count(sb.String(), "\n")
	if lines != 2 {
		t.Errorf("window produced %d lines, want 2:\n%s", lines, sb.String())
	}
}

func TestTraceNames(t *testing.T) {
	var sb strings.Builder
	l := &Logger{W: &sb, Names: []string{"alpha", "beta"}}
	l.TraceRound(0, []core.Action{core.Listen(), core.Off()}, mac.Feedback{Kind: mac.FbSilence}, nil)
	if !strings.Contains(sb.String(), "alpha") {
		t.Errorf("names not used: %s", sb.String())
	}
}

func TestLightAndCtrlDescriptions(t *testing.T) {
	var sb strings.Builder
	l := New(&sb)
	ctrl := mac.MakeControl(5)
	l.TraceRound(0, []core.Action{core.Transmit(mac.CtrlMsg(ctrl))},
		mac.Feedback{Kind: mac.FbHeard, Msg: mac.CtrlMsg(ctrl)}, nil)
	if !strings.Contains(sb.String(), "light(8b)") {
		t.Errorf("light message not described: %s", sb.String())
	}
	p := mac.Packet{ID: 1}
	l2 := New(&sb)
	sb.Reset()
	msg := mac.Message{HasPacket: true, Packet: p, Ctrl: ctrl}
	l2.TraceRound(0, []core.Action{core.Transmit(msg)}, mac.Feedback{Kind: mac.FbHeard, Msg: msg}, nil)
	if !strings.Contains(sb.String(), "+8b") {
		t.Errorf("packet+ctrl message not described: %s", sb.String())
	}
}
